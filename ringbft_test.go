package ringbft

import (
	"context"
	"testing"
	"time"
)

func startCluster(t *testing.T, cfg ClusterConfig) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

func TestClusterSubmitSingleShard(t *testing.T) {
	c := startCluster(t, ClusterConfig{Shards: 3, ReplicasPerShard: 4})
	k := c.KeyOf(1, 10)
	before := c.Read(k, 0)
	res, err := c.Submit(context.Background(), Txn{
		Reads: []Key{k}, Writes: []Key{k}, Delta: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("got %d results, want 1", len(res))
	}
	want := before + 5 + before
	// combined = Δ + read(k); write adds combined to k.
	if got := res[0]; got != before+5 {
		t.Fatalf("result = %d, want %d", got, before+5)
	}
	// Give replicas a moment to apply, then check state on every replica.
	time.Sleep(100 * time.Millisecond)
	for i := 0; i < 4; i++ {
		if got := c.Read(k, i); got != want {
			t.Fatalf("replica %d: value = %d, want %d", i, got, want)
		}
	}
}

func TestClusterSubmitCrossShard(t *testing.T) {
	c := startCluster(t, ClusterConfig{Shards: 3, ReplicasPerShard: 4})
	k0, k2 := c.KeyOf(0, 7), c.KeyOf(2, 9)
	v0, v2 := c.Read(k0, 0), c.Read(k2, 0)
	res, err := c.Submit(context.Background(), Txn{
		Reads: []Key{k0, k2}, Writes: []Key{k0, k2}, Delta: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	combined := Value(3) + v0 + v2
	if res[0] != combined {
		t.Fatalf("result = %d, want %d", res[0], combined)
	}
	time.Sleep(150 * time.Millisecond)
	if got := c.Read(k0, 1); got != v0+combined {
		t.Fatalf("k0 = %d, want %d", got, v0+combined)
	}
	if got := c.Read(k2, 1); got != v2+combined {
		t.Fatalf("k2 = %d, want %d", got, v2+combined)
	}
	if err := c.VerifyLedgers(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterConcurrentSubmits(t *testing.T) {
	c := startCluster(t, ClusterConfig{Shards: 2, ReplicasPerShard: 4})
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			k := c.KeyOf(ShardID(i%2), uint64(100+i))
			_, err := c.Submit(context.Background(), Txn{Reads: []Key{k}, Writes: []Key{k}, Delta: 1})
			errs <- err
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if err := c.VerifyLedgers(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterViewChangeOnPrimaryCrash(t *testing.T) {
	c := startCluster(t, ClusterConfig{Shards: 1, ReplicasPerShard: 4, SubmitTimeout: 20 * time.Second})
	c.CrashReplica(0, 0)
	k := c.KeyOf(0, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if _, err := c.Submit(ctx, Txn{Reads: []Key{k}, Writes: []Key{k}, Delta: 2}); err != nil {
		t.Fatalf("submit after primary crash: %v", err)
	}
}

func TestClusterLedgerGrowth(t *testing.T) {
	c := startCluster(t, ClusterConfig{Shards: 2, ReplicasPerShard: 4})
	k := c.KeyOf(0, 1)
	for i := 0; i < 3; i++ {
		if _, err := c.Submit(context.Background(), Txn{Reads: []Key{k}, Writes: []Key{k}, Delta: 1}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(100 * time.Millisecond)
	blocks := c.Ledger(0, 0)
	if len(blocks) < 4 { // genesis + 3
		t.Fatalf("ledger has %d blocks, want >= 4", len(blocks))
	}
	if blocks[0].Seq != 0 {
		t.Fatal("first block is not genesis")
	}
}

func TestSubmitEmptyBatchRejected(t *testing.T) {
	c := startCluster(t, ClusterConfig{Shards: 1, ReplicasPerShard: 4})
	if _, err := c.Submit(context.Background()); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := c.Submit(context.Background(), Txn{Delta: 1}); err == nil {
		t.Fatal("keyless txn accepted")
	}
}

// TestClusterKillRestartDurable exercises the public durability API: a
// killed replica restarts from its on-(in-memory-)disk WAL + snapshots,
// catches up, and converges with its peers.
func TestClusterKillRestartDurable(t *testing.T) {
	c := startCluster(t, ClusterConfig{
		Shards: 2, ReplicasPerShard: 4,
		Durable: true, CheckpointInterval: 8,
	})
	ctx := context.Background()
	k := c.KeyOf(0, 3)
	for i := 0; i < 4; i++ {
		if _, err := c.Submit(ctx, Txn{Reads: []Key{k}, Writes: []Key{k}, Delta: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Kill a backup, commit through the fault, restart it.
	c.KillReplica(0, 3)
	for i := 0; i < 12; i++ {
		if _, err := c.Submit(ctx, Txn{Reads: []Key{k}, Writes: []Key{k}, Delta: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.RestartReplica(0, 3); err != nil {
		t.Fatal(err)
	}
	// More traffic so checkpoints pull the restarted replica forward.
	for i := 0; i < 16; i++ {
		if _, err := c.Submit(ctx, Txn{Reads: []Key{k}, Writes: []Key{k}, Delta: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// The restarted replica converges with a healthy peer — both the key
	// value and the full ledger: the value catches up slightly before the
	// final trailing blocks land, so VerifyLedgers is part of the retry
	// loop rather than a one-shot assertion racing the catch-up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var lerr error
		if c.Read(k, 3) == c.Read(k, 1) {
			if lerr = c.VerifyLedgers(); lerr == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted replica never converged: %d vs %d (ledgers: %v)",
				c.Read(k, 3), c.Read(k, 1), lerr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
