# Tier-1 verify is `make verify` (build + vet + test + race-checked crypto
# and pbft, whose pooled/cached fast paths are the concurrency-sensitive
# code). `make bench` runs the micro-benchmarks; `make bench-crypto` runs
# just the authentication fast-path benchmarks whose reference numbers live
# in internal/crypto/bench_baseline.json (the sched executor baseline is in
# internal/sched/bench_baseline.json).

GO ?= go

.PHONY: build test vet bench bench-crypto race-crypto verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run XXX -bench . -benchtime 300ms ./internal/sched/ ./internal/store/
	$(GO) test -run XXX -bench . -benchtime 200ms ./internal/pbft/ ./internal/crypto/ ./internal/ledger/ ./internal/workload/

bench-crypto:
	$(GO) test -run XXX -bench 'BenchmarkMAC|BenchmarkAppendMAC|BenchmarkVerifyMAC|BenchmarkSign|BenchmarkVerifySignature|BenchmarkSignVerify' -benchmem -benchtime 200ms ./internal/crypto/
	$(GO) test -run XXX -bench 'BenchmarkVerifyCert|BenchmarkVerifyCommitCert' -benchmem -benchtime 200ms ./internal/pbft/

race-crypto:
	$(GO) test -race ./internal/crypto/... ./internal/pbft/...

verify: build vet test race-crypto
