# Tier-1 verify is `make verify` (build + vet + test). `make bench` runs the
# micro-benchmarks, including the internal/sched executor comparison whose
# reference numbers live in internal/sched/bench_baseline.json.

GO ?= go

.PHONY: build test vet bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run XXX -bench . -benchtime 300ms ./internal/sched/ ./internal/store/
	$(GO) test -run XXX -bench . -benchtime 200ms ./internal/pbft/ ./internal/crypto/ ./internal/ledger/ ./internal/workload/

verify: build vet test
