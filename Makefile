# Tier-1 verify is `make verify` (build + vet + test + race-checked crypto,
# pbft, and wal — the pooled/cached fast paths and the durability layer are
# the concurrency-sensitive code — plus race-checked tcpnet and the
# loopback-TCP scenario suite, whose writer goroutines are the transport's
# concurrency surface). `make bench` runs the micro-benchmarks;
# `make bench-crypto` runs just the authentication fast-path benchmarks
# whose reference numbers live in internal/crypto/bench_baseline.json,
# `make bench-wal` the WAL append/replay benchmarks whose baseline is
# internal/wal/bench_baseline.json, and `make bench-tcpnet` the transport
# Send-path benchmarks whose baseline is internal/tcpnet/bench_baseline.json
# (the sched executor baseline is in internal/sched/bench_baseline.json).

GO ?= go

.PHONY: build test vet bench bench-crypto bench-wal bench-tcpnet race-crypto race-net verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run XXX -bench . -benchtime 300ms ./internal/sched/ ./internal/store/
	$(GO) test -run XXX -bench . -benchtime 200ms ./internal/pbft/ ./internal/crypto/ ./internal/ledger/ ./internal/workload/ ./internal/wal/

bench-crypto:
	$(GO) test -run XXX -bench 'BenchmarkMAC|BenchmarkAppendMAC|BenchmarkVerifyMAC|BenchmarkSign|BenchmarkVerifySignature|BenchmarkSignVerify' -benchmem -benchtime 200ms ./internal/crypto/
	$(GO) test -run XXX -bench 'BenchmarkVerifyCert|BenchmarkVerifyCommitCert' -benchmem -benchtime 200ms ./internal/pbft/

bench-wal:
	$(GO) test -run XXX -bench 'BenchmarkAppend|BenchmarkReplay|BenchmarkSnapshotEncode' -benchmem -benchtime 200ms ./internal/wal/

bench-tcpnet:
	$(GO) test -run XXX -bench 'BenchmarkTransportSend' -benchmem -benchtime 200ms ./internal/tcpnet/

race-crypto:
	$(GO) test -race ./internal/crypto/... ./internal/pbft/... ./internal/wal/...

# The transport's writer goroutines and the loopback-TCP cluster scenarios
# (real sockets under the full replica stack) are the wire layer's
# concurrency-sensitive surface.
race-net:
	$(GO) test -race ./internal/tcpnet/
	$(GO) test -race -run 'TestTCP' ./internal/harness/

verify: build vet test race-crypto race-net
