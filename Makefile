# Tier-1 verify is `make verify` (fmt-check + build + vet + lint + test +
# race-checked crypto, pbft, and wal — the pooled/cached fast paths and the
# durability layer are the concurrency-sensitive code — plus race-checked
# tcpnet and the loopback-TCP scenario suite, whose writer goroutines are
# the transport's concurrency surface). `make lint` runs the protocol-
# invariant analyzer suite (internal/analysis via cmd/ringbft-vet);
# `make docs-check` keeps the docs honest against the binaries' flag
# surfaces and this Makefile's targets (scripts/docs-check.sh);
# `make race-all` puts the whole module under the race detector. The full test suite includes the
# chaos matrix (internal/chaos): 41 seeded nemesis scenarios across
# ringbft/ahl/sharper (incl. the pipelined-window frontier rows);
# `make chaos` runs just that matrix verbosely and
# `make chaos-soak` explores fresh seeds for SOAK_BUDGET (nightly CI).
#
# The benchmark trajectory lives in one repo-root document, BENCH_PR8.json:
# flat {name, unit, value, commit} entries merging the open-loop latency
# sweep (`make bench-openloop`, run at pipeline depths 1 and 8 so the
# saturation-knee comparison is part of the document) with the
# per-package micro-benchmark baselines. `make bench-consolidate` regenerates it; `make bench-check`
# validates its schema (what CI gates on — the numbers are host-dependent).
# `make bench` still runs the raw micro-benchmarks, with `bench-crypto`,
# `bench-wal`, and `bench-tcpnet` as focused subsets.
#
# `make metrics-smoke` boots a loopback-TCP cluster and asserts the
# /metrics exposition carries live series from every instrumented layer.

GO ?= go
SOAK_BUDGET ?= 10m
OPENLOOP_RATES ?= 800,1600,2400
OPENLOOP_DURATION ?= 2s
# Client requests are deliberately smaller than the consensus batch so the
# open-loop sweep exercises the adaptive batcher (requests merge toward
# BatchSize under load) and the pipeline depth actually binds.
OPENLOOP_CLIENTBATCH ?= 10

.PHONY: build test vet lint lint-fixtures fmt-check docs-check bench bench-crypto bench-wal bench-tcpnet bench-openloop bench-consolidate bench-check metrics-smoke race-crypto race-net race-all chaos chaos-soak chaos-wallclock verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Protocol-invariant analyzers (internal/analysis, driven by ringbft-vet):
# mapiter, verifyfirst, locksend, wallclock, kindswitch, codecbounds,
# lockorder. Exits non-zero on any unsuppressed finding, malformed
# //ringbft:ignore directive, or stale directive (one that no longer
# silences anything); honoured suppressions are printed as a ledger with
# their reasons.
lint:
	$(GO) run ./cmd/ringbft-vet ./...

# The analyzers' own regression suite: every rule's testdata/src/<rule>/
# fixtures (a/ shape-pinning, regress/ reproducing the original bug, the
# precise/ dominance cases) checked against their // want expectations.
lint-fixtures:
	$(GO) test ./internal/analysis/ -run 'TestFixtures|TestSuiteShape'

# gofmt must be a no-op over the whole tree.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The docs must track the code: documented flags exist, ringbft-node's
# knob surface is documented, referenced make targets exist, and
# ARCHITECTURE.md is present and linked from the README.
docs-check:
	sh scripts/docs-check.sh

bench:
	$(GO) test -run XXX -bench . -benchtime 300ms ./internal/sched/ ./internal/store/
	$(GO) test -run XXX -bench . -benchtime 200ms ./internal/pbft/ ./internal/crypto/ ./internal/ledger/ ./internal/workload/ ./internal/wal/ ./internal/tcpnet/

bench-crypto:
	$(GO) test -run XXX -bench 'BenchmarkMAC|BenchmarkAppendMAC|BenchmarkVerifyMAC|BenchmarkSign|BenchmarkVerifySignature|BenchmarkSignVerify' -benchmem -benchtime 200ms ./internal/crypto/
	$(GO) test -run XXX -bench 'BenchmarkVerifyCert|BenchmarkVerifyCommitCert' -benchmem -benchtime 200ms ./internal/pbft/

bench-wal:
	$(GO) test -run XXX -bench 'BenchmarkAppend|BenchmarkReplay|BenchmarkSnapshotEncode' -benchmem -benchtime 200ms ./internal/wal/

bench-tcpnet:
	$(GO) test -run XXX -bench 'BenchmarkTransportSend' -benchmem -benchtime 200ms ./internal/tcpnet/

# Open-loop (Poisson arrival) latency sweep on the simulated WAN: committed
# throughput plus end-to-end and per-phase latency quantiles per offered
# load, once at pipeline depth 1 (lockstep baseline) and once at depth 8
# (bounded window + adaptive batching), so the consolidated document
# carries the saturation-knee comparison. Writes openloop-d1.json and
# openloop-d8.json for bench-consolidate to merge.
bench-openloop:
	$(GO) run ./cmd/ringbft-bench -openloop -rates $(OPENLOOP_RATES) \
		-duration $(OPENLOOP_DURATION) -clientbatch $(OPENLOOP_CLIENTBATCH) \
		-pipeline 1 -o openloop-d1.json
	$(GO) run ./cmd/ringbft-bench -openloop -rates $(OPENLOOP_RATES) \
		-duration $(OPENLOOP_DURATION) -clientbatch $(OPENLOOP_CLIENTBATCH) \
		-pipeline 8 -o openloop-d8.json

# Regenerate the repo-root consolidated trajectory (BENCH_PR8.json) from
# both depth sweeps plus the per-package baseline files.
bench-consolidate: bench-openloop
	$(GO) run ./cmd/ringbft-benchmerge -openloop openloop-d1.json,openloop-d8.json -o BENCH_PR8.json

# Schema gate over the committed trajectory document (CI runs this; the
# values themselves are host-dependent, so only the shape is gated).
bench-check:
	$(GO) run ./cmd/ringbft-benchmerge -check BENCH_PR8.json

# Live-cluster observability smoke: loopback-TCP cluster, real client
# traffic, scrape /metrics, assert per-layer series (see the script).
metrics-smoke:
	sh scripts/metrics-smoke.sh

race-crypto:
	$(GO) test -race ./internal/crypto/... ./internal/pbft/... ./internal/wal/...

# The transport's writer goroutines and the loopback-TCP cluster scenarios
# (real sockets under the full replica stack) are the wire layer's
# concurrency-sensitive surface.
race-net:
	$(GO) test -race ./internal/tcpnet/
	$(GO) test -race -run 'TestTCP' ./internal/harness/

# The whole module under the race detector (CI's race job; race-crypto and
# race-net above remain the fast local subset verify runs).
race-all:
	$(GO) test -race ./...

# One deterministic pass over the chaos scenario matrix (seed-reproducible;
# any failure prints the replay command).
chaos:
	$(GO) run ./cmd/ringbft-chaos -v

# Nightly soak: fresh seeds every pass until the budget runs out.
chaos-soak:
	$(GO) run ./cmd/ringbft-chaos -mode soak -budget $(SOAK_BUDGET)

# The same schedules through the real harness (goroutines, simulated WAN).
chaos-wallclock:
	$(GO) run ./cmd/ringbft-chaos -mode wallclock -v

verify: fmt-check docs-check build vet lint test race-crypto race-net
