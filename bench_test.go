// Benchmarks regenerating the paper's evaluation (Section 8): one benchmark
// per table/figure, each reporting throughput (txns/sec) and average latency
// (ms) as custom metrics for every point of the sweep. These run the Quick
// profile — scaled-down clusters on the simulated WAN — so the suite
// finishes in minutes; cmd/ringbft-bench runs the Full profile.
//
// Run:
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig8Shards
package ringbft

import (
	"fmt"
	"testing"
	"time"

	"ringbft/internal/harness"
)

// benchProfile shrinks the Quick profile further so the full -bench=. suite
// stays tractable; shapes are reported in EXPERIMENTS.md from the larger
// profiles.
func benchProfile() harness.Profile {
	p := harness.Quick
	p.Duration = 300 * time.Millisecond
	p.Warmup = 150 * time.Millisecond
	p.Clients = 32
	p.ClientWindow = 8
	p.ShardSweep = []int{2, 3, 4}
	p.ReplicaSweep = []int{4, 7}
	p.BatchSweep = []int{5, 20, 100}
	p.ClientSweep = []int{4, 8, 16}
	p.InvolvedSweep = []int{1, 2, 4}
	return p
}

// reportFigure re-runs a figure generator once per benchmark iteration and
// reports every series point as custom metrics.
func reportFigure(b *testing.B, gen func(harness.Profile) (harness.Figure, error)) {
	b.Helper()
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		fig, err := gen(p)
		if err != nil {
			b.Fatal(err)
		}
		if i != b.N-1 {
			continue // metrics from the final iteration only
		}
		for _, s := range fig.Series {
			for _, pt := range s.Points {
				b.ReportMetric(pt.Throughput, fmt.Sprintf("txn/s:%s@%.0f", s.Label, pt.X))
				b.ReportMetric(pt.LatencyMS, fmt.Sprintf("ms:%s@%.0f", s.Label, pt.X))
			}
		}
	}
}

// BenchmarkFig1Scalability reproduces Figure 1: fully-replicated Pbft,
// Zyzzyva, Sbft, PoE, HotStuff and Rcc versus sharded RingBFT (0% and 15%
// cross-shard) at increasing replicas per group/shard.
func BenchmarkFig1Scalability(b *testing.B) {
	reportFigure(b, harness.Fig1)
}

// BenchmarkFig8Shards reproduces Fig 8 (I)/(II): impact of the number of
// shards at 30% cross-shard transactions.
func BenchmarkFig8Shards(b *testing.B) {
	reportFigure(b, harness.Fig8Shards)
}

// BenchmarkFig8Replicas reproduces Fig 8 (III)/(IV): impact of replicas per
// shard.
func BenchmarkFig8Replicas(b *testing.B) {
	reportFigure(b, harness.Fig8Replicas)
}

// BenchmarkFig8CrossShardRate reproduces Fig 8 (V)/(VI): impact of the
// cross-shard workload rate (0..100%).
func BenchmarkFig8CrossShardRate(b *testing.B) {
	reportFigure(b, harness.Fig8CrossRate)
}

// BenchmarkFig8BatchSize reproduces Fig 8 (VII)/(VIII): impact of batch size.
func BenchmarkFig8BatchSize(b *testing.B) {
	reportFigure(b, harness.Fig8BatchSize)
}

// BenchmarkFig8InvolvedShards reproduces Fig 8 (IX)/(X): impact of the
// number of involved shards per cross-shard transaction.
func BenchmarkFig8InvolvedShards(b *testing.B) {
	reportFigure(b, harness.Fig8Involved)
}

// BenchmarkFig8Clients reproduces Fig 8 (XI)/(XII): impact of the number of
// clients (in-flight transactions).
func BenchmarkFig8Clients(b *testing.B) {
	reportFigure(b, harness.Fig8Clients)
}

// BenchmarkFig9PrimaryFailure reproduces Figure 9: RingBFT throughput while
// the primaries of a third of the shards crash mid-run and view changes
// recover. Reports the throughput floor (during recovery) and the recovered
// throughput alongside view-change counts.
func BenchmarkFig9PrimaryFailure(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		res, err := harness.Fig9(p)
		if err != nil {
			b.Fatal(err)
		}
		if i != b.N-1 {
			continue
		}
		b.ReportMetric(res.Throughput, "txn/s:avg")
		b.ReportMetric(float64(res.ViewChanges), "viewchanges")
		if n := len(res.Timeline); n > 0 {
			var min, max int64 = res.Timeline[0], res.Timeline[0]
			for _, v := range res.Timeline {
				if v < min {
					min = v
				}
				if v > max {
					max = v
				}
			}
			b.ReportMetric(float64(min*10), "txn/s:floor")
			b.ReportMetric(float64(max*10), "txn/s:peak")
		}
	}
}

// BenchmarkFig10ComplexCST reproduces Figure 10: RingBFT under complex
// cross-shard transactions with 0..64 remote-read dependencies.
func BenchmarkFig10ComplexCST(b *testing.B) {
	reportFigure(b, harness.Fig10)
}

// BenchmarkAblationLinearVsAllToAll compares the linear communication
// primitive against naive all-to-all Forwarding (DESIGN.md §5).
func BenchmarkAblationLinearVsAllToAll(b *testing.B) {
	reportFigure(b, harness.AblationLinearForward)
}

// BenchmarkAblationCryptoMix compares the paper's MAC+DS authentication mix
// against no cryptography (DESIGN.md §5).
func BenchmarkAblationCryptoMix(b *testing.B) {
	reportFigure(b, harness.AblationCrypto)
}

// BenchmarkAblationOutOfOrder compares RingBFT's out-of-order consensus
// processing (the paper's default: Prepare/Commit handled out of order with
// locks acquired in sequence order) against a serial pipeline, approximated
// by a single-slot client window versus a deep window.
func BenchmarkAblationOutOfOrder(b *testing.B) {
	p := benchProfile()
	for i := 0; i < b.N; i++ {
		for _, w := range []struct {
			label  string
			window int
		}{{"serial", 1}, {"pipelined", 8}} {
			cfg := p.BaseConfig()
			cfg.Protocol = harness.ProtoRingBFT
			cfg.CrossShardPct = 0.3
			// A small client population, so in-flight depth (not the
			// closed-loop population) is the variable under test.
			cfg.Clients = 8
			cfg.ClientWindow = w.window
			res, err := harness.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(res.Throughput, "txn/s:"+w.label)
			}
		}
	}
}
