// Command ringbft-benchmerge consolidates the per-package benchmark
// baselines (internal/*/bench_baseline.json) into one repo-root document so
// the bench trajectory is inspectable in a single place. CI's bench-smoke
// job regenerates the file and fails if the committed copy drifted.
//
// Usage:
//
//	go run ./cmd/ringbft-benchmerge -o BENCH_PR6.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// baselines lists the per-package reference files, keyed by the name the
// consolidated document uses.
var baselines = map[string]string{
	"crypto": "internal/crypto/bench_baseline.json",
	"sched":  "internal/sched/bench_baseline.json",
	"tcpnet": "internal/tcpnet/bench_baseline.json",
	"wal":    "internal/wal/bench_baseline.json",
}

func main() {
	out := flag.String("o", "BENCH_PR6.json", "output path (- for stdout)")
	root := flag.String("root", ".", "repository root holding the baseline files")
	flag.Parse()

	doc := map[string]any{
		"comment": "Consolidated micro-benchmark baselines, one section per package " +
			"(sources: internal/*/bench_baseline.json; regenerate with `make bench-consolidate`). " +
			"Each section keeps its package's own seed/fastpath structure and host line — " +
			"numbers are comparable within a section, not across hosts.",
		"sources": sortedValues(baselines),
	}
	for name, rel := range baselines {
		raw, err := os.ReadFile(filepath.Join(*root, rel))
		if err != nil {
			fatalf("read %s: %v", rel, err)
		}
		var section any
		if err := json.Unmarshal(raw, &section); err != nil {
			fatalf("parse %s: %v", rel, err)
		}
		doc[name] = section
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatalf("encode: %v", err)
	}
	if *out == "-" {
		os.Stdout.Write(buf.Bytes())
		return
	}
	if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	fmt.Printf("wrote %s (%d sections)\n", *out, len(baselines))
}

func sortedValues(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ringbft-benchmerge: "+format+"\n", args...)
	os.Exit(1)
}
