// Command ringbft-benchmerge consolidates the repo's benchmark sources —
// the open-loop latency sweep (ringbft-bench -openloop) and the
// per-package micro-benchmark baselines — into one flat repo-root document
// (BENCH_PR8.json): a list of {name, unit, value, commit} entries, so the
// bench trajectory is one grep-able series per measurement rather than a
// tree of per-package shapes.
//
// Usage:
//
//	go run ./cmd/ringbft-bench -openloop -rates 400,800,1600 -o depth1.json
//	go run ./cmd/ringbft-bench -openloop -pipeline 8 -rates 400,800,1600 -o depth8.json
//	go run ./cmd/ringbft-benchmerge -openloop depth1.json,depth8.json -o BENCH_PR8.json
//	go run ./cmd/ringbft-benchmerge -check BENCH_PR8.json   # schema gate (CI)
//
// -openloop accepts a comma-separated list of sweep files; sweeps run at
// different pipeline depths get a depth=N segment in their entry names, so
// the depth-1 and depth-8 series coexist in one trajectory.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"ringbft/internal/harness"
)

// Entry is one flat benchmark measurement.
type Entry struct {
	Name   string  `json:"name"`
	Unit   string  `json:"unit"`
	Value  float64 `json:"value"`
	Commit string  `json:"commit"`
}

// Doc is the consolidated document.
type Doc struct {
	Comment string  `json:"comment"`
	Entries []Entry `json:"entries"`
}

// baselines lists the per-package micro-benchmark reference files, keyed by
// the name prefix the flat entries use.
var baselines = map[string]string{
	"crypto": "internal/crypto/bench_baseline.json",
	"sched":  "internal/sched/bench_baseline.json",
	"tcpnet": "internal/tcpnet/bench_baseline.json",
	"wal":    "internal/wal/bench_baseline.json",
}

func main() {
	out := flag.String("o", "BENCH_PR8.json", "output path (- for stdout)")
	root := flag.String("root", ".", "repository root holding the baseline files")
	openloop := flag.String("openloop", "", "open-loop sweep JSON files (ringbft-bench -openloop output) to merge, comma-separated")
	check := flag.String("check", "", "validate an existing consolidated document and exit")
	commit := flag.String("commit", "", "commit hash to stamp entries with (default: git rev-parse --short HEAD)")
	flag.Parse()

	if *check != "" {
		if err := checkDoc(*check); err != nil {
			fatalf("check %s: %v", *check, err)
		}
		fmt.Printf("%s: schema ok\n", *check)
		return
	}

	c := *commit
	if c == "" {
		c = gitCommit(*root)
	}

	doc := Doc{
		Comment: "Consolidated benchmark trajectory: flat {name, unit, value, commit} entries " +
			"merging the open-loop latency sweep (ringbft-bench -openloop) with the per-package " +
			"micro-benchmark baselines. Regenerate with `make bench-consolidate`. Values are " +
			"host-dependent (1 vCPU container); compare entries across commits, not across hosts.",
	}
	if *openloop != "" {
		for _, path := range strings.Split(*openloop, ",") {
			path = strings.TrimSpace(path)
			if path == "" {
				continue
			}
			entries, err := openloopEntries(path, c)
			if err != nil {
				fatalf("openloop %s: %v", path, err)
			}
			doc.Entries = append(doc.Entries, entries...)
		}
	}
	for _, pkg := range sortedKeys(baselines) {
		raw, err := os.ReadFile(filepath.Join(*root, baselines[pkg]))
		if err != nil {
			fatalf("read %s: %v", baselines[pkg], err)
		}
		var section any
		if err := json.Unmarshal(raw, &section); err != nil {
			fatalf("parse %s: %v", baselines[pkg], err)
		}
		doc.Entries = append(doc.Entries, flatten(pkg, section, c)...)
	}
	sort.SliceStable(doc.Entries, func(i, j int) bool { return doc.Entries[i].Name < doc.Entries[j].Name })

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatalf("encode: %v", err)
	}
	if *out == "-" {
		os.Stdout.Write(buf.Bytes())
		return
	}
	if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	fmt.Printf("wrote %s (%d entries)\n", *out, len(doc.Entries))
}

// openloopEntries flattens an OpenLoopDoc into per-point entries.
func openloopEntries(path, commit string) ([]Entry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ol harness.OpenLoopDoc
	if err := json.Unmarshal(raw, &ol); err != nil {
		return nil, err
	}
	if len(ol.Points) == 0 {
		return nil, fmt.Errorf("no points in sweep document")
	}
	var out []Entry
	add := func(name, unit string, v float64) {
		out = append(out, Entry{Name: name, Unit: unit, Value: v, Commit: commit})
	}
	for _, p := range ol.Points {
		base := fmt.Sprintf("openloop/%s/z=%d/n=%d/depth=%d/offered=%.0f",
			ol.Protocol, ol.Shards, ol.ReplicasPerShard, ol.PipelineDepth, p.OfferedTps)
		add(base+"/committed_tps", "txn/s", p.CommittedTps)
		add(base+"/e2e_p50", "ms", p.E2E.P50Ms)
		add(base+"/e2e_p99", "ms", p.E2E.P99Ms)
		for _, ph := range sortedKeys(p.Phases) {
			add(base+"/phase/"+ph+"/p50", "ms", p.Phases[ph].P50Ms)
			add(base+"/phase/"+ph+"/p99", "ms", p.Phases[ph].P99Ms)
		}
		add(base+"/stalled_spans", "spans", float64(p.StalledSpans))
	}
	return out, nil
}

// flatten walks a baseline document and emits one entry per numeric leaf,
// naming it by its path. Non-numeric leaves (comments, host lines, notes)
// are dropped — the flat schema carries measurements only.
func flatten(prefix string, v any, commit string) []Entry {
	var out []Entry
	switch t := v.(type) {
	case map[string]any:
		for _, k := range sortedAnyKeys(t) {
			out = append(out, flatten(prefix+"/"+k, t[k], commit)...)
		}
	case float64:
		out = append(out, Entry{Name: prefix, Unit: unitOf(prefix), Value: t, Commit: commit})
	}
	return out
}

// unitOf derives the measurement unit from conventional key suffixes.
func unitOf(name string) string {
	switch {
	case strings.HasSuffix(name, "ns_op"), strings.HasSuffix(name, "ns_per_op"),
		strings.HasSuffix(name, "_ns"), strings.Contains(name, "results_ns_per_op"):
		return "ns/op"
	case strings.Contains(name, "allocs"):
		return "allocs/op"
	case strings.HasSuffix(name, "b_op"):
		return "B/op"
	default:
		return "value"
	}
}

// checkDoc validates the consolidated document's schema: it parses, every
// entry carries the four fields, and names are unique. CI gates on this
// instead of diffing regenerated numbers, which are host-dependent.
func checkDoc(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc Doc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return err
	}
	if len(doc.Entries) == 0 {
		return fmt.Errorf("no entries")
	}
	seen := make(map[string]struct{}, len(doc.Entries))
	var points []string
	for i, e := range doc.Entries {
		if e.Name == "" || e.Unit == "" || e.Commit == "" {
			return fmt.Errorf("entry %d (%q): missing name/unit/commit", i, e.Name)
		}
		if _, dup := seen[e.Name]; dup {
			return fmt.Errorf("duplicate entry name %q", e.Name)
		}
		seen[e.Name] = struct{}{}
		if strings.HasPrefix(e.Name, "openloop/") && strings.HasSuffix(e.Name, "/committed_tps") {
			points = append(points, e.Name)
		}
	}
	if len(points) < 3 {
		return fmt.Errorf("want >= 3 open-loop offered-load points, got %d", len(points))
	}
	depths := make(map[string]struct{})
	for _, name := range points {
		for _, seg := range strings.Split(name, "/") {
			if strings.HasPrefix(seg, "depth=") {
				depths[seg] = struct{}{}
			}
		}
	}
	// The pipeline comparison is part of the trajectory: a consolidated
	// document that names depths must cover at least two of them, or the
	// depth-1 vs depth-N knee comparison has silently been dropped.
	if len(depths) == 1 {
		return fmt.Errorf("open-loop entries cover only one pipeline depth; want sweeps at >= 2 depths (e.g. depth=1 and depth=8)")
	}
	sort.Strings(points)
	for _, name := range points {
		base := strings.TrimSuffix(name, "/committed_tps")
		for _, want := range []string{
			"/e2e_p50", "/e2e_p99",
			"/phase/pre-prepare/p50", "/phase/pre-prepare/p99",
			"/phase/prepare/p50", "/phase/prepare/p99",
			"/phase/commit/p50", "/phase/commit/p99",
			"/phase/execute/p50", "/phase/execute/p99",
		} {
			if _, ok := seen[base+want]; !ok {
				return fmt.Errorf("point %s: missing %s", base, want)
			}
		}
	}
	return nil
}

func gitCommit(root string) string {
	cmd := exec.Command("git", "rev-parse", "--short", "HEAD")
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedAnyKeys(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ringbft-benchmerge: "+format+"\n", args...)
	os.Exit(1)
}
