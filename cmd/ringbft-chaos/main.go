// ringbft-chaos runs the chaos subsystem (internal/chaos) from the command
// line: the deterministic scenario matrix, open-ended soak loops over fresh
// seeds, wall-clock schedules through the real harness, and single-scenario
// replays from a printed seed.
//
//	ringbft-chaos                            # one pass over the matrix
//	ringbft-chaos -mode soak -budget 20m     # fresh seeds until budget ends
//	ringbft-chaos -mode wallclock            # matrix over the real harness
//	ringbft-chaos -proto ringbft -fault loss-storm -chaos.seed 42
//
// Every failure prints the seed and the exact `go test` command that
// replays it; the process exits non-zero so CI fails the job.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ringbft/internal/chaos"
	"ringbft/internal/harness"
)

func main() {
	var (
		mode    = flag.String("mode", "det", "det (deterministic matrix), soak (matrix over fresh seeds until -budget), wallclock (matrix over the real harness)")
		proto   = flag.String("proto", "", "run a single scenario: protocol (ringbft|ahl|sharper)")
		fault   = flag.String("fault", "", "run a single scenario: fault class (see internal/chaos.Faults)")
		seed    = flag.Int64("chaos.seed", 0, "scenario seed (single-scenario mode; soak start seed)")
		shards  = flag.Int("chaos.shards", 0, "ring size in shards (single-scenario mode; 0 = scenario default)")
		budget  = flag.Duration("budget", 10*time.Minute, "soak time budget")
		window  = flag.Duration("window", 3*time.Second, "wall-clock measurement window per scenario")
		verbose = flag.Bool("v", false, "log every scenario, not only failures")
	)
	flag.Parse()

	failures := 0
	runDet := func(sc chaos.Scenario) {
		res, err := chaos.RunScenario(sc)
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "ERROR %s: %v\nreproduce with: %s\n", sc.Name(), err, sc.ReproCmd())
			return
		}
		if res.Failed() {
			failures++
			fmt.Fprintln(os.Stderr, res.FailureReport())
			return
		}
		if *verbose {
			fmt.Printf("ok   %-40s committed=%d ticks=%d probeTicks=%d fp=%s\n",
				sc.Name(), res.Committed, res.Ticks, res.ProbeTicks, res.Fingerprint())
		}
	}

	switch {
	case *proto != "" || *fault != "":
		sc := chaos.Scenario{Protocol: harness.Protocol(*proto), Fault: chaos.Fault(*fault), Seed: *seed, Shards: *shards}
		runDet(sc)

	case *mode == "det":
		for _, sc := range chaos.Matrix() {
			runDet(sc)
		}

	case *mode == "soak":
		// Fresh seeds each pass: the matrix's fault windows, victims, loss
		// rates, and interleavings all derive from the seed, so a soak
		// explores schedule space until the budget runs out.
		start := time.Now()
		seedBase := *seed
		if seedBase == 0 {
			seedBase = time.Now().UnixNano() % 1_000_000
		}
		pass := 0
		for time.Since(start) < *budget {
			for _, sc := range chaos.Matrix() {
				sc.Seed = sc.Seed + seedBase + int64(pass)*1000
				runDet(sc)
			}
			pass++
			fmt.Printf("soak pass %d done (%v elapsed, %d failures)\n", pass, time.Since(start).Round(time.Second), failures)
		}

	case *mode == "wallclock":
		for _, sc := range chaos.Matrix() {
			res, err := chaos.RunWallClock(sc, *window)
			if err != nil {
				failures++
				fmt.Fprintf(os.Stderr, "ERROR %s: %v\n", sc.Name(), err)
				continue
			}
			if res.Failed() {
				failures++
				fmt.Fprintln(os.Stderr, res.FailureReport())
				continue
			}
			if *verbose {
				fmt.Printf("ok   %-40s txns=%d drops=%d heal=%v\n",
					sc.Name(), res.Result.Txns, res.Result.MsgsDropped, res.Result.NemesisLastHeal)
			}
		}

	default:
		fmt.Fprintf(os.Stderr, "unknown -mode %q\n", *mode)
		os.Exit(2)
	}

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d scenario(s) failed\n", failures)
		os.Exit(1)
	}
	fmt.Println("all scenarios passed")
}
