// Command ringbft-vet is the protocol-invariant multichecker: it runs the
// internal/analysis suite — mapiter, verifyfirst, locksend, wallclock,
// kindswitch, codecbounds, lockorder — over the module and fails on any
// unsuppressed finding.
//
// `make lint` runs it as part of tier-1 verify; CI runs it in a dedicated
// job. Suppressions (`//ringbft:ignore <analyzer> <reason>`) are honoured
// but counted and printed, so the accepted-risk ledger is visible in every
// run; a stale suppression (one that silences nothing) fails the run like
// any other finding. See internal/analysis for the framework and rules.
//
// Usage:
//
//	ringbft-vet [-list] [-only analyzer[,analyzer]] [-quiet] [packages]
//
// With no package arguments it analyzes ./....
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ringbft/internal/analysis"
)

func main() {
	var (
		list  = flag.Bool("list", false, "print the analyzers and their scopes, then exit")
		only  = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		quiet = flag.Bool("quiet", false, "suppress the suppression ledger and summary on success")
	)
	flag.Parse()

	suite := analysis.DefaultSuite()
	if *list {
		for _, sc := range suite {
			scope := "all packages"
			if len(sc.Scope) > 0 {
				scope = strings.Join(sc.Scope, ", ")
			}
			fmt.Printf("%-12s %s\n  scope: %s\n  why:   %s\n", sc.Analyzer.Name, sc.Analyzer.Doc, scope, sc.Why)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if analysis.ByName(name) == nil {
				fmt.Fprintf(os.Stderr, "ringbft-vet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			keep[name] = true
		}
		var filtered []analysis.Scoped
		for _, sc := range suite {
			if keep[sc.Analyzer.Name] {
				filtered = append(filtered, sc)
			}
		}
		suite = filtered
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := analysis.Run("", suite, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ringbft-vet: %v\n", err)
		os.Exit(2)
	}

	failures := res.Failures()
	for _, f := range failures {
		fmt.Println(f)
	}
	suppressed := res.Suppressed()
	if !*quiet {
		for _, f := range suppressed {
			fmt.Println(f)
		}
		fmt.Printf("ringbft-vet: %d packages, %d findings (%d suppressed with reasons, %d failing)\n",
			res.Packages, len(res.Findings), len(suppressed), len(failures))
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
}
