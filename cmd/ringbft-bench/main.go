// Command ringbft-bench regenerates the tables and figures of the RingBFT
// paper's evaluation (Section 8) on the simulated WAN. Each figure prints
// the same series the paper plots — throughput and average latency per
// x-value per protocol — so paper-vs-measured shapes can be compared
// directly (see EXPERIMENTS.md).
//
// Usage:
//
//	ringbft-bench -figure all                # every figure, quick profile
//	ringbft-bench -figure fig8-shards -profile full
//	ringbft-bench -figure custom -protocol ringbft -shards 9 -replicas 7 \
//	    -cross 0.3 -batch 100 -duration 5s   # one-off run
//
// The -openloop mode replaces the closed-loop clients with a Poisson
// arrival generator and sweeps offered load, emitting a JSON document of
// committed throughput plus end-to-end and per-phase latency quantiles
// (consolidate with ringbft-benchmerge):
//
//	ringbft-bench -openloop -rates 400,800,1600 -duration 2s -o openloop.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ringbft/internal/harness"
)

func main() {
	var (
		figure  = flag.String("figure", "all", "figure to regenerate: all, fig1, fig8-shards, fig8-replicas, fig8-cross, fig8-batch, fig8-involved, fig8-clients, fig9, fig9-recovery, fig10, ablation-linear, ablation-crypto, ablation-exec, custom")
		profile = flag.String("profile", "quick", "experiment scale: quick or full")

		// custom run flags
		protocol = flag.String("protocol", "ringbft", "custom: protocol (ringbft, ahl, sharper, pbft, zyzzyva, sbft, poe, hotstuff, rcc)")
		shards   = flag.Int("shards", 3, "custom: number of shards")
		replicas = flag.Int("replicas", 4, "custom: replicas per shard")
		cross    = flag.Float64("cross", 0.3, "custom: cross-shard fraction [0,1]")
		involved = flag.Int("involved", 0, "custom: involved shards per cst (0 = all)")
		batch    = flag.Int("batch", 50, "custom: batch size")
		workers  = flag.Int("execworkers", 0, "custom: parallel execution workers per replica (0 = sequential)")
		vworkers = flag.Int("verifyworkers", 0, "custom: batched signature-verification workers per replica (0 = serial)")
		clients  = flag.Int("clients", 8, "custom: concurrent clients")
		duration = flag.Duration("duration", time.Second, "custom: measurement window")
		latScale = flag.Float64("latscale", 0.05, "custom: WAN latency compression factor")
		nocrypto = flag.Bool("nocrypto", false, "custom: disable MACs/signatures")

		// open-loop sweep flags
		openloop = flag.Bool("openloop", false, "run the open-loop (Poisson arrival) latency sweep instead of a figure")
		rates    = flag.String("rates", "400,800,1600", "openloop: offered loads to sweep, txns/s, comma-separated")
		seed     = flag.Int64("seed", 1, "openloop: workload/arrival seed")
		outPath  = flag.String("o", "-", "openloop: output path for the sweep JSON (- for stdout)")
		pipeline = flag.Int("pipeline", 0, "openloop: pipeline depth — max proposals in flight per primary (0 = legacy unbounded drain)")
		cbatch   = flag.Int("clientbatch", 0, "openloop: txns per client request (0 = batch size); below -batch gives the adaptive batcher room to merge")
	)
	flag.Parse()

	if *openloop {
		runOpenLoop(openLoopArgs{
			protocol: *protocol, shards: *shards, replicas: *replicas,
			cross: *cross, involved: *involved, batch: *batch,
			workers: *workers, vworkers: *vworkers, duration: *duration,
			latScale: *latScale, nocrypto: *nocrypto,
			rates: *rates, seed: *seed, out: *outPath,
			pipeline: *pipeline, clientBatch: *cbatch,
		})
		return
	}

	p := harness.Quick
	if *profile == "full" {
		p = harness.Full
	}

	type figGen struct {
		name string
		run  func(harness.Profile) (harness.Figure, error)
	}
	gens := []figGen{
		{"fig1", harness.Fig1},
		{"fig8-shards", harness.Fig8Shards},
		{"fig8-replicas", harness.Fig8Replicas},
		{"fig8-cross", harness.Fig8CrossRate},
		{"fig8-batch", harness.Fig8BatchSize},
		{"fig8-involved", harness.Fig8Involved},
		{"fig8-clients", harness.Fig8Clients},
		{"fig9-recovery", harness.Fig9Recovery},
		{"fig10", harness.Fig10},
		{"ablation-linear", harness.AblationLinearForward},
		{"ablation-crypto", harness.AblationCrypto},
		{"ablation-exec", harness.AblationExecWorkers},
	}

	switch *figure {
	case "custom":
		cfg := harness.Config{
			Protocol:         harness.Protocol(*protocol),
			Shards:           *shards,
			ReplicasPerShard: *replicas,
			CrossShardPct:    *cross,
			InvolvedShards:   *involved,
			BatchSize:        *batch,
			ExecWorkers:      *workers,
			VerifyWorkers:    *vworkers,
			Clients:          *clients,
			Duration:         *duration,
			LatencyScale:     *latScale,
			NoCrypto:         *nocrypto,
		}
		res, err := harness.Run(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res)
		fmt.Printf("messages: %d (dropped %d), bytes: %d (cross-region %d), view changes: %d, retransmits: %d\n",
			res.MsgsSent, res.MsgsDropped, res.BytesSent, res.BytesCross, res.ViewChanges, res.Retransmits)
		return

	case "fig9":
		runFig9(p)
		return

	case "all":
		for _, g := range gens {
			start := time.Now()
			fig, err := g.run(p)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", g.name, err))
			}
			fmt.Println(fig.Render())
			fmt.Printf("(%s took %.1fs)\n\n", g.name, time.Since(start).Seconds())
		}
		runFig9(p)
		return

	default:
		for _, g := range gens {
			if g.name == *figure {
				fig, err := g.run(p)
				if err != nil {
					fatal(err)
				}
				fmt.Println(fig.Render())
				return
			}
		}
		fatal(fmt.Errorf("unknown figure %q", *figure))
	}
}

type openLoopArgs struct {
	protocol          string
	shards, replicas  int
	cross             float64
	involved, batch   int
	workers, vworkers int
	duration          time.Duration
	latScale          float64
	nocrypto          bool
	rates             string
	seed              int64
	out               string
	pipeline          int
	clientBatch       int
}

func runOpenLoop(a openLoopArgs) {
	var loads []float64
	for _, s := range strings.Split(a.rates, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || r <= 0 {
			fatal(fmt.Errorf("bad rate %q in -rates", s))
		}
		loads = append(loads, r)
	}
	cfg := harness.Config{
		Protocol:         harness.Protocol(a.protocol),
		Shards:           a.shards,
		ReplicasPerShard: a.replicas,
		CrossShardPct:    a.cross,
		InvolvedShards:   a.involved,
		BatchSize:        a.batch,
		ExecWorkers:      a.workers,
		VerifyWorkers:    a.vworkers,
		Duration:         a.duration,
		LatencyScale:     a.latScale,
		NoCrypto:         a.nocrypto,
		Seed:             a.seed,
		PipelineDepth:    a.pipeline,
		ClientBatch:      a.clientBatch,
	}
	doc, err := harness.RunOpenLoopSweep(cfg, loads)
	if err != nil {
		fatal(err)
	}
	for _, p := range doc.Points {
		fmt.Fprintf(os.Stderr,
			"offered %.0f txn/s: committed %.0f txn/s, e2e p50 %.1fms p99 %.1fms (stalled %d)\n",
			p.OfferedTps, p.CommittedTps, p.E2E.P50Ms, p.E2E.P99Ms, p.StalledSpans)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if a.out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(a.out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d points)\n", a.out, len(doc.Points))
}

func runFig9(p harness.Profile) {
	res, err := harness.Fig9(p)
	if err != nil {
		fatal(err)
	}
	fmt.Println("== fig9: Throughput under primary failure (RingBFT) ==")
	fmt.Printf("primaries of %d/%d shards crash at t=%v; view change recovers\n",
		res.Config.FailPrimaries, res.Config.Shards, res.Config.FailAt)
	fmt.Println("t(ms)       txns/100ms")
	var peak int64 = 1
	for _, v := range res.Timeline {
		if v > peak {
			peak = v
		}
	}
	for i, v := range res.Timeline {
		bar := strings.Repeat("#", int(v*50/peak))
		fmt.Printf("%-12d%-8d%s\n", i*100, v, bar)
	}
	fmt.Printf("view changes: %d\n\n", res.ViewChanges)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ringbft-bench:", err)
	os.Exit(1)
}
