// Command ringbft-node runs one RingBFT replica over real TCP (stdlib net).
// All replicas of a deployment share a JSON topology file and a key seed;
// node identity is (shard, index).
//
// Topology file format:
//
//	{
//	  "shards": 2,
//	  "replicasPerShard": 4,
//	  "records": 4096,
//	  "seed": 42,
//	  "nodes": {"0/0": "127.0.0.1:7000", "0/1": "127.0.0.1:7001", ...}
//	}
//
// Example (2 shards × 4 replicas on one machine):
//
//	for s in 0 1; do for i in 0 1 2 3; do
//	  ringbft-node -topology cluster.json -shard $s -index $i &
//	done; done
//	ringbft-client -topology cluster.json -txns 100
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"ringbft/internal/evidence"
	"ringbft/internal/ringbft"
	"ringbft/internal/tcpnet"
	"ringbft/internal/topology"
	"ringbft/internal/types"
	"ringbft/internal/wal"
)

func main() {
	var (
		topoPath = flag.String("topology", "cluster.json", "path to the shared topology file")
		shard    = flag.Int("shard", 0, "this replica's shard")
		index    = flag.Int("index", 0, "this replica's index within the shard")

		dataDir = flag.String("datadir", "", "durability directory (WAL + snapshots); empty = in-memory only")
		fsync   = flag.Duration("fsync-interval", 5*time.Millisecond,
			"WAL group-commit interval (0 = fsync every append)")
		snapEvery = flag.Uint64("snapshot-interval", 0,
			"sequences between snapshots (0 = checkpoint interval)")

		outboxDepth = flag.Int("outbox-depth", 0,
			"per-peer outbound queue depth (0 = transport default)")
		dialTimeout = flag.Duration("dial-timeout", 0,
			"TCP connect timeout per attempt (0 = transport default)")
		writeTimeout = flag.Duration("write-timeout", 0,
			"TCP write/flush deadline; a stalled peer connection is torn down past it (0 = transport default)")
	)
	flag.Parse()

	topo, err := topology.Load(*topoPath)
	if err != nil {
		log.Fatalf("ringbft-node: %v", err)
	}
	self := types.ReplicaNode(types.ShardID(*shard), *index)
	addr, ok := topo.Nodes[topology.Key(*shard, *index)]
	if !ok {
		log.Fatalf("ringbft-node: %v not in topology", self)
	}

	cfg := types.DefaultConfig(topo.Shards, topo.ReplicasPerShard)
	cfg.DataDir = *dataDir
	cfg.FsyncInterval = *fsync
	cfg.SnapshotInterval = types.SeqNum(*snapEvery)
	cfg.OutboxDepth = *outboxDepth
	cfg.DialTimeout = *dialTimeout
	cfg.WriteTimeout = *writeTimeout

	transport, err := tcpnet.New(self, addr, topo.Addrs(), tcpnet.FromConfig(cfg))
	if err != nil {
		log.Fatalf("ringbft-node: %v", err)
	}
	defer transport.Close()

	ring, err := topo.Keygen().Ring(self)
	if err != nil {
		log.Fatalf("ringbft-node: %v", err)
	}
	peers := make([]types.NodeID, topo.ReplicasPerShard)
	for i := range peers {
		peers[i] = types.ReplicaNode(types.ShardID(*shard), i)
	}
	opts := ringbft.Options{
		Config: cfg, Shard: types.ShardID(*shard), Self: self,
		Peers: peers, Auth: ring,
		Send: func(to types.NodeID, m *types.Message) { transport.Send(to, m) },
	}
	if cfg.DataDir != "" {
		m, rec, err := ringbft.OpenDurability(cfg, self, nil)
		if err != nil {
			log.Fatalf("ringbft-node: open durability: %v", err)
		}
		defer m.Close()
		opts.Durability = m
		opts.Recovered = rec
		if !rec.Empty() {
			log.Printf("ringbft-node %v recovering from %s", self, m.Dir())
		}
		// Misbehavior evidence shares the data dir so accusations survive
		// restarts — a crash must not launder a recorded equivocation.
		ev, err := evidence.Open(wal.OSFS{}, filepath.Join(m.Dir(), "evidence"))
		if err != nil {
			log.Fatalf("ringbft-node: open evidence log: %v", err)
		}
		defer ev.Close()
		opts.Evidence = ev
	}
	r := ringbft.New(opts)
	r.Preload(topo.Records)
	if r.Recovered() {
		st := r.Stats()
		log.Printf("ringbft-node %v recovered: kmax %d, ledger height %d", self, st.KMax, st.LedgerHeight)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		cancel()
	}()

	log.Printf("ringbft-node %v listening on %s (z=%d, n=%d, f=%d)",
		self, transport.Addr(), topo.Shards, topo.ReplicasPerShard, cfg.F())
	r.Run(ctx, transport.Inbox())
	st := r.Stats()
	log.Printf("ringbft-node %v stopped: executed %d txns (%d cross-shard), %d view changes, ledger height %d",
		self, st.ExecutedTxns, st.ExecutedCross, st.ViewChanges, st.LedgerHeight)
	// Accountability: everything this replica can prove about peer or client
	// misbehavior, deduplicated. "evidence: none" is the healthy-run output.
	log.Printf("ringbft-node %v %s", self, r.Evidence().Summary())
	// Message loss is silent by design (BFT timers absorb it); the shutdown
	// summary is where operators see how much of it there was and why.
	ns := transport.Stats()
	log.Printf("ringbft-node %v transport: %d enqueued, %d frames sent (%d bytes), dropped %d (outbox %d, inbox %d, self %d, encode %d, unknown peer %d, wire %d), %d redials (%d dial errors), %d write errors, %d bad inbound frames",
		self, ns.Enqueued, ns.FramesSent, ns.BytesSent, ns.Dropped(),
		ns.OutboxDrops, ns.InboxDrops, ns.SelfDrops, ns.EncodeDrops, ns.UnknownPeer, ns.WireDrops,
		ns.Redials, ns.DialErrors, ns.WriteErrors, ns.BadFrames)
}
