// Command ringbft-node runs one RingBFT replica over real TCP (stdlib net).
// All replicas of a deployment share a JSON topology file and a key seed;
// node identity is (shard, index).
//
// Topology file format:
//
//	{
//	  "shards": 2,
//	  "replicasPerShard": 4,
//	  "records": 4096,
//	  "seed": 42,
//	  "nodes": {"0/0": "127.0.0.1:7000", "0/1": "127.0.0.1:7001", ...}
//	}
//
// Example (2 shards × 4 replicas on one machine):
//
//	for s in 0 1; do for i in 0 1 2 3; do
//	  ringbft-node -topology cluster.json -shard $s -index $i &
//	done; done
//	ringbft-client -topology cluster.json -txns 100
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"ringbft/internal/evidence"
	"ringbft/internal/metrics"
	"ringbft/internal/ringbft"
	"ringbft/internal/tcpnet"
	"ringbft/internal/topology"
	"ringbft/internal/trace"
	"ringbft/internal/types"
	"ringbft/internal/wal"
)

func main() {
	var (
		topoPath = flag.String("topology", "cluster.json", "path to the shared topology file")
		shard    = flag.Int("shard", 0, "this replica's shard")
		index    = flag.Int("index", 0, "this replica's index within the shard")

		dataDir = flag.String("datadir", "", "durability directory (WAL + snapshots); empty = in-memory only")
		fsync   = flag.Duration("fsync-interval", 5*time.Millisecond,
			"WAL group-commit interval (0 = fsync every append)")
		snapEvery = flag.Uint64("snapshot-interval", 0,
			"sequences between snapshots (0 = checkpoint interval)")

		pipelineDepth = flag.Int("pipeline-depth", 0,
			"max proposals in flight per primary across sequence numbers; >= 1 also enables adaptive batching (0 = legacy unbounded drain)")

		outboxDepth = flag.Int("outbox-depth", 0,
			"per-peer outbound queue depth (0 = transport default)")
		dialTimeout = flag.Duration("dial-timeout", 0,
			"TCP connect timeout per attempt (0 = transport default)")
		writeTimeout = flag.Duration("write-timeout", 0,
			"TCP write/flush deadline; a stalled peer connection is torn down past it (0 = transport default)")
		metricsAddr = flag.String("metrics-addr", "",
			"HTTP listen address for /metrics (Prometheus text) and /debug/pprof; empty = disabled")
	)
	flag.Parse()

	topo, err := topology.Load(*topoPath)
	if err != nil {
		log.Fatalf("ringbft-node: %v", err)
	}
	self := types.ReplicaNode(types.ShardID(*shard), *index)
	addr, ok := topo.Nodes[topology.Key(*shard, *index)]
	if !ok {
		log.Fatalf("ringbft-node: %v not in topology", self)
	}

	cfg := types.DefaultConfig(topo.Shards, topo.ReplicasPerShard)
	cfg.DataDir = *dataDir
	cfg.FsyncInterval = *fsync
	cfg.SnapshotInterval = types.SeqNum(*snapEvery)
	cfg.PipelineDepth = *pipelineDepth
	cfg.OutboxDepth = *outboxDepth
	cfg.DialTimeout = *dialTimeout
	cfg.WriteTimeout = *writeTimeout

	transport, err := tcpnet.New(self, addr, topo.Addrs(), tcpnet.FromConfig(cfg))
	if err != nil {
		log.Fatalf("ringbft-node: %v", err)
	}
	defer transport.Close()

	ring, err := topo.Keygen().Ring(self)
	if err != nil {
		log.Fatalf("ringbft-node: %v", err)
	}
	peers := make([]types.NodeID, topo.ReplicasPerShard)
	for i := range peers {
		peers[i] = types.ReplicaNode(types.ShardID(*shard), i)
	}
	// The registry is the node's single source of observable state: the
	// replica, WAL, scheduler, and transport all register on it; /metrics
	// scrapes it live and the shutdown summary is one snapshot of it.
	reg := metrics.NewRegistry()
	tr := trace.New(0)
	transport.RegisterMetrics(reg)

	opts := ringbft.Options{
		Config: cfg, Shard: types.ShardID(*shard), Self: self,
		Peers: peers, Auth: ring,
		Send: func(to types.NodeID, m *types.Message) { transport.Send(to, m) },
		// The pipelined primary narrows its window when the transport's
		// writers fall behind the send rate (outbox occupancy).
		Backpressure: transport.Backlog,
		Metrics:      reg, Tracer: tr,
	}
	if cfg.DataDir != "" {
		m, rec, err := ringbft.OpenDurability(cfg, self, nil)
		if err != nil {
			log.Fatalf("ringbft-node: open durability: %v", err)
		}
		defer m.Close()
		opts.Durability = m
		opts.Recovered = rec
		if !rec.Empty() {
			log.Printf("ringbft-node %v recovering from %s", self, m.Dir())
		}
		// Misbehavior evidence shares the data dir so accusations survive
		// restarts — a crash must not launder a recorded equivocation.
		ev, err := evidence.Open(wal.OSFS{}, filepath.Join(m.Dir(), "evidence"))
		if err != nil {
			log.Fatalf("ringbft-node: open evidence log: %v", err)
		}
		defer ev.Close()
		opts.Evidence = ev
	}
	r := ringbft.New(opts)
	r.Preload(topo.Records)
	if r.Recovered() {
		st := r.Stats()
		log.Printf("ringbft-node %v recovered: kmax %d, ledger height %d", self, st.KMax, st.LedgerHeight)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		cancel()
	}()

	if *metricsAddr != "" {
		srv := &http.Server{Addr: *metricsAddr, Handler: debugMux(reg, tr)}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("ringbft-node %v metrics server: %v", self, err)
			}
		}()
		defer srv.Close()
		log.Printf("ringbft-node %v metrics on http://%s/metrics", self, *metricsAddr)
	}

	log.Printf("ringbft-node %v listening on %s (z=%d, n=%d, f=%d)",
		self, transport.Addr(), topo.Shards, topo.ReplicasPerShard, cfg.F())
	r.Run(ctx, transport.Inbox())
	st := r.Stats()
	log.Printf("ringbft-node %v stopped: ledger height %d, kmax %d", self, st.LedgerHeight, st.KMax)
	// Accountability: everything this replica can prove about peer or client
	// misbehavior, deduplicated. "evidence: none" is the healthy-run output.
	log.Printf("ringbft-node %v %s", self, r.Evidence().Summary())
	// One canonical shutdown report: the same registry /metrics scrapes —
	// consensus counters, WAL latency, scheduler activity, and the
	// transport's drop/redial taxonomy — rendered once, in one format,
	// instead of a hand-maintained printf per subsystem.
	fmt.Print(reg.Snapshot())
}

// debugMux serves the observability endpoints on a dedicated mux (never the
// DefaultServeMux, which net/http/pprof pollutes globally): Prometheus-text
// metrics, pprof profiles, and the consensus lifecycle trace dump.
func debugMux(reg *metrics.Registry, tr *trace.Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		events := tr.Events()
		fmt.Fprintf(w, "# %d events buffered, %d overwritten\n", len(events), tr.Overwritten())
		for _, e := range events {
			fmt.Fprintf(w, "%s shard=%d seq=%d %s %s\n",
				e.At.Format(time.RFC3339Nano), e.Shard, e.Seq, e.Phase, e.Note)
		}
		bd := trace.Breakdown(events)
		for _, ph := range []trace.Phase{trace.PhasePrePrepare, trace.PhasePrepare, trace.PhaseCommit, trace.PhaseExecute} {
			ds := bd[ph]
			fmt.Fprintf(w, "# breakdown %s: n=%d p50=%s p99=%s\n",
				ph, len(ds), trace.Quantile(ds, 0.50), trace.Quantile(ds, 0.99))
		}
	})
	return mux
}
