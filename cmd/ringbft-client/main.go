// Command ringbft-client drives a TCP-deployed RingBFT cluster
// (cmd/ringbft-node): it generates a YCSB-style workload, submits batches,
// waits for f+1 matching replica responses per batch, and reports throughput
// and latency. See cmd/ringbft-node for the topology file format.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"ringbft/internal/crypto"
	"ringbft/internal/tcpnet"
	"ringbft/internal/topology"
	"ringbft/internal/types"
	"ringbft/internal/workload"
)

func main() {
	var (
		topoPath = flag.String("topology", "cluster.json", "path to the shared topology file")
		id       = flag.Int("id", 1, "client identifier (distinct per client process)")
		listen   = flag.String("listen", "127.0.0.1:0", "address this client listens on for responses")
		batches  = flag.Int("batches", 20, "number of batches to submit")
		batch    = flag.Int("batch", 10, "transactions per batch")
		crossPct = flag.Float64("cross", 0.3, "cross-shard fraction [0,1]")
		involved = flag.Int("involved", 0, "involved shards per cst (0 = all)")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-batch completion timeout")

		outboxDepth = flag.Int("outbox-depth", 0,
			"per-peer outbound queue depth (0 = transport default)")
		dialTimeout = flag.Duration("dial-timeout", 0,
			"TCP connect timeout per attempt (0 = transport default)")
		writeTimeout = flag.Duration("write-timeout", 0,
			"TCP write/flush deadline (0 = transport default)")
	)
	flag.Parse()

	topo, err := topology.Load(*topoPath)
	if err != nil {
		log.Fatalf("ringbft-client: %v", err)
	}
	// Replicas dial Response messages back by NodeID, so this client's id
	// and listen address must appear in the topology's "clients" table.
	self := types.ClientNode(types.ClientID(*id))
	transport, err := tcpnet.New(self, *listen, topo.Addrs(), tcpnet.Options{
		OutboxDepth:  *outboxDepth,
		DialTimeout:  *dialTimeout,
		WriteTimeout: *writeTimeout,
	})
	if err != nil {
		log.Fatalf("ringbft-client: %v", err)
	}
	defer transport.Close()
	ring, err := topo.ClientRing(types.ClientID(*id))
	if err != nil {
		log.Fatalf("ringbft-client: %v", err)
	}
	clientAddrHint := transport.Addr()
	if want, ok := topo.Addrs()[self]; !ok {
		log.Printf("warning: client %d has no entry in the topology's clients table; replicas cannot respond", *id)
	} else if want != clientAddrHint {
		log.Printf("note: listening on %s; topology advertises %s", clientAddrHint, want)
	}

	inv := *involved
	if inv <= 0 {
		inv = topo.Shards
	}
	gen := workload.New(workload.Config{
		Shards:         topo.Shards,
		ActiveRecords:  topo.Records,
		CrossShardPct:  *crossPct,
		InvolvedShards: inv,
		BatchSize:      *batch,
		Seed:           int64(*id) * 104729,
	})

	f := (topo.ReplicasPerShard - 1) / 3
	need := f + 1
	cid := types.ClientID(*id)

	fmt.Printf("ringbft-client %d at %s: %d batches × %d txns, %.0f%% cross-shard over %d shards\n",
		*id, clientAddrHint, *batches, *batch, *crossPct*100, topo.Shards)

	var totalTxns int
	var totalLatency time.Duration
	start := time.Now()
	for i := 0; i < *batches; i++ {
		b := gen.NextBatch(cid)
		d := b.Digest()
		req := &types.Message{Type: types.MsgClientRequest, From: self, Batch: b, Digest: d}
		t0 := time.Now()
		transport.Send(types.ReplicaNode(b.Initiator(), 0), req)

		votes := map[types.NodeID]struct{}{}
		deadline := time.NewTimer(*timeout)
		rebroadcast := time.NewTicker(2 * time.Second)
	waiting:
		for {
			select {
			case m := <-transport.Inbox():
				if m.Type != types.MsgResponse || m.Digest != d {
					continue
				}
				// Only replicas of the initiator shard vote toward the f+1
				// quorum, and only with a valid pairwise MAC. The MAC's
				// bound is the deployment's trust domain: all pairwise keys
				// derive from the shared topology seed (the repo's PKI
				// stand-in, see topology.Keygen), so this rejects responses
				// from anything outside the seed-holding cluster and all
				// wrong-shard or malformed votes — but a Byzantine replica,
				// holding the seed, could still forge peers' MACs. Closing
				// that would take per-response signatures.
				if m.From.Kind != types.KindReplica || m.From.Shard != b.Initiator() ||
					m.From.Index < 0 || m.From.Index >= topo.ReplicasPerShard {
					continue
				}
				if crypto.VerifyMessageMAC(ring, m) != nil {
					continue
				}
				votes[m.From] = struct{}{}
				if len(votes) >= need {
					break waiting
				}
			case <-rebroadcast.C:
				// Attack A1: broadcast to every replica of the initiator.
				for r := 0; r < topo.ReplicasPerShard; r++ {
					transport.Send(types.ReplicaNode(b.Initiator(), r), req)
				}
			case <-deadline.C:
				log.Fatalf("batch %d timed out after %v", i, *timeout)
			}
		}
		deadline.Stop()
		rebroadcast.Stop()
		lat := time.Since(t0)
		totalTxns += len(b.Txns)
		totalLatency += lat
		fmt.Printf("batch %3d (%s, %d shards) committed in %v\n",
			i, kind(b), len(b.Involved), lat.Round(time.Millisecond))
	}
	elapsed := time.Since(start)
	fmt.Printf("done: %d txns in %v — %.0f txn/s, avg batch latency %v\n",
		totalTxns, elapsed.Round(time.Millisecond),
		float64(totalTxns)/elapsed.Seconds(),
		(totalLatency / time.Duration(*batches)).Round(time.Millisecond))
}

func kind(b *types.Batch) string {
	if b.IsCrossShard() {
		return "cross-shard"
	}
	return "single-shard"
}
