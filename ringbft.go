// Package ringbft is the public API of this repository: a from-scratch Go
// implementation of RingBFT — Resilient Consensus over Sharded Ring Topology
// (Rahnama, Gupta, Sogani, Krishnan, Sadoghi; EDBT 2022) — together with the
// substrates the paper's evaluation depends on: an intra-shard PBFT engine,
// a simulated 15-region WAN, per-shard blockchains, a YCSB-style workload
// generator, the AHL and Sharper sharding baselines, and the single-primary
// baselines of Figure 1 (Zyzzyva, SBFT, PoE, HotStuff, RCC).
//
// Two entry points:
//
//   - Cluster embeds a complete RingBFT deployment in-process: shards of
//     replicas over the simulated network, with synchronous Submit for
//     transactions. This is what applications and the examples use.
//
//   - RunExperiment / the Fig* functions drive the benchmark harness that
//     regenerates every figure of the paper's evaluation (see EXPERIMENTS.md
//     and cmd/ringbft-bench).
package ringbft

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ringbft/internal/crypto"
	"ringbft/internal/harness"
	"ringbft/internal/ledger"
	"ringbft/internal/ringbft"
	"ringbft/internal/simnet"
	"ringbft/internal/types"
)

// Re-exported core types, so users of the library never import internal
// packages.
type (
	// Txn is a deterministic read-modify-write transaction (known
	// read/write sets, Section 3 of the paper).
	Txn = types.Txn
	// TxnID identifies a transaction.
	TxnID = types.TxnID
	// Key is a record key; ownership is hash-partitioned across shards.
	Key = types.Key
	// Value is a record value.
	Value = types.Value
	// ShardID identifies a shard; ring order is ascending ShardID.
	ShardID = types.ShardID
	// ClientID identifies a client.
	ClientID = types.ClientID
	// Digest is a SHA-256 batch/message digest.
	Digest = types.Digest
	// Batch is the unit of consensus.
	Batch = types.Batch
	// Block is one block of a shard's partial blockchain.
	Block = ledger.Block

	// ExperimentConfig parameterizes one benchmark run.
	ExperimentConfig = harness.Config
	// ExperimentResult carries one benchmark run's metrics.
	ExperimentResult = harness.Result
	// Protocol selects the system under test in experiments.
	Protocol = harness.Protocol
	// Figure is a reproduced plot (series of throughput/latency points).
	Figure = harness.Figure
	// Profile scales an experiment suite (Quick vs Full).
	Profile = harness.Profile
)

// Experiment protocols.
const (
	RingBFT  = harness.ProtoRingBFT
	AHL      = harness.ProtoAHL
	Sharper  = harness.ProtoSharper
	PBFT     = harness.ProtoPBFT
	Zyzzyva  = harness.ProtoZyzzyva
	SBFT     = harness.ProtoSBFT
	PoE      = harness.ProtoPoE
	HotStuff = harness.ProtoHotStuff
	RCC      = harness.ProtoRCC
)

// Experiment profiles.
var (
	Quick = harness.Quick
	Full  = harness.Full
)

// RunExperiment executes one benchmark configuration and returns metrics.
func RunExperiment(cfg ExperimentConfig) (ExperimentResult, error) { return harness.Run(cfg) }

// Figure generators (one per paper figure; see DESIGN.md §4).
var (
	Fig1                  = harness.Fig1
	Fig8Shards            = harness.Fig8Shards
	Fig8Replicas          = harness.Fig8Replicas
	Fig8CrossRate         = harness.Fig8CrossRate
	Fig8BatchSize         = harness.Fig8BatchSize
	Fig8Involved          = harness.Fig8Involved
	Fig8Clients           = harness.Fig8Clients
	Fig9                  = harness.Fig9
	Fig10                 = harness.Fig10
	AblationLinearForward = harness.AblationLinearForward
	AblationCrypto        = harness.AblationCrypto
	AblationExecWorkers   = harness.AblationExecWorkers
)

// ClusterConfig shapes an embedded RingBFT deployment.
type ClusterConfig struct {
	Shards           int // number of shards (ring length); default 3
	ReplicasPerShard int // n per shard, n >= 3f+1; default 4
	Records          int // records preloaded per shard; default 4096

	// ExecWorkers enables the dependency-aware parallel batch executor on
	// every replica (internal/sched): committed batches are layered by
	// read/write-set conflicts and independent transactions run
	// concurrently, with results identical to sequential execution.
	// 0 or 1 = sequential.
	ExecWorkers int

	// VerifyWorkers enables the batched certificate verifier on every
	// replica (internal/crypto): the nf Ed25519 signatures of a cross-shard
	// commit certificate are checked concurrently, with a bounded cache of
	// already-verified certificates. Accept/reject decisions are identical
	// to serial verification. 0 or 1 = serial.
	VerifyWorkers int

	// LatencyScale > 0 runs over the 15-region WAN model compressed by the
	// given factor; 0 uses a uniform sub-millisecond LAN latency.
	LatencyScale float64
	// NoCrypto disables MACs and signatures (testing only).
	NoCrypto bool
	Seed     int64

	// SubmitTimeout bounds one synchronous Submit (default 10s).
	SubmitTimeout time.Duration
}

// Cluster is an embedded RingBFT deployment: z shards × n replicas running
// over the in-process network, plus a client port for Submit.
type Cluster struct {
	cfg      ClusterConfig
	tcfg     types.Config
	net      *simnet.Network
	replicas []*ringbft.Replica
	inboxes  []<-chan *types.Message

	cancel  context.CancelFunc
	wg      sync.WaitGroup
	started atomic.Bool
	stopped atomic.Bool

	clientSeq atomic.Int64
}

// NewCluster builds (but does not start) a RingBFT cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 3
	}
	if cfg.ReplicasPerShard <= 0 {
		cfg.ReplicasPerShard = 4
	}
	if cfg.Records <= 0 {
		cfg.Records = 4096
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.SubmitTimeout <= 0 {
		cfg.SubmitTimeout = 10 * time.Second
	}
	tcfg := types.DefaultConfig(cfg.Shards, cfg.ReplicasPerShard)
	tcfg.ExecWorkers = cfg.ExecWorkers
	tcfg.VerifyWorkers = cfg.VerifyWorkers
	// Embedded clusters serve interactive Submits: rebroadcast quickly when
	// the contacted replica is silent (e.g. a crashed primary) so recovery
	// latency is dominated by the view change, not the client timer.
	tcfg.ClientTimeout = 500 * time.Millisecond
	if err := tcfg.Validate(); err != nil {
		return nil, err
	}

	var lat simnet.LatencyModel = simnet.FixedLatency{D: 200 * time.Microsecond}
	if cfg.LatencyScale > 0 {
		lat = simnet.WANLatency{Scale: cfg.LatencyScale}
	}
	net := simnet.New(simnet.Options{Latency: lat, Seed: cfg.Seed})

	kg := crypto.NewKeygen(cfg.Seed)
	shardPeers := make([][]types.NodeID, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		peers := make([]types.NodeID, cfg.ReplicasPerShard)
		for i := range peers {
			peers[i] = types.ReplicaNode(types.ShardID(s), i)
			if !cfg.NoCrypto {
				kg.Register(peers[i])
			}
		}
		shardPeers[s] = peers
	}

	c := &Cluster{cfg: cfg, tcfg: tcfg, net: net}
	for s := 0; s < cfg.Shards; s++ {
		for i := 0; i < cfg.ReplicasPerShard; i++ {
			id := shardPeers[s][i]
			ep := net.Attach(id, simnet.ShardRegion(s))
			var a crypto.Authenticator = crypto.NopAuth{}
			if !cfg.NoCrypto {
				ring, err := kg.Ring(id)
				if err != nil {
					return nil, err
				}
				a = ring
			}
			r := ringbft.New(ringbft.Options{
				Config: tcfg, Shard: types.ShardID(s), Self: id,
				Peers: shardPeers[s], Auth: a, Send: ep.Send,
			})
			r.Preload(cfg.Records)
			c.replicas = append(c.replicas, r)
			c.inboxes = append(c.inboxes, ep.Inbox())
		}
	}
	return c, nil
}

// Start launches every replica's event loop.
func (c *Cluster) Start() {
	if !c.started.CompareAndSwap(false, true) {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	for i, r := range c.replicas {
		c.wg.Add(1)
		go func(r *ringbft.Replica, in <-chan *types.Message) {
			defer c.wg.Done()
			r.Run(ctx, in)
		}(r, c.inboxes[i])
	}
}

// Stop terminates the cluster. Idempotent.
func (c *Cluster) Stop() {
	if !c.started.Load() || !c.stopped.CompareAndSwap(false, true) {
		return
	}
	c.cancel()
	c.wg.Wait()
	c.net.Close()
}

// Shards returns the number of shards.
func (c *Cluster) Shards() int { return c.cfg.Shards }

// F returns the per-shard fault bound f.
func (c *Cluster) F() int { return c.tcfg.F() }

// OwnerShard returns the shard owning key k.
func (c *Cluster) OwnerShard(k Key) ShardID { return types.OwnerShard(k, c.cfg.Shards) }

// KeyOf returns the record key with index idx on shard s (the inverse of the
// hash partitioning used by the preloaded table).
func (c *Cluster) KeyOf(s ShardID, idx uint64) Key {
	return Key(uint64(s) + idx*uint64(c.cfg.Shards))
}

// ErrTimeout is returned when a Submit misses its deadline.
var ErrTimeout = errors.New("ringbft: submit timed out")

// Submit runs one batch of transactions through consensus and returns their
// results once f+1 matching replica responses arrive. Transaction IDs are
// stamped by the cluster; the involved-shard set is derived from the
// transactions' read/write sets. Safe for concurrent use — each call acts as
// an independent client.
func (c *Cluster) Submit(ctx context.Context, txns ...Txn) ([]Value, error) {
	if !c.started.Load() {
		return nil, errors.New("ringbft: cluster not started")
	}
	if len(txns) == 0 {
		return nil, errors.New("ringbft: empty batch")
	}
	clientID := types.ClientID(c.clientSeq.Add(1))
	self := types.ClientNode(clientID)
	ep := c.net.Attach(self, simnet.Region(int(clientID)%int(simnet.NumRegions)))

	involvedSet := make(map[ShardID]struct{})
	for i := range txns {
		txns[i].ID = TxnID{Client: clientID, Seq: uint64(i + 1)}
		for _, s := range txns[i].InvolvedShards(c.cfg.Shards) {
			involvedSet[s] = struct{}{}
		}
	}
	involved := make([]ShardID, 0, len(involvedSet))
	for s := range involvedSet {
		involved = append(involved, s)
	}
	sort.Slice(involved, func(i, j int) bool { return involved[i] < involved[j] })
	if len(involved) == 0 {
		return nil, errors.New("ringbft: transactions touch no keys")
	}

	b := &Batch{Txns: txns, Involved: involved}
	d := b.Digest()
	req := &types.Message{Type: types.MsgClientRequest, From: self, Batch: b, Digest: d}
	ep.Send(types.ReplicaNode(b.Initiator(), 0), req)

	deadline := time.NewTimer(c.cfg.SubmitTimeout)
	defer deadline.Stop()
	rebroadcast := time.NewTicker(c.tcfg.ClientTimeout)
	defer rebroadcast.Stop()

	need := c.tcfg.F() + 1
	votes := make(map[types.NodeID]struct{})
	var result []Value
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-deadline.C:
			return nil, fmt.Errorf("%w after %v", ErrTimeout, c.cfg.SubmitTimeout)
		case <-rebroadcast.C:
			// Attack A1: the client cannot wait on the primary forever.
			for i := 0; i < c.cfg.ReplicasPerShard; i++ {
				ep.Send(types.ReplicaNode(b.Initiator(), i), req)
			}
		case m := <-ep.Inbox():
			if m.Type != types.MsgResponse || m.Digest != d {
				continue
			}
			votes[m.From] = struct{}{}
			result = m.Results
			if len(votes) >= need {
				return result, nil
			}
		}
	}
}

// Ledger returns a snapshot of the blockchain of one replica of shard s
// (replica index idx). Call while the cluster is quiescent or accept a
// point-in-time snapshot.
func (c *Cluster) Ledger(s ShardID, idx int) []*Block {
	r := c.replica(s, idx)
	if r == nil {
		return nil
	}
	return r.Chain().Blocks()
}

// VerifyLedgers walks every replica's blockchain, checking hash chains and
// Merkle roots, and confirms that all replicas of each shard agree on their
// chain prefix. It is the integrity check of Section 7.
func (c *Cluster) VerifyLedgers() error {
	for s := 0; s < c.cfg.Shards; s++ {
		var chains [][]*Block
		for i := 0; i < c.cfg.ReplicasPerShard; i++ {
			r := c.replica(ShardID(s), i)
			if err := r.Chain().Verify(); err != nil {
				return fmt.Errorf("shard %d replica %d: %w", s, i, err)
			}
			chains = append(chains, r.Chain().Blocks())
		}
		// Replicas of one shard may interleave non-conflicting cross-shard
		// blocks differently near the head (Section 7 permits this across
		// ledgers; execution acceptance times differ per replica), so the
		// agreement check is on content: every block of the shortest chain
		// appears in each longer chain.
		shortest := chains[0]
		for _, ch := range chains[1:] {
			if len(ch) < len(shortest) {
				shortest = ch
			}
		}
		for i, ch := range chains {
			have := make(map[Digest]struct{}, len(ch))
			for _, b := range ch {
				have[b.Digest] = struct{}{}
			}
			for _, b := range shortest {
				if _, ok := have[b.Digest]; !ok {
					return fmt.Errorf("shard %d: replica %d is missing block seq %d", s, i, b.Seq)
				}
			}
		}
	}
	return nil
}

// Read returns the committed value of key k as seen by replica idx of its
// owner shard.
func (c *Cluster) Read(k Key, idx int) Value {
	r := c.replica(c.OwnerShard(k), idx)
	if r == nil {
		return 0
	}
	return r.Store().Get(k)
}

// CrashReplica drops all traffic to and from one replica (e.g. a primary,
// to demonstrate view change). Revive with ReviveReplica.
func (c *Cluster) CrashReplica(s ShardID, idx int) {
	c.net.SetCrashed(types.ReplicaNode(s, idx), true)
}

// ReviveReplica restores a crashed replica's connectivity.
func (c *Cluster) ReviveReplica(s ShardID, idx int) {
	c.net.SetCrashed(types.ReplicaNode(s, idx), false)
}

func (c *Cluster) replica(s ShardID, idx int) *ringbft.Replica {
	i := int(s)*c.cfg.ReplicasPerShard + idx
	if i < 0 || i >= len(c.replicas) {
		return nil
	}
	return c.replicas[i]
}
