// Package ringbft is the public API of this repository: a from-scratch Go
// implementation of RingBFT — Resilient Consensus over Sharded Ring Topology
// (Rahnama, Gupta, Sogani, Krishnan, Sadoghi; EDBT 2022) — together with the
// substrates the paper's evaluation depends on: an intra-shard PBFT engine,
// a simulated 15-region WAN, per-shard blockchains, a YCSB-style workload
// generator, the AHL and Sharper sharding baselines, and the single-primary
// baselines of Figure 1 (Zyzzyva, SBFT, PoE, HotStuff, RCC).
//
// Two entry points:
//
//   - Cluster embeds a complete RingBFT deployment in-process: shards of
//     replicas over the simulated network, with synchronous Submit for
//     transactions. This is what applications and the examples use.
//
//   - RunExperiment / the Fig* functions drive the benchmark harness that
//     regenerates every figure of the paper's evaluation (see EXPERIMENTS.md
//     and cmd/ringbft-bench).
package ringbft

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ringbft/internal/crypto"
	"ringbft/internal/harness"
	"ringbft/internal/ledger"
	"ringbft/internal/ringbft"
	"ringbft/internal/simnet"
	"ringbft/internal/types"
	"ringbft/internal/wal"
)

// Re-exported core types, so users of the library never import internal
// packages.
type (
	// Txn is a deterministic read-modify-write transaction (known
	// read/write sets, Section 3 of the paper).
	Txn = types.Txn
	// TxnID identifies a transaction.
	TxnID = types.TxnID
	// Key is a record key; ownership is hash-partitioned across shards.
	Key = types.Key
	// Value is a record value.
	Value = types.Value
	// ShardID identifies a shard; ring order is ascending ShardID.
	ShardID = types.ShardID
	// ClientID identifies a client.
	ClientID = types.ClientID
	// SeqNum is a consensus sequence number within one shard's log.
	SeqNum = types.SeqNum
	// Digest is a SHA-256 batch/message digest.
	Digest = types.Digest
	// Batch is the unit of consensus.
	Batch = types.Batch
	// Block is one block of a shard's partial blockchain.
	Block = ledger.Block

	// ExperimentConfig parameterizes one benchmark run.
	ExperimentConfig = harness.Config
	// ExperimentResult carries one benchmark run's metrics.
	ExperimentResult = harness.Result
	// Protocol selects the system under test in experiments.
	Protocol = harness.Protocol
	// Figure is a reproduced plot (series of throughput/latency points).
	Figure = harness.Figure
	// Profile scales an experiment suite (Quick vs Full).
	Profile = harness.Profile
)

// Experiment protocols.
const (
	RingBFT  = harness.ProtoRingBFT
	AHL      = harness.ProtoAHL
	Sharper  = harness.ProtoSharper
	PBFT     = harness.ProtoPBFT
	Zyzzyva  = harness.ProtoZyzzyva
	SBFT     = harness.ProtoSBFT
	PoE      = harness.ProtoPoE
	HotStuff = harness.ProtoHotStuff
	RCC      = harness.ProtoRCC
)

// Experiment profiles.
var (
	Quick = harness.Quick
	Full  = harness.Full
)

// RunExperiment executes one benchmark configuration and returns metrics.
func RunExperiment(cfg ExperimentConfig) (ExperimentResult, error) { return harness.Run(cfg) }

// Figure generators (one per paper figure; see DESIGN.md §4).
var (
	Fig1                  = harness.Fig1
	Fig8Shards            = harness.Fig8Shards
	Fig8Replicas          = harness.Fig8Replicas
	Fig8CrossRate         = harness.Fig8CrossRate
	Fig8BatchSize         = harness.Fig8BatchSize
	Fig8Involved          = harness.Fig8Involved
	Fig8Clients           = harness.Fig8Clients
	Fig9                  = harness.Fig9
	Fig9Recovery          = harness.Fig9Recovery
	Fig10                 = harness.Fig10
	AblationLinearForward = harness.AblationLinearForward
	AblationCrypto        = harness.AblationCrypto
	AblationExecWorkers   = harness.AblationExecWorkers
)

// ClusterConfig shapes an embedded RingBFT deployment.
type ClusterConfig struct {
	Shards           int // number of shards (ring length); default 3
	ReplicasPerShard int // n per shard, n >= 3f+1; default 4
	Records          int // records preloaded per shard; default 4096

	// ExecWorkers enables the dependency-aware parallel batch executor on
	// every replica (internal/sched): committed batches are layered by
	// read/write-set conflicts and independent transactions run
	// concurrently, with results identical to sequential execution.
	// 0 or 1 = sequential.
	ExecWorkers int

	// VerifyWorkers enables the batched certificate verifier on every
	// replica (internal/crypto): the nf Ed25519 signatures of a cross-shard
	// commit certificate are checked concurrently, with a bounded cache of
	// already-verified certificates. Accept/reject decisions are identical
	// to serial verification. 0 or 1 = serial.
	VerifyWorkers int

	// LatencyScale > 0 runs over the 15-region WAN model compressed by the
	// given factor; 0 uses a uniform sub-millisecond LAN latency.
	LatencyScale float64
	// NoCrypto disables MACs and signatures (testing only).
	NoCrypto bool
	Seed     int64

	// SubmitTimeout bounds one synchronous Submit (default 10s).
	SubmitTimeout time.Duration

	// PipelineDepth bounds how many proposals each primary keeps in flight
	// across sequence numbers (types.Config.PipelineDepth): 0 preserves the
	// legacy unbounded drain, 1 is lockstep, and deeper windows overlap
	// PRE-PREPARE/PREPARE/COMMIT rounds and enable adaptive batching of
	// queued single-shard requests. Execution order is unaffected.
	PipelineDepth int

	// Durable backs every replica with the durability subsystem
	// (internal/wal): a segmented write-ahead log plus snapshots at stable
	// checkpoints, so KillReplica / RestartReplica recover real state from
	// disk. DataDir selects the on-disk location; empty keeps everything
	// on an in-process filesystem (hermetic, still restartable).
	Durable bool
	DataDir string
	// CheckpointInterval overrides the checkpoint cadence (0 = default 64).
	// Shorter intervals bound recovery gaps and speed up state transfer
	// for restart demos.
	CheckpointInterval SeqNum
}

// Cluster is an embedded RingBFT deployment: z shards × n replicas running
// over the in-process network, plus a client port for Submit.
type Cluster struct {
	cfg      ClusterConfig
	tcfg     types.Config
	net      *simnet.Network
	replicas []*ringbft.Replica
	inboxes  []<-chan *types.Message
	ids      []types.NodeID
	rebuild  []func() (*ringbft.Replica, error)
	fs       wal.FS

	ctx        context.Context
	cancel     context.CancelFunc
	nodeCancel []context.CancelFunc
	nodeDone   []chan struct{}
	managers   []*wal.Manager
	mu         sync.Mutex
	wg         sync.WaitGroup
	started    atomic.Bool
	stopped    atomic.Bool

	clientSeq atomic.Int64
}

// NewCluster builds (but does not start) a RingBFT cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 3
	}
	if cfg.ReplicasPerShard <= 0 {
		cfg.ReplicasPerShard = 4
	}
	if cfg.Records <= 0 {
		cfg.Records = 4096
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.SubmitTimeout <= 0 {
		cfg.SubmitTimeout = 10 * time.Second
	}
	tcfg := types.DefaultConfig(cfg.Shards, cfg.ReplicasPerShard)
	tcfg.ExecWorkers = cfg.ExecWorkers
	tcfg.VerifyWorkers = cfg.VerifyWorkers
	tcfg.PipelineDepth = cfg.PipelineDepth
	if cfg.CheckpointInterval > 0 {
		tcfg.CheckpointInterval = cfg.CheckpointInterval
	}
	if cfg.Durable {
		tcfg.DataDir = cfg.DataDir
		if tcfg.DataDir == "" {
			tcfg.DataDir = "data"
		}
	}
	// Embedded clusters serve interactive Submits: rebroadcast quickly when
	// the contacted replica is silent (e.g. a crashed primary) so recovery
	// latency is dominated by the view change, not the client timer.
	tcfg.ClientTimeout = 500 * time.Millisecond
	if err := tcfg.Validate(); err != nil {
		return nil, err
	}

	var lat simnet.LatencyModel = simnet.FixedLatency{D: 200 * time.Microsecond}
	if cfg.LatencyScale > 0 {
		lat = simnet.WANLatency{Scale: cfg.LatencyScale}
	}
	net := simnet.New(simnet.Options{Latency: lat, Seed: cfg.Seed})

	kg := crypto.NewKeygen(cfg.Seed)
	shardPeers := make([][]types.NodeID, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		peers := make([]types.NodeID, cfg.ReplicasPerShard)
		for i := range peers {
			peers[i] = types.ReplicaNode(types.ShardID(s), i)
			if !cfg.NoCrypto {
				kg.Register(peers[i])
			}
		}
		shardPeers[s] = peers
	}

	c := &Cluster{cfg: cfg, tcfg: tcfg, net: net}
	if cfg.Durable {
		if cfg.DataDir == "" {
			c.fs = wal.NewMemFS()
		} else {
			c.fs = wal.OSFS{}
		}
	}
	for s := 0; s < cfg.Shards; s++ {
		for i := 0; i < cfg.ReplicasPerShard; i++ {
			id := shardPeers[s][i]
			ep := net.Attach(id, simnet.ShardRegion(s))
			var a crypto.Authenticator = crypto.NopAuth{}
			if !cfg.NoCrypto {
				ring, err := kg.Ring(id)
				if err != nil {
					return nil, err
				}
				a = ring
			}
			peers := shardPeers[s]
			slot := len(c.replicas) // this replica's index, fixed at build
			mk := func() (*ringbft.Replica, error) {
				opts := ringbft.Options{
					Config: tcfg, Shard: id.Shard, Self: id,
					Peers: peers, Auth: a, Send: ep.Send,
				}
				if c.fs != nil {
					m, rec, err := ringbft.OpenDurability(tcfg, id, c.fs)
					if err != nil {
						return nil, err
					}
					opts.Durability = m
					opts.Recovered = rec
					c.managers[slot] = m
				}
				r := ringbft.New(opts)
				r.Preload(cfg.Records)
				return r, nil
			}
			c.managers = append(c.managers, nil)
			r, err := mk()
			if err != nil {
				return nil, err
			}
			c.replicas = append(c.replicas, r)
			c.rebuild = append(c.rebuild, mk)
			c.inboxes = append(c.inboxes, ep.Inbox())
			c.ids = append(c.ids, id)
		}
	}
	c.nodeCancel = make([]context.CancelFunc, len(c.replicas))
	c.nodeDone = make([]chan struct{}, len(c.replicas))
	return c, nil
}

// Start launches every replica's event loop.
func (c *Cluster) Start() {
	if !c.started.CompareAndSwap(false, true) {
		return
	}
	c.ctx, c.cancel = context.WithCancel(context.Background())
	for i := range c.replicas {
		c.startReplica(i)
	}
}

func (c *Cluster) startReplica(i int) {
	nctx, ncancel := context.WithCancel(c.ctx)
	done := make(chan struct{})
	c.mu.Lock()
	c.nodeCancel[i] = ncancel
	c.nodeDone[i] = done
	r := c.replicas[i]
	c.mu.Unlock()
	c.wg.Add(1)
	go func(in <-chan *types.Message) {
		defer c.wg.Done()
		defer close(done)
		r.Run(nctx, in)
	}(c.inboxes[i])
}

// Stop terminates the cluster. Idempotent.
func (c *Cluster) Stop() {
	if !c.started.Load() || !c.stopped.CompareAndSwap(false, true) {
		return
	}
	c.cancel()
	c.wg.Wait()
	c.net.Close()
}

// Shards returns the number of shards.
func (c *Cluster) Shards() int { return c.cfg.Shards }

// F returns the per-shard fault bound f.
func (c *Cluster) F() int { return c.tcfg.F() }

// OwnerShard returns the shard owning key k.
func (c *Cluster) OwnerShard(k Key) ShardID { return types.OwnerShard(k, c.cfg.Shards) }

// KeyOf returns the record key with index idx on shard s (the inverse of the
// hash partitioning used by the preloaded table).
func (c *Cluster) KeyOf(s ShardID, idx uint64) Key {
	return Key(uint64(s) + idx*uint64(c.cfg.Shards))
}

// ErrTimeout is returned when a Submit misses its deadline.
var ErrTimeout = errors.New("ringbft: submit timed out")

// Submit runs one batch of transactions through consensus and returns their
// results once f+1 matching replica responses arrive. Transaction IDs are
// stamped by the cluster; the involved-shard set is derived from the
// transactions' read/write sets. Safe for concurrent use — each call acts as
// an independent client.
func (c *Cluster) Submit(ctx context.Context, txns ...Txn) ([]Value, error) {
	if !c.started.Load() {
		return nil, errors.New("ringbft: cluster not started")
	}
	if len(txns) == 0 {
		return nil, errors.New("ringbft: empty batch")
	}
	clientID := types.ClientID(c.clientSeq.Add(1))
	self := types.ClientNode(clientID)
	ep := c.net.Attach(self, simnet.Region(int(clientID)%int(simnet.NumRegions)))

	involvedSet := make(map[ShardID]struct{})
	for i := range txns {
		txns[i].ID = TxnID{Client: clientID, Seq: uint64(i + 1)}
		for _, s := range txns[i].InvolvedShards(c.cfg.Shards) {
			involvedSet[s] = struct{}{}
		}
	}
	involved := make([]ShardID, 0, len(involvedSet))
	for s := range involvedSet {
		involved = append(involved, s)
	}
	sort.Slice(involved, func(i, j int) bool { return involved[i] < involved[j] })
	if len(involved) == 0 {
		return nil, errors.New("ringbft: transactions touch no keys")
	}

	b := &Batch{Txns: txns, Involved: involved}
	d := b.Digest()
	req := &types.Message{Type: types.MsgClientRequest, From: self, Batch: b, Digest: d}
	ep.Send(types.ReplicaNode(b.Initiator(), 0), req)

	deadline := time.NewTimer(c.cfg.SubmitTimeout)
	defer deadline.Stop()
	rebroadcast := time.NewTicker(c.tcfg.ClientTimeout)
	defer rebroadcast.Stop()

	need := c.tcfg.F() + 1
	votes := make(map[types.NodeID]struct{})
	var result []Value
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-deadline.C:
			return nil, fmt.Errorf("%w after %v", ErrTimeout, c.cfg.SubmitTimeout)
		case <-rebroadcast.C:
			// Attack A1: the client cannot wait on the primary forever.
			for i := 0; i < c.cfg.ReplicasPerShard; i++ {
				ep.Send(types.ReplicaNode(b.Initiator(), i), req)
			}
		case m := <-ep.Inbox():
			if m.Type != types.MsgResponse || m.Digest != d {
				continue
			}
			votes[m.From] = struct{}{}
			result = m.Results
			if len(votes) >= need {
				return result, nil
			}
		}
	}
}

// Ledger returns a snapshot of the blockchain of one replica of shard s
// (replica index idx). Call while the cluster is quiescent or accept a
// point-in-time snapshot.
func (c *Cluster) Ledger(s ShardID, idx int) []*Block {
	r := c.replica(s, idx)
	if r == nil {
		return nil
	}
	return r.Chain().Blocks()
}

// VerifyLedgers walks every replica's blockchain, checking hash chains and
// Merkle roots, and confirms that all replicas of each shard agree on their
// chain prefix. It is the integrity check of Section 7.
func (c *Cluster) VerifyLedgers() error {
	for s := 0; s < c.cfg.Shards; s++ {
		var chains [][]*Block
		for i := 0; i < c.cfg.ReplicasPerShard; i++ {
			r := c.replica(ShardID(s), i)
			if err := r.Chain().Verify(); err != nil {
				return fmt.Errorf("shard %d replica %d: %w", s, i, err)
			}
			chains = append(chains, r.Chain().Blocks())
		}
		// Replicas of one shard may interleave non-conflicting cross-shard
		// blocks differently near the head (Section 7 permits this across
		// ledgers; execution acceptance times differ per replica), so the
		// agreement check is on content: every block of the shortest chain
		// appears in each longer chain.
		shortest := chains[0]
		for _, ch := range chains[1:] {
			if len(ch) < len(shortest) {
				shortest = ch
			}
		}
		for i, ch := range chains {
			have := make(map[Digest]struct{}, len(ch))
			for _, b := range ch {
				have[b.Digest] = struct{}{}
			}
			for _, b := range shortest {
				if _, ok := have[b.Digest]; !ok {
					return fmt.Errorf("shard %d: replica %d is missing block seq %d", s, i, b.Seq)
				}
			}
		}
	}
	return nil
}

// Read returns the committed value of key k as seen by replica idx of its
// owner shard.
func (c *Cluster) Read(k Key, idx int) Value {
	r := c.replica(c.OwnerShard(k), idx)
	if r == nil {
		return 0
	}
	return r.Store().Get(k)
}

// CrashReplica drops all traffic to and from one replica (e.g. a primary,
// to demonstrate view change). Revive with ReviveReplica.
func (c *Cluster) CrashReplica(s ShardID, idx int) {
	c.net.SetCrashed(types.ReplicaNode(s, idx), true)
}

// ReviveReplica restores a crashed replica's connectivity.
func (c *Cluster) ReviveReplica(s ShardID, idx int) {
	c.net.SetCrashed(types.ReplicaNode(s, idx), false)
}

// KillReplica terminates one replica's process: its event loop stops and
// its traffic drops. Unlike CrashReplica, the in-memory state is genuinely
// gone — RestartReplica brings it back from whatever the durability
// subsystem persisted (everything, when the cluster is Durable; nothing
// otherwise, in which case peer state transfer rebuilds it).
func (c *Cluster) KillReplica(s ShardID, idx int) {
	i := c.index(s, idx)
	if i < 0 {
		return
	}
	c.net.SetCrashed(types.ReplicaNode(s, idx), true)
	c.mu.Lock()
	cancel, done := c.nodeCancel[i], c.nodeDone[i]
	c.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	// Wait for the event loop to exit: the dead replica must not race a
	// restarted successor on the shared inbox or data directory.
	if done != nil {
		<-done
	}
}

// RestartReplica rebuilds a killed replica from disk and rejoins it to the
// cluster. The restarted replica replays its snapshot + WAL tail and, if
// it is behind the shard, catches up through checkpoint-certified state
// transfer.
func (c *Cluster) RestartReplica(s ShardID, idx int) error {
	i := c.index(s, idx)
	if i < 0 {
		return errors.New("ringbft: no such replica")
	}
	// Idempotent kill: stop (and wait out) the previous incarnation, then
	// release its durability handles before reopening the directory.
	c.KillReplica(s, idx)
	c.mu.Lock()
	old := c.managers[i]
	c.mu.Unlock()
	if old != nil {
		old.Close() // best-effort: an OS restart would have synced on exit
	}
	r, err := c.rebuild[i]()
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.replicas[i] = r
	c.mu.Unlock()
	c.net.SetCrashed(types.ReplicaNode(s, idx), false)
	if c.started.Load() && !c.stopped.Load() {
		c.startReplica(i)
	}
	return nil
}

// WipeReplica erases a killed replica's data directory, so a subsequent
// RestartReplica exercises the wipe-and-rejoin state-transfer path.
func (c *Cluster) WipeReplica(s ShardID, idx int) {
	dir := wal.Join(c.tcfg.DataDir, fmt.Sprintf("s%d-r%d", s, idx))
	switch fs := c.fs.(type) {
	case *wal.MemFS:
		fs.RemoveAll(dir)
	case wal.OSFS:
		os.RemoveAll(dir)
	}
}

func (c *Cluster) index(s ShardID, idx int) int {
	i := int(s)*c.cfg.ReplicasPerShard + idx
	if i < 0 || i >= len(c.replicas) || idx < 0 || idx >= c.cfg.ReplicasPerShard {
		return -1
	}
	return i
}

func (c *Cluster) replica(s ShardID, idx int) *ringbft.Replica {
	i := c.index(s, idx)
	if i < 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replicas[i]
}
