package types

import "encoding/binary"

// MsgType discriminates wire messages.
type MsgType uint8

// Message types used by RingBFT, the intra-shard PBFT engine, and the
// baseline protocols. The byte sizes in comments are the message sizes the
// paper reports for its standard configuration (Section 8) and are used by
// the simulator's bandwidth accounting.
const (
	MsgClientRequest MsgType = iota // client -> primary: ⟨Tℑ⟩c
	MsgPrePrepare                   // 5408 B
	MsgPrepare                      // 216 B
	MsgCommit                       // 269 B
	MsgCheckpoint                   // 164 B
	MsgViewChange
	MsgNewView
	MsgForward    // 6147 B: cst + commit certificate, shard -> next shard
	MsgExecute    // 1732 B: Δ + Σℑ, second rotation
	MsgRemoteView // remote view-change request (Fig 6)
	MsgResponse   // replica -> client

	// State transfer: a replica too far behind a stable checkpoint — a
	// restarted replica with a gap, or one whose data dir was wiped — asks
	// its shard peers for the certified chain prefix instead of stalling.
	MsgStateRequest  // replica -> shard peers: need state at checkpoint Seq
	MsgStateSnapshot // peer -> replica: blocks+results up to its stable seq

	// AHL (reference committee + 2PC)
	MsgAHLPrepare  // committee -> shard: prepare(T) (2PC phase 1)
	MsgAHLVote     // shard -> committee: vote commit/abort
	MsgAHLDecision // committee -> shard: global decision

	// Sharper (initiator primary, global all-to-all)
	MsgSharperPropose // initiator primary -> involved primaries
	MsgSharperPrepare // cross-shard all-to-all prepare
	MsgSharperCommit  // cross-shard all-to-all commit

	// Single-primary baselines (Figure 1)
	MsgZyzOrderReq    // Zyzzyva: primary order request
	MsgZyzSpecResp    // Zyzzyva: speculative response to client
	MsgZyzCommitCert  // Zyzzyva: client-assembled commit certificate
	MsgZyzLocalCommit // Zyzzyva: replica ack of a commit certificate
	MsgSbftPrepare    // SBFT: replica -> collector partial signature
	MsgSbftFullPrep   // SBFT: collector -> replicas aggregated prepare
	MsgSbftSignShare  // SBFT: replica -> collector commit share
	MsgSbftFullCommit // SBFT: collector -> replicas aggregated commit
	MsgHSPropose      // HotStuff: leader proposal (generic phase)
	MsgHSVote         // HotStuff: replica vote -> leader
	MsgPoEPropose     // PoE: primary propose
	MsgPoESupport     // PoE: support (prepare) message
	MsgPoECertify     // PoE: certify message

	msgTypeCount
)

var msgTypeNames = [...]string{
	"ClientRequest", "PrePrepare", "Prepare", "Commit", "Checkpoint",
	"ViewChange", "NewView", "Forward", "Execute", "RemoteView", "Response",
	"StateRequest", "StateSnapshot",
	"AHLPrepare", "AHLVote", "AHLDecision",
	"SharperPropose", "SharperPrepare", "SharperCommit",
	"ZyzOrderReq", "ZyzSpecResp", "ZyzCommitCert", "ZyzLocalCommit",
	"SbftPrepare", "SbftFullPrep", "SbftSignShare", "SbftFullCommit",
	"HSPropose", "HSVote", "PoEPropose", "PoESupport", "PoECertify",
}

func (t MsgType) String() string {
	if int(t) < len(msgTypeNames) {
		return msgTypeNames[t]
	}
	return "Invalid"
}

// Message is the single wire-message struct shared by every protocol.
// A union struct (rather than one type per message) keeps the simulated
// network, the gob codec, and the authenticators simple; unused fields are
// nil/zero and cost nothing in-process.
type Message struct {
	Type   MsgType
	From   NodeID
	View   View
	Seq    SeqNum
	Shard  ShardID // shard whose log (View,Seq) refers to
	Digest Digest

	// Payloads.
	Batch     *Batch     // PrePrepare, Forward, ClientRequest, SharperPropose, ...
	WriteSets []WriteSet // Execute: accumulated Σℑ of shards earlier in ring order
	Cert      []Signed   // Forward: DS commit certificate (nf signed Commits)
	Results   []Value    // Response: per-txn results
	Decision  bool       // AHLDecision / AHLVote: commit (true) or abort
	Instance  int        // RCC: concurrent instance id; Zyzzyva/HotStuff phase reuse

	// State is the state-transfer payload of MsgStateSnapshot: the
	// responder's canonical state at its latest stable checkpoint, bound to
	// the checkpoint certificate (see StatePayload).
	State *StatePayload

	// View-change payloads (PBFT view change; Castro & Liskov).
	StableSeq SeqNum          // last stable checkpoint sequence
	Prepared  []PreparedProof // P set: proofs of prepared batches after StableSeq
	ViewMsgs  []Signed        // NewView: nf ViewChange messages justifying the view

	// Authenticators filled by the node runtime.
	MAC []byte // intra-shard HMAC (cheap, no non-repudiation)
	Sig []byte // cross-shard Ed25519 signature (non-repudiation)
}

// Signed is a compact, transferable proof that node From authenticated the
// canonical bytes of a (Type, Shard, View, Seq, Digest) tuple with a digital
// signature. Sets of nf such proofs form the commit certificates carried by
// Forward messages (Fig 5 line 16) and view-change justifications.
type Signed struct {
	From   NodeID
	Type   MsgType
	Shard  ShardID
	View   View
	Seq    SeqNum
	Digest Digest
	Sig    []byte
}

// Pair is one key-value record, as shipped by snapshots and state transfer.
type Pair struct {
	K Key
	V Value
}

// StatePayload is the peer state-transfer payload: the shard's canonical
// key-value state as of stable checkpoint Seq — the state obtained by
// executing exactly the blocks with sequence number <= Seq, which every
// honest replica agrees on even though their live stores interleave later
// writes differently. The payload is self-certifying against the checkpoint
// certificate: the checkpoint digest nf replicas signed is
// H(PrefixDigest || StateDigest), and StateDigest is the SHA-256 of Pairs
// in sorted key order, so a Byzantine responder cannot substitute state
// without breaking a collision-resistant hash chain back to nf signatures.
// Every field a receiver installs is covered by that chain — nothing in
// the payload is trusted on the responder's word alone.
type StatePayload struct {
	Seq          SeqNum
	PrefixDigest Digest // rolling ledger-order digest at Seq
	StateDigest  Digest // SHA-256 over Pairs in ascending key order
	Pairs        []Pair // canonical records, ascending key order

	// Block-replay variant (Sharper peer catch-up): instead of shipping
	// canonical pairs, the responder ships the ordered blocks the requester
	// is missing, up to checkpoint Seq, plus the nf-signed Checkpoint votes
	// certifying the rolling commit-prefix digest at Seq. The requester
	// re-derives the prefix digest from its own contiguous prefix extended
	// with the shipped batch digests (sequence gaps are view-change no-op
	// fillers) and re-executes the batches locally, so neither state nor
	// results are taken on the responder's word — forging a batch anywhere
	// in the replayed range requires a SHA-256 collision against the
	// certified fold.
	Cert   []Signed   // nf signed Checkpoint votes for (Seq, PrefixDigest)
	Blocks []BlockRec // missing blocks in ascending Seq order
}

// BlockRec is one replayable block of a block-transfer payload.
type BlockRec struct {
	Seq     SeqNum
	Primary NodeID
	Batch   *Batch
}

// PreparedProof is an element of a view-change message's P set: a batch that
// prepared at (View, Seq) with its pre-prepare digest. The batch itself rides
// along so the new primary can re-propose it.
type PreparedProof struct {
	View   View
	Seq    SeqNum
	Digest Digest
	Batch  *Batch
	// Justification carries the certificate that entitles the batch to be
	// proposed at this shard when proposals are certificate-gated: for a
	// RingBFT non-initiator shard, the previous shard's nf-signed commit
	// certificate (as carried by Forward); for an AHL data shard, the
	// committee's AHLPrepare certificate. Empty for batches that need no
	// justification (single-shard, initiator-shard, no-op fillers). A
	// NewView receiver that has not itself accepted the certificate
	// verifies this instead — without it a Byzantine new primary could
	// inject an unjustified batch through the re-proposal path that the
	// Justify gate blocks on the normal path.
	Justification []Signed
}

// SigBytesLen is the exact length of the canonical authenticated byte string:
// type (1) + shard/view/seq (3×8) + digest (32) + sender kind/shard/index
// (1+8+8).
const SigBytesLen = 1 + 3*8 + 32 + 1 + 2*8

// AppendSigBytes appends the canonical byte string that is MAC'd or signed
// for a message — type, shard, view, sequence, digest, and sender — to dst
// and returns the extended slice. Signing a fixed canonical tuple (rather
// than a full serialization) mirrors PBFT practice and keeps signatures
// verifiable independent of codec details. Callers on hot paths pass a
// stack or reused buffer with capacity SigBytesLen to avoid allocation.
func AppendSigBytes(dst []byte, t MsgType, shard ShardID, v View, s SeqNum, d Digest, from NodeID) []byte {
	var buf [SigBytesLen]byte
	buf[0] = byte(t)
	binary.BigEndian.PutUint64(buf[1:], uint64(shard))
	binary.BigEndian.PutUint64(buf[9:], uint64(v))
	binary.BigEndian.PutUint64(buf[17:], uint64(s))
	copy(buf[25:57], d[:])
	buf[57] = byte(from.Kind)
	binary.BigEndian.PutUint64(buf[58:], uint64(from.Shard))
	binary.BigEndian.PutUint64(buf[66:], uint64(from.Index))
	return append(dst, buf[:]...)
}

// SigBytesArray returns the canonical authenticated bytes as a fixed-size
// array, so callers that immediately pass a slice of it avoid any heap
// traffic the compiler cannot elide.
func SigBytesArray(t MsgType, shard ShardID, v View, s SeqNum, d Digest, from NodeID) [SigBytesLen]byte {
	var buf [SigBytesLen]byte
	AppendSigBytes(buf[:0], t, shard, v, s, d, from)
	return buf
}

// SigBytes returns the canonical byte string that is MAC'd or signed for a
// message (see AppendSigBytes).
func SigBytes(t MsgType, shard ShardID, v View, s SeqNum, d Digest, from NodeID) []byte {
	return AppendSigBytes(make([]byte, 0, SigBytesLen), t, shard, v, s, d, from)
}

// SigBytes returns the canonical authenticated bytes of m.
func (m *Message) SigBytes() []byte {
	return SigBytes(m.Type, m.Shard, m.View, m.Seq, m.Digest, m.From)
}

// AppendSigBytes appends m's canonical authenticated bytes to dst.
func (m *Message) AppendSigBytes(dst []byte) []byte {
	return AppendSigBytes(dst, m.Type, m.Shard, m.View, m.Seq, m.Digest, m.From)
}

// SigBytes returns the canonical bytes the signature in s covers.
func (s *Signed) SigBytes() []byte {
	return SigBytes(s.Type, s.Shard, s.View, s.Seq, s.Digest, s.From)
}

// AppendSigBytes appends the canonical bytes the signature in s covers to dst.
func (s *Signed) AppendSigBytes(dst []byte) []byte {
	return AppendSigBytes(dst, s.Type, s.Shard, s.View, s.Seq, s.Digest, s.From)
}

// Paper-reported message sizes in bytes at batch size 100 (Section 8,
// "Standard Settings"). Batches scale the body linearly around these
// calibration points; fixed header overhead is kept.
const (
	sizePrePrepare = 5408
	sizePrepare    = 216
	sizeCommit     = 269
	sizeForward    = 6147
	sizeCheckpoint = 164
	sizeExecute    = 1732
	sizeHeader     = 96
	calibBatch     = 100
)

// WireSize estimates the serialized size of m in bytes for the simulator's
// bandwidth/byte accounting, anchored to the message sizes the paper reports.
func (m *Message) WireSize() int {
	nTxns := 0
	if m.Batch != nil {
		nTxns = len(m.Batch.Txns)
	}
	scale := func(calibrated int) int {
		body := calibrated - sizeHeader
		if body < 0 {
			body = calibrated
		}
		return sizeHeader + body*max(nTxns, 1)/calibBatch
	}
	switch m.Type {
	case MsgClientRequest:
		return scale(sizePrePrepare - 300)
	case MsgPrePrepare, MsgSharperPropose, MsgZyzOrderReq, MsgHSPropose, MsgPoEPropose, MsgAHLPrepare:
		return scale(sizePrePrepare)
	case MsgPrepare, MsgSbftPrepare, MsgHSVote, MsgPoESupport, MsgAHLVote:
		return sizePrepare
	case MsgCommit, MsgSbftSignShare, MsgPoECertify, MsgZyzLocalCommit, MsgAHLDecision:
		return sizeCommit
	case MsgCheckpoint:
		return sizeCheckpoint
	case MsgForward:
		return scale(sizeForward) + 64*len(m.Cert)
	case MsgExecute:
		ws := 0
		for i := range m.WriteSets {
			ws += 16 * (len(m.WriteSets[i].Keys) + len(m.WriteSets[i].ReadKeys))
		}
		return sizeExecute + ws
	case MsgRemoteView:
		return sizeCommit
	case MsgStateRequest:
		return sizeHeader
	case MsgStateSnapshot:
		n := sizeHeader + 2*32 + 8
		if m.State != nil {
			n += 16 * len(m.State.Pairs)
			n += 64 * len(m.State.Cert)
			for i := range m.State.Blocks {
				nb := 0
				if b := m.State.Blocks[i].Batch; b != nil {
					nb = len(b.Txns)
				}
				n += sizeHeader + (sizePrePrepare-sizeHeader)*max(nb, 1)/calibBatch
			}
		}
		return n
	case MsgResponse, MsgZyzSpecResp:
		return sizeHeader + 8*len(m.Results)
	case MsgSharperPrepare, MsgSharperCommit:
		return sizeCommit
	case MsgZyzCommitCert, MsgSbftFullPrep, MsgSbftFullCommit:
		return sizeCommit + 64*len(m.Cert)
	case MsgViewChange:
		n := sizeHeader
		for i := range m.Prepared {
			n += sizePrePrepare + 64*len(m.Prepared[i].Justification)
		}
		return n
	case MsgNewView:
		n := sizeHeader + sizeCommit*len(m.ViewMsgs)
		for i := range m.Prepared {
			n += sizePrePrepare + 64*len(m.Prepared[i].Justification)
		}
		return n
	default:
		return sizeHeader
	}
}
