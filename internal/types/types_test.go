package types

import (
	"testing"
	"testing/quick"
)

func TestOwnerShardPartitionsAllKeys(t *testing.T) {
	f := func(k uint64, zRaw uint8) bool {
		z := int(zRaw%16) + 1
		s := OwnerShard(Key(k), z)
		return s >= 0 && int(s) < z
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOwnerShardZeroShards(t *testing.T) {
	if got := OwnerShard(42, 0); got != 0 {
		t.Fatalf("OwnerShard with z=0 = %d, want 0", got)
	}
}

func TestInvolvedShardsSortedAndDeduped(t *testing.T) {
	f := func(reads, writes []uint64) bool {
		tx := Txn{}
		for _, k := range reads {
			tx.Reads = append(tx.Reads, Key(k))
		}
		for _, k := range writes {
			tx.Writes = append(tx.Writes, Key(k))
		}
		inv := tx.InvolvedShards(7)
		for i := 1; i < len(inv); i++ {
			if inv[i] <= inv[i-1] {
				return false // must be strictly ascending (sorted, unique)
			}
		}
		// Every key's owner must appear.
		for _, k := range tx.Reads {
			if !contains(inv, OwnerShard(k, 7)) {
				return false
			}
		}
		for _, k := range tx.Writes {
			if !contains(inv, OwnerShard(k, 7)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func contains(s []ShardID, x ShardID) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

func TestReadsWritesAtPartition(t *testing.T) {
	tx := Txn{Reads: []Key{0, 1, 2, 3, 4, 5}, Writes: []Key{6, 7, 8}}
	z := 3
	total := 0
	for s := 0; s < z; s++ {
		total += len(tx.ReadsAt(ShardID(s), z))
	}
	if total != len(tx.Reads) {
		t.Fatalf("ReadsAt partitions %d keys, want %d", total, len(tx.Reads))
	}
	for s := 0; s < z; s++ {
		for _, k := range tx.WritesAt(ShardID(s), z) {
			if OwnerShard(k, z) != ShardID(s) {
				t.Fatalf("WritesAt(%d) returned foreign key %d", s, k)
			}
		}
	}
}

func TestBatchDigestDeterministicAndSensitive(t *testing.T) {
	b1 := &Batch{
		Txns:     []Txn{{ID: TxnID{Client: 1, Seq: 1}, Reads: []Key{1}, Writes: []Key{1}, Delta: 5}},
		Involved: []ShardID{0, 1},
	}
	b2 := &Batch{
		Txns:     []Txn{{ID: TxnID{Client: 1, Seq: 1}, Reads: []Key{1}, Writes: []Key{1}, Delta: 5}},
		Involved: []ShardID{0, 1},
	}
	if b1.Digest() != b2.Digest() {
		t.Fatal("identical batches produced different digests")
	}
	b2.Txns[0].Delta = 6
	if b1.Digest() == b2.Digest() {
		t.Fatal("digest insensitive to Delta")
	}
	b2.Txns[0].Delta = 5
	b2.Involved = []ShardID{0, 2}
	if b1.Digest() == b2.Digest() {
		t.Fatal("digest insensitive to involved set")
	}
}

func TestRingOrderNavigation(t *testing.T) {
	b := &Batch{Involved: []ShardID{1, 3, 5}}
	if got := b.Initiator(); got != 1 {
		t.Fatalf("Initiator = %d, want 1", got)
	}
	next, wrapped := b.NextInRing(1)
	if next != 3 || wrapped {
		t.Fatalf("NextInRing(1) = %d,%v", next, wrapped)
	}
	next, wrapped = b.NextInRing(5)
	if next != 1 || !wrapped {
		t.Fatalf("NextInRing(5) = %d,%v, want 1,true (wrap)", next, wrapped)
	}
	if got := b.PrevInRing(1); got != 5 {
		t.Fatalf("PrevInRing(1) = %d, want 5", got)
	}
	if got := b.PrevInRing(3); got != 1 {
		t.Fatalf("PrevInRing(3) = %d, want 1", got)
	}
	if !b.Involves(3) || b.Involves(2) {
		t.Fatal("Involves wrong")
	}
	if !b.IsCrossShard() {
		t.Fatal("3-shard batch must be cross-shard")
	}
	single := &Batch{Involved: []ShardID{2}}
	if single.IsCrossShard() {
		t.Fatal("1-shard batch must not be cross-shard")
	}
}

// TestRingTraversalVisitsAllOnce: following NextInRing from the initiator
// visits every involved shard exactly once before wrapping (property check
// over random involved sets).
func TestRingTraversalVisitsAllOnce(t *testing.T) {
	f := func(raw []uint8) bool {
		seen := map[ShardID]struct{}{}
		for _, r := range raw {
			seen[ShardID(r%32)] = struct{}{}
		}
		if len(seen) < 2 {
			return true
		}
		var inv []ShardID
		for s := range seen {
			inv = append(inv, s)
		}
		// sort
		for i := 1; i < len(inv); i++ {
			for j := i; j > 0 && inv[j] < inv[j-1]; j-- {
				inv[j], inv[j-1] = inv[j-1], inv[j]
			}
		}
		b := &Batch{Involved: inv}
		cur := b.Initiator()
		visited := map[ShardID]struct{}{cur: {}}
		for i := 0; i < len(inv); i++ {
			next, wrapped := b.NextInRing(cur)
			if wrapped {
				return i == len(inv)-1 && next == b.Initiator()
			}
			if _, dup := visited[next]; dup {
				return false
			}
			visited[next] = struct{}{}
			cur = next
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSigBytesInjective(t *testing.T) {
	a := SigBytes(MsgCommit, 1, 2, 3, Digest{1}, ReplicaNode(1, 2))
	b := SigBytes(MsgCommit, 1, 2, 3, Digest{1}, ReplicaNode(1, 3))
	c := SigBytes(MsgPrepare, 1, 2, 3, Digest{1}, ReplicaNode(1, 2))
	d := SigBytes(MsgCommit, 1, 2, 4, Digest{1}, ReplicaNode(1, 2))
	if string(a) == string(b) || string(a) == string(c) || string(a) == string(d) {
		t.Fatal("SigBytes collides across distinct tuples")
	}
	// Committee and replica with same indices must differ (Kind is signed).
	e := SigBytes(MsgCommit, CommitteeShard, 2, 3, Digest{1}, CommitteeNode(2))
	f := SigBytes(MsgCommit, CommitteeShard, 2, 3, Digest{1}, NodeID{Kind: KindReplica, Shard: CommitteeShard, Index: 2})
	if string(e) == string(f) {
		t.Fatal("SigBytes collides across node kinds")
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(3, 4)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	for _, bad := range []Config{
		{Shards: 0, ReplicasPerShard: 4, BatchSize: 1},
		{Shards: 1, ReplicasPerShard: 3, BatchSize: 1},
		{Shards: 1, ReplicasPerShard: 4, BatchSize: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("config %+v accepted", bad)
		}
	}
}

func TestQuorumArithmetic(t *testing.T) {
	for n := 4; n <= 40; n++ {
		c := DefaultConfig(1, n)
		f := c.F()
		if 3*f+1 > n {
			t.Fatalf("n=%d: f=%d violates n >= 3f+1", n, f)
		}
		if 3*(f+1)+1 <= n {
			t.Fatalf("n=%d: f=%d is not maximal", n, f)
		}
		if c.NF() != n-f {
			t.Fatalf("n=%d: NF=%d, want %d", n, c.NF(), n-f)
		}
		// Two NF quorums must intersect in a non-faulty replica
		// (Proposition 6.1's counting argument).
		if 2*c.NF()-n <= f {
			t.Fatalf("n=%d: quorums intersect in <= f replicas", n)
		}
	}
}

func TestWireSizeScalesWithBatch(t *testing.T) {
	small := &Message{Type: MsgPrePrepare, Batch: &Batch{Txns: make([]Txn, 10)}}
	large := &Message{Type: MsgPrePrepare, Batch: &Batch{Txns: make([]Txn, 1000)}}
	if small.WireSize() >= large.WireSize() {
		t.Fatal("WireSize does not grow with batch size")
	}
	prep := &Message{Type: MsgPrepare}
	if prep.WireSize() != 216 {
		t.Fatalf("Prepare size %d, want paper's 216", prep.WireSize())
	}
	ckpt := &Message{Type: MsgCheckpoint}
	if ckpt.WireSize() != 164 {
		t.Fatalf("Checkpoint size %d, want paper's 164", ckpt.WireSize())
	}
}

func TestNodeIDStrings(t *testing.T) {
	cases := map[string]NodeID{
		"s2/r3": ReplicaNode(2, 3),
		"c9":    ClientNode(9),
		"rc/r1": CommitteeNode(1),
	}
	for want, id := range cases {
		if got := id.String(); got != want {
			t.Errorf("%#v.String() = %q, want %q", id, got, want)
		}
	}
	if KindReplica.String() != "replica" || KindClient.String() != "client" || KindCommittee.String() != "committee" {
		t.Error("NodeKind strings wrong")
	}
}

func TestMsgTypeStrings(t *testing.T) {
	if MsgPrePrepare.String() != "PrePrepare" || MsgForward.String() != "Forward" {
		t.Fatal("MsgType strings wrong")
	}
	if MsgType(200).String() != "Invalid" {
		t.Fatal("out-of-range MsgType should be Invalid")
	}
	if int(msgTypeCount) != len(msgTypeNames) {
		t.Fatalf("msgTypeNames has %d entries for %d types", len(msgTypeNames), msgTypeCount)
	}
}
