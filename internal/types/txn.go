package types

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// Key is a record key in the sharded YCSB-style table. Ownership is
// determined by OwnerShard: the table is range/hash partitioned so that each
// shard manages a unique partition of the data (Section 3).
type Key uint64

// OwnerShard returns the shard that owns key k in a system of z shards.
func OwnerShard(k Key, z int) ShardID {
	if z <= 0 {
		return 0
	}
	return ShardID(uint64(k) % uint64(z))
}

// Value is a record value. YCSB read-modify-write transactions update values
// deterministically so every non-faulty replica computes identical state.
type Value uint64

// HashValues folds a result vector into a deterministic FNV-1a hash.
// Replicas expose their executed-result caches as digest->HashValues maps so
// cross-replica checkers can compare execution outcomes without shipping the
// vectors themselves.
func HashValues(vals []Value) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	var buf [8]byte
	for _, v := range vals {
		binary.BigEndian.PutUint64(buf[:], uint64(v))
		for _, b := range buf {
			h = (h ^ uint64(b)) * prime64
		}
	}
	return h
}

// TxnID uniquely identifies a client transaction.
type TxnID struct {
	Client ClientID
	Seq    uint64
}

// Txn is a deterministic transaction: its read and write sets are known
// prior to consensus (Section 3, "Deterministic Transactions"). Execution
// semantics are read-modify-write: every write key's new value is
// f(old value, Delta, sum of all read values), which gives cross-shard data
// dependencies their teeth — a shard cannot compute its writes without the
// read values shipped from remote shards (complex cst, Section 8.8).
type Txn struct {
	ID     TxnID
	Reads  []Key // keys read; may span shards (remote reads => complex cst)
	Writes []Key // keys written; owner shards form the involved set with Reads
	Delta  Value // client-supplied operand folded into each write
}

// InvolvedShards returns the sorted set of shards a transaction touches in a
// system of z shards. The first element is the initiator shard (lowest ring
// identifier among involved shards; Section 4.2.1).
func (t *Txn) InvolvedShards(z int) []ShardID {
	seen := make(map[ShardID]struct{}, 4)
	for _, k := range t.Reads {
		seen[OwnerShard(k, z)] = struct{}{}
	}
	for _, k := range t.Writes {
		seen[OwnerShard(k, z)] = struct{}{}
	}
	out := make([]ShardID, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ReadsAt returns the subset of t.Reads owned by shard s.
func (t *Txn) ReadsAt(s ShardID, z int) []Key {
	var out []Key
	for _, k := range t.Reads {
		if OwnerShard(k, z) == s {
			out = append(out, k)
		}
	}
	return out
}

// WritesAt returns the subset of t.Writes owned by shard s.
func (t *Txn) WritesAt(s ShardID, z int) []Key {
	var out []Key
	for _, k := range t.Writes {
		if OwnerShard(k, z) == s {
			out = append(out, k)
		}
	}
	return out
}

// Digest is a SHA-256 digest of a batch or message (the paper's Δ).
type Digest [32]byte

// IsZero reports whether d is the all-zero digest.
func (d Digest) IsZero() bool { return d == Digest{} }

// SortedDigestKeys returns the keys of m in lexicographic byte order: the
// deterministic replacement for ranging over a Digest-keyed map wherever
// iteration order can reach a protocol decision or the network.
func SortedDigestKeys[V any](m map[Digest]V) []Digest {
	out := make([]Digest, 0, len(m))
	for d := range m {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i][:], out[j][:]) < 0 })
	return out
}

// SortedSeqKeys returns the keys of m in ascending sequence order: the
// deterministic replacement for ranging over a SeqNum-keyed map wherever
// iteration order can reach a protocol decision or the network.
func SortedSeqKeys[V any](m map[SeqNum]V) []SeqNum {
	out := make([]SeqNum, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Batch is the unit of consensus: the primary aggregates client transactions
// into a batch and runs consensus on the batch (Section 7, "Blockchain").
// All transactions in one batch access the same set of shards, so a batch is
// either entirely single-shard or entirely cross-shard with one involved set.
type Batch struct {
	Txns     []Txn
	Involved []ShardID // sorted ring order; len==1 => single-shard batch

	// Reqs records the transaction count of each original client request
	// coalesced into this batch by the primary's adaptive batcher
	// (PipelineDepth >= 1). Empty means the batch is exactly one client
	// request — the common case, whose digest encoding is unchanged — so
	// every digest minted before adaptive batching existed stays valid.
	// When set, len(Reqs) >= 2 and the counts sum to len(Txns); replicas
	// use SubBatches to answer each original client under the digest that
	// client is waiting on.
	Reqs []uint32
}

// IsCrossShard reports whether the batch involves more than one shard.
func (b *Batch) IsCrossShard() bool { return len(b.Involved) > 1 }

// Initiator returns the first involved shard in ring order — the shard whose
// primary starts consensus on this batch.
func (b *Batch) Initiator() ShardID {
	if len(b.Involved) == 0 {
		return 0
	}
	return b.Involved[0]
}

// NextInRing returns the involved shard that follows s in ring order, and
// whether s is the last involved shard (in which case the successor wraps to
// the initiator, completing a rotation). Mirrors NextInRingOrder(ℑ) of Fig 5.
func (b *Batch) NextInRing(s ShardID) (next ShardID, wrapped bool) {
	for i, sh := range b.Involved {
		if sh == s {
			if i+1 < len(b.Involved) {
				return b.Involved[i+1], false
			}
			return b.Involved[0], true
		}
	}
	return b.Initiator(), false
}

// PrevInRing returns the involved shard that precedes s in ring order.
func (b *Batch) PrevInRing(s ShardID) ShardID {
	for i, sh := range b.Involved {
		if sh == s {
			if i == 0 {
				return b.Involved[len(b.Involved)-1]
			}
			return b.Involved[i-1]
		}
	}
	return b.Initiator()
}

// Involves reports whether shard s is in the batch's involved set.
func (b *Batch) Involves(s ShardID) bool {
	for _, sh := range b.Involved {
		if sh == s {
			return true
		}
	}
	return false
}

// Digest computes the batch digest Δ = H(batch) over a canonical binary
// encoding. Collision resistance of SHA-256 gives message integrity
// (Section 3, "Authenticated Communication").
func (b *Batch) Digest() Digest {
	h := sha256.New()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeU64(uint64(len(b.Txns)))
	for i := range b.Txns {
		t := &b.Txns[i]
		writeU64(uint64(t.ID.Client))
		writeU64(t.ID.Seq)
		writeU64(uint64(len(t.Reads)))
		for _, k := range t.Reads {
			writeU64(uint64(k))
		}
		writeU64(uint64(len(t.Writes)))
		for _, k := range t.Writes {
			writeU64(uint64(k))
		}
		writeU64(uint64(t.Delta))
	}
	writeU64(uint64(len(b.Involved)))
	for _, s := range b.Involved {
		writeU64(uint64(s))
	}
	// Request boundaries are part of the identity of a coalesced batch: two
	// different slicings of the same transactions must not share a digest,
	// or a Byzantine primary could equivocate on who gets answered. The
	// section is appended only when boundaries exist, so single-request
	// batches keep their historical digests (the encoding stays uniquely
	// parseable: every field's length is determined by the counts before
	// it, so equal encodings imply equal field values including the
	// presence of this section).
	if len(b.Reqs) > 0 {
		writeU64(uint64(len(b.Reqs)))
		for _, n := range b.Reqs {
			writeU64(uint64(n))
		}
	}
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}

// SubBatches splits a coalesced batch back into the original client
// requests recorded in Reqs, each with the shared involved set (the batcher
// only merges requests with identical involved sets). A batch without
// boundaries — or with malformed ones, which only a Byzantine primary can
// produce since boundaries are covered by the digest — is returned whole:
// the merged digest then answers no waiting client, and the client-side
// retransmission/view-change watchdogs recover liveness.
func (b *Batch) SubBatches() []Batch {
	if len(b.Reqs) < 2 || !b.validReqs() {
		return []Batch{*b}
	}
	out := make([]Batch, 0, len(b.Reqs))
	lo := 0
	for _, n := range b.Reqs {
		out = append(out, Batch{Txns: b.Txns[lo : lo+int(n)], Involved: b.Involved})
		lo += int(n)
	}
	return out
}

// validReqs reports whether the request boundaries are well formed: at
// least two non-empty requests whose counts sum to exactly len(Txns).
func (b *Batch) validReqs() bool {
	if len(b.Reqs) < 2 {
		return false
	}
	sum := 0
	for _, n := range b.Reqs {
		if n == 0 {
			return false
		}
		sum += int(n)
		if sum > len(b.Txns) {
			return false
		}
	}
	return sum == len(b.Txns)
}

// WriteSet is one shard's executed write set for a batch: the paper's Σℑ
// fragment shipped inside Execute messages so downstream shards can resolve
// read dependencies of complex cross-shard transactions.
type WriteSet struct {
	Shard  ShardID
	Keys   []Key
	Values []Value
	// ReadKeys/ReadValues carry this shard's read results forward so later
	// shards in ring order can satisfy remote-read dependencies.
	ReadKeys   []Key
	ReadValues []Value
}
