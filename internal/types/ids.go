// Package types defines the transactions, batches, identifiers, and wire
// messages shared by every protocol in this repository: the RingBFT
// meta-protocol, the intra-shard PBFT engine, and the AHL / Sharper /
// single-primary baselines.
package types

import (
	"fmt"
	"sort"
)

// ShardID identifies a shard. Shards are logically arranged in a ring in
// increasing ShardID order (the paper's id(S); Section 3, "Ring Order").
type ShardID int

// ClientID identifies a client of the system.
type ClientID int

// NodeKind distinguishes the three kinds of network endpoints.
type NodeKind uint8

const (
	// KindReplica is a consensus replica belonging to a shard.
	KindReplica NodeKind = iota
	// KindClient is a client endpoint.
	KindClient
	// KindCommittee is a member of AHL's reference committee.
	KindCommittee
)

func (k NodeKind) String() string {
	switch k {
	case KindReplica:
		return "replica"
	case KindClient:
		return "client"
	case KindCommittee:
		return "committee"
	default:
		return "unknown"
	}
}

// NodeID is the address of one endpoint on the network: a replica of a
// shard, a reference-committee member, or a client.
type NodeID struct {
	Kind  NodeKind
	Shard ShardID // shard for replicas; unused for clients and committee
	Index int     // replica index within the shard, committee index, or client number
}

// ReplicaNode returns the NodeID of replica index i of shard s.
func ReplicaNode(s ShardID, i int) NodeID {
	return NodeID{Kind: KindReplica, Shard: s, Index: i}
}

// ClientNode returns the NodeID of client c.
func ClientNode(c ClientID) NodeID {
	return NodeID{Kind: KindClient, Index: int(c)}
}

// CommitteeShard is the pseudo shard identifier of AHL's reference
// committee; it never collides with a real shard.
const CommitteeShard ShardID = -1

// CommitteeNode returns the NodeID of reference-committee member i (AHL).
func CommitteeNode(i int) NodeID {
	return NodeID{Kind: KindCommittee, Shard: CommitteeShard, Index: i}
}

func (n NodeID) String() string {
	switch n.Kind {
	case KindReplica:
		return fmt.Sprintf("s%d/r%d", n.Shard, n.Index)
	case KindClient:
		return fmt.Sprintf("c%d", n.Index)
	case KindCommittee:
		return fmt.Sprintf("rc/r%d", n.Index)
	default:
		return fmt.Sprintf("?%d/%d", n.Shard, n.Index)
	}
}

// Less orders NodeIDs canonically by (Kind, Shard, Index). Protocol code
// iterating a NodeID-keyed map must do so in this order wherever the
// iteration emits messages or assigns state — Go's randomized map order
// must never reach a protocol decision (internal/analysis, mapiter rule).
func (n NodeID) Less(o NodeID) bool {
	if n.Kind != o.Kind {
		return n.Kind < o.Kind
	}
	if n.Shard != o.Shard {
		return n.Shard < o.Shard
	}
	return n.Index < o.Index
}

// SortedNodeKeys returns the keys of m in canonical NodeID order: the
// deterministic replacement for ranging over a NodeID-keyed map.
func SortedNodeKeys[V any](m map[NodeID]V) []NodeID {
	out := make([]NodeID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// View is a PBFT view number. The primary of view v in a shard of n
// replicas is replica v mod n.
type View uint64

// SeqNum is a consensus sequence number within one shard's log.
type SeqNum uint64
