package types

import "time"

// Config captures the shape of a sharded-replicated deployment and the
// protocol timers. One Config is shared by all replicas of a cluster.
type Config struct {
	Shards           int // z = |𝔖|
	ReplicasPerShard int // n = |ℜS|; fault tolerance requires n >= 3f+1

	BatchSize int // transactions per consensus batch (paper default 100)

	// PipelineDepth bounds how many proposals a primary keeps in flight
	// (PRE-PREPAREd but not yet committed) across sequence numbers. 0 keeps
	// the legacy behaviour — the primary drains its proposal queue up to the
	// pbft engine's full log window (512 sequences). Depth 1 is lockstep
	// (one consensus instance at a time, the latency floor); small depths
	// (4–16) overlap PRE-PREPARE/PREPARE/COMMIT across sequences, moving
	// the open-loop saturation knee right while commit-order execution is
	// preserved by the executed-prefix watermark. A depth >= 1 also enables
	// adaptive batching: the primary coalesces queued single-shard client
	// requests toward BatchSize under backlog, proposes immediately under
	// light load, and clamps the window to one slot under transport
	// backpressure (see ringbft.Options.Backpressure).
	PipelineDepth int

	// ExecWorkers is the worker-pool size of the dependency-aware batch
	// executor (package sched): committed batches are layered by conflicts
	// between read/write sets and each layer's independent transactions run
	// concurrently. 0 or 1 selects the sequential fast path. Results and
	// state digests are identical either way, so replicas of one shard may
	// even mix settings.
	ExecWorkers int

	// VerifyWorkers is the worker-pool size of the batched signature
	// verifier (crypto.Verifier): the nf Ed25519 signatures of a commit
	// certificate or new-view justification are checked concurrently on a
	// pool of this many workers. 0 or 1 selects the serial path. Accept and
	// reject decisions are identical either way, so replicas of one shard
	// may mix settings — this mirrors the ExecWorkers knob above.
	VerifyWorkers int

	// CheckpointInterval is the number of sequence numbers between
	// checkpoint broadcasts (attack A3: replicas in dark catch up).
	CheckpointInterval SeqNum

	// DataDir enables the durability subsystem (internal/wal): each replica
	// keeps a segmented write-ahead log and snapshot files under
	// DataDir/s<shard>-r<index>, recovers from them on restart, and serves
	// peer state transfer from its durable checkpoints. Empty = in-memory
	// only (the pre-durability behaviour).
	DataDir string

	// FsyncInterval is the WAL group-commit interval: appends are
	// acknowledged immediately and fsynced together once per interval.
	// 0 fsyncs on every append (safest, slowest). A crash loses at most
	// one interval of unsynced tail, which recovery treats exactly like
	// messages a replica in the dark never received.
	FsyncInterval time.Duration

	// SnapshotInterval is the minimum number of sequence numbers between
	// durable snapshots. Snapshots are cut at stable PBFT checkpoints, so
	// the effective cadence is the first stable checkpoint at or past the
	// interval; afterwards WAL segments below the snapshot and in-memory
	// ledger blocks below the checkpoint are garbage-collected. 0 defaults
	// to CheckpointInterval.
	SnapshotInterval SeqNum

	// Transport knobs for the TCP deployment (internal/tcpnet). OutboxDepth
	// is the per-peer bounded outbound queue a replica's Send enqueues into
	// (0 = transport default, 4096); DialTimeout bounds one TCP connect
	// attempt and WriteTimeout one write/flush on an established connection
	// (0 = transport defaults, 2s / 5s). Simnet deployments ignore them.
	OutboxDepth  int
	DialTimeout  time.Duration
	WriteTimeout time.Duration

	// Timers (Section 5, "Triggering of Timers"): local < remote < transmit.
	LocalTimeout    time.Duration // view-change trigger
	RemoteTimeout   time.Duration // remote view-change trigger (Fig 6)
	TransmitTimeout time.Duration // Forward retransmission (Section 5.1.1)
	ClientTimeout   time.Duration // client broadcast-on-timeout (attack A1)
}

// F returns f, the maximum number of Byzantine replicas tolerated per shard:
// the largest f with n >= 3f+1.
func (c *Config) F() int { return (c.ReplicasPerShard - 1) / 3 }

// NF returns nf = n - f, the quorum size used for Prepare/Commit
// certificates and view changes.
func (c *Config) NF() int { return c.ReplicasPerShard - c.F() }

// Validate reports a non-nil error when the configuration cannot host a
// Byzantine quorum system.
func (c *Config) Validate() error {
	switch {
	case c.Shards < 1:
		return errConfig("Shards must be >= 1")
	case c.ReplicasPerShard < 4:
		return errConfig("ReplicasPerShard must be >= 4 (n >= 3f+1 with f >= 1)")
	case c.BatchSize < 1:
		return errConfig("BatchSize must be >= 1")
	case c.PipelineDepth < 0:
		return errConfig("PipelineDepth must be >= 0 (0 = unbounded)")
	}
	return nil
}

type errConfig string

func (e errConfig) Error() string { return "types: invalid config: " + string(e) }

// DefaultConfig returns a Config with the paper's standard settings scaled
// for in-process simulation: batching enabled, PBFT quorum timers ordered
// local < remote < transmit.
func DefaultConfig(shards, replicasPerShard int) Config {
	return Config{
		Shards:             shards,
		ReplicasPerShard:   replicasPerShard,
		BatchSize:          100,
		CheckpointInterval: 64,
		LocalTimeout:       250 * time.Millisecond,
		RemoteTimeout:      500 * time.Millisecond,
		TransmitTimeout:    time.Second,
		ClientTimeout:      2 * time.Second,
	}
}
