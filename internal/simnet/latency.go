package simnet

import "time"

// Region is one of the fifteen GCP regions of the paper's deployment
// (Section 8): Oregon, Iowa, Montreal, Netherlands, Taiwan, Sydney,
// Singapore, South Carolina, North Virginia, Los Angeles, Las Vegas,
// London, Belgium, Tokyo, Hong Kong. Shard i is placed in region i mod 15,
// matching the paper's "choice of the shards is in the order we have
// mentioned above".
type Region int

// The fifteen deployment regions, in the paper's order.
const (
	Oregon Region = iota
	Iowa
	Montreal
	Netherlands
	Taiwan
	Sydney
	Singapore
	SouthCarolina
	NorthVirginia
	LosAngeles
	LasVegas
	London
	Belgium
	Tokyo
	HongKong
	NumRegions // = 15
)

var regionNames = [...]string{
	"oregon", "iowa", "montreal", "netherlands", "taiwan", "sydney",
	"singapore", "south-carolina", "north-virginia", "los-angeles",
	"las-vegas", "london", "belgium", "tokyo", "hong-kong",
}

func (r Region) String() string {
	if r >= 0 && int(r) < len(regionNames) {
		return regionNames[r]
	}
	return "unknown"
}

// rttMS is an approximate inter-region round-trip-time matrix in
// milliseconds, assembled from published GCP inter-region measurements.
// Only relative magnitudes matter for reproducing the paper's shapes: LAN
// (~0.5 ms) vs. intra-continent (~20-60 ms) vs. trans-Pacific/Atlantic
// (~100-300 ms). The matrix is symmetric with a small same-region RTT.
var rttMS = [NumRegions][NumRegions]float64{
	//              ORE   IOW   MON   NET   TAI   SYD   SIN   SCA   NVA   LAX   LAS   LON   BEL   TOK   HKG
	Oregon:        {0.5, 36, 62, 136, 118, 162, 168, 68, 60, 26, 22, 128, 132, 90, 132},
	Iowa:          {36, 0.5, 28, 102, 150, 188, 200, 32, 26, 40, 36, 94, 98, 122, 164},
	Montreal:      {62, 28, 0.5, 82, 180, 210, 216, 32, 24, 66, 62, 74, 78, 148, 190},
	Netherlands:   {136, 102, 82, 0.5, 252, 272, 164, 92, 84, 140, 136, 8, 6, 222, 200},
	Taiwan:        {118, 150, 180, 252, 0.5, 130, 46, 184, 176, 130, 134, 244, 248, 34, 12},
	Sydney:        {162, 188, 210, 272, 130, 0.5, 92, 204, 198, 144, 150, 264, 268, 104, 124},
	Singapore:     {168, 200, 216, 164, 46, 92, 0.5, 226, 218, 178, 182, 156, 160, 68, 34},
	SouthCarolina: {68, 32, 32, 92, 184, 204, 226, 0.5, 12, 58, 56, 84, 88, 154, 196},
	NorthVirginia: {60, 26, 24, 84, 176, 198, 218, 12, 0.5, 56, 52, 76, 80, 146, 188},
	LosAngeles:    {26, 40, 66, 140, 130, 144, 178, 58, 56, 0.5, 8, 132, 136, 100, 142},
	LasVegas:      {22, 36, 62, 136, 134, 150, 182, 56, 52, 8, 0.5, 128, 132, 104, 146},
	London:        {128, 94, 74, 8, 244, 264, 156, 84, 76, 132, 128, 0.5, 8, 214, 192},
	Belgium:       {132, 98, 78, 6, 248, 268, 160, 88, 80, 136, 132, 8, 0.5, 218, 196},
	Tokyo:         {90, 122, 148, 222, 34, 104, 68, 154, 146, 100, 104, 214, 218, 0.5, 42},
	HongKong:      {132, 164, 190, 200, 12, 124, 34, 196, 188, 142, 146, 192, 196, 42, 0.5},
}

// RTT returns the approximate round-trip time between two regions.
func RTT(a, b Region) time.Duration {
	return time.Duration(rttMS[a][b] * float64(time.Millisecond))
}

// LatencyModel maps a (from, to) region pair to a one-way network delay.
type LatencyModel interface {
	Delay(from, to Region) time.Duration
}

// WANLatency is the default latency model: one-way delay = RTT/2 scaled by
// Scale. Scale < 1 compresses wall-clock time so geo-scale experiments run
// in milliseconds instead of minutes; all links compress equally, preserving
// the WAN/LAN ratio that separates the protocols (DESIGN.md §3).
type WANLatency struct {
	Scale float64
}

// Delay implements LatencyModel.
func (w WANLatency) Delay(from, to Region) time.Duration {
	s := w.Scale
	if s <= 0 {
		s = 1
	}
	return time.Duration(float64(RTT(from, to)) / 2 * s)
}

// FixedLatency delivers every message after the same delay; useful for unit
// tests and for LAN-style deployments.
type FixedLatency struct{ D time.Duration }

// Delay implements LatencyModel.
func (f FixedLatency) Delay(from, to Region) time.Duration { return f.D }

// ShardRegion returns the region hosting shard s under the paper's
// placement: shards are assigned to the fifteen regions in order.
func ShardRegion(s int) Region { return Region(s % int(NumRegions)) }
