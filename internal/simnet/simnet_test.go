package simnet

import (
	"testing"
	"time"

	"ringbft/internal/types"
)

func msg() *types.Message {
	return &types.Message{Type: types.MsgPrepare, From: types.ReplicaNode(0, 0)}
}

func recv(t *testing.T, ep *Endpoint, within time.Duration) *types.Message {
	t.Helper()
	select {
	case m := <-ep.Inbox():
		return m
	case <-time.After(within):
		return nil
	}
}

func TestDeliveryAndStats(t *testing.T) {
	n := New(Options{Latency: FixedLatency{0}})
	defer n.Close()
	a := n.Attach(types.ReplicaNode(0, 0), Oregon)
	b := n.Attach(types.ReplicaNode(0, 1), Oregon)
	a.Send(b.ID(), msg())
	if recv(t, b, time.Second) == nil {
		t.Fatal("message not delivered")
	}
	if n.Stats.MsgsSent.Load() != 1 || n.Stats.MsgsDelivered.Load() != 1 {
		t.Fatal("stats not recorded")
	}
	if n.Stats.BytesLocal.Load() == 0 || n.Stats.BytesCross.Load() != 0 {
		t.Fatal("same-region bytes misclassified")
	}
}

func TestCrossRegionByteAccounting(t *testing.T) {
	n := New(Options{Latency: FixedLatency{0}})
	defer n.Close()
	a := n.Attach(types.ReplicaNode(0, 0), Oregon)
	b := n.Attach(types.ReplicaNode(1, 0), Tokyo)
	a.Send(b.ID(), msg())
	recv(t, b, time.Second)
	if n.Stats.BytesCross.Load() == 0 {
		t.Fatal("cross-region bytes not accounted")
	}
}

func TestUnknownDestinationDropped(t *testing.T) {
	n := New(Options{Latency: FixedLatency{0}})
	defer n.Close()
	a := n.Attach(types.ReplicaNode(0, 0), Oregon)
	a.Send(types.ReplicaNode(9, 9), msg())
	if n.Stats.MsgsDropped.Load() != 1 {
		t.Fatal("message to unknown node not counted as dropped")
	}
}

func TestCrashedNodeDropsTraffic(t *testing.T) {
	n := New(Options{Latency: FixedLatency{0}})
	defer n.Close()
	a := n.Attach(types.ReplicaNode(0, 0), Oregon)
	b := n.Attach(types.ReplicaNode(0, 1), Oregon)
	n.SetCrashed(b.ID(), true)
	a.Send(b.ID(), msg())
	if got := recv(t, b, 50*time.Millisecond); got != nil {
		t.Fatal("crashed node received a message")
	}
	n.SetCrashed(b.ID(), false)
	a.Send(b.ID(), msg())
	if recv(t, b, time.Second) == nil {
		t.Fatal("revived node did not receive")
	}
}

func TestLinkFilterPartition(t *testing.T) {
	n := New(Options{Latency: FixedLatency{0}})
	defer n.Close()
	a := n.Attach(types.ReplicaNode(0, 0), Oregon)
	b := n.Attach(types.ReplicaNode(1, 0), Iowa)
	n.SetLinkFilter(func(from, to types.NodeID) bool {
		return from.Shard == 0 && to.Shard == 1
	})
	a.Send(b.ID(), msg())
	if got := recv(t, b, 50*time.Millisecond); got != nil {
		t.Fatal("partitioned link delivered")
	}
	// Reverse direction unaffected.
	b.Send(a.ID(), msg())
	if recv(t, a, time.Second) == nil {
		t.Fatal("reverse link blocked")
	}
	n.SetLinkFilter(nil)
	a.Send(b.ID(), msg())
	if recv(t, b, time.Second) == nil {
		t.Fatal("healed link still blocked")
	}
}

func TestLossRateDropsRoughlyP(t *testing.T) {
	n := New(Options{Latency: FixedLatency{0}, Seed: 7})
	defer n.Close()
	a := n.Attach(types.ReplicaNode(0, 0), Oregon)
	b := n.Attach(types.ReplicaNode(0, 1), Oregon)
	n.SetLossRate(0.5)
	const total = 2000
	for i := 0; i < total; i++ {
		a.Send(b.ID(), msg())
	}
	time.Sleep(50 * time.Millisecond)
	dropped := n.Stats.MsgsDropped.Load()
	if dropped < total/3 || dropped > total*2/3 {
		t.Fatalf("dropped %d of %d at p=0.5", dropped, total)
	}
}

func TestLossFilterTargetsLinks(t *testing.T) {
	n := New(Options{Latency: FixedLatency{0}, Seed: 11})
	defer n.Close()
	a := n.Attach(types.ReplicaNode(0, 0), Oregon)
	b := n.Attach(types.ReplicaNode(1, 0), Iowa)
	c := n.Attach(types.ReplicaNode(0, 1), Oregon)
	n.SetLossFilter(func(from, to types.NodeID) float64 {
		if from.Shard != to.Shard {
			return 1.0 // storm the cross-shard link only
		}
		return 0
	})
	a.Send(b.ID(), msg())
	if got := recv(t, b, 50*time.Millisecond); got != nil {
		t.Fatal("stormed link delivered")
	}
	a.Send(c.ID(), msg())
	if recv(t, c, time.Second) == nil {
		t.Fatal("healthy link lost the message")
	}
	n.SetLossFilter(nil)
	a.Send(b.ID(), msg())
	if recv(t, b, time.Second) == nil {
		t.Fatal("healed link still dropping")
	}
}

func TestDelayFilterSkewsLink(t *testing.T) {
	n := New(Options{Latency: FixedLatency{0}})
	defer n.Close()
	a := n.Attach(types.ReplicaNode(0, 0), Oregon)
	b := n.Attach(types.ReplicaNode(0, 1), Oregon)
	n.SetDelayFilter(func(from, to types.NodeID) time.Duration {
		return 30 * time.Millisecond
	})
	start := time.Now()
	a.Send(b.ID(), msg())
	if recv(t, b, time.Second) == nil {
		t.Fatal("delayed message never arrived")
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("delay filter not applied: delivered after %v", elapsed)
	}
	n.SetDelayFilter(nil)
	start = time.Now()
	a.Send(b.ID(), msg())
	if recv(t, b, time.Second) == nil {
		t.Fatal("not delivered after clearing filter")
	}
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Fatalf("cleared delay filter still delaying: %v", elapsed)
	}
}

func TestPerLinkFIFO(t *testing.T) {
	n := New(Options{Latency: FixedLatency{200 * time.Microsecond}})
	defer n.Close()
	a := n.Attach(types.ReplicaNode(0, 0), Oregon)
	b := n.Attach(types.ReplicaNode(0, 1), Oregon)
	const k = 200
	for i := 0; i < k; i++ {
		m := msg()
		m.Seq = types.SeqNum(i)
		a.Send(b.ID(), m)
	}
	for i := 0; i < k; i++ {
		m := recv(t, b, time.Second)
		if m == nil {
			t.Fatalf("message %d missing", i)
		}
		if m.Seq != types.SeqNum(i) {
			t.Fatalf("reordered: got seq %d at position %d", m.Seq, i)
		}
	}
}

func TestLatencyApplied(t *testing.T) {
	n := New(Options{Latency: FixedLatency{30 * time.Millisecond}})
	defer n.Close()
	a := n.Attach(types.ReplicaNode(0, 0), Oregon)
	b := n.Attach(types.ReplicaNode(0, 1), Oregon)
	start := time.Now()
	a.Send(b.ID(), msg())
	if recv(t, b, time.Second) == nil {
		t.Fatal("not delivered")
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("delivered after %v, want >= ~30ms", elapsed)
	}
}

func TestBandwidthSerializes(t *testing.T) {
	// 10 large messages through a thin NIC must take ~size*count/bps.
	n := New(Options{Latency: FixedLatency{0}, NodeBps: 1e6}) // 1 MB/s
	defer n.Close()
	a := n.Attach(types.ReplicaNode(0, 0), Oregon)
	b := n.Attach(types.ReplicaNode(0, 1), Oregon)
	big := &types.Message{Type: types.MsgPrePrepare, From: a.ID(), Batch: &types.Batch{Txns: make([]types.Txn, 100)}}
	start := time.Now()
	const k = 10
	for i := 0; i < k; i++ {
		a.Send(b.ID(), big)
	}
	for i := 0; i < k; i++ {
		if recv(t, b, 2*time.Second) == nil {
			t.Fatal("lost under bandwidth model")
		}
	}
	// ~5.4KB × 10 × 2 (egress+ingress) at 1MB/s ≈ 108ms.
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("bandwidth not charged: %v", elapsed)
	}
}

func TestProcTimeCapsMessageRate(t *testing.T) {
	n := New(Options{Latency: FixedLatency{0}, ProcTime: time.Millisecond})
	defer n.Close()
	a := n.Attach(types.ReplicaNode(0, 0), Oregon)
	b := n.Attach(types.ReplicaNode(0, 1), Oregon)
	start := time.Now()
	const k = 50
	for i := 0; i < k; i++ {
		a.Send(b.ID(), msg())
	}
	for i := 0; i < k; i++ {
		if recv(t, b, 2*time.Second) == nil {
			t.Fatal("lost under proc model")
		}
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("per-message processing not charged: %v (want >= ~50ms)", elapsed)
	}
}

func TestRTTMatrixSymmetricAndPositive(t *testing.T) {
	for a := Region(0); a < NumRegions; a++ {
		for b := Region(0); b < NumRegions; b++ {
			if RTT(a, b) != RTT(b, a) {
				t.Fatalf("RTT(%v,%v) asymmetric", a, b)
			}
			if RTT(a, b) <= 0 {
				t.Fatalf("RTT(%v,%v) <= 0", a, b)
			}
			if a != b && RTT(a, b) < RTT(a, a) {
				t.Fatalf("inter-region RTT below intra-region for %v-%v", a, b)
			}
		}
	}
}

func TestWANLatencyScale(t *testing.T) {
	full := WANLatency{Scale: 1}.Delay(Oregon, Tokyo)
	half := WANLatency{Scale: 0.5}.Delay(Oregon, Tokyo)
	if half*2 != full {
		t.Fatalf("scaling broken: full=%v half=%v", full, half)
	}
	if (WANLatency{}).Delay(Oregon, Tokyo) != full {
		t.Fatal("zero scale should default to 1")
	}
}

func TestShardRegionWraps(t *testing.T) {
	if ShardRegion(0) != Oregon || ShardRegion(15) != Oregon || ShardRegion(16) != Iowa {
		t.Fatal("shard-to-region placement wrong")
	}
	for r := Region(0); r < NumRegions; r++ {
		if r.String() == "unknown" {
			t.Fatalf("region %d has no name", r)
		}
	}
}

func TestAttachIdempotent(t *testing.T) {
	n := New(Options{})
	defer n.Close()
	a1 := n.Attach(types.ReplicaNode(0, 0), Oregon)
	a2 := n.Attach(types.ReplicaNode(0, 0), Tokyo)
	if a1 != a2 {
		t.Fatal("re-attach created a second endpoint")
	}
	if n.RegionOf(a1.ID()) != Oregon {
		t.Fatal("re-attach moved the node's region")
	}
}

func TestCloseStopsDelivery(t *testing.T) {
	n := New(Options{Latency: FixedLatency{10 * time.Millisecond}})
	a := n.Attach(types.ReplicaNode(0, 0), Oregon)
	b := n.Attach(types.ReplicaNode(0, 1), Oregon)
	a.Send(b.ID(), msg())
	n.Close()
	if got := recv(t, b, 50*time.Millisecond); got != nil {
		t.Fatal("delivery after Close")
	}
}

func TestMulticast(t *testing.T) {
	n := New(Options{Latency: FixedLatency{0}})
	defer n.Close()
	a := n.Attach(types.ReplicaNode(0, 0), Oregon)
	var tos []types.NodeID
	eps := make([]*Endpoint, 3)
	for i := 0; i < 3; i++ {
		eps[i] = n.Attach(types.ReplicaNode(0, i+1), Oregon)
		tos = append(tos, eps[i].ID())
	}
	a.Multicast(tos, msg())
	for i, ep := range eps {
		if recv(t, ep, time.Second) == nil {
			t.Fatalf("multicast recipient %d missed", i)
		}
	}
}
