// Package simnet is the in-process network substrate: it plays the role of
// the geo-distributed GCP deployment of the paper's evaluation (Section 8).
// Endpoints (replicas, committee members, clients) exchange messages with
// per-link delays drawn from a 15-region WAN latency matrix, optional
// jitter, message loss, partitions, and crashed nodes. The simulator also
// accounts messages and bytes per link class so the communication-complexity
// claims (linear vs. quadratic) are directly measurable.
package simnet

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ringbft/internal/types"
)

// Stats aggregates network counters. All fields are updated atomically.
type Stats struct {
	MsgsSent      atomic.Int64
	MsgsDelivered atomic.Int64
	MsgsDropped   atomic.Int64
	BytesSent     atomic.Int64
	BytesCross    atomic.Int64 // bytes on inter-region (cross-shard) links
	BytesLocal    atomic.Int64 // bytes on intra-region links
}

// Network is an in-process message network. Safe for concurrent use.
type Network struct {
	latency LatencyModel
	jitter  float64 // +/- fraction of delay, e.g. 0.1
	inboxSz int
	nodeBps float64       // per-node egress/ingress bandwidth (0 = infinite)
	proc    time.Duration // per-message receive processing cost (0 = none)

	mu        sync.RWMutex
	endpoints map[types.NodeID]*Endpoint
	region    map[types.NodeID]Region
	crashed   map[types.NodeID]bool
	lossRate  float64
	// linkDown, when non-nil, blocks delivery for (from,to) pairs it
	// reports true for; used for partition / no-communication attacks.
	linkDown func(from, to types.NodeID) bool
	// linkLoss, when non-nil, returns a per-link drop probability that
	// compounds with the global lossRate; lets a nemesis schedule storm a
	// subset of links while the rest of the network stays healthy.
	linkLoss func(from, to types.NodeID) float64
	// linkDelay, when non-nil, returns extra one-way delay added on top of
	// the latency model for (from,to) — message-delay skews and slow-link
	// storms, installable and removable mid-run.
	linkDelay func(from, to types.NodeID) time.Duration

	// Jitter/loss sampling draws from a pool of independent RNGs instead of
	// one mutex-guarded generator: every concurrent sender gets its own
	// stream (seeded deterministically off the base seed), so hot-path sends
	// never serialize on a global RNG lock.
	rngSeed  int64
	rngCount atomic.Int64
	rngPool  sync.Pool

	// Per-link FIFO delivery queues: each (from,to) link delivers messages
	// strictly in send order, like a TCP connection, with at most one
	// runtime timer in flight per link (Go timers with near-equal deadlines
	// may otherwise fire out of order). egressFree/ingressFree are each
	// node's NIC queue horizons when bandwidth/processing modelling is on.
	linkMu      sync.Mutex
	links       map[[2]types.NodeID]*linkQueue
	egressFree  map[types.NodeID]time.Time
	ingressFree map[types.NodeID]time.Time

	closed atomic.Bool
	Stats  Stats
}

// Options configures a Network.
type Options struct {
	Latency   LatencyModel // default: FixedLatency{500µs}
	Jitter    float64      // fraction of delay, default 0
	InboxSize int          // per-endpoint buffer, default 8192
	Seed      int64        // RNG seed for jitter/loss, default 1

	// NodeBps models each node's NIC: messages serialize through a FIFO
	// egress queue at the sender and a FIFO ingress queue at the receiver
	// at NodeBps bytes/second. 0 = infinite bandwidth.
	NodeBps float64
	// ProcTime is the per-message CPU cost paid in the receiver's ingress
	// queue; it caps a node's sustainable message rate at 1/ProcTime the
	// way ResilientDB's worker pipeline caps a 16-core VM. Protocols with
	// quadratic communication saturate this budget first — the effect the
	// paper's evaluation attributes AHL's and Sharper's WAN collapse to.
	ProcTime time.Duration
}

// New creates a Network.
func New(opts Options) *Network {
	if opts.Latency == nil {
		opts.Latency = FixedLatency{500 * time.Microsecond}
	}
	if opts.InboxSize <= 0 {
		opts.InboxSize = 8192
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	n := &Network{
		latency:     opts.Latency,
		jitter:      opts.Jitter,
		inboxSz:     opts.InboxSize,
		nodeBps:     opts.NodeBps,
		proc:        opts.ProcTime,
		endpoints:   make(map[types.NodeID]*Endpoint),
		region:      make(map[types.NodeID]Region),
		crashed:     make(map[types.NodeID]bool),
		rngSeed:     seed,
		links:       make(map[[2]types.NodeID]*linkQueue),
		egressFree:  make(map[types.NodeID]time.Time),
		ingressFree: make(map[types.NodeID]time.Time),
	}
	n.rngPool.New = func() any {
		// Each pooled generator gets its own deterministic stream; the odd
		// multiplier decorrelates consecutive streams of nearby seeds.
		const stride = 0x9E3779B97F4A7C15 // 2^64/φ, reinterpreted as int64
		return rand.New(rand.NewSource(n.rngSeed + int64(uint64(stride)*uint64(n.rngCount.Add(1)))))
	}
	return n
}

// Endpoint is one node's attachment to the network.
type Endpoint struct {
	id  types.NodeID
	net *Network
	in  chan *types.Message
}

// ID returns the endpoint's node id.
func (e *Endpoint) ID() types.NodeID { return e.id }

// Inbox returns the endpoint's receive channel.
func (e *Endpoint) Inbox() <-chan *types.Message { return e.in }

// Send transmits m to node to, applying link latency, loss, partitions and
// crash state. Send never blocks the caller.
func (e *Endpoint) Send(to types.NodeID, m *types.Message) { e.net.send(e.id, to, m) }

// Multicast sends an independent copy of m to every node in tos. The message
// value itself is shared (treated as immutable after send), matching how a
// broadcast is physically n point-to-point sends.
func (e *Endpoint) Multicast(tos []types.NodeID, m *types.Message) {
	for _, to := range tos {
		e.net.send(e.id, to, m)
	}
}

// Attach registers a node in a region and returns its endpoint. Attaching an
// already-attached node returns the existing endpoint.
func (n *Network) Attach(id types.NodeID, r Region) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.endpoints[id]; ok {
		return ep
	}
	ep := &Endpoint{id: id, net: n, in: make(chan *types.Message, n.inboxSz)}
	n.endpoints[id] = ep
	n.region[id] = r
	return ep
}

// RegionOf returns the region a node was attached in.
func (n *Network) RegionOf(id types.NodeID) Region {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.region[id]
}

// SetCrashed marks a node crashed (all its traffic is dropped) or revives it.
// Used by the primary-failure experiment (Fig 9).
func (n *Network) SetCrashed(id types.NodeID, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[id] = down
}

// SetLossRate sets the probability in [0,1] that any message is dropped,
// modelling an unreliable network (attack A2).
func (n *Network) SetLossRate(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.lossRate = p
}

// SetLinkFilter installs f as the partition predicate: messages from->to are
// dropped while f(from,to) is true. Pass nil to clear. Models the
// no-communication (C1) and partial-communication (C2) cross-shard attacks.
func (n *Network) SetLinkFilter(f func(from, to types.NodeID) bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkDown = f
}

// SetLossFilter installs f as a per-link loss model: the drop probability
// for a message from->to is max(global SetLossRate, f(from,to)). Pass nil
// to clear. Nemesis schedules use it for targeted loss storms on chosen
// link classes.
func (n *Network) SetLossFilter(f func(from, to types.NodeID) float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkLoss = f
}

// SetDelayFilter installs f as a per-link extra-delay model: every message
// from->to is delayed by an additional f(from,to) on top of the latency
// model. Pass nil to clear. Nemesis schedules use it for message-delay
// skews (slow links that stay connected).
func (n *Network) SetDelayFilter(f func(from, to types.NodeID) time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkDelay = f
}

// Close stops future deliveries. In-flight timers become no-ops.
func (n *Network) Close() { n.closed.Store(true) }

func (n *Network) send(from, to types.NodeID, m *types.Message) {
	if n.closed.Load() {
		return
	}
	n.mu.RLock()
	dst, ok := n.endpoints[to]
	srcRegion, dstRegion := n.region[from], n.region[to]
	crashed := n.crashed[from] || n.crashed[to]
	loss := n.lossRate
	down := n.linkDown != nil && n.linkDown(from, to)
	if n.linkLoss != nil {
		if p := n.linkLoss(from, to); p > loss {
			loss = p
		}
	}
	var extraDelay time.Duration
	if n.linkDelay != nil {
		extraDelay = n.linkDelay(from, to)
	}
	n.mu.RUnlock()

	size := int64(m.WireSize())
	n.Stats.MsgsSent.Add(1)
	n.Stats.BytesSent.Add(size)
	if srcRegion != dstRegion {
		n.Stats.BytesCross.Add(size)
	} else {
		n.Stats.BytesLocal.Add(size)
	}

	if !ok || crashed || down {
		n.Stats.MsgsDropped.Add(1)
		return
	}
	d := n.latency.Delay(srcRegion, dstRegion) + extraDelay
	if loss > 0 || n.jitter > 0 {
		rng := n.rngPool.Get().(*rand.Rand)
		drop := loss > 0 && rng.Float64() < loss
		if !drop && n.jitter > 0 {
			d += time.Duration((rng.Float64()*2 - 1) * n.jitter * float64(d))
		}
		n.rngPool.Put(rng)
		if drop {
			n.Stats.MsgsDropped.Add(1)
			return
		}
	}

	// Capacity model: with bandwidth/processing enabled, the message
	// serializes through the sender's egress queue, propagates for d, then
	// serializes through the receiver's ingress queue (NIC + per-message
	// CPU).
	//ringbft:ignore wallclock simnet delivers in real time by design; the seed governs loss/jitter sampling only, and those draw from the per-network seeded rngPool above
	now := time.Now()
	var tx time.Duration
	if n.nodeBps > 0 {
		tx = time.Duration(float64(size) / n.nodeBps * float64(time.Second))
	}
	var deliverAt time.Time
	n.linkMu.Lock()
	if n.nodeBps > 0 || n.proc > 0 {
		dep := now
		if ef := n.egressFree[from]; ef.After(dep) {
			dep = ef
		}
		dep = dep.Add(tx)
		n.egressFree[from] = dep
		arr := dep.Add(d)
		recv := arr
		if inf := n.ingressFree[to]; inf.After(recv) {
			recv = inf
		}
		recv = recv.Add(tx + n.proc)
		n.ingressFree[to] = recv
		deliverAt = recv
	} else {
		deliverAt = now.Add(d)
	}
	key := [2]types.NodeID{from, to}
	lq, ok := n.links[key]
	if !ok {
		lq = &linkQueue{}
		n.links[key] = lq
	}
	lq.pending = append(lq.pending, flight{m: m, at: deliverAt, dst: dst})
	if !lq.armed {
		lq.armed = true
		n.armLink(lq, now)
	}
	n.linkMu.Unlock()
}

// flight is one in-flight message on a link.
type flight struct {
	m   *types.Message
	at  time.Time
	dst *Endpoint
}

// linkQueue serializes deliveries on one (from,to) link: exactly one timer
// is armed at a time and messages pop in send order, so a link can never
// reorder (TCP-like semantics).
type linkQueue struct {
	pending []flight
	armed   bool
}

// armLink schedules delivery of the head of lq. Caller holds linkMu.
func (n *Network) armLink(lq *linkQueue, now time.Time) {
	head := lq.pending[0]
	wait := head.at.Sub(now)
	if wait < 0 {
		wait = 0
	}
	//ringbft:ignore wallclock real-time delivery timer; link ordering (TCP-like FIFO) is enforced under linkMu, not by timer granularity
	time.AfterFunc(wait, func() { n.fireLink(lq) })
}

// fireLink delivers the head of lq and re-arms for the next message. The
// delivery happens under linkMu — the inbox send is non-blocking, and
// holding the lock guarantees the next timer cannot overtake this delivery.
func (n *Network) fireLink(lq *linkQueue) {
	n.linkMu.Lock()
	defer n.linkMu.Unlock()
	head := lq.pending[0]
	lq.pending = lq.pending[1:]
	if len(lq.pending) > 0 {
		//ringbft:ignore wallclock real-time re-arm of the link timer; see armLink
		n.armLink(lq, time.Now())
	} else {
		lq.armed = false
		lq.pending = nil
	}

	if n.closed.Load() {
		return
	}
	select {
	case head.dst.in <- head.m:
		n.Stats.MsgsDelivered.Add(1)
	default:
		// Inbox overflow models a saturated replica dropping packets;
		// BFT protocols must recover via retransmission/timeouts.
		n.Stats.MsgsDropped.Add(1)
	}
}
