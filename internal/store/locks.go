package store

import "ringbft/internal/types"

// LockTable is a shard-local exclusive lock table over keys. RingBFT
// acquires locks in transactional sequence order (k_max + π list, Fig 5), so
// the table itself only needs all-or-nothing TryLock semantics: ordering
// policy lives in the protocol layer.
type LockTable struct {
	held map[types.Key]uint64 // key -> owner token
}

// NewLockTable returns an empty lock table.
func NewLockTable() *LockTable {
	return &LockTable{held: make(map[types.Key]uint64)}
}

// Available reports whether every key in keys is unlocked or already held by
// owner (re-entrancy: a batch's read and write sets may overlap).
func (lt *LockTable) Available(keys []types.Key, owner uint64) bool {
	for _, k := range keys {
		if o, ok := lt.held[k]; ok && o != owner {
			return false
		}
	}
	return true
}

// TryLock atomically acquires all keys for owner, or none of them.
// It returns true on success.
func (lt *LockTable) TryLock(keys []types.Key, owner uint64) bool {
	if !lt.Available(keys, owner) {
		return false
	}
	for _, k := range keys {
		lt.held[k] = owner
	}
	return true
}

// Unlock releases every key held by owner among keys. Releasing keys not
// held by owner is a no-op, making release idempotent under retransmission.
func (lt *LockTable) Unlock(keys []types.Key, owner uint64) {
	for _, k := range keys {
		if o, ok := lt.held[k]; ok && o == owner {
			delete(lt.held, k)
		}
	}
}

// HeldBy returns the owner token of k, and whether k is locked.
func (lt *LockTable) HeldBy(k types.Key) (uint64, bool) {
	o, ok := lt.held[k]
	return o, ok
}

// Count returns the number of currently locked keys.
func (lt *LockTable) Count() int { return len(lt.held) }
