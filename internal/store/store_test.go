package store

import (
	"testing"
	"testing/quick"

	"ringbft/internal/types"
)

func TestPreloadOwnership(t *testing.T) {
	kv := NewKV()
	kv.Preload(2, 5, 100)
	if kv.Len() != 100 {
		t.Fatalf("preloaded %d records, want 100", kv.Len())
	}
	// Every preloaded key must belong to shard 2 and equal its key.
	for i := 0; i < 100; i++ {
		k := types.Key(2 + uint64(i)*5)
		if types.OwnerShard(k, 5) != 2 {
			t.Fatalf("key %d not owned by shard 2", k)
		}
		if got := kv.Get(k); got != types.Value(k) {
			t.Fatalf("key %d = %d, want %d", k, got, k)
		}
	}
}

func TestExecuteTxnLocalOnly(t *testing.T) {
	kv := NewKV()
	kv.Set(10, 100) // shard 0 of z=2 owns even keys
	tx := &types.Txn{Reads: []types.Key{10}, Writes: []types.Key{10}, Delta: 7}
	res, err := kv.ExecuteTxn(tx, 0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res != 107 {
		t.Fatalf("combined = %d, want 107", res)
	}
	if got := kv.Get(10); got != 207 {
		t.Fatalf("value = %d, want 207", got)
	}
}

func TestExecuteTxnMissingRemoteRead(t *testing.T) {
	kv := NewKV()
	tx := &types.Txn{Reads: []types.Key{1}, Writes: []types.Key{0}, Delta: 1} // key 1 on shard 1
	if _, err := kv.ExecuteTxn(tx, 0, 2, nil); err == nil {
		t.Fatal("missing remote read not detected")
	}
	// With the dependency supplied it succeeds.
	res, err := kv.ExecuteTxn(tx, 0, 2, map[types.Key]types.Value{1: 41})
	if err != nil {
		t.Fatal(err)
	}
	if res != 42 {
		t.Fatalf("combined = %d, want 42", res)
	}
}

func TestExecuteTxnPartialIgnoresRemote(t *testing.T) {
	kv := NewKV()
	kv.Set(0, 5)
	tx := &types.Txn{Reads: []types.Key{0, 1}, Writes: []types.Key{0}, Delta: 1}
	res := kv.ExecuteTxnPartial(tx, 0, 2)
	if res != 6 { // remote key 1 contributes zero
		t.Fatalf("partial combined = %d, want 6", res)
	}
	if got := kv.Get(0); got != 11 {
		t.Fatalf("value = %d, want 11", got)
	}
}

func TestExecuteDeterminism(t *testing.T) {
	// Two replicas executing the same transactions reach identical state —
	// the determinism requirement of Section 3.
	f := func(deltas []uint16) bool {
		kv1, kv2 := NewKV(), NewKV()
		kv1.Preload(0, 1, 32)
		kv2.Preload(0, 1, 32)
		for i, d := range deltas {
			tx := &types.Txn{
				Reads:  []types.Key{types.Key(i % 32)},
				Writes: []types.Key{types.Key((i + 7) % 32)},
				Delta:  types.Value(d),
			}
			r1, err1 := kv1.ExecuteTxn(tx, 0, 1, nil)
			r2, err2 := kv2.ExecuteTxn(tx, 0, 1, nil)
			if err1 != nil || err2 != nil || r1 != r2 {
				return false
			}
		}
		return kv1.Digest() == kv2.Digest()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDigestSensitivity(t *testing.T) {
	kv1, kv2 := NewKV(), NewKV()
	kv1.Preload(0, 1, 16)
	kv2.Preload(0, 1, 16)
	if kv1.Digest() != kv2.Digest() {
		t.Fatal("identical stores digest differently")
	}
	kv2.Set(3, 999)
	if kv1.Digest() == kv2.Digest() {
		t.Fatal("digest insensitive to a write")
	}
}

func TestReadLocal(t *testing.T) {
	kv := NewKV()
	kv.Preload(1, 3, 10)
	tx := &types.Txn{Reads: []types.Key{1, 4, 2}} // 1,4 on shard 1; 2 on shard 2
	ks, vs := kv.ReadLocal(tx, 1, 3)
	if len(ks) != 2 || len(vs) != 2 {
		t.Fatalf("ReadLocal returned %d keys, want 2", len(ks))
	}
	for i, k := range ks {
		if vs[i] != kv.Get(k) {
			t.Fatalf("ReadLocal value mismatch at %d", k)
		}
	}
}

func TestLockTableAllOrNothing(t *testing.T) {
	lt := NewLockTable()
	if !lt.TryLock([]types.Key{1, 2, 3}, 100) {
		t.Fatal("fresh lock failed")
	}
	// Overlapping set must acquire nothing.
	if lt.TryLock([]types.Key{3, 4}, 200) {
		t.Fatal("conflicting lock acquired")
	}
	if _, held := lt.HeldBy(4); held {
		t.Fatal("partial acquisition leaked: key 4 locked after failed TryLock")
	}
	if lt.Count() != 3 {
		t.Fatalf("lock count = %d, want 3", lt.Count())
	}
}

func TestLockTableReentrant(t *testing.T) {
	lt := NewLockTable()
	if !lt.TryLock([]types.Key{1, 2}, 7) {
		t.Fatal("first lock failed")
	}
	// Same owner relocking overlapping keys (read and write sets overlap).
	if !lt.TryLock([]types.Key{2, 3}, 7) {
		t.Fatal("re-entrant lock failed")
	}
	lt.Unlock([]types.Key{1, 2, 3}, 7)
	if lt.Count() != 0 {
		t.Fatalf("%d locks leaked", lt.Count())
	}
}

func TestUnlockWrongOwnerNoop(t *testing.T) {
	lt := NewLockTable()
	lt.TryLock([]types.Key{5}, 1)
	lt.Unlock([]types.Key{5}, 2) // not the owner
	if o, held := lt.HeldBy(5); !held || o != 1 {
		t.Fatal("foreign unlock released the lock")
	}
	lt.Unlock([]types.Key{5}, 1)
	lt.Unlock([]types.Key{5}, 1) // idempotent
	if lt.Count() != 0 {
		t.Fatal("unlock not idempotent")
	}
}

// TestLockTableInvariant: after any interleaving of TryLock/Unlock, a
// successful TryLock leaves every requested key held by the caller, a failed
// TryLock changes nothing, and no key is ever held by two owners.
func TestLockTableInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		lt := NewLockTable()
		model := map[types.Key]uint64{} // reference implementation
		for _, op := range ops {
			owner := uint64(op%8) + 1
			keys := []types.Key{types.Key(op % 13), types.Key((op / 13) % 13)}
			if op%3 == 0 {
				lt.Unlock(keys, owner)
				for _, k := range keys {
					if model[k] == owner {
						delete(model, k)
					}
				}
				continue
			}
			free := true
			for _, k := range keys {
				if o, held := model[k]; held && o != owner {
					free = false
				}
			}
			got := lt.TryLock(keys, owner)
			if got != free {
				return false
			}
			if got {
				for _, k := range keys {
					model[k] = owner
				}
			}
		}
		if lt.Count() != len(model) {
			return false
		}
		for k, o := range model {
			if ho, held := lt.HeldBy(k); !held || ho != o {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
