package store

import (
	"testing"

	"ringbft/internal/types"
)

func BenchmarkExecuteTxn(b *testing.B) {
	kv := NewKV()
	kv.Preload(0, 1, 1024)
	tx := &types.Txn{Reads: []types.Key{1, 2, 3}, Writes: []types.Key{4, 5}, Delta: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kv.ExecuteTxn(tx, 0, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLockUnlock(b *testing.B) {
	lt := NewLockTable()
	keys := []types.Key{1, 2, 3, 4, 5, 6, 7, 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !lt.TryLock(keys, 1) {
			b.Fatal("lock failed")
		}
		lt.Unlock(keys, 1)
	}
}

func BenchmarkStateDigest(b *testing.B) {
	kv := NewKV()
	kv.Preload(0, 1, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kv.Digest()
	}
}
