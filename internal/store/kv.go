// Package store implements each shard's data substrate: a YCSB-style
// key-value table with deterministic read-modify-write execution, and the
// per-key lock table RingBFT uses to lock read-write sets in transactional
// sequence order (Fig 5 lines 17-28).
package store

import (
	"fmt"
	"sort"
	"sync"

	"ringbft/internal/types"
)

// kvStripeCount shards the table's lock space. Power of two so the stripe
// index is a shift off a Fibonacci hash; 64 stripes keep contention
// negligible for the scheduler's worker counts (≤ CPU cores) while Digest
// still snapshots the full table by holding every stripe briefly.
// kvStripeShift selects the top kvStripeBits bits of the hash; the
// compile-time guard below keeps the three constants in lockstep when
// tuning the stripe count.
const (
	kvStripeCount = 64
	kvStripeBits  = 6
	kvStripeShift = 64 - kvStripeBits
)

var _ [kvStripeCount - 1<<kvStripeBits]struct{} // 1<<kvStripeBits == kvStripeCount
var _ [1<<kvStripeBits - kvStripeCount]struct{}

type kvStripe struct {
	mu   sync.RWMutex
	data map[types.Key]types.Value
}

// KV is one shard's partition of the YCSB table. Locks are striped by key so
// the dependency-aware batch executor (package sched) can run independent
// transactions concurrently: readers and writers of different keys proceed
// in parallel, and the scheduler guarantees concurrent transactions never
// share a key, so per-key locking preserves sequential semantics.
type KV struct {
	stripes [kvStripeCount]kvStripe
}

// NewKV returns an empty table.
func NewKV() *KV {
	kv := &KV{}
	for i := range kv.stripes {
		kv.stripes[i].data = make(map[types.Key]types.Value)
	}
	return kv
}

func (kv *KV) stripe(k types.Key) *kvStripe {
	return &kv.stripes[(uint64(k)*0x9E3779B97F4A7C15)>>kvStripeShift]
}

// Preload installs n records owned by shard s in a system of z shards with
// initial values equal to their key, mirroring the paper's identical YCSB
// table initialization at every replica (Section 8, "Benchmark").
func (kv *KV) Preload(s types.ShardID, z int, n int) {
	for i := 0; i < n; i++ {
		k := types.Key(uint64(s) + uint64(i)*uint64(z))
		kv.Set(k, types.Value(k))
	}
}

// Get returns the value of k (zero if absent).
func (kv *KV) Get(k types.Key) types.Value {
	st := kv.stripe(k)
	st.mu.RLock()
	v := st.data[k]
	st.mu.RUnlock()
	return v
}

// Set writes v at k.
func (kv *KV) Set(k types.Key, v types.Value) {
	st := kv.stripe(k)
	st.mu.Lock()
	st.data[k] = v
	st.mu.Unlock()
}

// Len returns the number of records.
func (kv *KV) Len() int {
	n := 0
	for i := range kv.stripes {
		st := &kv.stripes[i]
		st.mu.RLock()
		n += len(st.data)
		st.mu.RUnlock()
	}
	return n
}

// ExecuteTxn applies the shard-local fragment of t at shard s deterministically:
//
//	combined = Δ + Σ(values of all reads, local and remote)
//	for every local write key k: data[k] += combined
//
// remote maps read keys owned by other shards to the values carried in Σ
// (Execute messages / accumulated Forward read sets). The returned result is
// the combined operand, identical at every shard, so clients can match f+1
// identical responses. Missing remote reads return an error — execution must
// never guess at dependency values (determinism requirement, Section 3).
//
// Writes lock one stripe per key: safe under the sched executor, which only
// runs transactions with disjoint local read/write sets concurrently.
func (kv *KV) ExecuteTxn(t *types.Txn, s types.ShardID, z int, remote map[types.Key]types.Value) (types.Value, error) {
	combined := t.Delta
	for _, k := range t.Reads {
		if types.OwnerShard(k, z) == s {
			combined += kv.Get(k)
		} else {
			v, ok := remote[k]
			if !ok {
				return 0, fmt.Errorf("store: missing remote read %d for txn %v at shard %d", k, t.ID, s)
			}
			combined += v
		}
	}
	kv.applyWrites(t, s, z, combined)
	return combined, nil
}

// ApplyTxnWrites applies only the write half of t's read-modify-write with
// a precomputed combined operand. WAL replay and peer state transfer use it:
// the combined value was recorded at original execution time, so recovery
// re-applies writes deterministically without the cross-shard read values
// (Σ) that produced it.
func (kv *KV) ApplyTxnWrites(t *types.Txn, s types.ShardID, z int, combined types.Value) {
	kv.applyWrites(t, s, z, combined)
}

func (kv *KV) applyWrites(t *types.Txn, s types.ShardID, z int, combined types.Value) {
	for _, k := range t.Writes {
		if types.OwnerShard(k, z) != s {
			continue
		}
		st := kv.stripe(k)
		st.mu.Lock()
		st.data[k] += combined
		st.mu.Unlock()
	}
}

// ReadLocal returns the current values of the reads of t owned by shard s,
// in key order, for accumulation into Forward read sets.
func (kv *KV) ReadLocal(t *types.Txn, s types.ShardID, z int) ([]types.Key, []types.Value) {
	var ks []types.Key
	var vs []types.Value
	for _, k := range t.Reads {
		if types.OwnerShard(k, z) == s {
			ks = append(ks, k)
			vs = append(vs, kv.Get(k))
		}
	}
	return ks, vs
}

// Digest folds the table into a single state digest for checkpoints. The
// fold is a commutative accumulation (sum of key*value mixes) so it is
// order-independent and cheap; collisions are irrelevant for the simulated
// checkpoint agreement, which compares honest replicas' identical states.
// All stripes are read-locked for the duration, which keeps the fold from
// racing individual writes — but a multi-key transaction releases each
// write stripe as it goes, so callers must not run Digest concurrently
// with batch execution (every replica calls it from its event loop, after
// the executor's layers have joined).
func (kv *KV) Digest() types.Digest {
	for i := range kv.stripes {
		kv.stripes[i].mu.RLock()
	}
	defer func() {
		for i := range kv.stripes {
			kv.stripes[i].mu.RUnlock()
		}
	}()
	var acc [4]uint64
	for i := range kv.stripes {
		//ringbft:ignore mapiter acc accumulates with commutative uint64 addition keyed by k; iteration order cannot change the digest
		for k, v := range kv.stripes[i].data {
			x := uint64(k)*0x9E3779B97F4A7C15 ^ uint64(v)*0xC2B2AE3D27D4EB4F
			acc[k%4] += x
		}
	}
	var d types.Digest
	for i, a := range acc {
		for j := 0; j < 8; j++ {
			d[i*8+j] = byte(a >> (8 * j))
		}
	}
	return d
}

// Pair is one record of the table, used by snapshots (package wal) and
// state transfer (the wire type lives in package types).
type Pair = types.Pair

// Pairs returns every record sorted by key — the canonical dump a snapshot
// persists. Like Digest, it read-locks every stripe for the duration and
// must not run concurrently with batch execution.
func (kv *KV) Pairs() []Pair {
	for i := range kv.stripes {
		kv.stripes[i].mu.RLock()
	}
	n := 0
	for i := range kv.stripes {
		n += len(kv.stripes[i].data)
	}
	out := make([]Pair, 0, n)
	for i := range kv.stripes {
		for k, v := range kv.stripes[i].data {
			out = append(out, Pair{K: k, V: v})
		}
	}
	for i := range kv.stripes {
		kv.stripes[i].mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].K < out[j].K })
	return out
}

// Restore replaces the entire table content with pairs (crash recovery and
// peer state transfer installs).
func (kv *KV) Restore(pairs []Pair) {
	for i := range kv.stripes {
		kv.stripes[i].mu.Lock()
		kv.stripes[i].data = make(map[types.Key]types.Value)
		kv.stripes[i].mu.Unlock()
	}
	for _, p := range pairs {
		kv.Set(p.K, p.V)
	}
}

// ExecuteTxnPartial applies the shard-local fragment of t treating missing
// remote reads as zero instead of failing. The AHL and Sharper baselines use
// it: neither ships remote read values (supporting complex cross-shard
// transactions "remains an open problem" for them, Section 8.8), so their
// execution is best-effort over locally available data. Deterministic across
// replicas, which is all their response matching needs.
func (kv *KV) ExecuteTxnPartial(t *types.Txn, s types.ShardID, z int) types.Value {
	combined := t.Delta
	for _, k := range t.Reads {
		if types.OwnerShard(k, z) == s {
			combined += kv.Get(k)
		}
	}
	kv.applyWrites(t, s, z, combined)
	return combined
}
