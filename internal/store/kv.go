// Package store implements each shard's data substrate: a YCSB-style
// key-value table with deterministic read-modify-write execution, and the
// per-key lock table RingBFT uses to lock read-write sets in transactional
// sequence order (Fig 5 lines 17-28).
package store

import (
	"fmt"
	"sync"

	"ringbft/internal/types"
)

// KV is one shard's partition of the YCSB table. Safe for concurrent use,
// though each replica's event loop is the only writer in practice.
type KV struct {
	mu   sync.RWMutex
	data map[types.Key]types.Value
}

// NewKV returns an empty table.
func NewKV() *KV {
	return &KV{data: make(map[types.Key]types.Value)}
}

// Preload installs n records owned by shard s in a system of z shards with
// initial values equal to their key, mirroring the paper's identical YCSB
// table initialization at every replica (Section 8, "Benchmark").
func (kv *KV) Preload(s types.ShardID, z int, n int) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	for i := 0; i < n; i++ {
		k := types.Key(uint64(s) + uint64(i)*uint64(z))
		kv.data[k] = types.Value(k)
	}
}

// Get returns the value of k (zero if absent).
func (kv *KV) Get(k types.Key) types.Value {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return kv.data[k]
}

// Set writes v at k.
func (kv *KV) Set(k types.Key, v types.Value) {
	kv.mu.Lock()
	kv.data[k] = v
	kv.mu.Unlock()
}

// Len returns the number of records.
func (kv *KV) Len() int {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return len(kv.data)
}

// ExecuteTxn applies the shard-local fragment of t at shard s deterministically:
//
//	combined = Δ + Σ(values of all reads, local and remote)
//	for every local write key k: data[k] += combined
//
// remote maps read keys owned by other shards to the values carried in Σ
// (Execute messages / accumulated Forward read sets). The returned result is
// the combined operand, identical at every shard, so clients can match f+1
// identical responses. Missing remote reads return an error — execution must
// never guess at dependency values (determinism requirement, Section 3).
func (kv *KV) ExecuteTxn(t *types.Txn, s types.ShardID, z int, remote map[types.Key]types.Value) (types.Value, error) {
	combined := t.Delta
	for _, k := range t.Reads {
		if types.OwnerShard(k, z) == s {
			combined += kv.Get(k)
		} else {
			v, ok := remote[k]
			if !ok {
				return 0, fmt.Errorf("store: missing remote read %d for txn %v at shard %d", k, t.ID, s)
			}
			combined += v
		}
	}
	kv.mu.Lock()
	for _, k := range t.Writes {
		if types.OwnerShard(k, z) == s {
			kv.data[k] += combined
		}
	}
	kv.mu.Unlock()
	return combined, nil
}

// ReadLocal returns the current values of the reads of t owned by shard s,
// in key order, for accumulation into Forward read sets.
func (kv *KV) ReadLocal(t *types.Txn, s types.ShardID, z int) ([]types.Key, []types.Value) {
	var ks []types.Key
	var vs []types.Value
	for _, k := range t.Reads {
		if types.OwnerShard(k, z) == s {
			ks = append(ks, k)
			vs = append(vs, kv.Get(k))
		}
	}
	return ks, vs
}

// Digest folds the table into a single state digest for checkpoints. The
// fold is a commutative accumulation (sum of key*value mixes) so it is
// order-independent and cheap; collisions are irrelevant for the simulated
// checkpoint agreement, which compares honest replicas' identical states.
func (kv *KV) Digest() types.Digest {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	var acc [4]uint64
	for k, v := range kv.data {
		x := uint64(k)*0x9E3779B97F4A7C15 ^ uint64(v)*0xC2B2AE3D27D4EB4F
		acc[k%4] += x
	}
	var d types.Digest
	for i, a := range acc {
		for j := 0; j < 8; j++ {
			d[i*8+j] = byte(a >> (8 * j))
		}
	}
	return d
}

// ExecuteTxnPartial applies the shard-local fragment of t treating missing
// remote reads as zero instead of failing. The AHL and Sharper baselines use
// it: neither ships remote read values (supporting complex cross-shard
// transactions "remains an open problem" for them, Section 8.8), so their
// execution is best-effort over locally available data. Deterministic across
// replicas, which is all their response matching needs.
func (kv *KV) ExecuteTxnPartial(t *types.Txn, s types.ShardID, z int) types.Value {
	combined := t.Delta
	for _, k := range t.Reads {
		if types.OwnerShard(k, z) == s {
			combined += kv.Get(k)
		}
	}
	kv.mu.Lock()
	for _, k := range t.Writes {
		if types.OwnerShard(k, z) == s {
			kv.data[k] += combined
		}
	}
	kv.mu.Unlock()
	return combined
}
