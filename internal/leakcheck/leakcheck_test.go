package leakcheck

import (
	"strings"
	"testing"
	"time"
)

func TestSnapshotIgnoresHarness(t *testing.T) {
	if leaked := wait(2 * time.Second); len(leaked) != 0 {
		t.Fatalf("clean state reported %d leaks:\n%s", len(leaked), strings.Join(leaked, "\n\n"))
	}
}

func TestSnapshotCatchesLeak(t *testing.T) {
	stop := make(chan struct{})
	go func() { <-stop }()
	leaked := wait(100 * time.Millisecond)
	close(stop)
	if len(leaked) == 0 {
		t.Fatal("a parked goroutine was not reported")
	}
	found := false
	for _, g := range leaked {
		if strings.Contains(g, "leakcheck.TestSnapshotCatchesLeak") {
			found = true
		}
	}
	if !found {
		t.Fatalf("leak report misses the offender:\n%s", strings.Join(leaked, "\n\n"))
	}
	// The goroutine unwinds after close(stop); leave the state clean for
	// the package's own teardown.
	if leaked := wait(2 * time.Second); len(leaked) != 0 {
		t.Fatalf("offender did not unwind: %s", strings.Join(leaked, "\n\n"))
	}
}
