// Package leakcheck asserts that a test (or a whole test binary) does not
// leave goroutines behind — a stdlib-only take on goleak. The harness and
// transport suites spin up entire clusters (event loops, per-peer writer
// goroutines, WAL sync loops); a teardown path that forgets one of them
// shows up here as a named stack instead of as a flaky hang three PRs
// later.
//
// Detection polls runtime.Stack until only known-benign goroutines remain
// or the deadline passes: goroutines legitimately take a moment to unwind
// after Close/cancel returns, so a single snapshot would flake.
//
// The benign allowlist (runtime internals, the testing framework, this
// package's own poller) is deliberately narrow and string-matched on
// function names: the invariant is that every goroutine a suite starts is
// attributable, so the allowlist must never grow to paper over a leak in
// the code under test — fix the teardown instead.
//
// Protecting gates: the harness and tcpnet suites call Check in TestMain,
// so any event loop, writer goroutine, or WAL sync loop that outlives its
// cluster fails those packages' tests on every CI run (build-test and
// race-all jobs).
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// defaultDeadline bounds how long Check waits for goroutines to unwind.
// Teardown paths here close sockets and cancel contexts; anything alive
// seconds later is a leak, not a straggler.
const defaultDeadline = 5 * time.Second

// benignMarkers identify goroutines the test harness itself owns. A
// goroutine whose stack contains any marker is never reported.
var benignMarkers = []string{
	"testing.Main(",
	"testing.(*M).Run",
	"testing.tRunner(",
	"testing.runTests",
	"testing.runFuzzing",
	"testing.runFuzzTests",
	"testing.(*T).Run",
	"runtime.ReadTrace",
	"os/signal.signal_recv",
	"os/signal.loop",
	"runtime.ensureSigM",
}

// Check registers a cleanup on t that fails the test if goroutines beyond
// the benign set survive teardown. Call it first in the test body so the
// cleanup runs after every other cleanup (t.Cleanup is LIFO).
func Check(t testing.TB) {
	t.Helper()
	t.Cleanup(func() {
		if leaked := wait(defaultDeadline); len(leaked) > 0 {
			t.Errorf("leakcheck: %d goroutine(s) survived teardown:\n\n%s",
				len(leaked), strings.Join(leaked, "\n\n"))
		}
	})
}

// CheckMain wraps m.Run for TestMain: it runs the tests, then fails the
// binary if stray goroutines outlive the whole suite. Use when individual
// tests share package-level state and per-test checks would trip on each
// other:
//
//	func TestMain(m *testing.M) { os.Exit(leakcheck.CheckMain(m)) }
func CheckMain(m *testing.M) int {
	code := m.Run()
	if leaked := wait(defaultDeadline); len(leaked) > 0 {
		fmt.Printf("leakcheck: %d goroutine(s) survived the test binary:\n\n%s\n",
			len(leaked), strings.Join(leaked, "\n\n"))
		if code == 0 {
			code = 1
		}
	}
	return code
}

// wait polls until no leaked goroutines remain or the deadline passes,
// returning the final set of offending stacks.
func wait(deadline time.Duration) []string {
	var leaked []string
	for end := time.Now().Add(deadline); ; {
		leaked = snapshot()
		if len(leaked) == 0 || time.Now().After(end) {
			return leaked
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// snapshot returns the stacks of all current goroutines that are neither
// the caller's nor benign harness machinery.
func snapshot() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var leaked []string
	for i, g := range strings.Split(string(buf), "\n\n") {
		if i == 0 {
			continue // the goroutine running the check
		}
		benign := false
		for _, marker := range benignMarkers {
			if strings.Contains(g, marker) {
				benign = true
				break
			}
		}
		if !benign {
			leaked = append(leaked, g)
		}
	}
	return leaked
}
