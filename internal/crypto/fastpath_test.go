package crypto

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"sync"
	"testing"

	"ringbft/internal/types"
)

// TestMACMatchesReferenceHMAC pins the cached-key/pooled-state fast path to
// the textbook construction: the tag must equal stdlib HMAC-SHA256 over the
// derived pairwise key, truncated to MACSize — for registered peers (cached
// key schedule) and unregistered ones (throwaway schedule) alike.
func TestMACMatchesReferenceHMAC(t *testing.T) {
	ra, _, a, b := twoRings(t)
	client := types.ClientNode(7) // never registered
	for _, peer := range []types.NodeID{b, client} {
		for _, size := range []int{0, 1, 63, 64, 65, 128, 4096} {
			msg := make([]byte, size)
			for i := range msg {
				msg[i] = byte(i * 7)
			}
			ref := hmac.New(sha256.New, ra.pairKey(a, peer))
			ref.Write(msg)
			want := ref.Sum(nil)[:MACSize]
			for round := 0; round < 2; round++ { // round 2 exercises the cache
				got := ra.MAC(peer, msg)
				if !hmac.Equal(got, want) {
					t.Fatalf("peer %v size %d round %d: fast-path MAC diverges from reference HMAC", peer, size, round)
				}
			}
		}
	}
	// Unregistered peers must not grow the cache.
	if _, cached := ra.macStates.Load(client); cached {
		t.Fatal("client key schedule cached: unbounded growth on long-lived replicas")
	}
	if _, cached := ra.macStates.Load(b); !cached {
		t.Fatal("registered peer key schedule not cached")
	}
}

// TestMACTamperTable flips bytes in every region of message and tag and
// asserts the cached-key, pooled-state verifier rejects each one.
func TestMACTamperTable(t *testing.T) {
	ra, rb, a, b := twoRings(t)
	msg := []byte("forward the batch with the commit certificate A")
	tag := ra.MAC(b, msg)
	if err := rb.VerifyMAC(a, msg, tag); err != nil {
		t.Fatalf("valid MAC rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(msg, tag []byte) ([]byte, []byte)
	}{
		{"flip first msg byte", func(m, g []byte) ([]byte, []byte) { m[0] ^= 1; return m, g }},
		{"flip middle msg byte", func(m, g []byte) ([]byte, []byte) { m[len(m)/2] ^= 0x80; return m, g }},
		{"flip last msg byte", func(m, g []byte) ([]byte, []byte) { m[len(m)-1] ^= 1; return m, g }},
		{"truncate msg", func(m, g []byte) ([]byte, []byte) { return m[:len(m)-1], g }},
		{"extend msg", func(m, g []byte) ([]byte, []byte) { return append(m, 0), g }},
		{"flip first tag byte", func(m, g []byte) ([]byte, []byte) { g[0] ^= 1; return m, g }},
		{"flip last tag byte", func(m, g []byte) ([]byte, []byte) { g[len(g)-1] ^= 1; return m, g }},
		{"truncate tag", func(m, g []byte) ([]byte, []byte) { return m, g[:MACSize-1] }},
		{"empty tag", func(m, g []byte) ([]byte, []byte) { return m, nil }},
		{"wrong peer key", func(m, g []byte) ([]byte, []byte) { return m, ra.MAC(types.ReplicaNode(0, 0), m) }},
	}
	for _, tc := range cases {
		m := append([]byte(nil), msg...)
		g := append([]byte(nil), tag...)
		m2, g2 := tc.mutate(m, g)
		if err := rb.VerifyMAC(a, m2, g2); err == nil {
			t.Errorf("%s: tampered MAC accepted", tc.name)
		}
	}
}

// TestMACPooledStateConcurrency hammers one ring from many goroutines so a
// leaked or cross-contaminated pooled SHA-256 state would surface (also
// meaningful under -race).
func TestMACPooledStateConcurrency(t *testing.T) {
	ra, rb, a, b := twoRings(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				msg := []byte(fmt.Sprintf("goroutine %d message %d", g, i))
				if err := rb.VerifyMAC(a, msg, ra.MAC(b, msg)); err != nil {
					errs <- fmt.Errorf("valid MAC rejected under concurrency: %w", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestAppendMACAppends checks the zero-alloc variant extends dst in place.
func TestAppendMACAppends(t *testing.T) {
	ra, _, _, b := twoRings(t)
	msg := []byte("append")
	dst := []byte{0xAA, 0xBB}
	out := ra.AppendMAC(dst, b, msg)
	if len(out) != 2+MACSize || out[0] != 0xAA || out[1] != 0xBB {
		t.Fatalf("AppendMAC mangled dst prefix: %x", out)
	}
	if !hmac.Equal(out[2:], ra.MAC(b, msg)) {
		t.Fatal("AppendMAC tag differs from MAC")
	}
}

// TestKeygenRingSharesPubs: rings share one public-key map (the O(n²) copy
// fix) and the keygen seals against late registration.
func TestKeygenRingSharesPubs(t *testing.T) {
	kg := NewKeygen(5)
	a, b := types.ReplicaNode(0, 0), types.ReplicaNode(0, 1)
	kg.Register(a)
	kg.Register(b)
	ra, _ := kg.Ring(a)
	rb, _ := kg.Ring(b)
	// Same backing map, not copies.
	if fmt.Sprintf("%p", ra.pubs) != fmt.Sprintf("%p", rb.pubs) {
		t.Fatal("Ring still copies the public-key map per ring (O(n²) memory)")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Register after Ring did not panic; shared map would race")
		}
	}()
	kg.Register(types.ReplicaNode(0, 2))
}

func signedCommit(t testing.TB, kg *Keygen, from types.NodeID, shard types.ShardID, v types.View, seq types.SeqNum, d types.Digest) types.Signed {
	t.Helper()
	ring, err := kg.Ring(from)
	if err != nil {
		t.Fatal(err)
	}
	s := types.Signed{From: from, Type: types.MsgCommit, Shard: shard, View: v, Seq: seq, Digest: d}
	s.Sig = ring.Sign(s.SigBytes())
	return s
}

func benchVerifierSetup(t testing.TB, n int) (*Keygen, *Verifier, []types.Signed, types.Digest) {
	kg := NewKeygen(21)
	ids := make([]types.NodeID, n)
	for i := range ids {
		ids[i] = types.ReplicaNode(0, i)
		kg.Register(ids[i])
	}
	d := types.Digest{9, 9, 9}
	cert := make([]types.Signed, n)
	for i, id := range ids {
		cert[i] = signedCommit(t, kg, id, 0, 1, 7, d)
	}
	ring, err := kg.Ring(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	return kg, NewVerifier(ring, 4), cert, d
}

// TestVerifyQuorumSerialParallelEquivalent: the worker pool must agree with
// serial verification on every mix of valid and tampered signatures.
func TestVerifyQuorumSerialParallelEquivalent(t *testing.T) {
	_, v, cert, _ := benchVerifierSetup(t, 7)
	serial := NewVerifier(v.Authenticator, 0)
	for tamper := 0; tamper < 1<<7; tamper++ {
		entries := make([]*types.Signed, len(cert))
		local := make([]types.Signed, len(cert))
		want := 0
		for i := range cert {
			local[i] = cert[i]
			if tamper&(1<<i) != 0 {
				local[i].Sig = append([]byte(nil), cert[i].Sig...)
				local[i].Sig[0] ^= 1
			} else {
				want++
			}
			entries[i] = &local[i]
		}
		// quorum above n so neither path can early-exit: full counts match.
		if got := v.VerifyQuorum(entries, len(cert)+1); got != want {
			t.Fatalf("parallel mask %07b: got %d valid, want %d", tamper, got, want)
		}
		if got := serial.VerifyQuorum(entries, len(cert)+1); got != want {
			t.Fatalf("serial mask %07b: got %d valid, want %d", tamper, got, want)
		}
	}
}

// TestCertCacheKeyCoversContent: any byte of the certificate — tuple fields,
// signature bytes, entry order, expected digest, quorum — must change the
// cache key. This is the property that makes caching sound.
func TestCertCacheKeyCoversContent(t *testing.T) {
	_, _, cert, d := benchVerifierSetup(t, 4)
	base := CertCacheKey(0, d, 3, cert)
	mutations := []struct {
		name string
		key  func() CertKey
	}{
		{"different shard", func() CertKey { return CertCacheKey(1, d, 3, cert) }},
		{"different digest", func() CertKey { return CertCacheKey(0, types.Digest{1}, 3, cert) }},
		{"different quorum", func() CertKey { return CertCacheKey(0, d, 4, cert) }},
		{"truncated cert", func() CertKey { return CertCacheKey(0, d, 3, cert[:3]) }},
		{"flipped sig bit", func() CertKey {
			c := append([]types.Signed(nil), cert...)
			c[2].Sig = append([]byte(nil), c[2].Sig...)
			c[2].Sig[10] ^= 1
			return CertCacheKey(0, d, 3, c)
		}},
		{"different sender", func() CertKey {
			c := append([]types.Signed(nil), cert...)
			c[1].From = types.ReplicaNode(0, 9)
			return CertCacheKey(0, d, 3, c)
		}},
		{"different view", func() CertKey {
			c := append([]types.Signed(nil), cert...)
			c[0].View++
			return CertCacheKey(0, d, 3, c)
		}},
		{"reordered entries", func() CertKey {
			c := append([]types.Signed(nil), cert...)
			c[0], c[1] = c[1], c[0]
			return CertCacheKey(0, d, 3, c)
		}},
	}
	for _, m := range mutations {
		if m.key() == base {
			t.Errorf("%s: cache key collision — cache poisoning possible", m.name)
		}
	}
	if CertCacheKey(0, d, 3, cert) != base {
		t.Fatal("cache key not deterministic")
	}
}

// TestCertCacheBoundedAndSuccessOnly: the cache evicts FIFO at capacity and
// only records what MarkCertVerified was called for.
func TestCertCacheBoundedAndSuccessOnly(t *testing.T) {
	_, v, cert, d := benchVerifierSetup(t, 4)
	v.SetCertCacheSize(2)
	k1 := CertCacheKey(0, d, 3, cert)
	k2 := CertCacheKey(0, d, 4, cert)
	k3 := CertCacheKey(1, d, 3, cert)
	if v.CertVerified(k1) {
		t.Fatal("empty cache reported a hit")
	}
	v.MarkCertVerified(k1)
	v.MarkCertVerified(k2)
	if !v.CertVerified(k1) || !v.CertVerified(k2) {
		t.Fatal("cached keys missing")
	}
	v.MarkCertVerified(k3) // evicts k1
	if v.CertVerified(k1) {
		t.Fatal("FIFO eviction did not evict the oldest entry")
	}
	if !v.CertVerified(k2) || !v.CertVerified(k3) {
		t.Fatal("eviction removed the wrong entry")
	}
	v.SetCertCacheSize(0)
	v.MarkCertVerified(k1)
	if v.CertVerified(k1) {
		t.Fatal("disabled cache stored an entry")
	}
}
