// Package crypto provides the authenticated-communication primitives of
// Section 3: pairwise HMAC-SHA256 message authentication codes for
// intra-shard traffic (cheap, symmetric, no non-repudiation) and Ed25519
// digital signatures for cross-shard traffic (non-repudiation, so a Forward
// message can carry transferable proof that nf replicas committed), plus
// SHA-256 digests and Merkle roots for the ledger.
package crypto

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	mrand "math/rand"

	"ringbft/internal/types"
)

// ErrBadMAC is returned when a MAC fails verification.
var ErrBadMAC = errors.New("crypto: MAC verification failed")

// ErrBadSignature is returned when a digital signature fails verification.
var ErrBadSignature = errors.New("crypto: signature verification failed")

// MACSize is the size in bytes of a truncated HMAC-SHA256 tag.
const MACSize = 16

// Authenticator authenticates outbound messages and verifies inbound ones on
// behalf of one node. Implementations must be safe for concurrent use.
type Authenticator interface {
	// MAC computes the pairwise MAC tag for msg bytes sent to peer.
	MAC(peer types.NodeID, msg []byte) []byte
	// VerifyMAC checks a tag produced by peer for msg bytes sent to us.
	VerifyMAC(peer types.NodeID, msg, tag []byte) error
	// Sign produces this node's digital signature over msg.
	Sign(msg []byte) []byte
	// Verify checks signer's digital signature over msg.
	Verify(signer types.NodeID, msg, sig []byte) error
}

// KeyRing holds one node's secret material: a master MAC secret shared
// pairwise (derived per peer pair), its Ed25519 private key, and the public
// keys of every other node. A deployment constructs all key rings from a
// single Keygen so all nodes agree on public keys and pairwise secrets.
type KeyRing struct {
	self    types.NodeID
	macRoot []byte // master secret; pairwise keys derived as HMAC(root, pair)
	priv    ed25519.PrivateKey
	pubs    map[types.NodeID]ed25519.PublicKey
}

var _ Authenticator = (*KeyRing)(nil)

// Keygen deterministically generates key material for a set of nodes. The
// rand seed makes clusters reproducible in tests and benchmarks; Byzantine
// replicas cannot impersonate non-faulty ones because each node's private
// key never leaves its KeyRing.
type Keygen struct {
	macRoot []byte
	privs   map[types.NodeID]ed25519.PrivateKey
	pubs    map[types.NodeID]ed25519.PublicKey
}

// NewKeygen creates a key generator seeded by seed.
func NewKeygen(seed int64) *Keygen {
	rng := mrand.New(mrand.NewSource(seed))
	root := make([]byte, 32)
	rng.Read(root)
	return &Keygen{
		macRoot: root,
		privs:   make(map[types.NodeID]ed25519.PrivateKey),
		pubs:    make(map[types.NodeID]ed25519.PublicKey),
	}
}

// Register creates (or returns existing) key material for node id.
func (g *Keygen) Register(id types.NodeID) {
	if _, ok := g.privs[id]; ok {
		return
	}
	seed := sha256.Sum256(append(append([]byte("ed25519-seed"), g.macRoot...), types.SigBytes(0, id.Shard, 0, 0, types.Digest{}, id)...))
	priv := ed25519.NewKeyFromSeed(seed[:])
	g.privs[id] = priv
	g.pubs[id] = priv.Public().(ed25519.PublicKey)
}

// Ring returns the KeyRing for a previously Registered node.
func (g *Keygen) Ring(id types.NodeID) (*KeyRing, error) {
	priv, ok := g.privs[id]
	if !ok {
		return nil, fmt.Errorf("crypto: node %v not registered", id)
	}
	pubs := make(map[types.NodeID]ed25519.PublicKey, len(g.pubs))
	for n, p := range g.pubs {
		pubs[n] = p
	}
	return &KeyRing{self: id, macRoot: g.macRoot, priv: priv, pubs: pubs}, nil
}

// pairKey derives the symmetric key shared by nodes a and b. The derivation
// is symmetric in (a, b) so both ends compute the same key.
func (r *KeyRing) pairKey(a, b types.NodeID) []byte {
	lo, hi := a, b
	if nodeLess(b, a) {
		lo, hi = b, a
	}
	mac := hmac.New(sha256.New, r.macRoot)
	mac.Write(nodeBytes(lo))
	mac.Write(nodeBytes(hi))
	return mac.Sum(nil)
}

func nodeBytes(n types.NodeID) []byte {
	var b [17]byte
	b[0] = byte(n.Kind)
	binary.BigEndian.PutUint64(b[1:9], uint64(n.Shard))
	binary.BigEndian.PutUint64(b[9:17], uint64(n.Index))
	return b[:]
}

func nodeLess(a, b types.NodeID) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Shard != b.Shard {
		return a.Shard < b.Shard
	}
	return a.Index < b.Index
}

// MAC computes the truncated HMAC-SHA256 tag over msg for the channel
// between this node and peer.
func (r *KeyRing) MAC(peer types.NodeID, msg []byte) []byte {
	mac := hmac.New(sha256.New, r.pairKey(r.self, peer))
	mac.Write(msg)
	return mac.Sum(nil)[:MACSize]
}

// VerifyMAC checks a pairwise MAC tag from peer.
func (r *KeyRing) VerifyMAC(peer types.NodeID, msg, tag []byte) error {
	want := r.MAC(peer, msg)
	if !hmac.Equal(want, tag) {
		return ErrBadMAC
	}
	return nil
}

// Sign signs msg with this node's Ed25519 private key.
func (r *KeyRing) Sign(msg []byte) []byte {
	return ed25519.Sign(r.priv, msg)
}

// Verify checks signer's Ed25519 signature over msg.
func (r *KeyRing) Verify(signer types.NodeID, msg, sig []byte) error {
	pub, ok := r.pubs[signer]
	if !ok {
		return fmt.Errorf("crypto: unknown signer %v: %w", signer, ErrBadSignature)
	}
	if !ed25519.Verify(pub, msg, sig) {
		return ErrBadSignature
	}
	return nil
}

// NopAuth is an Authenticator that performs no cryptography. It exists for
// ablation benchmarks (DESIGN.md §5, crypto-mix ablation) and for tests that
// isolate protocol logic from crypto cost. Never use it as a security
// mechanism.
type NopAuth struct{}

var _ Authenticator = NopAuth{}

// MAC returns an empty tag.
func (NopAuth) MAC(types.NodeID, []byte) []byte { return nil }

// VerifyMAC accepts everything.
func (NopAuth) VerifyMAC(types.NodeID, []byte, []byte) error { return nil }

// Sign returns an empty signature.
func (NopAuth) Sign([]byte) []byte { return nil }

// Verify accepts everything.
func (NopAuth) Verify(types.NodeID, []byte, []byte) error { return nil }
