// Package crypto provides the authenticated-communication primitives of
// Section 3: pairwise HMAC-SHA256 message authentication codes for
// intra-shard traffic (cheap, symmetric, no non-repudiation) and Ed25519
// digital signatures for cross-shard traffic (non-repudiation, so a Forward
// message can carry transferable proof that nf replicas committed), plus
// SHA-256 digests and Merkle roots for the ledger.
package crypto

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	mrand "math/rand"
	"sync"

	"ringbft/internal/types"
)

// ErrBadMAC is returned when a MAC fails verification.
var ErrBadMAC = errors.New("crypto: MAC verification failed")

// ErrBadSignature is returned when a digital signature fails verification.
var ErrBadSignature = errors.New("crypto: signature verification failed")

// MACSize is the size in bytes of a truncated HMAC-SHA256 tag.
const MACSize = 16

// Authenticator authenticates outbound messages and verifies inbound ones on
// behalf of one node. Implementations must be safe for concurrent use.
type Authenticator interface {
	// MAC computes the pairwise MAC tag for msg bytes sent to peer.
	MAC(peer types.NodeID, msg []byte) []byte
	// VerifyMAC checks a tag produced by peer for msg bytes sent to us.
	VerifyMAC(peer types.NodeID, msg, tag []byte) error
	// Sign produces this node's digital signature over msg.
	Sign(msg []byte) []byte
	// Verify checks signer's digital signature over msg.
	Verify(signer types.NodeID, msg, sig []byte) error
}

// KeyRing holds one node's secret material: a master MAC secret shared
// pairwise (derived per peer pair), its Ed25519 private key, and the public
// keys of every other node. A deployment constructs all key rings from a
// single Keygen so all nodes agree on public keys and pairwise secrets.
//
// The pubs map is shared by every KeyRing of one Keygen and is immutable
// once the first Ring is handed out; macStates caches per-peer HMAC key
// schedules so the pairwise key derivation and the HMAC ipad/opad setup are
// paid once per peer, not on every message.
type KeyRing struct {
	self    types.NodeID
	macRoot []byte // master secret; pairwise keys derived as HMAC(root, pair)
	priv    ed25519.PrivateKey
	pubs    map[types.NodeID]ed25519.PublicKey

	// macStates maps peer -> *macState. Only registered nodes (present in
	// pubs) are cached so transient client endpoints cannot grow the map
	// without bound on a long-lived replica.
	macStates sync.Map
}

var _ Authenticator = (*KeyRing)(nil)

// Keygen deterministically generates key material for a set of nodes. The
// rand seed makes clusters reproducible in tests and benchmarks; Byzantine
// replicas cannot impersonate non-faulty ones because each node's private
// key never leaves its KeyRing.
type Keygen struct {
	macRoot []byte
	privs   map[types.NodeID]ed25519.PrivateKey
	pubs    map[types.NodeID]ed25519.PublicKey
	sealed  bool // set by Ring: pubs is now shared and must not change
}

// NewKeygen creates a key generator seeded by seed.
func NewKeygen(seed int64) *Keygen {
	rng := mrand.New(mrand.NewSource(seed))
	root := make([]byte, 32)
	rng.Read(root)
	return &Keygen{
		macRoot: root,
		privs:   make(map[types.NodeID]ed25519.PrivateKey),
		pubs:    make(map[types.NodeID]ed25519.PublicKey),
	}
}

// Register creates (or returns existing) key material for node id. All
// registrations must happen before the first Ring call: rings share the
// public-key map, so growing it afterwards would race with readers.
func (g *Keygen) Register(id types.NodeID) {
	if _, ok := g.privs[id]; ok {
		return
	}
	if g.sealed {
		panic("crypto: Register after Ring — register every node before handing out key rings")
	}
	idBytes := types.SigBytesArray(0, id.Shard, 0, 0, types.Digest{}, id)
	seed := sha256.Sum256(append(append([]byte("ed25519-seed"), g.macRoot...), idBytes[:]...))
	priv := ed25519.NewKeyFromSeed(seed[:])
	g.privs[id] = priv
	g.pubs[id] = priv.Public().(ed25519.PublicKey)
}

// Ring returns the KeyRing for a previously Registered node. Every ring
// shares one immutable public-key map — copying it per ring would cost
// O(n²) memory across a cluster — so Ring seals the Keygen against further
// Register calls.
func (g *Keygen) Ring(id types.NodeID) (*KeyRing, error) {
	priv, ok := g.privs[id]
	if !ok {
		return nil, fmt.Errorf("crypto: node %v not registered", id)
	}
	g.sealed = true
	return &KeyRing{self: id, macRoot: g.macRoot, priv: priv, pubs: g.pubs}, nil
}

// pairKey derives the symmetric key shared by nodes a and b. The derivation
// is symmetric in (a, b) so both ends compute the same key.
func (r *KeyRing) pairKey(a, b types.NodeID) []byte {
	lo, hi := a, b
	if nodeLess(b, a) {
		lo, hi = b, a
	}
	mac := hmac.New(sha256.New, r.macRoot)
	mac.Write(nodeBytes(lo))
	mac.Write(nodeBytes(hi))
	return mac.Sum(nil)
}

func nodeBytes(n types.NodeID) []byte {
	var b [17]byte
	b[0] = byte(n.Kind)
	binary.BigEndian.PutUint64(b[1:9], uint64(n.Shard))
	binary.BigEndian.PutUint64(b[9:17], uint64(n.Index))
	return b[:]
}

func nodeLess(a, b types.NodeID) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Shard != b.Shard {
		return a.Shard < b.Shard
	}
	return a.Index < b.Index
}

// macState is the precomputed HMAC-SHA256 key schedule for one pairwise
// channel: the SHA-256 states after absorbing key⊕ipad and key⊕opad, in
// their marshaled (resumable) form. Restoring these states replaces the two
// full HMAC setups the naive path pays per message.
type macState struct {
	ipad, opad []byte
}

// newMACState builds the key schedule for a (≤ block size) HMAC key,
// following RFC 2104: zero-pad the key to the 64-byte SHA-256 block, XOR
// with the ipad/opad constants, and absorb one block into each hash.
func newMACState(key []byte) *macState {
	if len(key) > sha256.BlockSize {
		panic("crypto: MAC key longer than hash block size")
	}
	var pad [sha256.BlockSize]byte
	copy(pad[:], key)
	for i := range pad {
		pad[i] ^= 0x36
	}
	inner := sha256.New()
	inner.Write(pad[:])
	for i := range pad {
		pad[i] ^= 0x36 ^ 0x5c
	}
	outer := sha256.New()
	outer.Write(pad[:])
	im, err := inner.(encoding.BinaryMarshaler).MarshalBinary()
	if err != nil {
		panic("crypto: sha256 state not marshalable: " + err.Error())
	}
	om, err := outer.(encoding.BinaryMarshaler).MarshalBinary()
	if err != nil {
		panic("crypto: sha256 state not marshalable: " + err.Error())
	}
	return &macState{ipad: im, opad: om}
}

// macScratch is the pooled working set of one MAC computation: a resumable
// SHA-256 state plus sum buffers, so the hot path allocates nothing beyond
// the returned tag.
type macScratch struct {
	h     hash.Hash
	inner [sha256.Size]byte
	outer [sha256.Size]byte
}

var macPool = sync.Pool{New: func() any { return &macScratch{h: sha256.New()} }}

// macState returns the cached key schedule for the channel to peer,
// deriving and caching it on first use. Only registered peers are cached;
// transient endpoints (clients) get a throwaway schedule so a long-lived
// replica's cache stays bounded by the cluster size.
func (r *KeyRing) macState(peer types.NodeID) *macState {
	if st, ok := r.macStates.Load(peer); ok {
		return st.(*macState)
	}
	st := newMACState(r.pairKey(r.self, peer))
	if _, registered := r.pubs[peer]; !registered {
		return st
	}
	actual, _ := r.macStates.LoadOrStore(peer, st)
	return actual.(*macState)
}

// macSum computes the full HMAC-SHA256 of msg for the channel to peer into
// s.outer and returns it. Zero heap allocation.
func (r *KeyRing) macSum(s *macScratch, peer types.NodeID, msg []byte) []byte {
	st := r.macState(peer)
	u := s.h.(encoding.BinaryUnmarshaler)
	if err := u.UnmarshalBinary(st.ipad); err != nil {
		panic("crypto: sha256 state not restorable: " + err.Error())
	}
	s.h.Write(msg)
	inner := s.h.Sum(s.inner[:0])
	if err := u.UnmarshalBinary(st.opad); err != nil {
		panic("crypto: sha256 state not restorable: " + err.Error())
	}
	s.h.Write(inner)
	return s.h.Sum(s.outer[:0])
}

// MAC computes the truncated HMAC-SHA256 tag over msg for the channel
// between this node and peer.
func (r *KeyRing) MAC(peer types.NodeID, msg []byte) []byte {
	return r.AppendMAC(make([]byte, 0, MACSize), peer, msg)
}

// AppendMAC appends the truncated pairwise tag for msg to dst and returns
// the extended slice; with a preallocated dst the computation is
// allocation-free.
func (r *KeyRing) AppendMAC(dst []byte, peer types.NodeID, msg []byte) []byte {
	s := macPool.Get().(*macScratch)
	sum := r.macSum(s, peer, msg)
	dst = append(dst, sum[:MACSize]...)
	macPool.Put(s)
	return dst
}

// VerifyMAC checks a pairwise MAC tag from peer.
func (r *KeyRing) VerifyMAC(peer types.NodeID, msg, tag []byte) error {
	s := macPool.Get().(*macScratch)
	sum := r.macSum(s, peer, msg)
	ok := hmac.Equal(sum[:MACSize], tag)
	macPool.Put(s)
	if !ok {
		return ErrBadMAC
	}
	return nil
}

// Sign signs msg with this node's Ed25519 private key.
func (r *KeyRing) Sign(msg []byte) []byte {
	return ed25519.Sign(r.priv, msg)
}

// Verify checks signer's Ed25519 signature over msg.
func (r *KeyRing) Verify(signer types.NodeID, msg, sig []byte) error {
	pub, ok := r.pubs[signer]
	if !ok {
		return fmt.Errorf("crypto: unknown signer %v: %w", signer, ErrBadSignature)
	}
	if !ed25519.Verify(pub, msg, sig) {
		return ErrBadSignature
	}
	return nil
}

// SignMessage signs m's canonical bytes with a, building them in a stack
// buffer so the caller pays no allocation beyond the signature itself.
func SignMessage(a Authenticator, m *types.Message) []byte {
	var sb [types.SigBytesLen]byte
	return a.Sign(m.AppendSigBytes(sb[:0]))
}

// VerifyMessageSig checks m's signature over its canonical bytes.
func VerifyMessageSig(a Authenticator, m *types.Message) error {
	var sb [types.SigBytesLen]byte
	return a.Verify(m.From, m.AppendSigBytes(sb[:0]), m.Sig)
}

// MACMessage computes the pairwise tag over m's canonical bytes for the
// channel to peer.
func MACMessage(a Authenticator, peer types.NodeID, m *types.Message) []byte {
	var sb [types.SigBytesLen]byte
	return a.MAC(peer, m.AppendSigBytes(sb[:0]))
}

// VerifyMessageMAC checks the pairwise tag m carries from its sender.
func VerifyMessageMAC(a Authenticator, m *types.Message) error {
	var sb [types.SigBytesLen]byte
	return a.VerifyMAC(m.From, m.AppendSigBytes(sb[:0]), m.MAC)
}

// NopAuth is an Authenticator that performs no cryptography. It exists for
// ablation benchmarks (DESIGN.md §5, crypto-mix ablation) and for tests that
// isolate protocol logic from crypto cost. Never use it as a security
// mechanism.
type NopAuth struct{}

var _ Authenticator = NopAuth{}

// MAC returns an empty tag.
func (NopAuth) MAC(types.NodeID, []byte) []byte { return nil }

// VerifyMAC accepts everything.
func (NopAuth) VerifyMAC(types.NodeID, []byte, []byte) error { return nil }

// Sign returns an empty signature.
func (NopAuth) Sign([]byte) []byte { return nil }

// Verify accepts everything.
func (NopAuth) Verify(types.NodeID, []byte, []byte) error { return nil }
