package crypto

import (
	"bytes"
	"testing"
	"testing/quick"

	"ringbft/internal/types"
)

func twoRings(t *testing.T) (*KeyRing, *KeyRing, types.NodeID, types.NodeID) {
	t.Helper()
	kg := NewKeygen(11)
	a, b := types.ReplicaNode(0, 0), types.ReplicaNode(1, 3)
	kg.Register(a)
	kg.Register(b)
	ra, err := kg.Ring(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := kg.Ring(b)
	if err != nil {
		t.Fatal(err)
	}
	return ra, rb, a, b
}

func TestMACRoundTrip(t *testing.T) {
	ra, rb, a, b := twoRings(t)
	msg := []byte("ring order is ascending identifiers")
	tag := ra.MAC(b, msg)
	if len(tag) != MACSize {
		t.Fatalf("MAC size %d, want %d", len(tag), MACSize)
	}
	if err := rb.VerifyMAC(a, msg, tag); err != nil {
		t.Fatalf("valid MAC rejected: %v", err)
	}
	if err := rb.VerifyMAC(a, append(msg, 'x'), tag); err == nil {
		t.Fatal("tampered message accepted")
	}
	tag[0] ^= 1
	if err := rb.VerifyMAC(a, msg, tag); err == nil {
		t.Fatal("tampered MAC accepted")
	}
}

func TestMACPairwiseIsolation(t *testing.T) {
	kg := NewKeygen(12)
	a, b, c := types.ReplicaNode(0, 0), types.ReplicaNode(0, 1), types.ReplicaNode(0, 2)
	for _, id := range []types.NodeID{a, b, c} {
		kg.Register(id)
	}
	ra, _ := kg.Ring(a)
	rc, _ := kg.Ring(c)
	msg := []byte("pairwise secret")
	tagAB := ra.MAC(b, msg)
	// A third party must not be able to produce or validate A<->B tags.
	if bytes.Equal(tagAB, rc.MAC(b, msg)) {
		t.Fatal("pairwise MAC keys are shared across pairs")
	}
}

func TestSignVerify(t *testing.T) {
	ra, rb, a, _ := twoRings(t)
	msg := []byte("non-repudiation needed across shards")
	sig := ra.Sign(msg)
	if err := rb.Verify(a, msg, sig); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
	if err := rb.Verify(a, append(msg, 1), sig); err == nil {
		t.Fatal("tampered message accepted")
	}
	// Impersonation: b cannot sign as a.
	forged := rb.Sign(msg)
	if err := rb.Verify(a, msg, forged); err == nil {
		t.Fatal("forged signature accepted")
	}
}

func TestVerifyUnknownSigner(t *testing.T) {
	ra, _, _, _ := twoRings(t)
	ghost := types.ReplicaNode(9, 9)
	if err := ra.Verify(ghost, []byte("x"), []byte("y")); err == nil {
		t.Fatal("unknown signer accepted")
	}
}

func TestKeygenDeterministicAcrossInstances(t *testing.T) {
	a := types.ReplicaNode(0, 0)
	kg1, kg2 := NewKeygen(5), NewKeygen(5)
	kg1.Register(a)
	kg2.Register(a)
	r1, _ := kg1.Ring(a)
	r2, _ := kg2.Ring(a)
	msg := []byte("reproducible clusters")
	if !bytes.Equal(r1.Sign(msg), r2.Sign(msg)) {
		t.Fatal("same seed produced different keys")
	}
	kg3 := NewKeygen(6)
	kg3.Register(a)
	r3, _ := kg3.Ring(a)
	if bytes.Equal(r1.Sign(msg), r3.Sign(msg)) {
		t.Fatal("different seeds produced identical keys")
	}
}

func TestRingUnregisteredNode(t *testing.T) {
	kg := NewKeygen(1)
	if _, err := kg.Ring(types.ReplicaNode(0, 0)); err == nil {
		t.Fatal("Ring for unregistered node succeeded")
	}
}

func TestMACPropertyRoundTrip(t *testing.T) {
	ra, rb, a, b := twoRings(t)
	f := func(msg []byte) bool {
		return rb.VerifyMAC(a, msg, ra.MAC(b, msg)) == nil &&
			ra.VerifyMAC(b, msg, rb.MAC(a, msg)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSignPropertyRoundTrip(t *testing.T) {
	ra, rb, a, _ := twoRings(t)
	f := func(msg []byte) bool {
		return rb.Verify(a, msg, ra.Sign(msg)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNopAuthAcceptsEverything(t *testing.T) {
	n := NopAuth{}
	if err := n.VerifyMAC(types.ReplicaNode(0, 0), []byte("m"), nil); err != nil {
		t.Fatal(err)
	}
	if err := n.Verify(types.ReplicaNode(0, 0), []byte("m"), nil); err != nil {
		t.Fatal(err)
	}
}

func TestMerkleRootProperties(t *testing.T) {
	if !MerkleRoot(nil).IsZero() {
		t.Fatal("empty tree root must be zero")
	}
	d1, d2 := types.Digest{1}, types.Digest{2}
	r1 := MerkleRoot([]types.Digest{d1})
	if r1.IsZero() || r1 == d1 {
		t.Fatal("single-leaf root must hash the leaf")
	}
	r12 := MerkleRoot([]types.Digest{d1, d2})
	r21 := MerkleRoot([]types.Digest{d2, d1})
	if r12 == r21 {
		t.Fatal("Merkle root insensitive to leaf order")
	}
	// Determinism + sensitivity over random leaf sets.
	f := func(seed []byte) bool {
		if len(seed) == 0 {
			return true
		}
		leaves := make([]types.Digest, len(seed))
		for i, b := range seed {
			leaves[i] = types.Digest{b, byte(i)}
		}
		a := MerkleRoot(leaves)
		b := MerkleRoot(leaves)
		if a != b {
			return false
		}
		leaves[0][0] ^= 0xFF
		return MerkleRoot(leaves) != a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMerkleOddLeafCount(t *testing.T) {
	leaves := []types.Digest{{1}, {2}, {3}}
	r3 := MerkleRoot(leaves)
	r4 := MerkleRoot(append(leaves, types.Digest{4}))
	if r3 == r4 || r3.IsZero() {
		t.Fatal("odd-leaf promotion broken")
	}
}

func TestBatchMerkleRoot(t *testing.T) {
	b := &types.Batch{Txns: []types.Txn{
		{ID: types.TxnID{Client: 1, Seq: 1}, Writes: []types.Key{1}},
		{ID: types.TxnID{Client: 1, Seq: 2}, Writes: []types.Key{2}},
	}}
	r := BatchMerkleRoot(b)
	if r.IsZero() {
		t.Fatal("zero root for non-empty batch")
	}
	b.Txns[1].Delta = 9
	if BatchMerkleRoot(b) == r {
		t.Fatal("root insensitive to transaction mutation")
	}
}
