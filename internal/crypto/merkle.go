package crypto

import (
	"crypto/sha256"

	"ringbft/internal/types"
)

// MerkleRoot computes the Merkle root of a list of leaf digests by pair-wise
// hashing up to the root (Section 7; Merkle 1988). An odd node at any level
// is promoted by hashing it with itself, the common convention. The root of
// zero leaves is the zero digest; a single leaf hashes with itself so that a
// one-transaction block still commits to tree structure.
func MerkleRoot(leaves []types.Digest) types.Digest {
	if len(leaves) == 0 {
		return types.Digest{}
	}
	level := make([]types.Digest, len(leaves))
	copy(level, leaves)
	for {
		next := make([]types.Digest, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			l := level[i]
			r := l
			if i+1 < len(level) {
				r = level[i+1]
			}
			h := sha256.New()
			h.Write(l[:])
			h.Write(r[:])
			var d types.Digest
			copy(d[:], h.Sum(nil))
			next = append(next, d)
		}
		level = next
		if len(level) == 1 {
			return level[0]
		}
	}
}

// TxnDigest computes the leaf digest of one transaction for Merkle trees.
func TxnDigest(t *types.Txn) types.Digest {
	b := types.Batch{Txns: []types.Txn{*t}}
	return b.Digest()
}

// BatchMerkleRoot computes the Merkle root over the transactions of a batch.
func BatchMerkleRoot(b *types.Batch) types.Digest {
	leaves := make([]types.Digest, len(b.Txns))
	for i := range b.Txns {
		leaves[i] = TxnDigest(&b.Txns[i])
	}
	return MerkleRoot(leaves)
}
