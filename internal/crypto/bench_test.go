package crypto

import (
	"testing"

	"ringbft/internal/types"
)

// Microbenchmarks for the authentication mix of Section 3: MACs must be an
// order of magnitude cheaper than signatures for the intra-shard/cross-shard
// split to pay off.

func benchRings(b *testing.B) (*KeyRing, *KeyRing, types.NodeID, types.NodeID) {
	b.Helper()
	kg := NewKeygen(1)
	x, y := types.ReplicaNode(0, 0), types.ReplicaNode(0, 1)
	kg.Register(x)
	kg.Register(y)
	rx, _ := kg.Ring(x)
	ry, _ := kg.Ring(y)
	return rx, ry, x, y
}

func BenchmarkMAC(b *testing.B) {
	rx, _, _, y := benchRings(b)
	msg := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rx.MAC(y, msg)
	}
}

// BenchmarkAppendMAC is the fully zero-allocation variant used by broadcast
// loops: the tag lands in a caller-provided buffer.
func BenchmarkAppendMAC(b *testing.B) {
	rx, _, _, y := benchRings(b)
	msg := make([]byte, 128)
	dst := make([]byte, 0, MACSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = rx.AppendMAC(dst[:0], y, msg)
	}
	_ = dst
}

func BenchmarkVerifyMAC(b *testing.B) {
	rx, ry, x, y := benchRings(b)
	msg := make([]byte, 128)
	tag := rx.MAC(y, msg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ry.VerifyMAC(x, msg, tag); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSign(b *testing.B) {
	rx, _, _, _ := benchRings(b)
	msg := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rx.Sign(msg)
	}
}

// BenchmarkSignVerify measures a full sign+verify round trip — the per-hop
// cross-shard cost a Forward message pays (Section 3's DS price).
func BenchmarkSignVerify(b *testing.B) {
	rx, ry, x, _ := benchRings(b)
	msg := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sig := rx.Sign(msg)
		if err := ry.Verify(x, msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifySignature(b *testing.B) {
	rx, ry, x, _ := benchRings(b)
	msg := make([]byte, 128)
	sig := rx.Sign(msg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ry.Verify(x, msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMerkleRoot100(b *testing.B) {
	leaves := make([]types.Digest, 100)
	for i := range leaves {
		leaves[i] = types.Digest{byte(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MerkleRoot(leaves)
	}
}
