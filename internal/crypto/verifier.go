package crypto

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"sync/atomic"

	"ringbft/internal/types"
)

// DefaultCertCacheSize bounds the verified-certificate cache of a Verifier.
// A commit certificate is re-checked at most a handful of times per replica
// (re-delivery on lossy links, local re-share, ring retransmission), all
// within a short window, so a few thousand entries cover the working set.
const DefaultCertCacheSize = 4096

// Verifier wraps an Authenticator with the crypto fast path for certificate
// checking (Section 3: authentication dominates replica CPU):
//
//   - a bounded worker pool that verifies the nf Ed25519 signatures of a
//     commit certificate or new-view justification concurrently
//     (VerifyWorkers knob; 0 or 1 = serial), and
//   - a bounded cache of certificate keys that already verified, so a
//     certificate re-delivered within a shard or re-checked during ring
//     rotation is verified once.
//
// Accept/reject decisions are identical to serial per-signature
// verification. Only successes are cached, and the cache key covers the
// full certificate content, so a tampered re-delivery can never alias a
// cached success. Safe for concurrent use.
type Verifier struct {
	Authenticator
	workers int
	sem     chan struct{} // bounds in-flight verification workers

	mu    sync.Mutex
	cache map[CertKey]struct{}
	fifo  []CertKey // eviction ring, same capacity as cache
	next  int
	hits  uint64
	size  int
}

// NewVerifier wraps auth with a batch verifier of the given worker-pool
// size (0 or 1 = serial) and the default verified-certificate cache.
func NewVerifier(auth Authenticator, workers int) *Verifier {
	if workers < 0 {
		workers = 0
	}
	v := &Verifier{Authenticator: auth, workers: workers}
	if workers > 1 {
		v.sem = make(chan struct{}, workers)
	}
	if _, nop := auth.(NopAuth); nop {
		// Verification is free under NopAuth (crypto ablations): hashing
		// certificates for the cache would only add cost.
		v.SetCertCacheSize(0)
	} else {
		v.SetCertCacheSize(DefaultCertCacheSize)
	}
	return v
}

// CertCacheEnabled reports whether the verified-certificate cache is active;
// callers skip computing cache keys entirely when it is not.
func (v *Verifier) CertCacheEnabled() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.size > 0
}

// SetCertCacheSize resizes (and clears) the verified-certificate cache;
// 0 disables caching. Storage is allocated lazily on the first insert, so
// replicas that never verify certificates (single-shard baselines) pay
// nothing for the default capacity.
func (v *Verifier) SetCertCacheSize(n int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.size = n
	v.next = 0
	v.cache, v.fifo = nil, nil
}

// CertCacheHits returns the number of cache hits served (for tests and
// instrumentation).
func (v *Verifier) CertCacheHits() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.hits
}

// CertKey identifies one fully-verified certificate: the consensus slot it
// certifies plus a SHA-256 over the complete certificate content (every
// entry's tuple and signature bytes, the expected digest, and the quorum it
// was checked against). Two certificates that differ in any byte — or that
// were checked under different requirements — can never share a key.
type CertKey struct {
	Shard types.ShardID
	View  types.View
	Seq   types.SeqNum
	Sum   [sha256.Size]byte
}

// CertCacheKey computes the cache key for a certificate checked as "quorum
// valid signatures from shard over digest". Entry fields are
// length-delimited so no two distinct certificates serialize identically.
func CertCacheKey(shard types.ShardID, digest types.Digest, quorum int, cert []types.Signed) CertKey {
	s := macPool.Get().(*macScratch)
	h := s.h
	h.Reset()
	var tmp [8]byte
	put := func(x uint64) {
		binary.BigEndian.PutUint64(tmp[:], x)
		h.Write(tmp[:])
	}
	put(uint64(shard))
	h.Write(digest[:])
	put(uint64(quorum))
	put(uint64(len(cert)))
	var sb [types.SigBytesLen]byte
	for i := range cert {
		e := &cert[i]
		buf := e.AppendSigBytes(sb[:0])
		h.Write(buf)
		put(uint64(len(e.Sig)))
		h.Write(e.Sig)
	}
	key := CertKey{Shard: shard}
	if len(cert) > 0 {
		key.View, key.Seq = cert[0].View, cert[0].Seq
	}
	h.Sum(key.Sum[:0])
	h.Reset()
	macPool.Put(s)
	return key
}

// CertVerified reports whether the certificate identified by key already
// verified on this node.
func (v *Verifier) CertVerified(key CertKey) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	_, ok := v.cache[key]
	if ok {
		v.hits++
	}
	return ok
}

// MarkCertVerified records a successful full verification of key. Failures
// are never recorded: a certificate that fails is simply re-verified if it
// shows up again.
func (v *Verifier) MarkCertVerified(key CertKey) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.size <= 0 {
		return
	}
	if v.cache == nil {
		v.cache = make(map[CertKey]struct{}, v.size)
		v.fifo = make([]CertKey, 0, v.size)
	}
	if _, dup := v.cache[key]; dup {
		return
	}
	if len(v.fifo) < v.size {
		v.fifo = append(v.fifo, key)
	} else {
		delete(v.cache, v.fifo[v.next])
		v.fifo[v.next] = key
		v.next = (v.next + 1) % v.size
	}
	v.cache[key] = struct{}{}
}

// VerifyQuorum checks the signatures of entries and returns how many are
// valid, early-exiting at quorum. Callers are responsible for structural
// checks (tuple consistency, sender dedup, membership); this routine only
// spends the Ed25519 work — serially, or on the worker pool when both the
// pool and the batch are big enough to pay for the goroutine handoff.
func (v *Verifier) VerifyQuorum(entries []*types.Signed, quorum int) int {
	if v.workers <= 1 || len(entries) < 2 {
		valid := 0
		var sb [types.SigBytesLen]byte
		for _, e := range entries {
			if v.Verify(e.From, e.AppendSigBytes(sb[:0]), e.Sig) == nil {
				valid++
				if valid >= quorum {
					break
				}
			}
		}
		return valid
	}
	workers := v.workers
	if workers > len(entries) {
		workers = len(entries)
	}
	var (
		wg    sync.WaitGroup
		next  atomic.Int64
		valid atomic.Int64
	)
	for w := 0; w < workers; w++ {
		v.sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer func() { <-v.sem; wg.Done() }()
			var sb [types.SigBytesLen]byte
			for {
				i := int(next.Add(1)) - 1
				if i >= len(entries) || valid.Load() >= int64(quorum) {
					return
				}
				e := entries[i]
				if v.Verify(e.From, e.AppendSigBytes(sb[:0]), e.Sig) == nil {
					valid.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	n := int(valid.Load())
	if n > len(entries) {
		n = len(entries)
	}
	return n
}
