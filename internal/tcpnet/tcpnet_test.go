package tcpnet

import (
	"testing"
	"time"

	"ringbft/internal/types"
)

func pair(t *testing.T) (*Transport, *Transport, types.NodeID, types.NodeID) {
	t.Helper()
	a, b := types.ReplicaNode(0, 0), types.ReplicaNode(0, 1)
	ta, err := New(a, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := New(b, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	addrs := map[types.NodeID]string{a: ta.Addr(), b: tb.Addr()}
	ta.addrs, tb.addrs = addrs, addrs
	t.Cleanup(ta.Close)
	t.Cleanup(tb.Close)
	return ta, tb, a, b
}

func waitMsg(t *testing.T, tr *Transport) *types.Message {
	t.Helper()
	select {
	case m := <-tr.Inbox():
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("no message within 5s")
		return nil
	}
}

func TestSendReceive(t *testing.T) {
	ta, tb, a, b := pair(t)
	m := &types.Message{
		Type: types.MsgPrePrepare, From: a, Seq: 7,
		Batch: &types.Batch{
			Txns:     []types.Txn{{ID: types.TxnID{Client: 1, Seq: 1}, Reads: []types.Key{3}, Writes: []types.Key{3}, Delta: 9}},
			Involved: []types.ShardID{0},
		},
	}
	m.Digest = m.Batch.Digest()
	ta.Send(b, m)
	got := waitMsg(t, tb)
	if got.Type != m.Type || got.Seq != 7 || got.From != a {
		t.Fatalf("header mangled: %+v", got)
	}
	if got.Batch == nil || got.Batch.Digest() != m.Digest {
		t.Fatal("batch did not survive the wire")
	}
}

func TestManyFramesInOrder(t *testing.T) {
	ta, tb, a, b := pair(t)
	const k = 500
	for i := 0; i < k; i++ {
		ta.Send(b, &types.Message{Type: types.MsgPrepare, From: a, Seq: types.SeqNum(i)})
	}
	for i := 0; i < k; i++ {
		m := waitMsg(t, tb)
		if m.Seq != types.SeqNum(i) {
			t.Fatalf("frame %d arrived as seq %d (TCP must preserve order)", i, m.Seq)
		}
	}
}

func TestLoopbackSend(t *testing.T) {
	ta, _, a, _ := pair(t)
	ta.Send(a, &types.Message{Type: types.MsgCommit, From: a})
	if m := waitMsg(t, ta); m.Type != types.MsgCommit {
		t.Fatal("loopback lost")
	}
}

func TestSendToUnknownPeerNoop(t *testing.T) {
	ta, _, a, _ := pair(t)
	ta.Send(types.ReplicaNode(9, 9), &types.Message{Type: types.MsgCommit, From: a}) // must not panic
}

func TestReconnectAfterPeerRestart(t *testing.T) {
	ta, tb, a, b := pair(t)
	ta.Send(b, &types.Message{Type: types.MsgPrepare, From: a, Seq: 1})
	waitMsg(t, tb)
	// Restart b on the same address.
	addr := tb.Addr()
	tb.Close()
	tb2, err := New(b, addr, ta.addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer tb2.Close()
	// First send may hit the dead cached conn; the transport drops it and
	// the retry path (a second send, as a timer would do) reconnects.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ta.Send(b, &types.Message{Type: types.MsgPrepare, From: a, Seq: 2})
		select {
		case m := <-tb2.Inbox():
			if m.Seq == 2 {
				return
			}
		case <-time.After(100 * time.Millisecond):
		}
	}
	t.Fatal("transport never reconnected")
}
