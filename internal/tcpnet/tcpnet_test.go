package tcpnet

import (
	"encoding/binary"
	"net"
	"sort"
	"testing"
	"time"

	"ringbft/internal/leakcheck"
	"ringbft/internal/types"
)

// assertSendBound enforces the non-blocking contract on a series of
// measured Send calls: essentially every call returns well under 1ms, with
// an allowance of a few outliers for OS preemption of the measuring
// goroutine (this box is one vCPU and the race detector multiplies every
// pause) — but even a preempted call must stay orders of magnitude under
// the old synchronous transport's 3s dial stall.
func assertSendBound(t *testing.T, durs []time.Duration) {
	t.Helper()
	if len(durs) == 0 {
		t.Fatal("no sends measured")
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	const outliers = 5
	bound := durs[len(durs)-1]
	if len(durs) > outliers {
		bound = durs[len(durs)-1-outliers]
	}
	if bound >= time.Millisecond {
		t.Fatalf("Send took %v beyond the %d-outlier allowance (must be < 1ms; worst %v over %d calls)",
			bound, outliers, durs[len(durs)-1], len(durs))
	}
	if worst := durs[len(durs)-1]; worst >= 250*time.Millisecond {
		t.Fatalf("Send took %v — scheduler noise cannot explain that; the call blocked", worst)
	}
}

// testOptions keeps redial/backoff cadence fast enough for test deadlines.
func testOptions() Options {
	return Options{
		DialTimeout:  time.Second,
		WriteTimeout: time.Second,
		RedialMin:    10 * time.Millisecond,
		RedialMax:    100 * time.Millisecond,
	}
}

func pair(t *testing.T) (*Transport, *Transport, types.NodeID, types.NodeID) {
	t.Helper()
	// Registered before the Close cleanups below, so it runs after them
	// (LIFO): every accept loop, reader, and writer must be gone once both
	// transports have closed.
	leakcheck.Check(t)
	a, b := types.ReplicaNode(0, 0), types.ReplicaNode(0, 1)
	ta, err := New(a, "127.0.0.1:0", nil, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	tb, err := New(b, "127.0.0.1:0", nil, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	addrs := map[types.NodeID]string{a: ta.Addr(), b: tb.Addr()}
	ta.addrs, tb.addrs = addrs, addrs
	t.Cleanup(ta.Close)
	t.Cleanup(tb.Close)
	return ta, tb, a, b
}

func waitMsg(t *testing.T, tr *Transport) *types.Message {
	t.Helper()
	select {
	case m := <-tr.Inbox():
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("no message within 5s")
		return nil
	}
}

// deadAddr returns a loopback address that nothing listens on: every dial
// to it fails fast with connection refused.
func deadAddr(tb testing.TB) string {
	tb.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestSendReceive(t *testing.T) {
	ta, tb, a, b := pair(t)
	m := &types.Message{
		Type: types.MsgPrePrepare, From: a, Seq: 7,
		Batch: &types.Batch{
			Txns:     []types.Txn{{ID: types.TxnID{Client: 1, Seq: 1}, Reads: []types.Key{3}, Writes: []types.Key{3}, Delta: 9}},
			Involved: []types.ShardID{0},
		},
	}
	m.Digest = m.Batch.Digest()
	ta.Send(b, m)
	got := waitMsg(t, tb)
	if got.Type != m.Type || got.Seq != 7 || got.From != a {
		t.Fatalf("header mangled: %+v", got)
	}
	if got.Batch == nil || got.Batch.Digest() != m.Digest {
		t.Fatal("batch did not survive the wire")
	}
}

func TestManyFramesInOrder(t *testing.T) {
	ta, tb, a, b := pair(t)
	const k = 500
	for i := 0; i < k; i++ {
		ta.Send(b, &types.Message{Type: types.MsgPrepare, From: a, Seq: types.SeqNum(i)})
	}
	for i := 0; i < k; i++ {
		m := waitMsg(t, tb)
		if m.Seq != types.SeqNum(i) {
			t.Fatalf("frame %d arrived as seq %d (TCP must preserve order)", i, m.Seq)
		}
	}
	st := ta.Stats()
	if st.Enqueued != k || st.OutboxDrops != 0 {
		t.Fatalf("expected %d enqueued with no drops, got %+v", k, st)
	}
}

func TestLoopbackSend(t *testing.T) {
	ta, _, a, _ := pair(t)
	ta.Send(a, &types.Message{Type: types.MsgCommit, From: a})
	if m := waitMsg(t, ta); m.Type != types.MsgCommit {
		t.Fatal("loopback lost")
	}
}

func TestSendToUnknownPeerNoop(t *testing.T) {
	ta, _, a, _ := pair(t)
	ta.Send(types.ReplicaNode(9, 9), &types.Message{Type: types.MsgCommit, From: a}) // must not panic
	if st := ta.Stats(); st.UnknownPeer != 1 {
		t.Fatalf("unknown-peer send not counted: %+v", st)
	}
}

func TestReconnectAfterPeerRestart(t *testing.T) {
	ta, tb, a, b := pair(t)
	ta.Send(b, &types.Message{Type: types.MsgPrepare, From: a, Seq: 1})
	waitMsg(t, tb)
	// Restart b on the same address.
	addr := tb.Addr()
	tb.Close()
	tb2, err := New(b, addr, ta.addrs, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer tb2.Close()
	// Sends may land on the dead cached conn; the writer tears it down and
	// redials with backoff while later sends (as a timer would produce)
	// flow through the fresh connection.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ta.Send(b, &types.Message{Type: types.MsgPrepare, From: a, Seq: 2})
		select {
		case m := <-tb2.Inbox():
			if m.Seq == 2 {
				if st := ta.Stats(); st.Redials == 0 {
					t.Fatalf("reconnect not counted as a redial: %+v", st)
				}
				return
			}
		case <-time.After(100 * time.Millisecond):
		}
	}
	t.Fatal("transport never reconnected")
}

// TestSendNonBlockingUnreachablePeer is the headline-bug regression: with
// the peer's address unreachable (every dial refused), Send must stay a
// sub-millisecond enqueue-or-drop — the old transport dialed synchronously
// with a 3s timeout on the caller, stalling the replica event loop.
func TestSendNonBlockingUnreachablePeer(t *testing.T) {
	a, b := types.ReplicaNode(0, 0), types.ReplicaNode(0, 1)
	opt := testOptions()
	opt.OutboxDepth = 64
	ta, err := New(a, "127.0.0.1:0", map[types.NodeID]string{b: deadAddr(t)}, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()

	m := &types.Message{Type: types.MsgPrepare, From: a, Seq: 1}
	const k = 5000
	durs := make([]time.Duration, k)
	for i := 0; i < k; i++ {
		t0 := time.Now()
		ta.Send(b, m)
		durs[i] = time.Since(t0)
	}
	assertSendBound(t, durs)
	st := ta.Stats()
	if st.Enqueued+st.OutboxDrops != k {
		t.Fatalf("sends unaccounted for: %+v", st)
	}
	if st.OutboxDrops == 0 {
		t.Fatalf("expected outbox overflow drops against an unreachable peer: %+v", st)
	}
	// The writer must end up in the dial-backoff loop, off the Send path.
	deadline := time.Now().Add(5 * time.Second)
	for ta.Stats().DialErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("writer never attempted the dial: %+v", ta.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSendNonBlockingStalledReader: a peer that accepts connections but
// never reads wedges the TCP window; Send must stay non-blocking while the
// writer trips its write deadline and tears the connection down.
func TestSendNonBlockingStalledReader(t *testing.T) {
	a, b := types.ReplicaNode(0, 0), types.ReplicaNode(0, 1)
	// A sink that accepts and holds connections without ever reading.
	sink, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	go func() {
		for {
			c, err := sink.Accept()
			if err != nil {
				return
			}
			defer c.Close()
		}
	}()

	opt := testOptions()
	opt.OutboxDepth = 16
	opt.WriteTimeout = 150 * time.Millisecond
	ta, err := New(a, "127.0.0.1:0", map[types.NodeID]string{b: sink.Addr().String()}, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()

	// Large frames fill the buffered writer and both socket buffers fast.
	big := &types.Message{Type: types.MsgPrePrepare, From: a, Batch: &types.Batch{
		Txns: make([]types.Txn, 4096),
	}}
	var durs []time.Duration
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		t0 := time.Now()
		ta.Send(b, big)
		durs = append(durs, time.Since(t0))
		if ta.Stats().WriteErrors > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	assertSendBound(t, durs)
	st := ta.Stats()
	if st.WriteErrors == 0 {
		t.Fatalf("stalled TCP window never tripped the write deadline: %+v", st)
	}
}

// TestBadFramesDisconnect: zero-length, oversized, and undecodable frames
// must disconnect the sender without poisoning the inbox.
func TestBadFramesDisconnect(t *testing.T) {
	a := types.ReplicaNode(0, 0)
	ta, err := New(a, "127.0.0.1:0", nil, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()

	frames := [][]byte{
		{0, 0, 0, 0},             // zero-length
		{0xff, 0xff, 0xff, 0xff}, // oversized (4GiB-1 > maxFrame)
		append(func() []byte { // well-framed garbage that gob rejects
			var hdr [4]byte
			binary.BigEndian.PutUint32(hdr[:], 8)
			return hdr[:]
		}(), []byte("notagob!")...),
	}
	for i, f := range frames {
		c, err := net.Dial("tcp", ta.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write(f); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		// The transport must hang up on us: a read observes EOF/reset
		// rather than an open stream happy to take the next frame.
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		var one [1]byte
		if _, err := c.Read(one[:]); err == nil {
			t.Fatalf("frame %d: transport kept the connection open", i)
		}
		c.Close()
	}
	if st := ta.Stats(); st.BadFrames != int64(len(frames)) {
		t.Fatalf("expected %d bad frames counted, got %+v", len(frames), st)
	}
	select {
	case m := <-ta.Inbox():
		t.Fatalf("bad frame reached the inbox: %+v", m)
	default:
	}
	// The transport still works for honest peers afterwards.
	b := types.ReplicaNode(0, 1)
	tb, err := New(b, "127.0.0.1:0", map[types.NodeID]string{a: ta.Addr()}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	tb.Send(a, &types.Message{Type: types.MsgCommit, From: b})
	if m := waitMsg(t, ta); m.Type != types.MsgCommit {
		t.Fatal("transport wedged after bad frames")
	}
}

// TestSelfSendOverflowCounted: a full inbox makes self-sends drop — the
// drop must be visible in the stats rather than silent.
func TestSelfSendOverflowCounted(t *testing.T) {
	a := types.ReplicaNode(0, 0)
	ta, err := New(a, "127.0.0.1:0", nil, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	m := &types.Message{Type: types.MsgCommit, From: a}
	n := cap(ta.inbox) + 10
	for i := 0; i < n; i++ {
		ta.Send(a, m)
	}
	st := ta.Stats()
	if st.SelfDrops != int64(n-cap(ta.inbox)) {
		t.Fatalf("expected %d self-send drops, got %+v", n-cap(ta.inbox), st)
	}
}

// TestCloseUnblocksPromptly: Close must tear down a writer mid-backoff and
// mid-write without waiting out timeouts.
func TestCloseUnblocksPromptly(t *testing.T) {
	a, b := types.ReplicaNode(0, 0), types.ReplicaNode(0, 1)
	opt := testOptions()
	opt.RedialMin, opt.RedialMax = 2*time.Second, 2*time.Second
	ta, err := New(a, "127.0.0.1:0", map[types.NodeID]string{b: deadAddr(t)}, opt)
	if err != nil {
		t.Fatal(err)
	}
	ta.Send(b, &types.Message{Type: types.MsgPrepare, From: a})
	time.Sleep(20 * time.Millisecond) // let the writer enter dial/backoff
	done := make(chan struct{})
	go func() { ta.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Close blocked behind a dialing writer")
	}
}
