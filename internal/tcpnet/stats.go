package tcpnet

import (
	"sync/atomic"

	"ringbft/internal/metrics"
)

// counters is the transport's internal atomic counter set; Stats() snapshots
// it. Every loss path has a counter: this transport's whole design is
// "degrade to a counted drop instead of a stall", so the counts are the
// operator's only window into what was lost.
type counters struct {
	enqueued    atomic.Int64
	outboxDrops atomic.Int64
	selfDrops   atomic.Int64
	inboxDrops  atomic.Int64
	unknownPeer atomic.Int64
	encodeDrops atomic.Int64
	wireDrops   atomic.Int64

	framesSent atomic.Int64
	bytesSent  atomic.Int64

	dials      atomic.Int64
	dialErrors atomic.Int64
	redials    atomic.Int64

	writeErrors   atomic.Int64
	badFrames     atomic.Int64
	acceptRetries atomic.Int64
}

// Stats is a point-in-time snapshot of transport counters.
type Stats struct {
	// Enqueued counts messages accepted into a peer outbox (not yet
	// necessarily written); FramesSent/BytesSent count what reached a
	// connection's buffered writer.
	Enqueued   int64
	FramesSent int64
	BytesSent  int64

	// OutboxDrops: Send found the peer's outbox full (peer down or slower
	// than the send rate). SelfDrops: a self-send found the local inbox
	// full. InboxDrops: an inbound frame found the inbox full. UnknownPeer:
	// Send had no address for the destination. EncodeDrops: the writer
	// refused a message that failed to serialize or exceeded the maximum
	// frame size (which the receiver would have disconnected on anyway).
	// WireDrops: frames lost with a torn-down connection — the frame a
	// failed write was carrying plus everything buffered but unflushed
	// (frames only count as FramesSent once a flush succeeds).
	OutboxDrops int64
	SelfDrops   int64
	InboxDrops  int64
	UnknownPeer int64
	EncodeDrops int64
	WireDrops   int64

	// Dials counts TCP connect attempts; DialErrors the failed ones;
	// Redials the attempts made after a peer had already been connected
	// once (i.e. reconnects after a teardown or peer restart).
	Dials      int64
	DialErrors int64
	Redials    int64

	// WriteErrors counts write/flush failures — deadline expiry on a
	// stalled TCP window, or a reset — each of which tears the connection
	// down for redial. BadFrames counts inbound frames (zero-length,
	// oversized, undecodable) that disconnected a sender. AcceptRetries
	// counts transient listener errors retried with backoff.
	WriteErrors   int64
	BadFrames     int64
	AcceptRetries int64
}

// Dropped returns the total messages this transport lost locally: outbox,
// inbox, and self-send overflow, writer-side encode refusals, sends to
// peers with no known address, and frames that died with a torn-down
// connection.
func (s Stats) Dropped() int64 {
	return s.OutboxDrops + s.InboxDrops + s.SelfDrops + s.EncodeDrops + s.UnknownPeer + s.WireDrops
}

// Stats returns a snapshot of the transport's counters. Safe to call
// concurrently with sends and from the shutdown path.
func (t *Transport) Stats() Stats {
	return Stats{
		Enqueued:      t.c.enqueued.Load(),
		FramesSent:    t.c.framesSent.Load(),
		BytesSent:     t.c.bytesSent.Load(),
		OutboxDrops:   t.c.outboxDrops.Load(),
		SelfDrops:     t.c.selfDrops.Load(),
		InboxDrops:    t.c.inboxDrops.Load(),
		UnknownPeer:   t.c.unknownPeer.Load(),
		EncodeDrops:   t.c.encodeDrops.Load(),
		WireDrops:     t.c.wireDrops.Load(),
		Dials:         t.c.dials.Load(),
		DialErrors:    t.c.dialErrors.Load(),
		Redials:       t.c.redials.Load(),
		WriteErrors:   t.c.writeErrors.Load(),
		BadFrames:     t.c.badFrames.Load(),
		AcceptRetries: t.c.acceptRetries.Load(),
	}
}

// RegisterMetrics exposes the transport counters on reg as read-on-scrape
// series. The transport keeps sole ownership of the atomics — the registry
// reads them at exposition time — so there is no double counting and no
// extra work on the send path.
func (t *Transport) RegisterMetrics(reg *metrics.Registry) {
	counters := []struct {
		name string
		v    *atomic.Int64
	}{
		{"tcpnet_enqueued_total", &t.c.enqueued},
		{"tcpnet_frames_sent_total", &t.c.framesSent},
		{"tcpnet_bytes_sent_total", &t.c.bytesSent},
		{"tcpnet_outbox_drops_total", &t.c.outboxDrops},
		{"tcpnet_self_drops_total", &t.c.selfDrops},
		{"tcpnet_inbox_drops_total", &t.c.inboxDrops},
		{"tcpnet_unknown_peer_total", &t.c.unknownPeer},
		{"tcpnet_encode_drops_total", &t.c.encodeDrops},
		{"tcpnet_wire_drops_total", &t.c.wireDrops},
		{"tcpnet_dials_total", &t.c.dials},
		{"tcpnet_dial_errors_total", &t.c.dialErrors},
		{"tcpnet_redials_total", &t.c.redials},
		{"tcpnet_write_errors_total", &t.c.writeErrors},
		{"tcpnet_bad_frames_total", &t.c.badFrames},
		{"tcpnet_accept_retries_total", &t.c.acceptRetries},
	}
	for _, c := range counters {
		v := c.v
		reg.CounterFunc(c.name, func() float64 { return float64(v.Load()) })
	}
}
