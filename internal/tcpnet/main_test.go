package tcpnet

import (
	"os"
	"testing"

	"ringbft/internal/leakcheck"
)

// The transport owns accept loops, per-peer writer pipelines, and reader
// goroutines; Close must reap all of them. The leak gate runs after the
// whole suite so any stranded goroutine fails the binary with its stack.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.CheckMain(m))
}
