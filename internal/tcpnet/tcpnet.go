// Package tcpnet is the real-network transport: length-prefixed gob frames
// over TCP connections from the standard library's net package. It exposes
// the same Send/Inbox shape as the in-process simulator (package simnet), so
// the ringbft.Replica runs unchanged in a multi-process deployment
// (cmd/ringbft-node, cmd/ringbft-client).
//
// Send never touches the network: it enqueues onto a bounded per-peer
// outbox (or drops, when the outbox is full) and returns immediately, which
// is what the pbft engine's "Send must never block" contract requires of
// the replica event loop. A dedicated writer goroutine per peer owns that
// peer's connection: it dials lazily with exponential-backoff redial,
// coalesces queued frames through one buffered writer (flushing only when
// the outbox drains), and writes under a deadline so a wedged TCP window
// tears the connection down instead of wedging the writer. BFT protocols
// tolerate lost messages, so every failure mode degrades to a counted drop,
// never a stall.
package tcpnet

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"ringbft/internal/types"
)

// maxFrame bounds one serialized message (guards against corrupt peers).
const maxFrame = 64 << 20

// Options tunes the transport. The zero value selects the defaults below;
// FromConfig derives Options from a types.Config.
type Options struct {
	// OutboxDepth is the per-peer outbound queue capacity. Send drops (and
	// counts) messages for a peer whose outbox is full — a peer that is
	// down or slower than the send rate costs bounded memory, never
	// blocking. Default 4096.
	OutboxDepth int
	// DialTimeout bounds one TCP connect attempt (writer goroutine only;
	// Send never dials). Default 2s.
	DialTimeout time.Duration
	// WriteTimeout bounds each write/flush on an established connection. A
	// peer that accepts but stops reading (stalled TCP window) trips the
	// deadline and the writer tears the connection down and redials.
	// Default 5s.
	WriteTimeout time.Duration
	// RedialMin/RedialMax bound the exponential backoff between dial
	// attempts to an unreachable peer. Defaults 50ms / 3s.
	RedialMin time.Duration
	RedialMax time.Duration
	// Resolver, when non-nil, overrides the address table passed to New:
	// peers are looked up at first send, so addresses may become known
	// after the transport starts (the loopback-TCP harness attaches nodes
	// in arbitrary order). Must be safe for concurrent use.
	Resolver func(types.NodeID) (string, bool)
}

func (o Options) withDefaults() Options {
	if o.OutboxDepth <= 0 {
		o.OutboxDepth = 4096
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 5 * time.Second
	}
	if o.RedialMin <= 0 {
		o.RedialMin = 50 * time.Millisecond
	}
	if o.RedialMax <= 0 {
		o.RedialMax = 3 * time.Second
	}
	if o.RedialMax < o.RedialMin {
		o.RedialMax = o.RedialMin
	}
	return o
}

// FromConfig derives transport Options from the deployment config's
// transport knobs (zero fields keep the package defaults).
func FromConfig(c types.Config) Options {
	return Options{
		OutboxDepth:  c.OutboxDepth,
		DialTimeout:  c.DialTimeout,
		WriteTimeout: c.WriteTimeout,
	}
}

// Transport is one node's attachment to the TCP network.
type Transport struct {
	self  types.NodeID
	addrs map[types.NodeID]string
	opt   Options

	ln    net.Listener
	inbox chan *types.Message

	mu    sync.Mutex
	peers map[types.NodeID]*peer
	conns map[net.Conn]struct{} // every live conn, inbound and outbound

	c counters

	closed  sync.Once
	closing chan struct{}
	// dialCtx is cancelled by Close so writers blocked inside a connect
	// syscall (a blackholed SYN) unblock immediately instead of waiting
	// out DialTimeout.
	dialCtx    context.Context
	dialCancel context.CancelFunc
	wg         sync.WaitGroup
}

// New starts a Transport for node self listening on listenAddr; addrs maps
// every peer (and this node) to its dialable address. opt tunes queue
// depths and deadlines; the zero Options selects defaults.
func New(self types.NodeID, listenAddr string, addrs map[types.NodeID]string, opt Options) (*Transport, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", listenAddr, err)
	}
	dialCtx, dialCancel := context.WithCancel(context.Background())
	t := &Transport{
		self:       self,
		addrs:      addrs,
		opt:        opt.withDefaults(),
		ln:         ln,
		inbox:      make(chan *types.Message, 1<<14),
		peers:      make(map[types.NodeID]*peer),
		conns:      make(map[net.Conn]struct{}),
		closing:    make(chan struct{}),
		dialCtx:    dialCtx,
		dialCancel: dialCancel,
	}
	t.wg.Add(1)
	go t.accept()
	return t, nil
}

// Inbox returns the channel of inbound messages.
func (t *Transport) Inbox() <-chan *types.Message { return t.inbox }

// Addr returns the transport's bound listen address.
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// Close shuts the listener, every connection, and all writer goroutines,
// then waits for them to exit. Queued but unwritten messages are lost, like
// messages on the wire at process death.
func (t *Transport) Close() {
	t.closed.Do(func() {
		close(t.closing)
		t.dialCancel()
		t.ln.Close()
		t.mu.Lock()
		//ringbft:ignore mapiter every connection is closed before wg.Wait returns; teardown order of doomed conns is unobservable
		for c := range t.conns {
			c.Close()
		}
		t.mu.Unlock()
		t.wg.Wait()
	})
}

// track registers a live connection so Close can tear it down (unblocking
// any in-flight read or write). It refuses new connections once closing.
func (t *Transport) track(c net.Conn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	select {
	case <-t.closing:
		c.Close()
		return false
	default:
	}
	t.conns[c] = struct{}{}
	return true
}

func (t *Transport) untrack(c net.Conn) {
	t.mu.Lock()
	delete(t.conns, c)
	t.mu.Unlock()
	c.Close()
}

// accept takes inbound connections, backing off on transient errors
// (EMFILE, ECONNABORTED) instead of hot-spinning on a tight retry loop.
func (t *Transport) accept() {
	defer t.wg.Done()
	backoff := time.Duration(0)
	for {
		c, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.closing:
				return
			default:
			}
			t.c.acceptRetries.Add(1)
			if backoff == 0 {
				backoff = 5 * time.Millisecond
			} else if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			select {
			case <-t.closing:
				return
			case <-time.After(backoff):
			}
			continue
		}
		backoff = 0
		if !t.track(c) {
			return
		}
		t.wg.Add(1)
		go t.readLoop(c)
	}
}

// readLoop decodes length-prefixed gob frames into the inbox until EOF. Any
// malformed frame — zero-length, oversized, or undecodable — disconnects
// the sender immediately: a peer that cannot frame correctly cannot be
// trusted to delimit the next frame either, and resynchronizing on a broken
// stream risks feeding garbage into the inbox.
func (t *Transport) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer t.untrack(c)
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || n > maxFrame {
			t.c.badFrames.Add(1)
			return
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(c, buf); err != nil {
			return
		}
		var m types.Message
		if err := gobDecode(buf, &m); err != nil {
			t.c.badFrames.Add(1)
			return
		}
		select {
		case t.inbox <- &m:
		case <-t.closing:
			return
		default:
			// Inbox overflow: drop, like a saturated kernel socket buffer.
			t.c.inboxDrops.Add(1)
		}
	}
}

// Send enqueues m for node to and returns immediately — it never dials,
// writes, or blocks. Messages to unknown peers, to peers with a full
// outbox, or to a full local inbox (self-sends) are dropped and counted;
// the caller is a BFT protocol whose timers recover from message loss.
func (t *Transport) Send(to types.NodeID, m *types.Message) {
	if to == t.self {
		select {
		case t.inbox <- m:
		default:
			t.c.selfDrops.Add(1)
		}
		return
	}
	p := t.peer(to)
	if p == nil {
		t.c.unknownPeer.Add(1)
		return
	}
	select {
	case p.out <- m:
		t.c.enqueued.Add(1)
	default:
		t.c.outboxDrops.Add(1)
	}
}

// Backlog reports the number of frames currently queued across every
// per-peer outbox — the transport-side backpressure signal for pipelined
// consensus hosts (ringbft.Options.Backpressure). A backlog that stays
// near the configured OutboxDepth means the writers are not keeping up
// with the send rate, so a primary should stop widening its pipeline
// window before bounded outbox memory turns into counted drops. O(peers),
// no blocking: channel occupancy reads under the table lock only.
func (t *Transport) Backlog() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, p := range t.peers {
		n += len(p.out)
	}
	return n
}

// resolve maps a peer to its dialable address.
func (t *Transport) resolve(to types.NodeID) (string, bool) {
	if t.opt.Resolver != nil {
		return t.opt.Resolver(to)
	}
	addr, ok := t.addrs[to]
	return addr, ok
}

// peer returns the outbound pipeline for to, creating its outbox and writer
// goroutine on first use. Returns nil when the peer has no known address
// (resolution is retried on the next Send).
func (t *Transport) peer(to types.NodeID) *peer {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p, ok := t.peers[to]; ok {
		return p
	}
	select {
	case <-t.closing:
		return nil
	default:
	}
	addr, ok := t.resolve(to)
	if !ok {
		return nil
	}
	p := &peer{id: to, addr: addr, out: make(chan *types.Message, t.opt.OutboxDepth)}
	t.peers[to] = p
	t.wg.Add(1)
	go t.writer(p)
	return p
}
