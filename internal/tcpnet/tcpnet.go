// Package tcpnet is the real-network transport: length-prefixed gob frames
// over TCP connections from the standard library's net package. It exposes
// the same Send/Inbox shape as the in-process simulator (package simnet), so
// the ringbft.Replica runs unchanged in a multi-process deployment
// (cmd/ringbft-node, cmd/ringbft-client). Connections are dialed lazily,
// cached, and redialed on failure — BFT protocols tolerate lost messages, so
// sends never block or retry aggressively.
package tcpnet

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"ringbft/internal/types"
)

// maxFrame bounds one serialized message (guards against corrupt peers).
const maxFrame = 64 << 20

// Transport is one node's attachment to the TCP network.
type Transport struct {
	self  types.NodeID
	addrs map[types.NodeID]string

	ln    net.Listener
	inbox chan *types.Message

	mu    sync.Mutex
	conns map[types.NodeID]*conn

	closed  sync.Once
	closing chan struct{}
}

type conn struct {
	mu sync.Mutex
	c  net.Conn
}

// New starts a Transport for node self listening on listenAddr; addrs maps
// every peer (and this node) to its dialable address.
func New(self types.NodeID, listenAddr string, addrs map[types.NodeID]string) (*Transport, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", listenAddr, err)
	}
	t := &Transport{
		self:    self,
		addrs:   addrs,
		ln:      ln,
		inbox:   make(chan *types.Message, 1<<14),
		conns:   make(map[types.NodeID]*conn),
		closing: make(chan struct{}),
	}
	go t.accept()
	return t, nil
}

// Inbox returns the channel of inbound messages.
func (t *Transport) Inbox() <-chan *types.Message { return t.inbox }

// Addr returns the transport's bound listen address.
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// Close shuts the listener and all connections.
func (t *Transport) Close() {
	t.closed.Do(func() {
		close(t.closing)
		t.ln.Close()
		t.mu.Lock()
		for _, c := range t.conns {
			c.c.Close()
		}
		t.conns = map[types.NodeID]*conn{}
		t.mu.Unlock()
	})
}

func (t *Transport) accept() {
	for {
		c, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.closing:
				return
			default:
				continue
			}
		}
		go t.readLoop(c)
	}
}

// readLoop decodes length-prefixed gob frames into the inbox until EOF.
func (t *Transport) readLoop(c net.Conn) {
	defer c.Close()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || n > maxFrame {
			return
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(c, buf); err != nil {
			return
		}
		var m types.Message
		if err := gobDecode(buf, &m); err != nil {
			continue // malformed frame from a (possibly Byzantine) peer
		}
		select {
		case t.inbox <- &m:
		case <-t.closing:
			return
		default:
			// Inbox overflow: drop, like a saturated kernel socket buffer.
		}
	}
}

// Send transmits m to node to. Errors (unknown peer, dial/write failure) are
// swallowed after tearing down the cached connection: the caller is a BFT
// protocol whose timers recover from message loss.
func (t *Transport) Send(to types.NodeID, m *types.Message) {
	if to == t.self {
		select {
		case t.inbox <- m:
		default:
		}
		return
	}
	addr, ok := t.addrs[to]
	if !ok {
		return
	}
	cn, err := t.connTo(to, addr)
	if err != nil {
		return
	}
	if err := cn.write(m); err != nil {
		t.dropConn(to, cn)
	}
}

func (t *Transport) connTo(to types.NodeID, addr string) (*conn, error) {
	t.mu.Lock()
	if c, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()

	nc, err := net.DialTimeout("tcp", addr, 3*time.Second)
	if err != nil {
		return nil, err
	}
	c := &conn{c: nc}

	t.mu.Lock()
	defer t.mu.Unlock()
	if existing, ok := t.conns[to]; ok {
		nc.Close()
		return existing, nil
	}
	t.conns[to] = c
	return c, nil
}

func (t *Transport) dropConn(to types.NodeID, c *conn) {
	t.mu.Lock()
	if t.conns[to] == c {
		delete(t.conns, to)
	}
	t.mu.Unlock()
	c.c.Close()
}

// write frames one message: a fresh gob encoding per frame (self-contained,
// so frames survive reordering across reconnects) behind a 4-byte length.
func (c *conn) write(m *types.Message) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.c.Write(hdr[:]); err != nil {
		return err
	}
	_, err := c.c.Write(buf.Bytes())
	return err
}

func gobDecode(buf []byte, m *types.Message) error {
	return gob.NewDecoder(bytes.NewReader(buf)).Decode(m)
}
