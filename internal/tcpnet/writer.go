package tcpnet

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"net"
	"time"

	"ringbft/internal/types"
)

// peer is one outbound pipeline: a bounded queue drained by a dedicated
// writer goroutine that owns the connection to this peer.
type peer struct {
	id   types.NodeID
	addr string
	out  chan *types.Message
	// everConnected marks that at least one dial succeeded; later dials are
	// redials. Touched only by this peer's writer goroutine.
	everConnected bool
}

// connWriter wraps one established connection with buffered, deadline-bound
// framing. The scratch buffer is reused across frames so a steady send rate
// settles into zero per-frame allocation beyond gob's own internals.
// pendingFrames/pendingBytes hold frames accepted into the buffered writer
// but not yet flushed: they count as sent only once a flush succeeds, and
// as wire drops when the connection tears down first — so "frames sent"
// never includes bytes that died in a buffer.
type connWriter struct {
	nc      net.Conn
	bw      *bufio.Writer
	scratch bytes.Buffer

	pendingFrames int64
	pendingBytes  int64
}

// writeFrame encodes m as one self-contained gob frame — 4-byte big-endian
// length, then body — and writes header+body with a single Write call under
// deadline. Frames are encoded independently (no shared gob stream state)
// so they survive reordering across reconnects. A body over maxFrame is
// refused here, on the sender: the receiver would disconnect on its header
// anyway, taking every coalesced frame behind it down too.
func (w *connWriter) writeFrame(m *types.Message, timeout time.Duration) (int, error) {
	w.scratch.Reset()
	w.scratch.Write([]byte{0, 0, 0, 0}) // length placeholder
	if err := gob.NewEncoder(&w.scratch).Encode(m); err != nil {
		return 0, errEncode{err}
	}
	frame := w.scratch.Bytes()
	if len(frame)-4 > maxFrame {
		return 0, errEncode{fmt.Errorf("frame body %d bytes exceeds maxFrame %d", len(frame)-4, maxFrame)}
	}
	binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	w.nc.SetWriteDeadline(time.Now().Add(timeout))
	return w.bw.Write(frame)
}

func (w *connWriter) flush(timeout time.Duration) error {
	w.nc.SetWriteDeadline(time.Now().Add(timeout))
	return w.bw.Flush()
}

// errEncode marks a frame that failed to serialize: the message is at
// fault, not the connection, so the writer drops it without a teardown.
type errEncode struct{ err error }

func (e errEncode) Error() string { return "tcpnet: encode frame: " + e.err.Error() }

// writer drains p.out for the life of the transport. Connection management
// lives entirely here — dial with exponential-backoff redial, coalesced
// buffered writes, teardown on deadline or reset — so the Send path stays a
// non-blocking enqueue.
func (t *Transport) writer(p *peer) {
	defer t.wg.Done()
	var cw *connWriter
	teardown := func() {
		if cw != nil {
			// Unflushed frames die with the connection: real loss, counted.
			t.c.wireDrops.Add(cw.pendingFrames)
			t.untrack(cw.nc)
			cw = nil
		}
	}
	defer teardown()
	backoff := t.opt.RedialMin
	for {
		// Block until there is work (or shutdown).
		var m *types.Message
		select {
		case m = <-p.out:
		case <-t.closing:
			return
		}
		for m != nil {
			if cw == nil {
				cw = t.dialPeer(p, &backoff)
				if cw == nil {
					return // transport closing
				}
			}
			n, err := cw.writeFrame(m, t.opt.WriteTimeout)
			switch err.(type) {
			case nil:
				cw.pendingFrames++
				cw.pendingBytes += int64(n)
			case errEncode:
				// Unserializable or oversized message: drop and count it,
				// keep the connection.
				t.c.encodeDrops.Add(1)
			default:
				// Connection-level failure (deadline, reset): tear down and
				// drop the frame — the protocol's timers retransmit intent,
				// not bytes. The next message redials, after a paced wait:
				// a peer that accepts and instantly resets would otherwise
				// drive an unthrottled dial/teardown churn loop (dialPeer
				// only sleeps on dial *errors*).
				t.c.writeErrors.Add(1)
				t.c.wireDrops.Add(1) // the frame that just failed
				teardown()
				if !t.pause(&backoff) {
					return
				}
			}
			// Coalesce: keep writing while the outbox has more, flush the
			// buffered frames only once it drains.
			select {
			case m = <-p.out:
				continue
			case <-t.closing:
				t.settleFlush(cw)
				return
			default:
				m = nil
			}
			if cw != nil && !t.settleFlush(cw) {
				t.c.writeErrors.Add(1)
				teardown()
				if !t.pause(&backoff) {
					return
				}
			} else if cw != nil {
				// Bytes actually reached the socket: the link is healthy,
				// so redial pacing starts over.
				backoff = t.opt.RedialMin
			}
		}
	}
}

// settleFlush pushes cw's buffered frames to the socket and settles the
// sent counters: pending frames become FramesSent/BytesSent only on
// success (a failed flush leaves them pending, and the caller's teardown
// converts them to WireDrops). A nil cw trivially succeeds.
func (t *Transport) settleFlush(cw *connWriter) bool {
	if cw == nil {
		return true
	}
	if err := cw.flush(t.opt.WriteTimeout); err != nil {
		return false
	}
	t.c.framesSent.Add(cw.pendingFrames)
	t.c.bytesSent.Add(cw.pendingBytes)
	cw.pendingFrames, cw.pendingBytes = 0, 0
	return true
}

// pause sleeps the current backoff (doubling it toward RedialMax for the
// next failure) and reports false when the transport closed meanwhile.
func (t *Transport) pause(backoff *time.Duration) bool {
	select {
	case <-t.closing:
		return false
	case <-time.After(*backoff):
	}
	if *backoff *= 2; *backoff > t.opt.RedialMax {
		*backoff = t.opt.RedialMax
	}
	return true
}

// dialPeer establishes a connection to p, retrying with exponential backoff
// until it succeeds or the transport closes (returns nil). Send keeps
// enqueueing (and overflow-dropping) while this runs — dialing never
// touches the caller. The peer's address is re-resolved on every attempt so
// a Resolver that learns a new address (node restarted elsewhere, harness
// attach order) takes effect at the next dial. The dial is bound by both
// DialTimeout and transport close, so a blackholed SYN can't hold up Close.
func (t *Transport) dialPeer(p *peer, backoff *time.Duration) *connWriter {
	dialer := net.Dialer{Timeout: t.opt.DialTimeout}
	for {
		select {
		case <-t.closing:
			return nil
		default:
		}
		if addr, ok := t.resolve(p.id); ok {
			p.addr = addr
		}
		t.c.dials.Add(1)
		if p.everConnected {
			t.c.redials.Add(1)
		}
		nc, err := dialer.DialContext(t.dialCtx, "tcp", p.addr)
		if err == nil {
			if !t.track(nc) {
				return nil
			}
			p.everConnected = true
			return &connWriter{nc: nc, bw: bufio.NewWriterSize(nc, 64<<10)}
		}
		t.c.dialErrors.Add(1)
		if !t.pause(backoff) {
			return nil
		}
	}
}

func gobDecode(buf []byte, m *types.Message) error {
	return gob.NewDecoder(bytes.NewReader(buf)).Decode(m)
}
