package tcpnet

import (
	"testing"
	"time"

	"ringbft/internal/types"
)

// BenchmarkTransportSend measures the enqueue path of Send — the cost the
// replica event loop pays per outbound message. Reference numbers live in
// bench_baseline.json; the contract is that this stays nanoseconds-scale
// regardless of peer health, because the event loop calls it under timers.
//
// connected: the peer accepts and drains, so frames flow end to end.
// unreachable: every dial is refused; Send degrades to enqueue-or-drop.
// self: loopback delivery straight into the local inbox.
func BenchmarkTransportSend(b *testing.B) {
	a, p := types.ReplicaNode(0, 0), types.ReplicaNode(0, 1)
	msg := &types.Message{Type: types.MsgPrepare, From: a, Seq: 1}

	b.Run("connected", func(b *testing.B) {
		tp, err := New(p, "127.0.0.1:0", nil, Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer tp.Close()
		go func() { // drain so the inbox never overflows
			for range tp.Inbox() {
			}
		}()
		ta, err := New(a, "127.0.0.1:0", map[types.NodeID]string{p: tp.Addr()}, Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer ta.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ta.Send(p, msg)
		}
	})

	b.Run("unreachable", func(b *testing.B) {
		ta, err := New(a, "127.0.0.1:0", map[types.NodeID]string{p: deadAddr(b)},
			Options{OutboxDepth: 1024, RedialMin: 50 * time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		defer ta.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ta.Send(p, msg)
		}
	})

	b.Run("self", func(b *testing.B) {
		ta, err := New(a, "127.0.0.1:0", nil, Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer ta.Close()
		go func() {
			for range ta.Inbox() {
			}
		}()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ta.Send(a, msg)
		}
	})
}
