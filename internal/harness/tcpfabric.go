package harness

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ringbft/internal/simnet"
	"ringbft/internal/tcpnet"
	"ringbft/internal/types"
)

// tcpFabric wires every node through a real tcpnet.Transport on a loopback
// socket, so the scenario suite (commit, primary failure, crash-restart)
// exercises actual dials, TCP framing, write deadlines, and the transport's
// redial/backoff machinery instead of simnet's in-process queues. Addresses
// are resolved through a shared table filled as nodes attach, so attach
// order doesn't matter (transports look peers up at first send).
type tcpFabric struct {
	opt tcpnet.Options

	mu          sync.Mutex
	addrs       map[types.NodeID]string
	crashed     map[types.NodeID]*atomic.Bool
	transports  []*tcpnet.Transport
	unreachable map[types.NodeID]bool
	rejectLns   []net.Listener

	// pumpDrops counts messages lost between a transport inbox and a full
	// endpoint inbox (e.g. a crashed node's stopped event loop) — real loss
	// the transports' own counters can't see.
	pumpDrops atomic.Int64

	closing chan struct{}
	closed  sync.Once
	wg      sync.WaitGroup
}

func newTCPFabric(cfg Config) *tcpFabric {
	f := &tcpFabric{
		// Scaled for in-process scenarios: redials must cycle well inside
		// the protocol timers so an unreachable peer is probed throughout
		// the run rather than once.
		opt: tcpnet.Options{
			OutboxDepth:  8192,
			DialTimeout:  time.Second,
			WriteTimeout: 2 * time.Second,
			RedialMin:    20 * time.Millisecond,
			RedialMax:    250 * time.Millisecond,
		},
		addrs:       make(map[types.NodeID]string),
		crashed:     make(map[types.NodeID]*atomic.Bool),
		unreachable: make(map[types.NodeID]bool),
		closing:     make(chan struct{}),
	}
	if cfg.TCPUnreachable {
		// The headline-bug scenario: the last backup of shard 0 advertises
		// a reject address — no message ever reaches it, and every peer's
		// writer churns through connect/teardown/backoff all run — while
		// Send stays an enqueue-or-drop and the shard keeps committing
		// with its remaining n-1 >= nf replicas.
		f.unreachable[types.ReplicaNode(0, cfg.ReplicasPerShard-1)] = true
	}
	return f
}

func (f *tcpFabric) lookup(id types.NodeID) (string, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	addr, ok := f.addrs[id]
	return addr, ok
}

// rejectAddr binds a loopback listener that tears every connection down
// the instant it is accepted, and holds the binding for the fabric's
// lifetime. Holding it matters: a closed port could be handed back out to
// a later Attach's 127.0.0.1:0 listen, silently turning "unreachable" into
// "misrouted". Peers dialing this address connect, lose the connection
// immediately, and cycle the writer's teardown/redial/backoff machinery
// for the whole run — and no frame is ever delivered.
func (f *tcpFabric) rejectAddr() string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("harness: tcp fabric: %v", err))
	}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	f.mu.Lock()
	f.rejectLns = append(f.rejectLns, ln)
	f.mu.Unlock()
	return ln.Addr().String()
}

func (f *tcpFabric) Attach(id types.NodeID, _ simnet.Region) endpoint {
	opt := f.opt
	opt.Resolver = f.lookup
	tr, err := tcpnet.New(id, "127.0.0.1:0", nil, opt)
	if err != nil {
		// Loopback listen fails only on resource exhaustion; the harness'
		// Attach shape (mirroring simnet) has no error path.
		panic(fmt.Sprintf("harness: tcp fabric: %v", err))
	}
	addr := tr.Addr()
	if f.unreachable[id] {
		addr = f.rejectAddr()
	}
	down := &atomic.Bool{}
	f.mu.Lock()
	f.addrs[id] = addr
	f.crashed[id] = down
	f.transports = append(f.transports, tr)
	f.mu.Unlock()

	ep := &tcpEndpoint{tr: tr, down: down, out: make(chan *types.Message, 1<<14), drops: &f.pumpDrops}
	f.wg.Add(1)
	go ep.pump(f.closing, &f.wg)
	return ep
}

func (f *tcpFabric) SetCrashed(id types.NodeID, down bool) {
	f.mu.Lock()
	flag := f.crashed[id]
	f.mu.Unlock()
	if flag != nil {
		flag.Store(down)
	}
}

func (f *tcpFabric) Close() {
	f.closed.Do(func() {
		close(f.closing)
		f.mu.Lock()
		trs := append([]*tcpnet.Transport(nil), f.transports...)
		lns := append([]net.Listener(nil), f.rejectLns...)
		f.mu.Unlock()
		for _, ln := range lns {
			ln.Close()
		}
		for _, tr := range trs {
			tr.Close()
		}
		f.wg.Wait()
	})
}

func (f *tcpFabric) fillStats(res *Result) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, tr := range f.transports {
		st := tr.Stats()
		res.MsgsSent += st.Enqueued
		res.MsgsDropped += st.Dropped()
		res.BytesSent += st.BytesSent
	}
	res.MsgsDropped += f.pumpDrops.Load()
	// BytesCross needs link topology the kernel doesn't expose; it stays 0
	// on the TCP fabric.
}

// tcpEndpoint adapts one transport to the fabric's endpoint shape and
// implements the crash switch: while down, outbound sends are suppressed
// and inbound messages are discarded before the node's inbox — the
// network-level crash semantics simnet provides natively.
type tcpEndpoint struct {
	tr    *tcpnet.Transport
	down  *atomic.Bool
	out   chan *types.Message
	drops *atomic.Int64
}

func (e *tcpEndpoint) Send(to types.NodeID, m *types.Message) {
	if e.down.Load() {
		return
	}
	e.tr.Send(to, m)
}

func (e *tcpEndpoint) Inbox() <-chan *types.Message { return e.out }

// Backlog surfaces the transport's outbox occupancy so build can hand it to
// pipelined replicas as their backpressure signal (simnet endpoints don't
// implement it — in-process queues have no writer to fall behind).
func (e *tcpEndpoint) Backlog() int { return e.tr.Backlog() }

// pump forwards the transport inbox into the endpoint inbox, dropping when
// the node is crashed or its inbox is full (a stopped event loop must not
// wedge the fabric).
func (e *tcpEndpoint) pump(closing <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case m := <-e.tr.Inbox():
			if e.down.Load() {
				continue
			}
			select {
			case e.out <- m:
			default:
				e.drops.Add(1)
			}
		case <-closing:
			return
		}
	}
}
