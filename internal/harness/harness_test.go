package harness

import (
	"testing"
	"time"

	"ringbft/internal/raceflag"
)

func smoke(t *testing.T, p Protocol, crossPct float64) Result {
	t.Helper()
	// The race detector slows the event loops 5-20x; a 100%-cross-shard
	// batch needs a full ring traversal (or, for AHL, a 3-committee 2PC)
	// to commit, so both the measurement window and the view-change
	// timeout must stretch with the build or the liveness assertions
	// flake: with the wall-clock timer unscaled, honest slow rounds expire
	// it and the run burns in view-change churn instead of committing.
	scale := time.Duration(1)
	if raceflag.Enabled {
		scale = 8
	}
	res, err := Run(Config{
		Protocol:         p,
		Shards:           3,
		ReplicasPerShard: 4,
		BatchSize:        10,
		CrossShardPct:    crossPct,
		InvolvedShards:   3,
		Clients:          4,
		ClientWindow:     2,
		Warmup:           scale * 150 * time.Millisecond,
		Duration:         scale * 400 * time.Millisecond,
		LocalTimeout:     scale * 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("%s run: %v", p, err)
	}
	return res
}

func TestRingBFTSingleShardThroughput(t *testing.T) {
	res := smoke(t, ProtoRingBFT, 0)
	if res.Txns == 0 {
		t.Fatalf("no transactions committed: %+v", res)
	}
	if res.AvgLatency <= 0 {
		t.Fatal("latency not measured")
	}
}

// TestParallelExecutionAllProtocols runs every sharded protocol with the
// dependency-aware parallel executor enabled: all of them must still make
// progress (the sched layer guarantees results identical to sequential;
// equivalence itself is proven by internal/sched and internal/ringbft).
func TestParallelExecutionAllProtocols(t *testing.T) {
	for _, p := range []Protocol{ProtoRingBFT, ProtoSharper, ProtoAHL} {
		res, err := Run(Config{
			Protocol:         p,
			Shards:           3,
			ReplicasPerShard: 4,
			BatchSize:        10,
			ExecWorkers:      4,
			CrossShardPct:    0.5,
			InvolvedShards:   3,
			Clients:          4,
			ClientWindow:     2,
			Warmup:           150 * time.Millisecond,
			Duration:         400 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("%s with ExecWorkers=4: %v", p, err)
		}
		if res.Txns == 0 {
			t.Fatalf("%s with ExecWorkers=4 committed nothing: %+v", p, res)
		}
	}
}

// TestVerifyFastPathAllProtocols runs every sharded protocol with the
// batched/cached certificate verifier enabled end-to-end: cross-shard
// traffic (whose Forward certificates exercise VerifyCert) must still
// commit. Accept/reject equivalence with serial verification is proven
// deterministically by internal/ringbft's
// TestPropertyVerifyFastPathEquivalence; this test covers the real
// concurrent stack.
func TestVerifyFastPathAllProtocols(t *testing.T) {
	for _, p := range []Protocol{ProtoRingBFT, ProtoSharper, ProtoAHL} {
		res, err := Run(Config{
			Protocol:         p,
			Shards:           3,
			ReplicasPerShard: 4,
			BatchSize:        10,
			VerifyWorkers:    4,
			CrossShardPct:    0.5,
			InvolvedShards:   3,
			Clients:          4,
			ClientWindow:     2,
			Warmup:           150 * time.Millisecond,
			Duration:         400 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("%s with VerifyWorkers: %v", p, err)
		}
		if res.Txns == 0 {
			t.Fatalf("%s with VerifyWorkers committed nothing: %+v", p, res)
		}
	}
}

func TestRingBFTCrossShardThroughput(t *testing.T) {
	res := smoke(t, ProtoRingBFT, 1.0)
	if res.Txns == 0 {
		t.Fatalf("no cross-shard transactions committed: %+v", res)
	}
}

func TestSharperCrossShardThroughput(t *testing.T) {
	res := smoke(t, ProtoSharper, 1.0)
	if res.Txns == 0 {
		t.Fatalf("sharper committed nothing: %+v", res)
	}
}

func TestAHLCrossShardThroughput(t *testing.T) {
	res := smoke(t, ProtoAHL, 1.0)
	if res.Txns == 0 {
		t.Fatalf("ahl committed nothing: %+v", res)
	}
}

func TestMixedWorkloadAllProtocols(t *testing.T) {
	for _, p := range []Protocol{ProtoRingBFT, ProtoSharper, ProtoAHL} {
		res := smoke(t, p, 0.3)
		if res.Txns == 0 {
			t.Errorf("%s: no transactions with 30%% cross-shard", p)
		}
	}
}

func TestReplicatedBaselines(t *testing.T) {
	for _, p := range []Protocol{ProtoPBFT, ProtoZyzzyva, ProtoSBFT, ProtoPoE, ProtoHotStuff, ProtoRCC} {
		res, err := Run(Config{
			Protocol:         p,
			ReplicasPerShard: 4,
			BatchSize:        10,
			Clients:          4,
			ClientWindow:     2,
			Warmup:           150 * time.Millisecond,
			Duration:         400 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.Txns == 0 {
			t.Errorf("%s: committed nothing", p)
		}
	}
}
