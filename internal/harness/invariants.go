package harness

import (
	"ringbft/internal/evidence"
	"ringbft/internal/ledger"
	"ringbft/internal/store"
	"ringbft/internal/types"
)

// BlockRecord is one committed block's identity: its sequence number, the
// digest of the batch it commits, and the block's chaining hash. Two correct
// replicas of a shard must never disagree on the digest at a sequence
// number, and matching hashes imply matching committed prefixes.
type BlockRecord struct {
	Seq    types.SeqNum
	Digest types.Digest
	Hash   types.Digest
}

// ReplicaState is one replica's externally observable commit state, captured
// after its event loop has stopped. The chaos checkers compare these across
// replicas: safety violations (forks, divergent execution) are visible here
// no matter which fault schedule produced them.
type ReplicaState struct {
	ID types.NodeID
	// Base is the anchor the retained chain rests on: genesis, a pruned
	// boundary block, or a state-transfer boundary. The last kind is
	// synthetic (its Digest is the certified checkpoint digest, not a batch
	// digest), so Base is diagnostic only and never digest-compared.
	Base BlockRecord
	// Blocks is the retained chain above the base, in append order; every
	// entry is a really committed batch, comparable across replicas.
	Blocks []BlockRecord
	// Height is the chain height including pruned blocks.
	Height int
	// ChainOK records whether the chain's hash links and Merkle roots
	// verified at capture time.
	ChainOK bool
	// StateDigest is the snapshot-consistent digest of the replica's store.
	StateDigest types.Digest
	// ExecutedThrough is the replica's executed-prefix watermark: every
	// sequence at or below it has executed; retained blocks above it are
	// the (possibly out-of-order) executed suffix. Together they identify
	// the exact executed set, which is what determines the state.
	ExecutedThrough types.SeqNum
	// CrossOrder is the sequence of cross-shard batch digests in chain
	// order (the Theorem 6.2/6.3 agreement surface).
	CrossOrder []types.Digest
	// Executed maps executed batch digests to a hash of their results.
	Executed map[types.Digest]uint64
	// Evidence is the replica's misbehavior evidence log at capture time.
	// The accountability checker asserts every record accuses an actually
	// faulty node and every Byzantine fault left a record somewhere.
	Evidence []evidence.Record
}

// The accessors a node must expose to be capturable. All three sharded
// protocols implement them; AHL committee members (no ledger) do not.
type chainProvider interface{ Chain() *ledger.Chain }
type storeProvider interface{ Store() *store.KV }
type executedProvider interface {
	ExecutedResults() map[types.Digest]uint64
}
type watermarkProvider interface{ ExecutedThrough() types.SeqNum }
type evidenceProvider interface{ Evidence() *evidence.Log }

// CaptureReplica snapshots one node's commit state for invariant checking.
// ok is false for nodes that expose no ledger (e.g. the AHL reference
// committee). Call only after the node's event loop has stopped.
func CaptureReplica(id types.NodeID, n any) (ReplicaState, bool) {
	cp, ok := n.(chainProvider)
	if !ok {
		return ReplicaState{}, false
	}
	ch := cp.Chain()
	st := ReplicaState{
		ID:         id,
		Height:     ch.Height(),
		ChainOK:    ch.Verify() == nil,
		CrossOrder: ch.CrossOrder(),
	}
	for i, b := range ch.Blocks() {
		rec := BlockRecord{Seq: b.Seq, Digest: b.Digest, Hash: b.Hash()}
		if i == 0 {
			st.Base = rec
			continue
		}
		st.Blocks = append(st.Blocks, rec)
	}
	if sp, ok := n.(storeProvider); ok {
		st.StateDigest = sp.Store().Digest()
	}
	if ep, ok := n.(executedProvider); ok {
		st.Executed = ep.ExecutedResults()
	}
	if wp, ok := n.(watermarkProvider); ok {
		st.ExecutedThrough = wp.ExecutedThrough()
	}
	if vp, ok := n.(evidenceProvider); ok {
		st.Evidence = vp.Evidence().Records()
	}
	return st, true
}
