package harness

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"ringbft/internal/crypto"
	"ringbft/internal/types"
)

// ByzMode selects a Byzantine behaviour for one replica's outbound traffic.
type ByzMode int32

const (
	// ByzNone restores honest behaviour.
	ByzNone ByzMode = iota
	// ByzSilent drops every outbound message while the replica keeps
	// receiving — a primary that "goes dark" without crashing, so peers
	// must detect it through timers alone.
	ByzSilent
	// ByzEquivocate makes the replica send conflicting PrePrepares: odd-
	// index peers receive a modified batch, correctly re-MAC'd with the
	// replica's own keys, at the same (view, seq). Safety demands no two
	// honest replicas commit different digests at one sequence regardless.
	ByzEquivocate
	// ByzNewView appends a fabricated cross-shard re-proposal — carrying no
	// justification certificate — to every outbound NewView. The NewView
	// signature covers only the canonical tuple, so the message still
	// verifies; honest receivers must reject it at the justification gate
	// (and record evidence) rather than adopt the phantom batch.
	ByzNewView
)

// sendFunc is the protocol-agnostic shape of a node's outbound hook; it
// converts to ringbft.Sender / ahl.Sender / sharper.Sender.
type sendFunc func(to types.NodeID, m *types.Message)

// byzState is the per-node interceptor the nemesis flips at runtime. The
// wrapped send is installed at build time (only when Config.Nemesis is set,
// so non-chaos runs keep the direct send path).
type byzState struct {
	mode atomic.Int32
	auth crypto.Authenticator
	self types.NodeID
}

// wrap intercepts a node's outbound traffic according to the current mode.
func (b *byzState) wrap(inner sendFunc) sendFunc {
	return func(to types.NodeID, m *types.Message) {
		switch ByzMode(b.mode.Load()) {
		case ByzSilent:
			return
		case ByzEquivocate:
			if m.Type == types.MsgPrePrepare && m.Batch != nil && len(m.Batch.Txns) > 0 &&
				to.Kind == types.KindReplica && to.Index%2 == 1 {
				cp := *m
				cp.Batch = EquivocateBatch(m.Batch)
				cp.Digest = cp.Batch.Digest()
				var buf [types.SigBytesLen]byte
				cp.MAC = b.auth.MAC(to, cp.AppendSigBytes(buf[:0]))
				inner(to, &cp)
				return
			}
		case ByzNewView:
			if m.Type == types.MsgNewView {
				inner(to, ForgeUnjustifiedProof(b.self, m))
				return
			}
		default:
			// ByzNone: the interceptor is installed but dormant; traffic
			// passes through untouched below.
		}
		inner(to, m)
	}
}

// ForgeUnjustifiedProof returns a copy of NewView m with a fabricated
// cross-shard re-proposal appended: a phantom batch initiated by the
// previous shard (so the forger's shard cannot justify it as initiator),
// carrying no justification certificate, at a sequence above every honest
// re-proposal. The NewView signature covers only the canonical tuple
// (type/shard/view/seq/digest/from), so no re-signing is needed — which is
// exactly the gap the receiver-side justification gate closes. Non-NewView
// messages and shard-0 forgers (whose shard initiates every batch it could
// fabricate this way) pass through unchanged. Shared by the wall-clock
// interceptor above and the deterministic chaos engine (internal/chaos).
func ForgeUnjustifiedProof(self types.NodeID, m *types.Message) *types.Message {
	if m.Type != types.MsgNewView || self.Shard <= 0 {
		return m
	}
	evil := &types.Batch{
		Txns: []types.Txn{{
			ID:     types.TxnID{Client: 9999, Seq: uint64(m.View)},
			Reads:  []types.Key{types.Key(self.Shard - 1)},
			Writes: []types.Key{types.Key(self.Shard)},
			Delta:  7,
		}},
		Involved: []types.ShardID{self.Shard - 1, self.Shard},
	}
	seq := m.StableSeq
	for i := range m.Prepared {
		if m.Prepared[i].Seq > seq {
			seq = m.Prepared[i].Seq
		}
	}
	cp := *m
	cp.Prepared = append(append([]types.PreparedProof(nil), m.Prepared...), types.PreparedProof{
		View: m.View - 1, Seq: seq + 1, Digest: evil.Digest(), Batch: evil,
	})
	return &cp
}

// EquivocateBatch derives a conflicting but well-formed batch: same client
// transactions re-ordered (or, for a single-transaction batch, a tweaked
// delta), so its digest differs while every receiver-side well-formedness
// check still passes. Shared by the wall-clock interceptor above and the
// deterministic chaos engine (internal/chaos).
func EquivocateBatch(b *types.Batch) *types.Batch {
	alt := *b
	alt.Txns = append([]types.Txn(nil), b.Txns...)
	if len(alt.Txns) > 1 {
		alt.Txns[0], alt.Txns[len(alt.Txns)-1] = alt.Txns[len(alt.Txns)-1], alt.Txns[0]
	} else {
		alt.Txns[0].Delta++
	}
	return &alt
}

// interceptSend threads one node's outbound path through a Byzantine
// interceptor when a nemesis is configured; otherwise the raw fabric send
// is used unchanged. Must be called exactly once per node, in cl.nodes
// append order, so cl.byz indexes line up with cl.ids.
func (cl *cluster) interceptSend(cfg Config, id types.NodeID, a crypto.Authenticator, raw sendFunc) sendFunc {
	if cfg.Nemesis == nil {
		cl.byz = append(cl.byz, nil)
		return raw
	}
	bz := &byzState{auth: a, self: id}
	cl.byz = append(cl.byz, bz)
	return bz.wrap(raw)
}

// Nemesis is the fault-injection hook of one run: it executes alongside the
// workload (started when the measurement window opens) and drives faults
// through the Controller. It must return when ctx is cancelled.
type Nemesis func(ctx context.Context, ctl *Controller)

// Controller is the handle a Nemesis uses to break — and heal — the
// cluster: schedulable partitions, per-link loss and delay, crash/restart/
// wipe of individual replicas, and Byzantine primaries. All methods are safe
// for concurrent use with the running workload.
type Controller struct {
	cl *cluster
	rt *runtime

	mu       sync.Mutex
	lastHeal time.Duration // offset from measurement start of the latest heal
	started  time.Time     // measurement start
}

// Nodes returns the cluster's node ids in build order.
func (c *Controller) Nodes() []types.NodeID {
	return append([]types.NodeID(nil), c.cl.ids...)
}

// Shards and ReplicasPerShard describe the topology under test.
func (c *Controller) Shards() int           { return c.cl.cfg.Shards }
func (c *Controller) ReplicasPerShard() int { return c.cl.cfg.ReplicasPerShard }

// SetPartition installs f as the link-down predicate: messages from->to are
// dropped while f reports true. nil heals. Simnet fabric only (no-op over
// TCP).
func (c *Controller) SetPartition(f func(from, to types.NodeID) bool) {
	if sf, ok := c.cl.net.(simFabric); ok {
		sf.net.SetLinkFilter(f)
	}
	if f == nil {
		c.noteHeal()
	}
}

// SetLossFilter installs a per-link loss model (nil heals).
func (c *Controller) SetLossFilter(f func(from, to types.NodeID) float64) {
	if sf, ok := c.cl.net.(simFabric); ok {
		sf.net.SetLossFilter(f)
	}
	if f == nil {
		c.noteHeal()
	}
}

// SetDelayFilter installs a per-link extra-delay model (nil heals).
func (c *Controller) SetDelayFilter(f func(from, to types.NodeID) time.Duration) {
	if sf, ok := c.cl.net.(simFabric); ok {
		sf.net.SetDelayFilter(f)
	}
	if f == nil {
		c.noteHeal()
	}
}

// Crash stops node id: its event loop is cancelled and the fabric silences
// it both ways. Restart revives it.
func (c *Controller) Crash(id types.NodeID) { c.rt.crash(id) }

// Restart revives a crashed node. A node with durable state is rebuilt from
// it (wipe erases the data directory first, forcing the wipe-and-rejoin
// path); a node without a rebuild closure resumes its old in-memory
// instance.
func (c *Controller) Restart(id types.NodeID, wipe bool) {
	c.rt.restart(id, wipe)
	c.noteHeal()
}

// SetByzantine flips node id's outbound behaviour. ByzNone heals.
func (c *Controller) SetByzantine(id types.NodeID, mode ByzMode) {
	for i, nid := range c.cl.ids {
		if nid == id && i < len(c.cl.byz) && c.cl.byz[i] != nil {
			c.cl.byz[i].mode.Store(int32(mode))
		}
	}
	if mode == ByzNone {
		c.noteHeal()
	}
}

// HealAll clears partitions, loss, delay, and Byzantine modes (crashed
// nodes stay down until Restart).
func (c *Controller) HealAll() {
	if sf, ok := c.cl.net.(simFabric); ok {
		sf.net.SetLinkFilter(nil)
		sf.net.SetLossFilter(nil)
		sf.net.SetDelayFilter(nil)
	}
	for _, b := range c.cl.byz {
		if b != nil {
			b.mode.Store(int32(ByzNone))
		}
	}
	c.noteHeal()
}

// noteHeal records the instant of the latest healing action, reported in
// Result.NemesisLastHeal for liveness checking ("the cluster commits new
// batches within a bounded time after the last heal").
func (c *Controller) noteHeal() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.started.IsZero() {
		c.lastHeal = time.Since(c.started)
	}
}

func (c *Controller) lastHealOffset() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastHeal
}
