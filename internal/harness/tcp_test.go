package harness

import (
	"testing"
	"time"

	"ringbft/internal/leakcheck"
)

// The loopback-TCP scenario suite: the same cluster scenarios the simnet
// harness runs (commit, primary failure, crash-restart), but wired through
// real tcpnet transports on loopback sockets — actual dials, gob framing,
// write deadlines, redial backoff. These are the tests that would have
// caught the synchronous-dial event-loop stall: over simnet, Send was
// always an in-process enqueue, so the bug existed only in the one
// deployment mode (cmd/ringbft-node) nothing exercised.

func tcpScenarioConfig() Config {
	return Config{
		Protocol: ProtoRingBFT, Shards: 2, ReplicasPerShard: 4,
		TCP:       true,
		BatchSize: 10, CrossShardPct: 0.2, Clients: 4, ClientWindow: 2,
		Duration: 2 * time.Second, Warmup: 400 * time.Millisecond,
		StripeClients: true, Records: 40000,
		LocalTimeout: 400 * time.Millisecond, RemoteTimeout: 700 * time.Millisecond,
		TransmitTimeout: 1100 * time.Millisecond,
	}
}

// TestTCPCommit: the baseline scenario — a 2-shard cluster over real
// sockets commits single- and cross-shard batches.
func TestTCPCommit(t *testing.T) {
	leakcheck.Check(t)
	res, err := Run(tcpScenarioConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("result: %v, msgs=%d dropped=%d bytes=%d", res, res.MsgsSent, res.MsgsDropped, res.BytesSent)
	if res.Txns == 0 {
		t.Fatal("no transactions committed over TCP")
	}
	if res.BytesSent == 0 {
		t.Fatal("no bytes crossed the sockets — the cluster did not actually run over TCP")
	}
}

// TestTCPUnreachableReplicaCommits is the headline-bug acceptance scenario:
// one replica's address is unreachable (no connection to it ever delivers a
// byte, all run long), and the cluster must keep committing on schedule —
// every peer's Send must stay an enqueue-or-drop while its writer churns
// through connect/teardown/redial backoff. With the
// old synchronous-dial transport, each send to the dead address held the
// caller's event loop for up to the 3s dial timeout, stalling the timers
// that liveness under the paper's A1/C1/C2 attacks depends on.
func TestTCPUnreachableReplicaCommits(t *testing.T) {
	leakcheck.Check(t)
	cfg := tcpScenarioConfig()
	cfg.TCPUnreachable = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("result: %v, dropped=%d", res, res.MsgsDropped)
	if res.Txns == 0 {
		t.Fatal("cluster stopped committing because one replica was unreachable")
	}
	// Liveness must hold for the whole window, not just before the outbox
	// to the dead peer filled: the last quarter still commits.
	if len(res.Timeline) >= 8 {
		tail := int64(0)
		for _, v := range res.Timeline[len(res.Timeline)*3/4:] {
			tail += v
		}
		if tail == 0 {
			t.Fatalf("commits stopped mid-run: timeline %v", res.Timeline)
		}
	}
	// Messages to the unreachable replica pile up and overflow its outboxes
	// eventually; the drops must be counted, not silent.
	if res.MsgsDropped == 0 {
		t.Log("note: no drops counted (outboxes never filled in this window)")
	}
}

// TestTCPPrimaryFailure: the Fig 9 scenario over sockets — crash shard 0's
// primary mid-run, require a view change and resumed commits.
func TestTCPPrimaryFailure(t *testing.T) {
	leakcheck.Check(t)
	cfg := tcpScenarioConfig()
	cfg.Duration = 3 * time.Second
	cfg.FailPrimaries = 1
	cfg.FailAt = 800 * time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("result: %v", res)
	if res.Txns == 0 {
		t.Fatal("no transactions committed")
	}
	if slowHost(t, res) {
		return
	}
	if res.ViewChanges == 0 {
		t.Fatal("primary crash never triggered a view change over TCP")
	}
	if len(res.Timeline) >= 8 {
		tail := int64(0)
		for _, v := range res.Timeline[len(res.Timeline)*3/4:] {
			tail += v
		}
		if tail == 0 {
			t.Fatalf("no commits after the view change: timeline %v", res.Timeline)
		}
	}
}

// TestTCPCrashRestart: the durability scenario over sockets — a backup
// crashes, restarts from its WAL, and the transports on both sides redial
// through the restart.
func TestTCPCrashRestart(t *testing.T) {
	leakcheck.Check(t)
	cfg := tcpScenarioConfig()
	cfg.Duration = 3 * time.Second
	cfg.CheckpointInterval = 8
	cfg.Durable = true
	cfg.CrashRestart = true
	cfg.CrashAt = 800 * time.Millisecond
	cfg.RestartAt = 1600 * time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("result: %v, recovered=%d, stateTransfers=%d", res, res.RecoveredNodes, res.StateTransfers)
	if res.Txns == 0 {
		t.Fatal("no transactions committed")
	}
	if slowHost(t, res) {
		return
	}
	if res.RecoveredNodes == 0 {
		t.Fatal("restarted replica did not recover from durable state")
	}
}
