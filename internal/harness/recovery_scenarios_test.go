package harness

import (
	"testing"
	"time"
)

// The crash-restart scenarios extending fig9: a backup of shard 0 crashes
// mid-run and restarts, recovering over the full async stack (simulated
// WAN, real goroutines, timers). The deterministic equivalents with strict
// state-equality assertions live in internal/ringbft/recovery_test.go;
// here we assert the recovery paths engage and the cluster stays live.

func recoveryScenarioConfig() Config {
	return Config{
		Protocol: ProtoRingBFT, Shards: 2, ReplicasPerShard: 4,
		BatchSize: 10, CrossShardPct: 0.2, Clients: 6, ClientWindow: 2,
		Duration: 3 * time.Second, Warmup: 400 * time.Millisecond,
		LatencyScale: 0.02, StripeClients: true, Records: 40000,
		LocalTimeout: 400 * time.Millisecond, RemoteTimeout: 700 * time.Millisecond,
		TransmitTimeout:    1100 * time.Millisecond,
		CheckpointInterval: 8,
		Durable:            true,
		CrashRestart:       true,
		CrashAt:            800 * time.Millisecond,
		RestartAt:          1600 * time.Millisecond,
	}
}

// TestCrashRestartRecoversFromWAL: the restarted backup must come back
// through the durability subsystem (snapshot + WAL replay) and the cluster
// must keep committing throughout.
func TestCrashRestartRecoversFromWAL(t *testing.T) {
	res, err := Run(recoveryScenarioConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("result: %v, recovered=%d, stateTransfers=%d", res, res.RecoveredNodes, res.StateTransfers)
	if res.Txns == 0 {
		t.Fatal("no transactions committed")
	}
	if res.RecoveredNodes == 0 {
		t.Fatal("restarted replica did not recover from durable state")
	}
	// A backup crash must not cost liveness: the last quarter of the run
	// still commits.
	if len(res.Timeline) >= 8 {
		tail := int64(0)
		for _, v := range res.Timeline[len(res.Timeline)*3/4:] {
			tail += v
		}
		if tail == 0 {
			t.Fatalf("no commits after restart: timeline %v", res.Timeline)
		}
	}
}

// TestWipeRejoinRecoversViaStateTransfer: with the victim's data dir wiped
// while it is down, rejoining must go through checkpoint-certified peer
// state transfer.
func TestWipeRejoinRecoversViaStateTransfer(t *testing.T) {
	cfg := recoveryScenarioConfig()
	cfg.WipeOnRestart = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("result: %v, recovered=%d, stateTransfers=%d", res, res.RecoveredNodes, res.StateTransfers)
	if res.Txns == 0 {
		t.Fatal("no transactions committed")
	}
	if slowHost(t, res) {
		return
	}
	if res.StateTransfers == 0 {
		t.Fatal("wiped replica rejoined without a state transfer")
	}
}

// slowHost reports (and logs) when the wall-clock run committed too few
// sequences for the dead window to span a checkpoint interval — e.g. under
// -race instrumentation or on a heavily shared CI host. The state-transfer
// path assertions are meaningless then; the deterministic property tests
// in internal/ringbft/recovery_test.go pin the behaviour exactly.
func slowHost(t *testing.T, res Result) bool {
	t.Helper()
	if res.Txns < 400 {
		t.Logf("host too slow for the timing-based path assertion (%d txns); covered deterministically elsewhere", res.Txns)
		return true
	}
	return false
}

// TestInMemoryRestartCatchesUpViaStateTransfer: even without durability, a
// restarted (empty) replica is rescued by the state-transfer protocol — the
// paper's "replicas in the dark catch up" guarantee made concrete.
func TestInMemoryRestartCatchesUpViaStateTransfer(t *testing.T) {
	cfg := recoveryScenarioConfig()
	cfg.Durable = false
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("result: %v, stateTransfers=%d", res, res.StateTransfers)
	if res.Txns == 0 {
		t.Fatal("no transactions committed")
	}
	if slowHost(t, res) {
		return
	}
	if res.StateTransfers == 0 {
		t.Fatal("in-memory restarted replica never caught up via state transfer")
	}
}

// TestFig9RecoveryFigureSmoke regenerates the fig9-recovery figure at a
// compressed scale: three series (in-memory, wal-recovered,
// state-transfer), each with a live timeline.
func TestFig9RecoveryFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second figure generation")
	}
	p := Quick
	p.Shards = 2
	p.Clients = 9
	p.Duration = 400 * time.Millisecond
	fig, err := Fig9Recovery(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("fig9-recovery has %d series, want 3", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) == 0 {
			t.Fatalf("series %q is empty", s.Label)
		}
	}
	t.Logf("\n%s", fig.Render())
}
