package harness

import (
	"context"
	"sync"
	"testing"
	"time"

	"ringbft/internal/ringbft"
	"ringbft/internal/types"
)

// TestPrimaryCrashRecoversThroughput is the Fig 9 integration test: a
// primary crash mid-run must dent throughput, trigger view changes, and
// recover to the pre-crash level (clients re-target the new primary from
// the view carried in Response messages).
func TestPrimaryCrashRecoversThroughput(t *testing.T) {
	cfg := Config{
		Protocol: ProtoRingBFT, Shards: 3, ReplicasPerShard: 4,
		BatchSize: 10, CrossShardPct: 0, Clients: 6, ClientWindow: 2,
		Duration: 4 * time.Second, Warmup: 400 * time.Millisecond,
		LatencyScale: 0.02, StripeClients: true, Records: 40000,
		LocalTimeout: 400 * time.Millisecond, RemoteTimeout: 700 * time.Millisecond,
		TransmitTimeout: 1100 * time.Millisecond,
	}
	applyDefaults(&cfg)
	cl, err := build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.net.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i, n := range cl.nodes {
		wg.Add(1)
		go func(n node, in <-chan *types.Message) { defer wg.Done(); n.Run(ctx, in) }(n, cl.inboxes[i])
	}
	metrics := newMetrics()
	cctx, ccancel := context.WithCancel(ctx)
	var cwg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		cwg.Add(1)
		go func(c int) { defer cwg.Done(); runClient(cctx, cl, types.ClientID(c+1), metrics) }(c)
	}
	time.Sleep(cfg.Warmup)
	metrics.startMeasuring()
	time.Sleep(time.Second)
	cl.net.SetCrashed(types.ReplicaNode(0, 0), true)
	t.Log("crashed s0/r0")
	time.Sleep(3 * time.Second)
	metrics.stopMeasuring()
	ccancel()
	cwg.Wait()
	cancel()
	wg.Wait()
	res := metrics.result(cfg)
	t.Logf("timeline: %v", res.Timeline)

	// Shard 0's surviving replicas must have moved past view 0.
	vcSeen := false
	for i, n := range cl.nodes {
		r, ok := n.(*ringbft.Replica)
		if !ok || cl.ids[i].Shard != 0 || cl.ids[i].Index == 0 {
			continue
		}
		if r.Engine().View() > 0 {
			vcSeen = true
		}
	}
	if !vcSeen {
		t.Fatal("no view change at the crashed shard")
	}
	// Throughput must recover: the final quarter of the run commits at
	// least a third of the pre-crash rate.
	if len(res.Timeline) < 20 {
		t.Fatalf("timeline too short: %v", res.Timeline)
	}
	var pre, post int64
	preN := 10
	for _, v := range res.Timeline[:preN] {
		pre += v
	}
	tail := res.Timeline[len(res.Timeline)*3/4:]
	for _, v := range tail {
		post += v
	}
	preRate := float64(pre) / float64(preN)
	postRate := float64(post) / float64(len(tail))
	if postRate < preRate/3 {
		t.Fatalf("throughput did not recover: pre %.0f/bucket, post %.0f/bucket", preRate, postRate)
	}
}
