package harness

import (
	"os"
	"testing"

	"ringbft/internal/leakcheck"
)

// Every scenario here boots a full cluster — replica event loops, client
// drivers, the simulated WAN's timer goroutines, WAL sync loops. The leak
// gate runs once after the whole suite: a teardown path that strands one
// of those goroutines fails the binary with the stack, instead of
// surfacing as a flaky hang later.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.CheckMain(m))
}
