package harness

import (
	"ringbft/internal/simnet"
	"ringbft/internal/types"
)

// endpoint is one node's attachment to the cluster's message fabric.
type endpoint interface {
	Send(to types.NodeID, m *types.Message)
	Inbox() <-chan *types.Message
}

// fabric abstracts the message layer a cluster runs on: the simulated WAN
// (simnet, the default — latency models, bandwidth, loss) or real loopback
// TCP sockets (tcpnet, Config.TCP) where the kernel provides the only
// queueing and the transport's writer pipeline is what keeps event loops
// non-blocking. The scenario suite runs unchanged on either.
type fabric interface {
	Attach(id types.NodeID, region simnet.Region) endpoint
	// SetCrashed silences a node both ways: its sends are suppressed and
	// inbound messages are dropped before reaching its inbox.
	SetCrashed(id types.NodeID, down bool)
	Close()
	// fillStats copies fabric-level message counters into the run result.
	fillStats(res *Result)
}

// buildFabric selects the fabric for a run.
func buildFabric(cfg Config) fabric {
	if cfg.TCP {
		return newTCPFabric(cfg)
	}
	return simFabric{net: buildNetwork(cfg)}
}

// simFabric adapts *simnet.Network to the fabric interface.
type simFabric struct{ net *simnet.Network }

func (f simFabric) Attach(id types.NodeID, r simnet.Region) endpoint { return f.net.Attach(id, r) }
func (f simFabric) SetCrashed(id types.NodeID, down bool)            { f.net.SetCrashed(id, down) }
func (f simFabric) Close()                                           { f.net.Close() }

func (f simFabric) fillStats(res *Result) {
	res.MsgsSent = f.net.Stats.MsgsSent.Load()
	res.MsgsDropped = f.net.Stats.MsgsDropped.Load()
	res.BytesSent = f.net.Stats.BytesSent.Load()
	res.BytesCross = f.net.Stats.BytesCross.Load()
}
