package harness

import (
	"fmt"

	"ringbft/internal/ahl"
	"ringbft/internal/crypto"
	obs "ringbft/internal/metrics"
	"ringbft/internal/protocols"
	"ringbft/internal/ringbft"
	"ringbft/internal/sharper"
	"ringbft/internal/simnet"
	"ringbft/internal/types"
	"ringbft/internal/wal"
)

// build constructs the cluster for the configured protocol.
func build(cfg Config) (*cluster, error) {
	if cfg.Protocol.Replicated() {
		return buildReplicated(cfg)
	}
	net := buildFabric(cfg)
	tcfg := typesConfig(cfg)
	if err := tcfg.Validate(); err != nil {
		return nil, err
	}
	kg := crypto.NewKeygen(cfg.Seed)

	var allIDs []types.NodeID
	shardPeers := make([][]types.NodeID, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		peers := make([]types.NodeID, cfg.ReplicasPerShard)
		for i := 0; i < cfg.ReplicasPerShard; i++ {
			peers[i] = types.ReplicaNode(types.ShardID(s), i)
			allIDs = append(allIDs, peers[i])
		}
		shardPeers[s] = peers
	}
	var committee []types.NodeID
	if cfg.Protocol == ProtoAHL {
		committee = make([]types.NodeID, cfg.ReplicasPerShard)
		for i := range committee {
			committee[i] = types.CommitteeNode(i)
			allIDs = append(allIDs, committee[i])
		}
	}
	if !cfg.NoCrypto {
		for _, id := range allIDs {
			kg.Register(id)
		}
	}

	cl := &cluster{cfg: cfg, tcfg: tcfg, net: net}
	if cfg.Instrument {
		cl.reg = obs.NewRegistry()
	}
	attach := func(id types.NodeID, region simnet.Region) endpoint {
		return net.Attach(id, region)
	}

	switch cfg.Protocol {
	case ProtoRingBFT:
		if cfg.Durable {
			cl.fs = wal.NewMemFS()
		}
		for s := 0; s < cfg.Shards; s++ {
			region := simnet.ShardRegion(s)
			for i := 0; i < cfg.ReplicasPerShard; i++ {
				id := shardPeers[s][i]
				ep := attach(id, region)
				a, err := auth(cfg, kg, id)
				if err != nil {
					return nil, err
				}
				peers := shardPeers[s]
				send := cl.interceptSend(cfg, id, a, ep.Send)
				// Real transports expose outbox occupancy; the pipelined
				// primary clamps its window when writers fall behind.
				var backpressure func() int
				if bl, ok := ep.(interface{ Backlog() int }); ok {
					backpressure = bl.Backlog
				}
				// One tracer per node slot, shared with any respawn of the
				// same slot so a crash/restart keeps one contiguous span log.
				tr := cl.newTracer()
				mk := func() node {
					opts := ringbft.Options{
						Config: tcfg, Shard: id.Shard, Self: id,
						Peers: peers, Auth: a,
						Send:            ringbft.Sender(send),
						AllToAllForward: cfg.AllToAllForward,
						Backpressure:    backpressure,
						Metrics:         cl.reg, Tracer: tr,
					}
					if cl.fs != nil {
						// Errors here degrade to an in-memory replica; the
						// MemFS cannot actually fail.
						if m, rec, err := ringbft.OpenDurability(tcfg, id, cl.fs); err == nil {
							opts.Durability = m
							opts.Recovered = rec
						}
					}
					r := ringbft.New(opts)
					r.Preload(cfg.Records)
					return r
				}
				cl.nodes = append(cl.nodes, mk())
				cl.rebuild = append(cl.rebuild, mk)
				cl.inboxes = append(cl.inboxes, ep.Inbox())
				cl.ids = append(cl.ids, id)
			}
		}
		cl.route = func(_ types.ClientID, b *types.Batch) types.NodeID {
			return types.ReplicaNode(b.Initiator(), 0)
		}
		cl.fanout = func(b *types.Batch) []types.NodeID {
			return shardPeers[b.Initiator()]
		}

	case ProtoSharper:
		for s := 0; s < cfg.Shards; s++ {
			region := simnet.ShardRegion(s)
			for i := 0; i < cfg.ReplicasPerShard; i++ {
				id := shardPeers[s][i]
				ep := attach(id, region)
				a, err := auth(cfg, kg, id)
				if err != nil {
					return nil, err
				}
				r := sharper.New(sharper.Options{
					Config: tcfg, Shard: types.ShardID(s), Self: id,
					Peers: shardPeers[s], Auth: a,
					Send:    sharper.Sender(cl.interceptSend(cfg, id, a, ep.Send)),
					Metrics: cl.reg, Tracer: cl.newTracer(),
				})
				r.Preload(cfg.Records)
				cl.nodes = append(cl.nodes, r)
				cl.inboxes = append(cl.inboxes, ep.Inbox())
				cl.ids = append(cl.ids, id)
			}
		}
		cl.route = func(_ types.ClientID, b *types.Batch) types.NodeID {
			return types.ReplicaNode(b.Initiator(), 0)
		}
		cl.fanout = func(b *types.Batch) []types.NodeID {
			return shardPeers[b.Initiator()]
		}

	case ProtoAHL:
		// The reference committee is hosted in the first region (a single
		// location, which is exactly why it centralizes WAN traffic).
		for i, id := range committee {
			ep := attach(id, simnet.ShardRegion(0))
			a, err := auth(cfg, kg, id)
			if err != nil {
				return nil, err
			}
			r := ahl.NewCommittee(ahl.CommitteeOptions{
				Config: tcfg, Self: id, Peers: committee, Auth: a,
				Send:       ahl.Sender(cl.interceptSend(cfg, id, a, ep.Send)),
				ShardPeers: shardPeers,
				Metrics:    cl.reg, Tracer: cl.newTracer(),
			})
			_ = i
			cl.nodes = append(cl.nodes, r)
			cl.inboxes = append(cl.inboxes, ep.Inbox())
			cl.ids = append(cl.ids, id)
		}
		for s := 0; s < cfg.Shards; s++ {
			region := simnet.ShardRegion(s)
			for i := 0; i < cfg.ReplicasPerShard; i++ {
				id := shardPeers[s][i]
				ep := attach(id, region)
				a, err := auth(cfg, kg, id)
				if err != nil {
					return nil, err
				}
				r := ahl.NewReplica(ahl.ReplicaOptions{
					Config: tcfg, Shard: types.ShardID(s), Self: id,
					Peers: shardPeers[s], Committee: committee, Auth: a,
					Send:    ahl.Sender(cl.interceptSend(cfg, id, a, ep.Send)),
					Metrics: cl.reg, Tracer: cl.newTracer(),
				})
				r.Preload(cfg.Records)
				cl.nodes = append(cl.nodes, r)
				cl.inboxes = append(cl.inboxes, ep.Inbox())
				cl.ids = append(cl.ids, id)
			}
		}
		cl.route = func(_ types.ClientID, b *types.Batch) types.NodeID {
			if b.IsCrossShard() {
				return committee[0]
			}
			return types.ReplicaNode(b.Initiator(), 0)
		}
		cl.fanout = func(b *types.Batch) []types.NodeID {
			if b.IsCrossShard() {
				return committee
			}
			return shardPeers[b.Initiator()]
		}

	default:
		return nil, fmt.Errorf("harness: unknown protocol %q", cfg.Protocol)
	}
	return cl, nil
}

// buildReplicated constructs a single fully-replicated consensus group of
// ReplicasPerShard nodes running one of the Figure 1 baselines, replicas
// spread across the fifteen regions like the paper's geo-distributed
// deployment.
func buildReplicated(cfg Config) (*cluster, error) {
	cfg.Shards = 1
	cfg.CrossShardPct = 0
	net := buildFabric(cfg)
	tcfg := typesConfig(cfg)
	if err := tcfg.Validate(); err != nil {
		return nil, err
	}
	kg := crypto.NewKeygen(cfg.Seed)
	n := cfg.ReplicasPerShard
	peers := make([]types.NodeID, n)
	for i := 0; i < n; i++ {
		peers[i] = types.ReplicaNode(0, i)
		if !cfg.NoCrypto {
			kg.Register(peers[i])
		}
	}
	cl := &cluster{cfg: cfg, tcfg: tcfg, net: net}
	for i := 0; i < n; i++ {
		id := peers[i]
		ep := net.Attach(id, simnet.Region(i%int(simnet.NumRegions)))
		a, err := auth(cfg, kg, id)
		if err != nil {
			return nil, err
		}
		opts := protocols.Options{Config: tcfg, Self: id, Peers: peers, Auth: a, Send: ep.Send}
		var nd node
		switch cfg.Protocol {
		case ProtoPBFT:
			r := protocols.NewPBFT(opts)
			r.Preload(cfg.Records)
			nd = r
		case ProtoZyzzyva:
			r := protocols.NewZyzzyva(opts)
			r.Preload(cfg.Records)
			nd = r
		case ProtoSBFT:
			r := protocols.NewSBFT(opts)
			r.Preload(cfg.Records)
			nd = r
		case ProtoPoE:
			r := protocols.NewPoE(opts)
			r.Preload(cfg.Records)
			nd = r
		case ProtoHotStuff:
			r := protocols.NewHotStuff(opts)
			r.Preload(cfg.Records)
			nd = r
		case ProtoRCC:
			r := protocols.NewRCC(opts)
			r.Preload(cfg.Records)
			nd = r
		default:
			return nil, fmt.Errorf("harness: unknown baseline %q", cfg.Protocol)
		}
		cl.nodes = append(cl.nodes, nd)
		cl.inboxes = append(cl.inboxes, ep.Inbox())
		cl.ids = append(cl.ids, id)
	}
	switch cfg.Protocol {
	case ProtoRCC:
		// Multi-primary: clients spread load across every replica.
		cl.route = func(c types.ClientID, _ *types.Batch) types.NodeID {
			return peers[int(c)%n]
		}
	default:
		cl.route = func(types.ClientID, *types.Batch) types.NodeID { return peers[0] }
	}
	cl.fanout = func(*types.Batch) []types.NodeID { return peers }
	switch cfg.Protocol {
	case ProtoZyzzyva:
		cl.respNeed = n // all 3f+1 speculative responses must match
	case ProtoPoE:
		cl.respNeed = n - (n-1)/3 // nf matching speculative responses
	}
	return cl, nil
}
