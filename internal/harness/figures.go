package harness

import (
	"fmt"
	"strings"
	"time"
)

// Point is one x-position of a figure series.
type Point struct {
	X          float64
	Throughput float64 // txn/s
	LatencyMS  float64
	Result     Result
}

// Series is one protocol's line in a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a reproduction of one of the paper's plots: the same series
// over the same (possibly scaled) x-axis, as printable rows.
type Figure struct {
	ID     string // "fig1", "fig8-I/II", ...
	Title  string
	XLabel string
	Series []Series
}

// Render formats the figure as an aligned text table: one row per x value,
// one throughput and latency column pair per series.
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " | %18s", s.Label+" tput")
		fmt.Fprintf(&b, " %12s", "lat(ms)")
	}
	b.WriteByte('\n')
	if len(f.Series) == 0 {
		return b.String()
	}
	for i := range f.Series[0].Points {
		fmt.Fprintf(&b, "%-12.0f", f.Series[0].Points[i].X)
		for _, s := range f.Series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, " | %18.0f %12.1f", s.Points[i].Throughput, s.Points[i].LatencyMS)
			} else {
				fmt.Fprintf(&b, " | %18s %12s", "-", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Profile scales an experiment suite to its runtime budget. Quick keeps
// go-test benchmarks in seconds; Full is the cmd/ringbft-bench default and
// runs minutes-long sweeps closer to the paper's configurations.
type Profile struct {
	Name             string
	Shards           int // maximum shard count used by sweeps
	ReplicasPerShard int
	Records          int   // active records per shard (paper: 600k total)
	ReplicaSweep     []int // x values for Fig 1 / Fig 8(III)
	ShardSweep       []int
	BatchSweep       []int
	ClientSweep      []int
	InvolvedSweep    []int
	BatchSize        int
	Clients          int
	ClientWindow     int
	Duration         time.Duration
	Warmup           time.Duration
	LatencyScale     float64
	BandwidthBps     float64
	ProcTime         time.Duration
	NoCrypto         bool
	Seed             int64
}

// Quick is the profile used by bench_test.go: small clusters, compressed
// WAN, sub-second measurement windows. Shapes, not absolute numbers.
var Quick = Profile{
	Name:             "quick",
	Shards:           5,
	ReplicasPerShard: 4,
	ReplicaSweep:     []int{4, 7, 10},
	ShardSweep:       []int{2, 3, 4, 5},
	BatchSweep:       []int{5, 20, 50, 100},
	ClientSweep:      []int{2, 4, 8, 12},
	InvolvedSweep:    []int{1, 2, 3, 4},
	BatchSize:        20,
	Records:          40000,
	Clients:          64,
	ClientWindow:     16,
	Duration:         900 * time.Millisecond,
	Warmup:           300 * time.Millisecond,
	LatencyScale:     0.02,
	BandwidthBps:     200e6,
	ProcTime:         50 * time.Microsecond,
	Seed:             1,
}

// Full is the cmd/ringbft-bench default: larger clusters and longer
// windows (minutes per figure). Still scaled below the paper's 420-node
// GCP deployment — the simulator runs on one machine.
var Full = Profile{
	Name:             "full",
	Shards:           15,
	ReplicasPerShard: 7,
	ReplicaSweep:     []int{4, 7, 10, 13},
	ShardSweep:       []int{3, 5, 7, 9, 11, 15},
	BatchSweep:       []int{10, 50, 100, 500, 1000},
	ClientSweep:      []int{4, 8, 16, 24, 32},
	InvolvedSweep:    []int{1, 3, 6, 9, 15},
	BatchSize:        100,
	Records:          40000,
	Clients:          48,
	ClientWindow:     8,
	Duration:         3 * time.Second,
	Warmup:           time.Second,
	LatencyScale:     0.05,
	BandwidthBps:     200e6,
	ProcTime:         20 * time.Microsecond,
	Seed:             1,
}

// BaseConfig derives a harness Config from the profile (exported so root
// benchmarks can build custom sweeps on a profile's settings).
func (p Profile) BaseConfig() Config {
	return Config{
		Shards:           p.Shards,
		ReplicasPerShard: p.ReplicasPerShard,
		BatchSize:        p.BatchSize,
		Records:          p.Records,
		StripeClients:    true,
		Clients:          p.Clients,
		ClientWindow:     p.ClientWindow,
		Duration:         p.Duration,
		Warmup:           p.Warmup,
		LatencyScale:     p.LatencyScale,
		BandwidthBps:     p.BandwidthBps,
		ProcTime:         p.ProcTime,
		NoCrypto:         p.NoCrypto,
		Seed:             p.Seed,
		// Saturation sweeps are fault-free: keep timers far above the
		// congested latencies so watchdogs do not misfire (the paper's
		// baselines reach tens of seconds of latency; Fig 9 sets its own).
		LocalTimeout:    3 * time.Second,
		RemoteTimeout:   6 * time.Second,
		TransmitTimeout: 12 * time.Second,
	}
}

func point(x float64, r Result) Point {
	return Point{
		X:          x,
		Throughput: r.Throughput,
		LatencyMS:  float64(r.AvgLatency) / float64(time.Millisecond),
		Result:     r,
	}
}

// sweep runs cfg once per x after mutate(x) and collects points.
func sweep(base Config, xs []int, mutate func(*Config, int)) ([]Point, error) {
	var pts []Point
	for _, x := range xs {
		cfg := base
		mutate(&cfg, x)
		res, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		pts = append(pts, point(float64(x), res))
	}
	return pts, nil
}

// Fig1 reproduces Figure 1: throughput of the fully-replicated
// single-primary protocols and of RingBFT (9 shards in the paper, scaled to
// the profile's shard count) at increasing replicas per group/shard, with
// 0% (RingBFT) and 15% (RingBFT_X) cross-shard transactions.
func Fig1(p Profile) (Figure, error) {
	fig := Figure{ID: "fig1", Title: "Scalability of BFT protocols", XLabel: "nodes/shard"}
	for _, proto := range []Protocol{ProtoPBFT, ProtoZyzzyva, ProtoSBFT, ProtoPoE, ProtoHotStuff, ProtoRCC} {
		pts, err := sweep(p.BaseConfig(), p.ReplicaSweep, func(c *Config, n int) {
			c.Protocol = proto
			c.ReplicasPerShard = n
			c.Shards = 1
		})
		if err != nil {
			return fig, fmt.Errorf("fig1 %s: %w", proto, err)
		}
		fig.Series = append(fig.Series, Series{Label: string(proto), Points: pts})
	}
	for _, v := range []struct {
		label string
		cross float64
	}{{"ringbft", 0}, {"ringbft-x", 0.15}} {
		pts, err := sweep(p.BaseConfig(), p.ReplicaSweep, func(c *Config, n int) {
			c.Protocol = ProtoRingBFT
			c.ReplicasPerShard = n
			c.Shards = p.Shards
			c.CrossShardPct = v.cross
			c.InvolvedShards = p.Shards
		})
		if err != nil {
			return fig, fmt.Errorf("fig1 %s: %w", v.label, err)
		}
		fig.Series = append(fig.Series, Series{Label: v.label, Points: pts})
	}
	return fig, nil
}

// shardedSweep runs the three sharding protocols over xs. The client
// population scales with the shard count so every configuration stays at
// saturation (the paper's 50k clients saturate every setting).
func shardedSweep(fig Figure, p Profile, xs []int, mutate func(*Config, int)) (Figure, error) {
	for _, proto := range []Protocol{ProtoRingBFT, ProtoSharper, ProtoAHL} {
		pts, err := sweep(p.BaseConfig(), xs, func(c *Config, x int) {
			c.Protocol = proto
			c.CrossShardPct = 0.3
			c.InvolvedShards = c.Shards
			mutate(c, x)
			if c.Shards > 3 {
				c.Clients = c.Clients * c.Shards / 3
			}
		})
		if err != nil {
			return fig, fmt.Errorf("%s %s: %w", fig.ID, proto, err)
		}
		fig.Series = append(fig.Series, Series{Label: string(proto), Points: pts})
	}
	return fig, nil
}

// Fig8Shards reproduces Fig 8 (I)/(II): scaling the number of shards with
// 30% cross-shard transactions touching every shard.
func Fig8Shards(p Profile) (Figure, error) {
	fig := Figure{ID: "fig8-I/II", Title: "Impact of number of shards", XLabel: "shards"}
	return shardedSweep(fig, p, p.ShardSweep, func(c *Config, z int) {
		c.Shards = z
		c.InvolvedShards = z
	})
}

// Fig8Replicas reproduces Fig 8 (III)/(IV): scaling replicas per shard.
func Fig8Replicas(p Profile) (Figure, error) {
	fig := Figure{ID: "fig8-III/IV", Title: "Impact of replicas per shard", XLabel: "replicas"}
	return shardedSweep(fig, p, p.ReplicaSweep, func(c *Config, n int) {
		c.ReplicasPerShard = n
	})
}

// Fig8CrossRate reproduces Fig 8 (V)/(VI): varying the percentage of
// cross-shard transactions.
func Fig8CrossRate(p Profile) (Figure, error) {
	fig := Figure{ID: "fig8-V/VI", Title: "Impact of cross-shard workload rate", XLabel: "cross %"}
	return shardedSweep(fig, p, []int{0, 5, 10, 15, 30, 60, 100}, func(c *Config, pct int) {
		c.CrossShardPct = float64(pct) / 100
	})
}

// Fig8BatchSize reproduces Fig 8 (VII)/(VIII): varying the batch size.
func Fig8BatchSize(p Profile) (Figure, error) {
	fig := Figure{ID: "fig8-VII/VIII", Title: "Impact of batch size", XLabel: "batch"}
	return shardedSweep(fig, p, p.BatchSweep, func(c *Config, b int) {
		c.BatchSize = b
	})
}

// Fig8Involved reproduces Fig 8 (IX)/(X): varying the number of involved
// shards per cross-shard transaction (consecutive shards, total fixed).
func Fig8Involved(p Profile) (Figure, error) {
	fig := Figure{ID: "fig8-IX/X", Title: "Impact of involved shards", XLabel: "involved"}
	return shardedSweep(fig, p, p.InvolvedSweep, func(c *Config, k int) {
		if k <= 1 {
			c.CrossShardPct = 0
			c.InvolvedShards = 2
			return
		}
		c.CrossShardPct = 1.0
		c.InvolvedShards = k
	})
}

// Fig8Clients reproduces Fig 8 (XI)/(XII): varying the number of clients
// (in-flight transactions).
func Fig8Clients(p Profile) (Figure, error) {
	fig := Figure{ID: "fig8-XI/XII", Title: "Impact of in-flight transactions", XLabel: "clients"}
	return shardedSweep(fig, p, p.ClientSweep, func(c *Config, k int) {
		c.Clients = k
	})
}

// Fig9 reproduces Figure 9: RingBFT throughput over time while the
// primaries of the first third of the shards fail mid-run; the series is
// committed transactions per 100ms bucket.
func Fig9(p Profile) (Result, error) {
	cfg := p.BaseConfig()
	cfg.Protocol = ProtoRingBFT
	cfg.CrossShardPct = 0.3
	cfg.InvolvedShards = cfg.Shards
	cfg.Duration = 6 * cfg.Duration
	cfg.FailPrimaries = (cfg.Shards + 2) / 3
	cfg.FailAt = cfg.Duration / 4
	// Run below saturation so commit latency sits well under the local
	// timeout: the local timer must distinguish a crashed primary from
	// ordinary queueing, exactly as in the paper's deployment (their
	// timeouts are calibrated to steady-state latency).
	cfg.Clients = p.Clients / 3
	cfg.ClientWindow = 2
	cfg.LocalTimeout = 400 * time.Millisecond
	cfg.RemoteTimeout = 700 * time.Millisecond
	cfg.TransmitTimeout = 1100 * time.Millisecond
	return Run(cfg)
}

// Fig9Recovery extends the Fig 9 fault scenario to replica recovery: a
// backup of shard 0 crashes a quarter into the run and restarts at the
// midpoint under three regimes — in-memory (restarts empty; only peer
// state transfer can catch it up), WAL-recovered (restarts from its
// segmented log + snapshots), and wipe-and-rejoin (durable, but the data
// dir is erased, forcing checkpoint-certified state transfer). Each series
// is committed txns per 100ms bucket; the terminal StateTransfers counter
// distinguishes the recovery paths.
func Fig9Recovery(p Profile) (Figure, error) {
	base := p.BaseConfig()
	base.Protocol = ProtoRingBFT
	base.CrossShardPct = 0.3
	base.InvolvedShards = min(2, base.Shards)
	base.Duration = 6 * p.Duration
	base.Clients = p.Clients / 3
	base.ClientWindow = 2
	base.LocalTimeout = 400 * time.Millisecond
	base.RemoteTimeout = 700 * time.Millisecond
	base.TransmitTimeout = 1100 * time.Millisecond
	base.CheckpointInterval = 8
	base.CrashRestart = true
	base.CrashAt = base.Duration / 4
	base.RestartAt = base.Duration / 2

	variants := []struct {
		label   string
		durable bool
		wipe    bool
	}{
		{"in-memory", false, false},
		{"wal-recovered", true, false},
		{"state-transfer", true, true},
	}
	fig := Figure{ID: "fig9-recovery", Title: "Replica crash-restart recovery", XLabel: "bucket(100ms)"}
	for _, v := range variants {
		cfg := base
		cfg.Durable = v.durable
		cfg.WipeOnRestart = v.wipe
		res, err := Run(cfg)
		if err != nil {
			return fig, err
		}
		s := Series{Label: fmt.Sprintf("%s(st=%d)", v.label, res.StateTransfers)}
		for b, txns := range res.Timeline {
			s.Points = append(s.Points, Point{X: float64(b), Throughput: float64(txns) * 10, Result: res})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig10 reproduces Figure 10: RingBFT throughput and latency for complex
// cross-shard transactions with 0..64 remote-read dependencies.
func Fig10(p Profile) (Figure, error) {
	fig := Figure{ID: "fig10", Title: "Impact of remote reads (complex cst)", XLabel: "remote reads"}
	pts, err := sweep(p.BaseConfig(), []int{0, 8, 16, 32, 48, 64}, func(c *Config, k int) {
		c.Protocol = ProtoRingBFT
		c.CrossShardPct = 1.0
		c.InvolvedShards = c.Shards
		c.RemoteReads = k
	})
	if err != nil {
		return fig, err
	}
	fig.Series = append(fig.Series, Series{Label: "ringbft", Points: pts})
	return fig, nil
}

// AblationLinearForward compares RingBFT's linear communication primitive
// with naive all-to-all shard-to-shard forwarding (DESIGN.md §5).
func AblationLinearForward(p Profile) (Figure, error) {
	fig := Figure{ID: "ablation-linear", Title: "Linear vs all-to-all Forward", XLabel: "shards"}
	for _, v := range []struct {
		label    string
		allToAll bool
	}{{"linear", false}, {"all-to-all", true}} {
		pts, err := sweep(p.BaseConfig(), p.ShardSweep, func(c *Config, z int) {
			c.Protocol = ProtoRingBFT
			c.Shards = z
			c.InvolvedShards = z
			c.CrossShardPct = 0.3
			c.AllToAllForward = v.allToAll
		})
		if err != nil {
			return fig, err
		}
		fig.Series = append(fig.Series, Series{Label: v.label, Points: pts})
	}
	return fig, nil
}

// AblationExecWorkers compares sequential batch execution against the
// dependency-aware parallel executor (internal/sched) at increasing worker
// counts, on large single-shard batches where intra-batch parallelism is
// the whole story. Raw executor speedups are reported by
// BenchmarkExecuteBatch in internal/sched; this figure shows how much of
// that survives end-to-end, behind consensus and the simulated WAN.
func AblationExecWorkers(p Profile) (Figure, error) {
	fig := Figure{ID: "ablation-exec", Title: "Sequential vs parallel batch execution", XLabel: "exec workers"}
	pts, err := sweep(p.BaseConfig(), []int{0, 2, 4, 8}, func(c *Config, w int) {
		c.Protocol = ProtoRingBFT
		c.CrossShardPct = 0
		c.BatchSize = 4 * p.BatchSize
		c.ExecWorkers = w
	})
	if err != nil {
		return fig, err
	}
	fig.Series = append(fig.Series, Series{Label: "ringbft", Points: pts})
	return fig, nil
}

// AblationCrypto isolates authentication cost (DESIGN.md §5) across three
// settings: the paper's MAC+DS mix verified serially, the same mix on the
// crypto fast path (cached MAC keys are always on; VerifyWorkers adds the
// batched certificate verifier pool), and signatures off entirely (NopAuth,
// the theoretical ceiling).
func AblationCrypto(p Profile) (Figure, error) {
	fig := Figure{ID: "ablation-crypto", Title: "Crypto mix: serial vs fast path vs none", XLabel: "shards"}
	for _, v := range []struct {
		label   string
		off     bool
		workers int
	}{{"mac+ds serial", false, 0}, {"mac+ds fastpath", false, 4}, {"nocrypto", true, 0}} {
		pts, err := sweep(p.BaseConfig(), p.ShardSweep, func(c *Config, z int) {
			c.Protocol = ProtoRingBFT
			c.Shards = z
			c.InvolvedShards = z
			c.CrossShardPct = 0.3
			c.NoCrypto = v.off
			c.VerifyWorkers = v.workers
		})
		if err != nil {
			return fig, err
		}
		fig.Series = append(fig.Series, Series{Label: v.label, Points: pts})
	}
	return fig, nil
}
