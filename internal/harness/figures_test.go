package harness

import (
	"strings"
	"testing"
)

func TestFigureRender(t *testing.T) {
	fig := Figure{
		ID: "test", Title: "Example", XLabel: "x",
		Series: []Series{
			{Label: "a", Points: []Point{{X: 1, Throughput: 100, LatencyMS: 2.5}, {X: 2, Throughput: 200, LatencyMS: 5}}},
			{Label: "b", Points: []Point{{X: 1, Throughput: 50, LatencyMS: 9}}},
		},
	}
	out := fig.Render()
	for _, want := range []string{"test", "Example", "a tput", "b tput", "100", "2.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered figure missing %q:\n%s", want, out)
		}
	}
	// Ragged series render placeholders, not panic.
	if !strings.Contains(out, "-") {
		t.Fatal("missing placeholder for short series")
	}
	empty := Figure{ID: "e", Title: "none", XLabel: "x"}
	if empty.Render() == "" {
		t.Fatal("empty figure should still render a header")
	}
}

func TestProfileBaseConfigSane(t *testing.T) {
	for _, p := range []Profile{Quick, Full} {
		cfg := p.BaseConfig()
		applyDefaults(&cfg)
		if cfg.Shards < 2 || cfg.ReplicasPerShard < 4 {
			t.Fatalf("%s profile builds an invalid cluster shape", p.Name)
		}
		if cfg.LocalTimeout >= cfg.RemoteTimeout || cfg.RemoteTimeout >= cfg.TransmitTimeout {
			t.Fatalf("%s profile violates timer ordering local < remote < transmit", p.Name)
		}
	}
}

func TestRunRejectsUnknownProtocol(t *testing.T) {
	if _, err := Run(Config{Protocol: "nonsense"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}
