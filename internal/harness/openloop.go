package harness

import (
	"context"
	"math/rand"
	"time"

	"ringbft/internal/simnet"
	"ringbft/internal/trace"
	"ringbft/internal/types"
	"ringbft/internal/workload"
)

// Open-loop latency experiment: batches arrive on a Poisson process at a
// fixed offered rate, independent of completions. Unlike the closed-loop
// clients of Run (whose window throttles arrivals to the system's pace,
// hiding queueing delay), an open-loop generator exposes the latency the
// system imposes at a given load — the methodology behind every
// latency-vs-throughput curve in the paper's evaluation. The cluster runs
// instrumented, so each point also reports the per-phase consensus
// breakdown (pre-prepare, prepare, commit, execute) from the trace layer.

// PhaseLatency summarizes one latency distribution of an open-loop point.
type PhaseLatency struct {
	P50Ms   float64 `json:"p50_ms"`
	P99Ms   float64 `json:"p99_ms"`
	Samples int     `json:"samples"`
}

func phaseLatency(ds []time.Duration) PhaseLatency {
	return PhaseLatency{
		P50Ms:   float64(trace.Quantile(ds, 0.50)) / float64(time.Millisecond),
		P99Ms:   float64(trace.Quantile(ds, 0.99)) / float64(time.Millisecond),
		Samples: len(ds),
	}
}

// OpenLoopPoint is one offered-load point of a sweep.
type OpenLoopPoint struct {
	OfferedTps    float64                 `json:"offered_tps"`
	OfferedTxns   int64                   `json:"offered_txns"`
	CommittedTxns int64                   `json:"committed_txns"`
	CommittedTps  float64                 `json:"committed_tps"`
	E2E           PhaseLatency            `json:"e2e"`
	Phases        map[string]PhaseLatency `json:"phases"`
	StalledSpans  int                     `json:"stalled_spans"`
}

// OpenLoopDoc is the JSON document ringbft-bench -openloop emits and
// ringbft-benchmerge consolidates into the benchmark trajectory.
type OpenLoopDoc struct {
	Protocol         string `json:"protocol"`
	Shards           int    `json:"shards"`
	ReplicasPerShard int    `json:"replicas_per_shard"`
	BatchSize        int    `json:"batch_size"`
	// PipelineDepth is the in-flight proposal bound the sweep ran under
	// (0 = legacy unbounded drain); it names the series in the
	// consolidated trajectory so depth-1 and depth-8 sweeps coexist.
	PipelineDepth int `json:"pipeline_depth"`
	// ClientBatch is the per-request transaction count offered by the
	// generator (0 = BatchSize, i.e. one request per consensus batch).
	ClientBatch   int             `json:"client_batch,omitempty"`
	CrossShardPct float64         `json:"cross_shard_pct"`
	Seed          int64           `json:"seed"`
	Points        []OpenLoopPoint `json:"points"`
}

// RunOpenLoop drives one instrumented cluster with a Poisson arrival
// process offering rate txns/s and reports committed throughput plus
// end-to-end and per-phase latency quantiles.
func RunOpenLoop(cfg Config, rate float64) (OpenLoopPoint, error) {
	applyDefaults(&cfg)
	cfg.Instrument = true
	cl, err := build(cfg)
	if err != nil {
		return OpenLoopPoint{}, err
	}
	defer cl.net.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rt := newRuntime(ctx, cl)
	for i := range cl.nodes {
		rt.start(i)
	}

	point := runOpenLoopGen(cl, rate)
	cancel()
	rt.wg.Wait()

	var res Result
	collectObservability(cl, &res)
	bd := trace.Breakdown(res.TraceEvents)
	point.Phases = map[string]PhaseLatency{
		"pre-prepare": phaseLatency(bd[trace.PhasePrePrepare]),
		"prepare":     phaseLatency(bd[trace.PhasePrepare]),
		"commit":      phaseLatency(bd[trace.PhaseCommit]),
		"execute":     phaseLatency(bd[trace.PhaseExecute]),
	}
	for _, n := range trace.Stalled(res.TraceEvents) {
		point.StalledSpans += n
	}
	return point, nil
}

// RunOpenLoopSweep runs one open-loop point per offered rate (txns/s).
func RunOpenLoopSweep(cfg Config, rates []float64) (OpenLoopDoc, error) {
	applyDefaults(&cfg)
	doc := OpenLoopDoc{
		Protocol:         string(cfg.Protocol),
		Shards:           cfg.Shards,
		ReplicasPerShard: cfg.ReplicasPerShard,
		BatchSize:        cfg.BatchSize,
		PipelineDepth:    cfg.PipelineDepth,
		ClientBatch:      cfg.ClientBatch,
		CrossShardPct:    cfg.CrossShardPct,
		Seed:             cfg.Seed,
	}
	for _, r := range rates {
		p, err := RunOpenLoop(cfg, r)
		if err != nil {
			return doc, err
		}
		p.OfferedTps = r
		doc.Points = append(doc.Points, p)
	}
	return doc, nil
}

// runOpenLoopGen is the arrival/completion loop: exponential inter-arrival
// times at rate/ClientBatch requests per second (ClientBatch defaults to
// BatchSize), fire-and-forget sends, f+1 matching responses complete a
// request. Arrivals never wait on completions;
// a short drain after the window lets in-flight measured batches land.
func runOpenLoopGen(cl *cluster, rate float64) OpenLoopPoint {
	cfg := cl.cfg
	clientBatch := cfg.ClientBatch
	if clientBatch <= 0 {
		clientBatch = cfg.BatchSize
	}
	gen := workload.New(workload.Config{
		Shards:         cfg.Shards,
		ActiveRecords:  cfg.Records,
		CrossShardPct:  cfg.CrossShardPct,
		InvolvedShards: cfg.InvolvedShards,
		BatchSize:      clientBatch,
		RemoteReads:    cfg.RemoteReads,
		Zipf:           cfg.Zipf,
		Seed:           cfg.Seed + 7919,
	})
	const id types.ClientID = 1
	self := types.ClientNode(id)
	ep := cl.net.Attach(self, simnet.Region(0))
	rng := rand.New(rand.NewSource(cfg.Seed*31 + 17))

	need := cl.respNeed
	if need <= 0 {
		need = (cfg.ReplicasPerShard-1)/3 + 1
	}
	batchRate := rate / float64(clientBatch)
	interarrival := func() time.Duration {
		return time.Duration(rng.ExpFloat64() / batchRate * float64(time.Second))
	}

	type flight struct {
		batch    *types.Batch
		started  time.Time
		sentAt   time.Time
		measured bool
		votes    map[types.NodeID]struct{}
	}
	inflight := make(map[types.Digest]*flight)

	var point OpenLoopPoint
	var latencies []time.Duration
	measuring := false
	launch := func() {
		b := gen.NextBatch(id)
		d := b.Digest()
		now := time.Now()
		inflight[d] = &flight{batch: b, started: now, sentAt: now, measured: measuring, votes: make(map[types.NodeID]struct{})}
		if measuring {
			point.OfferedTxns += int64(len(b.Txns))
		}
		ep.Send(cl.route(id, b), &types.Message{
			Type: types.MsgClientRequest, From: self, Batch: b, Digest: d,
		})
	}

	timeout := cfg.LocalTimeout * 2
	retick := time.NewTicker(timeout / 2)
	defer retick.Stop()
	arrival := time.NewTimer(interarrival())
	defer arrival.Stop()

	warmupEnd := time.After(cfg.Warmup)
	var windowEnd, drainEnd <-chan time.Time
	var start, end time.Time
	draining := false

	for {
		select {
		case <-warmupEnd:
			warmupEnd = nil
			measuring = true
			start = time.Now()
			windowEnd = time.After(cfg.Duration)
		case <-windowEnd:
			windowEnd = nil
			measuring = false
			end = time.Now()
			draining = true
			drainEnd = time.After(timeout)
		case <-drainEnd:
			elapsed := end.Sub(start)
			if elapsed <= 0 {
				elapsed = cfg.Duration
			}
			point.CommittedTps = float64(point.CommittedTxns) / elapsed.Seconds()
			point.E2E = phaseLatency(latencies)
			return point
		case <-arrival.C:
			if !draining {
				launch()
			}
			arrival.Reset(interarrival())
		case msg := <-ep.Inbox():
			if msg.Type != types.MsgResponse {
				continue
			}
			fl, ok := inflight[msg.Digest]
			if !ok {
				continue
			}
			fl.votes[msg.From] = struct{}{}
			if len(fl.votes) < need {
				continue
			}
			delete(inflight, msg.Digest)
			if fl.measured {
				point.CommittedTxns += int64(len(fl.batch.Txns))
				latencies = append(latencies, time.Since(fl.started))
			}
		case <-retick.C:
			// Rebroadcast starved batches (lost requests, deposed primaries)
			// so one drop does not strand a span forever; the retransmission
			// keeps its original start time, so queueing delay stays visible.
			now := time.Now()
			for _, d := range types.SortedDigestKeys(inflight) {
				fl := inflight[d]
				if now.Sub(fl.sentAt) > timeout {
					fl.sentAt = now
					msg := &types.Message{
						Type: types.MsgClientRequest, From: self,
						Batch: fl.batch, Digest: d,
					}
					for _, to := range cl.fanout(fl.batch) {
						ep.Send(to, msg)
					}
				}
			}
		}
	}
}
