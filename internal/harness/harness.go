// Package harness builds complete clusters (shards × replicas + clients) on
// the simulated WAN (package simnet), drives timed workloads against them,
// and collects the metrics the paper's evaluation reports: throughput
// (client-confirmed transactions per second), average latency, message and
// byte counts, view changes, and a throughput timeline for the
// primary-failure experiment (Fig 9).
package harness

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ringbft/internal/crypto"
	obs "ringbft/internal/metrics"
	"ringbft/internal/simnet"
	"ringbft/internal/trace"
	"ringbft/internal/types"
	"ringbft/internal/wal"
	"ringbft/internal/workload"
)

// Protocol identifies the system under test.
type Protocol string

// The three sharding protocols of the paper's evaluation, plus the
// fully-replicated single-primary baselines of Figure 1 (which run one
// consensus group: Shards is forced to 1).
const (
	ProtoRingBFT Protocol = "ringbft"
	ProtoAHL     Protocol = "ahl"
	ProtoSharper Protocol = "sharper"

	ProtoPBFT     Protocol = "pbft"
	ProtoZyzzyva  Protocol = "zyzzyva"
	ProtoSBFT     Protocol = "sbft"
	ProtoPoE      Protocol = "poe"
	ProtoHotStuff Protocol = "hotstuff"
	ProtoRCC      Protocol = "rcc"
)

// Replicated reports whether p is a fully-replicated (unsharded) baseline.
func (p Protocol) Replicated() bool {
	switch p {
	case ProtoPBFT, ProtoZyzzyva, ProtoSBFT, ProtoPoE, ProtoHotStuff, ProtoRCC:
		return true
	}
	return false
}

// Config describes one experiment run.
type Config struct {
	Protocol         Protocol
	Shards           int
	ReplicasPerShard int
	BatchSize        int
	// PipelineDepth bounds the primary's in-flight proposals across
	// sequence numbers (types.Config.PipelineDepth): 0 = legacy unbounded
	// drain up to the pbft log window, 1 = lockstep, small depths overlap
	// PRE-PREPARE/PREPARE/COMMIT across sequences. A depth >= 1 also
	// enables the ringbft primary's adaptive batcher (queued single-shard
	// client requests coalesce toward BatchSize under backlog).
	PipelineDepth int
	// ClientBatch is the transaction count of each client request (0 =
	// BatchSize). Setting it below BatchSize gives the adaptive batcher
	// requests it can visibly coalesce; the default keeps client requests
	// and consensus batches one-to-one, exactly the pre-pipeline shape.
	ClientBatch int
	// ExecWorkers sizes the dependency-aware parallel batch executor on
	// every replica (internal/sched); 0 = sequential execution. A/B this
	// knob to measure intra-batch execution parallelism.
	ExecWorkers int
	// VerifyWorkers sizes the batched signature verifier on every replica
	// (crypto.Verifier): commit-certificate and new-view signatures are
	// checked concurrently on this many workers. 0 = serial verification.
	VerifyWorkers int

	CrossShardPct  float64 // fraction of cross-shard batches
	InvolvedShards int     // shards per cst
	RemoteReads    int     // complex-cst dependencies per txn (Fig 10)
	Records        int     // active records per shard
	Zipf           bool
	// StripeClients confines each client to a disjoint key stripe,
	// reproducing the paper's low-conflict uniform-YCSB regime at
	// compressed scale (see EXPERIMENTS.md, "workload contention").
	StripeClients bool

	Clients      int // concurrent clients
	ClientWindow int // outstanding batches per client

	Duration time.Duration // measurement window
	Warmup   time.Duration // excluded from metrics

	// Network model. LatencyScale compresses the 15-region GCP RTT matrix
	// (DESIGN.md §3); 0 selects a LAN-style fixed latency.
	LatencyScale float64
	FixedLatency time.Duration
	Jitter       float64
	LossRate     float64
	// BandwidthBps bounds each node's NIC (egress and ingress serialize at
	// this rate); 0 = infinite. ProcTime is the per-message CPU cost at the
	// receiver — the capacity that quadratic protocols saturate first.
	BandwidthBps float64
	ProcTime     time.Duration

	// TCP runs the cluster over real loopback TCP sockets (internal/tcpnet)
	// instead of the simulated WAN: actual dials, gob framing, write
	// deadlines, and the transport's redial/backoff machinery. The latency,
	// bandwidth, jitter, and loss knobs above are ignored (the kernel is
	// the network model).
	TCP bool
	// TCPUnreachable (TCP fabric only) advertises an unreachable address
	// for the last replica of shard 0: every peer connection to it dies
	// without delivering a byte, for the whole run. The cluster must keep
	// committing regardless — the failure mode the synchronous-dial
	// transport bug hid.
	TCPUnreachable bool

	NoCrypto bool // ablation: skip MAC/DS computation
	// AllToAllForward disables RingBFT's linear communication primitive:
	// every replica Forwards to every replica of the next shard (ablation,
	// DESIGN.md §5).
	AllToAllForward bool
	Seed            int64

	// Timers (zero = defaults scaled to the latency model).
	LocalTimeout    time.Duration
	RemoteTimeout   time.Duration
	TransmitTimeout time.Duration

	// FailPrimaries crashes the primaries of the first k shards at
	// FailAt into the measurement window (Fig 9).
	FailPrimaries int
	FailAt        time.Duration

	// Durable backs every RingBFT replica with the durability subsystem
	// (internal/wal) on a shared in-memory filesystem: WAL-logged blocks,
	// snapshots at stable checkpoints, crash recovery. Required by the
	// crash-restart knobs below.
	Durable bool
	// CheckpointInterval overrides the shard checkpoint cadence (0 keeps
	// the types.DefaultConfig value); recovery scenarios shorten it so
	// state transfer triggers within the measurement window.
	CheckpointInterval types.SeqNum

	// CrashRestart crashes one replica (the last backup of shard 0) at
	// CrashAt into the measurement window and restarts it at RestartAt —
	// recovering from disk when Durable, from nothing otherwise. With
	// WipeOnRestart its data directory is erased first, forcing the
	// wipe-and-rejoin state-transfer path. RingBFT only.
	CrashRestart  bool
	CrashAt       time.Duration
	RestartAt     time.Duration
	WipeOnRestart bool

	// Instrument attaches a shared metrics registry and one lifecycle
	// tracer per node (internal/metrics, internal/trace) to the protocol
	// hosts that support them. Pure side effect: determinism guards assert
	// that seeded schedules are byte-identical with this on. The merged
	// events and a registry snapshot land in Result.
	Instrument bool

	// Nemesis, when non-nil, runs alongside the workload from the moment
	// the measurement window opens, injecting faults through its
	// Controller (internal/chaos builds seeded schedules on top of this
	// hook). Setting it also routes every replica's outbound traffic
	// through the Byzantine interceptor so SetByzantine works mid-run.
	Nemesis Nemesis
	// CollectState captures each replica's commit state (chain, state
	// digest, executed results) into Result.Replicas after the run, for
	// cross-replica invariant checking.
	CollectState bool
}

// Result aggregates one run's metrics.
type Result struct {
	Config     Config
	Throughput float64 // committed txns/s over the measurement window
	AvgLatency time.Duration
	P50Latency time.Duration
	P99Latency time.Duration
	Txns       int64
	Batches    int64

	MsgsSent    int64
	MsgsDropped int64
	BytesSent   int64
	BytesCross  int64
	ViewChanges int64
	Retransmits int64
	// StateTransfers counts peer state-transfer installs across replicas
	// (recovery scenarios).
	StateTransfers int64
	// RecoveredNodes counts replicas that resumed from durable state
	// (snapshot and/or WAL) at any point of the run.
	RecoveredNodes int64

	// Timeline buckets committed txns per 100ms of the measurement window
	// (used by the Fig 9 series).
	Timeline []int64

	// Replicas holds each replica's captured commit state (CollectState
	// runs), for the chaos subsystem's cross-replica invariant checkers.
	Replicas []ReplicaState
	// NemesisLastHeal is the offset from measurement start of the nemesis'
	// final healing action (0 when no nemesis ran or nothing healed);
	// liveness checkers assert commits happen after it.
	NemesisLastHeal time.Duration

	// TraceEvents merges every node's lifecycle tracer chronologically
	// (Instrument runs only) — feed to trace.Breakdown / trace.Stalled.
	TraceEvents []trace.Event
	// MetricsText is the Prometheus-text snapshot of the run's registry
	// (Instrument runs only).
	MetricsText string
}

func (r Result) String() string {
	return fmt.Sprintf("%s z=%d n=%d cs=%.0f%%: %.0f txn/s, avg %.1fms, p99 %.1fms (%d txns, %d vc)",
		r.Config.Protocol, r.Config.Shards, r.Config.ReplicasPerShard,
		r.Config.CrossShardPct*100, r.Throughput,
		float64(r.AvgLatency)/float64(time.Millisecond),
		float64(r.P99Latency)/float64(time.Millisecond),
		r.Txns, r.ViewChanges)
}

// node is the common replica shape all three protocols expose.
type node interface {
	Run(ctx context.Context, inbox <-chan *types.Message)
}

// statProvider is implemented by nodes exposing protocol counters.
type statProvider interface {
	ViewChangeCount() int64
	RetransmitCount() int64
}

// transferProvider is implemented by nodes exposing state-transfer counts.
type transferProvider interface {
	StateTransferCount() int64
}

// recoveredProvider is implemented by nodes that can report resuming from
// durable state.
type recoveredProvider interface {
	Recovered() bool
}

// cluster holds one built deployment.
type cluster struct {
	cfg     Config
	tcfg    types.Config
	net     fabric
	nodes   []node
	inboxes []<-chan *types.Message
	ids     []types.NodeID
	// mu guards nodes during mid-run restarts (CrashRestart scenarios).
	mu sync.Mutex
	// fs is the shared in-memory filesystem of a Durable deployment.
	fs *wal.MemFS
	// rebuild reconstructs node i from its durable state (nil when the
	// protocol does not support restarts).
	rebuild []func() node
	// byz holds per-node Byzantine interceptors (nil entries — and a nil
	// slice on non-nemesis runs — mean the node sends directly).
	byz []*byzState
	// route returns the node a client should address a fresh batch to.
	route func(c types.ClientID, b *types.Batch) types.NodeID
	// fanout lists nodes a client rebroadcasts to after a timeout.
	fanout func(b *types.Batch) []types.NodeID
	// respNeed is the number of matching responses completing a request
	// (f+1 by default; n for Zyzzyva's speculative fast path, nf for PoE).
	respNeed int
	// reg/tracers are the Instrument-run observability sinks: one shared
	// registry, one tracer per node. A tracer survives crash/restart of its
	// node (the rebuild closure re-wires the same one).
	reg     *obs.Registry
	tracers []*trace.Tracer
}

// newTracer allocates one lifecycle tracer on Instrument runs (nil
// otherwise) and retains it for post-run merging.
func (cl *cluster) newTracer() *trace.Tracer {
	if !cl.cfg.Instrument {
		return nil
	}
	t := trace.New(0)
	cl.tracers = append(cl.tracers, t)
	return t
}

// Run executes one experiment and returns its metrics.
func Run(cfg Config) (Result, error) {
	applyDefaults(&cfg)
	cl, err := build(cfg)
	if err != nil {
		return Result{}, err
	}
	defer cl.net.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	rt := newRuntime(ctx, cl)
	for i := range cl.nodes {
		rt.start(i)
	}

	metrics := newMetrics()
	clientCtx, clientCancel := context.WithCancel(ctx)
	var cwg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		cwg.Add(1)
		go func(c int) {
			defer cwg.Done()
			runClient(clientCtx, cl, types.ClientID(c+1), metrics)
		}(c)
	}

	time.Sleep(cfg.Warmup)
	metrics.startMeasuring()

	if cfg.FailPrimaries > 0 {
		time.AfterFunc(cfg.FailAt, func() {
			for s := 0; s < cfg.FailPrimaries && s < cfg.Shards; s++ {
				cl.net.SetCrashed(types.ReplicaNode(types.ShardID(s), 0), true)
			}
		})
	}

	var ctl *Controller
	var nwg sync.WaitGroup
	if cfg.Nemesis != nil {
		ctl = &Controller{cl: cl, rt: rt, started: time.Now()}
		nwg.Add(1)
		go func() {
			defer nwg.Done()
			cfg.Nemesis(ctx, ctl)
		}()
	}

	var fwg sync.WaitGroup
	if cfg.CrashRestart {
		victim := types.ReplicaNode(0, cfg.ReplicasPerShard-1)
		fwg.Add(1)
		go func() {
			defer fwg.Done()
			select {
			case <-time.After(cfg.CrashAt):
			case <-ctx.Done():
				return
			}
			rt.crash(victim)
			select {
			case <-time.After(cfg.RestartAt - cfg.CrashAt):
			case <-ctx.Done():
				return
			}
			if ctx.Err() != nil {
				return
			}
			rt.restart(victim, cfg.WipeOnRestart)
		}()
	}

	time.Sleep(cfg.Duration)
	metrics.stopMeasuring()
	clientCancel()
	cwg.Wait()
	cancel()
	fwg.Wait()
	nwg.Wait()
	rt.wg.Wait()

	res := metrics.result(cfg)
	if ctl != nil {
		res.NemesisLastHeal = ctl.lastHealOffset()
	}
	if cfg.CollectState {
		for i, n := range cl.nodes {
			if st, ok := CaptureReplica(cl.ids[i], n); ok {
				res.Replicas = append(res.Replicas, st)
			}
		}
	}
	cl.net.fillStats(&res)
	for _, n := range cl.nodes {
		if sp, ok := n.(statProvider); ok {
			res.ViewChanges += sp.ViewChangeCount()
			res.Retransmits += sp.RetransmitCount()
		}
		if tp, ok := n.(transferProvider); ok {
			res.StateTransfers += tp.StateTransferCount()
		}
		if rp, ok := n.(recoveredProvider); ok && rp.Recovered() {
			res.RecoveredNodes++
		}
	}
	collectObservability(cl, &res)
	return res, nil
}

// collectObservability merges the per-node tracers and snapshots the
// registry into the result (Instrument runs only).
func collectObservability(cl *cluster, res *Result) {
	if !cl.cfg.Instrument {
		return
	}
	batches := make([][]trace.Event, len(cl.tracers))
	for i, t := range cl.tracers {
		batches[i] = t.Events()
	}
	res.TraceEvents = trace.Merge(batches...)
	if cl.reg != nil {
		res.MetricsText = cl.reg.Snapshot()
	}
}

func applyDefaults(cfg *Config) {
	if cfg.Protocol == "" {
		cfg.Protocol = ProtoRingBFT
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 3
	}
	if cfg.ReplicasPerShard <= 0 {
		cfg.ReplicasPerShard = 4
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 50
	}
	if cfg.InvolvedShards <= 0 {
		cfg.InvolvedShards = cfg.Shards
	}
	if cfg.Records <= 0 {
		cfg.Records = 4096
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.ClientWindow <= 0 {
		cfg.ClientWindow = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 500 * time.Millisecond
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 200 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.LocalTimeout <= 0 {
		cfg.LocalTimeout = 400 * time.Millisecond
	}
	if cfg.RemoteTimeout <= 0 {
		cfg.RemoteTimeout = 800 * time.Millisecond
	}
	if cfg.TransmitTimeout <= 0 {
		cfg.TransmitTimeout = 1500 * time.Millisecond
	}
}

// typesConfig derives the shared protocol config.
func typesConfig(cfg Config) types.Config {
	tc := types.DefaultConfig(cfg.Shards, cfg.ReplicasPerShard)
	tc.BatchSize = cfg.BatchSize
	tc.PipelineDepth = cfg.PipelineDepth
	tc.ExecWorkers = cfg.ExecWorkers
	tc.VerifyWorkers = cfg.VerifyWorkers
	tc.LocalTimeout = cfg.LocalTimeout
	tc.RemoteTimeout = cfg.RemoteTimeout
	tc.TransmitTimeout = cfg.TransmitTimeout
	if cfg.CheckpointInterval > 0 {
		tc.CheckpointInterval = cfg.CheckpointInterval
	}
	if cfg.Durable {
		tc.DataDir = "data"
	}
	return tc
}

// buildNetwork assembles the simnet with the paper's region placement.
func buildNetwork(cfg Config) *simnet.Network {
	var lat simnet.LatencyModel
	switch {
	case cfg.LatencyScale > 0:
		lat = simnet.WANLatency{Scale: cfg.LatencyScale}
	case cfg.FixedLatency > 0:
		lat = simnet.FixedLatency{D: cfg.FixedLatency}
	default:
		lat = simnet.FixedLatency{D: 200 * time.Microsecond}
	}
	n := simnet.New(simnet.Options{
		Latency: lat, Jitter: cfg.Jitter, Seed: cfg.Seed,
		NodeBps: cfg.BandwidthBps, ProcTime: cfg.ProcTime,
		InboxSize: 1 << 16,
	})
	if cfg.LossRate > 0 {
		n.SetLossRate(cfg.LossRate)
	}
	return n
}

func auth(cfg Config, kg *crypto.Keygen, id types.NodeID) (crypto.Authenticator, error) {
	if cfg.NoCrypto {
		return crypto.NopAuth{}, nil
	}
	return kg.Ring(id)
}

// metrics collects client-side completion samples.
type metrics struct {
	mu        sync.Mutex
	measuring atomic.Bool
	start     time.Time
	end       time.Time
	txns      int64
	batches   int64
	latencies []time.Duration
	timeline  []int64
}

func newMetrics() *metrics { return &metrics{} }

func (m *metrics) startMeasuring() {
	m.mu.Lock()
	m.start = time.Now()
	m.mu.Unlock()
	m.measuring.Store(true)
}

func (m *metrics) stopMeasuring() {
	m.measuring.Store(false)
	m.mu.Lock()
	m.end = time.Now()
	m.mu.Unlock()
}

func (m *metrics) record(txns int, latency time.Duration) {
	if !m.measuring.Load() {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.txns += int64(txns)
	m.batches++
	m.latencies = append(m.latencies, latency)
	bucket := int(time.Since(m.start) / (100 * time.Millisecond))
	for len(m.timeline) <= bucket {
		m.timeline = append(m.timeline, 0)
	}
	m.timeline[bucket] += int64(txns)
}

func (m *metrics) result(cfg Config) Result {
	m.mu.Lock()
	defer m.mu.Unlock()
	elapsed := m.end.Sub(m.start)
	if elapsed <= 0 {
		elapsed = cfg.Duration
	}
	res := Result{
		Config:   cfg,
		Txns:     m.txns,
		Batches:  m.batches,
		Timeline: append([]int64(nil), m.timeline...),
	}
	res.Throughput = float64(m.txns) / elapsed.Seconds()
	if len(m.latencies) > 0 {
		sort.Slice(m.latencies, func(i, j int) bool { return m.latencies[i] < m.latencies[j] })
		var sum time.Duration
		for _, l := range m.latencies {
			sum += l
		}
		res.AvgLatency = sum / time.Duration(len(m.latencies))
		res.P50Latency = m.latencies[len(m.latencies)/2]
		res.P99Latency = m.latencies[len(m.latencies)*99/100]
	}
	return res
}

// runClient drives one closed-loop client: keep ClientWindow batches in
// flight, wait for f+1 matching responses per batch, rebroadcast on timeout
// (attack A1).
func runClient(ctx context.Context, cl *cluster, id types.ClientID, m *metrics) {
	cfg := cl.cfg
	clientBatch := cfg.ClientBatch
	if clientBatch <= 0 {
		clientBatch = cfg.BatchSize
	}
	gen := workload.New(workload.Config{
		Shards:         cfg.Shards,
		ActiveRecords:  cfg.Records,
		CrossShardPct:  cfg.CrossShardPct,
		InvolvedShards: cfg.InvolvedShards,
		BatchSize:      clientBatch,
		RemoteReads:    cfg.RemoteReads,
		Zipf:           cfg.Zipf,
		Stripe:         cfg.StripeClients,
		Clients:        cfg.Clients,
		Seed:           cfg.Seed + int64(id)*7919,
	})
	self := types.ClientNode(id)
	region := simnet.Region(int(id) % int(simnet.NumRegions))
	ep := cl.net.Attach(self, region)

	need := cl.respNeed
	if need <= 0 {
		need = (cfg.ReplicasPerShard-1)/3 + 1
	}

	type flight struct {
		batch   *types.Batch
		digest  types.Digest
		started time.Time
		sentAt  time.Time
		votes   map[types.NodeID]struct{}
	}
	inflight := make(map[types.Digest]*flight)

	// viewHint tracks the latest view observed per shard (from Response
	// messages) so fresh requests target the current primary rather than a
	// crashed replica 0 — standard PBFT client behaviour.
	viewHint := make(map[types.ShardID]types.View)
	target := func(b *types.Batch) types.NodeID {
		to := cl.route(id, b)
		if to.Kind == types.KindReplica {
			if v, ok := viewHint[to.Shard]; ok {
				to.Index = int(uint64(v) % uint64(cfg.ReplicasPerShard))
			}
		}
		return to
	}
	launch := func() {
		b := gen.NextBatch(id)
		d := b.Digest()
		fl := &flight{batch: b, digest: d, started: time.Now(), sentAt: time.Now(), votes: make(map[types.NodeID]struct{})}
		inflight[d] = fl
		ep.Send(target(b), &types.Message{
			Type: types.MsgClientRequest, From: self, Batch: b, Digest: d,
		})
	}
	for i := 0; i < cfg.ClientWindow; i++ {
		launch()
	}

	timeout := cfg.LocalTimeout * 2
	ticker := time.NewTicker(timeout / 2)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case msg := <-ep.Inbox():
			if msg.Type != types.MsgResponse {
				continue
			}
			if msg.From.Kind == types.KindReplica && msg.View > viewHint[msg.From.Shard] {
				viewHint[msg.From.Shard] = msg.View
			}
			fl, ok := inflight[msg.Digest]
			if !ok {
				continue
			}
			fl.votes[msg.From] = struct{}{}
			if len(fl.votes) >= need {
				delete(inflight, msg.Digest)
				m.record(len(fl.batch.Txns), time.Since(fl.started))
				launch()
			}
		case <-ticker.C:
			now := time.Now()
			for _, d := range types.SortedDigestKeys(inflight) {
				fl := inflight[d]
				if now.Sub(fl.sentAt) > timeout {
					fl.sentAt = now
					msg := &types.Message{
						Type: types.MsgClientRequest, From: self,
						Batch: fl.batch, Digest: fl.digest,
					}
					for _, to := range cl.fanout(fl.batch) {
						ep.Send(to, msg)
					}
				}
			}
		}
	}
}
