package harness

import (
	"context"
	"fmt"
	"sync"

	"ringbft/internal/types"
	"ringbft/internal/wal"
)

// runtime owns node lifecycle during a run. Each node runs under its own
// sub-context so a crash stops one event loop without stopping the cluster;
// done channels let restart paths wait out the old loop before handing its
// inbox (and data directory) to a successor. Used by the CrashRestart knob
// and by nemesis Controllers.
type runtime struct {
	ctx context.Context
	cl  *cluster
	wg  sync.WaitGroup

	mu     sync.Mutex
	cancel []context.CancelFunc
	done   []chan struct{}
	downed []bool
}

func newRuntime(ctx context.Context, cl *cluster) *runtime {
	return &runtime{
		ctx: ctx, cl: cl,
		cancel: make([]context.CancelFunc, len(cl.nodes)),
		done:   make([]chan struct{}, len(cl.nodes)),
		downed: make([]bool, len(cl.nodes)),
	}
}

// start launches node i's event loop.
func (rt *runtime) start(i int) {
	nctx, ncancel := context.WithCancel(rt.ctx)
	done := make(chan struct{})
	rt.mu.Lock()
	rt.cancel[i] = ncancel
	rt.done[i] = done
	rt.mu.Unlock()
	rt.cl.mu.Lock()
	n := rt.cl.nodes[i]
	rt.cl.mu.Unlock()
	rt.wg.Add(1)
	go func(in <-chan *types.Message) {
		defer rt.wg.Done()
		defer close(done)
		n.Run(nctx, in)
	}(rt.cl.inboxes[i])
}

func (rt *runtime) index(id types.NodeID) int {
	for i, nid := range rt.cl.ids {
		if nid == id {
			return i
		}
	}
	return -1
}

// crash silences node id on the fabric and stops its event loop, waiting
// until the loop has fully exited. Crashing a node that is already down is
// a no-op.
func (rt *runtime) crash(id types.NodeID) {
	i := rt.index(id)
	if i < 0 {
		return
	}
	rt.mu.Lock()
	if rt.downed[i] {
		rt.mu.Unlock()
		return
	}
	rt.downed[i] = true
	cancel, done := rt.cancel[i], rt.done[i]
	rt.mu.Unlock()
	rt.cl.net.SetCrashed(id, true)
	if cancel != nil {
		cancel()
		<-done
	}
}

// restart revives a crashed node: with wipe its data directory is erased
// first; a node with a rebuild closure is reconstructed from whatever
// survives on disk, one without resumes its old in-memory instance.
// Restarting a node that is not down is a no-op.
func (rt *runtime) restart(id types.NodeID, wipe bool) {
	i := rt.index(id)
	if i < 0 {
		return
	}
	rt.mu.Lock()
	if !rt.downed[i] {
		rt.mu.Unlock()
		return
	}
	rt.downed[i] = false
	rt.mu.Unlock()
	if wipe && rt.cl.fs != nil {
		rt.cl.fs.RemoveAll(wal.Join(rt.cl.tcfg.DataDir, fmt.Sprintf("s%d-r%d", id.Shard, id.Index)))
	}
	if i < len(rt.cl.rebuild) && rt.cl.rebuild[i] != nil {
		nd := rt.cl.rebuild[i]()
		rt.cl.mu.Lock()
		rt.cl.nodes[i] = nd
		rt.cl.mu.Unlock()
	}
	rt.cl.net.SetCrashed(id, false)
	rt.start(i)
}
