package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ringbft/internal/store"
	"ringbft/internal/types"
)

// randTxns generates n transactions with read/write sets drawn from a
// keyspace of span keys owned by shard s in a system of z shards, plus
// remote keys when z > 1. Small spans force heavy overlap.
func randTxns(rng *rand.Rand, n, span, z int, s types.ShardID) []types.Txn {
	localKey := func() types.Key {
		return types.Key(uint64(s) + uint64(rng.Intn(span))*uint64(z))
	}
	txns := make([]types.Txn, n)
	for i := range txns {
		t := &txns[i]
		t.ID = types.TxnID{Client: 1, Seq: uint64(i + 1)}
		t.Delta = types.Value(rng.Intn(100))
		for r := rng.Intn(4); r >= 0; r-- {
			t.Reads = append(t.Reads, localKey())
		}
		for w := rng.Intn(3); w >= 0; w-- {
			t.Writes = append(t.Writes, localKey())
		}
		if z > 1 && rng.Intn(2) == 0 {
			// A remote read owned by the next shard over.
			remote := types.Key(uint64((s+1)%types.ShardID(z)) + uint64(rng.Intn(span))*uint64(z))
			t.Reads = append(t.Reads, remote)
		}
	}
	return txns
}

// conflict reports whether a and b conflict on keys owned by shard s.
func conflict(a, b *types.Txn, s types.ShardID, z int) bool {
	writes := make(map[types.Key]struct{})
	reads := make(map[types.Key]struct{})
	for _, k := range a.Writes {
		if types.OwnerShard(k, z) == s {
			writes[k] = struct{}{}
		}
	}
	for _, k := range a.Reads {
		if types.OwnerShard(k, z) == s {
			reads[k] = struct{}{}
		}
	}
	for _, k := range b.Writes {
		if types.OwnerShard(k, z) != s {
			continue
		}
		if _, ok := writes[k]; ok {
			return true
		}
		if _, ok := reads[k]; ok {
			return true
		}
	}
	for _, k := range b.Reads {
		if types.OwnerShard(k, z) != s {
			continue
		}
		if _, ok := writes[k]; ok {
			return true
		}
	}
	return false
}

// TestLayersInvariants checks the three structural guarantees of Layers on
// randomized batches: every index appears exactly once, transactions within
// a layer are pairwise conflict-free, and conflicting transactions keep
// batch order across strictly increasing layers.
func TestLayersInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const z = 3
	const s = types.ShardID(1)
	for trial := 0; trial < 200; trial++ {
		txns := randTxns(rng, 1+rng.Intn(40), 1+rng.Intn(12), z, s)
		layers := Layers(txns, s, z)

		layerOf := make(map[int]int)
		for li, layer := range layers {
			for _, i := range layer {
				if _, dup := layerOf[i]; dup {
					t.Fatalf("trial %d: txn %d scheduled twice", trial, i)
				}
				layerOf[i] = li
			}
		}
		if len(layerOf) != len(txns) {
			t.Fatalf("trial %d: scheduled %d of %d txns", trial, len(layerOf), len(txns))
		}
		for i := range txns {
			for j := i + 1; j < len(txns); j++ {
				if !conflict(&txns[i], &txns[j], s, z) {
					continue
				}
				if layerOf[i] >= layerOf[j] {
					t.Fatalf("trial %d: conflicting txns %d (layer %d) and %d (layer %d) not ordered",
						trial, i, layerOf[i], j, layerOf[j])
				}
			}
		}
		for li, layer := range layers {
			for a := 0; a < len(layer); a++ {
				for b := a + 1; b < len(layer); b++ {
					i, j := layer[a], layer[b]
					if conflict(&txns[i], &txns[j], s, z) {
						t.Fatalf("trial %d: layer %d holds conflicting txns %d and %d", trial, li, i, j)
					}
				}
			}
		}
	}
}

// TestParallelMatchesSequential is the equivalence property test of the
// issue: across randomized batches with overlapping read/write sets and
// 1..8 workers, parallel execution must produce the same results slice and
// the same store digest as plain sequential execution.
func TestParallelMatchesSequential(t *testing.T) {
	const records = 256
	for _, tc := range []struct {
		z int
		s types.ShardID
	}{{1, 0}, {3, 1}} {
		for workers := 1; workers <= 8; workers++ {
			t.Run(fmt.Sprintf("z=%d/workers=%d", tc.z, workers), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(workers)*100 + int64(tc.z)))
				for trial := 0; trial < 25; trial++ {
					txns := randTxns(rng, 1+rng.Intn(60), 1+rng.Intn(16), tc.z, tc.s)

					// Remote reads resolve from a fixed carried-Σ snapshot.
					remote := make(map[types.Key]types.Value)
					for i := range txns {
						for _, k := range txns[i].Reads {
							if types.OwnerShard(k, tc.z) != tc.s {
								remote[k] = types.Value(k) * 3
							}
						}
					}

					seqKV := store.NewKV()
					seqKV.Preload(tc.s, tc.z, records)
					want := make([]types.Value, len(txns))
					for i := range txns {
						v, err := seqKV.ExecuteTxn(&txns[i], tc.s, tc.z, remote)
						if err != nil {
							t.Fatalf("trial %d: sequential reference failed: %v", trial, err)
						}
						want[i] = v
					}

					parKV := store.NewKV()
					parKV.Preload(tc.s, tc.z, records)
					got, errs := New(workers).ExecuteBatch(txns, tc.s, tc.z, func(i int) (types.Value, error) {
						return parKV.ExecuteTxn(&txns[i], tc.s, tc.z, remote)
					})
					if errs != 0 {
						t.Fatalf("trial %d: %d exec errors", trial, errs)
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("trial %d: result[%d] = %d, want %d", trial, i, got[i], want[i])
						}
					}
					if parKV.Digest() != seqKV.Digest() {
						t.Fatalf("trial %d: parallel digest diverged from sequential", trial)
					}

					// Precomputed-plan path (the replica's cross-shard
					// route) must be equivalent too.
					planKV := store.NewKV()
					planKV.Preload(tc.s, tc.z, records)
					plan := BuildPlan(txns, tc.s, tc.z)
					got2, errs2 := New(workers).ExecutePlan(plan, func(i int) (types.Value, error) {
						return planKV.ExecuteTxn(&txns[i], tc.s, tc.z, remote)
					})
					if errs2 != 0 {
						t.Fatalf("trial %d: %d exec errors (planned)", trial, errs2)
					}
					for i := range want {
						if got2[i] != want[i] {
							t.Fatalf("trial %d: planned result[%d] = %d, want %d", trial, i, got2[i], want[i])
						}
					}
					if planKV.Digest() != seqKV.Digest() {
						t.Fatalf("trial %d: planned digest diverged from sequential", trial)
					}
				}
			})
		}
	}
}

// TestExecuteBatchCountsErrors: failing transactions yield the sentinel 0
// and are counted, in both the sequential and the parallel path.
func TestExecuteBatchCountsErrors(t *testing.T) {
	txns := randTxns(rand.New(rand.NewSource(5)), 40, 8, 1, 0)
	errBoom := errors.New("boom")
	for _, workers := range []int{0, 4} {
		got, errs := New(workers).ExecuteBatch(txns, 0, 1, func(i int) (types.Value, error) {
			if i%5 == 0 {
				return 99, errBoom
			}
			return types.Value(i), nil
		})
		wantErrs := int64((len(txns) + 4) / 5)
		if errs != wantErrs {
			t.Fatalf("workers=%d: errs = %d, want %d", workers, errs, wantErrs)
		}
		for i, v := range got {
			want := types.Value(i)
			if i%5 == 0 {
				want = 0
			}
			if v != want {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, want)
			}
		}
	}
}

// TestSequentialFastPathZeroWorkers: worker counts <= 1 never spawn
// goroutines and still produce correct results (smoke for the default
// config path every seed test runs through).
func TestSequentialFastPathZeroWorkers(t *testing.T) {
	txns := randTxns(rand.New(rand.NewSource(9)), 30, 4, 1, 0)
	kv := store.NewKV()
	kv.Preload(0, 1, 64)
	ref := store.NewKV()
	ref.Preload(0, 1, 64)
	got, errs := New(0).ExecuteBatch(txns, 0, 1, func(i int) (types.Value, error) {
		return kv.ExecuteTxn(&txns[i], 0, 1, nil)
	})
	if errs != 0 {
		t.Fatalf("errs = %d", errs)
	}
	for i := range txns {
		want, err := ref.ExecuteTxn(&txns[i], 0, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("result[%d] = %d, want %d", i, got[i], want)
		}
	}
	if kv.Digest() != ref.Digest() {
		t.Fatal("digest diverged")
	}
}
