// Package sched is a dependency-aware parallel batch executor. Consensus
// fixes the order of a batch's transactions, but most of them do not touch
// the same keys: following the execute-order-validate scheduling idea of
// FabricSharp (SIGMOD 2020), the executor derives a conflict graph from the
// transactions' declared read/write sets, layers it topologically, and runs
// each layer's mutually independent transactions concurrently on a worker
// pool. Conflicting transactions (write-write, or read-write in either
// direction, on a key this shard owns) always land in distinct layers that
// preserve batch order, so the results slice and the resulting store state
// are byte-identical to sequential execution — replicas with different
// worker counts stay digest-aligned.
//
// A Plan depends only on the batch content (the declared read/write sets),
// never on store state, so replicas can build it off the critical path —
// e.g. while a cross-shard batch is still rotating around the ring — and
// pay only the parallel execution cost once commit lands.
package sched

import (
	"sync"
	"sync/atomic"

	"ringbft/internal/types"
)

// Apply executes the transaction at index i of the batch being scheduled and
// returns its deterministic result. The executor invokes it concurrently
// only for transactions whose shard-local read/write sets are disjoint, so
// implementations over a striped store need no extra coordination.
type Apply func(i int) (types.Value, error)

// Executor schedules batches onto up to workers goroutines. Zero or one
// workers selects the sequential fast path (no planning, no goroutines),
// which is also the deterministic reference the property tests compare
// against. An Executor is stateless apart from its worker count and is safe
// for reuse across batches.
type Executor struct {
	workers int
	obs     Observer
}

// Observer receives execution telemetry from the scheduler. Hooks may be
// nil; non-nil hooks must be safe for concurrent use (batches execute on
// the replica loop but hosts may share an Executor).
type Observer struct {
	// Batch observes one executed batch: whether it took the parallel
	// path, its transaction count, and its schedule depth (1 layer for a
	// sequential batch).
	Batch func(parallel bool, txns, layers int)
	// Layer observes the width of each executed plan layer — the direct
	// measure of exploitable intra-batch parallelism.
	Layer func(width int)
}

// SetObserver installs the telemetry observer (call before the executor is
// shared with the replica loop).
func (e *Executor) SetObserver(o Observer) { e.obs = o }

// New returns an executor with the given worker count (<= 1 = sequential).
func New(workers int) *Executor {
	if workers < 0 {
		workers = 0
	}
	return &Executor{workers: workers}
}

// Workers returns the configured worker count.
func (e *Executor) Workers() int { return e.workers }

// Plan is the conflict schedule of one batch at one shard: transaction
// indices partitioned into layers such that transactions within a layer are
// pairwise conflict-free and conflicting transactions appear in batch order
// across strictly increasing layers.
type Plan struct {
	layers [][]int
	n      int
}

// NumLayers returns the schedule depth (1 = the whole batch is
// conflict-free and runs in a single parallel wave).
func (p *Plan) NumLayers() int { return len(p.layers) }

// Layers returns the schedule's layers. Callers must not mutate them.
func (p *Plan) Layers() [][]int { return p.layers }

// BuildPlan computes the conflict schedule of txns at shard s in a system
// of z shards. Only keys owned by s participate in conflicts: remote reads
// resolve against the immutable carried Σ, never the local store. The pass
// is O(total keys), using an open-addressed scratch table (Go maps cost
// several times more here and planning is the serial fraction that bounds
// parallel speedup).
func BuildPlan(txns []types.Txn, s types.ShardID, z int) *Plan {
	occ := 0
	for i := range txns {
		occ += len(txns[i].Reads) + len(txns[i].Writes)
	}
	// Table at <= 50% occupancy so linear probing stays short. occ
	// overcounts distinct keys, giving extra headroom for free.
	shift := uint(60)
	size := 16
	for size < 2*occ {
		size <<= 1
		shift--
	}
	// slot records, per key, the highest layer that read it and the highest
	// layer that wrote it, encoded +1 so the zero value means "never".
	type slot struct {
		key         types.Key
		used        bool
		read, write int32
	}
	table := make([]slot, size)
	mask := size - 1
	probe := func(k types.Key) *slot {
		for j := int((uint64(k) * 0x9E3779B97F4A7C15) >> shift); ; j = (j + 1) & mask {
			sl := &table[j]
			if !sl.used {
				sl.used = true
				sl.key = k
				return sl
			}
			if sl.key == k {
				return sl
			}
		}
	}

	var layers [][]int
	for i := range txns {
		t := &txns[i]
		layer := int32(0)
		// Constraint pass: a read goes after the key's last writer; a write
		// goes after the key's last writer and last reader.
		for _, k := range t.Reads {
			if types.OwnerShard(k, z) != s {
				continue
			}
			if sl := probe(k); sl.write >= layer+1 {
				layer = sl.write
			}
		}
		for _, k := range t.Writes {
			if types.OwnerShard(k, z) != s {
				continue
			}
			sl := probe(k)
			if sl.write >= layer+1 {
				layer = sl.write
			}
			if sl.read >= layer+1 {
				layer = sl.read
			}
		}
		// Update pass: record this transaction as the keys' latest accessor.
		for _, k := range t.Reads {
			if types.OwnerShard(k, z) != s {
				continue
			}
			if sl := probe(k); sl.read < layer+1 {
				sl.read = layer + 1
			}
		}
		for _, k := range t.Writes {
			if types.OwnerShard(k, z) != s {
				continue
			}
			probe(k).write = layer + 1
		}
		for len(layers) <= int(layer) {
			layers = append(layers, nil)
		}
		layers[layer] = append(layers[layer], i)
	}
	return &Plan{layers: layers, n: len(txns)}
}

// Layers is the slice view of BuildPlan, kept for tests and callers that
// only need the partition.
func Layers(txns []types.Txn, s types.ShardID, z int) [][]int {
	return BuildPlan(txns, s, z).layers
}

// ExecuteBatch plans txns and executes them: results in batch order plus
// the number of apply errors. A failing transaction deterministically
// yields the sentinel result 0 so replicas stay aligned even when Σ
// accumulation is broken; callers surface the error count through their
// stats. With more than one worker each plan layer fans out over the pool;
// otherwise everything runs inline with no planning cost.
func (e *Executor) ExecuteBatch(txns []types.Txn, s types.ShardID, z int, apply Apply) ([]types.Value, int64) {
	if e.workers <= 1 || len(txns) <= 1 {
		return e.executeSequential(len(txns), apply)
	}
	return e.ExecutePlan(BuildPlan(txns, s, z), apply)
}

// ExecutePlan executes a batch under a precomputed plan (see BuildPlan; the
// RingBFT replica builds plans for cross-shard batches while the Forward is
// still rotating, so commit-time execution pays only this function).
func (e *Executor) ExecutePlan(p *Plan, apply Apply) ([]types.Value, int64) {
	if e.workers <= 1 || p.n <= 1 {
		return e.executeSequential(p.n, apply)
	}
	if e.obs.Batch != nil {
		e.obs.Batch(true, p.n, len(p.layers))
	}
	results := make([]types.Value, p.n)
	var errs int64
	for _, layer := range p.layers {
		if e.obs.Layer != nil {
			e.obs.Layer(len(layer))
		}
		e.runLayer(layer, results, &errs, apply)
	}
	return results, errs
}

func (e *Executor) executeSequential(n int, apply Apply) ([]types.Value, int64) {
	if e.obs.Batch != nil {
		e.obs.Batch(false, n, 1)
	}
	results := make([]types.Value, n)
	var errs int64
	for i := 0; i < n; i++ {
		results[i] = applyOne(i, apply, &errs)
	}
	return results, errs
}

func applyOne(i int, apply Apply, errs *int64) types.Value {
	v, err := apply(i)
	if err != nil {
		atomic.AddInt64(errs, 1)
		return 0
	}
	return v
}

// runLayer executes one conflict-free layer, splitting it into contiguous
// chunks so at most one goroutine per worker is spawned regardless of layer
// size. Result slots are disjoint per transaction, so workers never contend
// on results.
func (e *Executor) runLayer(layer []int, results []types.Value, errs *int64, apply Apply) {
	if len(layer) <= minParallelLayer {
		for _, i := range layer {
			results[i] = applyOne(i, apply, errs)
		}
		return
	}
	nw := e.workers
	if nw > len(layer) {
		nw = len(layer)
	}
	chunk := (len(layer) + nw - 1) / nw
	var wg sync.WaitGroup
	for lo := 0; lo < len(layer); lo += chunk {
		hi := lo + chunk
		if hi > len(layer) {
			hi = len(layer)
		}
		wg.Add(1)
		go func(idxs []int) {
			defer wg.Done()
			for _, i := range idxs {
				results[i] = applyOne(i, apply, errs)
			}
		}(layer[lo:hi])
	}
	wg.Wait()
}

// minParallelLayer is the layer size below which goroutine fan-out costs
// more than it saves; such layers run inline on the calling goroutine.
const minParallelLayer = 4
