package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"ringbft/internal/store"
	"ringbft/internal/types"
)

// benchTxns builds a single-shard batch of n read-modify-write transactions
// with 8 reads and 8 writes each. Low conflict gives every transaction its
// own 16-key stripe (the paper's striped-uniform YCSB regime: one conflict
// layer, maximum parallelism); high conflict draws every key from a 24-key
// hot set so the conflict graph is deep and parallelism scarce.
func benchTxns(n int, highConflict bool) []types.Txn {
	rng := rand.New(rand.NewSource(int64(n)))
	txns := make([]types.Txn, n)
	for i := range txns {
		t := &txns[i]
		t.ID = types.TxnID{Client: 1, Seq: uint64(i + 1)}
		t.Delta = types.Value(i)
		for j := 0; j < 8; j++ {
			if highConflict {
				t.Reads = append(t.Reads, types.Key(rng.Intn(24)))
				t.Writes = append(t.Writes, types.Key(rng.Intn(24)))
			} else {
				t.Reads = append(t.Reads, types.Key(i*16+j))
				t.Writes = append(t.Writes, types.Key(i*16+8+j))
			}
		}
	}
	return txns
}

// BenchmarkExecuteBatch compares sequential execution against the
// dependency-aware worker pool at the batch sizes and conflict regimes of
// the issue. Three modes per configuration:
//
//   - seq: the ExecWorkers=0 fast path (the reference);
//   - plan+exec: BuildPlan and execute, all on the critical path;
//   - exec: execute under a precomputed plan — what a RingBFT replica pays
//     at commit time, since cross-shard plans are built while the Forward
//     rotates (see cstState.plan).
//
// bench_baseline.json records a reference run; the acceptance bar is >= 2x
// throughput for 4 workers over seq on n=1000/conflict=low, which needs
// >= 4 hardware threads (a single-core host serializes the pool and shows
// parity at best — check the host line of the baseline).
func BenchmarkExecuteBatch(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		for _, hc := range []bool{false, true} {
			conflict := "low"
			if hc {
				conflict = "high"
			}
			txns := benchTxns(n, hc)
			run := func(name string, workers int, preplanned bool) {
				b.Run(fmt.Sprintf("n=%d/conflict=%s/%s", n, conflict, name), func(b *testing.B) {
					kv := store.NewKV()
					kv.Preload(0, 1, n*16)
					ex := New(workers)
					apply := func(i int) (types.Value, error) {
						return kv.ExecuteTxn(&txns[i], 0, 1, nil)
					}
					plan := BuildPlan(txns, 0, 1)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if preplanned {
							ex.ExecutePlan(plan, apply)
						} else {
							ex.ExecuteBatch(txns, 0, 1, apply)
						}
					}
					b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "txns/s")
				})
			}
			run("seq", 0, false)
			for _, workers := range []int{4, 8} {
				run(fmt.Sprintf("plan+exec/workers=%d", workers), workers, false)
				run(fmt.Sprintf("exec/workers=%d", workers), workers, true)
			}
		}
	}
}

// BenchmarkBuildPlan isolates the planning pass — the serial fraction that
// bounds parallel speedup when plans cannot be precomputed.
func BenchmarkBuildPlan(b *testing.B) {
	for _, n := range []int{100, 1000} {
		for _, hc := range []bool{false, true} {
			conflict := "low"
			if hc {
				conflict = "high"
			}
			txns := benchTxns(n, hc)
			b.Run(fmt.Sprintf("n=%d/conflict=%s", n, conflict), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					BuildPlan(txns, 0, 1)
				}
			})
		}
	}
}
