package wal

import (
	"time"

	"ringbft/internal/types"
)

// ManagerOptions configures one replica's durability manager.
type ManagerOptions struct {
	FS  FS     // nil selects OSFS
	Dir string // per-replica data directory

	SegmentSize   int64         // WAL segment rotation size (default 4 MiB)
	FsyncInterval time.Duration // group-commit interval (0 = sync every append)
	Clock         func() time.Time
	// Observer receives WAL telemetry; it survives wipe and reset, which
	// reopen the underlying log.
	Observer Observer
}

// Recovered is what a restarted replica resumes from: the latest valid
// snapshot (nil when none) plus the WAL records appended after it.
type Recovered struct {
	Snap *Snapshot
	Tail []Record
}

// Empty reports whether recovery found nothing on disk (a fresh or wiped
// replica).
func (r *Recovered) Empty() bool { return r == nil || (r.Snap == nil && len(r.Tail) == 0) }

// Manager owns one replica's durable state: the segmented WAL and the
// snapshot store, in one directory. Single-writer, like the WAL.
type Manager struct {
	fs   FS
	dir  string
	opts ManagerOptions
	wal  *WAL
}

// OpenManager opens (creating if needed) the durability directory, loads
// the latest valid snapshot, and replays the WAL tail past it.
func OpenManager(opts ManagerOptions) (*Manager, *Recovered, error) {
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	m := &Manager{fs: opts.FS, dir: opts.Dir, opts: opts}
	if err := m.fs.MkdirAll(opts.Dir); err != nil {
		return nil, nil, err
	}
	snap, err := LoadLatest(m.fs, m.snapDir())
	if err != nil && err != ErrNoSnapshot {
		return nil, nil, err
	}
	w, records, err := Open(m.fs, m.walDir(), Options{
		SegmentSize:   opts.SegmentSize,
		FsyncInterval: opts.FsyncInterval,
		Clock:         opts.Clock,
		Observer:      opts.Observer,
	})
	if err != nil {
		return nil, nil, err
	}
	m.wal = w
	rec := &Recovered{Snap: snap}
	for i := range records {
		if snap == nil || records[i].LSN > snap.WalLSN {
			rec.Tail = append(rec.Tail, records[i])
		}
	}
	// Continuity check: the tail must extend the snapshot without a gap.
	// A gap means segments were garbage-collected against a newer snapshot
	// that no longer loads (e.g. the newest generation was torn and
	// LoadLatest fell back) — replaying across it would silently install a
	// store missing a whole window of writes. The snapshot itself is still
	// a complete, checksummed cut, so recovery keeps it and discards the
	// orphaned tail: the replica resumes stale and catches up through peer
	// state transfer. The orphaned segments are wiped and the snapshot is
	// re-stamped at WAL position 0 so the restarted log replays cleanly.
	if len(rec.Tail) > 0 {
		covered := uint64(0)
		if snap != nil {
			covered = snap.WalLSN
		}
		if rec.Tail[0].LSN > covered+1 {
			if err := m.wipeWAL(); err != nil {
				return nil, nil, err
			}
			rec.Tail = nil
			if snap != nil {
				snap.WalLSN = 0
				if err := WriteSnapshot(m.fs, m.snapDir(), snap); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	return m, rec, nil
}

// wipeWAL deletes every WAL segment and reopens the log empty.
func (m *Manager) wipeWAL() error {
	if err := m.wal.Close(); err != nil {
		return err
	}
	if names, err := m.fs.ReadDir(m.walDir()); err == nil {
		for _, n := range names {
			if err := m.fs.Remove(Join(m.walDir(), n)); err != nil {
				return err
			}
		}
	}
	w, _, err := Open(m.fs, m.walDir(), Options{
		SegmentSize:   m.opts.SegmentSize,
		FsyncInterval: m.opts.FsyncInterval,
		Clock:         m.opts.Clock,
		Observer:      m.opts.Observer,
	})
	if err != nil {
		return err
	}
	m.wal = w
	return nil
}

// SetObserver installs the telemetry observer after construction (hosts
// receive a pre-built Manager and wire metrics later). It persists across
// wipe and Reset.
func (m *Manager) SetObserver(o Observer) {
	m.opts.Observer = o
	m.wal.SetObserver(o)
}

func (m *Manager) walDir() string  { return Join(m.dir, "wal") }
func (m *Manager) snapDir() string { return Join(m.dir, "snap") }

// LogBlock appends an executed-block record.
func (m *Manager) LogBlock(seq types.SeqNum, primary types.NodeID, batch *types.Batch, results []types.Value) error {
	_, err := m.wal.Append(BlockRecord(seq, primary, batch, results))
	return err
}

// LogProgress appends a consensus-watermark record.
func (m *Manager) LogProgress(kmax types.SeqNum, prefix types.Digest, lastCheckpoint types.SeqNum, batchDigest types.Digest, view types.View) error {
	_, err := m.wal.Append(ProgressRecord(kmax, prefix, lastCheckpoint, batchDigest, view))
	return err
}

// MaybeSync performs the group-commit fsync when the interval elapsed.
func (m *Manager) MaybeSync(now time.Time) error { return m.wal.MaybeSync(now) }

// Sync forces an fsync barrier.
func (m *Manager) Sync() error { return m.wal.Sync() }

// SaveSnapshot makes s durable and garbage-collects the WAL segments it
// covers. The WAL is synced first so s.WalLSN (stamped here: the last LSN
// appended) never exceeds what is on disk.
func (m *Manager) SaveSnapshot(s *Snapshot) error {
	if err := m.wal.Sync(); err != nil {
		return err
	}
	s.WalLSN = m.wal.NextLSN() - 1
	if err := WriteSnapshot(m.fs, m.snapDir(), s); err != nil {
		return err
	}
	return m.wal.GC(m.wal.NextLSN())
}

// Reset wipes the WAL and persists s as the sole durable state — used after
// a peer state transfer installs a state unrelated to the local log.
func (m *Manager) Reset(s *Snapshot) error {
	if err := m.wal.Close(); err != nil {
		return err
	}
	names, err := m.fs.ReadDir(m.walDir())
	if err == nil {
		for _, n := range names {
			if err := m.fs.Remove(Join(m.walDir(), n)); err != nil {
				return err
			}
		}
	}
	w, _, err := Open(m.fs, m.walDir(), Options{
		SegmentSize:   m.opts.SegmentSize,
		FsyncInterval: m.opts.FsyncInterval,
		Clock:         m.opts.Clock,
		Observer:      m.opts.Observer,
	})
	if err != nil {
		return err
	}
	m.wal = w
	s.WalLSN = 0
	return WriteSnapshot(m.fs, m.snapDir(), s)
}

// WAL exposes the underlying log (stats and tests).
func (m *Manager) WAL() *WAL { return m.wal }

// Dir returns the managed directory.
func (m *Manager) Dir() string { return m.dir }

// Close syncs and closes the WAL.
func (m *Manager) Close() error { return m.wal.Close() }
