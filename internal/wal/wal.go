package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"strings"
	"time"

	"ringbft/internal/types"
)

// Segment framing: each record is [u32 payload length][u32 CRC32C of the
// payload][payload]. CRC32C (Castagnoli) is the checksum production WALs use
// (hardware-accelerated on amd64/arm64); a torn write at the tail fails
// either the length bound or the checksum and replay stops at the last valid
// prefix.
const (
	frameHeader   = 8
	maxRecordSize = 64 << 20 // structural bound against damaged lengths

	segPrefix = "seg-"
	segSuffix = ".wal"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a WAL.
type Options struct {
	// SegmentSize rotates to a fresh segment file once the current one
	// exceeds this many bytes (default 4 MiB). Old segments become
	// garbage-collectable as soon as a snapshot covers their records.
	SegmentSize int64
	// FsyncInterval batches fsync: appends are acknowledged immediately and
	// the file is synced once per interval (group commit). 0 syncs on every
	// append. A crash may lose the unsynced tail — recovery resumes from
	// the last synced prefix and the consensus layer re-fetches the rest.
	FsyncInterval time.Duration
	// Clock injects time for deterministic tests (default time.Now).
	Clock func() time.Time
	// Observer, when set, receives durability telemetry. Durations come
	// from the injected Clock, so deterministic hosts see virtual time.
	Observer Observer
}

// Observer receives WAL telemetry. Either hook may be nil.
type Observer struct {
	// Fsync observes the latency of each physical fsync.
	Fsync func(d time.Duration)
	// GC observes the number of segments removed by a GC pass.
	GC func(removed int)
}

// Stats counts WAL activity (read on the owning goroutine).
type Stats struct {
	Appends   int64
	Syncs     int64
	Rotations int64
	// TornBytes is the number of trailing bytes discarded by replay.
	TornBytes int64
}

// WAL is a segmented append-only log. Single-writer: exactly one goroutine
// (the replica event loop) may call its methods.
type WAL struct {
	fs   FS
	dir  string
	opts Options

	cur     File
	curName string
	curSize int64

	nextLSN  uint64
	dirty    bool
	lastSync time.Time

	Stats Stats
}

func segName(firstLSN uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, firstLSN, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	var lsn uint64
	_, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), "%x", &lsn)
	return lsn, err == nil
}

// Open opens (or creates) the WAL in dir, replays every record, repairs a
// torn tail in the last segment, and returns the log positioned for
// appending after the last valid record. Corruption anywhere except the
// final segment's tail is fatal (ErrCorrupt): the middle of the log was
// synced and acknowledged, so damage there is real data loss the caller
// must handle by state transfer, not silent truncation.
func Open(fs FS, dir string, opts Options) (*WAL, []Record, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = 4 << 20
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, nil, err
	}
	w := &WAL{fs: fs, dir: dir, opts: opts, nextLSN: 1, lastSync: opts.Clock()}

	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var segs []string
	for _, n := range names {
		if _, ok := parseSegName(n); ok {
			segs = append(segs, n)
		}
	}
	sort.Strings(segs)

	var records []Record
	for i, name := range segs {
		recs, err := w.replaySegment(name, i == 0, i == len(segs)-1)
		if err != nil {
			return nil, nil, fmt.Errorf("segment %s: %w", name, err)
		}
		records = append(records, recs...)
	}
	if len(records) > 0 {
		w.nextLSN = records[len(records)-1].LSN + 1
	} else if len(segs) > 0 {
		if first, ok := parseSegName(segs[len(segs)-1]); ok {
			w.nextLSN = first
		}
	}

	if len(segs) == 0 {
		if err := w.rotate(); err != nil {
			return nil, nil, err
		}
	} else {
		name := segs[len(segs)-1]
		f, err := fs.Append(Join(dir, name))
		if err != nil {
			return nil, nil, err
		}
		w.cur = f
		w.curName = name
		w.curSize = w.segmentSize(name)
	}
	return w, records, nil
}

func (w *WAL) segmentSize(name string) int64 {
	f, err := w.fs.Open(Join(w.dir, name))
	if err != nil {
		return 0
	}
	defer f.Close()
	n, _ := io.Copy(io.Discard, f)
	return n
}

// replaySegment parses one segment. In the last segment, the first invalid
// frame (short, checksum mismatch, malformed payload, or non-monotonic LSN
// — the signature of a duplicated tail rewrite) ends replay and the file is
// truncated to the valid prefix; anywhere else it is ErrCorrupt.
func (w *WAL) replaySegment(name string, first, last bool) ([]Record, error) {
	f, err := w.fs.Open(Join(w.dir, name))
	if err != nil {
		return nil, err
	}
	buf, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return nil, err
	}

	var records []Record
	off := 0
	valid := 0 // end offset of the last valid record
	var reason string
	for off < len(buf) {
		if off+frameHeader > len(buf) {
			reason = "short frame header"
			break
		}
		size := int(binary.BigEndian.Uint32(buf[off:]))
		sum := binary.BigEndian.Uint32(buf[off+4:])
		if size <= 0 || size > maxRecordSize || off+frameHeader+size > len(buf) {
			reason = "bad or short payload length"
			break
		}
		payload := buf[off+frameHeader : off+frameHeader+size]
		if crc32.Checksum(payload, castagnoli) != sum {
			reason = "checksum mismatch"
			break
		}
		rec := decodeRecord(payload)
		if rec == nil {
			reason = "malformed payload"
			break
		}
		if rec.LSN != w.nextLSN && !(first && valid == 0 && rec.LSN >= w.nextLSN) {
			// The first record of the first surviving segment may start past
			// 1 (earlier segments were garbage-collected); everything else
			// must be contiguous. A repeated LSN is a duplicated tail.
			reason = fmt.Sprintf("LSN %d, want %d", rec.LSN, w.nextLSN)
			break
		}
		w.nextLSN = rec.LSN + 1
		records = append(records, *rec)
		off += frameHeader + size
		valid = off
	}
	if valid == len(buf) {
		return records, nil
	}
	if !last {
		return nil, fmt.Errorf("%w: %s at offset %d", ErrCorrupt, reason, valid)
	}
	// Torn tail: persist the repair so a second crash cannot resurrect it.
	w.Stats.TornBytes += int64(len(buf) - valid)
	tmp := Join(w.dir, name+".tmp")
	tf, err := w.fs.Create(tmp)
	if err != nil {
		return nil, err
	}
	if _, err := tf.Write(buf[:valid]); err != nil {
		tf.Close()
		return nil, err
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return nil, err
	}
	if err := tf.Close(); err != nil {
		return nil, err
	}
	if err := w.fs.Rename(tmp, Join(w.dir, name)); err != nil {
		return nil, err
	}
	return records, nil
}

func (w *WAL) rotate() error {
	if w.cur != nil {
		if err := w.sync(); err != nil {
			return err
		}
		if err := w.cur.Close(); err != nil {
			return err
		}
		w.Stats.Rotations++
	}
	name := segName(w.nextLSN)
	f, err := w.fs.Create(Join(w.dir, name))
	if err != nil {
		return err
	}
	w.cur = f
	w.curName = name
	w.curSize = 0
	return nil
}

// Append frames and writes rec, assigning and returning its LSN. The write
// is durable after the next Sync (group commit); call Sync explicitly for
// a hard barrier.
func (w *WAL) Append(rec *Record) (uint64, error) {
	rec.LSN = w.nextLSN
	payload := rec.encode(make([]byte, 0, 256))
	if w.curSize > 0 && w.curSize+int64(len(payload))+frameHeader > w.opts.SegmentSize {
		if err := w.rotate(); err != nil {
			return 0, err
		}
	}
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	if _, err := w.cur.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.cur.Write(payload); err != nil {
		return 0, err
	}
	w.curSize += int64(len(payload)) + frameHeader
	w.nextLSN++
	w.Stats.Appends++
	w.dirty = true
	if w.opts.FsyncInterval == 0 {
		return rec.LSN, w.sync()
	}
	return rec.LSN, nil
}

func (w *WAL) sync() error {
	if !w.dirty {
		return nil
	}
	start := w.opts.Clock()
	if err := w.cur.Sync(); err != nil {
		return err
	}
	w.dirty = false
	w.lastSync = w.opts.Clock()
	w.Stats.Syncs++
	if w.opts.Observer.Fsync != nil {
		w.opts.Observer.Fsync(w.lastSync.Sub(start))
	}
	return nil
}

// SetObserver installs (or replaces) the telemetry observer. Single-writer
// like every other WAL method.
func (w *WAL) SetObserver(o Observer) { w.opts.Observer = o }

// Sync forces an fsync of the current segment.
func (w *WAL) Sync() error { return w.sync() }

// MaybeSync fsyncs when the group-commit interval has elapsed since the
// last sync. Hosts call it from their timer tick.
func (w *WAL) MaybeSync(now time.Time) error {
	if w.dirty && now.Sub(w.lastSync) >= w.opts.FsyncInterval {
		return w.sync()
	}
	return nil
}

// NextLSN returns the LSN the next Append will receive.
func (w *WAL) NextLSN() uint64 { return w.nextLSN }

// GC removes every segment whose records all have LSN < keepLSN. The
// current segment is never removed. Called after a snapshot at keepLSN-1
// makes older records redundant.
func (w *WAL) GC(keepLSN uint64) error {
	names, err := w.fs.ReadDir(w.dir)
	if err != nil {
		return err
	}
	var segs []string
	firsts := make(map[string]uint64)
	for _, n := range names {
		if first, ok := parseSegName(n); ok {
			segs = append(segs, n)
			firsts[n] = first
		}
	}
	sort.Strings(segs)
	removed := 0
	for i := 0; i+1 < len(segs); i++ {
		if segs[i] == w.curName {
			break
		}
		// Segment i's records all precede segment i+1's first LSN.
		if firsts[segs[i+1]] <= keepLSN {
			if err := w.fs.Remove(Join(w.dir, segs[i])); err != nil {
				return err
			}
			removed++
			continue
		}
		break
	}
	if removed > 0 && w.opts.Observer.GC != nil {
		w.opts.Observer.GC(removed)
	}
	return nil
}

// SegmentCount returns the number of live segment files (diagnostics and
// GC tests).
func (w *WAL) SegmentCount() int {
	names, err := w.fs.ReadDir(w.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, name := range names {
		if _, ok := parseSegName(name); ok {
			n++
		}
	}
	return n
}

// Close syncs and closes the current segment.
func (w *WAL) Close() error {
	if w.cur == nil {
		return nil
	}
	if err := w.sync(); err != nil {
		return err
	}
	err := w.cur.Close()
	w.cur = nil
	return err
}

// BlockRecord builds a KindBlock record.
func BlockRecord(seq types.SeqNum, primary types.NodeID, batch *types.Batch, results []types.Value) *Record {
	return &Record{Kind: KindBlock, Seq: seq, Primary: primary, Batch: batch, Results: results}
}

// ProgressRecord builds a KindProgress record. batchDigest identifies the
// batch whose lock acquisition advanced k_max; view is the PBFT view at
// that moment.
func ProgressRecord(kmax types.SeqNum, prefix types.Digest, lastCheckpoint types.SeqNum, batchDigest types.Digest, view types.View) *Record {
	return &Record{Kind: KindProgress, Seq: kmax, PrefixDigest: prefix, LastCheckpoint: lastCheckpoint, BatchDigest: batchDigest, View: view}
}

// EvidenceRecord builds a KindEvidence record around an opaque payload
// (internal/evidence owns the encoding).
func EvidenceRecord(payload []byte) *Record {
	return &Record{Kind: KindEvidence, Payload: payload}
}
