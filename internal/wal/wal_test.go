package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
	"time"

	"ringbft/internal/store"
	"ringbft/internal/types"
)

func testBatch(client types.ClientID, seq uint64, keys ...types.Key) *types.Batch {
	t := types.Txn{ID: types.TxnID{Client: client, Seq: seq}, Delta: 5}
	t.Reads = append(t.Reads, keys...)
	t.Writes = append(t.Writes, keys...)
	return &types.Batch{Txns: []types.Txn{t}, Involved: []types.ShardID{0}}
}

func appendN(t *testing.T, w *WAL, n int, startSeq int) {
	t.Helper()
	for i := 0; i < n; i++ {
		seq := types.SeqNum(startSeq + i)
		var err error
		if i%2 == 0 {
			_, err = w.Append(BlockRecord(seq, types.ReplicaNode(0, 0), testBatch(1, uint64(seq), types.Key(i)), []types.Value{types.Value(i)}))
		} else {
			_, err = w.Append(ProgressRecord(seq, types.Digest{byte(i)}, 0, types.Digest{byte(i + 1)}, 0))
		}
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	fs := NewMemFS()
	w, recs, err := Open(fs, "d", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	b := testBatch(7, 42, 1, 2, 3)
	if _, err := w.Append(BlockRecord(9, types.ReplicaNode(2, 3), b, []types.Value{11, 12})); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(ProgressRecord(9, types.Digest{1, 2, 3}, 8, types.Digest{4}, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, recs, err := Open(fs, "d", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2", len(recs))
	}
	blk := recs[0]
	if blk.Kind != KindBlock || blk.Seq != 9 || blk.Primary != types.ReplicaNode(2, 3) {
		t.Fatalf("block record mangled: %+v", blk)
	}
	if blk.Batch.Digest() != b.Digest() {
		t.Fatal("batch digest changed across encode/decode")
	}
	if len(blk.Results) != 2 || blk.Results[0] != 11 || blk.Results[1] != 12 {
		t.Fatalf("results mangled: %v", blk.Results)
	}
	prog := recs[1]
	if prog.Kind != KindProgress || prog.Seq != 9 || prog.PrefixDigest != (types.Digest{1, 2, 3}) || prog.LastCheckpoint != 8 {
		t.Fatalf("progress record mangled: %+v", prog)
	}
	if w2.NextLSN() != 3 {
		t.Fatalf("NextLSN = %d, want 3", w2.NextLSN())
	}
}

func TestSegmentRotationAndGC(t *testing.T) {
	fs := NewMemFS()
	w, _, err := Open(fs, "d", Options{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 40, 1)
	if w.SegmentCount() < 3 {
		t.Fatalf("only %d segments after 40 records at 256B segments", w.SegmentCount())
	}
	// GC below the current position must leave at least the live segment
	// and remove the rest.
	if err := w.GC(w.NextLSN()); err != nil {
		t.Fatal(err)
	}
	if got := w.SegmentCount(); got != 1 {
		t.Fatalf("GC left %d segments, want 1", got)
	}
	// Replay after GC: the surviving records still load, LSNs continue.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, recs, err := Open(fs, "d", Options{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	for i := 1; i < len(recs); i++ {
		if recs[i].LSN != recs[i-1].LSN+1 {
			t.Fatalf("non-contiguous LSNs after GC: %d then %d", recs[i-1].LSN, recs[i].LSN)
		}
	}
	if w2.NextLSN() != 41 {
		t.Fatalf("NextLSN = %d, want 41", w2.NextLSN())
	}
}

func TestGCKeepsUncoveredSegments(t *testing.T) {
	fs := NewMemFS()
	w, _, err := Open(fs, "d", Options{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 40, 1)
	before := w.SegmentCount()
	// keepLSN = 1 covers nothing: no segment may be removed.
	if err := w.GC(1); err != nil {
		t.Fatal(err)
	}
	if got := w.SegmentCount(); got != before {
		t.Fatalf("GC(1) removed segments: %d -> %d", before, got)
	}
}

// tornTailCase mutates a healthy encoded segment and states how many of the
// original n records must survive replay.
type tornTailCase struct {
	name    string
	mutate  func(data []byte, w *WAL) []byte
	survive int
}

func lastFrameOffset(data []byte) int {
	off, last := 0, 0
	for off+frameHeader <= len(data) {
		size := int(binary.BigEndian.Uint32(data[off:]))
		if off+frameHeader+size > len(data) {
			break
		}
		last = off
		off += frameHeader + size
	}
	return last
}

func TestTornTailRecovery(t *testing.T) {
	const n = 8
	cases := []tornTailCase{
		{"truncated mid-record", func(data []byte, _ *WAL) []byte {
			return data[:len(data)-3]
		}, n - 1},
		{"truncated mid-header", func(data []byte, _ *WAL) []byte {
			return data[:lastFrameOffset(data)+4]
		}, n - 1},
		{"bit flip in last payload", func(data []byte, _ *WAL) []byte {
			data[len(data)-1] ^= 0x40
			return data
		}, n - 1},
		{"bit flip in last length", func(data []byte, _ *WAL) []byte {
			data[lastFrameOffset(data)] ^= 0x7F
			return data
		}, n - 1},
		{"duplicated trailing record", func(data []byte, _ *WAL) []byte {
			off := lastFrameOffset(data)
			return append(data, data[off:]...)
		}, n},
		{"garbage appended", func(data []byte, _ *WAL) []byte {
			return append(data, 0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12)
		}, n},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := NewMemFS()
			w, _, err := Open(fs, "d", Options{})
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, w, n, 1)
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			seg := Join("d", segName(1))
			data, ok := fs.ReadFile(seg)
			if !ok {
				t.Fatal("segment file missing")
			}
			fs.WriteFile(seg, tc.mutate(data, w))

			w2, recs, err := Open(fs, "d", Options{})
			if err != nil {
				t.Fatalf("replay with torn tail failed: %v", err)
			}
			if len(recs) != tc.survive {
				t.Fatalf("replayed %d records, want %d", len(recs), tc.survive)
			}
			// The log must accept appends and replay cleanly afterwards.
			appendN(t, w2, 2, 100)
			if err := w2.Close(); err != nil {
				t.Fatal(err)
			}
			w3, recs, err := Open(fs, "d", Options{})
			if err != nil {
				t.Fatalf("second replay failed: %v", err)
			}
			defer w3.Close()
			if len(recs) != tc.survive+2 {
				t.Fatalf("after repair+append: %d records, want %d", len(recs), tc.survive+2)
			}
			for i := 1; i < len(recs); i++ {
				if recs[i].LSN != recs[i-1].LSN+1 {
					t.Fatalf("LSN gap after repair: %d then %d", recs[i-1].LSN, recs[i].LSN)
				}
			}
		})
	}
}

func TestCorruptionInSyncedMiddleIsFatal(t *testing.T) {
	fs := NewMemFS()
	w, _, err := Open(fs, "d", Options{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 40, 1) // several segments
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Damage the FIRST segment: acknowledged data, not a tail.
	seg := Join("d", segName(1))
	data, ok := fs.ReadFile(seg)
	if !ok {
		t.Fatal("first segment missing")
	}
	data[frameHeader+2] ^= 0xFF
	fs.WriteFile(seg, data)
	if _, _, err := Open(fs, "d", Options{SegmentSize: 256}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-log corruption: err = %v, want ErrCorrupt", err)
	}
}

func TestGroupCommitBatchesFsync(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	fs := NewMemFS()
	w, _, err := Open(fs, "d", Options{FsyncInterval: 10 * time.Millisecond, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 10, 1)
	if w.Stats.Syncs != 0 {
		t.Fatalf("appends synced eagerly under group commit: %d syncs", w.Stats.Syncs)
	}
	// Before the interval: no sync.
	now = now.Add(5 * time.Millisecond)
	if err := w.MaybeSync(now); err != nil {
		t.Fatal(err)
	}
	if w.Stats.Syncs != 0 {
		t.Fatalf("synced before the interval: %d", w.Stats.Syncs)
	}
	now = now.Add(6 * time.Millisecond)
	if err := w.MaybeSync(now); err != nil {
		t.Fatal(err)
	}
	if w.Stats.Syncs != 1 {
		t.Fatalf("interval elapsed but syncs = %d, want 1", w.Stats.Syncs)
	}
	// Idempotent when clean.
	now = now.Add(time.Hour)
	if err := w.MaybeSync(now); err != nil {
		t.Fatal(err)
	}
	if w.Stats.Syncs != 1 {
		t.Fatalf("clean log synced again: %d", w.Stats.Syncs)
	}
	// FsyncInterval 0 syncs every append.
	w0, _, err := Open(fs, "d0", Options{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer w0.Close()
	appendN(t, w0, 3, 1)
	if w0.Stats.Syncs != 3 {
		t.Fatalf("interval 0: %d syncs for 3 appends", w0.Stats.Syncs)
	}
}

func TestSnapshotRoundTripAndAtomicity(t *testing.T) {
	fs := NewMemFS()
	snap := &Snapshot{
		Shard:            2,
		StableSeq:        64,
		CheckpointDigest: types.Digest{9, 9},
		KMax:             70,
		PrefixDigest:     types.Digest{7},
		LastCheckpoint:   64,
		WalLSN:           123,
		Base:             BlockHeader{Seq: 60, Digest: types.Digest{1}, PrevHash: types.Digest{2}, TxnCount: 3},
		BaseIndex:        60,
		Blocks: []SnapBlock{
			{Seq: 61, Primary: types.ReplicaNode(2, 1), Batch: testBatch(3, 5, 8), Results: []types.Value{44}},
		},
		Pairs: []store.Pair{{K: 1, V: 10}, {K: 4, V: 40}},
	}
	if err := WriteSnapshot(fs, "s", snap); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLatest(fs, "s")
	if err != nil {
		t.Fatal(err)
	}
	if got.StableSeq != 64 || got.KMax != 70 || got.WalLSN != 123 || got.BaseIndex != 60 {
		t.Fatalf("snapshot watermarks mangled: %+v", got)
	}
	if len(got.Blocks) != 1 || got.Blocks[0].Batch.Digest() != snap.Blocks[0].Batch.Digest() {
		t.Fatal("snapshot blocks mangled")
	}
	if len(got.Pairs) != 2 || got.Pairs[1] != (store.Pair{K: 4, V: 40}) {
		t.Fatalf("snapshot pairs mangled: %v", got.Pairs)
	}

	// A corrupted newest generation falls back to the previous one.
	snap2 := *snap
	snap2.StableSeq = 128
	if err := WriteSnapshot(fs, "s", &snap2); err != nil {
		t.Fatal(err)
	}
	name := Join("s", snapName(128))
	data, _ := fs.ReadFile(name)
	data[len(data)/2] ^= 0xFF
	fs.WriteFile(name, data)
	got, err = LoadLatest(fs, "s")
	if err != nil {
		t.Fatal(err)
	}
	if got.StableSeq != 64 {
		t.Fatalf("fallback loaded StableSeq %d, want 64", got.StableSeq)
	}

	// No valid snapshot at all.
	if _, err := LoadLatest(fs, "empty"); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("want ErrNoSnapshot, got %v", err)
	}
}

func TestSnapshotGenerationsPruned(t *testing.T) {
	fs := NewMemFS()
	for i := 1; i <= 5; i++ {
		s := &Snapshot{StableSeq: types.SeqNum(i * 10)}
		if err := WriteSnapshot(fs, "s", s); err != nil {
			t.Fatal(err)
		}
	}
	names, err := fs.ReadDir("s")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != snapKeep {
		t.Fatalf("%d snapshot files retained, want %d (%v)", len(names), snapKeep, names)
	}
	got, err := LoadLatest(fs, "s")
	if err != nil {
		t.Fatal(err)
	}
	if got.StableSeq != 50 {
		t.Fatalf("latest snapshot StableSeq = %d, want 50", got.StableSeq)
	}
}

func TestManagerRecoverSnapshotPlusTail(t *testing.T) {
	fs := NewMemFS()
	m, rec, err := OpenManager(ManagerOptions{FS: fs, Dir: "r0"})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Empty() {
		t.Fatal("fresh manager recovered state")
	}
	// 4 records, snapshot, 3 more records: recovery = snapshot + 3 tail.
	for i := 1; i <= 4; i++ {
		if err := m.LogProgress(types.SeqNum(i), types.Digest{byte(i)}, 0, types.Digest{}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.SaveSnapshot(&Snapshot{StableSeq: 4, KMax: 4}); err != nil {
		t.Fatal(err)
	}
	for i := 5; i <= 7; i++ {
		if err := m.LogBlock(types.SeqNum(i), types.ReplicaNode(0, 0), testBatch(1, uint64(i), 1), []types.Value{types.Value(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, rec, err := OpenManager(ManagerOptions{FS: fs, Dir: "r0"})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if rec.Snap == nil || rec.Snap.KMax != 4 {
		t.Fatalf("snapshot not recovered: %+v", rec.Snap)
	}
	if len(rec.Tail) != 3 {
		t.Fatalf("tail has %d records, want 3", len(rec.Tail))
	}
	for i, r := range rec.Tail {
		if r.Kind != KindBlock || r.Seq != types.SeqNum(5+i) {
			t.Fatalf("tail[%d] = %+v", i, r)
		}
	}
}

func TestManagerReset(t *testing.T) {
	fs := NewMemFS()
	m, _, err := OpenManager(ManagerOptions{FS: fs, Dir: "r0"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := m.LogProgress(types.SeqNum(i), types.Digest{}, 0, types.Digest{}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Reset(&Snapshot{StableSeq: 99, KMax: 99}); err != nil {
		t.Fatal(err)
	}
	if err := m.LogProgress(100, types.Digest{}, 99, types.Digest{}, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, rec, err := OpenManager(ManagerOptions{FS: fs, Dir: "r0"})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if rec.Snap == nil || rec.Snap.KMax != 99 {
		t.Fatalf("reset snapshot not recovered: %+v", rec.Snap)
	}
	if len(rec.Tail) != 1 || rec.Tail[0].Seq != 100 {
		t.Fatalf("tail after reset: %+v", rec.Tail)
	}
}

func TestSaveSnapshotGCsCoveredSegments(t *testing.T) {
	fs := NewMemFS()
	m, _, err := OpenManager(ManagerOptions{FS: fs, Dir: "r0", SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 1; i <= 60; i++ {
		if err := m.LogBlock(types.SeqNum(i), types.ReplicaNode(0, 0), testBatch(1, uint64(i), types.Key(i)), []types.Value{1}); err != nil {
			t.Fatal(err)
		}
	}
	if m.WAL().SegmentCount() < 3 {
		t.Fatalf("expected several segments, got %d", m.WAL().SegmentCount())
	}
	if err := m.SaveSnapshot(&Snapshot{StableSeq: 60, KMax: 60}); err != nil {
		t.Fatal(err)
	}
	if got := m.WAL().SegmentCount(); got != 1 {
		t.Fatalf("snapshot left %d WAL segments, want 1", got)
	}
}

func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m, rec, err := OpenManager(ManagerOptions{Dir: Join(dir, "r0")})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Empty() {
		t.Fatal("fresh OSFS manager recovered state")
	}
	if err := m.LogProgress(1, types.Digest{1}, 0, types.Digest{}, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.SaveSnapshot(&Snapshot{StableSeq: 1, KMax: 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.LogProgress(2, types.Digest{2}, 0, types.Digest{}, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, rec, err := OpenManager(ManagerOptions{Dir: Join(dir, "r0")})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if rec.Snap == nil || rec.Snap.KMax != 1 || len(rec.Tail) != 1 {
		t.Fatalf("OSFS recovery: snap=%+v tail=%d", rec.Snap, len(rec.Tail))
	}
}

func TestReplayManyRecordsAcrossReopen(t *testing.T) {
	fs := NewMemFS()
	total := 0
	for gen := 0; gen < 5; gen++ {
		w, recs, err := Open(fs, "d", Options{SegmentSize: 512})
		if err != nil {
			t.Fatalf("gen %d: %v", gen, err)
		}
		if len(recs) != total {
			t.Fatalf("gen %d replayed %d, want %d", gen, len(recs), total)
		}
		appendN(t, w, 13, gen*100)
		total += 13
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRecordEncodeDecodeFuzzSeedShapes(t *testing.T) {
	// Shapes that exercised decoder bounds in development.
	recs := []*Record{
		BlockRecord(0, types.NodeID{}, &types.Batch{}, nil),
		BlockRecord(1, types.ClientNode(3), testBatch(1, 1), []types.Value{}),
		ProgressRecord(1<<40, types.Digest{0xFF}, 1<<39, types.Digest{}, 0),
	}
	for i, rec := range recs {
		payload := rec.encode(nil)
		got := decodeRecord(payload)
		if got == nil {
			t.Fatalf("record %d did not round-trip", i)
		}
		if fmt.Sprintf("%+v", *got) == "" {
			t.Fatal("unreachable")
		}
	}
	// Truncations of a valid payload must never decode.
	full := recs[1].encode(nil)
	for cut := 0; cut < len(full); cut++ {
		if decodeRecord(full[:cut]) != nil {
			t.Fatalf("truncated payload (%d/%d bytes) decoded", cut, len(full))
		}
	}
}

// TestGCGapAfterTornNewestSnapshot: segments between two snapshot
// generations are GC'd by the newer one; when the newer generation is torn,
// recovery must NOT replay the orphaned tail across the gap (that would
// silently drop a window of writes) — it falls back to the older snapshot
// alone, discards the orphans, and leaves a log that recovers cleanly.
func TestGCGapAfterTornNewestSnapshot(t *testing.T) {
	fs := NewMemFS()
	m, _, err := OpenManager(ManagerOptions{FS: fs, Dir: "r0", SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	log := func(from, to int) {
		for i := from; i <= to; i++ {
			if err := m.LogBlock(types.SeqNum(i), types.ReplicaNode(0, 0), testBatch(1, uint64(i), types.Key(i)), []types.Value{1}); err != nil {
				t.Fatal(err)
			}
		}
	}
	log(1, 20)
	if err := m.SaveSnapshot(&Snapshot{StableSeq: 20, KMax: 20}); err != nil {
		t.Fatal(err)
	}
	log(21, 40) // rotates several segments; GC'd by the next snapshot
	if err := m.SaveSnapshot(&Snapshot{StableSeq: 40, KMax: 40}); err != nil {
		t.Fatal(err)
	}
	log(41, 45) // orphaned tail once snapshot 40 is torn
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	name := Join("r0", "snap", snapName(40))
	data, ok := fs.ReadFile(name)
	if !ok {
		t.Fatal("snapshot 40 missing")
	}
	data[len(data)/2] ^= 0xFF
	fs.WriteFile(name, data)

	m2, rec, err := OpenManager(ManagerOptions{FS: fs, Dir: "r0", SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snap == nil || rec.Snap.KMax != 20 {
		t.Fatalf("fallback snapshot wrong: %+v", rec.Snap)
	}
	if len(rec.Tail) != 0 {
		t.Fatalf("replayed %d orphaned records across a GC gap", len(rec.Tail))
	}
	// The repaired log keeps working: new records land and recover on top
	// of the fallback snapshot.
	if err := m2.LogBlock(46, types.ReplicaNode(0, 0), testBatch(1, 46, 1), []types.Value{1}); err != nil {
		t.Fatal(err)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	m3, rec, err := OpenManager(ManagerOptions{FS: fs, Dir: "r0", SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	if rec.Snap == nil || rec.Snap.KMax != 20 || len(rec.Tail) != 1 || rec.Tail[0].Seq != 46 {
		t.Fatalf("post-repair recovery wrong: snap=%+v tail=%d", rec.Snap, len(rec.Tail))
	}
}
