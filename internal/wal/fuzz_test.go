package wal

import (
	"bytes"
	"testing"

	"ringbft/internal/types"
)

// FuzzReplayTornTail: any mutation of the final segment's byte suffix —
// truncation, garbage, bit flips, duplicated frames — must recover to a
// valid prefix of the original records, never error, and leave a log that
// accepts appends and replays cleanly afterwards.
func FuzzReplayTornTail(f *testing.F) {
	f.Add(uint16(0), []byte{})
	f.Add(uint16(3), []byte{0xDE, 0xAD})
	f.Add(uint16(17), []byte{0x00, 0x00, 0x00, 0x08, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add(uint16(1000), []byte{0xFF})

	// One healthy reference log, rebuilt per fuzz call from its bytes.
	ref := NewMemFS()
	w, _, err := Open(ref, "d", Options{})
	if err != nil {
		f.Fatal(err)
	}
	const n = 6
	for i := 0; i < n; i++ {
		if _, err := w.Append(BlockRecord(types.SeqNum(i+1), types.ReplicaNode(0, 0),
			testBatch(1, uint64(i+1), types.Key(i)), []types.Value{types.Value(i)})); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	healthy, _ := ref.ReadFile(Join("d", segName(1)))
	var refRecs []Record
	{
		w, recs, err := Open(ref, "d", Options{})
		if err != nil {
			f.Fatal(err)
		}
		refRecs = recs
		w.Close()
	}

	f.Fuzz(func(t *testing.T, cut uint16, garbage []byte) {
		keep := int(cut) % (len(healthy) + 1)
		mutated := append(append([]byte(nil), healthy[:keep]...), garbage...)

		fs := NewMemFS()
		fs.WriteFile(Join("d", segName(1)), mutated)
		w, recs, err := Open(fs, "d", Options{})
		if err != nil {
			t.Fatalf("replay errored on torn tail (keep=%d, garbage=%d): %v", keep, len(garbage), err)
		}
		// Recovered records must be a prefix of the originals.
		if len(recs) > len(refRecs) {
			t.Fatalf("recovered %d records from a %d-record log", len(recs), len(refRecs))
		}
		for i := range recs {
			want := refRecs[i]
			if recs[i].LSN != want.LSN || recs[i].Seq != want.Seq ||
				recs[i].Batch.Digest() != want.Batch.Digest() {
				t.Fatalf("record %d is not a faithful prefix: got %+v", i, recs[i])
			}
		}
		// The repaired log stays usable: append, close, replay.
		if _, err := w.Append(ProgressRecord(99, types.Digest{9}, 0, types.Digest{}, 0)); err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		w2, recs2, err := Open(fs, "d", Options{})
		if err != nil {
			t.Fatalf("second replay after repair: %v", err)
		}
		defer w2.Close()
		if len(recs2) != len(recs)+1 {
			t.Fatalf("after repair+append: %d records, want %d", len(recs2), len(recs)+1)
		}
	})
}

// FuzzDecodeRecord: arbitrary payload bytes must either decode to a
// well-formed record or return nil — never panic or over-read.
func FuzzDecodeRecord(f *testing.F) {
	valid := BlockRecord(3, types.ReplicaNode(1, 2), testBatch(4, 5, 6, 7), []types.Value{8}).encode(nil)
	f.Add(valid)
	f.Add(ProgressRecord(1, types.Digest{1}, 0, types.Digest{}, 0).encode(nil))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, payload []byte) {
		rec := decodeRecord(payload)
		if rec == nil {
			return
		}
		// A decoded record must re-encode to the identical bytes (canonical
		// encoding — no two byte strings decode to the same record).
		if !bytes.Equal(rec.encode(nil), payload) {
			t.Fatalf("decode/encode not canonical for %x", payload)
		}
	})
}
