package wal

import (
	"fmt"
	"testing"
	"time"

	"ringbft/internal/store"
	"ringbft/internal/types"
)

// Reference numbers live in bench_baseline.json (1 vCPU container host,
// MemFS — isolates framing/encoding cost from disk, so group vs per-append
// sync differ little here):
//
//	BenchmarkAppend/batch=1/sync=group    ~350 ns/op
//	BenchmarkAppend/batch=100/sync=group  ~17 µs/op
//	BenchmarkReplay/records=1000          ~1.8 ms/op
//
// On OSFS, appends are fsync-bound; the group-commit interval is precisely
// the knob that amortizes that cost across a batch of records.

func benchBatch(n int) *types.Batch {
	txns := make([]types.Txn, n)
	for i := range txns {
		txns[i] = types.Txn{
			ID:     types.TxnID{Client: 1, Seq: uint64(i + 1)},
			Reads:  []types.Key{types.Key(i), types.Key(i + 1)},
			Writes: []types.Key{types.Key(i)},
			Delta:  5,
		}
	}
	return &types.Batch{Txns: txns, Involved: []types.ShardID{0}}
}

func BenchmarkAppend(b *testing.B) {
	for _, size := range []int{1, 10, 100} {
		for _, mode := range []string{"group", "every"} {
			b.Run(fmt.Sprintf("batch=%d/sync=%s", size, mode), func(b *testing.B) {
				interval := time.Duration(0)
				if mode == "group" {
					interval = 5 * time.Millisecond
				}
				w, _, err := Open(NewMemFS(), "d", Options{FsyncInterval: interval})
				if err != nil {
					b.Fatal(err)
				}
				defer w.Close()
				batch := benchBatch(size)
				results := make([]types.Value, size)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := w.Append(BlockRecord(types.SeqNum(i+1), types.ReplicaNode(0, 0), batch, results)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkReplay(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			fs := NewMemFS()
			w, _, err := Open(fs, "d", Options{SegmentSize: 1 << 20})
			if err != nil {
				b.Fatal(err)
			}
			batch := benchBatch(10)
			for i := 0; i < n; i++ {
				if _, err := w.Append(BlockRecord(types.SeqNum(i+1), types.ReplicaNode(0, 0), batch, make([]types.Value, 10))); err != nil {
					b.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w, recs, err := Open(fs, "d", Options{SegmentSize: 1 << 20})
				if err != nil {
					b.Fatal(err)
				}
				if len(recs) != n {
					b.Fatalf("replayed %d, want %d", len(recs), n)
				}
				w.Close()
			}
		})
	}
}

func BenchmarkSnapshotEncode(b *testing.B) {
	snap := &Snapshot{StableSeq: 64, KMax: 64}
	for i := 0; i < 4096; i++ {
		snap.Pairs = append(snap.Pairs, store.Pair{K: types.Key(i), V: types.Value(i * 3)})
	}
	for i := 0; i < 8; i++ {
		snap.Blocks = append(snap.Blocks, SnapBlock{Seq: types.SeqNum(i + 57), Batch: benchBatch(10), Results: make([]types.Value, 10)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := snap.Encode()
		if _, err := DecodeSnapshot(buf); err != nil {
			b.Fatal(err)
		}
	}
}
