package wal

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ringbft/internal/types"
)

// RecordKind discriminates WAL record payloads.
type RecordKind uint8

const (
	// KindBlock records one executed block: the ordered batch plus the
	// per-transaction combined results. Results ride along so crash
	// recovery can re-apply the writes deterministically without the
	// cross-shard Σ values that produced them (a restarted replica cannot
	// re-collect remote read sets).
	KindBlock RecordKind = iota + 1
	// KindProgress records the consensus watermarks advanced at lock time:
	// k_max, the rolling prefix digest, the last checkpoint scheduled, and
	// the digest of the batch whose lock advanced k_max. Cross-shard blocks
	// execute after their sequence locks, so these cannot be derived from
	// block records alone — and the batch digest lets recovery mark the
	// batch as already ordered, so a restarted primary never re-proposes a
	// batch the shard committed before the crash.
	KindProgress
	// KindEvidence records one opaque payload for the misbehavior evidence
	// log (internal/evidence). The WAL does not interpret the bytes — it
	// only gives evidence the same framing, checksumming, and torn-tail
	// repair the consensus log gets, so an accusation survives a crash with
	// the offending messages intact.
	KindEvidence
)

// Record is one WAL entry. LSN is assigned by Append and is strictly
// increasing across segments; replay uses it to cut duplicated tails.
type Record struct {
	LSN  uint64
	Kind RecordKind

	// KindBlock fields.
	Seq     types.SeqNum
	Primary types.NodeID
	Batch   *types.Batch
	Results []types.Value

	// KindProgress fields (Seq doubles as k_max).
	PrefixDigest   types.Digest
	LastCheckpoint types.SeqNum
	BatchDigest    types.Digest
	View           types.View // view at lock time, so recovery rejoins it

	// KindEvidence field: the encoded evidence record, opaque to the WAL.
	Payload []byte
}

// ErrCorrupt reports a record that fails structural or checksum validation
// somewhere other than the replayable tail of the last segment.
var ErrCorrupt = errors.New("wal: corrupt record")

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

type reader struct {
	buf []byte
	off int
	err bool
}

func (r *reader) u64() uint64 {
	if r.err || r.off+8 > len(r.buf) {
		r.err = true
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) digest() (d types.Digest) {
	if r.err || r.off+32 > len(r.buf) {
		r.err = true
		return
	}
	copy(d[:], r.buf[r.off:])
	r.off += 32
	return
}

func (r *reader) count(max uint64) int {
	n := r.u64()
	// Length sanity bound: a hostile or damaged length must not drive an
	// allocation; every element needs at least 8 encoded bytes.
	if n > max || n*8 > uint64(len(r.buf)-r.off) {
		r.err = true
		return 0
	}
	return int(n)
}

// appendBatch encodes b canonically (same field order as Batch.Digest).
func appendBatch(dst []byte, b *types.Batch) []byte {
	dst = appendU64(dst, uint64(len(b.Txns)))
	for i := range b.Txns {
		t := &b.Txns[i]
		dst = appendU64(dst, uint64(t.ID.Client))
		dst = appendU64(dst, t.ID.Seq)
		dst = appendU64(dst, uint64(len(t.Reads)))
		for _, k := range t.Reads {
			dst = appendU64(dst, uint64(k))
		}
		dst = appendU64(dst, uint64(len(t.Writes)))
		for _, k := range t.Writes {
			dst = appendU64(dst, uint64(k))
		}
		dst = appendU64(dst, uint64(t.Delta))
	}
	dst = appendU64(dst, uint64(len(b.Involved)))
	for _, s := range b.Involved {
		dst = appendU64(dst, uint64(s))
	}
	dst = appendU64(dst, uint64(len(b.Reqs)))
	for _, n := range b.Reqs {
		dst = appendU64(dst, uint64(n))
	}
	return dst
}

func (r *reader) batch() *types.Batch {
	nTxns := r.count(1 << 20)
	b := &types.Batch{Txns: make([]types.Txn, nTxns)}
	for i := 0; i < nTxns; i++ {
		t := &b.Txns[i]
		t.ID.Client = types.ClientID(r.u64())
		t.ID.Seq = r.u64()
		nr := r.count(1 << 20)
		t.Reads = make([]types.Key, nr)
		for j := range t.Reads {
			t.Reads[j] = types.Key(r.u64())
		}
		nw := r.count(1 << 20)
		t.Writes = make([]types.Key, nw)
		for j := range t.Writes {
			t.Writes[j] = types.Key(r.u64())
		}
		t.Delta = types.Value(r.u64())
	}
	ni := r.count(1 << 16)
	b.Involved = make([]types.ShardID, ni)
	for j := range b.Involved {
		b.Involved[j] = types.ShardID(r.u64())
	}
	nq := r.count(1 << 20)
	if nq > 0 {
		b.Reqs = make([]uint32, nq)
		for j := range b.Reqs {
			b.Reqs[j] = uint32(r.u64())
		}
	}
	if r.err {
		return nil
	}
	return b
}

func appendNodeID(dst []byte, id types.NodeID) []byte {
	dst = append(dst, byte(id.Kind))
	dst = appendU64(dst, uint64(id.Shard))
	return appendU64(dst, uint64(id.Index))
}

func (r *reader) nodeID() (id types.NodeID) {
	if r.err || r.off >= len(r.buf) {
		r.err = true
		return
	}
	id.Kind = types.NodeKind(r.buf[r.off])
	r.off++
	id.Shard = types.ShardID(r.u64())
	id.Index = int(r.u64())
	return
}

// encode serializes rec's payload (everything but the frame).
func (rec *Record) encode(dst []byte) []byte {
	dst = appendU64(dst, rec.LSN)
	dst = append(dst, byte(rec.Kind))
	switch rec.Kind {
	case KindBlock:
		dst = appendU64(dst, uint64(rec.Seq))
		dst = appendNodeID(dst, rec.Primary)
		dst = appendBatch(dst, rec.Batch)
		dst = appendU64(dst, uint64(len(rec.Results)))
		for _, v := range rec.Results {
			dst = appendU64(dst, uint64(v))
		}
	case KindProgress:
		dst = appendU64(dst, uint64(rec.Seq))
		dst = append(dst, rec.PrefixDigest[:]...)
		dst = appendU64(dst, uint64(rec.LastCheckpoint))
		dst = append(dst, rec.BatchDigest[:]...)
		dst = appendU64(dst, uint64(rec.View))
	case KindEvidence:
		dst = appendU64(dst, uint64(len(rec.Payload)))
		dst = append(dst, rec.Payload...)
	}
	return dst
}

// decodeRecord parses one payload. A nil return means the payload is
// malformed (treated as corruption by the caller).
func decodeRecord(buf []byte) *Record {
	r := &reader{buf: buf}
	rec := &Record{LSN: r.u64()}
	if r.err || r.off >= len(buf) {
		return nil
	}
	rec.Kind = RecordKind(buf[r.off])
	r.off++
	switch rec.Kind {
	case KindBlock:
		rec.Seq = types.SeqNum(r.u64())
		rec.Primary = r.nodeID()
		rec.Batch = r.batch()
		n := r.count(1 << 20)
		rec.Results = make([]types.Value, n)
		for i := range rec.Results {
			rec.Results[i] = types.Value(r.u64())
		}
	case KindProgress:
		rec.Seq = types.SeqNum(r.u64())
		rec.PrefixDigest = r.digest()
		rec.LastCheckpoint = types.SeqNum(r.u64())
		rec.BatchDigest = r.digest()
		rec.View = types.View(r.u64())
	case KindEvidence:
		n := r.u64()
		if r.err || n > uint64(len(buf)-r.off) {
			return nil
		}
		rec.Payload = append([]byte(nil), buf[r.off:r.off+int(n)]...)
		r.off += int(n)
	default:
		return nil
	}
	if r.err || r.off != len(buf) {
		return nil
	}
	return rec
}

func (k RecordKind) String() string {
	switch k {
	case KindBlock:
		return "block"
	case KindProgress:
		return "progress"
	case KindEvidence:
		return "evidence"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}
