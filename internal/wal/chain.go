package wal

import (
	"ringbft/internal/ledger"
	"ringbft/internal/store"
	"ringbft/internal/types"
)

// CaptureChain fills the snapshot's ledger section from a live chain:
// the base header the retained suffix rests on, and every retained block
// with its cached execution results (resolved through results, typically
// the replica's executed-batches cache).
func (s *Snapshot) CaptureChain(c *ledger.Chain, results func(types.Digest) []types.Value) {
	base, baseIdx := c.Base()
	s.Base = BlockHeader{
		Seq: base.Seq, Digest: base.Digest, Primary: base.Primary,
		PrevHash: base.PrevHash, MerkleRoot: base.MerkleRoot, TxnCount: base.TxnCount,
	}
	s.BaseIndex = baseIdx
	s.Blocks = s.Blocks[:0]
	for _, b := range c.Blocks()[1:] {
		if b.Batch == nil {
			continue
		}
		s.Blocks = append(s.Blocks, SnapBlock{
			Seq: b.Seq, Primary: b.Primary, Batch: b.Batch, Results: results(b.Digest),
		})
	}
}

// SequentialState is what ApplySequential recovers for a replica that
// executes strictly in sequence order (the AHL and Sharper baselines,
// whose executed watermark doubles as k_max).
type SequentialState struct {
	Chain    *ledger.Chain
	ExecNext types.SeqNum
	View     types.View
	LastSnap types.SeqNum
}

// ApplySequential rebuilds store and ledger state from a snapshot plus the
// WAL tail for an in-order executor: the snapshot's pairs replace the
// (preloaded) table, the captured chain is rebuilt, and tail block records
// re-apply their writes from the recorded results. onBatch fires for every
// recovered batch so the caller can repopulate its executed/ordered
// caches. chain is the replica's current (genesis) chain, used when no
// snapshot was recovered.
func (rec *Recovered) ApplySequential(kv *store.KV, chain *ledger.Chain, shard types.ShardID, z int, onBatch func(types.Digest, []types.Value)) SequentialState {
	st := SequentialState{Chain: chain}
	if snap := rec.Snap; snap != nil {
		st.View = snap.View
		kv.Restore(snap.Pairs)
		st.Chain = snap.RebuildChain(func(sb *SnapBlock) {
			onBatch(sb.Batch.Digest(), sb.Results)
		})
		st.ExecNext = snap.KMax
		st.LastSnap = snap.StableSeq
	}
	for i := range rec.Tail {
		t := &rec.Tail[i]
		if t.Kind != KindBlock {
			continue
		}
		if len(t.Batch.Txns) > 0 {
			for j := range t.Batch.Txns {
				if j >= len(t.Results) {
					break
				}
				kv.ApplyTxnWrites(&t.Batch.Txns[j], shard, z, t.Results[j])
			}
			onBatch(t.Batch.Digest(), t.Results)
			st.Chain.Append(t.Seq, t.Primary, t.Batch)
		}
		if t.Seq > st.ExecNext {
			st.ExecNext = t.Seq
		}
	}
	return st
}

// SequentialSnapshot captures an in-order executor's current durable cut
// at executed sequence seq.
func SequentialSnapshot(shard types.ShardID, seq types.SeqNum, view types.View, kv *store.KV, chain *ledger.Chain, results func(types.Digest) []types.Value) *Snapshot {
	s := &Snapshot{
		Shard: shard, StableSeq: seq, KMax: seq, ExecSeq: seq,
		View: view, Pairs: kv.Pairs(),
	}
	s.CaptureChain(chain, results)
	return s
}

// RebuildChain reconstructs the chain a snapshot captured, re-deriving
// every hash link (so a damaged snapshot that slipped past the checksum
// still cannot produce a chain that fails Verify silently). onBlock is
// invoked per rebuilt block so the caller can repopulate caches.
func (s *Snapshot) RebuildChain(onBlock func(*SnapBlock)) *ledger.Chain {
	base := &ledger.Block{
		Seq: s.Base.Seq, Digest: s.Base.Digest, Primary: s.Base.Primary,
		PrevHash: s.Base.PrevHash, MerkleRoot: s.Base.MerkleRoot, TxnCount: s.Base.TxnCount,
	}
	c := ledger.Rebuild(s.Shard, base, s.BaseIndex, nil)
	for i := range s.Blocks {
		sb := &s.Blocks[i]
		c.Append(sb.Seq, sb.Primary, sb.Batch)
		if onBlock != nil {
			onBlock(sb)
		}
	}
	return c
}
