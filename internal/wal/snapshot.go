package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"strings"

	"ringbft/internal/store"
	"ringbft/internal/types"
)

// snapMagic versions the snapshot format.
var snapMagic = []byte("RBSNAP1\n")

const (
	snapPrefix = "snap-"
	snapSuffix = ".snap"
	// snapKeep is how many snapshot generations are retained; older files
	// are removed after a new snapshot lands (the latest alone suffices,
	// one extra survives a corrupt write of the newest).
	snapKeep = 2
)

// BlockHeader carries the chain-linking fields of the ledger block a pruned
// chain rests on, so the first retained block's PrevHash still verifies.
type BlockHeader struct {
	Seq        types.SeqNum
	Digest     types.Digest
	Primary    types.NodeID
	PrevHash   types.Digest
	MerkleRoot types.Digest
	TxnCount   int
}

// SnapBlock is one retained ledger block: enough to rebuild the block and
// to re-apply its writes without re-collecting cross-shard read sets.
type SnapBlock struct {
	Seq     types.SeqNum
	Primary types.NodeID
	Batch   *types.Batch
	Results []types.Value
}

// Snapshot is a consistent cut of a replica's durable state, positioned in
// the WAL: the key-value table, the retained ledger suffix, and the
// consensus watermarks, all as of WAL position WalLSN. Recovery loads the
// snapshot and replays records with LSN > WalLSN on top.
type Snapshot struct {
	Shard types.ShardID

	// StableSeq/CheckpointDigest anchor the snapshot to the stable PBFT
	// checkpoint that triggered it — the (seq, digest) pair nf replicas
	// signed, which peer state transfer validates against.
	StableSeq        types.SeqNum
	CheckpointDigest types.Digest

	KMax           types.SeqNum
	ExecSeq        types.SeqNum // contiguous executed-prefix watermark
	View           types.View   // PBFT view at the cut
	PrefixDigest   types.Digest
	LastCheckpoint types.SeqNum
	WalLSN         uint64 // highest LSN already reflected in this snapshot

	Base      BlockHeader
	BaseIndex int // absolute chain index of Base (0 = genesis)
	Blocks    []SnapBlock

	Pairs []store.Pair
}

// ErrNoSnapshot is returned by LoadLatest when no valid snapshot exists.
var ErrNoSnapshot = errors.New("wal: no valid snapshot")

func appendDigest(dst []byte, d types.Digest) []byte { return append(dst, d[:]...) }

func appendHeader(dst []byte, h *BlockHeader) []byte {
	dst = appendU64(dst, uint64(h.Seq))
	dst = appendDigest(dst, h.Digest)
	dst = appendNodeID(dst, h.Primary)
	dst = appendDigest(dst, h.PrevHash)
	dst = appendDigest(dst, h.MerkleRoot)
	return appendU64(dst, uint64(h.TxnCount))
}

func (r *reader) header() (h BlockHeader) {
	h.Seq = types.SeqNum(r.u64())
	h.Digest = r.digest()
	h.Primary = r.nodeID()
	h.PrevHash = r.digest()
	h.MerkleRoot = r.digest()
	h.TxnCount = int(r.u64())
	return
}

// Encode serializes s: magic, payload, CRC32C trailer.
func (s *Snapshot) Encode() []byte {
	dst := append([]byte(nil), snapMagic...)
	dst = appendU64(dst, uint64(s.Shard))
	dst = appendU64(dst, uint64(s.StableSeq))
	dst = appendDigest(dst, s.CheckpointDigest)
	dst = appendU64(dst, uint64(s.KMax))
	dst = appendU64(dst, uint64(s.ExecSeq))
	dst = appendU64(dst, uint64(s.View))
	dst = appendDigest(dst, s.PrefixDigest)
	dst = appendU64(dst, uint64(s.LastCheckpoint))
	dst = appendU64(dst, s.WalLSN)
	dst = appendHeader(dst, &s.Base)
	dst = appendU64(dst, uint64(s.BaseIndex))
	dst = appendU64(dst, uint64(len(s.Blocks)))
	for i := range s.Blocks {
		b := &s.Blocks[i]
		dst = appendU64(dst, uint64(b.Seq))
		dst = appendNodeID(dst, b.Primary)
		dst = appendBatch(dst, b.Batch)
		dst = appendU64(dst, uint64(len(b.Results)))
		for _, v := range b.Results {
			dst = appendU64(dst, uint64(v))
		}
	}
	dst = appendU64(dst, uint64(len(s.Pairs)))
	for _, p := range s.Pairs {
		dst = appendU64(dst, uint64(p.K))
		dst = appendU64(dst, uint64(p.V))
	}
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.Checksum(dst, castagnoli))
	return append(dst, crc[:]...)
}

// DecodeSnapshot parses and checksums an encoded snapshot.
func DecodeSnapshot(buf []byte) (*Snapshot, error) {
	if len(buf) < len(snapMagic)+4 || string(buf[:len(snapMagic)]) != string(snapMagic) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	body, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	if crc32.Checksum(body, castagnoli) != binary.BigEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}
	r := &reader{buf: body, off: len(snapMagic)}
	s := &Snapshot{}
	s.Shard = types.ShardID(r.u64())
	s.StableSeq = types.SeqNum(r.u64())
	s.CheckpointDigest = r.digest()
	s.KMax = types.SeqNum(r.u64())
	s.ExecSeq = types.SeqNum(r.u64())
	s.View = types.View(r.u64())
	s.PrefixDigest = r.digest()
	s.LastCheckpoint = types.SeqNum(r.u64())
	s.WalLSN = r.u64()
	s.Base = r.header()
	s.BaseIndex = int(r.u64())
	nb := r.count(1 << 24)
	s.Blocks = make([]SnapBlock, nb)
	for i := range s.Blocks {
		b := &s.Blocks[i]
		b.Seq = types.SeqNum(r.u64())
		b.Primary = r.nodeID()
		b.Batch = r.batch()
		nr := r.count(1 << 24)
		b.Results = make([]types.Value, nr)
		for j := range b.Results {
			b.Results[j] = types.Value(r.u64())
		}
	}
	np := r.count(1 << 32)
	s.Pairs = make([]store.Pair, np)
	for i := range s.Pairs {
		s.Pairs[i].K = types.Key(r.u64())
		s.Pairs[i].V = types.Value(r.u64())
	}
	if r.err || r.off != len(body) {
		return nil, fmt.Errorf("%w: malformed snapshot body", ErrCorrupt)
	}
	return s, nil
}

func snapName(seq types.SeqNum) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, uint64(seq), snapSuffix)
}

func parseSnapName(name string) (types.SeqNum, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	var seq uint64
	_, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix), "%x", &seq)
	return types.SeqNum(seq), err == nil
}

// WriteSnapshot atomically persists s into dir (tmp file + rename) and
// removes snapshot generations beyond snapKeep.
func WriteSnapshot(fs FS, dir string, s *Snapshot) error {
	if err := fs.MkdirAll(dir); err != nil {
		return err
	}
	name := snapName(s.StableSeq)
	tmp := Join(dir, name+".tmp")
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(s.Encode()); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, Join(dir, name)); err != nil {
		return err
	}
	// Prune old generations.
	names, err := fs.ReadDir(dir)
	if err != nil {
		return err
	}
	var snaps []string
	for _, n := range names {
		if _, ok := parseSnapName(n); ok {
			snaps = append(snaps, n)
		}
	}
	sort.Strings(snaps)
	for len(snaps) > snapKeep {
		if err := fs.Remove(Join(dir, snaps[0])); err != nil {
			return err
		}
		snaps = snaps[1:]
	}
	return nil
}

// LoadLatest returns the newest snapshot in dir that decodes and checksums
// cleanly, skipping damaged generations; ErrNoSnapshot when none survives.
func LoadLatest(fs FS, dir string) (*Snapshot, error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, ErrNoSnapshot
	}
	var snaps []string
	for _, n := range names {
		if _, ok := parseSnapName(n); ok {
			snaps = append(snaps, n)
		}
	}
	sort.Strings(snaps)
	for i := len(snaps) - 1; i >= 0; i-- {
		f, err := fs.Open(Join(dir, snaps[i]))
		if err != nil {
			continue
		}
		buf, err := io.ReadAll(f)
		f.Close()
		if err != nil {
			continue
		}
		if s, err := DecodeSnapshot(buf); err == nil {
			return s, nil
		}
	}
	return nil, ErrNoSnapshot
}
