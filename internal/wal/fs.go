// Package wal is the durability subsystem: a segmented append-only
// write-ahead log with CRC32C-framed records and group commit, snapshot
// files of the replica's store and ledger taken at stable checkpoints, and
// crash recovery that loads the latest valid snapshot and replays the WAL
// tail. The paper's checkpoint protocol (attack A3) lets "replicas in the
// dark" observe progress; this package gives a restarted replica a disk
// state to resume from so that observation is actionable after a crash.
//
// Everything is written through a small FS abstraction so tier-1 tests run
// against an in-memory filesystem (hermetic and fast) while cmd/ringbft-node
// uses the real disk.
package wal

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// File is the subset of *os.File durability needs: sequential writes,
// reads for replay, and fsync.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
}

// FS abstracts the filesystem operations of the WAL and snapshot stores.
// Implementations must serialize concurrent calls on distinct files; the
// WAL itself is single-writer (the replica event loop).
type FS interface {
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// Append opens name for appending, creating it if absent.
	Append(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (File, error)
	// ReadDir lists the file names (not paths) inside dir, sorted.
	ReadDir(dir string) ([]string, error)
	// Remove deletes a file.
	Remove(name string) error
	// Rename atomically replaces newname with oldname's content.
	Rename(oldname, newname string) error
	// MkdirAll creates dir and parents.
	MkdirAll(dir string) error
}

// OSFS is the real-disk FS used by cmd/ringbft-node.
type OSFS struct{}

// Create implements FS.
func (OSFS) Create(name string) (File, error) { return os.Create(name) }

// Append implements FS.
func (OSFS) Append(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Open implements FS.
func (OSFS) Open(name string) (File, error) { return os.Open(name) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// MemFS is an in-memory FS keeping tier-1 tests hermetic. A process crash
// preserves everything already written (the OS holds the bytes even without
// fsync), so MemFS retains all writes; power-loss torn tails are simulated
// explicitly by tests mutating file content through Corrupt/WriteFile.
type MemFS struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS { return &MemFS{files: make(map[string][]byte)} }

// ErrNotExist is returned for missing files (wraps os.ErrNotExist so
// errors.Is works uniformly across OSFS and MemFS).
var ErrNotExist = os.ErrNotExist

type memFile struct {
	fs   *MemFS
	name string
	r    int // read offset
	rd   bool
}

func (f *memFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	data, ok := f.fs.files[f.name]
	if !ok {
		return 0, ErrNotExist
	}
	if f.r >= len(data) {
		return 0, io.EOF
	}
	n := copy(p, data[f.r:])
	f.r += n
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	if f.rd {
		return 0, errors.New("wal: write on read-only file")
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.fs.files[f.name] = append(f.fs.files[f.name], p...)
	return len(p), nil
}

func (f *memFile) Close() error { return nil }
func (f *memFile) Sync() error  { return nil }

// Create implements FS.
func (fs *MemFS) Create(name string) (File, error) {
	fs.mu.Lock()
	fs.files[name] = nil
	fs.mu.Unlock()
	return &memFile{fs: fs, name: name}, nil
}

// Append implements FS.
func (fs *MemFS) Append(name string) (File, error) {
	fs.mu.Lock()
	if _, ok := fs.files[name]; !ok {
		fs.files[name] = nil
	}
	fs.mu.Unlock()
	return &memFile{fs: fs, name: name}, nil
}

// Open implements FS.
func (fs *MemFS) Open(name string) (File, error) {
	fs.mu.Lock()
	_, ok := fs.files[name]
	fs.mu.Unlock()
	if !ok {
		return nil, ErrNotExist
	}
	return &memFile{fs: fs, name: name, rd: true}, nil
}

// ReadDir implements FS.
func (fs *MemFS) ReadDir(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	prefix := strings.TrimSuffix(dir, "/") + "/"
	var names []string
	for name := range fs.files {
		if strings.HasPrefix(name, prefix) {
			rest := strings.TrimPrefix(name, prefix)
			if !strings.Contains(rest, "/") {
				names = append(names, rest)
			}
		}
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements FS.
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return ErrNotExist
	}
	delete(fs.files, name)
	return nil
}

// Rename implements FS.
func (fs *MemFS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	data, ok := fs.files[oldname]
	if !ok {
		return ErrNotExist
	}
	fs.files[newname] = data
	delete(fs.files, oldname)
	return nil
}

// MkdirAll implements FS (directories are implicit in MemFS).
func (fs *MemFS) MkdirAll(string) error { return nil }

// RemoveAll deletes every file under dir — the "wipe the data dir" fault
// tests inject before a rejoin-via-state-transfer recovery.
func (fs *MemFS) RemoveAll(dir string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	prefix := strings.TrimSuffix(dir, "/") + "/"
	for name := range fs.files {
		if strings.HasPrefix(name, prefix) {
			delete(fs.files, name)
		}
	}
}

// ReadFile returns a copy of name's content (test helper).
func (fs *MemFS) ReadFile(name string) ([]byte, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	data, ok := fs.files[name]
	return append([]byte(nil), data...), ok
}

// WriteFile replaces name's content (test helper for corruption injection).
func (fs *MemFS) WriteFile(name string, data []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files[name] = append([]byte(nil), data...)
}

// Join builds an FS path. MemFS and OSFS both use slash-separated paths via
// path/filepath, which is correct on the linux targets this repo runs on.
func Join(elem ...string) string { return filepath.Join(elem...) }
