// Package metrics is a dependency-free metrics substrate: atomic counters
// and gauges, lock-cheap log-bucketed latency histograms with quantile
// extraction, and a process-wide Registry with label support and
// Prometheus-text exposition.
//
// The package never reads the wall clock. Durations and timestamps always
// come from the caller, so seed-deterministic packages (chaos, simnet) can
// feed virtual-clock values and instrumented runs stay byte-reproducible.
// Hosts that need a clock take an injectable Clock instead of time.Now.
package metrics

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Clock is an injectable time source. Hosts default it to time.Now; the
// deterministic chaos engine passes its virtual clock.
type Clock func() time.Time

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta. Negative deltas are ignored: counters only go up.
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

const (
	typeCounter = "counter"
	typeGauge   = "gauge"
	typeHist    = "histogram"
	typeUntyped = "untyped"
)

// series is one labelled instance of a metric family.
type series struct {
	labels string // canonical rendered label set, "" or `{k="v",...}`
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

type family struct {
	name   string
	typ    string
	order  []string // label keys in registration order of first series
	series map[string]*series
}

// Registry holds metric families keyed by name. Registration is idempotent:
// asking for the same name+labels returns the same instrument, so hot paths
// may re-resolve handles without duplicating series. All instruments are
// safe for concurrent use; the registry itself serializes structural
// mutation and exposition with a mutex.
type Registry struct {
	mu  sync.Mutex
	fam map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fam: make(map[string]*family)}
}

// renderLabels canonicalizes alternating key/value pairs into a Prometheus
// label block. Pairs are sorted by key so the same set always maps to the
// same series regardless of call-site order.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("metrics: odd label key/value list")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func (r *Registry) getSeries(name, typ string, kv []string) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam[name]
	if f == nil {
		f = &family{name: name, typ: typ, series: make(map[string]*series)}
		r.fam[name] = f
	} else if f.typ != typ {
		panic("metrics: " + name + " registered as " + f.typ + ", requested " + typ)
	}
	key := renderLabels(kv)
	s := f.series[key]
	if s == nil {
		s = &series{labels: key}
		f.series[key] = s
	}
	return s
}

// Counter returns the counter for name with the given label pairs,
// registering it on first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	s := r.getSeries(name, typeCounter, labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the gauge for name with the given label pairs.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	s := r.getSeries(name, typeGauge, labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram returns the latency histogram for name with the given label
// pairs.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	s := r.getSeries(name, typeHist, labels)
	if s.h == nil {
		s.h = NewHistogram()
	}
	return s.h
}

// CounterFunc registers a read-on-scrape counter backed by fn. Useful for
// exposing counters a subsystem already maintains (e.g. tcpnet's atomic
// transport stats) without double-counting. fn must be safe for concurrent
// calls.
func (r *Registry) CounterFunc(name string, fn func() float64, labels ...string) {
	s := r.getSeries(name, typeCounter, labels)
	s.fn = fn
}

// GaugeFunc registers a read-on-scrape gauge backed by fn.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	s := r.getSeries(name, typeGauge, labels)
	s.fn = fn
}
