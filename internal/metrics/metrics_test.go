package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentHammer exercises counters, gauges, and a histogram from
// many goroutines; run under -race it proves the instruments are
// data-race-free and the counter totals are exact.
func TestConcurrentHammer(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 8
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := reg.Counter("hammer_total", "worker", "shared")
			h := reg.Histogram("hammer_latency_seconds")
			gauge := reg.Gauge("hammer_inflight")
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(time.Duration(i%1000) * time.Microsecond)
				gauge.Set(int64(i))
			}
		}(g)
	}
	// Concurrent scrapes while writers are running.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := reg.WritePrometheus(&b); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	if got := reg.Counter("hammer_total", "worker", "shared").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := reg.Histogram("hammer_latency_seconds").Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

// TestQuantileOracle checks histogram quantiles against the exact sorted
// sample quantile: the log-bucketed answer must land within the same
// power-of-two bucket, i.e. within a factor of two.
func TestQuantileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram()
	samples := make([]time.Duration, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform spread from ~1µs to ~1s, the range consensus
		// latencies actually occupy.
		exp := rng.Float64() * 6 // decades
		d := time.Duration(math.Pow(10, exp)) * time.Microsecond
		samples = append(samples, d)
		h.Observe(d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		rank := int(math.Ceil(q*float64(len(samples)))) - 1
		exact := samples[rank]
		got := h.Quantile(q)
		lo, hi := exact/2, exact*2
		if got < lo || got > hi {
			t.Errorf("q=%v: got %v, exact %v (outside [%v, %v])", q, got, exact, lo, hi)
		}
	}
	if h.Quantile(1.0) < samples[len(samples)-1]/2 {
		t.Errorf("q=1 too small: %v vs max %v", h.Quantile(1.0), samples[len(samples)-1])
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	h := NewHistogram()
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	h.Observe(3 * time.Millisecond)
	got := h.Quantile(0.5)
	if got < 3*time.Millisecond/2 || got > 2*3*time.Millisecond {
		t.Fatalf("single-sample quantile = %v, want ~3ms", got)
	}
	h2 := NewHistogram()
	h2.Observe(-time.Second) // clamps to zero
	if h2.Count() != 1 || h2.Sum() != 0 {
		t.Fatalf("negative observation: count=%d sum=%v", h2.Count(), h2.Sum())
	}
}

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{5 * time.Microsecond, 3},
		{time.Duration(1 << 62), numBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every bucket's bound must index back into itself.
	for i := 0; i < numBuckets; i++ {
		if got := bucketIndex(bucketBound(i)); got != i {
			t.Errorf("bucketIndex(bound(%d)) = %d", i, got)
		}
	}
}

// TestExpositionGolden pins the exact Prometheus text rendering: sorted
// family and series order, label canonicalization, histogram
// bucket/sum/count suffixes.
func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zeta_total").Add(7)
	reg.Counter("alpha_total", "shard", "1", "replica", "0").Add(3)
	reg.Counter("alpha_total", "replica", "2", "shard", "0").Inc() // key order normalized
	reg.Gauge("queue_depth", "shard", "0").Set(5)
	reg.GaugeFunc("derived_gauge", func() float64 { return 2.5 })
	h := reg.Histogram("lat_seconds", "op", "fsync")
	h.Observe(time.Microsecond / 2) // bucket 0
	h.Observe(3 * time.Microsecond) // bucket 2

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	want := strings.Join([]string{
		"# TYPE alpha_total counter",
		`alpha_total{replica="0",shard="1"} 3`,
		`alpha_total{replica="2",shard="0"} 1`,
		"# TYPE derived_gauge gauge",
		"derived_gauge 2.5",
		"# TYPE lat_seconds histogram",
	}, "\n") + "\n"
	if !strings.HasPrefix(got, want) {
		t.Fatalf("exposition prefix mismatch:\ngot:\n%s\nwant prefix:\n%s", got, want)
	}
	for _, line := range []string{
		`lat_seconds_bucket{op="fsync",le="1e-06"} 1`,
		`lat_seconds_bucket{op="fsync",le="4e-06"} 2`,
		`lat_seconds_bucket{op="fsync",le="+Inf"} 2`,
		`lat_seconds_count{op="fsync"} 2`,
		"# TYPE queue_depth gauge",
		`queue_depth{shard="0"} 5`,
		"# TYPE zeta_total counter",
		"zeta_total 7",
	} {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("exposition missing line %q\nfull output:\n%s", line, got)
		}
	}
	// zeta sorts after queue_depth which sorts after lat_seconds.
	if strings.Index(got, "lat_seconds") > strings.Index(got, "queue_depth") ||
		strings.Index(got, "queue_depth") > strings.Index(got, "zeta_total") {
		t.Errorf("families not sorted:\n%s", got)
	}
}

func TestRegistryIdempotentHandles(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "k", "v")
	b := reg.Counter("x_total", "k", "v")
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type clash did not panic")
		}
	}()
	reg.Gauge("x_total")
}
