package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4). Families and series are emitted in
// sorted order so output is stable for golden tests and diffing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fam))
	for name := range r.fam {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, name := range names {
		fams = append(fams, r.fam[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		keys := make([]string, 0, len(f.series))
		r.mu.Lock()
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		srs := make([]*series, 0, len(keys))
		for _, k := range keys {
			srs = append(srs, f.series[k])
		}
		r.mu.Unlock()
		for _, s := range srs {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch {
	case s.h != nil:
		return writeHistogram(w, f.name, s)
	case s.fn != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(s.fn()))
		return err
	case s.c != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.c.Value())
		return err
	case s.g != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.g.Value())
		return err
	}
	return nil
}

// writeHistogram emits cumulative _bucket series with le bounds in
// seconds, then _sum (seconds) and _count, per the Prometheus convention.
func writeHistogram(w io.Writer, name string, s *series) error {
	counts, total := s.h.snapshot()
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		cum += counts[i]
		le := formatFloat(bucketBound(i).Seconds())
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(s.labels, `le="`+le+`"`), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(s.labels, `le="+Inf"`), total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, formatFloat(s.h.Sum().Seconds())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, total)
	return err
}

// mergeLabels appends one extra rendered label to an already-rendered set.
func mergeLabels(rendered, extra string) string {
	if rendered == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(rendered, "}") + "," + extra + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot renders the registry to a string — the canonical one-shot dump
// used by ringbft-node at shutdown.
func (r *Registry) Snapshot() string {
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	return b.String()
}

// Handler returns an http.Handler serving the Prometheus text exposition,
// suitable for mounting at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
