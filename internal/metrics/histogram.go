package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets covers 1µs .. 2^39µs (~6.4 days) in power-of-two steps; the
// last bucket additionally absorbs anything larger.
const numBuckets = 40

// Histogram is a lock-free latency histogram with power-of-two bucket
// bounds starting at 1µs. Observe is a single atomic add on the bucket
// plus two on the sum/count, so it is cheap enough for consensus hot
// paths. Quantile answers are exact to within the enclosing power-of-two
// bucket (linear interpolation inside the bucket), i.e. never off by more
// than a factor of two from the true sample quantile.
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	sum     atomic.Int64 // nanoseconds
	count   atomic.Uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketBound returns the inclusive upper bound of bucket i.
func bucketBound(i int) time.Duration {
	return time.Microsecond << uint(i)
}

// bucketIndex maps a duration to its bucket: bucket i holds observations in
// (bound(i-1), bound(i)], with bucket 0 holding everything ≤ 1µs and the
// last bucket absorbing overflow.
func bucketIndex(d time.Duration) int {
	if d <= time.Microsecond {
		return 0
	}
	i := bits.Len64(uint64((d - 1) / time.Microsecond))
	if i >= numBuckets {
		return numBuckets - 1
	}
	return i
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// snapshot loads a consistent-enough view of the bucket counts. Concurrent
// observers may race individual adds; exposition tolerates that.
func (h *Histogram) snapshot() (counts [numBuckets]uint64, total uint64) {
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	return counts, total
}

// Quantile returns the q-quantile (0 < q ≤ 1) of the observed
// distribution, interpolated linearly within the enclosing bucket.
// Returns 0 when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	counts, total := h.snapshot()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		if counts[i] == 0 {
			continue
		}
		if cum+counts[i] >= rank {
			lower := time.Duration(0)
			if i > 0 {
				lower = bucketBound(i - 1)
			}
			upper := bucketBound(i)
			frac := float64(rank-cum) / float64(counts[i])
			return lower + time.Duration(frac*float64(upper-lower))
		}
		cum += counts[i]
	}
	return bucketBound(numBuckets - 1)
}
