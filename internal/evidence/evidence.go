// Package evidence implements the misbehavior evidence log: a WAL-backed,
// deduplicating record of verifiable conflicting message pairs.
//
// RingBFT's safety argument tolerates f Byzantine replicas per shard, but
// tolerance is not accountability: when a primary equivocates, a replica
// forwards conflicting certificates, a new primary injects unjustified
// batches through a NewView, or a client submits conflicting transactions
// under one identifier (the paper's A1/A2 attacks), honest replicas can do
// better than merely surviving — they can record the offending messages as
// evidence that incriminates exactly the faulty node. Each record carries
// the canonical authenticated bytes of both offending messages, so the
// accusation can be re-verified: records built from Ed25519-signed messages
// are verifiable by any third party holding the public keys; records built
// from pairwise-MAC'd messages (PrePrepare/Prepare) are verifiable only by
// the recording replica, and are flagged as such.
package evidence

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"

	"ringbft/internal/crypto"
	"ringbft/internal/types"
	"ringbft/internal/wal"
)

// Kind discriminates the classes of recordable misbehavior.
type Kind uint8

const (
	// KindEquivocation: the primary of a view proposed two different batch
	// digests at one (view, seq). The pair is the locally received
	// PrePrepare plus either a conflicting PrePrepare or the first of f+1
	// conflicting Prepares from distinct senders (at least one of f+1
	// distinct senders is honest and echoes what the primary sent it, so
	// the accusation against the primary is sound). MAC-authenticated:
	// verifiable by the recorder only.
	KindEquivocation Kind = iota + 1
	// KindConflictingForward: one previous-shard replica signed two Forward
	// messages for the same sequence with different batch digests. Both
	// signatures are transferable, so any third party can re-verify.
	KindConflictingForward
	// KindUnjustifiedNewView: a new primary's NewView re-proposed a
	// cross-shard batch without a valid Forward-certificate justification.
	// The signed NewView itself is the evidence (Second is empty).
	KindUnjustifiedNewView
	// KindConflictingClient: two client submissions shared a transaction
	// identifier but carried different payloads (attack A2); a duplicate
	// submission with identical payload (A1) is a legal retransmission and
	// is never recorded. Client requests are unauthenticated in this
	// implementation, so these records are advisory, not transferable.
	KindConflictingClient
)

func (k Kind) String() string {
	switch k {
	case KindEquivocation:
		return "equivocation"
	case KindConflictingForward:
		return "conflicting-forward"
	case KindUnjustifiedNewView:
		return "unjustified-newview"
	case KindConflictingClient:
		return "conflicting-client"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Msg is the compact authenticated core of one offending message: the
// canonical tuple every signature and MAC in this repository covers, plus
// the authenticator bytes. It deliberately omits message bodies — the
// digest inside the tuple commits to the batch, which is all
// re-verification needs.
type Msg struct {
	From   types.NodeID
	Type   types.MsgType
	Shard  types.ShardID
	View   types.View
	Seq    types.SeqNum
	Digest types.Digest
	Sig    []byte // Ed25519 signature over the canonical tuple, if signed
	MAC    []byte // pairwise MAC over the canonical tuple, if MAC'd
}

// MsgOf extracts the authenticated core of m.
func MsgOf(m *types.Message) Msg {
	return Msg{
		From: m.From, Type: m.Type, Shard: m.Shard,
		View: m.View, Seq: m.Seq, Digest: m.Digest,
		Sig: append([]byte(nil), m.Sig...),
		MAC: append([]byte(nil), m.MAC...),
	}
}

// MsgOfSigned extracts the authenticated core of a Signed vote.
func MsgOfSigned(s types.Signed) Msg {
	return Msg{
		From: s.From, Type: s.Type, Shard: s.Shard,
		View: s.View, Seq: s.Seq, Digest: s.Digest,
		Sig: append([]byte(nil), s.Sig...),
	}
}

// IsZero reports whether m is the empty message slot (the Second of a
// single-message record). Every real message has a non-zero type or a
// digest or an authenticator; the zero NodeID alone is ambiguous (it is
// also replica s0/r0).
func (m Msg) IsZero() bool {
	return m.From == (types.NodeID{}) && m.Type == 0 && m.Digest.IsZero() &&
		len(m.Sig) == 0 && len(m.MAC) == 0
}

// sigBytes returns the canonical bytes m's authenticators cover.
func (m *Msg) sigBytes() []byte {
	return types.SigBytes(m.Type, m.Shard, m.View, m.Seq, m.Digest, m.From)
}

// Record is one evidence entry: the accused node plus the offending
// message(s) that incriminate it.
type Record struct {
	Kind    Kind
	Accused types.NodeID
	Shard   types.ShardID // shard at which the conflict was observed
	View    types.View
	Seq     types.SeqNum
	First   Msg
	Second  Msg // zero for single-message kinds (unjustified NewView)
	// Transferable reports whether both offending messages carry Ed25519
	// signatures, making the record verifiable by any third party. MAC'd
	// pairs (equivocation) and unauthenticated client requests are not.
	Transferable bool
}

// Key is the deduplication identity of a record: one logical offense is
// recorded once no matter how many retransmissions re-detect it.
func (r *Record) Key() string {
	return fmt.Sprintf("%d|%v|%d|%d|%d|%x|%x",
		r.Kind, r.Accused, r.Shard, r.View, r.Seq, r.First.Digest[:8], r.Second.Digest[:8])
}

func (r *Record) String() string {
	return fmt.Sprintf("%s: accused %v at shard %d view %d seq %d (transferable=%v)",
		r.Kind, r.Accused, r.Shard, r.View, r.Seq, r.Transferable)
}

// Reverify re-checks the authenticators of both offending messages with a:
// signatures for transferable records, pairwise MACs for recorder-local
// ones. A third party can Reverify transferable records with any
// Authenticator sharing the cluster's public keys; recorder-local records
// verify only with the recording replica's own key ring.
func (r *Record) Reverify(a crypto.Authenticator) error {
	check := func(m Msg) error {
		if m.IsZero() {
			return nil
		}
		if len(m.Sig) > 0 {
			return a.Verify(m.From, m.sigBytes(), m.Sig)
		}
		if len(m.MAC) > 0 {
			return a.VerifyMAC(m.From, m.sigBytes(), m.MAC)
		}
		return nil // unauthenticated (client request): nothing to check
	}
	if err := check(r.First); err != nil {
		return fmt.Errorf("evidence %s first message: %w", r.Kind, err)
	}
	if err := check(r.Second); err != nil {
		return fmt.Errorf("evidence %s second message: %w", r.Kind, err)
	}
	return nil
}

// Log is one replica's evidence log. Records are deduplicated by Key and
// kept in append order; when backed by a WAL they survive restarts with
// the same framing, checksumming, and torn-tail repair as the consensus
// log. The zero value is unusable — construct with NewMemory or Open.
type Log struct {
	mu   sync.Mutex
	recs []Record
	seen map[string]struct{}
	w    *wal.WAL
}

// NewMemory returns an evidence log with no durable backing.
func NewMemory() *Log {
	return &Log{seen: make(map[string]struct{})}
}

// Open returns an evidence log backed by its own WAL under dir, replaying
// any records a previous incarnation persisted.
func Open(fs wal.FS, dir string) (*Log, error) {
	w, recovered, err := wal.Open(fs, dir, wal.Options{})
	if err != nil {
		return nil, fmt.Errorf("evidence: open wal: %w", err)
	}
	l := &Log{seen: make(map[string]struct{}), w: w}
	for _, wr := range recovered {
		if wr.Kind != wal.KindEvidence {
			continue
		}
		if rec, ok := decode(wr.Payload); ok {
			l.add(rec, false)
		}
	}
	return l, nil
}

// Add records r if its Key has not been seen; it reports whether the
// record is new. WAL-backed logs persist before acknowledging.
func (l *Log) Add(r Record) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.add(r, true)
}

func (l *Log) add(r Record, persist bool) bool {
	k := r.Key()
	if _, dup := l.seen[k]; dup {
		return false
	}
	l.seen[k] = struct{}{}
	l.recs = append(l.recs, r)
	if persist && l.w != nil {
		if _, err := l.w.Append(wal.EvidenceRecord(encode(&r))); err == nil {
			l.w.Sync()
		}
	}
	return true
}

// Records returns a copy of the log in append order.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Record(nil), l.recs...)
}

// Len reports the number of distinct records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// Accused returns the distinct accused nodes in canonical order.
func (l *Log) Accused() []types.NodeID {
	l.mu.Lock()
	defer l.mu.Unlock()
	set := make(map[types.NodeID]struct{}, len(l.recs))
	for i := range l.recs {
		set[l.recs[i].Accused] = struct{}{}
	}
	out := make([]types.NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Summary renders a per-kind, per-accused count — the shutdown report
// format ringbft-node prints.
func (l *Log) Summary() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.recs) == 0 {
		return "evidence: none"
	}
	counts := make(map[string]int)
	for i := range l.recs {
		counts[fmt.Sprintf("%s against %v", l.recs[i].Kind, l.recs[i].Accused)]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "evidence: %d record(s)", len(l.recs))
	for _, k := range keys {
		fmt.Fprintf(&b, "\n  %d× %s", counts[k], k)
	}
	return b.String()
}

// Close releases the durable backing, if any.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w == nil {
		return nil
	}
	return l.w.Close()
}

// ---- persistence codec -------------------------------------------------
//
// Hand-rolled binary, mirroring internal/wal's record codec: fixed-width
// big-endian integers, length-prefixed byte strings. The payload travels
// inside a checksummed WAL frame, so the codec only needs structural
// bounds checks, not its own integrity layer.

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func appendNode(dst []byte, id types.NodeID) []byte {
	dst = append(dst, byte(id.Kind))
	dst = appendU64(dst, uint64(id.Shard))
	return appendU64(dst, uint64(id.Index))
}

func appendBytes(dst, b []byte) []byte {
	dst = appendU64(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendMsg(dst []byte, m *Msg) []byte {
	dst = appendNode(dst, m.From)
	dst = append(dst, byte(m.Type))
	dst = appendU64(dst, uint64(m.Shard))
	dst = appendU64(dst, uint64(m.View))
	dst = appendU64(dst, uint64(m.Seq))
	dst = append(dst, m.Digest[:]...)
	dst = appendBytes(dst, m.Sig)
	return appendBytes(dst, m.MAC)
}

func encode(r *Record) []byte {
	dst := []byte{byte(r.Kind)}
	dst = appendNode(dst, r.Accused)
	dst = appendU64(dst, uint64(r.Shard))
	dst = appendU64(dst, uint64(r.View))
	dst = appendU64(dst, uint64(r.Seq))
	if r.Transferable {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendMsg(dst, &r.First)
	return appendMsg(dst, &r.Second)
}

type reader struct {
	buf []byte
	off int
	err bool
}

func (r *reader) u8() byte {
	if r.err || r.off >= len(r.buf) {
		r.err = true
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) u64() uint64 {
	if r.err || r.off+8 > len(r.buf) {
		r.err = true
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) node() (id types.NodeID) {
	id.Kind = types.NodeKind(r.u8())
	id.Shard = types.ShardID(r.u64())
	id.Index = int(r.u64())
	return
}

func (r *reader) digest() (d types.Digest) {
	if r.err || r.off+32 > len(r.buf) {
		r.err = true
		return
	}
	copy(d[:], r.buf[r.off:])
	r.off += 32
	return
}

func (r *reader) bytes() []byte {
	n := r.u64()
	if r.err || n > uint64(len(r.buf)-r.off) {
		r.err = true
		return nil
	}
	if n == 0 {
		return nil
	}
	out := append([]byte(nil), r.buf[r.off:r.off+int(n)]...)
	r.off += int(n)
	return out
}

func (r *reader) msg() (m Msg) {
	m.From = r.node()
	m.Type = types.MsgType(r.u8())
	m.Shard = types.ShardID(r.u64())
	m.View = types.View(r.u64())
	m.Seq = types.SeqNum(r.u64())
	m.Digest = r.digest()
	m.Sig = r.bytes()
	m.MAC = r.bytes()
	return
}

func decode(buf []byte) (Record, bool) {
	r := &reader{buf: buf}
	var rec Record
	rec.Kind = Kind(r.u8())
	rec.Accused = r.node()
	rec.Shard = types.ShardID(r.u64())
	rec.View = types.View(r.u64())
	rec.Seq = types.SeqNum(r.u64())
	rec.Transferable = r.u8() == 1
	rec.First = r.msg()
	rec.Second = r.msg()
	if r.err || r.off != len(buf) {
		return Record{}, false
	}
	return rec, true
}
