package evidence

import (
	"strings"
	"testing"

	"ringbft/internal/crypto"
	"ringbft/internal/types"
	"ringbft/internal/wal"
)

func digest(b byte) (d types.Digest) {
	d[0] = b
	return
}

func sampleRecord(view types.View, first, second byte) Record {
	accused := types.ReplicaNode(1, 0)
	return Record{
		Kind: KindEquivocation, Accused: accused, Shard: 1, View: view, Seq: 7,
		First: Msg{
			From: accused, Type: types.MsgPrePrepare, Shard: 1, View: view,
			Seq: 7, Digest: digest(first), MAC: []byte{1, 2, 3},
		},
		Second: Msg{
			From: accused, Type: types.MsgPrePrepare, Shard: 1, View: view,
			Seq: 7, Digest: digest(second), MAC: []byte{4, 5, 6},
		},
	}
}

func TestCodecRoundtrip(t *testing.T) {
	recs := []Record{
		sampleRecord(3, 0xaa, 0xbb),
		{
			Kind: KindUnjustifiedNewView, Accused: types.ReplicaNode(2, 1),
			Shard: 2, View: 5, Seq: 9,
			First: Msg{
				From: types.ReplicaNode(2, 1), Type: types.MsgNewView, Shard: 2,
				View: 5, Digest: digest(0xcc), Sig: []byte{9, 9},
			},
			Transferable: true, // Second deliberately zero
		},
		{
			Kind: KindConflictingClient, Accused: types.ClientNode(1), Shard: 0,
			First:  Msg{From: types.ClientNode(1), Type: types.MsgClientRequest, Digest: digest(1)},
			Second: Msg{From: types.ClientNode(1), Type: types.MsgClientRequest, Digest: digest(2)},
		},
	}
	for _, want := range recs {
		got, ok := decode(encode(&want))
		if !ok {
			t.Fatalf("decode failed for %v", want)
		}
		if got.Key() != want.Key() || got.Transferable != want.Transferable {
			t.Fatalf("roundtrip mismatch: got %+v want %+v", got, want)
		}
		if got.Second.IsZero() != want.Second.IsZero() {
			t.Fatalf("roundtrip lost Second zero-ness: %+v", got)
		}
		if string(got.First.Sig) != string(want.First.Sig) ||
			string(got.First.MAC) != string(want.First.MAC) {
			t.Fatalf("roundtrip lost authenticators: %+v", got.First)
		}
	}
}

func TestCodecRejectsTruncation(t *testing.T) {
	rec := sampleRecord(3, 0xaa, 0xbb)
	buf := encode(&rec)
	for n := 0; n < len(buf); n++ {
		if _, ok := decode(buf[:n]); ok {
			t.Fatalf("truncated payload of %d/%d bytes decoded", n, len(buf))
		}
	}
	if _, ok := decode(append(buf, 0)); ok {
		t.Fatal("payload with trailing garbage decoded")
	}
}

func TestDedupByKey(t *testing.T) {
	l := NewMemory()
	if !l.Add(sampleRecord(3, 0xaa, 0xbb)) {
		t.Fatal("first add rejected")
	}
	// A retransmission re-detects the same offense: same Key, new MAC bytes.
	dup := sampleRecord(3, 0xaa, 0xbb)
	dup.First.MAC = []byte{7, 7, 7}
	if l.Add(dup) {
		t.Fatal("duplicate offense recorded twice")
	}
	// The same pair at another view is a distinct offense.
	if !l.Add(sampleRecord(4, 0xaa, 0xbb)) {
		t.Fatal("distinct offense deduplicated")
	}
	if l.Len() != 2 {
		t.Fatalf("want 2 records, got %d", l.Len())
	}
}

func TestWALReplay(t *testing.T) {
	fs := wal.NewMemFS()
	l, err := Open(fs, "ev")
	if err != nil {
		t.Fatal(err)
	}
	l.Add(sampleRecord(3, 0xaa, 0xbb))
	l.Add(sampleRecord(4, 0xaa, 0xcc))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(fs, "ev")
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 2 {
		t.Fatalf("replay lost records: want 2, got %d", re.Len())
	}
	// Replayed records keep deduplicating against new detections.
	if re.Add(sampleRecord(3, 0xaa, 0xbb)) {
		t.Fatal("replayed record re-recorded after restart")
	}
	recs := re.Records()
	if recs[0].View != 3 || recs[1].View != 4 {
		t.Fatalf("append order lost across restart: %+v", recs)
	}
}

func TestReverify(t *testing.T) {
	kg := crypto.NewKeygen(1)
	accused := types.ReplicaNode(0, 1)
	recorder := types.ReplicaNode(0, 0)
	third := types.ReplicaNode(0, 2)
	for _, id := range []types.NodeID{accused, recorder, third} {
		kg.Register(id)
	}
	accusedRing, _ := kg.Ring(accused)
	recorderRing, _ := kg.Ring(recorder)
	thirdRing, _ := kg.Ring(third)

	mk := func(d types.Digest) Msg {
		m := Msg{
			From: accused, Type: types.MsgForward, Shard: 0, View: 1, Seq: 4, Digest: d,
		}
		m.Sig = accusedRing.Sign(m.sigBytes())
		return m
	}
	rec := Record{
		Kind: KindConflictingForward, Accused: accused, Shard: 0, View: 1, Seq: 4,
		First: mk(digest(0xaa)), Second: mk(digest(0xbb)), Transferable: true,
	}
	// Transferable records verify for any key-ring holder, not just the
	// recorder.
	for _, a := range []crypto.Authenticator{recorderRing, thirdRing} {
		if err := rec.Reverify(a); err != nil {
			t.Fatalf("transferable record failed reverification: %v", err)
		}
	}
	// Tampering with the incriminating digest must break reverification.
	bad := rec
	bad.First.Digest = digest(0xdd)
	if err := bad.Reverify(thirdRing); err == nil {
		t.Fatal("tampered record reverified")
	}

	// A MAC'd pair verifies only with the recorder's own ring.
	mac := sampleRecord(3, 0xaa, 0xbb)
	mac.Accused = accused
	mac.First.From, mac.Second.From = accused, accused
	mac.First.Shard, mac.Second.Shard = 0, 0
	mac.Shard = 0
	mac.First.MAC = accusedRing.MAC(recorder, mac.First.sigBytes())
	mac.Second.MAC = accusedRing.MAC(recorder, mac.Second.sigBytes())
	if err := mac.Reverify(recorderRing); err != nil {
		t.Fatalf("recorder-local record failed for recorder: %v", err)
	}
	if err := mac.Reverify(thirdRing); err == nil {
		t.Fatal("recorder-local MAC record verified for a third party")
	}
}

func TestSummaryAndAccused(t *testing.T) {
	l := NewMemory()
	if got := l.Summary(); got != "evidence: none" {
		t.Fatalf("empty summary: %q", got)
	}
	l.Add(sampleRecord(3, 0xaa, 0xbb))
	l.Add(sampleRecord(4, 0xaa, 0xcc))
	cl := Record{
		Kind: KindConflictingClient, Accused: types.ClientNode(1),
		First:  Msg{From: types.ClientNode(1), Type: types.MsgClientRequest, Digest: digest(1)},
		Second: Msg{From: types.ClientNode(1), Type: types.MsgClientRequest, Digest: digest(2)},
	}
	l.Add(cl)
	s := l.Summary()
	if !strings.Contains(s, "3 record(s)") ||
		!strings.Contains(s, "2× equivocation") ||
		!strings.Contains(s, "1× conflicting-client") {
		t.Fatalf("summary missing counts: %q", s)
	}
	acc := l.Accused()
	if len(acc) != 2 {
		t.Fatalf("want 2 accused, got %v", acc)
	}
	if acc[0] != types.ReplicaNode(1, 0) && acc[1] != types.ReplicaNode(1, 0) {
		t.Fatalf("accused replica missing: %v", acc)
	}
}
