package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the static mutex-acquisition graph across the module
// and flags cycles — two code paths taking the same pair of locks in
// opposite orders can deadlock the moment chaos scheduling interleaves
// them, and nothing in `go test -race` reports it (the race detector sees
// no data race in a deadlock).
//
// locksend polices what happens INSIDE one critical section; LockOrder
// polices how critical sections NEST. Per package, Run records for every
// function which locks it acquires, which module functions it calls, and —
// replaying Lock/Unlock events in source order, the same discipline as
// locksend — which of those happen while another lock is held. The Finish
// hook then merges all packages (the harness wraps engine mutexes around
// tcpnet and chaos callbacks, so real cycles span packages), closes the
// may-acquire relation over the call graph, and reports every strongly
// connected component of the resulting held→acquired edge set.
//
// Lock identity is type-qualified — "ringbft/internal/tcpnet.Transport.mu"
// — so two methods locking the same field through different receiver names
// meet in one node, while mutexes of unrelated types stay distinct.
// Function-local mutexes, interface-dispatched calls, and closures are
// outside the relation (a local mutex cannot participate in a cross-
// function cycle; dynamic dispatch is over-approximated by nothing rather
// than by everything). Self-edges — re-acquiring a lock already held — are
// excluded: the cycle report is about ORDER inversions, and the flow-
// insensitive may-acquire closure would make self-edges too noisy to act
// on.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "flags mutex pairs acquired in opposite orders on different code " +
		"paths (static deadlock cycles), across packages",
	Run:    runLockOrder,
	Finish: finishLockOrder,
}

// lockFnFact is what one function contributes to the acquisition graph.
type lockFnFact struct {
	// acquires lists lock IDs taken anywhere in the function body.
	acquires []string
	// calls lists qualified names of module functions called anywhere.
	calls []string
	// edges are direct held→acquired pairs observed in the replay.
	edges []lockEdgeFact
	// callsUnder records module calls made while a lock is held; Finish
	// expands them through the callee's transitive acquire set.
	callsUnder []heldCallFact
}

type lockEdgeFact struct {
	from, to string
	pos      token.Position
}

type heldCallFact struct {
	held, callee string
	pos          token.Position
}

// lockFacts is the per-package Run value consumed by Finish.
type lockFacts struct {
	fns map[string]*lockFnFact
}

func runLockOrder(pass *Pass) (interface{}, error) {
	facts := &lockFacts{fns: map[string]*lockFnFact{}}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fobj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			qname := funcQName(fobj)
			if qname == "" {
				continue
			}
			facts.fns[qname] = lockScanFunc(pass, fd)
		}
	}
	return facts, nil
}

// lockScanFunc replays one function body in source order, mirroring
// locksend's event discipline: depth-0 statements only (closures run at
// some other time), deferred unlocks hold to function end, deferred calls
// are skipped (the held set at defer-run time is not the one here).
func lockScanFunc(pass *Pass, fd *ast.FuncDecl) *lockFnFact {
	info := pass.TypesInfo
	fact := &lockFnFact{}
	var funcLits, deferRanges []posRange
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			funcLits = append(funcLits, posRange{x.Pos(), x.End()})
		case *ast.DeferStmt:
			deferRanges = append(deferRanges, posRange{x.Call.Pos(), x.Call.End()})
		}
		return true
	})
	inAny := func(rs []posRange, p token.Pos) bool {
		for _, r := range rs {
			if r.contains(p) {
				return true
			}
		}
		return false
	}

	held := map[string]bool{}
	deferredEnd := map[string]bool{}
	heldSorted := func() []string {
		out := make([]string, 0, len(held))
		for mu := range held {
			out = append(out, mu)
		}
		sort.Strings(out)
		return out
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if inAny(funcLits, call.Pos()) {
			// Closure bodies replay on their own clock; their deferred
			// unlocks still end the outer section (defer func(){mu.Unlock()}()).
			if op, mu, ok := lockID(info, call); ok && (op == "Unlock" || op == "RUnlock") && inAny(deferRanges, call.Pos()) {
				deferredEnd[mu] = true
			}
			return true
		}
		if op, mu, ok := lockID(info, call); ok {
			switch op {
			case "Lock", "RLock":
				if inAny(deferRanges, call.Pos()) {
					return true
				}
				fact.acquires = append(fact.acquires, mu)
				for _, h := range heldSorted() {
					if h != mu {
						fact.edges = append(fact.edges, lockEdgeFact{from: h, to: mu, pos: pass.Fset.Position(call.Pos())})
					}
				}
				held[mu] = true
			case "Unlock", "RUnlock":
				if inAny(deferRanges, call.Pos()) {
					deferredEnd[mu] = true
				} else if !deferredEnd[mu] {
					delete(held, mu)
				}
			}
			return true
		}
		if qname := moduleCallee(pass, call); qname != "" {
			if !inAny(deferRanges, call.Pos()) {
				fact.calls = append(fact.calls, qname)
				for _, h := range heldSorted() {
					fact.callsUnder = append(fact.callsUnder, heldCallFact{held: h, callee: qname, pos: pass.Fset.Position(call.Pos())})
				}
			}
		}
		return true
	})
	return fact
}

// finishLockOrder merges every package's facts, closes may-acquire over
// the call graph, and reports each cycle in the held→acquired relation.
func finishLockOrder(pkgs []PackageResult, report func(Finding)) {
	fns := map[string]*lockFnFact{}
	for _, pr := range pkgs {
		facts, ok := pr.Value.(*lockFacts)
		if !ok {
			continue
		}
		for name, f := range facts.fns {
			fns[name] = f
		}
	}

	// acqStar[f] = every lock f may acquire, directly or transitively.
	acqStar := map[string]map[string]bool{}
	names := make([]string, 0, len(fns))
	for name := range fns {
		names = append(names, name)
		set := map[string]bool{}
		for _, mu := range fns[name].acquires {
			set[mu] = true
		}
		acqStar[name] = set
	}
	sort.Strings(names)
	for changed := true; changed; {
		changed = false
		for _, name := range names {
			set := acqStar[name]
			for _, callee := range fns[name].calls {
				for mu := range acqStar[callee] {
					if !set[mu] {
						set[mu] = true
						changed = true
					}
				}
			}
		}
	}

	// Edge set: direct nestings plus calls-under-lock expanded through the
	// callee's acquire closure.
	type edgeKey struct{ from, to string }
	edges := map[edgeKey]token.Position{}
	addEdge := func(from, to string, pos token.Position) {
		if from == to {
			return
		}
		k := edgeKey{from, to}
		if old, ok := edges[k]; !ok || posLess(pos, old) {
			edges[k] = pos
		}
	}
	for _, name := range names {
		for _, e := range fns[name].edges {
			addEdge(e.from, e.to, e.pos)
		}
		for _, hc := range fns[name].callsUnder {
			calleeMus := make([]string, 0, len(acqStar[hc.callee]))
			for mu := range acqStar[hc.callee] {
				calleeMus = append(calleeMus, mu)
			}
			sort.Strings(calleeMus)
			for _, mu := range calleeMus {
				addEdge(hc.held, mu, hc.pos)
			}
		}
	}

	adj := map[string][]string{}
	nodeSet := map[string]bool{}
	for k := range edges {
		adj[k.from] = append(adj[k.from], k.to)
		nodeSet[k.from], nodeSet[k.to] = true, true
	}
	for n := range adj {
		sort.Strings(adj[n])
	}

	for _, scc := range stronglyConnected(nodeSet, adj) {
		if len(scc) < 2 {
			continue
		}
		sort.Strings(scc)
		inSCC := map[string]bool{}
		for _, n := range scc {
			inSCC[n] = true
		}
		// Report at the earliest edge inside the cycle, citing one edge in
		// each direction so the inversion is visible from the finding.
		var cyc []lockEdgeFact
		for k, pos := range edges {
			if inSCC[k.from] && inSCC[k.to] {
				cyc = append(cyc, lockEdgeFact{from: k.from, to: k.to, pos: pos})
			}
		}
		sort.Slice(cyc, func(i, j int) bool {
			if cyc[i].from != cyc[j].from {
				return cyc[i].from < cyc[j].from
			}
			if cyc[i].to != cyc[j].to {
				return cyc[i].to < cyc[j].to
			}
			return posLess(cyc[i].pos, cyc[j].pos)
		})
		e0 := cyc[0]
		counter := ""
		for _, e := range cyc {
			if e.from == e0.to {
				counter = fmt.Sprintf("; %s is acquired while %s is held at %s:%d", e.to, e.from, e.pos.Filename, e.pos.Line)
				break
			}
		}
		report(Finding{
			Pos: e0.pos,
			Message: fmt.Sprintf("lock-order cycle among {%s}: %s is acquired while %s is held%s; acquire these mutexes in one global order",
				strings.Join(scc, ", "), e0.to, e0.from, counter),
		})
	}
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// stronglyConnected returns the SCCs of the directed graph via iterative
// Tarjan, visiting nodes in sorted order for deterministic output.
func stronglyConnected(nodeSet map[string]bool, adj map[string][]string) [][]string {
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	type frame struct {
		node string
		succ int
	}
	for _, start := range nodes {
		if _, seen := index[start]; seen {
			continue
		}
		callStack := []frame{{node: start}}
		index[start], low[start] = next, next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			if f.succ < len(adj[f.node]) {
				w := adj[f.node][f.succ]
				f.succ++
				if _, seen := index[w]; !seen {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{node: w})
				} else if onStack[w] && index[w] < low[f.node] {
					low[f.node] = index[w]
				}
				continue
			}
			if low[f.node] == index[f.node] {
				var scc []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == f.node {
						break
					}
				}
				sccs = append(sccs, scc)
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := &callStack[len(callStack)-1]
				if low[f.node] < low[parent.node] {
					low[parent.node] = low[f.node]
				}
			}
		}
	}
	return sccs
}

// lockID matches x.Lock/Unlock/RLock/RUnlock on a sync.Mutex/RWMutex and
// canonicalizes the mutex identity across receiver names: a field mutex
// becomes "pkgpath.OwnerType.field", a package-level mutex
// "pkgpath.varname", an embedded mutex "pkgpath.OwnerType". Function-local
// mutexes return ok=false — they cannot appear in two functions.
func lockID(info *types.Info, call *ast.CallExpr) (op, id string, ok bool) {
	op, _, ok = mutexOp(info, call)
	if !ok {
		return "", "", false
	}
	sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	x := ast.Unparen(sel.X)
	if ident, isIdent := x.(*ast.Ident); isIdent {
		obj := info.Uses[ident]
		if obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return op, obj.Pkg().Path() + "." + ident.Name, true
		}
		// A local identifier: either a genuinely local mutex (skip) or a
		// receiver/local that EMBEDS the mutex — then its named type is
		// the identity.
		if named := namedOwner(info.TypeOf(x)); named != nil && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() != "sync" {
			return op, named.Obj().Pkg().Path() + "." + named.Obj().Name(), true
		}
		return "", "", false
	}
	if fieldSel, isSel := x.(*ast.SelectorExpr); isSel {
		if named := namedOwner(info.TypeOf(fieldSel.X)); named != nil && named.Obj().Pkg() != nil {
			return op, named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fieldSel.Sel.Name, true
		}
	}
	return "", "", false
}

// namedOwner dereferences t to its named type, or nil.
func namedOwner(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// funcQName qualifies a function for the cross-package call graph:
// "pkgpath.Name" or "pkgpath.RecvType.Name".
func funcQName(fobj *types.Func) string {
	if fobj.Pkg() == nil {
		return ""
	}
	if recv := fobj.Type().(*types.Signature).Recv(); recv != nil {
		named := namedOwner(recv.Type())
		if named == nil {
			return ""
		}
		return fobj.Pkg().Path() + "." + named.Obj().Name() + "." + fobj.Name()
	}
	return fobj.Pkg().Path() + "." + fobj.Name()
}

// moduleCallee resolves call to the qualified name of a statically known
// function declared in this module, or "". Interface methods and function
// values stay unresolved by design.
func moduleCallee(pass *Pass, call *ast.CallExpr) string {
	var obj types.Object
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fn]
	case *ast.SelectorExpr:
		if sel, isMethod := pass.TypesInfo.Selections[fn]; isMethod {
			if types.IsInterface(sel.Recv()) {
				return ""
			}
		}
		obj = pass.TypesInfo.Uses[fn.Sel]
	default:
		return ""
	}
	fobj, ok := obj.(*types.Func)
	if !ok || fobj.Pkg() == nil {
		return ""
	}
	path := fobj.Pkg().Path()
	if path != pass.Pkg.Path() && path != "ringbft" &&
		!strings.HasPrefix(path, "ringbft/") && !strings.HasPrefix(path, "fixture/") {
		return ""
	}
	return funcQName(fobj)
}
