// Package analysis is a self-contained static-analysis framework plus the
// suite of protocol-invariant analyzers for this repository.
//
// The chaos matrix (internal/chaos) found its PR 5 bugs by exploring seeded
// fault schedules — expensive, probabilistic, and after the fact. Every one
// of those bugs was an instance of a statically detectable pattern: Go map
// iteration order leaking into protocol decisions, message payloads adopted
// before an authenticity check, the event loop blocked while protocol state
// is locked, wall-clock reads inside seed-deterministic code. This package
// mechanizes those patterns as compile-time rules so the next regression of
// a known class dies in `make lint` instead of a nightly soak.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) so analyzers port over verbatim if the dependency ever
// becomes available; the build environment is hermetic, so the framework —
// package loading (load.go), the multichecker driver (runner.go), and the
// fixture harness (analysistest.go) — is implemented on the standard
// library's go/ast, go/parser, and go/types alone.
//
// Suppressions: a finding is silenced by a comment on its line, the line
// above, or the enclosing function's declaration:
//
//	//ringbft:ignore <analyzer> <reason>
//
// The reason is mandatory — an ignore without one is itself a finding —
// and the driver counts and reports every suppression so reviews see the
// full ledger. See suite.go for the shipped analyzers and their scopes.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant rule: a named pass over a type-checked
// package that reports Diagnostics.
type Analyzer struct {
	// Name identifies the analyzer in findings, suppression comments, and
	// the -only flag of cmd/ringbft-vet. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description printed by `ringbft-vet -list`.
	Doc string
	// Run inspects one package via the Pass and reports findings through
	// pass.Report. The returned value is per-package facts handed to
	// Finish (nil for purely local analyzers; the shape is the analyzer's
	// own business, mirroring x/tools facts).
	Run func(pass *Pass) (interface{}, error)
	// Finish, when non-nil, runs once after Run has been applied to every
	// package in scope, receiving each package's Run value. It reports
	// whole-program findings — lock-order cycles span packages, so no
	// single Pass can see them. Findings carry resolved positions; the
	// driver fills in the Analyzer name and suppression state.
	Finish func(pkgs []PackageResult, report func(Finding))
}

// PackageResult pairs an analyzed package with the value its Run returned,
// for cross-package aggregation in Finish.
type PackageResult struct {
	Path  string
	Value interface{}
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one finding. The driver owns suppression handling;
	// analyzers always report.
	Report func(Diagnostic)
}

// Reportf reports a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a resolved diagnostic as emitted by the driver: position
// translated, suppression state attached.
type Finding struct {
	Analyzer   string
	Pos        token.Position
	Message    string
	Suppressed bool
	// Reason is the justification carried by the matching ignore comment
	// (suppressed findings only).
	Reason string
}

func (f Finding) String() string {
	state := ""
	if f.Suppressed {
		state = fmt.Sprintf(" (suppressed: %s)", f.Reason)
	}
	return fmt.Sprintf("%s:%d:%d: [%s] %s%s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message, state)
}
