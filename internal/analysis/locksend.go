package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockSend flags blocking operations performed while a sync.Mutex or
// sync.RWMutex is held.
//
// This is the event-loop-stall class PR 4 rewrote tcpnet to kill: the old
// Transport.Send dialed with a 3-second timeout and wrote frames with no
// deadline under a per-connection mutex on the replica event loop, so one
// dead or backpressured peer froze every timer of every replica sharing the
// loop. The protocol packages hold replica/engine state under mutexes in
// several places; a blocking call inside such a critical section couples
// every other lock holder to the slowest peer, disk, or timer.
//
// A critical section runs from x.Lock()/x.RLock() to the matching
// x.Unlock()/x.RUnlock() in source order within one function, or to the end
// of the function for `defer x.Unlock()`. Inside it the analyzer flags:
//
//   - channel sends, and channel receives outside a select with a default
//     case (a send/recv under a held lock waits on a peer goroutine that
//     may itself want the lock);
//   - calls named Send, Dial*, Sleep, Sync, Flush, Wait, Accept, or
//     (Read|Write)(Full|All)? on an os/net object — dials, fsyncs, socket
//     I/O and goroutine joins;
//   - time.After/Tick in any position (they park the goroutine when
//     received under the lock).
//
// Lock identity is matched textually on the receiver chain (t.mu, r.state.mu),
// which is exact for this codebase's flat lock fields.
var LockSend = &Analyzer{
	Name: "locksend",
	Doc: "flags blocking operations (channel ops, Send/Dial/Sync/Sleep/Wait, " +
		"socket I/O) while a mutex is held",
	Run: runLockSend,
}

// blockingNames are callee base names that imply the caller can park.
var blockingNames = map[string]bool{
	"Send": true, "Dial": true, "DialContext": true, "DialTimeout": true,
	"Sleep": true, "Sync": true, "Flush": true, "Wait": true, "Accept": true,
	"ReadFull": true, "ReadAll": true, "WriteString": true,
}

func runLockSend(pass *Pass) (interface{}, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockSend(pass, fd.Body)
			// Closures get their own linear scan: a goroutine body that
			// locks and blocks is the same bug one frame down.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					checkLockSend(pass, fl.Body)
					return false
				}
				return true
			})
		}
	}
	return nil, nil
}

// lockEvent is one Lock/Unlock/blocking-op occurrence in source order.
type lockEvent struct {
	pos  token.Pos
	kind int // 0 lock, 1 unlock, 2 deferred unlock, 3 blocking op
	mu   string
	desc string
	// insideFuncLit marks events under a nested closure; the outer scan
	// skips them (the closure scans itself), except deferred unlocks via
	// `defer func() { ... mu.Unlock() ... }()` which release the outer
	// section.
	depth int
}

type posRange struct{ lo, hi token.Pos }

func (r posRange) contains(p token.Pos) bool { return p >= r.lo && p < r.hi }

func checkLockSend(pass *Pass, body *ast.BlockStmt) {
	// AST ranges nest strictly, so closure depth and defer membership of
	// any position fall out of two pre-collected range lists.
	var funcLits, deferRanges []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			funcLits = append(funcLits, posRange{x.Pos(), x.End()})
		case *ast.DeferStmt:
			deferRanges = append(deferRanges, posRange{x.Call.Pos(), x.Call.End()})
		}
		return true
	})
	depthOf := func(p token.Pos) int {
		d := 0
		for _, r := range funcLits {
			if r.contains(p) {
				d++
			}
		}
		return d
	}
	inDefer := func(p token.Pos) bool {
		for _, r := range deferRanges {
			if r.contains(p) {
				return true
			}
		}
		return false
	}

	// ast.Inspect visits in source order, so events replay linearly.
	var events []lockEvent
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if name, mu, ok := mutexOp(pass.TypesInfo, x); ok {
				kind := -1
				switch {
				case (name == "Lock" || name == "RLock") && !inDefer(x.Pos()):
					kind = 0
				case name == "Unlock" || name == "RUnlock":
					kind = 1
					if inDefer(x.Pos()) {
						kind = 2
					}
				}
				if kind >= 0 {
					events = append(events, lockEvent{pos: x.Pos(), kind: kind, mu: mu, depth: depthOf(x.Pos())})
				}
				return true
			}
			if desc, ok := blockingCall(pass.TypesInfo, x); ok && !inDefer(x.Pos()) {
				events = append(events, lockEvent{pos: x.Pos(), kind: 3, desc: desc, depth: depthOf(x.Pos())})
			}
		case *ast.SendStmt:
			if !insideSelectDefault(body, x.Pos()) {
				events = append(events, lockEvent{pos: x.Pos(), kind: 3, desc: "channel send", depth: depthOf(x.Pos())})
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !insideSelectDefault(body, x.Pos()) {
				events = append(events, lockEvent{pos: x.Pos(), kind: 3, desc: "channel receive", depth: depthOf(x.Pos())})
			}
		}
		return true
	})

	// Linear replay over depth-0 events: closures scan themselves (see
	// runLockSend), but their deferred unlocks release the outer section.
	held := map[string]token.Pos{}   // mu expr -> lock pos
	deferredEnd := map[string]bool{} // mu held to end of function
	for _, ev := range events {
		switch {
		case ev.kind == 0 && ev.depth == 0:
			held[ev.mu] = ev.pos
		case ev.kind == 1 && ev.depth == 0:
			if !deferredEnd[ev.mu] {
				delete(held, ev.mu)
			}
		case ev.kind == 2:
			deferredEnd[ev.mu] = true
		case ev.kind == 3 && ev.depth == 0 && len(held) > 0:
			// One report per site, naming the first-held mutex
			// deterministically (sorted — our own mapiter rule applies).
			mus := make([]string, 0, len(held))
			for mu := range held {
				mus = append(mus, mu)
			}
			sort.Strings(mus)
			pass.Reportf(ev.pos, "blocking %s while %s is held; a stalled peer or disk wedges every goroutine contending for the lock", ev.desc, mus[0])
		}
	}
}

// mutexOp matches x.Lock/Unlock/RLock/RUnlock where x is a sync.Mutex or
// sync.RWMutex (directly or embedded), returning the op name and the
// rendered mutex expression.
func mutexOp(info *types.Info, call *ast.CallExpr) (op, mu string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	selection, found := info.Selections[sel]
	if !found {
		return "", "", false
	}
	fobj, isFunc := selection.Obj().(*types.Func)
	if !isFunc || fobj.Pkg() == nil || fobj.Pkg().Path() != "sync" {
		return "", "", false
	}
	return sel.Sel.Name, types.ExprString(sel.X), true
}

// blockingCall matches call shapes that can park the goroutine.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	pkg, name, resolved := calleePkgFunc(info, call)
	base := calleeName(call)
	if resolved {
		// time.Time and time.Duration methods (ef.After(dep), d.Sleep-free
		// arithmetic) resolve to pkg "time" too; only the package-level
		// functions park the goroutine.
		if pkg == "time" && !isMethodCall(info, call) &&
			(name == "Sleep" || name == "After" || name == "Tick") {
			return "time." + name, true
		}
		if pkg == "sync" && name == "Wait" {
			return "WaitGroup.Wait", true
		}
		if strings.HasPrefix(pkg, "net") && strings.HasPrefix(name, "Dial") {
			return pkg + "." + name, true
		}
		if pkg == "io" && (name == "ReadFull" || name == "ReadAll" || name == "Copy") {
			return "io." + name, true
		}
	}
	if blockingNames[base] {
		return base + " call", true
	}
	return "", false
}

// insideSelectDefault reports whether pos sits inside a select statement
// that has a default clause (making its channel ops non-blocking). body is
// the function body to search within.
func insideSelectDefault(body *ast.BlockStmt, pos token.Pos) bool {
	inside := false
	ast.Inspect(body, func(n ast.Node) bool {
		if inside || n == nil {
			return false
		}
		sel, ok := n.(*ast.SelectStmt)
		if !ok || pos < sel.Pos() || pos >= sel.End() {
			return true
		}
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				inside = true
				return false
			}
		}
		return true
	})
	return inside
}
