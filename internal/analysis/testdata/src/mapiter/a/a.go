// Package a exercises the basic mapiter shapes: loops whose per-element
// effects depend on Go's randomized map order are flagged; order-insensitive
// reductions, collect-then-sort, and keyed writes are not.
package a

import "sort"

type item struct {
	seq int
	due int
}

type state struct {
	last string
	seen map[string]int
}

// Sending (or any effectful call) per element in map order is the canonical
// violation: every replica walks the map differently.
func emitUnsorted(m map[string]int, send func(string)) {
	for k := range m { // want `order-dependent effects`
		send(k)
	}
}

// Early exit: which element wins depends on iteration order.
func pickArbitrary(m map[string]int) (string, bool) {
	for k := range m { // want `order-dependent effects`
		return k, true
	}
	return "", false
}

// Last-writer-wins into non-local state: the surviving value is random.
func lastWins(m map[string]int, s *state) {
	for k := range m { // want `order-dependent effects`
		s.last = k
	}
}

// Pairing a counter with an effect: elements get different numbers on every
// replica even though each individual increment commutes.
func assignSeqs(m map[string]*item, propose func(int)) {
	next := 0
	for range m { // want `order-dependent effects`
		next++
		propose(next)
	}
}

// Collect then sort after the loop: canonical.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Commutative reductions: sums, counters keyed by the element, min/max
// latches guarded by conditions on the element, and constant latches.
func reductions(m map[string]int) (max int, found bool, total int) {
	counts := map[int]int{}
	for _, v := range m {
		total += v
		counts[v]++
		if v > max {
			max = v
			found = true
		}
	}
	_ = counts
	return
}

// Re-arming fields of the element itself with loop-invariant values: each
// element sees the same write regardless of visit order.
func rearm(m map[string]*item, now int) {
	for _, it := range m {
		if it.due < now {
			it.due = now
		}
	}
}

// Deleting by the range key and writing cells keyed by the range key both
// touch exactly the visited element: order cannot matter.
func keyedWrites(m map[string]int, dst map[string]int, bad func(string) bool) {
	for k, v := range m {
		if bad(k) {
			delete(m, k)
			continue
		}
		dst[k] = v * 2
	}
}
