// Package regress reproduces the PR 5 repropose bug that chaos hunting
// found by hand: on view change the new primary walked its pending-proposal
// map and assigned fresh sequence numbers in Go map iteration order, so
// identically seeded replicas proposed the same batches under different
// sequences and diverged. The fixed shape — iterate types.SortedDigestKeys —
// must stay silent.
package regress

import "ringbft/internal/types"

type pendingProposal struct {
	batch *types.Batch
}

type primary struct {
	nextSeq  types.SeqNum
	awaiting map[types.Digest]*pendingProposal
	propose  func(types.SeqNum, *types.Batch)
}

// repropose is the pre-PR5 shape: sequence assignment in map order.
func (p *primary) repropose() {
	for _, pp := range p.awaiting { // want `order-dependent effects`
		p.nextSeq++
		p.propose(p.nextSeq, pp.batch)
	}
}

// reproposeSorted is the shipped fix: canonical digest order, so every
// replica that replays the view change assigns the same sequences.
func (p *primary) reproposeSorted() {
	for _, d := range types.SortedDigestKeys(p.awaiting) {
		p.nextSeq++
		p.propose(p.nextSeq, p.awaiting[d].batch)
	}
}
