// Package precise pins the mapiter dataflow upgrade: the collect-then-sort
// idiom now demands that the sort DOMINATE every post-loop use on the CFG
// (not merely appear later in the file), and pure existence scans may
// break/return early.
package precise

import "sort"

type sched struct {
	pending map[string]int
}

// Collect-then-sort where the sort dominates the only use: fine.
func (s *sched) drainSorted() []string {
	var keys []string
	for k := range s.pending {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// The sort sits below the loop in the file but on a branch the return can
// bypass: some path reads keys in map order. PR 6's source-order rule
// accepted this; dominance flags it.
func (s *sched) drainMaybeSorted(doSort bool) []string {
	var keys []string
	for k := range s.pending { // want `order-dependent effects`
		keys = append(keys, k)
	}
	if doSort {
		sort.Strings(keys)
	}
	return keys
}

// Collecting without ever reading the slice afterwards is trivially safe.
func (s *sched) collectOnly() {
	var keys []string
	for k := range s.pending {
		keys = append(keys, k)
	}
}

// A pure existence scan: the only effects are one constant latch and an
// early break. Whichever matching element runs first, the final state is
// identical, so the early exit is order-insensitive.
func (s *sched) hasHot() bool {
	found := false
	for _, v := range s.pending {
		if v > 10 {
			found = true
			break
		}
	}
	return found
}

// Identical constant returns commute the same way.
func (s *sched) anyNegative() bool {
	for _, v := range s.pending {
		if v < 0 {
			return true
		}
	}
	return false
}

// Returning the element itself picks an arbitrary winner: still flagged.
func (s *sched) pickOne() int {
	for _, v := range s.pending { // want `order-dependent effects`
		if v > 0 {
			return v
		}
	}
	return 0
}

// Two different constants latched into the same variable under break: the
// first matching element decides, so the scan exemption does not apply.
func (s *sched) classify() int {
	mode := 0
	for k, v := range s.pending { // want `order-dependent effects`
		if v > 0 {
			mode = 1
			break
		}
		if k == "" {
			mode = 2
			break
		}
	}
	return mode
}
