// Package regress reproduces the two PR 5 bugs in the verify-before-adopt
// class that chaos hunting found by hand, plus the shipped fixes:
//
//   - the pbft engine buffered Prepare votes into the entry before checking
//     the sender's MAC, letting an equivocating primary convert honest votes
//     for batch A into prepared state for batch B;
//   - ringbft-client counted Response votes toward f+1 without verifying the
//     responder's MAC, so any spoofer satisfied the quorum.
package regress

import "ringbft/internal/types"

type engine struct {
	prepares map[types.NodeID]types.Digest
}

func (e *engine) verifyMAC(m *types.Message) bool { return len(m.MAC) == 32 }

// onPrepare is the pre-PR5 shape: count the vote, then (too late) check it.
func (e *engine) onPrepare(m *types.Message) {
	e.prepares[m.From] = m.Digest // want `adopts message payload`
	if !e.verifyMAC(m) {
		delete(e.prepares, m.From)
	}
}

// onPrepareFixed is the shipped fix: verify, then count.
func (e *engine) onPrepareFixed(m *types.Message) {
	if !e.verifyMAC(m) {
		return
	}
	e.prepares[m.From] = m.Digest
}

type client struct {
	votes map[types.Digest]map[types.NodeID]struct{}
}

func verifyResponseMAC(m *types.Message) bool { return len(m.MAC) == 32 }

// onResponse is the pre-PR5 shape: the vote set keyed and filled straight
// from the unauthenticated message.
func (c *client) onResponse(m *types.Message) {
	if c.votes[m.Digest] == nil {
		c.votes[m.Digest] = make(map[types.NodeID]struct{}) // want `adopts message payload`
	}
	c.votes[m.Digest][m.From] = struct{}{} // want `adopts message payload`
}

// onResponseFixed verifies the responder before counting toward f+1.
func (c *client) onResponseFixed(m *types.Message) {
	if !verifyResponseMAC(m) {
		return
	}
	if c.votes[m.Digest] == nil {
		c.votes[m.Digest] = make(map[types.NodeID]struct{})
	}
	c.votes[m.Digest][m.From] = struct{}{}
}
