// Package precise pins the dataflow upgrade: CFG dominance instead of
// source order, interprocedural summaries instead of call-boundary
// conservatism, and the two structural exemptions (whole-message stash,
// client-request-only handlers).
package precise

import "ringbft/internal/types"

type replica struct {
	votes  map[types.NodeID]struct{}
	seen   map[types.Digest]*types.Batch
	log    []types.Digest
	future []*types.Message
}

func (r *replica) verifyMAC(m *types.Message) bool { return len(m.MAC) == 32 }

// A write positioned after the barrier in source but past an early return
// is dominated by the check and must not flag: every path that reaches the
// adoption executed verifyMAC first. (Source order got this right only by
// luck; dominance gets it right by construction.)
func (r *replica) onVote(m *types.Message) {
	if m.Batch == nil {
		return
	}
	if !r.verifyMAC(m) {
		return
	}
	if m.Seq == 0 {
		return
	}
	r.votes[m.From] = struct{}{}
}

// The converse: a Verify* call in one switch arm does not authenticate a
// sibling arm, even though the sibling sits below it in the file. Source
// order blessed this shape; dominance flags it.
func (r *replica) onDispatch(m *types.Message) {
	switch m.Type {
	case types.MsgPrepare:
		if !r.verifyMAC(m) {
			return
		}
		r.votes[m.From] = struct{}{}
	case types.MsgCommit:
		r.seen[m.Digest] = m.Batch // want `adopts message payload`
	}
}

// emit builds and sends a reply; nothing derived from its arguments
// reaches replica state, and its summary proves it. Calling it with
// message fields pre-barrier needs no suppression.
func (r *replica) emit(to types.NodeID, d types.Digest) {
	out := &types.Message{Type: types.MsgResponse, Digest: d}
	_ = to
	_ = out
}

func (r *replica) onQuery(m *types.Message) {
	r.emit(m.From, m.Digest) // emit-only callee: not an adoption
	if !r.verifyMAC(m) {
		return
	}
	r.votes[m.From] = struct{}{}
}

// Adoption is transitive through the summary fixed point: stash stores its
// argument via note, note stores it into state, so the pre-barrier call
// chain still flags at the outermost call.
func (r *replica) note(d types.Digest)  { r.log = append(r.log, d) }
func (r *replica) stash(d types.Digest) { r.note(d) }

func (r *replica) onChain(m *types.Message) {
	r.stash(m.Digest) // want `passes unverified message payload`
	if !r.verifyMAC(m) {
		return
	}
}

// Buffering the *intact* message for a later replay keeps its
// authenticators; whoever drains the stash is analyzed as a handler in its
// own right. Not an adoption.
func (r *replica) onFuture(m *types.Message) {
	r.future = append(r.future, m)
}

// onClientRequest's message parameter is narrowed to MsgClientRequest at
// its only call site. Client requests carry no point-to-point
// authenticator by protocol design, so the handler is exempt wholesale.
func (r *replica) onClientRequest(m *types.Message) {
	r.seen[m.Digest] = m.Batch
}

func (r *replica) onMessage(m *types.Message) {
	switch m.Type {
	case types.MsgClientRequest:
		r.onClientRequest(m)
	case types.MsgPrepare:
		if !r.verifyMAC(m) {
			return
		}
		r.votes[m.From] = struct{}{}
	}
}
