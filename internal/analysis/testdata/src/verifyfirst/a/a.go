// Package a exercises the basic verifyfirst shapes: a handler may read,
// route, copy, and allocate before the Verify* barrier, but must not let
// message-derived values reach receiver state above it.
package a

import "ringbft/internal/types"

type replica struct {
	votes map[types.NodeID]struct{}
	seen  map[types.Digest]*types.Batch
	log   []types.Digest
}

func (r *replica) verifyMAC(m *types.Message) bool { return len(m.MAC) == 32 }
func (r *replica) record(d types.Digest)           { r.log = append(r.log, d) }
func (r *replica) dispatch(m *types.Message)       {}

// Adopting payload above the barrier is the violation; the same write after
// the barrier is fine.
func (r *replica) onPrepare(m *types.Message) {
	r.seen[m.Digest] = m.Batch // want `adopts message payload`
	if !r.verifyMAC(m) {
		return
	}
	r.votes[m.From] = struct{}{}
}

// Taint flows through locals: d came from the message, and record provably
// stores its argument into replica state (its summary marks the parameter
// adopted), so pushing d into it pre-barrier is an adoption too.
func (r *replica) onCommit(m *types.Message) {
	d := m.Digest
	r.record(d) // want `passes unverified message payload`
	if !r.verifyMAC(m) {
		return
	}
	r.record(d)
}

// Pre-barrier reads, well-formedness checks, value copies, fresh
// allocations, and whole-message dispatch are exactly what belongs above
// the barrier.
func (r *replica) onForward(m *types.Message) {
	if m.Batch == nil || m.Digest.IsZero() {
		return
	}
	fwd := *m
	fwd.From = types.NodeID{}
	out := &types.Message{Type: m.Type, Digest: m.Digest}
	out.Seq = m.Seq
	r.dispatch(&fwd)
	if !r.verifyMAC(m) {
		return
	}
	r.seen[m.Digest] = m.Batch
	_ = out
}

// A handler-named function with no barrier anywhere is held to the rule for
// its whole body.
func (r *replica) onGossip(m *types.Message) {
	r.log = append(r.log, m.Digest) // want `adopts message payload`
}

// A non-handler helper without a barrier is not: its callers sit behind
// their own barriers and are checked there.
func (r *replica) noteDigest(m *types.Message) {
	r.log = append(r.log, m.Digest)
}
