// Package regress reproduces the PR 4 transport stall: Transport.Send
// dialed with a 3-second timeout while holding the connection-table mutex
// on the replica event loop, so one dead peer froze every replica sharing
// the table. The shipped fix (lock only around map access) and the
// time.Time-method shape the analyzer once confused with time.After must
// both stay silent.
package regress

import (
	"net"
	"sync"
	"time"
)

type transport struct {
	mu    sync.Mutex
	conns map[string]net.Conn
}

// Send is the pre-PR4 shape: the dial happens inside the critical section.
func (t *transport) Send(addr string, frame []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.conns[addr]
	if !ok {
		var err error
		c, err = net.DialTimeout("tcp", addr, 3*time.Second) // want `blocking net.DialTimeout while t.mu is held`
		if err != nil {
			return err
		}
		t.conns[addr] = c
	}
	_, err := c.Write(frame)
	return err
}

// sendFixed is the post-PR4 shape: the lock only guards the map; the dial
// and the write happen outside the critical section.
func (t *transport) sendFixed(addr string, frame []byte) error {
	t.mu.Lock()
	c, ok := t.conns[addr]
	t.mu.Unlock()
	if !ok {
		var err error
		c, err = net.DialTimeout("tcp", addr, 3*time.Second)
		if err != nil {
			return err
		}
		t.mu.Lock()
		t.conns[addr] = c
		t.mu.Unlock()
	}
	_, err := c.Write(frame)
	return err
}

// ef.After(dep) is time.Time arithmetic, not the package-level timer: the
// analyzer must distinguish methods from package functions (regression for
// the simnet false positive).
func (t *transport) expired(ef, dep time.Time) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return ef.After(dep)
}
