// Package a exercises the basic locksend shapes: parking the goroutine
// (channel ops, dials, sleeps) while a mutex is held is flagged; the same
// ops after Unlock, or made non-blocking by a select default, are not.
package a

import (
	"net"
	"sync"
	"time"
)

type peer struct {
	mu sync.Mutex
	ch chan int
}

// Channel send inside the critical section.
func (p *peer) notifyLocked(v int) {
	p.mu.Lock()
	p.ch <- v // want `blocking channel send while p.mu is held`
	p.mu.Unlock()
}

// A deferred unlock holds the lock for the rest of the function, so the
// dial below is under it.
func (p *peer) dialLocked(addr string) (net.Conn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return net.DialTimeout("tcp", addr, time.Second) // want `blocking net.DialTimeout while p.mu is held`
}

// Sleeping under the lock parks every contender.
func (p *peer) napLocked() {
	p.mu.Lock()
	defer p.mu.Unlock()
	time.Sleep(time.Millisecond) // want `blocking time.Sleep while p.mu is held`
}

// Send after the unlock is fine.
func (p *peer) notify(v int) {
	p.mu.Lock()
	p.mu.Unlock()
	p.ch <- v
}

// A select with a default clause makes the send non-blocking even under
// the lock.
func (p *peer) tryNotify(v int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case p.ch <- v:
	default:
	}
}

// A goroutine body that locks and blocks is the same bug one frame down.
func (p *peer) spawn() {
	go func() {
		p.mu.Lock()
		p.ch <- 1 // want `blocking channel send while p.mu is held`
		p.mu.Unlock()
	}()
}
