// Package a exercises the basic lockorder shapes: a consistent global
// order is silent, an inversion is a cycle, and function-local mutexes and
// closures sit outside the acquisition graph.
package a

import "sync"

// good takes a then b on every path — one global order, no cycle.
type good struct {
	a, b sync.Mutex
}

func (g *good) first() {
	g.a.Lock()
	g.b.Lock()
	g.b.Unlock()
	g.a.Unlock()
}

func (g *good) second() {
	g.a.Lock()
	defer g.a.Unlock()
	g.b.Lock()
	g.b.Unlock()
}

// bad takes the same pair in both orders: the classic inversion. The
// report lands on the earliest edge of the cycle.
type bad struct {
	a, b sync.Mutex
}

func (x *bad) ab() {
	x.a.Lock()
	x.b.Lock() // want `lock-order cycle among .fixture/lockorder/a\.bad\.a, fixture/lockorder/a\.bad\.b.`
	x.b.Unlock()
	x.a.Unlock()
}

func (x *bad) ba() {
	x.b.Lock()
	x.a.Lock()
	x.a.Unlock()
	x.b.Unlock()
}

// A function-local mutex cannot appear in two functions: outside the graph.
func localOnly() {
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()
}

// Acquisitions inside closures replay on their own clock: skipped.
type lazy struct {
	a, b sync.Mutex
}

func (l *lazy) deferredInversion() func() {
	l.a.Lock()
	defer l.a.Unlock()
	return func() {
		l.b.Lock()
		l.a.Lock()
		l.a.Unlock()
		l.b.Unlock()
	}
}
