// Package regress reproduces the harness/engine nesting shape: the tick
// path holds the engine mutex and sends through the transport (which takes
// the transport mutex inside Send), while the inbound read loop holds the
// transport mutex and delivers into the engine (which takes the engine
// mutex inside OnMessage). Neither function takes two locks itself — the
// cycle only exists interprocedurally, through the callee's transitive
// acquire set, which is exactly what hand inspection kept missing.
package regress

import "sync"

type engine struct {
	mu  sync.Mutex
	seq uint64
	tr  *transport
}

type transport struct {
	mu  sync.Mutex
	eng *engine
}

func (t *transport) Send(frame []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	_ = frame
}

func (e *engine) OnMessage(frame []byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	_ = frame
}

// Tick is half the inversion: transport.mu is acquired (inside Send)
// while engine.mu is held.
func (e *engine) Tick() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.seq++
	e.tr.Send(nil) // want `lock-order cycle among .fixture/lockorder/regress\.engine\.mu, fixture/lockorder/regress\.transport\.mu.`
}

// readLoop is the other half: engine.mu is acquired (inside OnMessage)
// while transport.mu is held.
func (t *transport) readLoop(frame []byte) {
	t.mu.Lock()
	t.eng.OnMessage(frame)
	t.mu.Unlock()
}

// TickFixed is the shipped fix: snapshot under the lock, send outside it.
func (e *engine) TickFixed() {
	e.mu.Lock()
	e.seq++
	e.mu.Unlock()
	e.tr.Send(nil)
}
