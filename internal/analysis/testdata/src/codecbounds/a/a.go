// Package a exercises the basic codecbounds shapes: reads of input-derived
// byte slices must be dominated by a len() check of the same slice. Inputs
// are []byte parameters, receiver-rooted []byte fields, and locals aliased
// from either; guards are len() occurrences and range heads.
package a

import "encoding/binary"

// An unguarded read of a parameter is the violation.
func first(b []byte) byte {
	return b[0] // want `first reads b\[0\] with no dominating len\(b\) check`
}

// A dominating length check blesses every read it dominates.
func guarded(b []byte) byte {
	if len(b) < 1 {
		return 0
	}
	return b[0]
}

// A len() in the same node as the read counts (shape, not arithmetic:
// fuzzing owns the off-by-ones, this analyzer owns "there is a test").
func tail(b []byte) byte {
	return b[len(b)-1]
}

// A range head reads len(b) by construction and dominates the body.
func sum(b []byte) (s int) {
	for i := range b {
		s += int(b[i])
	}
	return s
}

// A guard on a bypassable branch dominates nothing downstream.
func maybe(b []byte, ok bool) byte {
	if ok {
		_ = len(b)
	}
	return b[1] // want `maybe reads b\[1\] with no dominating len\(b\) check`
}

// Locals aliased from an input are inputs; a guard on the alias counts.
func alias(b []byte) byte {
	if len(b) < 8 {
		return 0
	}
	p := b[4:]
	if len(p) < 2 {
		return 0
	}
	return p[1]
}

// ...but a guard on the origin does not bless the alias: their lengths
// differ, which is exactly how resliced-decoder bugs happen.
func aliasUnguarded(b []byte) byte {
	if len(b) < 5 {
		return 0
	}
	p := b[4:]
	return p[0] // want `aliasUnguarded reads p\[0\] with no dominating len\(p\) check`
}

// decoder is the receiver-rooted shape: r.buf in a decoder struct is an
// input, keyed by its rendered selector path.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) u16() uint16 {
	if d.off+2 > len(d.buf) {
		return 0
	}
	v := binary.BigEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u8Unchecked() byte {
	v := d.buf[d.off] // want `u8Unchecked reads d\.buf\[d\.off\] with no dominating len\(d\.buf\) check`
	d.off++
	return v
}

// Reads inside closures are outside the per-function CFG: skipped.
func viaClosure(b []byte) func() byte {
	return func() byte { return b[0] }
}

// Locally allocated slices are not inputs.
func local() byte {
	buf := make([]byte, 8)
	return buf[3]
}
