// Package regress reproduces the PR 4 corrupt-frame panic: the inbound
// tcpnet frame path indexed attacker-controlled bytes with no bounds
// guard, so a short or hostile frame panicked the replica instead of
// dropping the connection. parseFrame is the pre-fix shape; the shipped
// fix checks the buffer length before touching any offset.
package regress

import "encoding/binary"

const headerLen = 5

// parseFrame trusts the wire: both header reads panic on a short frame.
func parseFrame(frame []byte) (byte, []byte, bool) {
	kind := frame[0]                                      // want `parseFrame reads frame\[0\] with no dominating len\(frame\) check`
	n := int(binary.BigEndian.Uint32(frame[1:headerLen])) // want `parseFrame reads frame\[1:headerLen\] with no dominating len\(frame\) check`
	if n < 0 || headerLen+n > len(frame) {
		return 0, nil, false
	}
	return kind, frame[headerLen : headerLen+n], true
}

// parseFrameFixed is the shipped shape: a length check dominates every
// read, so hostile input errors instead of panicking.
func parseFrameFixed(frame []byte) (byte, []byte, bool) {
	if len(frame) < headerLen {
		return 0, nil, false
	}
	kind := frame[0]
	n := int(binary.BigEndian.Uint32(frame[1:headerLen]))
	if n < 0 || headerLen+n > len(frame) {
		return 0, nil, false
	}
	return kind, frame[headerLen : headerLen+n], true
}
