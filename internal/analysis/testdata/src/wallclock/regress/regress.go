// Package regress reproduces the seed-replay bug class the wallclock
// analyzer was written for: chaos schedule construction that samples the
// host clock or the global rand source builds a different schedule on every
// run, so the failure seed printed by the matrix no longer replays the
// failure. The fixed shape threads the scenario seed through a local
// generator and a logical tick clock.
package regress

import (
	"math/rand"
	"time"
)

type event struct {
	at time.Duration
	op int
}

// buildScheduleBroken is the bug shape: the horizon anchors at time.Now and
// the op sequence draws from the global source.
func buildScheduleBroken(n int) []event {
	start := time.Now() // want `time.Now reads the wall clock`
	out := make([]event, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, event{
			at: time.Since(start), // want `time.Since reads the wall clock`
			op: rand.Intn(8),      // want `global rand.Intn draws from process-shared randomness`
		})
	}
	return out
}

// buildSchedule is the fixed shape: everything derives from the seed, so
// Scenario(protocol, fault, seed) replays byte-identically.
func buildSchedule(seed int64, n int) []event {
	rng := rand.New(rand.NewSource(seed))
	out := make([]event, 0, n)
	var tick time.Duration
	for i := 0; i < n; i++ {
		tick += time.Duration(rng.Intn(100)) * time.Millisecond
		out = append(out, event{at: tick, op: rng.Intn(8)})
	}
	return out
}
