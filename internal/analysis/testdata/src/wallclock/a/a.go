// Package a exercises the basic wallclock shapes: wall-clock reads and
// global math/rand draws are flagged; seeded generators and time.Time
// arithmetic are the sanctioned replacements.
package a

import (
	"math/rand"
	"time"
)

// Wall-clock reads couple a "deterministic" run to the host clock.
func stamp() time.Time {
	return time.Now() // want `time.Now reads the wall clock`
}

func wait(d time.Duration) {
	time.Sleep(d) // want `time.Sleep reads the wall clock`
}

func timer(d time.Duration) *time.Timer {
	return time.NewTimer(d) // want `time.NewTimer reads the wall clock`
}

// Global math/rand draws from the process-shared source every other test
// mutates.
func jitter(max int64) time.Duration {
	return time.Duration(rand.Int63n(max)) // want `global rand.Int63n draws from process-shared randomness`
}

// Seeded generators and time arithmetic on values threaded in are the
// sanctioned shapes.
func seeded(seed int64, base time.Time, max int64) time.Time {
	rng := rand.New(rand.NewSource(seed))
	return base.Add(time.Duration(rng.Int63n(max)))
}

// Methods on time.Time are pure arithmetic, not clock reads (regression:
// ef.After(dep) was once confused with the package-level time.After).
func compare(ef, dep time.Time) bool {
	return ef.After(dep)
}
