// Package regress reproduces the enum-growth bug class the analyzer was
// written for: adding a constant to types.MsgType or wal.RecordKind
// compiles cleanly while every switch dispatching on the enum silently
// drops the new value. The WAL shape is the PR 7 wiring bug — recovery
// replayed KindProgress and KindBlock and a new record kind simply
// vanished from the tail; the MsgType shape is every protocol dispatch
// switch before PR 9 added default arms.
package regress

import (
	"ringbft/internal/types"
	"ringbft/internal/wal"
)

// dispatch is the pre-fix protocol dispatch shape: a new message type
// reaches no handler and no one notices at compile time.
func dispatch(m *types.Message) bool {
	switch m.Type { // want `switch over .*MsgType is not exhaustive`
	case types.MsgPrePrepare:
		return true
	case types.MsgPrepare:
		return true
	}
	return false
}

// replay is the PR 7 recovery shape: evidence records silently vanish
// from the WAL tail.
func replay(tail []wal.Record) (n int) {
	for i := range tail {
		switch tail[i].Kind { // want `switch over .*RecordKind is not exhaustive: missing KindEvidence`
		case wal.KindProgress, wal.KindBlock:
			n++
		}
	}
	return n
}

// replayFixed is the shipped fix: a default arm declaring that foreign
// record kinds are not replica state.
func replayFixed(tail []wal.Record) (n int) {
	for i := range tail {
		switch tail[i].Kind {
		case wal.KindProgress, wal.KindBlock:
			n++
		default:
			// Evidence records belong to the evidence log's own WAL.
		}
	}
	return n
}
