// Package a exercises the basic kindswitch shapes: exhaustive switches,
// default arms, value-compared coverage, and the skip conditions (one-value
// types, non-constant cases, tagless and non-enum switches).
package a

import "ringbft/internal/types"

type color uint8

const (
	red color = iota
	green
	blue
)

// crimson aliases red's value; coverage is compared by constant value, so
// a case on either name covers both.
const crimson = red

// Covering every value is exhaustive: no finding.
func name(c color) string {
	switch c {
	case red:
		return "red"
	case green:
		return "green"
	case blue:
		return "blue"
	}
	return "?"
}

// Missing a constant with no default arm is the violation.
func bad(c color) string {
	switch c { // want `switch over color is not exhaustive: missing blue; add the cases or a default arm`
	case red:
		return "red"
	case green:
		return "green"
	}
	return "?"
}

// A default arm declares the remainder handled deliberately.
func withDefault(c color) string {
	switch c {
	case red:
		return "red"
	default:
		return "other"
	}
}

// Covering through an alias still counts: crimson == red by value.
func aliased(c color) string {
	switch c {
	case crimson:
		return "red-ish"
	case green:
		return "green"
	case blue:
		return "blue"
	}
	return "?"
}

// A one-value type is a flag, not a kind: skipped.
type lone uint8

const only lone = 0

func isOnly(v lone) bool {
	switch v {
	case only:
		return true
	}
	return false
}

// A non-constant case expression makes coverage unenumerable: skipped.
func dyn(c, pivot color) bool {
	switch c {
	case pivot:
		return true
	}
	return false
}

// A dispatch over a foreign module enum without a default arm is flagged;
// the unexported sentinel (msgTypeCount) is invisible here and not
// demanded.
func dispatch(t types.MsgType) bool {
	switch t { // want `switch over .*MsgType is not exhaustive`
	case types.MsgPrePrepare, types.MsgPrepare:
		return true
	}
	return false
}

// Tagless switches and switches over unnamed types are out of scope.
func tagless(n int) bool {
	switch {
	case n > 0:
		return true
	}
	switch n {
	case 1:
		return true
	}
	return false
}
