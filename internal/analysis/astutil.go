package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeName returns the bare name of a call's callee — "VerifyMessageSig"
// for crypto.VerifyMessageSig(...), "Lock" for t.mu.Lock() — or "".
func calleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// calleePkgFunc resolves a call to (package path, function name) when the
// callee is a package-level function (possibly through a package selector);
// methods resolve to their receiver's package. Returns ok=false for builtins
// and indirect calls through function values.
func calleePkgFunc(info *types.Info, call *ast.CallExpr) (pkg, name string, ok bool) {
	var obj types.Object
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		obj = info.Uses[fn.Sel]
	}
	fobj, isFunc := obj.(*types.Func)
	if !isFunc || fobj.Pkg() == nil {
		return "", "", false
	}
	return fobj.Pkg().Path(), fobj.Name(), true
}

// rootIdent walks to the leftmost identifier of a selector/index/call
// chain: r in r.csts[d].batch, t in t.mu.Lock. Returns nil when the root is
// not a plain identifier (composite literals, call results, ...).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isMapType reports whether e's type has a map underlying.
func isMapType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// funcScopeLocal reports whether obj is declared inside fn (parameters,
// results, or body-scoped) — i.e. writes to it cannot escape the call.
// Pointer-typed locals still alias outer state, so callers must treat a
// pointer-typed local as non-local.
func funcScopeLocal(info *types.Info, fn *ast.FuncDecl, obj types.Object) bool {
	if obj == nil || obj.Parent() == nil {
		return false
	}
	scope, ok := info.Scopes[fn.Type]
	if !ok {
		return false
	}
	for s := obj.Parent(); s != nil; s = s.Parent() {
		if s == scope {
			return true
		}
	}
	return false
}

// receiverObj returns the method receiver object of fn, or nil for plain
// functions and anonymous receivers.
func receiverObj(info *types.Info, fn *ast.FuncDecl) types.Object {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	return info.Defs[fn.Recv.List[0].Names[0]]
}

// hasVerifyName reports whether a bare callee name denotes an authenticity
// check: Verify, VerifyMAC, VerifyCert, VerifyMessageSig, VerifyQuorum, and
// unexported wrappers like verifyMAC or verifyShareCert.
func hasVerifyName(name string) bool {
	return strings.HasPrefix(name, "Verify") || strings.HasPrefix(name, "verify")
}

// isMethodCall reports whether call invokes a method (has a selection with
// a receiver) rather than a package-level function: time.After(d) is a
// package function, ef.After(dep) on a time.Time is not.
func isMethodCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	_, isMethod := info.Selections[sel]
	return isMethod
}

// isConstExpr reports whether e is a compile-time constant (literal, true,
// false, nil, iota-free const reference) — the same value every loop
// iteration, so repeated writes of it are idempotent.
func isConstExpr(info *types.Info, e ast.Expr) bool {
	if e == nil {
		return false
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name == "nil" {
		return true
	}
	tv, ok := info.Types[e]
	return ok && (tv.Value != nil || tv.IsNil())
}
