package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path     string
	Dir      string
	Standard bool
	Fset     *token.FileSet
	Files    []*ast.File
	Types    *types.Package
	Info     *types.Info
	// Errors holds type-check problems. Standard-library packages tolerate
	// them (assembly intrinsics and linknames confuse a pure source check
	// in rare corners); module packages must be error-free to be analyzed.
	Errors []error
}

// Loader loads packages by shelling out to `go list` for build-system
// metadata (file lists with build tags resolved, dependency graph) and
// type-checking everything from source with go/types. No export data and
// no third-party loader is needed, which keeps the toolchain hermetic.
//
// A Loader is safe for use from one goroutine; packages load once and are
// cached for the Loader's lifetime (the fixture harness reuses one Loader
// across all analyzer tests to pay the stdlib type-check cost once).
type Loader struct {
	Fset *token.FileSet

	mu    sync.Mutex
	metas map[string]*listMeta // ImportPath -> go list record
	// importMap unifies the std library's vendor remappings (source path
	// "golang.org/x/net/..." -> "vendor/golang.org/x/net/..."); within one
	// build configuration the mapping is globally consistent.
	importMap map[string]string
	pkgs      map[string]*Package
	dir       string // module root the go commands run in
}

type listMeta struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
}

// NewLoader returns a Loader rooted at dir (the module to analyze; "" means
// the current directory).
func NewLoader(dir string) *Loader {
	return &Loader{
		Fset:      token.NewFileSet(),
		metas:     make(map[string]*listMeta),
		importMap: make(map[string]string),
		pkgs:      make(map[string]*Package),
		dir:       dir,
	}
}

// Load lists patterns (e.g. "./...") with the go tool and returns the
// matched packages, type-checked, in deterministic (import path) order.
// Dependencies are loaded and checked too but only the matches return.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	// One -deps pass records metadata for the whole dependency closure; the
	// plain pass identifies which of those are the requested matches.
	if _, err := l.list(append([]string{"-deps"}, patterns...)); err != nil {
		return nil, err
	}
	matches, err := l.list(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, path := range matches {
		p, err := l.ensure(path)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// list runs `go list -json <args>`, records the metadata of every package
// it reports, and returns their import paths in output order.
func (l *Loader) list(args []string) ([]string, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json=ImportPath,Name,Dir,GoFiles,Imports,ImportMap,Standard"}, args...)...)
	cmd.Dir = l.dir
	// CGO off: the analyzers read pure-Go sources; cgo-tagged files would
	// not type-check without a C toolchain pass.
	cmd.Env = append(cmd.Environ(), "CGO_ENABLED=0")
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	dec := json.NewDecoder(out)
	var order []string
	for {
		var m listMeta
		if err := dec.Decode(&m); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		meta := m
		l.metas[meta.ImportPath] = &meta
		for from, to := range meta.ImportMap {
			l.importMap[from] = to
		}
		order = append(order, meta.ImportPath)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	return order, nil
}

// ensure returns the type-checked package for path, loading it (and its
// dependencies, recursively) on first use.
func (l *Loader) ensure(path string) (*Package, error) {
	if path == "unsafe" {
		return &Package{Path: path, Standard: true, Types: types.Unsafe}, nil
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	meta, ok := l.metas[path]
	if !ok {
		// A dependency surfaced outside any previous go list run (fixture
		// imports resolve this way).
		if _, err := l.list([]string{"-deps", path}); err != nil {
			return nil, err
		}
		if meta, ok = l.metas[path]; !ok {
			return nil, fmt.Errorf("analysis: package %q not found by go list", path)
		}
	}
	for _, imp := range meta.Imports {
		dep := imp
		if mapped, ok := l.importMap[imp]; ok {
			dep = mapped
		}
		if dep == "C" {
			continue
		}
		if _, err := l.ensure(dep); err != nil {
			return nil, err
		}
	}
	var files []*ast.File
	for _, f := range meta.GoFiles {
		af, err := parser.ParseFile(l.Fset, filepath.Join(meta.Dir, f), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", f, err)
		}
		files = append(files, af)
	}
	p, err := l.check(meta.ImportPath, meta.Dir, meta.Standard, files)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

// CheckFiles type-checks an ad-hoc package (the fixture harness) under
// import path path, resolving its imports through this Loader.
func (l *Loader) CheckFiles(path string, files []*ast.File) (*Package, error) {
	return l.check(path, "", false, files)
}

func (l *Loader) check(path, dir string, standard bool, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	p := &Package{Path: path, Dir: dir, Standard: standard, Fset: l.Fset, Files: files, Info: info}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { p.Errors = append(p.Errors, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	p.Types = tpkg
	// Standard-library corners (runtime intrinsics and the like) may not
	// fully check from pure source; their exported API — all the analyzers
	// consult — still does. Module packages must check clean.
	if err != nil && !standard {
		return nil, fmt.Errorf("analysis: type-check %s: %v (first of %d)", path, p.Errors[0], len(p.Errors))
	}
	return p, nil
}

// loaderImporter adapts Loader to go/types' Importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if mapped, ok := l.importMap[path]; ok {
		path = mapped
	}
	p, err := l.ensure(path)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}

var _ types.Importer = (*loaderImporter)(nil)
