package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Scoped binds an analyzer to the package scope it applies to. Scope
// entries are import-path suffix patterns relative to the module (e.g.
// "internal/pbft"); an empty Scope means every package.
type Scoped struct {
	Analyzer *Analyzer
	// Scope lists the package import-path suffixes the analyzer runs on.
	Scope []string
	// Why documents the scope choice for `ringbft-vet -list`.
	Why string
}

func (s Scoped) applies(pkgPath string) bool {
	if len(s.Scope) == 0 {
		return true
	}
	for _, suffix := range s.Scope {
		if pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix) {
			return true
		}
	}
	return false
}

// Result is the outcome of one driver run.
type Result struct {
	// Findings holds every diagnostic, suppressed ones included, sorted by
	// position. Failures are the unsuppressed subset.
	Findings []Finding
	// Malformed are broken //ringbft:ignore directives (always failures).
	Malformed []Finding
	// Unused are stale directives that silenced nothing (also failures:
	// the ledger must not accrete dead entries).
	Unused []Finding
	// Packages is how many packages were analyzed.
	Packages int
}

// Failures returns the findings that should fail the build: unsuppressed
// diagnostics, malformed suppressions, and stale suppressions.
func (r *Result) Failures() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	out = append(out, r.Malformed...)
	out = append(out, r.Unused...)
	return out
}

// Suppressed returns the accepted, justified findings — the ledger the
// driver prints so every ignore stays visible.
func (r *Result) Suppressed() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// Run loads patterns and applies every scoped analyzer to the packages its
// scope matches, resolving suppressions.
func Run(dir string, suite []Scoped, patterns ...string) (*Result, error) {
	loader := NewLoader(dir)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	// Suppressions are matched after every package (and every Finish hook)
	// has reported: a cross-package finding must still be suppressible at
	// the line it lands on.
	merged := &suppressions{}
	finishIn := map[*Analyzer][]PackageResult{}
	var raw []Finding
	for _, pkg := range pkgs {
		if pkg.Types == nil || len(pkg.Files) == 0 {
			continue
		}
		if len(pkg.Errors) > 0 {
			return nil, fmt.Errorf("analysis: %s has %d type errors (first: %v)", pkg.Path, len(pkg.Errors), pkg.Errors[0])
		}
		res.Packages++
		sups := collectSuppressions(pkg.Fset, pkg.Files)
		merged.all = append(merged.all, sups.all...)
		res.Malformed = append(res.Malformed, sups.malformed...)
		for _, sc := range suite {
			if !sc.applies(pkg.Path) {
				continue
			}
			diags, value, err := RunAnalyzer(sc.Analyzer, pkg)
			if err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", sc.Analyzer.Name, pkg.Path, err)
			}
			for _, d := range diags {
				raw = append(raw, Finding{Analyzer: sc.Analyzer.Name, Pos: pkg.Fset.Position(d.Pos), Message: d.Message})
			}
			if sc.Analyzer.Finish != nil {
				finishIn[sc.Analyzer] = append(finishIn[sc.Analyzer], PackageResult{Path: pkg.Path, Value: value})
			}
		}
	}
	for _, sc := range suite {
		if sc.Analyzer.Finish == nil {
			continue
		}
		name := sc.Analyzer.Name
		sc.Analyzer.Finish(finishIn[sc.Analyzer], func(f Finding) {
			f.Analyzer = name
			raw = append(raw, f)
		})
	}
	for _, f := range raw {
		if sup := merged.match(f.Analyzer, f.Pos); sup != nil {
			f.Suppressed = true
			f.Reason = sup.reason
		}
		res.Findings = append(res.Findings, f)
	}
	for _, sup := range merged.unused() {
		res.Unused = append(res.Unused, Finding{
			Analyzer: sup.analyzer,
			Pos:      posOf(sup),
			Message:  "stale suppression (no finding on this line); remove it",
		})
	}
	sortFindings(res.Findings)
	sortFindings(res.Malformed)
	sortFindings(res.Unused)
	return res, nil
}

// RunAnalyzer applies one analyzer to one package and returns its raw
// diagnostics (no suppression handling) in positional order, plus the Run
// value destined for the analyzer's Finish hook.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, interface{}, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	value, err := a.Run(pass)
	if err != nil {
		return nil, nil, err
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, value, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].Pos, fs[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}

func posOf(sup *suppression) token.Position {
	return token.Position{Filename: sup.file, Line: sup.line, Column: 1}
}
