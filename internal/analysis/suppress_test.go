package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseForSuppressions(t *testing.T, src string) *suppressions {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "sup.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return collectSuppressions(fset, []*ast.File{f})
}

func TestSuppressionCoverage(t *testing.T) {
	src := `package p

func a() {
	//ringbft:ignore mapiter the loop only logs
	x := 1
	_ = x
}

//ringbft:ignore verifyfirst client requests carry no MAC by design
func b() {
	y := 2
	_ = y
}
`
	s := parseForSuppressions(t, src)
	if len(s.all) != 2 {
		t.Fatalf("got %d suppressions, want 2", len(s.all))
	}

	// A line-level directive covers its own line and the next, same
	// analyzer only.
	if s.match("mapiter", token.Position{Filename: "sup.go", Line: 5}) == nil {
		t.Error("line below a mapiter directive should be suppressed")
	}
	if s.match("mapiter", token.Position{Filename: "sup.go", Line: 6}) != nil {
		t.Error("two lines below the directive should not be suppressed")
	}
	if s.match("locksend", token.Position{Filename: "sup.go", Line: 5}) != nil {
		t.Error("a mapiter directive must not silence locksend")
	}
	if s.match("mapiter", token.Position{Filename: "other.go", Line: 5}) != nil {
		t.Error("a directive must not silence findings in another file")
	}

	// A func-doc directive covers the whole function body.
	if s.match("verifyfirst", token.Position{Filename: "sup.go", Line: 11}) == nil {
		t.Error("func-doc directive should cover the function body")
	}
	if s.match("verifyfirst", token.Position{Filename: "sup.go", Line: 20}) != nil {
		t.Error("func-doc directive must not extend past the function end")
	}

	// Both directives matched something, so nothing is unused.
	if un := s.unused(); len(un) != 0 {
		t.Errorf("got %d unused suppressions, want 0", len(un))
	}
}

func TestSuppressionUnused(t *testing.T) {
	src := `package p

//ringbft:ignore wallclock stale annotation
func a() {}
`
	s := parseForSuppressions(t, src)
	if len(s.all) != 1 {
		t.Fatalf("got %d suppressions, want 1", len(s.all))
	}
	un := s.unused()
	if len(un) != 1 || un[0].analyzer != "wallclock" {
		t.Fatalf("unused = %+v, want the wallclock directive", un)
	}
}

func TestSuppressionMalformed(t *testing.T) {
	src := `package p

//ringbft:ignore mapiter
func a() {}

//ringbft:ignore
func b() {}
`
	s := parseForSuppressions(t, src)
	if len(s.all) != 0 {
		t.Fatalf("reason-less directives must not register, got %d", len(s.all))
	}
	if len(s.malformed) != 2 {
		t.Fatalf("got %d malformed findings, want 2", len(s.malformed))
	}
	for _, f := range s.malformed {
		if !strings.Contains(f.Message, "malformed suppression") {
			t.Errorf("malformed finding message = %q", f.Message)
		}
	}
}
