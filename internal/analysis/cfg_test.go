package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as a file and returns the body of the first
// function plus a position lookup by marker comment: the test marks
// statements with /*name*/ and asks for dominance between markers.
func parseBody(t *testing.T, src string) (*ast.BlockStmt, func(string) token.Pos) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test_src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	var body *ast.BlockStmt
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && body == nil {
			body = fd.Body
		}
	}
	if body == nil {
		t.Fatal("no function in source")
	}
	markers := map[string]token.Pos{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			name := strings.TrimSuffix(strings.TrimPrefix(c.Text, "/*"), "*/")
			// The marker names the statement that follows it on the line.
			markers[name] = c.End() + 1
		}
	}
	return body, func(name string) token.Pos {
		pos, ok := markers[name]
		if !ok {
			t.Fatalf("no marker %q", name)
		}
		return pos
	}
}

func TestCFGDominance(t *testing.T) {
	src := `package p

func f(x, y int, m map[int]int) int {
	/*top*/ a := x
	if x > 0 {
		/*guard*/ a++
		if y > 0 {
			/*deep*/ a += 2
		}
	} else {
		/*other*/ a--
	}
	/*join*/ a *= 2
	switch x {
	case 1:
		/*case1*/ a = 1
	case 2:
		/*case2*/ a = 2
	}
	/*postswitch*/ a++
	for i := 0; i < x; i++ {
		/*loop*/ a += i
	}
	/*postloop*/ a++
	for k := range m {
		if k == 0 {
			/*preret*/ a = k
			return a
		}
		/*rangebody*/ a += k
	}
	return a
}
`
	body, at := parseBody(t, src)
	cfg := BuildCFG(body)

	dom := func(a, b string) bool { return cfg.NodeDominates(at(a), at(b)) }

	cases := []struct {
		a, b string
		want bool
	}{
		{"top", "guard", true},    // entry dominates the then-branch
		{"top", "join", true},     // and the join
		{"guard", "join", false},  // a branch does not dominate the join
		{"guard", "deep", true},   // outer branch dominates nested branch
		{"other", "join", false},  // else-branch does not dominate the join
		{"guard", "other", false}, // sibling branches do not dominate each other
		{"case1", "case2", false}, // switch arms are alternatives
		{"case1", "postswitch", false},
		{"join", "case1", true}, // code above the switch dominates each arm
		{"join", "postswitch", true},
		{"top", "loop", true},
		{"loop", "postloop", false}, // a loop body may run zero times
		{"postloop", "rangebody", true},
		{"preret", "rangebody", false}, // the return branch does not reach it
	}
	for _, c := range cases {
		if got := dom(c.a, c.b); got != c.want {
			t.Errorf("NodeDominates(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}

	// Same-node and same-block ordering.
	if dom("top", "top") {
		t.Error("a node must not dominate itself")
	}
}

func TestCFGUnreachableAfterReturn(t *testing.T) {
	src := `package p

func f(x int) int {
	if x > 0 {
		return 1
	}
	/*live*/ x++
	return x
}
`
	body, at := parseBody(t, src)
	cfg := BuildCFG(body)
	l, ok := cfg.LocOf(at("live"))
	if !ok {
		t.Fatal("statement after the branch should resolve to a node")
	}
	if !cfg.Reachable(cfg.Blocks[l.block]) {
		t.Error("fall-through path after a guarded return must stay reachable")
	}
}

func TestCFGTerminators(t *testing.T) {
	src := `package p

import "os"

func f(x int) {
	if x == 1 {
		panic("one")
	}
	if x == 2 {
		os.Exit(2)
	}
	/*tail*/ x++
	_ = x
}
`
	body, at := parseBody(t, src)
	cfg := BuildCFG(body)
	l, ok := cfg.LocOf(at("tail"))
	if !ok || !cfg.Reachable(cfg.Blocks[l.block]) {
		t.Fatal("tail should be reachable via the non-panicking paths")
	}
	// The panic arm must not reach the tail: x==1's branch has no edge out.
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok && isTerminatorCall(call) {
					if len(blk.Succs) != 0 && blk.Nodes[len(blk.Nodes)-1] == n {
						t.Errorf("terminator block %d has successors %v", blk.Index, blk.Succs)
					}
				}
			}
		}
	}
}
