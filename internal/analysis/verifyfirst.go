package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// VerifyFirst flags message-handler code that adopts message payload into
// replica state before an authenticity check dominates the use.
//
// Two of the bugs chaos hunting caught by hand were instances of this
// class: the pbft engine buffered Prepare/Commit votes digest-blind (an
// equivocating primary converted honest votes for batch A into committed
// state for batch B), and ringbft-client counted Response votes without
// verifying the responder's MAC, so any spoofer satisfied f+1. The static
// shape is always the same — a field of a *types.Message flows into state
// (a map insert, a field write, a store/ledger/engine call) on a path no
// VerifyMessageSig / VerifyMessageMAC / VerifyCert call has guarded.
//
// Concretely, for every function with a types.Message (or *types.Message)
// parameter:
//
//   - the "barriers" are the calls whose callee name starts with "Verify"
//     (VerifyMessageSig, VerifyMessageMAC, VerifyCert, VerifyMAC, ...);
//   - an adoption site — an assignment or append whose target roots at the
//     receiver (or a pointer that aliases caller state), or a state-rooted
//     call carrying message-derived data — is safe only when some barrier
//     DOMINATES it on the function's control-flow graph: every path from
//     entry to the adoption executes the check first. Reading the message
//     (routing, well-formedness checks, digest comparisons) is always free,
//     and passing the whole message onward (dispatch, relay, a bounded
//     stash for later replay) is allowed: an intact message keeps its
//     authenticators, and whoever consumes it is analyzed as a handler in
//     its own right.
//   - a function with no barrier at all is held to the same rule for its
//     whole body when its name marks it a handler entry point (onX,
//     handleX, HandleX, OnX): adopting unauthenticated payload there needs
//     an explicit //ringbft:ignore with the reason the path is safe.
//
// Dominance replaces PR 6's source-order approximation: a write that
// merely appears below a Verify call in the file — in a sibling switch arm,
// or past an early return the verified path never reaches — is no longer
// blessed by position, and a write after an early-return guard IS
// recognized as dominated. Calls into functions declared in the same
// package are refined by interprocedural summaries (see taint.go): a
// helper that only emits replies never adopts, so calling it with message
// fields needs no suppression. Handlers whose message parameter is
// narrowed to types.MsgClientRequest at every intra-package call site are
// exempt wholesale — client requests carry no point-to-point authenticator
// by protocol design (clients hold no pairwise MAC keys; safety comes from
// digest-binding and consensus ordering).
//
// A barrier is any Verify*-named call: the analyzer does not model the
// branch polarity of the check (every handler here returns/drops on
// failure) nor verification performed inside callees. The fixture suite
// pins both approximations.
var VerifyFirst = &Analyzer{
	Name: "verifyfirst",
	Doc: "flags handlers that write message payload into replica state " +
		"on a path not dominated by a Verify* authenticity check",
	Run: runVerifyFirst,
}

func runVerifyFirst(pass *Pass) (interface{}, error) {
	sums := computeSummaries(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			msgParams := messageParams(pass, fd)
			if len(msgParams) == 0 {
				continue
			}
			if fobj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				if s := sums.byObj[fobj]; s != nil && s.clientRequestOnly {
					continue // every call site passes a client request
				}
			}
			barriers := verifyBarriers(fd.Body)
			if len(barriers) == 0 && !isHandlerName(fd.Name.Name) {
				continue
			}
			checkVerifyFirst(pass, sums, fd, msgParams, barriers)
		}
	}
	return nil, nil
}

func checkVerifyFirst(pass *Pass, sums *pkgSummaries, fd *ast.FuncDecl, msgParams map[types.Object]bool, barriers []token.Pos) {
	cfg := BuildCFG(fd.Body)
	tw := newTaintWalker(sums, fd)
	for obj := range msgParams {
		tw.taint[obj] = 1
	}
	tw.onAdopt = func(pos token.Pos, mask uint64, kind adoptKind, detail string) {
		if mask == 0 {
			return
		}
		if l, ok := cfg.LocOf(pos); ok && !cfg.Reachable(cfg.Blocks[l.block]) {
			return // dead code adopts nothing
		}
		for _, b := range barriers {
			if cfg.NodeDominates(b, pos) {
				return // a Verify* check guards every path to this site
			}
		}
		switch kind {
		case adoptAssign:
			pass.Reportf(pos, "%s adopts message payload into %s before any Verify* check authenticates the sender",
				fd.Name.Name, detail)
		case adoptCall:
			pass.Reportf(pos, "%s passes unverified message payload to %s before any Verify* check authenticates the sender",
				fd.Name.Name, detail)
		case adoptVia:
			pass.Reportf(pos, "%s mutates state reached through unverified message data (%s) before any Verify* check",
				fd.Name.Name, detail)
		}
	}
	tw.walk()
}

// verifyBarriers collects the positions of every Verify*-named call in the
// function body proper (closures run at some other time and guard nothing).
func verifyBarriers(body *ast.BlockStmt) []token.Pos {
	var out []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && hasVerifyName(calleeName(call)) {
			out = append(out, call.Pos())
		}
		return true
	})
	return out
}

// messageParams returns the parameter objects of fd whose type is
// types.Message or *types.Message.
func messageParams(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj != nil && isMessageType(obj.Type()) {
				out[obj] = true
			}
		}
	}
	return out
}

func isMessageType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Name() == "Message" && n.Obj().Pkg() != nil &&
		strings.HasSuffix(n.Obj().Pkg().Path(), "internal/types")
}

func isHandlerName(name string) bool {
	for _, prefix := range []string{"on", "On", "handle", "Handle"} {
		if rest, ok := strings.CutPrefix(name, prefix); ok && rest != "" {
			r := rest[0]
			if r >= 'A' && r <= 'Z' {
				return true
			}
		}
	}
	return false
}

func isPointerVar(obj types.Object) bool {
	_, ok := obj.Type().Underlying().(*types.Pointer)
	return ok
}

// isFreshAlloc reports whether e evaluates to storage allocated at this
// site: &T{...}, T{...}, or new(T).
func isFreshAlloc(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		return calleeName(x) == "new"
	}
	return false
}
