package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// VerifyFirst flags message-handler code that adopts message payload into
// replica state before an authenticity check dominates the use.
//
// Two of the bugs chaos hunting caught by hand were instances of this
// class: the pbft engine buffered Prepare/Commit votes digest-blind (an
// equivocating primary converted honest votes for batch A into committed
// state for batch B), and ringbft-client counted Response votes without
// verifying the responder's MAC, so any spoofer satisfied f+1. The static
// shape is always the same — a field of a *types.Message flows into state
// (a map insert, a field write, a store/ledger/engine call) above the
// VerifyMessageSig / VerifyMessageMAC / VerifyCert call that authenticates
// the sender.
//
// Concretely, for every function with a types.Message (or *types.Message)
// parameter:
//
//   - the "barrier" is the first call whose callee name starts with
//     "Verify" (VerifyMessageSig, VerifyMessageMAC, VerifyCert, VerifyMAC,
//     Verify, ...);
//   - before the barrier the function may read the message freely —
//     routing, well-formedness checks, digest comparisons are exactly what
//     belongs there — but must not let message-derived values reach
//     receiver state: no assignment or append whose target roots at the
//     receiver (or a pointer obtained from it), and no receiver-rooted
//     method call carrying a message-derived argument. Passing the whole
//     message to another handler (dispatch) is allowed: the callee is
//     analyzed on its own.
//   - a function with no barrier at all is held to the same rule for its
//     whole body when its name marks it a handler entry point (onX,
//     handleX, HandleX, OnX): adopting unauthenticated payload there needs
//     an explicit //ringbft:ignore with the reason the path is safe.
//
// The check approximates dominance by source order inside one function
// body, which matches the early-return style of every handler here; the
// fixture suite pins the approximation.
var VerifyFirst = &Analyzer{
	Name: "verifyfirst",
	Doc: "flags handlers that write message payload into replica state " +
		"before a Verify* authenticity check",
	Run: runVerifyFirst,
}

func runVerifyFirst(pass *Pass) (interface{}, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			msgParams := messageParams(pass, fd)
			if len(msgParams) == 0 {
				continue
			}
			v := &verifyFirstCheck{pass: pass, fn: fd, msgs: msgParams}
			v.run()
		}
	}
	return nil, nil
}

// messageParams returns the parameter objects of fd whose type is
// types.Message or *types.Message.
func messageParams(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj != nil && isMessageType(obj.Type()) {
				out[obj] = true
			}
		}
	}
	return out
}

func isMessageType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Name() == "Message" && n.Obj().Pkg() != nil &&
		strings.HasSuffix(n.Obj().Pkg().Path(), "internal/types")
}

type verifyFirstCheck struct {
	pass *Pass
	fn   *ast.FuncDecl
	msgs map[types.Object]bool
	// tainted holds locals derived from message payload (d := m.Batch.Digest()).
	tainted map[types.Object]bool
	// fresh holds pointer locals that point at allocations made in this
	// function (fwd := &types.Message{...}); writing through them cannot
	// reach replica state.
	fresh   map[types.Object]bool
	barrier token.Pos // position of the first Verify* call; NoPos = none
}

func (v *verifyFirstCheck) run() {
	v.tainted = make(map[types.Object]bool)
	v.fresh = make(map[types.Object]bool)
	v.barrier = v.findBarrier()
	handler := v.barrier != token.NoPos || isHandlerName(v.fn.Name.Name)
	if !handler {
		return
	}
	// Single source-order walk: track taint as locals are defined, flag
	// adoption sites that precede the barrier.
	ast.Inspect(v.fn.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if v.barrier != token.NoPos && n.Pos() >= v.barrier {
			return false // authenticated from here on
		}
		switch st := n.(type) {
		case *ast.FuncLit:
			return false // deferred/async bodies run after the handler
		case *ast.AssignStmt:
			v.assign(st)
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
				v.callStmt(call)
			}
		}
		return true
	})
}

// findBarrier locates the first Verify*-named call in the function body
// proper (closures run at some other time and guard nothing).
func (v *verifyFirstCheck) findBarrier() token.Pos {
	pos := token.NoPos
	ast.Inspect(v.fn.Body, func(n ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && hasVerifyName(calleeName(call)) {
			pos = call.Pos()
			return false
		}
		return true
	})
	return pos
}

func isHandlerName(name string) bool {
	for _, prefix := range []string{"on", "On", "handle", "Handle"} {
		if rest, ok := strings.CutPrefix(name, prefix); ok && rest != "" {
			r := rest[0]
			if r >= 'A' && r <= 'Z' {
				return true
			}
		}
	}
	return false
}

// assign propagates taint into defined locals and flags pre-barrier writes
// of message-derived values into non-local state.
func (v *verifyFirstCheck) assign(st *ast.AssignStmt) {
	taintedRHS := false
	for _, rhs := range st.Rhs {
		if v.exprTainted(rhs) {
			taintedRHS = true
		}
	}
	for i, lhs := range st.Lhs {
		id, isIdent := ast.Unparen(lhs).(*ast.Ident)
		if st.Tok == token.DEFINE && isIdent {
			if obj := v.pass.TypesInfo.Defs[id]; obj != nil {
				if taintedRHS {
					v.tainted[obj] = true
				}
				if len(st.Rhs) == len(st.Lhs) && isFreshAlloc(st.Rhs[i]) {
					v.fresh[obj] = true
				}
			}
			continue
		}
		if isIdent {
			obj := v.pass.TypesInfo.Uses[id]
			if funcScopeLocal(v.pass.TypesInfo, v.fn, obj) {
				if taintedRHS && obj != nil {
					v.tainted[obj] = true
				}
				continue
			}
		}
		// Non-ident target: receiver field, map cell, or write through a
		// local. Writes into non-pointer function locals (a scratch map, a
		// value-struct copy like fwd := *m) or through fresh local
		// allocations stay invisible to replica state; everything else with
		// message-derived data — cs.batch = b, votes[m.From] = struct{}{} —
		// is an adoption.
		if root := rootIdent(lhs); root != nil {
			obj := v.pass.TypesInfo.Uses[root]
			if obj != nil && funcScopeLocal(v.pass.TypesInfo, v.fn, obj) &&
				(!isPointerVar(obj) || v.fresh[obj]) {
				continue
			}
		}
		if taintedRHS || v.exprTainted(lhs) {
			v.pass.Reportf(st.Pos(), "%s adopts message payload into %s before any Verify* check authenticates the sender",
				v.fn.Name.Name, types.ExprString(lhs))
		}
	}
}

func isPointerVar(obj types.Object) bool {
	_, ok := obj.Type().Underlying().(*types.Pointer)
	return ok
}

// isFreshAlloc reports whether e evaluates to storage allocated at this
// site: &T{...}, T{...}, or new(T).
func isFreshAlloc(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		return calleeName(x) == "new"
	}
	return false
}

// callStmt flags pre-barrier statement-level method calls that push
// message-derived data into state: calls rooted at the receiver or a
// tainted local (cs.mergeCarried(m.WriteSets), r.chain.Append(...)).
// Expression-position calls are treated as reads — validation predicates
// (isPeer, PrevInRing, Digest) live there, and a mutation's result is
// almost never consumed inline in this codebase; the fixtures pin this
// approximation.
func (v *verifyFirstCheck) callStmt(call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if hasVerifyName(sel.Sel.Name) {
		return
	}
	root := rootIdent(sel.X)
	if root == nil {
		return
	}
	robj := v.pass.TypesInfo.Uses[root]
	if robj == nil {
		return
	}
	if v.fresh[robj] {
		return // mutating a fresh local allocation cannot adopt payload
	}
	recv := receiverObj(v.pass.TypesInfo, v.fn)
	onReceiver := robj == recv || !funcScopeLocal(v.pass.TypesInfo, v.fn, robj)
	if !onReceiver && !v.tainted[robj] {
		return // a call on an untainted local cannot adopt payload
	}
	taintedArg := false
	for _, arg := range call.Args {
		if v.isMessageVar(arg) {
			// Relaying or dispatching the whole message is fine: the
			// receiver of a relayed copy re-verifies, and a dispatch
			// callee is analyzed on its own.
			continue
		}
		if v.exprTainted(arg) {
			taintedArg = true
		}
	}
	if v.tainted[robj] && !onReceiver {
		v.pass.Reportf(call.Pos(), "%s mutates state reached through unverified message data (%s.%s) before any Verify* check",
			v.fn.Name.Name, root.Name, sel.Sel.Name)
		return
	}
	if taintedArg {
		v.pass.Reportf(call.Pos(), "%s passes unverified message payload to %s.%s before any Verify* check authenticates the sender",
			v.fn.Name.Name, types.ExprString(sel.X), sel.Sel.Name)
	}
}

// isMessageVar reports whether e is a whole message: the parameter itself,
// or any expression of type types.Message / *types.Message (a relayed copy
// like &fwd after fwd := *m). Whole messages travel to peers or other
// handlers, which authenticate them on their own.
func (v *verifyFirstCheck) isMessageVar(e ast.Expr) bool {
	if tv, ok := v.pass.TypesInfo.Types[ast.Unparen(e)]; ok && tv.Type != nil && isMessageType(tv.Type) {
		return true
	}
	return false
}

// exprTainted reports whether e derives from a message parameter or a
// tainted local: any identifier inside e resolving to one marks the whole
// expression.
func (v *verifyFirstCheck) exprTainted(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			obj := v.pass.TypesInfo.Uses[id]
			if obj != nil && (v.msgs[obj] || v.tainted[obj]) {
				found = true
			}
		}
		return !found
	})
	return found
}
