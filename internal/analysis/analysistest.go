package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// The fixture harness mirrors x/tools' analysistest: a fixture directory
// under testdata/src/<analyzer>/<case>/ holds one package of .go files
// whose lines carry expectations:
//
//	cs.batch = b // want `adopts message payload`
//
// Each `want` backquoted string is a regexp that must match a diagnostic
// reported on that line; diagnostics with no matching want, and wants with
// no matching diagnostic, fail the run. Fixtures may import real module
// packages (ringbft/internal/types, ...), so regression fixtures reproduce
// the actual PR 5 bug shapes against the actual types.

// filePos keys expectations and reports by file and line.
type filePos struct {
	file string
	line int
}

var wantRe = regexp.MustCompile("//[ \t]*want[ \t]+((?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")(?:[ \t]+(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"))*)")
var wantArgRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// RunFixture applies analyzer a to the fixture package in dir and compares
// diagnostics against the // want expectations. loader is shared across
// fixtures so the module and stdlib dependencies type-check once.
func RunFixture(loader *Loader, a *Analyzer, dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, filepath.Join(dir, e.Name()))
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("analysistest: no .go files in %s", dir)
	}
	for _, name := range names {
		f, err := parser.ParseFile(loader.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("analysistest: parse: %w", err)
		}
		files = append(files, f)
	}
	pkg, err := loader.CheckFiles("fixture/"+a.Name+"/"+filepath.Base(dir), files)
	if err != nil {
		return err
	}
	if len(pkg.Errors) > 0 {
		return fmt.Errorf("analysistest: fixture %s: %d type errors (first: %v)", dir, len(pkg.Errors), pkg.Errors[0])
	}
	diags, value, err := RunAnalyzer(a, pkg)
	if err != nil {
		return err
	}
	type located struct {
		pos     filePos
		message string
	}
	var reports []located
	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		reports = append(reports, located{filePos{p.Filename, p.Line}, d.Message})
	}
	if a.Finish != nil {
		// A fixture exercises the whole-program pass over its single
		// package, so Finish sees exactly one PackageResult.
		a.Finish([]PackageResult{{Path: pkg.Path, Value: value}}, func(f Finding) {
			reports = append(reports, located{filePos{f.Pos.Filename, f.Pos.Line}, f.Message})
		})
	}

	wants := make(map[filePos][]*regexp.Regexp)
	for _, name := range names {
		src, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, arg := range wantArgRe.FindAllString(m[1], -1) {
				pat := arg[1 : len(arg)-1] // strip quotes/backquotes
				re, err := regexp.Compile(pat)
				if err != nil {
					return fmt.Errorf("analysistest: %s:%d: bad want pattern %q: %v", name, i+1, pat, err)
				}
				wants[filePos{name, i + 1}] = append(wants[filePos{name, i + 1}], re)
			}
		}
	}

	var problems []string
	for _, d := range reports {
		matched := false
		for i, re := range wants[d.pos] {
			if re != nil && re.MatchString(d.message) {
				wants[d.pos][i] = nil // consume
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("%s:%d: unexpected diagnostic: %s", d.pos.file, d.pos.line, d.message))
		}
	}
	var keys []filePos
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, re := range wants[k] {
			if re != nil {
				problems = append(problems, fmt.Sprintf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re))
			}
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("analysistest %s/%s:\n%s", a.Name, filepath.Base(dir), strings.Join(problems, "\n"))
	}
	return nil
}
