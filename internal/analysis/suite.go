package analysis

// DefaultSuite returns the protocol-invariant analyzer suite with each
// analyzer bound to the packages whose invariants it encodes. Scope
// entries are module-relative import paths; cmd/ringbft-vet runs this
// suite and `make lint` must exit zero on the repository.
//
// Adding a rule: write the Analyzer in its own file, give it fixtures
// under testdata/src/<name>/ (see analysistest.go), wire it here with a
// scope and a Why, and burn the existing findings down — fix real
// violations, or annotate with `//ringbft:ignore <name> <reason>` where
// the code is right and the rule's approximation is what's wrong.
func DefaultSuite() []Scoped {
	// Every cmd/ binary: the ringbft-client MAC bug lived in cmd/, outside
	// every PR 6 scope — the lesson is that entry points handle messages
	// and replay schedules too.
	cmds := []string{
		"cmd/ringbft-bench", "cmd/ringbft-benchmerge", "cmd/ringbft-chaos",
		"cmd/ringbft-client", "cmd/ringbft-node", "cmd/ringbft-vet",
	}
	// Determinism-critical: packages whose control flow must replay
	// identically across replicas (sequence assignment, message emission)
	// or across reruns of one seed (chaos schedules, harness scheduling).
	// internal/wal and internal/store joined in PR 9: recovery replay and
	// read-set assembly must be byte-identical across replicas as well.
	deterministic := append([]string{
		"internal/pbft", "internal/ringbft", "internal/ahl",
		"internal/sharper", "internal/chaos", "internal/harness",
		"internal/protocols", "internal/evidence",
		"internal/wal", "internal/store", "internal/tcpnet",
	}, cmds...)
	// Byzantine-facing: packages that handle messages from other nodes.
	// internal/evidence qualifies twice over: records are built from peer
	// messages, and transferable records are re-verified on foreign nodes.
	handlers := append([]string{
		"internal/pbft", "internal/ringbft", "internal/ahl",
		"internal/sharper", "internal/protocols", "internal/evidence",
		"internal/wal", "internal/store", "internal/tcpnet",
	}, cmds...)
	// Codec-bearing: packages that hand-roll binary decoders over
	// peer-supplied bytes. internal/types carries the message codec,
	// internal/crypto the key/signature parsing.
	codecs := []string{
		"internal/wal", "internal/evidence", "internal/tcpnet",
		"internal/store", "internal/types", "internal/crypto",
	}
	// Seed-deterministic: Scenario(seed) and jitter sampling must replay.
	// internal/metrics and internal/trace join the scope because their
	// wall-clock-freedom is what lets instrumented chaos runs stay
	// byte-identical: every timestamp must come from a caller-injected
	// clock, never time.Now.
	seeded := []string{
		"internal/chaos", "internal/simnet",
		"internal/metrics", "internal/trace",
	}

	return []Scoped{
		{Analyzer: MapIter, Scope: deterministic,
			Why: "map order must not reach sequence assignment, message emission, or schedules"},
		{Analyzer: VerifyFirst, Scope: handlers,
			Why: "payload adoption must be dominated by a Verify* authenticity check"},
		{Analyzer: LockSend, Scope: nil,
			Why: "no blocking op under any mutex, anywhere in the module"},
		{Analyzer: WallClock, Scope: seeded,
			Why: "seed-reproducibility: no wall clock or global rand in schedule construction"},
		{Analyzer: KindSwitch, Scope: nil,
			Why: "a new MsgType or WAL record kind must not silently fall through any dispatch switch"},
		{Analyzer: CodecBounds, Scope: codecs,
			Why: "every hand-rolled decoder read must sit behind a length check; hostile frames must error, not panic"},
		{Analyzer: LockOrder, Scope: nil,
			Why: "lock cycles span packages (harness wraps engine mutexes around tcpnet); the whole module is one acquisition graph"},
	}
}

// Analyzers returns every analyzer in the default suite, unscoped (the
// fixture harness and -only flag look analyzers up by name here).
func Analyzers() []*Analyzer {
	return []*Analyzer{MapIter, VerifyFirst, LockSend, WallClock, KindSwitch, CodecBounds, LockOrder}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
