package analysis

// DefaultSuite returns the protocol-invariant analyzer suite with each
// analyzer bound to the packages whose invariants it encodes. Scope
// entries are module-relative import paths; cmd/ringbft-vet runs this
// suite and `make lint` must exit zero on the repository.
//
// Adding a rule: write the Analyzer in its own file, give it fixtures
// under testdata/src/<name>/ (see analysistest.go), wire it here with a
// scope and a Why, and burn the existing findings down — fix real
// violations, or annotate with `//ringbft:ignore <name> <reason>` where
// the code is right and the rule's approximation is what's wrong.
func DefaultSuite() []Scoped {
	// Determinism-critical: packages whose control flow must replay
	// identically across replicas (sequence assignment, message emission)
	// or across reruns of one seed (chaos schedules, harness scheduling).
	deterministic := []string{
		"internal/pbft", "internal/ringbft", "internal/ahl",
		"internal/sharper", "internal/chaos", "internal/harness",
		"internal/protocols", "internal/evidence",
	}
	// Byzantine-facing: packages that handle messages from other nodes.
	// internal/evidence qualifies twice over: records are built from peer
	// messages, and transferable records are re-verified on foreign nodes.
	handlers := []string{
		"internal/pbft", "internal/ringbft", "internal/ahl",
		"internal/sharper", "internal/protocols", "internal/evidence",
		"cmd/ringbft-client", "cmd/ringbft-node",
	}
	// Seed-deterministic: Scenario(seed) and jitter sampling must replay.
	// internal/metrics and internal/trace join the scope because their
	// wall-clock-freedom is what lets instrumented chaos runs stay
	// byte-identical: every timestamp must come from a caller-injected
	// clock, never time.Now.
	seeded := []string{
		"internal/chaos", "internal/simnet",
		"internal/metrics", "internal/trace",
	}

	return []Scoped{
		{Analyzer: MapIter, Scope: deterministic,
			Why: "map order must not reach sequence assignment, message emission, or schedules"},
		{Analyzer: VerifyFirst, Scope: handlers,
			Why: "payload adoption must be dominated by a Verify* authenticity check"},
		{Analyzer: LockSend, Scope: nil,
			Why: "no blocking op under any mutex, anywhere in the module"},
		{Analyzer: WallClock, Scope: seeded,
			Why: "seed-reproducibility: no wall clock or global rand in schedule construction"},
	}
}

// Analyzers returns every analyzer in the default suite, unscoped (the
// fixture harness and -only flag look analyzers up by name here).
func Analyzers() []*Analyzer {
	return []*Analyzer{MapIter, VerifyFirst, LockSend, WallClock}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
