package analysis

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// The fixture loader type-checks the module and stdlib dependencies once;
// every fixture package shares it.
var (
	loaderOnce   sync.Once
	sharedLoader *Loader
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { sharedLoader = NewLoader("") })
	return sharedLoader
}

// TestFixtures runs every analyzer over its testdata/src/<analyzer>/<case>
// fixture packages and checks the diagnostics against the // want
// expectations. Every analyzer in the suite must ship fixtures: the a/
// case pins the basic flagged and allowed shapes, the regress/ case pins
// the real bug (PR 4 transport stall, PR 5 map-order and verify-order
// bugs, the seed-replay class) the analyzer was written to catch.
func TestFixtures(t *testing.T) {
	for _, a := range Analyzers() {
		root := filepath.Join("testdata", "src", a.Name)
		entries, err := os.ReadDir(root)
		if err != nil {
			t.Errorf("%s: analyzer has no fixture directory: %v", a.Name, err)
			continue
		}
		cases := 0
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			cases++
			a, dir := a, filepath.Join(root, e.Name())
			t.Run(a.Name+"/"+e.Name(), func(t *testing.T) {
				if err := RunFixture(fixtureLoader(t), a, dir); err != nil {
					t.Error(err)
				}
			})
		}
		if cases == 0 {
			t.Errorf("%s: no fixture cases under %s", a.Name, root)
		}
	}
}

// TestFixturesHaveRegressions pins the PR-bug regression requirement: each
// analyzer carries a regress/ fixture reproducing the hand-found bug shape.
func TestFixturesHaveRegressions(t *testing.T) {
	for _, a := range Analyzers() {
		dir := filepath.Join("testdata", "src", a.Name, "regress")
		if st, err := os.Stat(dir); err != nil || !st.IsDir() {
			t.Errorf("%s: missing regression fixture %s", a.Name, dir)
		}
	}
}

// TestSuiteShape pins the tentpole contract: at least four analyzers, each
// named, documented, and resolvable through ByName.
func TestSuiteShape(t *testing.T) {
	as := Analyzers()
	if len(as) < 4 {
		t.Fatalf("suite has %d analyzers, want >= 4", len(as))
	}
	for _, a := range as {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if ByName(a.Name) == nil {
			t.Errorf("ByName(%q) = nil", a.Name)
		}
	}
	if ByName("no-such-analyzer") != nil {
		t.Error("ByName of an unknown analyzer should be nil")
	}
}
