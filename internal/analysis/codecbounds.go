package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CodecBounds flags reads of input-derived byte slices that no length
// check dominates — the hand-rolled-decoder panic class.
//
// This is the shape behind PR 4's corrupt-frame disconnects: the inbound
// tcpnet frame path indexed attacker-controlled bytes with no bounds
// guard, so a short or hostile frame panicked the replica instead of
// dropping the connection. The WAL record codec and the evidence codec
// (PR 7) decode the same way — explicit offsets into a []byte — and stay
// safe only because every read sits behind an `off+n > len(buf)` guard.
// This analyzer mechanizes that discipline.
//
// For every function, the input set is its []byte parameters, []byte
// fields reached through the method receiver (r.buf in a decoder struct),
// and locals aliased from either. Every index or slice expression over an
// input must be DOMINATED on the CFG by a node that reads len() of the
// same slice — a bounds comparison, a loop condition, or a `range` head
// over it. A len() in the same node as the read (b[len(b)-1], short-
// circuited guards) counts. Reads inside closures are skipped: the CFG is
// per-function, and no decoder here parses from a callback.
//
// The guard is shape-checked, not value-checked: the analyzer demands a
// length test exist and execute first, not that its arithmetic be right —
// fuzzing owns the arithmetic (FuzzDecodeRecord, FuzzFrameRead), this
// analyzer owns "there is a test at all", which is exactly the invariant
// the PR 4 bug violated.
var CodecBounds = &Analyzer{
	Name: "codecbounds",
	Doc: "flags index/slice reads of input-derived []byte not dominated by " +
		"a len() check of the same slice",
	Run: runCodecBounds,
}

func runCodecBounds(pass *Pass) (interface{}, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCodecBounds(pass, fd)
		}
	}
	return nil, nil
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func checkCodecBounds(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// The input set: []byte params and locals aliased from inputs, by
	// object; receiver-rooted []byte selector paths, by rendered text.
	inputObjs := map[types.Object]bool{}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil && isByteSlice(obj.Type()) {
				inputObjs[obj] = true
			}
		}
	}
	recv := receiverObj(info, fd)

	// inputKey canonicalizes an expression that denotes an input slice:
	// the object for plain identifiers, the rendered selector for
	// receiver-rooted fields ("r.buf"). Returns "" for non-inputs.
	var inputKey func(e ast.Expr) string
	inputKey = func(e ast.Expr) string {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil && inputObjs[obj] {
				return x.Name
			}
		case *ast.SelectorExpr:
			t := info.TypeOf(x)
			if t == nil || !isByteSlice(t) || recv == nil {
				return ""
			}
			if root := rootIdent(x); root != nil && info.Uses[root] == recv {
				return types.ExprString(x)
			}
		}
		return ""
	}

	// Aliases: p := buf, p := buf[i:], p := r.buf[off:] make p an input.
	// One forward pass suffices — decoders define before use.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || st.Tok != token.DEFINE || len(st.Lhs) != len(st.Rhs) {
			return true
		}
		for i, lhs := range st.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			src := ast.Unparen(st.Rhs[i])
			if sl, ok := src.(*ast.SliceExpr); ok {
				src = sl.X
			}
			if inputKey(src) == "" {
				continue
			}
			if obj := info.Defs[id]; obj != nil && isByteSlice(obj.Type()) {
				inputObjs[obj] = true
			}
		}
		return true
	})

	// Closure bodies run at some other time; the per-function CFG can
	// neither order their reads nor trust their guards. Both walks below
	// skip anything inside a FuncLit.
	var lits []posRange
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, posRange{fl.Pos(), fl.End()})
		}
		return true
	})
	inLit := func(p token.Pos) bool {
		for _, r := range lits {
			if r.contains(p) {
				return true
			}
		}
		return false
	}

	// Guards: every len(<input>) occurrence and every `range <input>` head,
	// keyed like the reads.
	type guard struct {
		key string
		pos token.Pos
	}
	var guards []guard
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n != nil && inLit(n.Pos()) {
			return true
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if calleeName(x) == "len" && len(x.Args) == 1 {
				if k := inputKey(x.Args[0]); k != "" {
					guards = append(guards, guard{k, x.Pos()})
				}
			}
		case *ast.RangeStmt:
			if k := inputKey(x.X); k != "" {
				guards = append(guards, guard{k, x.X.Pos()})
			}
		}
		return true
	})

	// Reads: index and slice expressions over an input. A read is guarded
	// when a same-key guard shares its CFG node or dominates it.
	var cfg *CFG
	seen := map[token.Pos]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var target ast.Expr
		switch x := n.(type) {
		case *ast.IndexExpr:
			target = x.X
		case *ast.SliceExpr:
			target = x.X
		default:
			return true
		}
		key := inputKey(target)
		if key == "" || seen[n.Pos()] || inLit(n.Pos()) {
			return true
		}
		if cfg == nil {
			cfg = BuildCFG(fd.Body)
		}
		readLoc, ok := cfg.LocOf(n.Pos())
		if !ok {
			return true // statements the CFG does not model (dead code)
		}
		for _, g := range guards {
			if g.key != key {
				continue
			}
			gLoc, ok := cfg.LocOf(g.pos)
			if !ok {
				continue
			}
			if gLoc == readLoc || cfg.NodeDominates(g.pos, n.Pos()) {
				return true
			}
		}
		seen[n.Pos()] = true
		pass.Reportf(n.Pos(), "%s reads %s with no dominating len(%s) check; a short or hostile input panics here instead of erroring",
			fd.Name.Name, types.ExprString(n.(ast.Expr)), key)
		return true
	})
}
