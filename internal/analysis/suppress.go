package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is the comment prefix of a suppression:
//
//	//ringbft:ignore <analyzer> <reason...>
//
// It silences findings of <analyzer> on its own line, the line directly
// below, or — when attached to a func declaration — anywhere in that
// function. The reason is mandatory; the driver reports an ignore without
// one as a finding in its own right, and counts every suppression it
// honours so the ledger stays visible in `make lint` output.
const ignoreDirective = "//ringbft:ignore"

// suppression is one parsed ignore comment.
type suppression struct {
	analyzer string
	reason   string
	file     string
	line     int
	// funcEnd, when non-zero, extends the suppression to every line of the
	// annotated function declaration [line, funcEnd].
	funcEnd int
	used    bool
}

// suppressions indexes every ignore directive of one package.
type suppressions struct {
	fset *token.FileSet
	all  []*suppression
	// malformed collects directives without a reason (or analyzer name);
	// the driver reports these as findings.
	malformed []Finding
}

func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{fset: fset}
	for _, f := range files {
		// Map func-decl start lines to their body end, so a directive in a
		// function's doc comment covers the whole function.
		funcEnd := make(map[int]int)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			start := fset.Position(fd.Pos()).Line
			if fd.Doc != nil {
				start = fset.Position(fd.Doc.Pos()).Line
			}
			end := fset.Position(fd.End()).Line
			for l := start; l <= fset.Position(fd.Pos()).Line; l++ {
				funcEnd[l] = end
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignoreDirective))
				name, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				if name == "" || reason == "" {
					s.malformed = append(s.malformed, Finding{
						Analyzer: "ignore",
						Pos:      pos,
						Message:  "malformed suppression: want //ringbft:ignore <analyzer> <reason>",
					})
					continue
				}
				s.all = append(s.all, &suppression{
					analyzer: name,
					reason:   reason,
					file:     pos.Filename,
					line:     pos.Line,
					funcEnd:  funcEnd[pos.Line],
				})
			}
		}
	}
	return s
}

// match returns the suppression covering a finding of analyzer at pos, or
// nil. A directive covers its own line, the next line, and — on a func
// declaration — the function body.
func (s *suppressions) match(analyzer string, pos token.Position) *suppression {
	for _, sup := range s.all {
		if sup.analyzer != analyzer || sup.file != pos.Filename {
			continue
		}
		if pos.Line == sup.line || pos.Line == sup.line+1 ||
			(sup.funcEnd > 0 && pos.Line >= sup.line && pos.Line <= sup.funcEnd) {
			sup.used = true
			return sup
		}
	}
	return nil
}

// unused returns the directives that silenced nothing. Stale directives
// fail the build: a suppression that outlives its finding either hides a
// fixed bug's history or papers over an analyzer gap, and both deserve a
// commit deleting the line.
func (s *suppressions) unused() []*suppression {
	var out []*suppression
	for _, sup := range s.all {
		if !sup.used {
			out = append(out, sup)
		}
	}
	return out
}
