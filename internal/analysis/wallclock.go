package analysis

import (
	"go/ast"
)

// WallClock flags wall-clock and global-randomness reads inside the
// seed-deterministic packages.
//
// The chaos engine's contract is that Scenario(protocol, fault, seed)
// replays byte-identically (TestSeedDeterminism pins it), and simnet's
// jitter/loss sampling must derive from seeded RNGs for the same reason. A
// single time.Now, time.Since, or global math/rand call inside schedule
// construction silently couples the "deterministic" run to the host's
// clock or the global rand state shared with every other test in the
// process — reruns stop reproducing, and a failure seed printed by the
// matrix no longer replays the failure.
//
// Flagged: time.Now, time.Since, time.Until, time.Sleep, time.After,
// time.AfterFunc, time.Tick, time.NewTimer, time.NewTicker, and every
// package-level math/rand / math/rand/v2 function (rand.Int, rand.Intn,
// rand.Float64, rand.Perm, rand.Shuffle, ...). Seeded generators —
// rand.New(rand.NewSource(seed)) — are the sanctioned replacement and are
// not flagged.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "flags time.Now/Since/Sleep/timers and global math/rand in " +
		"seed-deterministic packages; derive from the schedule clock and seeded RNGs",
	Run: runWallClock,
}

var wallClockTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// randConstructors build seeded generators; everything else at package
// level draws from the global, cross-test-shared source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewChaCha8": true, "NewPCG": true,
}

func runWallClock(pass *Pass) (interface{}, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, resolved := calleePkgFunc(pass.TypesInfo, call)
			if !resolved {
				return true
			}
			switch pkg {
			case "time":
				// Methods on time.Time/time.Duration (t.After(u), t.Sub(u))
				// are pure arithmetic; only the package functions read the
				// clock.
				if wallClockTimeFuncs[name] && isPackageLevelFunc(pass, call) {
					pass.Reportf(call.Pos(), "time.%s reads the wall clock in a seed-deterministic package; thread the schedule clock instead", name)
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[name] && isPackageLevelFunc(pass, call) {
					pass.Reportf(call.Pos(), "global %s.%s draws from process-shared randomness; use a seeded rand.New(rand.NewSource(seed))", pkgBase(pkg), name)
				}
			}
			return true
		})
	}
	return nil, nil
}

// isPackageLevelFunc distinguishes rand.Intn(...) (global source) from
// rng.Intn(...) on a seeded *rand.Rand: methods have a receiver.
func isPackageLevelFunc(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return true // dot-import or alias; resolved pkg already said rand
	}
	// A method call has a selection entry; package functions do not.
	_, isMethod := pass.TypesInfo.Selections[sel]
	return !isMethod
}

func pkgBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
