package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Interprocedural taint summaries. PR 6's verifyfirst stopped at function
// boundaries: any receiver-rooted call carrying message-derived data was an
// adoption, so reply/retransmit helpers (`r.respond(m)`, `r.send(to, out)`)
// — which only *emit* messages and never write replica state — needed
// suppressions at every call site. A summary records what a callee actually
// does with each parameter, so the caller-side analyzer can distinguish
// "pushes my unverified data into state" from "sends a reply".
//
// Summaries are package-local (the loader type-checks one package per
// Pass): calls that resolve to a function declared in the analyzed package
// use its summary; calls into other packages, interface methods, and
// function values stay conservative (treated as adopting). That matches
// how the protocol packages are laid out — each replica's state, handlers,
// and helpers live in one package — and keeps the fixed point small.
//
// A summary carries, per parameter (as bitmask positions):
//
//   - adoptMask: data derived from the parameter reaches a state write — an
//     assignment or append whose target roots at the receiver (or escapes
//     the function), or a conservative call as above. Storing an *intact*
//     types.Message does not count (see stashStore): buffering a message
//     for later dispatch keeps its authenticators, and whoever replays it
//     is analyzed as a handler in its own right.
//   - resultMask: data derived from the parameter flows into a result, so
//     callers propagate taint through the return value.
//
// plus clientRequestOnly: every intra-package call site passes a message
// narrowed to types.MsgClientRequest (by the dispatch switch arm or an
// explicit Type comparison). Client requests carry no authenticator BY
// PROTOCOL DESIGN — clients hold no pairwise MAC keys; safety against
// forged or replayed requests comes from digest-binding the batch and from
// consensus ordering, not from point-to-point authentication (the paper's
// client/replica trust split). verifyfirst therefore exempts such handlers
// wholesale instead of demanding a per-site //ringbft:ignore.

type funcSummary struct {
	decl *ast.FuncDecl
	obj  *types.Func
	// params in declaration order (receiver excluded).
	params []types.Object
	// adoptMask / resultMask: bit i set means params[i] is adopted /
	// flows to a result.
	adoptMask  uint64
	resultMask uint64
	// clientRequestOnly: see package comment.
	clientRequestOnly bool
	// msgParams are the parameter objects of types.Message kind.
	msgParams map[types.Object]bool
}

func (s *funcSummary) paramIndex(obj types.Object) int {
	for i, p := range s.params {
		if p == obj {
			return i
		}
	}
	return -1
}

type pkgSummaries struct {
	pass  *Pass
	byObj map[*types.Func]*funcSummary
}

// summaryFor resolves the callee of call to a summary when it is a
// function or method declared in the analyzed package.
func (ps *pkgSummaries) summaryFor(call *ast.CallExpr) *funcSummary {
	var obj types.Object
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = ps.pass.TypesInfo.Uses[fn]
	case *ast.SelectorExpr:
		obj = ps.pass.TypesInfo.Uses[fn.Sel]
	}
	fobj, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return ps.byObj[fobj]
}

// computeSummaries builds the package's function summaries to a fixed
// point: masks only ever grow, so iterating until nothing changes yields
// the least solution even through recursion.
func computeSummaries(pass *Pass) *pkgSummaries {
	ps := &pkgSummaries{pass: pass, byObj: map[*types.Func]*funcSummary{}}
	var order []*funcSummary
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fobj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			s := &funcSummary{decl: fd, obj: fobj, msgParams: map[types.Object]bool{}}
			for _, field := range fd.Type.Params.List {
				if len(field.Names) == 0 {
					// An unnamed parameter keeps its position (callers
					// index arguments by it) but can never be adopted:
					// the body has no way to reference it.
					s.params = append(s.params, nil)
					continue
				}
				for _, name := range field.Names {
					obj := pass.TypesInfo.Defs[name]
					s.params = append(s.params, obj)
					if obj != nil && isMessageType(obj.Type()) {
						s.msgParams[obj] = true
					}
				}
			}
			ps.byObj[fobj] = s
			order = append(order, s)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, s := range order {
			adopt, result := summarizeFunc(ps, s)
			if adopt&^s.adoptMask != 0 || result&^s.resultMask != 0 {
				s.adoptMask |= adopt
				s.resultMask |= result
				changed = true
			}
		}
	}
	computeClientOnly(ps, order)
	return ps
}

// summarizeFunc runs one taint pass over s's body and returns the adopt
// and result masks observed under the current summaries of its callees.
func summarizeFunc(ps *pkgSummaries, s *funcSummary) (adopt, result uint64) {
	tw := newTaintWalker(ps, s.decl)
	for i, p := range s.params {
		if p != nil {
			tw.taint[p] = 1 << uint(i)
		}
	}
	tw.onAdopt = func(_ token.Pos, mask uint64, _ adoptKind, _ string) { adopt |= mask }
	tw.onResult = func(mask uint64) { result |= mask }
	tw.walk()
	return adopt, result
}

// adoptKind classifies how tainted data reached state, for diagnostics.
type adoptKind int

const (
	adoptAssign adoptKind = iota // written into a state target
	adoptCall                    // passed to a callee that adopts it
	adoptVia                     // state reached through a tainted pointer
)

// taintWalker propagates parameter-derived taint through one function body
// in source order (locals are defined before use in every handler here),
// reporting adoption events and result flows through callbacks. It is
// shared between summary construction and the verifyfirst analyzer, which
// layers CFG dominance on top of the reported sites.
type taintWalker struct {
	ps *pkgSummaries
	fn *ast.FuncDecl
	// taint maps a local/param object to the mask of originating params.
	taint map[types.Object]uint64
	// fresh holds pointer locals addressing allocations made here; writes
	// through them cannot reach pre-existing state.
	fresh map[types.Object]bool
	// onAdopt fires at each site where tainted data reaches state: the
	// position, contributing-parameter mask, kind, and the rendered target.
	onAdopt func(pos token.Pos, mask uint64, kind adoptKind, detail string)
	// onResult fires for each return statement carrying tainted values.
	onResult func(mask uint64)
}

func newTaintWalker(ps *pkgSummaries, fn *ast.FuncDecl) *taintWalker {
	return &taintWalker{
		ps:    ps,
		fn:    fn,
		taint: map[types.Object]uint64{},
		fresh: map[types.Object]bool{},
	}
}

func (t *taintWalker) walk() {
	ast.Inspect(t.fn.Body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch st := n.(type) {
		case *ast.FuncLit:
			return false // a closure body runs at some other time
		case *ast.AssignStmt:
			t.assign(st)
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
				t.callStmt(call)
			}
		case *ast.ReturnStmt:
			if t.onResult != nil {
				mask := uint64(0)
				for _, r := range st.Results {
					mask |= t.exprMask(r)
				}
				if mask != 0 {
					t.onResult(mask)
				}
			}
		}
		return true
	})
}

// exprMask returns the union of taint masks of every identifier inside e.
// A call to an in-package function filters through its resultMask: only
// parameters the callee actually returns propagate.
func (t *taintWalker) exprMask(e ast.Expr) uint64 {
	if e == nil {
		return 0
	}
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if sum := t.ps.summaryFor(call); sum != nil {
			mask := uint64(0)
			for i, arg := range call.Args {
				if i < 64 && sum.resultMask&(1<<uint(i)) != 0 {
					mask |= t.exprMask(arg)
				}
			}
			// The callee's receiver (for methods) and variadic overflow
			// stay coarse: any remaining tainted arg taints the result.
			if len(call.Args) > len(sum.params) {
				for _, arg := range call.Args[len(sum.params):] {
					mask |= t.exprMask(arg)
				}
			}
			return mask
		}
	}
	mask := uint64(0)
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := t.ps.pass.TypesInfo.Uses[id]; obj != nil {
				mask |= t.taint[obj]
			}
		}
		return true
	})
	return mask
}

// isWholeMessage reports whether e is an intact types.Message value (the
// parameter itself or a copy). Whole messages travel with their
// authenticators: relaying them, dispatching them, or stashing them for a
// later replay leaves the eventual adopter with everything it needs to
// verify, and that adopter is analyzed as a handler in its own right.
func (t *taintWalker) isWholeMessage(e ast.Expr) bool {
	tv, ok := t.ps.pass.TypesInfo.Types[ast.Unparen(e)]
	return ok && tv.Type != nil && isMessageType(tv.Type)
}

// stashStore reports whether rhs stores only intact messages: the message
// itself, or an append of messages onto a slice.
func (t *taintWalker) stashStore(rhs ast.Expr) bool {
	if rhs == nil {
		return false
	}
	if t.isWholeMessage(rhs) {
		return true
	}
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && calleeName(call) == "append" && len(call.Args) > 1 {
		for _, arg := range call.Args[1:] {
			if !t.isWholeMessage(arg) {
				return false
			}
		}
		return true
	}
	return false
}

func (t *taintWalker) assign(st *ast.AssignStmt) {
	info := t.ps.pass.TypesInfo
	rhsMask := uint64(0)
	for _, rhs := range st.Rhs {
		rhsMask |= t.exprMask(rhs)
	}
	for i, lhs := range st.Lhs {
		rhs := rhsOf(st, i)
		id, isIdent := ast.Unparen(lhs).(*ast.Ident)
		if isIdent && id.Name == "_" {
			continue // a discarded value reaches nothing
		}
		if st.Tok == token.DEFINE && isIdent {
			if obj := info.Defs[id]; obj != nil {
				if rhsMask != 0 {
					t.taint[obj] |= rhsMask
				}
				if rhs != nil && isFreshAlloc(rhs) {
					t.fresh[obj] = true
				}
			}
			continue
		}
		if isIdent {
			obj := info.Uses[id]
			if funcScopeLocal(info, t.fn, obj) && (!isPointerVar(obj) || t.fresh[obj]) {
				if rhsMask != 0 && obj != nil {
					t.taint[obj] |= rhsMask
				}
				continue
			}
		}
		// Non-local target: receiver field, map cell, global, or a write
		// through a pointer local that aliases caller state. Writes into
		// value-typed function locals (scratch maps, struct copies) and
		// through fresh allocations stay invisible outside the call.
		if root := rootIdent(lhs); root != nil {
			obj := info.Uses[root]
			if obj != nil && funcScopeLocal(info, t.fn, obj) &&
				(!isPointerVar(obj) || t.fresh[obj]) {
				continue
			}
		}
		mask := rhsMask | t.exprTargetMask(lhs)
		if mask == 0 {
			continue
		}
		if t.stashStore(rhs) {
			continue // intact-message stash, not payload adoption
		}
		if t.onAdopt != nil {
			t.onAdopt(st.Pos(), mask, adoptAssign, types.ExprString(lhs))
		}
	}
}

// exprTargetMask is exprMask over an assignment target's index/selector
// path — writing state *at* a message-derived key adopts that key.
func (t *taintWalker) exprTargetMask(lhs ast.Expr) uint64 {
	mask := uint64(0)
	ast.Inspect(lhs, func(n ast.Node) bool {
		if ix, ok := n.(*ast.IndexExpr); ok {
			mask |= t.exprMask(ix.Index)
		}
		return true
	})
	return mask
}

// callStmt handles statement-position calls: state mutation through the
// receiver or a tainted object, refined by the callee's summary when it is
// declared in this package.
func (t *taintWalker) callStmt(call *ast.CallExpr) {
	info := t.ps.pass.TypesInfo
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if hasVerifyName(sel.Sel.Name) {
		return
	}
	root := rootIdent(sel.X)
	if root == nil {
		return
	}
	robj := info.Uses[root]
	if robj == nil {
		return
	}
	if t.fresh[robj] {
		return // mutating a fresh local allocation cannot reach state
	}
	recv := receiverObj(info, t.fn)
	onReceiver := robj == recv || !funcScopeLocal(info, t.fn, robj)
	if !onReceiver && t.taint[robj] == 0 {
		return // a call on an untainted plain local stays local
	}
	if mask := t.taint[robj]; mask != 0 && !onReceiver {
		// Mutating state *reached through* unverified message data (a
		// pointer pulled out of a map by a message-derived key).
		if t.onAdopt != nil {
			t.onAdopt(call.Pos(), mask, adoptVia, types.ExprString(sel.X)+"."+sel.Sel.Name)
		}
		return
	}
	sum := t.ps.summaryFor(call)
	argMask := uint64(0)
	for i, arg := range call.Args {
		if t.isWholeMessage(arg) {
			continue // whole-message relay/dispatch: the adopter re-verifies
		}
		m := t.exprMask(arg)
		if m == 0 {
			continue
		}
		if sum != nil && i < len(sum.params) && i < 64 {
			if sum.adoptMask&(1<<uint(i)) == 0 {
				continue // the callee provably never adopts this parameter
			}
		}
		argMask |= m
	}
	if argMask != 0 && t.onAdopt != nil {
		t.onAdopt(call.Pos(), argMask, adoptCall, types.ExprString(sel.X)+"."+sel.Sel.Name)
	}
}

// computeClientOnly marks functions whose message parameter is provably a
// client request at every intra-package call site. Exported functions and
// functions with no call site stay unexempted: a caller outside the
// package (or a future one) may pass anything.
func computeClientOnly(ps *pkgSummaries, order []*funcSummary) {
	info := ps.pass.TypesInfo
	type siteInfo struct {
		narrowed bool
	}
	sites := map[*types.Func][]siteInfo{}
	for _, file := range ps.pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var obj types.Object
			switch fn := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				obj = info.Uses[fn]
			case *ast.SelectorExpr:
				obj = info.Uses[fn.Sel]
			}
			fobj, ok := obj.(*types.Func)
			if !ok {
				return true
			}
			sum := ps.byObj[fobj]
			if sum == nil || len(sum.msgParams) == 0 {
				return true
			}
			// Find the message argument object being passed.
			var argObj types.Object
			for i, p := range sum.params {
				if p == nil || !sum.msgParams[p] || i >= len(call.Args) {
					continue
				}
				if id, ok := ast.Unparen(call.Args[i]).(*ast.Ident); ok {
					argObj = info.Uses[id]
				}
			}
			sites[fobj] = append(sites[fobj], siteInfo{
				narrowed: argObj != nil && narrowedToClientRequest(info, stack, argObj),
			})
			return true
		})
	}
	for _, s := range order {
		if len(s.msgParams) == 0 || s.obj.Exported() {
			continue
		}
		ss := sites[s.obj]
		if len(ss) == 0 {
			continue
		}
		all := true
		for _, site := range ss {
			if !site.narrowed {
				all = false
				break
			}
		}
		s.clientRequestOnly = all
	}
}

// narrowedToClientRequest reports whether the innermost-to-outermost AST
// path encloses the call site in a branch taken only when obj.Type equals
// types.MsgClientRequest: a `case types.MsgClientRequest:` arm of a switch
// over obj.Type (with no other value in the arm's list), or the then-branch
// of `if obj.Type == types.MsgClientRequest`.
func narrowedToClientRequest(info *types.Info, stack []ast.Node, obj types.Object) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.CaseClause:
			if len(anc.List) != 1 || !isClientRequestConst(info, anc.List[0]) {
				continue
			}
			// The enclosing switch must be over obj.Type.
			for j := i - 1; j >= 0; j-- {
				if sw, ok := stack[j].(*ast.SwitchStmt); ok {
					if isTypeFieldOf(info, sw.Tag, obj) {
						return true
					}
					break
				}
			}
		case *ast.IfStmt:
			// Only the then-branch narrows; make sure the call is inside it.
			if i+1 < len(stack) && stack[i+1] == anc.Else {
				continue
			}
			if be, ok := ast.Unparen(anc.Cond).(*ast.BinaryExpr); ok && be.Op == token.EQL {
				if (isTypeFieldOf(info, be.X, obj) && isClientRequestConst(info, be.Y)) ||
					(isTypeFieldOf(info, be.Y, obj) && isClientRequestConst(info, be.X)) {
					return true
				}
			}
		}
	}
	return false
}

func isClientRequestConst(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	var id *ast.Ident
	if ok {
		id = sel.Sel
	} else if plain, isIdent := ast.Unparen(e).(*ast.Ident); isIdent {
		id = plain
	} else {
		return false
	}
	c, ok := info.Uses[id].(*types.Const)
	return ok && c.Name() == "MsgClientRequest" && c.Pkg() != nil &&
		strings.HasSuffix(c.Pkg().Path(), "internal/types")
}

// isTypeFieldOf reports whether e is obj.Type (the MsgType discriminator
// field of the message object being narrowed).
func isTypeFieldOf(info *types.Info, e ast.Expr, obj types.Object) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Type" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && info.Uses[id] == obj
}
