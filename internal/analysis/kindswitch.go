package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// KindSwitch flags non-exhaustive switches over module-defined enums —
// types.MsgType dispatch switches and WAL record-kind codecs foremost.
//
// This is the class behind PR 7's wal.KindEvidence wiring: adding an enum
// constant (a message type, a WAL record kind) compiles cleanly while
// every switch that dispatches on the enum silently drops the new value.
// In a consensus node "silently drops" means a message class that never
// reaches its handler or a WAL record the recovery path skips — both were
// found by hand before this analyzer mechanized them.
//
// The rule: a `switch` whose tag is a named integer type declared in this
// module, with at least two accessible constants, must either carry a
// `default:` arm (declaring it handles the remainder deliberately) or
// cover every accessible constant of the type. Coverage is compared by
// constant VALUE, so aliases and renames count. Unexported sentinels of
// another package (msgTypeCount) are invisible to the switch's package and
// are not required. A switch with any non-constant case expression is
// skipped: the analyzer cannot enumerate what it covers.
var KindSwitch = &Analyzer{
	Name: "kindswitch",
	Doc: "flags switches over module enums (types.MsgType, wal.RecordKind) " +
		"that neither cover every constant nor declare a default arm",
	Run: runKindSwitch,
}

func runKindSwitch(pass *Pass) (interface{}, error) {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			named := moduleEnum(pass, info.TypeOf(sw.Tag))
			if named == nil {
				return true
			}
			consts := enumConstants(pass, named)
			if len(consts) < 2 {
				return true // a one-value "enum" is a flag, not a kind
			}
			covered := map[string]bool{}
			hasDefault := false
			analyzable := true
			for _, s := range sw.Body.List {
				cc, ok := s.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					hasDefault = true
					continue
				}
				for _, e := range cc.List {
					tv, ok := info.Types[e]
					if !ok || tv.Value == nil {
						analyzable = false
						continue
					}
					covered[tv.Value.ExactString()] = true
				}
			}
			if hasDefault || !analyzable {
				return true
			}
			var missing []string
			for _, c := range consts {
				if !covered[c.Val().ExactString()] {
					missing = append(missing, c.Name())
				}
			}
			if len(missing) > 0 {
				pass.Reportf(sw.Pos(), "switch over %s is not exhaustive: missing %s; add the cases or a default arm",
					types.TypeString(named, types.RelativeTo(pass.Pkg)), strings.Join(missing, ", "))
			}
			return true
		})
	}
	return nil, nil
}

// moduleEnum returns t as a named integer type declared in this module (or
// the analyzed package itself, so fixtures can define their own), else nil.
func moduleEnum(pass *Pass, t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil
	}
	if pkg == pass.Pkg {
		return named
	}
	path := pkg.Path()
	if path == "ringbft" || strings.HasPrefix(path, "ringbft/") || strings.HasPrefix(path, "fixture/") {
		return named
	}
	return nil
}

// enumConstants returns the package-scope constants of exactly the named
// type that are accessible from the analyzed package, in value order.
// Unexported sentinels of a foreign package (msgTypeCount) are excluded:
// no switch outside that package could name them.
func enumConstants(pass *Pass, named *types.Named) []*types.Const {
	pkg := named.Obj().Pkg()
	scope := pkg.Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if pkg != pass.Pkg && !c.Exported() {
			continue
		}
		out = append(out, c)
	}
	sort.SliceStable(out, func(i, j int) bool {
		vi, vj := out[i].Val(), out[j].Val()
		if constant.Compare(vi, token.NEQ, vj) {
			return constant.Compare(vi, token.LSS, vj)
		}
		return out[i].Name() < out[j].Name()
	})
	return out
}
