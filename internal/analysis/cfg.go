package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the dataflow substrate PR 6's analyzers lacked: a
// per-function control-flow graph with dominance. The PR 6 analyzers
// approximated "happens before" by source position, which is exactly wrong
// around branches — a Verify call inside one switch arm was treated as
// guarding every later line of the function, and a guarded write textually
// above a later barrier was flagged even when every path to it passes a
// check. The CFG makes both directions precise: A guards B iff the node
// holding A dominates the node holding B.
//
// Granularity: one Block holds a run of straight-line statement/condition
// nodes. Compound statements are decomposed — an if contributes its
// condition expression to the current block and its branches to successor
// blocks; a range loop contributes its subject expression to the loop-head
// block. Function literals are *not* descended into: a closure body runs at
// some other time, so it gets its own CFG (BuildCFG on the FuncLit body)
// when an analyzer cares.
//
// panic(...) and os.Exit terminate their block with no successors, so code
// that can only run when a check passed is not polluted by the phantom
// fall-through path of the failure branch.

// Block is one basic block: Nodes execute in order, then control moves to
// one of Succs. The entry block has Index 0.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block // Blocks[0] is the entry
	// idom[i] is the index of Blocks[i]'s immediate dominator; -1 for the
	// entry block and for blocks unreachable from the entry.
	idom []int
	// reach[i] reports whether Blocks[i] is reachable from the entry.
	reach []bool
}

// loc addresses one node inside a CFG: block index plus position in
// Block.Nodes.
type loc struct {
	block int
	index int
}

type cfgBuilder struct {
	cfg *CFG
	cur *Block
	// breakTargets / continueTargets are stacks of the innermost targets;
	// labels maps a label name to the loop or switch it annotates.
	breakTargets    []*Block
	continueTargets []*Block
	labelBreak      map[string]*Block
	labelContinue   map[string]*Block
	// pendingLabel is the label attached to the statement about to build
	// (consumed by the loop/switch builders).
	pendingLabel string
	labelBlocks  map[string]*Block
	gotos        []struct {
		from  *Block
		label string
	}
}

// BuildCFG constructs the CFG of body. The same body always yields the
// same graph (construction is a deterministic AST walk).
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:           &CFG{},
		labelBreak:    map[string]*Block{},
		labelContinue: map[string]*Block{},
		labelBlocks:   map[string]*Block{},
	}
	b.cur = b.newBlock()
	b.stmtList(body.List)
	for _, g := range b.gotos {
		if tgt, ok := b.labelBlocks[g.label]; ok {
			b.link(g.from, tgt)
		}
	}
	b.cfg.finish()
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// startUnreachable replaces the current block after a terminator (return,
// break, panic): following statements are dead code, parked in a block with
// no predecessors.
func (b *cfgBuilder) startUnreachable() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(st.List)
	case *ast.IfStmt:
		if st.Init != nil {
			b.add(st.Init)
		}
		b.add(st.Cond)
		cond := b.cur
		after := b.newBlock()
		then := b.newBlock()
		b.link(cond, then)
		b.cur = then
		b.stmtList(st.Body.List)
		b.link(b.cur, after)
		if st.Else != nil {
			els := b.newBlock()
			b.link(cond, els)
			b.cur = els
			b.stmt(st.Else)
			b.link(b.cur, after)
		} else {
			b.link(cond, after)
		}
		b.cur = after
	case *ast.ForStmt:
		if st.Init != nil {
			b.add(st.Init)
		}
		head := b.newBlock()
		b.link(b.cur, head)
		b.cur = head
		if st.Cond != nil {
			b.add(st.Cond)
		}
		after := b.newBlock()
		if st.Cond != nil {
			b.link(head, after)
		}
		post := b.newBlock()
		body := b.newBlock()
		b.link(head, body)
		b.pushLoop(label, after, post)
		b.cur = body
		b.stmtList(st.Body.List)
		b.popLoop(label)
		b.link(b.cur, post)
		b.cur = post
		if st.Post != nil {
			b.add(st.Post)
		}
		b.link(post, head)
		b.cur = after
	case *ast.RangeStmt:
		head := b.newBlock()
		b.link(b.cur, head)
		// The head evaluates the range subject and assigns the iteration
		// variables once per element; the loop body does not contain it.
		head.Nodes = append(head.Nodes, st.X)
		if st.Key != nil {
			head.Nodes = append(head.Nodes, st.Key)
		}
		if st.Value != nil {
			head.Nodes = append(head.Nodes, st.Value)
		}
		after := b.newBlock()
		b.link(head, after)
		body := b.newBlock()
		b.link(head, body)
		b.pushLoop(label, after, head)
		b.cur = body
		b.stmtList(st.Body.List)
		b.popLoop(label)
		b.link(b.cur, head)
		b.cur = after
	case *ast.SwitchStmt:
		if st.Init != nil {
			b.add(st.Init)
		}
		if st.Tag != nil {
			b.add(st.Tag)
		}
		b.buildSwitch(label, st.Body.List)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			b.add(st.Init)
		}
		b.add(st.Assign)
		b.buildSwitch(label, st.Body.List)
	case *ast.SelectStmt:
		sel := b.cur
		after := b.newBlock()
		b.breakTargets = append(b.breakTargets, after)
		if label != "" {
			b.labelBreak[label] = after
		}
		for _, c := range st.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock()
			b.link(sel, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.link(b.cur, after)
		}
		b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
		if len(st.Body.List) == 0 {
			b.link(sel, after)
		}
		b.cur = after
	case *ast.ReturnStmt:
		b.add(st)
		b.startUnreachable()
	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK:
			tgt := b.innermost(b.breakTargets)
			if st.Label != nil {
				tgt = b.labelBreak[st.Label.Name]
			}
			b.link(b.cur, tgt)
			b.startUnreachable()
		case token.CONTINUE:
			tgt := b.innermost(b.continueTargets)
			if st.Label != nil {
				tgt = b.labelContinue[st.Label.Name]
			}
			b.link(b.cur, tgt)
			b.startUnreachable()
		case token.GOTO:
			if st.Label != nil {
				b.gotos = append(b.gotos, struct {
					from  *Block
					label string
				}{b.cur, st.Label.Name})
			}
			b.startUnreachable()
		case token.FALLTHROUGH:
			// Handled structurally by buildSwitch; nothing to add here.
		}
	case *ast.LabeledStmt:
		lb := b.newBlock()
		b.link(b.cur, lb)
		b.cur = lb
		b.labelBlocks[st.Label.Name] = lb
		b.pendingLabel = st.Label.Name
		b.stmt(st.Stmt)
	case *ast.ExprStmt:
		b.add(st)
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok && isTerminatorCall(call) {
			b.startUnreachable()
		}
	case *ast.EmptyStmt:
		// nothing
	default:
		// Assignments, declarations, inc/dec, sends, defers, go statements:
		// straight-line nodes in the current block.
		b.add(s)
	}
}

// buildSwitch wires the clause blocks of a switch or type switch. The tag
// (already added to the current block) dominates every clause; clauses run
// alternatively, with fallthrough linking a clause body to the next.
func (b *cfgBuilder) buildSwitch(label string, clauses []ast.Stmt) {
	tag := b.cur
	after := b.newBlock()
	b.breakTargets = append(b.breakTargets, after)
	if label != "" {
		b.labelBreak[label] = after
	}
	hasDefault := false
	// Pre-create clause entry blocks so fallthrough can target the next one.
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
		b.link(tag, blocks[i])
	}
	for i, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		falls := false
		for _, s := range cc.Body {
			if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				falls = true
				continue
			}
			b.stmt(s)
		}
		if falls && i+1 < len(blocks) {
			b.link(b.cur, blocks[i+1])
		} else {
			b.link(b.cur, after)
		}
	}
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	if !hasDefault {
		// No default: the tag can match nothing and fall straight through.
		b.link(tag, after)
	}
	b.cur = after
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) {
	b.breakTargets = append(b.breakTargets, brk)
	b.continueTargets = append(b.continueTargets, cont)
	if label != "" {
		b.labelBreak[label] = brk
		b.labelContinue[label] = cont
	}
}

func (b *cfgBuilder) popLoop(label string) {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
}

func (b *cfgBuilder) innermost(stack []*Block) *Block {
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

// isTerminatorCall reports whether a call never returns: panic and os.Exit
// are the shapes this codebase uses.
func isTerminatorCall(call *ast.CallExpr) bool {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := ast.Unparen(fn.X).(*ast.Ident); ok {
			return pkg.Name == "os" && fn.Sel.Name == "Exit"
		}
	}
	return false
}

// finish computes reachability and the dominator tree (the iterative
// Cooper–Harvey–Kennedy algorithm over a reverse postorder).
func (c *CFG) finish() {
	n := len(c.Blocks)
	c.reach = make([]bool, n)
	c.idom = make([]int, n)
	for i := range c.idom {
		c.idom[i] = -1
	}
	if n == 0 {
		return
	}
	// Reverse postorder over the reachable subgraph.
	post := make([]int, 0, n)
	state := make([]int, n) // 0 unvisited, 1 on stack, 2 done
	var dfs func(int)
	dfs = func(i int) {
		state[i] = 1
		c.reach[i] = true
		for _, s := range c.Blocks[i].Succs {
			if state[s.Index] == 0 {
				dfs(s.Index)
			}
		}
		state[i] = 2
		post = append(post, i)
	}
	dfs(0)
	rpo := make([]int, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		rpo = append(rpo, post[i])
	}
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for order, b := range rpo {
		rpoNum[b] = order
	}

	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = c.idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = c.idom[b]
			}
		}
		return a
	}

	c.idom[0] = 0
	for changed := true; changed; {
		changed = false
		for _, bi := range rpo {
			if bi == 0 {
				continue
			}
			newIdom := -1
			for _, p := range c.Blocks[bi].Preds {
				pi := p.Index
				if !c.reach[pi] || c.idom[pi] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = pi
				} else {
					newIdom = intersect(pi, newIdom)
				}
			}
			if newIdom != -1 && c.idom[bi] != newIdom {
				c.idom[bi] = newIdom
				changed = true
			}
		}
	}
	c.idom[0] = -1
}

// Reachable reports whether blk can execute at all.
func (c *CFG) Reachable(blk *Block) bool {
	return blk != nil && c.reach[blk.Index]
}

// Dominates reports whether a dominates b (reflexively): every path from
// the entry to b passes through a. Unreachable blocks dominate nothing and
// are dominated by nothing.
func (c *CFG) Dominates(a, b *Block) bool {
	if a == nil || b == nil || !c.reach[a.Index] || !c.reach[b.Index] {
		return false
	}
	for i := b.Index; ; i = c.idom[i] {
		if i == a.Index {
			return true
		}
		if i == 0 || c.idom[i] < 0 {
			return false
		}
	}
}

// LocOf finds the innermost CFG node containing pos, returning its
// location. ok is false for positions outside every node (dead code parked
// during construction keeps its nodes, so dead statements still resolve).
func (c *CFG) LocOf(pos token.Pos) (loc, bool) {
	best := loc{-1, -1}
	var bestNode ast.Node
	for _, blk := range c.Blocks {
		for i, n := range blk.Nodes {
			if n.Pos() <= pos && pos < n.End() {
				// Prefer the smallest enclosing node: compound statements
				// never land whole in one node, but a range head holds the
				// subject expression while the body statements hold their
				// own nodes.
				if bestNode == nil || (n.Pos() >= bestNode.Pos() && n.End() <= bestNode.End()) {
					best = loc{blk.Index, i}
					bestNode = n
				}
			}
		}
	}
	return best, bestNode != nil
}

// NodeDominates reports whether the node at position a executes before the
// node at position b on every path: a's node strictly precedes b's in the
// same block, or a's block strictly dominates b's. Positions that resolve
// to the same node do not dominate each other.
func (c *CFG) NodeDominates(a, b token.Pos) bool {
	la, oka := c.LocOf(a)
	lb, okb := c.LocOf(b)
	if !oka || !okb {
		return false
	}
	if !c.reach[la.block] || !c.reach[lb.block] {
		return false
	}
	if la.block == lb.block {
		return la.index < lb.index
	}
	ba, bb := c.Blocks[la.block], c.Blocks[lb.block]
	return ba != bb && c.Dominates(ba, bb) && !c.Dominates(bb, ba)
}
