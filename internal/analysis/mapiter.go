package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapIter flags `range` over a map in determinism-critical packages unless
// the loop body is provably iteration-order-insensitive.
//
// This is the PR 5 bug class that made repropose-on-view-change assign
// sequence numbers in Go map iteration order: two identically seeded
// replicas walked awaitingProposal in different orders, proposed the same
// batches under different sequences, and diverged. Anything a map range
// feeds into protocol decisions — message emission, sequence assignment,
// schedule construction — must iterate over sorted keys instead.
//
// A loop body is accepted as order-insensitive when every statement is one
// of:
//
//   - k2 := <expr> — declarations are loop-local;
//   - writes to variables declared inside the loop body;
//   - x = append(x, ...) — the collect-then-sort idiom, accepted only if a
//     sort call mentioning x follows the loop in the same function;
//   - m2[k] = <expr> or delete(m2, k), keyed by the range key variable —
//     distinct keys make the writes commute;
//   - n += e, n++, n |= e, n &= e, n ^= e, counts[expr]++ — commutative
//     accumulation into locals or map cells;
//   - found = true — an idempotent latch (every iteration writes the same
//     constant);
//   - if x.Less(best) { best = x } — a guarded reduction: a plain write to a
//     function-scoped local whose enclosing if-condition reads that local
//     (min/max/argmin folds commute up to ties);
//   - ent.field = <loop-invariant> through the range *value* variable — each
//     element is re-armed exactly once with data no other iteration changes
//     (the timer re-arm idiom), accepted only if the right-hand side reads
//     nothing the loop body mutates;
//   - if/else and nested loops containing only the above, plus `continue`.
//
// Early exits (break, return) and any other effect — sends, calls for
// effect, writes through pointers — depend on which element the runtime
// happens to visit first, and are flagged.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc: "flags map iteration whose effects depend on Go's randomized order " +
		"in determinism-critical packages; sort the keys first",
	Run: runMapIter,
}

func runMapIter(pass *Pass) (interface{}, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !isMapType(pass.TypesInfo, rs.X) {
					return true
				}
				c := &mapIterCheck{pass: pass, fn: fd, loop: rs}
				c.keyObj = rangeVarObj(pass.TypesInfo, rs.Key)
				c.valObj = rangeVarObj(pass.TypesInfo, rs.Value)
				if bad, why := c.orderSensitive(rs.Body); bad {
					pass.Reportf(rs.Pos(), "iteration over map %s has order-dependent effects (%s); iterate sorted keys instead",
						types.ExprString(rs.X), why)
					return false // one finding per loop, not per nested issue
				}
				return true
			})
		}
	}
	return nil, nil
}

type mapIterCheck struct {
	pass   *Pass
	fn     *ast.FuncDecl
	loop   *ast.RangeStmt
	keyObj types.Object
	valObj types.Object
	// locals are objects declared inside the loop body; writes to them are
	// invisible outside one iteration.
	locals map[types.Object]bool
	// mutated holds every object the loop body writes (assignment or ++/--
	// root), excluding the range variables themselves. A value-rooted write
	// whose RHS reads one of these sees different data depending on which
	// elements ran first.
	mutated map[types.Object]bool
	// conds is the stack of enclosing if-conditions at the current walk
	// position, for recognizing guarded reductions.
	conds []ast.Expr
}

func rangeVarObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// orderSensitive walks stmts and returns (true, why) at the first construct
// whose effect depends on iteration order.
func (c *mapIterCheck) orderSensitive(body *ast.BlockStmt) (bool, string) {
	if c.locals == nil {
		c.locals = make(map[types.Object]bool)
	}
	c.collectMutated(body)
	return c.stmts(body.List)
}

// collectMutated pre-scans the loop body for every object written by an
// assignment or ++/--; the range variables themselves are excluded (a write
// through the value pointer mutates the element, and element-derived reads
// within the same iteration are fine).
func (c *mapIterCheck) collectMutated(body *ast.BlockStmt) {
	c.mutated = make(map[types.Object]bool)
	note := func(e ast.Expr) {
		root := rootIdent(e)
		if root == nil {
			return
		}
		obj := c.pass.TypesInfo.Uses[root]
		if obj == nil || obj == c.keyObj || obj == c.valObj {
			return
		}
		c.mutated[obj] = true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok != token.DEFINE {
				for _, lhs := range st.Lhs {
					note(lhs)
				}
			}
		case *ast.IncDecStmt:
			note(st.X)
		}
		return true
	})
}

// mentionsMutated reports whether e reads any object the loop body writes.
func (c *mapIterCheck) mentionsMutated(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.mutated[c.pass.TypesInfo.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// condMentions reports whether any enclosing if-condition reads obj — the
// guarded-reduction signature (`if x.Before(oldest) { oldest = x }`).
func (c *mapIterCheck) condMentions(obj types.Object) bool {
	if obj == nil {
		return false
	}
	for _, cond := range c.conds {
		found := false
		ast.Inspect(cond, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == obj {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func (c *mapIterCheck) stmts(list []ast.Stmt) (bool, string) {
	for _, s := range list {
		if bad, why := c.stmt(s); bad {
			return true, why
		}
	}
	return false, ""
}

func (c *mapIterCheck) stmt(s ast.Stmt) (bool, string) {
	switch st := s.(type) {
	case *ast.AssignStmt:
		return c.assign(st)
	case *ast.IncDecStmt:
		if c.localOrCommutativeTarget(st.X) {
			return false, ""
		}
		return true, "increments non-local state per element"
	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						c.locals[c.pass.TypesInfo.Defs[name]] = true
					}
				}
			}
			return false, ""
		}
		return false, ""
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
			if calleeName(call) == "delete" && len(call.Args) == 2 && c.isRangeKey(call.Args[1]) {
				return false, "" // delete keyed by the range key commutes
			}
		}
		return true, "calls for effect inside the loop"
	case *ast.IfStmt:
		if st.Init != nil {
			if bad, why := c.stmt(st.Init); bad {
				return true, why
			}
		}
		c.conds = append(c.conds, st.Cond)
		defer func() { c.conds = c.conds[:len(c.conds)-1] }()
		if bad, why := c.stmts(st.Body.List); bad {
			return true, why
		}
		if st.Else != nil {
			switch e := st.Else.(type) {
			case *ast.BlockStmt:
				return c.stmts(e.List)
			case *ast.IfStmt:
				return c.stmt(e)
			}
		}
		return false, ""
	case *ast.BlockStmt:
		return c.stmts(st.List)
	case *ast.RangeStmt, *ast.ForStmt:
		// A nested loop is order-insensitive iff its body is; its own
		// iteration variables are loop-local.
		var body *ast.BlockStmt
		switch l := st.(type) {
		case *ast.RangeStmt:
			body = l.Body
			for _, v := range []ast.Expr{l.Key, l.Value} {
				if id, ok := v.(*ast.Ident); ok {
					c.locals[c.pass.TypesInfo.Defs[id]] = true
				}
			}
		case *ast.ForStmt:
			body = l.Body
			if l.Init != nil {
				if bad, why := c.stmt(l.Init); bad {
					return true, why
				}
			}
		}
		return c.stmts(body.List)
	case *ast.BranchStmt:
		if st.Tok == token.CONTINUE {
			return false, ""
		}
		return true, "exits the loop early (picks an arbitrary element)"
	case *ast.ReturnStmt:
		return true, "returns from inside the loop (picks an arbitrary element)"
	case *ast.EmptyStmt:
		return false, ""
	default:
		// sends, go, defer, select, switch, labeled — all either block, run
		// code per element, or branch on element identity.
		return true, "statement with per-element effects"
	}
}

func (c *mapIterCheck) assign(st *ast.AssignStmt) (bool, string) {
	if st.Tok == token.DEFINE {
		for _, lhs := range st.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				c.locals[c.pass.TypesInfo.Defs[id]] = true
			}
		}
		// RHS of a define still runs per element; reject calls with likely
		// effects? Reads are fine, and effectful RHS surfaces again when
		// the value escapes through a flagged statement. Accept.
		return false, ""
	}
	switch st.Tok {
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative accumulation: order cannot matter for the final value.
		for _, lhs := range st.Lhs {
			if !c.localOrCommutativeTarget(lhs) {
				return true, "accumulates into non-local state through a pointer"
			}
		}
		return false, ""
	case token.ASSIGN:
		for i, lhs := range st.Lhs {
			if c.allowedPlainTarget(lhs, rhsOf(st, i)) {
				continue
			}
			return true, "assigns per-element state in iteration order"
		}
		return false, ""
	default:
		return true, "non-commutative compound assignment"
	}
}

func rhsOf(st *ast.AssignStmt, i int) ast.Expr {
	if len(st.Rhs) == len(st.Lhs) {
		return st.Rhs[i]
	}
	if len(st.Rhs) == 1 {
		return st.Rhs[0]
	}
	return nil
}

// allowedPlainTarget accepts the order-insensitive plain-assignment shapes:
// loop-locals, constant latches and guarded reductions into function-scoped
// locals, map writes keyed by the range key, element re-arms through the
// range value variable, and the collect-append idiom (provided the slice is
// sorted after the loop).
func (c *mapIterCheck) allowedPlainTarget(lhs, rhs ast.Expr) bool {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if id.Name == "_" {
			return true
		}
		obj := c.pass.TypesInfo.Uses[id]
		if c.locals[obj] {
			return true
		}
		// x = append(x, ...): the collect idiom. Only sound if x is sorted
		// before use; demand a sort mentioning x later in this function.
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && calleeName(call) == "append" {
			if c.sortedAfterLoop(obj) {
				return true
			}
		}
		if funcScopeLocal(c.pass.TypesInfo, c.fn, obj) {
			// found = true: every iteration writes the same constant.
			if isConstExpr(c.pass.TypesInfo, rhs) {
				return true
			}
			// if ent.t.Before(oldest) { oldest = ent.t }: a reduction whose
			// guard reads the accumulator commutes up to ties.
			if c.condMentions(obj) {
				return true
			}
		}
		return false
	}
	switch tgt := ast.Unparen(lhs).(type) {
	case *ast.IndexExpr:
		if c.isRangeKey(tgt.Index) && isMapType(c.pass.TypesInfo, tgt.X) {
			return true // map writes under distinct keys commute
		}
	case *ast.SelectorExpr:
		// ent.field = <loop-invariant> through the range value variable:
		// each element written once, with data no other iteration changes.
		root := rootIdent(tgt)
		if root != nil && c.valObj != nil && c.pass.TypesInfo.Uses[root] == c.valObj &&
			!c.mentionsMutated(rhs) {
			return true
		}
	}
	return false
}

// localOrCommutativeTarget accepts compound-assignment/inc-dec targets:
// loop-locals, plain function-scoped variables, and map cells keyed by the
// range key. Pointer dereferences and foreign fields stay flagged — the
// accumulation itself commutes, but racing it through shared state is what
// the locksend/race layers own, and a field write here usually feeds
// protocol state.
func (c *mapIterCheck) localOrCommutativeTarget(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[x]
		return c.locals[obj] || funcScopeLocal(c.pass.TypesInfo, c.fn, obj)
	case *ast.IndexExpr:
		// counts[v.Shard]++ — commutative accumulation into any map cell
		// commutes even under colliding keys, provided the key itself is not
		// an order-dependent accumulator.
		return isMapType(c.pass.TypesInfo, x.X) && !c.mentionsMutated(x.Index)
	case *ast.SelectorExpr:
		// field of a function-scoped *value* (not pointer) struct variable
		root := rootIdent(x)
		if root == nil {
			return false
		}
		obj := c.pass.TypesInfo.Uses[root]
		if obj == nil || !funcScopeLocal(c.pass.TypesInfo, c.fn, obj) {
			return false
		}
		if _, isPtr := obj.Type().Underlying().(*types.Pointer); isPtr {
			return false
		}
		return true
	}
	return false
}

func (c *mapIterCheck) isRangeKey(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || c.keyObj == nil {
		return false
	}
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Defs[id]
	}
	return obj == c.keyObj
}

// sortedAfterLoop reports whether a call whose name contains "Sort"/"sort"
// and mentions obj appears after the range loop in the enclosing function —
// the second half of the collect-then-sort idiom.
func (c *mapIterCheck) sortedAfterLoop(obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() <= c.loop.End() {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// sort.Slice/sort.Strings/slices.Sort*, or any helper whose name
		// says it sorts (sortedAwaiting, digestSort, ...).
		isSort := containsSort(calleeName(call))
		if pkg, _, ok := calleePkgFunc(c.pass.TypesInfo, call); ok && (pkg == "sort" || pkg == "slices") {
			isSort = true
		}
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			mentioned := false
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == obj {
					mentioned = true
				}
				return !mentioned
			})
			if mentioned {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func containsSort(name string) bool {
	for i := 0; i+4 <= len(name); i++ {
		s := name[i : i+4]
		if s == "Sort" || s == "sort" {
			return true
		}
	}
	return false
}
