package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapIter flags `range` over a map in determinism-critical packages unless
// the loop body is provably iteration-order-insensitive.
//
// This is the PR 5 bug class that made repropose-on-view-change assign
// sequence numbers in Go map iteration order: two identically seeded
// replicas walked awaitingProposal in different orders, proposed the same
// batches under different sequences, and diverged. Anything a map range
// feeds into protocol decisions — message emission, sequence assignment,
// schedule construction — must iterate over sorted keys instead.
//
// A loop body is accepted as order-insensitive when every statement is one
// of:
//
//   - k2 := <expr> — declarations are loop-local;
//   - writes to variables declared inside the loop body;
//   - x = append(x, ...) — the collect-then-sort idiom, accepted only if a
//     sort call mentioning x DOMINATES every later use of x on the
//     function's control-flow graph: a sort that merely appears below the
//     loop in the file, on a branch some use can bypass, does not count;
//   - m2[k] = <expr> or delete(m2, k), keyed by the range key variable —
//     distinct keys make the writes commute;
//   - n += e, n++, n |= e, n &= e, n ^= e, counts[expr]++ — commutative
//     accumulation into locals or map cells;
//   - found = true — an idempotent latch (every iteration writes the same
//     constant);
//   - if x.Less(best) { best = x } — a guarded reduction: a plain write to a
//     function-scoped local whose enclosing if-condition reads that local
//     (min/max/argmin folds commute up to ties);
//   - ent.field = <loop-invariant> through the range *value* variable — each
//     element is re-armed exactly once with data no other iteration changes
//     (the timer re-arm idiom), accepted only if the right-hand side reads
//     nothing the loop body mutates;
//   - if/else and nested loops containing only the above, plus `continue`.
//
// Early exits (break, return) and any other effect — sends, calls for
// effect, writes through pointers — depend on which element the runtime
// happens to visit first, and are flagged. The one exception is the pure
// existence scan: a body whose only effects are identical constant latches
// and identical constant returns (`if pred(v) { found = true; break }`)
// reaches the same state no matter which matching element it sees first,
// so its break/return is order-insensitive.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc: "flags map iteration whose effects depend on Go's randomized order " +
		"in determinism-critical packages; sort the keys first",
	Run: runMapIter,
}

func runMapIter(pass *Pass) (interface{}, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var cfg *CFG // shared by every map range in this function
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !isMapType(pass.TypesInfo, rs.X) {
					return true
				}
				if cfg == nil {
					cfg = BuildCFG(fd.Body)
				}
				c := &mapIterCheck{pass: pass, fn: fd, loop: rs, cfg: cfg}
				c.keyObj = rangeVarObj(pass.TypesInfo, rs.Key)
				c.valObj = rangeVarObj(pass.TypesInfo, rs.Value)
				if bad, why := c.orderSensitive(rs.Body); bad {
					pass.Reportf(rs.Pos(), "iteration over map %s has order-dependent effects (%s); iterate sorted keys instead",
						types.ExprString(rs.X), why)
					return false // one finding per loop, not per nested issue
				}
				return true
			})
		}
	}
	return nil, nil
}

type mapIterCheck struct {
	pass   *Pass
	fn     *ast.FuncDecl
	loop   *ast.RangeStmt
	cfg    *CFG
	keyObj types.Object
	valObj types.Object
	// scan is true when the body is a pure existence scan, making break
	// and return order-insensitive.
	scan bool
	// locals are objects declared inside the loop body; writes to them are
	// invisible outside one iteration.
	locals map[types.Object]bool
	// mutated holds every object the loop body writes (assignment or ++/--
	// root), excluding the range variables themselves. A value-rooted write
	// whose RHS reads one of these sees different data depending on which
	// elements ran first.
	mutated map[types.Object]bool
	// conds is the stack of enclosing if-conditions at the current walk
	// position, for recognizing guarded reductions.
	conds []ast.Expr
}

func rangeVarObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// orderSensitive walks stmts and returns (true, why) at the first construct
// whose effect depends on iteration order.
func (c *mapIterCheck) orderSensitive(body *ast.BlockStmt) (bool, string) {
	if c.locals == nil {
		c.locals = make(map[types.Object]bool)
	}
	c.collectMutated(body)
	c.scan = c.existenceScan(body)
	return c.stmts(body.List)
}

// collectMutated pre-scans the loop body for every object written by an
// assignment or ++/--; the range variables themselves are excluded (a write
// through the value pointer mutates the element, and element-derived reads
// within the same iteration are fine).
func (c *mapIterCheck) collectMutated(body *ast.BlockStmt) {
	c.mutated = make(map[types.Object]bool)
	note := func(e ast.Expr) {
		root := rootIdent(e)
		if root == nil {
			return
		}
		obj := c.pass.TypesInfo.Uses[root]
		if obj == nil || obj == c.keyObj || obj == c.valObj {
			return
		}
		c.mutated[obj] = true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok != token.DEFINE {
				for _, lhs := range st.Lhs {
					note(lhs)
				}
			}
		case *ast.IncDecStmt:
			note(st.X)
		}
		return true
	})
}

// mentionsMutated reports whether e reads any object the loop body writes.
func (c *mapIterCheck) mentionsMutated(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.mutated[c.pass.TypesInfo.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// condMentions reports whether any enclosing if-condition reads obj — the
// guarded-reduction signature (`if x.Before(oldest) { oldest = x }`).
func (c *mapIterCheck) condMentions(obj types.Object) bool {
	if obj == nil {
		return false
	}
	for _, cond := range c.conds {
		found := false
		ast.Inspect(cond, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == obj {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func (c *mapIterCheck) stmts(list []ast.Stmt) (bool, string) {
	for _, s := range list {
		if bad, why := c.stmt(s); bad {
			return true, why
		}
	}
	return false, ""
}

func (c *mapIterCheck) stmt(s ast.Stmt) (bool, string) {
	switch st := s.(type) {
	case *ast.AssignStmt:
		return c.assign(st)
	case *ast.IncDecStmt:
		if c.localOrCommutativeTarget(st.X) {
			return false, ""
		}
		return true, "increments non-local state per element"
	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						c.locals[c.pass.TypesInfo.Defs[name]] = true
					}
				}
			}
			return false, ""
		}
		return false, ""
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
			if calleeName(call) == "delete" && len(call.Args) == 2 && c.isRangeKey(call.Args[1]) {
				return false, "" // delete keyed by the range key commutes
			}
		}
		return true, "calls for effect inside the loop"
	case *ast.IfStmt:
		if st.Init != nil {
			if bad, why := c.stmt(st.Init); bad {
				return true, why
			}
		}
		c.conds = append(c.conds, st.Cond)
		defer func() { c.conds = c.conds[:len(c.conds)-1] }()
		if bad, why := c.stmts(st.Body.List); bad {
			return true, why
		}
		if st.Else != nil {
			switch e := st.Else.(type) {
			case *ast.BlockStmt:
				return c.stmts(e.List)
			case *ast.IfStmt:
				return c.stmt(e)
			}
		}
		return false, ""
	case *ast.BlockStmt:
		return c.stmts(st.List)
	case *ast.RangeStmt, *ast.ForStmt:
		// A nested loop is order-insensitive iff its body is; its own
		// iteration variables are loop-local.
		var body *ast.BlockStmt
		switch l := st.(type) {
		case *ast.RangeStmt:
			body = l.Body
			for _, v := range []ast.Expr{l.Key, l.Value} {
				if id, ok := v.(*ast.Ident); ok {
					c.locals[c.pass.TypesInfo.Defs[id]] = true
				}
			}
		case *ast.ForStmt:
			body = l.Body
			if l.Init != nil {
				if bad, why := c.stmt(l.Init); bad {
					return true, why
				}
			}
		}
		return c.stmts(body.List)
	case *ast.BranchStmt:
		if st.Tok == token.CONTINUE {
			return false, ""
		}
		if st.Tok == token.BREAK && st.Label == nil && c.scan {
			return false, "" // existence scan: any matching element will do
		}
		return true, "exits the loop early (picks an arbitrary element)"
	case *ast.ReturnStmt:
		if c.scan {
			return false, "" // existence scan: identical const returns commute
		}
		return true, "returns from inside the loop (picks an arbitrary element)"
	case *ast.EmptyStmt:
		return false, ""
	default:
		// sends, go, defer, select, switch, labeled — all either block, run
		// code per element, or branch on element identity.
		return true, "statement with per-element effects"
	}
}

func (c *mapIterCheck) assign(st *ast.AssignStmt) (bool, string) {
	if st.Tok == token.DEFINE {
		for _, lhs := range st.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				c.locals[c.pass.TypesInfo.Defs[id]] = true
			}
		}
		// RHS of a define still runs per element; reject calls with likely
		// effects? Reads are fine, and effectful RHS surfaces again when
		// the value escapes through a flagged statement. Accept.
		return false, ""
	}
	switch st.Tok {
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative accumulation: order cannot matter for the final value.
		for _, lhs := range st.Lhs {
			if !c.localOrCommutativeTarget(lhs) {
				return true, "accumulates into non-local state through a pointer"
			}
		}
		return false, ""
	case token.ASSIGN:
		for i, lhs := range st.Lhs {
			if c.allowedPlainTarget(lhs, rhsOf(st, i)) {
				continue
			}
			return true, "assigns per-element state in iteration order"
		}
		return false, ""
	default:
		return true, "non-commutative compound assignment"
	}
}

func rhsOf(st *ast.AssignStmt, i int) ast.Expr {
	if len(st.Rhs) == len(st.Lhs) {
		return st.Rhs[i]
	}
	if len(st.Rhs) == 1 {
		return st.Rhs[0]
	}
	return nil
}

// allowedPlainTarget accepts the order-insensitive plain-assignment shapes:
// loop-locals, constant latches and guarded reductions into function-scoped
// locals, map writes keyed by the range key, element re-arms through the
// range value variable, and the collect-append idiom (provided the slice is
// sorted after the loop).
func (c *mapIterCheck) allowedPlainTarget(lhs, rhs ast.Expr) bool {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if id.Name == "_" {
			return true
		}
		obj := c.pass.TypesInfo.Uses[id]
		if c.locals[obj] {
			return true
		}
		// x = append(x, ...): the collect idiom. Only sound if a sort of x
		// executes before every use; demand a sort call mentioning x that
		// dominates each post-loop use on the CFG.
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && calleeName(call) == "append" {
			if c.sortedBeforeUse(obj) {
				return true
			}
		}
		if funcScopeLocal(c.pass.TypesInfo, c.fn, obj) {
			// found = true: every iteration writes the same constant.
			if isConstExpr(c.pass.TypesInfo, rhs) {
				return true
			}
			// if ent.t.Before(oldest) { oldest = ent.t }: a reduction whose
			// guard reads the accumulator commutes up to ties.
			if c.condMentions(obj) {
				return true
			}
		}
		return false
	}
	switch tgt := ast.Unparen(lhs).(type) {
	case *ast.IndexExpr:
		if c.isRangeKey(tgt.Index) && isMapType(c.pass.TypesInfo, tgt.X) {
			return true // map writes under distinct keys commute
		}
	case *ast.SelectorExpr:
		// ent.field = <loop-invariant> through the range value variable:
		// each element written once, with data no other iteration changes.
		root := rootIdent(tgt)
		if root != nil && c.valObj != nil && c.pass.TypesInfo.Uses[root] == c.valObj &&
			!c.mentionsMutated(rhs) {
			return true
		}
	}
	return false
}

// localOrCommutativeTarget accepts compound-assignment/inc-dec targets:
// loop-locals, plain function-scoped variables, and map cells keyed by the
// range key. Pointer dereferences and foreign fields stay flagged — the
// accumulation itself commutes, but racing it through shared state is what
// the locksend/race layers own, and a field write here usually feeds
// protocol state.
func (c *mapIterCheck) localOrCommutativeTarget(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[x]
		return c.locals[obj] || funcScopeLocal(c.pass.TypesInfo, c.fn, obj)
	case *ast.IndexExpr:
		// counts[v.Shard]++ — commutative accumulation into any map cell
		// commutes even under colliding keys, provided the key itself is not
		// an order-dependent accumulator.
		return isMapType(c.pass.TypesInfo, x.X) && !c.mentionsMutated(x.Index)
	case *ast.SelectorExpr:
		// field of a function-scoped *value* (not pointer) struct variable
		root := rootIdent(x)
		if root == nil {
			return false
		}
		obj := c.pass.TypesInfo.Uses[root]
		if obj == nil || !funcScopeLocal(c.pass.TypesInfo, c.fn, obj) {
			return false
		}
		if _, isPtr := obj.Type().Underlying().(*types.Pointer); isPtr {
			return false
		}
		return true
	}
	return false
}

func (c *mapIterCheck) isRangeKey(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || c.keyObj == nil {
		return false
	}
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Defs[id]
	}
	return obj == c.keyObj
}

// sortedBeforeUse is the second half of the collect-then-sort idiom,
// upgraded from PR 6's "a sort appears later in the file" to real control
// flow: some sort call mentioning obj must DOMINATE every use of obj after
// the loop, so no path reads the slice in collection (map) order. A
// function that collects and never uses the slice afterwards passes
// trivially; a sort on one branch with a use on another does not.
func (c *mapIterCheck) sortedBeforeUse(obj types.Object) bool {
	if obj == nil {
		return false
	}
	info := c.pass.TypesInfo
	type span struct{ pos, end token.Pos }
	var sorts []span
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// sort.Slice/sort.Strings/slices.Sort*, or any helper whose name
		// says it sorts (sortedAwaiting, digestSort, ...).
		isSort := containsSort(calleeName(call))
		if pkg, _, ok := calleePkgFunc(info, call); ok && (pkg == "sort" || pkg == "slices") {
			isSort = true
		}
		if !isSort || !mentionsObj(info, call, obj) {
			return true
		}
		sorts = append(sorts, span{call.Pos(), call.End()})
		return true
	})
	sorted := true
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		if !sorted {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != obj {
			return true
		}
		if id.Pos() <= c.loop.End() {
			return true // pre-loop reads see the pre-collection slice
		}
		for _, s := range sorts {
			if id.Pos() >= s.pos && id.Pos() < s.end {
				return true // the sort call itself (args, closure body)
			}
		}
		dominated := false
		for _, s := range sorts {
			if c.cfg.NodeDominates(s.pos, id.Pos()) {
				dominated = true
				break
			}
		}
		if !dominated {
			// A use inside a closure has no CFG node; fall back to source
			// order between the sort and the closure text.
			if _, inCFG := c.cfg.LocOf(id.Pos()); !inCFG {
				for _, s := range sorts {
					if s.end <= id.Pos() {
						dominated = true
						break
					}
				}
			}
		}
		if !dominated {
			sorted = false
		}
		return true
	})
	return sorted
}

// mentionsObj reports whether any argument of call references obj.
func mentionsObj(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	mentioned := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(a ast.Node) bool {
			if id, ok := a.(*ast.Ident); ok && info.Uses[id] == obj {
				mentioned = true
			}
			return !mentioned
		})
		if mentioned {
			return true
		}
	}
	return false
}

// existenceScan reports whether the loop body's only effects are identical
// constant latches on function-scoped locals and identical constant
// returns: `for _, v := range m { if pred(v) { found = true; break } }`.
// Such a body reaches the same state no matter which matching element the
// runtime visits first, so early exit is order-insensitive. Any non-const
// write, differing constants, call for effect, or nested loop disqualifies.
func (c *mapIterCheck) existenceScan(body *ast.BlockStmt) bool {
	info := c.pass.TypesInfo
	constWrites := map[types.Object]string{}
	retText := ""
	sawReturn := false
	ok := true
	var walkStmts func([]ast.Stmt)
	var check func(ast.Stmt)
	check = func(s ast.Stmt) {
		if !ok {
			return
		}
		switch st := s.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return // loop-local, reads only
			}
			if st.Tok != token.ASSIGN {
				ok = false
				return
			}
			for i, lhs := range st.Lhs {
				id, isID := ast.Unparen(lhs).(*ast.Ident)
				rhs := rhsOf(st, i)
				if !isID || rhs == nil || !isConstExpr(info, rhs) {
					ok = false
					return
				}
				if id.Name == "_" {
					continue
				}
				obj := info.Uses[id]
				if !c.locals[obj] && !funcScopeLocal(info, c.fn, obj) {
					ok = false
					return
				}
				txt := types.ExprString(rhs)
				if prev, seen := constWrites[obj]; seen && prev != txt {
					ok = false
					return
				}
				constWrites[obj] = txt
			}
		case *ast.IfStmt:
			if st.Init != nil {
				check(st.Init)
			}
			walkStmts(st.Body.List)
			switch e := st.Else.(type) {
			case *ast.BlockStmt:
				walkStmts(e.List)
			case *ast.IfStmt:
				check(e)
			}
		case *ast.BlockStmt:
			walkStmts(st.List)
		case *ast.BranchStmt:
			if st.Label != nil || (st.Tok != token.BREAK && st.Tok != token.CONTINUE) {
				ok = false
			}
		case *ast.ReturnStmt:
			if len(st.Results) == 0 {
				ok = false // bare return: named results may differ per path
				return
			}
			var parts []string
			for _, r := range st.Results {
				if !isConstExpr(info, r) {
					ok = false
					return
				}
				parts = append(parts, types.ExprString(r))
			}
			txt := strings.Join(parts, ",")
			if sawReturn && retText != txt {
				ok = false
				return
			}
			sawReturn = true
			retText = txt
		case *ast.EmptyStmt:
		default:
			ok = false
		}
	}
	walkStmts = func(list []ast.Stmt) {
		for _, s := range list {
			check(s)
		}
	}
	walkStmts(body.List)
	return ok
}

func containsSort(name string) bool {
	for i := 0; i+4 <= len(name); i++ {
		s := name[i : i+4]
		if s == "Sort" || s == "sort" {
			return true
		}
	}
	return false
}
