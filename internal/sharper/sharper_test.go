package sharper

import (
	"testing"
	"time"

	"ringbft/internal/crypto"
	"ringbft/internal/types"
)

type cluster struct {
	t        *testing.T
	cfg      types.Config
	replicas map[types.NodeID]*Replica
	queue    []routed
	drop     func(to types.NodeID, m *types.Message) bool
	client   map[types.NodeID][]*types.Message
	now      time.Time
}

type routed struct {
	to types.NodeID
	m  *types.Message
}

func newCluster(t *testing.T, z, n int) *cluster {
	t.Helper()
	cfg := types.DefaultConfig(z, n)
	c := &cluster{
		t: t, cfg: cfg, now: time.Unix(0, 0),
		replicas: make(map[types.NodeID]*Replica),
		client:   make(map[types.NodeID][]*types.Message),
	}
	kg := crypto.NewKeygen(13)
	peers := make([][]types.NodeID, z)
	for s := 0; s < z; s++ {
		peers[s] = make([]types.NodeID, n)
		for i := 0; i < n; i++ {
			peers[s][i] = types.ReplicaNode(types.ShardID(s), i)
			kg.Register(peers[s][i])
		}
	}
	for s := 0; s < z; s++ {
		for i := 0; i < n; i++ {
			id := peers[s][i]
			ring, _ := kg.Ring(id)
			r := New(Options{
				Config: cfg, Shard: types.ShardID(s), Self: id, Peers: peers[s],
				Auth: ring,
				Send: func(to types.NodeID, m *types.Message) {
					c.queue = append(c.queue, routed{to, m})
				},
				Clock: func() time.Time { return c.now },
			})
			r.Preload(64)
			c.replicas[id] = r
		}
	}
	return c
}

func (c *cluster) pump() {
	for guard := 0; len(c.queue) > 0; guard++ {
		if guard > 100000 {
			c.t.Fatal("pump did not quiesce")
		}
		q := c.queue
		c.queue = nil
		for _, r := range q {
			if c.drop != nil && c.drop(r.to, r.m) {
				continue
			}
			if r.to.Kind == types.KindClient {
				c.client[r.to] = append(c.client[r.to], r.m)
				continue
			}
			if rep, ok := c.replicas[r.to]; ok {
				rep.HandleMessage(r.m)
			}
		}
	}
}

func (c *cluster) responses(client types.ClientID, d types.Digest) int {
	n := 0
	for _, m := range c.client[types.ClientNode(client)] {
		if m.Type == types.MsgResponse && m.Digest == d {
			n++
		}
	}
	return n
}

func mkBatch(client types.ClientID, z int, shards []types.ShardID, keyIdx uint64) *types.Batch {
	var tx types.Txn
	tx.ID = types.TxnID{Client: client, Seq: 1}
	tx.Delta = 3
	for _, s := range shards {
		k := types.Key(uint64(s) + keyIdx*uint64(z))
		tx.Reads = append(tx.Reads, k)
		tx.Writes = append(tx.Writes, k)
	}
	return &types.Batch{Txns: []types.Txn{tx}, Involved: shards}
}

func (c *cluster) submit(client types.ClientID, b *types.Batch) {
	c.queue = append(c.queue, routed{types.ReplicaNode(b.Initiator(), 0), &types.Message{
		Type: types.MsgClientRequest, From: types.ClientNode(client), Batch: b, Digest: b.Digest(),
	}})
	c.pump()
}

func TestSharperSingleShard(t *testing.T) {
	c := newCluster(t, 2, 4)
	b := mkBatch(1, 2, []types.ShardID{0}, 1)
	c.submit(1, b)
	if got := c.responses(1, b.Digest()); got < c.cfg.F()+1 {
		t.Fatalf("got %d responses, want >= %d", got, c.cfg.F()+1)
	}
}

// TestSharperCrossShardGlobalRounds: a cst replicates locally at every
// involved shard, runs the two global all-to-all rounds, and executes.
func TestSharperCrossShardGlobalRounds(t *testing.T) {
	c := newCluster(t, 3, 4)
	b := mkBatch(1, 3, []types.ShardID{0, 1, 2}, 2)
	c.submit(1, b)
	if got := c.responses(1, b.Digest()); got < c.cfg.F()+1 {
		t.Fatalf("got %d responses, want >= %d", got, c.cfg.F()+1)
	}
	for id, r := range c.replicas {
		if got := r.Chain().Height(); got != 1 {
			t.Fatalf("replica %v height %d, want 1", id, got)
		}
	}
}

// TestSharperGatingBlocksExecution: if the cross-shard commit round cannot
// complete (votes from shard 1 suppressed), no replica executes the cst —
// the local pipeline stalls exactly where the paper's analysis places
// Sharper's WAN cost.
func TestSharperGatingBlocksExecution(t *testing.T) {
	c := newCluster(t, 2, 4)
	c.drop = func(to types.NodeID, m *types.Message) bool {
		return (m.Type == types.MsgSharperPrepare || m.Type == types.MsgSharperCommit) &&
			m.From.Shard == 1 && to.Shard == 0
	}
	b := mkBatch(1, 2, []types.ShardID{0, 1}, 3)
	c.submit(1, b)
	if got := c.responses(1, b.Digest()); got != 0 {
		t.Fatalf("executed despite severed vote channel: %d responses", got)
	}
	// Heal; the client times out and rebroadcasts to every initiator-shard
	// replica (attack A1), whose renudges trigger reciprocal vote resends.
	c.drop = nil
	req := &types.Message{Type: types.MsgClientRequest, From: types.ClientNode(1), Batch: b, Digest: b.Digest()}
	for i := 0; i < 4; i++ {
		c.queue = append(c.queue, routed{types.ReplicaNode(0, i), req})
	}
	c.pump()
	if got := c.responses(1, b.Digest()); got < c.cfg.F()+1 {
		t.Fatalf("renudge did not recover: %d responses", got)
	}
}

func TestSharperExecutedCacheAnswersDuplicates(t *testing.T) {
	c := newCluster(t, 2, 4)
	b := mkBatch(1, 2, []types.ShardID{0}, 5)
	c.submit(1, b)
	first := c.responses(1, b.Digest())
	h := c.replicas[types.ReplicaNode(0, 2)].Chain().Height()
	c.submit(1, b)
	if got := c.responses(1, b.Digest()); got <= first {
		t.Fatal("duplicate not answered from cache")
	}
	if c.replicas[types.ReplicaNode(0, 2)].Chain().Height() != h {
		t.Fatal("duplicate re-executed")
	}
}

func TestSharperMisroutedRequestForwarded(t *testing.T) {
	c := newCluster(t, 3, 4)
	b := mkBatch(1, 3, []types.ShardID{1, 2}, 6)
	// Delivered to shard 0 (not the initiator).
	c.queue = append(c.queue, routed{types.ReplicaNode(0, 0), &types.Message{
		Type: types.MsgClientRequest, From: types.ClientNode(1), Batch: b, Digest: b.Digest(),
	}})
	c.pump()
	if got := c.responses(1, b.Digest()); got < c.cfg.F()+1 {
		t.Fatalf("misrouted cst not recovered: %d", got)
	}
}

func TestQuorumPerShard(t *testing.T) {
	c := newCluster(t, 2, 4)
	r := c.replicas[types.ReplicaNode(0, 0)]
	b := mkBatch(1, 2, []types.ShardID{0, 1}, 7)
	votes := map[types.NodeID]struct{}{}
	// nf=3 from shard 0 only: not enough.
	for i := 0; i < 3; i++ {
		votes[types.ReplicaNode(0, i)] = struct{}{}
	}
	if r.quorumPerShard(b, votes) {
		t.Fatal("quorum satisfied with one shard missing")
	}
	for i := 0; i < 2; i++ {
		votes[types.ReplicaNode(1, i)] = struct{}{}
	}
	if r.quorumPerShard(b, votes) {
		t.Fatal("quorum satisfied with only 2 votes from shard 1")
	}
	votes[types.ReplicaNode(1, 2)] = struct{}{}
	if !r.quorumPerShard(b, votes) {
		t.Fatal("full per-shard quorum rejected")
	}
}
