package sharper

import (
	"testing"

	"ringbft/internal/crypto"
	"ringbft/internal/types"
	"ringbft/internal/wal"
)

func newDurableReplica(t *testing.T, fs *wal.MemFS) *Replica {
	t.Helper()
	cfg := types.DefaultConfig(1, 4)
	cfg.CheckpointInterval = 4
	cfg.SnapshotInterval = 4
	self := types.ReplicaNode(0, 0)
	peers := make([]types.NodeID, 4)
	kg := crypto.NewKeygen(5)
	for i := range peers {
		peers[i] = types.ReplicaNode(0, i)
		kg.Register(peers[i])
	}
	ring, err := kg.Ring(self)
	if err != nil {
		t.Fatal(err)
	}
	m, rec, err := wal.OpenManager(wal.ManagerOptions{FS: fs, Dir: "sharper-r0"})
	if err != nil {
		t.Fatal(err)
	}
	r := New(Options{
		Config: cfg, Shard: 0, Self: self, Peers: peers,
		Auth: ring, Send: func(types.NodeID, *types.Message) {},
		Durability: m, Recovered: rec,
	})
	r.Preload(64)
	return r
}

// TestCrashRestartRecoversExecution mirrors the AHL variant: a Sharper
// replica killed mid-run resumes with identical store, ledger, and
// execution watermark, and keeps executing past it.
func TestCrashRestartRecoversExecution(t *testing.T) {
	fs := wal.NewMemFS()
	r := newDurableReplica(t, fs)
	for i := 0; i < 10; i++ {
		b := &types.Batch{
			Txns: []types.Txn{{
				ID:     types.TxnID{Client: types.ClientID(i + 1), Seq: 1},
				Reads:  []types.Key{types.Key(i % 4)},
				Writes: []types.Key{types.Key(i % 4)},
				Delta:  7,
			}},
			Involved: []types.ShardID{0},
		}
		r.onCommitted(types.SeqNum(i+1), b, nil)
	}
	wantDigest := r.Store().Digest()
	wantHeight := r.Chain().Height()

	r2 := newDurableReplica(t, fs)
	if r2.Store().Digest() != wantDigest {
		t.Fatal("recovered store diverges")
	}
	if r2.Chain().Height() != wantHeight {
		t.Fatalf("recovered height %d, want %d", r2.Chain().Height(), wantHeight)
	}
	if err := r2.Chain().Verify(); err != nil {
		t.Fatalf("recovered chain does not verify: %v", err)
	}
	if r2.execNext != 10 {
		t.Fatalf("recovered execNext = %d, want 10", r2.execNext)
	}
	b := &types.Batch{
		Txns:     []types.Txn{{ID: types.TxnID{Client: 99, Seq: 1}, Reads: []types.Key{1}, Writes: []types.Key{1}, Delta: 3}},
		Involved: []types.ShardID{0},
	}
	r2.onCommitted(11, b, nil)
	if r2.execNext != 11 {
		t.Fatalf("post-recovery execution stalled: execNext = %d", r2.execNext)
	}
}
