// Package sharper implements the Sharper baseline (Amiri et al., Section 2
// "Initiator Shard"): cross-shard transactions are coordinated by the
// primary of one involved shard, which proposes to the primaries of the
// other involved shards; each shard replicates the transaction locally, and
// then the replicas of all involved shards run two rounds of global
// all-to-all communication (cross-shard prepare and commit) before
// execution. This all-to-all pattern over WAN links — quadratic in the
// number of involved replicas — is exactly the cost RingBFT's linear,
// neighbour-to-neighbour ring communication removes.
//
// Simplifications relative to the (closed-source) original, recorded in
// DESIGN.md: execution uses locally available reads (Sharper does not ship
// remote read values; complex cst support "remains an open problem" per
// Section 8.8), and conflicting transactions from different initiator shards
// are serialized by each shard's local log rather than a cross-shard
// slot-reservation scheme.
package sharper

import (
	"bytes"
	"context"
	"sort"
	"time"

	"ringbft/internal/crypto"
	"ringbft/internal/evidence"
	"ringbft/internal/ledger"
	"ringbft/internal/metrics"
	"ringbft/internal/pbft"
	"ringbft/internal/sched"
	"ringbft/internal/store"
	"ringbft/internal/trace"
	"ringbft/internal/types"
	"ringbft/internal/wal"
)

// Sender abstracts the network.
type Sender func(to types.NodeID, m *types.Message)

// Options configures a Replica.
type Options struct {
	Config types.Config
	Shard  types.ShardID
	Self   types.NodeID
	Peers  []types.NodeID
	Auth   crypto.Authenticator
	Send   Sender
	Clock  func() time.Time

	// Durability/Recovered come from wal.OpenManager: executed blocks are
	// WAL-logged, snapshots cut every SnapshotInterval executed sequences,
	// and a restarted replica resumes from the recovered state. Stragglers
	// that consensus alone cannot repair additionally use the peer block
	// transfer in catchup.go.
	Durability *wal.Manager
	Recovered  *wal.Recovered

	// Evidence is the misbehavior evidence log (nil = fresh in-memory log).
	Evidence *evidence.Log

	// Metrics/Tracer enable live observability (see the equivalent fields
	// on ringbft.Options). Both optional; pure side effects.
	Metrics *metrics.Registry
	Tracer  *trace.Tracer
}

// Replica is one Sharper replica.
type Replica struct {
	cfg      types.Config
	shard    types.ShardID
	self     types.NodeID
	peers    []types.NodeID
	auth     crypto.Authenticator
	verifier *crypto.Verifier
	send     Sender
	clock    func() time.Time

	engine  *pbft.Engine
	tracker *pbft.CheckpointTracker
	kv      *store.KV
	chain   *ledger.Chain
	exec    *sched.Executor

	// Local execution pipeline: committed entries execute strictly in local
	// sequence order; a cross-shard entry blocks until its global all-to-all
	// rounds complete.
	execNext types.SeqNum
	entries  map[types.SeqNum]*entry

	global   map[types.Digest]*globalState
	executed map[types.Digest][]types.Value

	awaiting map[types.Digest]*pending
	proposed map[types.Digest]struct{}
	queue    []*types.Batch

	dur       *wal.Manager
	rec       *wal.Recovered
	snapEvery types.SeqNum
	lastSnap  types.SeqNum

	// lastVC paces the awaiting-proposal watchdog: each installed view
	// gets a full LocalTimeout before the next view-change demand (see the
	// equivalent note in internal/ringbft).
	lastVC time.Time

	// Peer block transfer (catchup.go): the most recent checkpoint
	// certificate observed (served to starved peers), the request pacer,
	// and the installs counter.
	lastCert       *checkpointCert
	lastXfer       time.Time
	stateTransfers int64

	// ev is the misbehavior evidence log (always non-nil; see
	// internal/evidence).
	ev *evidence.Log

	viewChanges int64
	retransmits int64

	obs *hostObs
}

type entry struct {
	seq   types.SeqNum
	batch *types.Batch
}

type pending struct {
	batch *types.Batch
	since time.Time
}

// globalState tracks the two cross-shard all-to-all rounds for one cst.
type globalState struct {
	batch      *types.Batch
	prepares   map[types.NodeID]struct{}
	commits    map[types.NodeID]struct{}
	nudged     map[types.NodeID]struct{} // peers already re-served (damping)
	prepSent   bool
	commitSent bool
	committed  bool
	// lastNudge paces head-of-line vote re-broadcast (see HandleTick).
	lastNudge time.Time
}

// New creates a Sharper replica.
func New(opts Options) *Replica {
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	verifier := crypto.NewVerifier(opts.Auth, opts.Config.VerifyWorkers)
	ev := opts.Evidence
	if ev == nil {
		ev = evidence.NewMemory()
	}
	r := &Replica{
		ev:       ev,
		cfg:      opts.Config,
		shard:    opts.Shard,
		self:     opts.Self,
		peers:    opts.Peers,
		auth:     opts.Auth,
		verifier: verifier,
		send:     opts.Send,
		clock:    opts.Clock,
		kv:       store.NewKV(),
		chain:    ledger.NewChain(opts.Shard),
		exec:     sched.New(opts.Config.ExecWorkers),
		entries:  make(map[types.SeqNum]*entry),
		global:   make(map[types.Digest]*globalState),
		executed: make(map[types.Digest][]types.Value),
		awaiting: make(map[types.Digest]*pending),
		proposed: make(map[types.Digest]struct{}),
		tracker:  pbft.NewCheckpointTracker(opts.Config.CheckpointInterval),
		dur:      opts.Durability,
		rec:      opts.Recovered,
		snapEvery: func() types.SeqNum {
			if opts.Config.SnapshotInterval > 0 {
				return opts.Config.SnapshotInterval
			}
			return opts.Config.CheckpointInterval
		}(),
	}
	r.obs = newHostObs(opts.Metrics, opts.Tracer, opts.Shard, opts.Self)
	r.engine = pbft.New(opts.Shard, opts.Self, opts.Peers, opts.Auth, pbft.Callbacks{
		Send:       func(to types.NodeID, m *types.Message) { r.send(to, m) },
		Committed:  r.onCommitted,
		Stabilized: r.onStabilized,
		ViewChanged: func(types.View) {
			r.viewChanges++
			r.obs.incViewChanges()
			r.lastVC = r.clock()
			r.reproposeAwaiting()
		},
		// Sharper carries no justification certificates (its coordinator
		// proposals replicate through ordinary local consensus), but primary
		// equivocation is still detectable and recorded.
		Equivocation: func(first, second *types.Message) {
			r.ev.Add(evidence.Record{
				Kind: evidence.KindEquivocation, Accused: first.From,
				Shard: r.shard, View: first.View, Seq: first.Seq,
				First: evidence.MsgOf(first), Second: evidence.MsgOf(second),
			})
		},
	}, pbft.Options{Clock: opts.Clock, ViewTimeout: opts.Config.LocalTimeout, Verifier: verifier, OnPhase: r.obs.phase(opts.Shard)})
	return r
}

// Evidence returns the replica's misbehavior evidence log.
func (r *Replica) Evidence() *evidence.Log { return r.ev }

// Preload installs this shard's store partition, then applies any state
// recovered from disk (durable replicas).
func (r *Replica) Preload(records int) {
	r.kv.Preload(r.shard, r.cfg.Shards, records)
	if r.dur != nil && r.rec != nil && !r.rec.Empty() {
		r.applyRecovered(r.rec)
	}
	r.rec = nil
}

// applyRecovered restores the store, ledger, and execution watermark from
// a snapshot plus the WAL tail (wal.ApplySequential — Sharper executes
// strictly in sequence order).
func (r *Replica) applyRecovered(rec *wal.Recovered) {
	st := rec.ApplySequential(r.kv, r.chain, r.shard, r.cfg.Shards, func(d types.Digest, res []types.Value) {
		r.executed[d] = res
		r.proposed[d] = struct{}{}
	})
	r.chain = st.Chain
	r.execNext = st.ExecNext
	r.lastSnap = st.LastSnap
	if st.View > 0 {
		r.engine.ForceView(st.View)
	}
	r.engine.ResumeAt(r.execNext, r.execNext+1)
}

// logExecuted durably records an executed block and cuts a snapshot every
// SnapshotInterval executed sequences (pruning the chain and collecting
// covered WAL segments).
func (r *Replica) logExecuted(seq types.SeqNum, primary types.NodeID, batch *types.Batch, results []types.Value) {
	if r.dur == nil {
		return
	}
	_ = r.dur.LogBlock(seq, primary, batch, results)
	if r.snapEvery > 0 && seq >= r.lastSnap+r.snapEvery {
		r.chain.Prune(seq)
		snap := wal.SequentialSnapshot(r.shard, seq, r.engine.View(), r.kv, r.chain,
			func(d types.Digest) []types.Value { return r.executed[d] })
		if r.dur.SaveSnapshot(snap) == nil {
			r.lastSnap = seq
		}
	}
}

// Chain returns the replica's ledger.
func (r *Replica) Chain() *ledger.Chain { return r.chain }

// ExecutedThrough returns the executed-prefix watermark (Sharper executes
// strictly in local sequence order). Call only after Run returns.
func (r *Replica) ExecutedThrough() types.SeqNum { return r.execNext }

// ExecutedResults returns a deterministic hash of the cached execution
// results per executed batch digest, for cross-replica chaos checkers. Call
// only after Run returns.
func (r *Replica) ExecutedResults() map[types.Digest]uint64 {
	out := make(map[types.Digest]uint64, len(r.executed))
	for d, vals := range r.executed {
		out[d] = types.HashValues(vals)
	}
	return out
}

// Store returns the replica's key-value partition.
func (r *Replica) Store() *store.KV { return r.kv }

// ViewChangeCount reports installed view changes (read after Run returns).
func (r *Replica) ViewChangeCount() int64 { return r.viewChanges }

// RetransmitCount reports message retransmissions (read after Run returns).
func (r *Replica) RetransmitCount() int64 { return r.retransmits }

// StateTransferCount reports installed peer block transfers (read after Run
// returns).
func (r *Replica) StateTransferCount() int64 { return r.stateTransfers }

// Run drives the replica until ctx is cancelled.
func (r *Replica) Run(ctx context.Context, inbox <-chan *types.Message) {
	tickEvery := r.cfg.LocalTimeout / 4
	if tickEvery <= 0 {
		tickEvery = 25 * time.Millisecond
	}
	ticker := time.NewTicker(tickEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case m, ok := <-inbox:
			if !ok {
				return
			}
			r.HandleMessage(m)
		case <-ticker.C:
			r.HandleTick(r.clock())
		}
	}
}

// HandleMessage dispatches one inbound message.
func (r *Replica) HandleMessage(m *types.Message) {
	if m == nil {
		return
	}
	switch m.Type {
	case types.MsgClientRequest:
		r.onClientRequest(m)
	case types.MsgSharperPropose:
		r.onPropose(m)
	case types.MsgSharperPrepare:
		r.onCrossVote(m, false)
	case types.MsgSharperCommit:
		r.onCrossVote(m, true)
	case types.MsgStateRequest:
		r.onStateRequest(m)
	case types.MsgStateSnapshot:
		r.onStateSnapshot(m)
	default:
		r.engine.OnMessage(m)
		r.tryProposeQueued()
	}
}

// HandleTick drives the local watchdog.
func (r *Replica) HandleTick(now time.Time) {
	r.engine.Tick(now)
	r.tryProposeQueued()
	r.maybeCatchup(now)
	r.obs.sample(len(r.queue), r.ev.Len())
	if r.engine.InViewChange() {
		return
	}
	if now.Sub(r.lastVC) > r.cfg.LocalTimeout {
		expired := false
		// Sorted-digest order: the re-proposal below assigns sequence
		// numbers, which must not depend on map iteration order.
		for _, d := range types.SortedDigestKeys(r.awaiting) {
			p := r.awaiting[d]
			if now.Sub(p.since) > r.cfg.LocalTimeout {
				p.since = now
				expired = true
				if r.engine.IsPrimary() {
					// The proposed latch may date from a previous primacy
					// of this member whose proposal died with its view;
					// after enough view changes every member is latched and
					// the batch can never be proposed again (found by
					// internal/chaos, loss-storm schedules). Clear it so
					// this primary re-proposes.
					delete(r.proposed, d)
					r.propose(p.batch, d)
				}
			}
		}
		if expired && !r.engine.IsPrimary() {
			r.engine.StartViewChange(r.engine.View() + 1)
			return
		}
	}
	if oldest, ok := r.engine.OldestUncommitted(); ok && now.Sub(oldest) > r.cfg.LocalTimeout {
		r.engine.StartViewChange(r.engine.View() + 1)
	}
	// Head-of-line renudge: Sharper executes strictly in sequence order and
	// its global rounds have no protocol timer — recovery normally rides on
	// client retries (renudge via onClientRequest). Under a loss storm the
	// retries themselves get dropped, so one starved cst at the head of the
	// execution pipeline wedges the shard; re-broadcast our votes for it,
	// paced like the client path (found by internal/chaos, loss-storm
	// schedules).
	if e, ok := r.entries[r.execNext+1]; ok && e.batch != nil &&
		len(e.batch.Txns) > 0 && e.batch.IsCrossShard() {
		if gs, ok := r.global[e.batch.Digest()]; ok && !gs.committed &&
			now.Sub(gs.lastNudge) > r.cfg.LocalTimeout {
			gs.lastNudge = now
			r.retransmits++
			r.obs.incRetransmits()
			r.renudge(gs)
			if e.batch.Initiator() == r.shard && r.engine.IsPrimary() {
				// A stalled global round can also mean another involved
				// shard never replicated the batch at all (every copy of
				// the coordination proposal was lost): re-coordinate.
				r.coordinate(e.batch, e.batch.Digest())
			}
		}
	}
}

func (r *Replica) onClientRequest(m *types.Message) {
	if m.Batch == nil || len(m.Batch.Txns) == 0 {
		return
	}
	b := m.Batch
	d := b.Digest()
	if res, ok := r.executed[d]; ok {
		r.respond(clientOf(b), d, res)
		return
	}
	if gs, ok := r.global[d]; ok && !gs.committed {
		// Client retransmission while the global rounds are in flight:
		// re-send our votes in case the first copies were lost.
		r.renudge(gs)
	}
	if !b.Involves(r.shard) || b.Initiator() != r.shard {
		fwd := *m
		fwd.From = r.self
		r.send(types.ReplicaNode(b.Initiator(), 0), &fwd)
		return
	}
	r.enqueue(b, d)
	// The initiator primary coordinates: propose to the primaries of the
	// other involved shards so they replicate it too.
	if b.IsCrossShard() && r.engine.IsPrimary() {
		r.coordinate(b, d)
	}
}

// coordinate sends the initiator primary's SharperPropose to every other
// involved shard's primary.
func (r *Replica) coordinate(b *types.Batch, d types.Digest) {
	gs := r.globalState(d, b)
	if gs.prepSent && gs.commitSent {
		return
	}
	prop := &types.Message{
		Type: types.MsgSharperPropose, From: r.self, Shard: r.shard,
		Digest: d, Batch: b,
	}
	prop.Sig = crypto.SignMessage(r.auth, prop)
	for _, s := range b.Involved {
		if s == r.shard {
			continue
		}
		// Every replica of the involved shard, not just index 0: the
		// coordinator cannot know the remote shard's current view, and a
		// proposal addressed to a deposed (or straggling) primary dies in
		// its awaiting map. Backups that receive it park it in their own
		// awaiting, whose timer pressures their primary the usual way
		// (found by internal/chaos, loss-storm schedules).
		for _, to := range r.peersOf(s) {
			r.send(to, prop)
		}
	}
}

// peersOf lists every replica of shard s (same replica count per shard).
func (r *Replica) peersOf(s types.ShardID) []types.NodeID {
	out := make([]types.NodeID, len(r.peers))
	for i := range r.peers {
		out[i] = types.ReplicaNode(s, i)
	}
	return out
}

// onPropose handles the coordinator's proposal at another involved shard.
func (r *Replica) onPropose(m *types.Message) {
	b := m.Batch
	if b == nil || len(b.Txns) == 0 || !b.IsCrossShard() {
		return
	}
	d := b.Digest()
	if d != m.Digest || !b.Involves(r.shard) || b.Initiator() == r.shard {
		return
	}
	if m.From.Kind != types.KindReplica || m.From.Shard != b.Initiator() {
		return
	}
	if crypto.VerifyMessageSig(r.auth, m) != nil {
		return
	}
	r.globalState(d, b)
	r.enqueue(b, d)
}

func (r *Replica) enqueue(b *types.Batch, d types.Digest) {
	if _, done := r.proposed[d]; done {
		return
	}
	if _, ok := r.awaiting[d]; !ok {
		r.awaiting[d] = &pending{batch: b, since: r.clock()}
	}
	if r.engine.IsPrimary() && !r.engine.InViewChange() {
		r.propose(b, d)
	}
}

func (r *Replica) propose(b *types.Batch, d types.Digest) {
	if _, done := r.proposed[d]; done {
		return
	}
	// Pipelined consensus: the same drain discipline as internal/ringbft —
	// at most PipelineDepth proposals in flight, the rest parked for
	// tryProposeQueued (0 = engine window only).
	if r.cfg.PipelineDepth > 0 && r.engine.InFlight() >= r.cfg.PipelineDepth {
		r.queue = append(r.queue, b)
		return
	}
	if _, err := r.engine.Propose(b); err != nil {
		r.queue = append(r.queue, b)
		return
	}
	r.proposed[d] = struct{}{}
}

func (r *Replica) tryProposeQueued() {
	if !r.engine.IsPrimary() || r.engine.InViewChange() {
		return
	}
	for len(r.queue) > 0 {
		if r.cfg.PipelineDepth > 0 && r.engine.InFlight() >= r.cfg.PipelineDepth {
			return // pipeline window full: a commit frees the next slot
		}
		b := r.queue[0]
		d := b.Digest()
		if _, done := r.proposed[d]; done {
			r.queue = r.queue[1:]
			continue
		}
		if _, err := r.engine.Propose(b); err != nil {
			return
		}
		r.proposed[d] = struct{}{}
		r.queue = r.queue[1:]
	}
}

func (r *Replica) reproposeAwaiting() {
	if !r.engine.IsPrimary() {
		return
	}
	// Sorted-digest order: sequence assignment must not depend on map
	// iteration order, or identically seeded runs diverge.
	ds := make([]types.Digest, 0, len(r.awaiting))
	for d := range r.awaiting {
		ds = append(ds, d)
	}
	sort.Slice(ds, func(i, j int) bool { return bytes.Compare(ds[i][:], ds[j][:]) < 0 })
	for _, d := range ds {
		if _, done := r.proposed[d]; !done {
			r.propose(r.awaiting[d].batch, d)
		}
	}
	r.tryProposeQueued()
}

func (r *Replica) globalState(d types.Digest, b *types.Batch) *globalState {
	gs, ok := r.global[d]
	if !ok {
		gs = &globalState{
			prepares: make(map[types.NodeID]struct{}),
			commits:  make(map[types.NodeID]struct{}),
		}
		r.global[d] = gs
	}
	if gs.batch == nil {
		gs.batch = b
	}
	return gs
}

// onCommitted: local replication finished. Single-shard entries head to the
// execution pipeline; cross-shard entries additionally start the global
// all-to-all prepare round across every replica of every involved shard.
func (r *Replica) onCommitted(seq types.SeqNum, batch *types.Batch, _ []types.Signed) {
	d := batch.Digest()
	delete(r.awaiting, d)
	r.proposed[d] = struct{}{}
	r.entries[seq] = &entry{seq: seq, batch: batch}
	r.tracker.Committed(r.engine, seq, batch)
	if batch.IsCrossShard() {
		gs := r.globalState(d, batch)
		gs.lastNudge = r.clock() // the prepare broadcast counts as attempt one
		r.sendCrossRound(gs, types.MsgSharperPrepare)
	}
	r.drainExec()
}

// sendCrossRound broadcasts a cross-shard vote to every replica of every
// involved shard — the quadratic pattern RingBFT's evaluation attributes
// Sharper's WAN degradation to.
func (r *Replica) sendCrossRound(gs *globalState, t types.MsgType) {
	if t == types.MsgSharperPrepare {
		if gs.prepSent {
			return
		}
		gs.prepSent = true
		gs.prepares[r.self] = struct{}{}
	} else {
		if gs.commitSent {
			return
		}
		gs.commitSent = true
		gs.commits[r.self] = struct{}{}
	}
	d := gs.batch.Digest()
	m := &types.Message{Type: t, From: r.self, Shard: r.shard, Digest: d}
	m.Sig = crypto.SignMessage(r.auth, m)
	for _, s := range gs.batch.Involved {
		for i := 0; i < r.cfg.ReplicasPerShard; i++ {
			to := types.ReplicaNode(s, i)
			if to == r.self {
				continue
			}
			r.send(to, m)
		}
	}
	r.evaluate(gs)
}

// onCrossVote records one replica's cross-shard prepare/commit vote.
func (r *Replica) onCrossVote(m *types.Message, commit bool) {
	if m.From.Kind != types.KindReplica {
		return
	}
	if crypto.VerifyMessageSig(r.auth, m) != nil {
		return
	}
	gs, ok := r.global[m.Digest]
	if !ok {
		// Votes can outrun our local consensus; buffer them.
		gs = r.globalState(m.Digest, nil)
	}
	votes := gs.prepares
	if commit {
		votes = gs.commits
	}
	if _, dup := votes[m.From]; dup {
		// A re-transmitted vote means the sender is starved of ours
		// (partial communication); resend our votes to that sender, once
		// per cst, so two healthy replicas cannot ping-pong forever.
		if gs.nudged == nil {
			gs.nudged = make(map[types.NodeID]struct{})
		}
		if _, done := gs.nudged[m.From]; !done {
			gs.nudged[m.From] = struct{}{}
			r.retransmits++
			r.obs.incRetransmits()
			r.resendVotesTo(m.From, gs)
		}
		return
	}
	votes[m.From] = struct{}{}
	r.evaluate(gs)
}

// resendVotesTo retransmits this replica's cross-shard votes to one peer.
func (r *Replica) resendVotesTo(to types.NodeID, gs *globalState) {
	if gs.batch == nil {
		return
	}
	d := gs.batch.Digest()
	for _, round := range []struct {
		sent bool
		t    types.MsgType
	}{{gs.prepSent, types.MsgSharperPrepare}, {gs.commitSent, types.MsgSharperCommit}} {
		if !round.sent {
			continue
		}
		m := &types.Message{Type: round.t, From: r.self, Shard: r.shard, Digest: d}
		m.Sig = crypto.SignMessage(r.auth, m)
		r.send(to, m)
	}
}

// evaluate advances the global rounds: nf prepares from each involved shard
// unlock the commit round; nf commits from each unlock execution.
func (r *Replica) evaluate(gs *globalState) {
	if gs.batch == nil || gs.committed {
		return
	}
	if !gs.commitSent && gs.prepSent && r.quorumPerShard(gs.batch, gs.prepares) {
		r.sendCrossRound(gs, types.MsgSharperCommit)
	}
	if gs.commitSent && r.quorumPerShard(gs.batch, gs.commits) {
		gs.committed = true
		r.drainExec()
	}
}

// renudge rebroadcasts this replica's cross-shard votes for a stalled cst
// (retransmission under message loss; the protocol itself has no timer for
// these rounds, so the client's retry drives recovery).
func (r *Replica) renudge(gs *globalState) {
	if gs.batch == nil || gs.committed {
		return
	}
	d := gs.batch.Digest()
	for _, round := range []struct {
		sent bool
		t    types.MsgType
	}{{gs.prepSent, types.MsgSharperPrepare}, {gs.commitSent, types.MsgSharperCommit}} {
		if !round.sent {
			continue
		}
		m := &types.Message{Type: round.t, From: r.self, Shard: r.shard, Digest: d}
		m.Sig = crypto.SignMessage(r.auth, m)
		for _, s := range gs.batch.Involved {
			for i := 0; i < r.cfg.ReplicasPerShard; i++ {
				to := types.ReplicaNode(s, i)
				if to != r.self {
					r.send(to, m)
				}
			}
		}
	}
}

// quorumPerShard reports whether votes contains nf distinct voters from
// every involved shard.
func (r *Replica) quorumPerShard(b *types.Batch, votes map[types.NodeID]struct{}) bool {
	counts := make(map[types.ShardID]int, len(b.Involved))
	for v := range votes {
		counts[v.Shard]++
	}
	for _, s := range b.Involved {
		if counts[s] < r.cfg.NF() {
			return false
		}
	}
	return true
}

// drainExec executes committed entries strictly in local sequence order; a
// cross-shard entry gates the pipeline until its global rounds complete.
func (r *Replica) drainExec() {
	for {
		e, ok := r.entries[r.execNext+1]
		if !ok {
			return
		}
		b := e.batch
		if len(b.Txns) > 0 && b.IsCrossShard() {
			gs := r.global[b.Digest()]
			if gs == nil || !gs.committed {
				return // pipeline stalls on the 2-round WAN gate
			}
		}
		delete(r.entries, r.execNext+1)
		r.execNext++
		if len(b.Txns) == 0 {
			r.logExecuted(e.seq, r.engine.Primary(r.engine.View()), b, nil)
			continue
		}
		d := b.Digest()
		results, _ := r.exec.ExecuteBatch(b.Txns, r.shard, r.cfg.Shards, func(i int) (types.Value, error) {
			return r.kv.ExecuteTxnPartial(&b.Txns[i], r.shard, r.cfg.Shards), nil
		})
		r.executed[d] = results
		r.obs.addExecuted(len(b.Txns))
		r.obs.observe(r.clock(), r.shard, uint64(e.seq), trace.PhaseExecute)
		primary := r.engine.Primary(r.engine.View())
		r.chain.Append(e.seq, primary, b)
		r.logExecuted(e.seq, primary, b, results)
		if b.Initiator() == r.shard {
			r.respond(clientOf(b), d, results)
			r.obs.observe(r.clock(), r.shard, uint64(e.seq), trace.PhaseReply)
		}
	}
}

func (r *Replica) respond(client types.NodeID, d types.Digest, results []types.Value) {
	m := &types.Message{
		Type: types.MsgResponse, From: r.self, Shard: r.shard,
		View: r.engine.View(), Digest: d, Results: results,
	}
	m.MAC = crypto.MACMessage(r.auth, client, m)
	r.send(client, m)
}

func clientOf(b *types.Batch) types.NodeID {
	return types.ClientNode(b.Txns[0].ID.Client)
}

// Debug returns internal counters for diagnosis: local execution watermark,
// committed-but-unexecuted entries, and proposal bookkeeping sizes.
func (r *Replica) Debug() (execNext types.SeqNum, pendingEntries, awaiting, queued, proposed int) {
	return r.execNext, len(r.entries), len(r.awaiting), len(r.queue), len(r.proposed)
}

// DebugEngine exposes engine state for diagnosis.
func (r *Replica) DebugEngine() (view types.View, invc bool, stable types.SeqNum, votes map[types.SeqNum]int, uncommitted int) {
	return r.engine.View(), r.engine.InViewChange(), r.engine.StableSeq(), r.engine.CheckpointVotes(), r.engine.UncommittedInWindow()
}
