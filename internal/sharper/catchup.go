package sharper

import (
	"time"

	"ringbft/internal/crypto"
	"ringbft/internal/pbft"
	"ringbft/internal/types"
)

// Peer block transfer: a Sharper replica that falls behind the shard — a
// commit-prefix hole below the stable checkpoint (the engine GC'd the
// sequence, so no view change can ever re-propose it), or a lone view
// change no quorum will join — fetches the blocks it is missing from a
// peer instead of stalling forever (found by internal/chaos, loss-storm
// schedules: two simultaneous stragglers also starve the checkpoint
// quorum, so neither can wait for the other to recover).
//
// Unlike RingBFT's state transfer (internal/ringbft/statetransfer.go),
// which ships the canonical key-value state anchored on a composite
// checkpoint digest, Sharper's checkpoint digest covers only the rolling
// fold of committed batch digests (pbft.CheckpointTracker). The payload
// therefore ships the missing *blocks* plus the nf-signed Checkpoint votes
// certifying the fold at the checkpoint: the requester re-derives the fold
// from its own contiguous prefix (sequence gaps are view-change no-op
// fillers, whose empty-batch digest every replica knows) and re-executes
// the batches locally. Nothing is taken on the responder's word — neither
// state nor results travel, and substituting any batch in the replayed
// range requires a SHA-256 collision against the certified fold.

// checkpointCert memoizes the most recent checkpoint certificate this
// replica observed stabilize, so it can serve catch-up requests even after
// the engine GCs older votes.
type checkpointCert struct {
	seq    types.SeqNum
	digest types.Digest
	cert   []types.Signed
}

// onStabilized is the engine's stable-checkpoint hook: nf replicas signed
// the same fold digest at seq. Memoize the re-assembled certificate while
// the votes are still retained (stabilize GCs only below the new stable).
func (r *Replica) onStabilized(seq types.SeqNum, digest types.Digest) {
	if r.lastCert != nil && r.lastCert.seq >= seq {
		return
	}
	if d, cert, ok := r.engine.CheckpointCert(seq); ok && d == digest {
		r.lastCert = &checkpointCert{seq: seq, digest: d, cert: cert}
	}
}

// maybeCatchup (HandleTick) detects the two wedges consensus cannot fix and
// paces a catch-up request to the shard peers:
//
//   - the stable watermark moved past a commit-prefix hole (a NewView's
//     StableSeq adoption pruned a sequence we never committed — the engine
//     will not re-propose it, and execution can never pass it);
//   - a view change no quorum joined (a lone straggler's timeout in an
//     otherwise healthy shard: no NewView will ever arrive, and staying
//     dark stops this replica's cross-shard votes and checkpoints too).
//
// Runs before HandleTick's in-view-change early return — the second wedge
// is only reachable from inside a view change.
func (r *Replica) maybeCatchup(now time.Time) {
	behindStable := r.engine.StableSeq() > r.tracker.Next()
	vcStuck := r.engine.InViewChange() && now.Sub(r.lastVC) > 3*r.cfg.LocalTimeout
	if !behindStable && !vcStuck {
		return
	}
	if now.Sub(r.lastXfer) <= r.cfg.LocalTimeout {
		return
	}
	r.lastXfer = now
	m := &types.Message{
		Type: types.MsgStateRequest, From: r.self, Shard: r.shard,
		Seq: r.execNext, // the watermark a useful responder must exceed
	}
	for _, p := range r.peers {
		if p == r.self {
			continue
		}
		cp := *m
		cp.MAC = crypto.MACMessage(r.auth, p, &cp)
		r.send(p, &cp)
	}
}

// onStateRequest serves a peer's catch-up request from this replica's most
// recent certified checkpoint, provided local execution covers it and the
// chain still retains every block the requester is missing.
func (r *Replica) onStateRequest(m *types.Message) {
	if m.From.Kind != types.KindReplica || m.From.Shard != r.shard || m.From == r.self {
		return
	}
	if crypto.VerifyMessageMAC(r.auth, m) != nil {
		return
	}
	c := r.lastCert
	if c == nil || c.seq <= m.Seq || r.execNext < c.seq {
		return // nothing certified that would cover the requester's gap
	}
	blocks := r.chain.Blocks()
	if blocks[0].Seq > m.Seq {
		return // pruned past the requester's watermark; cannot serve
	}
	var recs []types.BlockRec
	for _, b := range blocks[1:] {
		if b.Seq > m.Seq && b.Seq <= c.seq {
			recs = append(recs, types.BlockRec{Seq: b.Seq, Primary: b.Primary, Batch: b.Batch})
		}
	}
	resp := &types.Message{
		Type: types.MsgStateSnapshot, From: r.self, Shard: r.shard,
		Seq: c.seq, Digest: c.digest,
		State: &types.StatePayload{
			Seq: c.seq, PrefixDigest: c.digest, Cert: c.cert, Blocks: recs,
		},
	}
	resp.MAC = crypto.MACMessage(r.auth, m.From, resp)
	r.send(m.From, resp)
}

// onStateSnapshot validates a catch-up payload end to end — checkpoint
// certificate, then fold — and installs it. The first valid payload wins;
// later ones fall behind execNext and are ignored.
func (r *Replica) onStateSnapshot(m *types.Message) {
	if m.From.Kind != types.KindReplica || m.From.Shard != r.shard || m.From == r.self {
		return
	}
	if crypto.VerifyMessageMAC(r.auth, m) != nil {
		return
	}
	p := m.State
	if p == nil || p.Seq != m.Seq || p.Seq <= r.execNext || p.Seq < r.tracker.Next() {
		return
	}

	// 1. The certificate: nf distinct shard replicas signed Checkpoint
	// votes for exactly (Seq, PrefixDigest).
	seen := make(map[types.NodeID]bool, len(p.Cert))
	valid := 0
	for i := range p.Cert {
		s := &p.Cert[i]
		if s.Type != types.MsgCheckpoint || s.Shard != r.shard ||
			s.Seq != p.Seq || s.Digest != p.PrefixDigest {
			continue
		}
		if s.From.Kind != types.KindReplica || s.From.Shard != r.shard || seen[s.From] {
			continue
		}
		if r.auth.Verify(s.From, s.SigBytes(), s.Sig) != nil {
			continue
		}
		seen[s.From] = true
		valid++
	}
	if valid < r.cfg.NF() {
		return
	}

	// 2. The fold: extending our own contiguous commit prefix with the
	// shipped batch digests (empty-batch digest for gaps) must land exactly
	// on the certified digest, with every shipped block consumed in strictly
	// ascending sequence order.
	noop := (&types.Batch{}).Digest()
	next, prefix := r.tracker.Next(), r.tracker.Prefix()
	bi := 0
	for bi < len(p.Blocks) && p.Blocks[bi].Seq <= next {
		if bi > 0 && p.Blocks[bi].Seq <= p.Blocks[bi-1].Seq {
			return
		}
		// Overlap with our own committed prefix: the fold below starts past
		// these, so pin each one to the digest we committed ourselves.
		br := &p.Blocks[bi]
		ent, ok := r.entries[br.Seq]
		if br.Seq > r.execNext && (!ok || br.Batch == nil ||
			ent.batch.Digest() != br.Batch.Digest()) {
			return
		}
		bi++
	}
	for s := next + 1; s <= p.Seq; s++ {
		d := noop
		if bi < len(p.Blocks) && p.Blocks[bi].Seq == s {
			b := p.Blocks[bi].Batch
			if b == nil || len(b.Txns) == 0 {
				return
			}
			d = b.Digest()
			bi++
		}
		prefix = pbft.FoldStep(prefix, s, d)
	}
	if bi != len(p.Blocks) || prefix != p.PrefixDigest {
		return
	}

	// 3. Install: re-execute the missing blocks in order (the certificate
	// proves the shard committed and passed them — a cross-shard batch in
	// the range had its global rounds complete shard-wide, or no block
	// after it could exist). Client responses are not re-sent: these
	// transactions completed long ago through the healthy replicas.
	for i := range p.Blocks {
		br := &p.Blocks[i]
		if br.Seq <= r.execNext {
			continue
		}
		b := br.Batch
		d := b.Digest()
		results, _ := r.exec.ExecuteBatch(b.Txns, r.shard, r.cfg.Shards, func(j int) (types.Value, error) {
			return r.kv.ExecuteTxnPartial(&b.Txns[j], r.shard, r.cfg.Shards), nil
		})
		r.executed[d] = results
		r.proposed[d] = struct{}{}
		delete(r.awaiting, d)
		if gs, ok := r.global[d]; ok {
			gs.committed = true // completed shard-wide; stop renudging it
		}
		r.chain.Append(br.Seq, br.Primary, b)
		r.logExecuted(br.Seq, br.Primary, b, results)
		r.execNext = br.Seq
	}
	for s := range r.entries {
		if s <= p.Seq {
			delete(r.entries, s)
		}
	}
	r.execNext = p.Seq
	r.tracker.Advance(p.Seq, p.PrefixDigest)
	// Repositioning also clears a lone in-flight view change: the shard is
	// provably past this checkpoint, so rejoining the current view is both
	// safe and the only way this replica ever participates again.
	r.engine.ResumeAt(p.Seq, p.Seq+1)
	r.stateTransfers++
	if r.lastCert == nil || p.Seq > r.lastCert.seq {
		r.lastCert = &checkpointCert{
			seq: p.Seq, digest: p.PrefixDigest,
			cert: append([]types.Signed(nil), p.Cert...),
		}
	}
	r.drainExec()
}
