// Package ledger implements the per-shard partial blockchain of Section 7:
// an immutable append-only hash chain of blocks, each committing to a batch
// of transactions via a Merkle root, starting from an agreed-upon genesis
// block. In a sharded system the complete state is the union of the shards'
// ledgers (Eq. 1); a block holding a cross-shard batch is appended to the
// ledger of every involved shard.
package ledger

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"ringbft/internal/crypto"
	"ringbft/internal/types"
)

// Block is 𝔅_k = {k, Δ, p_S, H(𝔅_{k-1})} (Eq. 3) extended with the Merkle
// root of the batch's transactions so a block can be verified without
// re-serializing every transaction.
type Block struct {
	Seq        types.SeqNum
	Digest     types.Digest // Δ: digest of the ordered batch
	Primary    types.NodeID // proposer p_S of the batch
	PrevHash   types.Digest // H(𝔅_{k-1})
	MerkleRoot types.Digest // Merkle root over batch transactions
	TxnCount   int
	Batch      *types.Batch // full transactional information (Section 7)
}

// Hash returns H(𝔅): the chaining hash of the block header.
func (b *Block) Hash() types.Digest {
	h := sha256.New()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(b.Seq))
	h.Write(buf[:])
	h.Write(b.Digest[:])
	h.Write(b.PrevHash[:])
	h.Write(b.MerkleRoot[:])
	binary.BigEndian.PutUint64(buf[:], uint64(b.TxnCount))
	h.Write(buf[:])
	var d types.Digest
	copy(d[:], h.Sum(nil))
	return d
}

// ErrBrokenChain is returned when appending a block whose PrevHash does not
// match the head, or when Verify finds an inconsistent link.
var ErrBrokenChain = errors.New("ledger: hash chain broken")

// Chain is one shard's ledger 𝔏_S. Safe for concurrent use.
//
// A chain checkpointed by the durability subsystem is pruned: blocks below
// the stable checkpoint are dropped from memory (they live in snapshots on
// disk) and blocks[0] becomes the pruned boundary block — a header-only
// "base" whose hash anchors the retained suffix, playing the role genesis
// plays for an unpruned chain. base is the absolute index of blocks[0].
type Chain struct {
	mu     sync.RWMutex
	shard  types.ShardID
	blocks []*Block
	base   int
}

// NewChain creates a ledger for shard s, initialized with the genesis block
// every replica agrees on (Section 7).
func NewChain(s types.ShardID) *Chain {
	genesis := &Block{Seq: 0, Digest: genesisDigest(s)}
	return &Chain{shard: s, blocks: []*Block{genesis}}
}

func genesisDigest(s types.ShardID) types.Digest {
	h := sha256.Sum256([]byte(fmt.Sprintf("ringbft-genesis-shard-%d", s)))
	return types.Digest(h)
}

// Shard returns the shard whose partition this ledger records.
func (c *Chain) Shard() types.ShardID { return c.shard }

// Append creates the next block from an ordered batch and appends it.
func (c *Chain) Append(seq types.SeqNum, primary types.NodeID, batch *types.Batch) *Block {
	c.mu.Lock()
	defer c.mu.Unlock()
	prev := c.blocks[len(c.blocks)-1]
	b := &Block{
		Seq:        seq,
		Digest:     batch.Digest(),
		Primary:    primary,
		PrevHash:   prev.Hash(),
		MerkleRoot: crypto.BatchMerkleRoot(batch),
		TxnCount:   len(batch.Txns),
		Batch:      batch,
	}
	c.blocks = append(c.blocks, b)
	return b
}

// Height returns the number of blocks excluding genesis, counting pruned
// blocks: pruning frees memory without rewriting history's length.
func (c *Chain) Height() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.base + len(c.blocks) - 1
}

// Head returns the latest block.
func (c *Chain) Head() *Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.blocks[len(c.blocks)-1]
}

// Block returns the block at absolute index i (0 = genesis), or nil when
// out of range or pruned from memory.
func (c *Chain) Block(i int) *Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	i -= c.base
	if i < 0 || i >= len(c.blocks) {
		return nil
	}
	return c.blocks[i]
}

// Blocks returns a snapshot of the retained blocks, base (genesis for an
// unpruned chain) first.
func (c *Chain) Blocks() []*Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Block, len(c.blocks))
	copy(out, c.blocks)
	return out
}

// Base returns the block the retained suffix rests on and its absolute
// index: genesis at 0 for an unpruned chain, otherwise the pruned boundary.
func (c *Chain) Base() (*Block, int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.blocks[0], c.base
}

// Prune drops retained blocks (after the base) whose sequence number is
// below belowSeq, freeing the batches the durability subsystem has already
// checkpointed to disk. The newest dropped block becomes the new base: its
// header-only form (Batch nil) keeps the hash chain anchored, so Verify
// still validates every retained link. Pruning stops at the first retained
// block with Seq >= belowSeq — cross-shard execution may append blocks
// slightly out of sequence order, and a conservative stop keeps every
// possibly-needed block. Returns the number of blocks dropped.
func (c *Chain) Prune(belowSeq types.SeqNum) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	cut := 0
	for cut+1 < len(c.blocks) && c.blocks[cut+1].Seq < belowSeq {
		cut++
	}
	if cut == 0 {
		return 0
	}
	newBase := *c.blocks[cut] // copy so the retained header drops its batch
	newBase.Batch = nil
	retained := make([]*Block, 0, len(c.blocks)-cut)
	retained = append(retained, &newBase)
	retained = append(retained, c.blocks[cut+1:]...)
	c.blocks = retained
	c.base += cut
	return cut
}

// Rebuild reconstructs a chain verbatim from recovered blocks: base is the
// boundary block a snapshot recorded (header fields only; Batch may be
// nil), baseIndex its absolute index, and blocks the retained suffix in
// chain order. Used by crash recovery; the caller should Verify afterwards.
func Rebuild(s types.ShardID, base *Block, baseIndex int, blocks []*Block) *Chain {
	all := make([]*Block, 0, len(blocks)+1)
	all = append(all, base)
	all = append(all, blocks...)
	return &Chain{shard: s, blocks: all, base: baseIndex}
}

// Verify walks the chain and checks every hash link and Merkle root,
// returning ErrBrokenChain (wrapped with position) on the first violation.
// This is the immutability check blockchains exist to provide.
func (c *Chain) Verify() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i := 1; i < len(c.blocks); i++ {
		b := c.blocks[i]
		if b.PrevHash != c.blocks[i-1].Hash() {
			return fmt.Errorf("block %d (seq %d): %w", i, b.Seq, ErrBrokenChain)
		}
		if b.Batch != nil {
			if b.Digest != b.Batch.Digest() {
				return fmt.Errorf("block %d: batch digest mismatch: %w", i, ErrBrokenChain)
			}
			if b.MerkleRoot != crypto.BatchMerkleRoot(b.Batch) {
				return fmt.Errorf("block %d: merkle root mismatch: %w", i, ErrBrokenChain)
			}
		}
	}
	return nil
}

// CrossOrder returns the digests of cross-shard blocks in chain order.
// Theorem 6.2/6.3 require that two ledgers of shards sharing conflicting
// cross-shard batches order those blocks identically; tests intersect the
// CrossOrder of two chains to check it.
func (c *Chain) CrossOrder() []types.Digest {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []types.Digest
	for _, b := range c.blocks[1:] {
		if b.Batch != nil && b.Batch.IsCrossShard() {
			out = append(out, b.Digest)
		}
	}
	return out
}
