package ledger

import (
	"testing"
	"testing/quick"

	"ringbft/internal/types"
)

func testBatch(seed uint64, shards ...types.ShardID) *types.Batch {
	if len(shards) == 0 {
		shards = []types.ShardID{0}
	}
	return &types.Batch{
		Txns: []types.Txn{{
			ID:     types.TxnID{Client: 1, Seq: seed},
			Reads:  []types.Key{types.Key(seed)},
			Writes: []types.Key{types.Key(seed)},
			Delta:  types.Value(seed),
		}},
		Involved: shards,
	}
}

func TestGenesisAndAppend(t *testing.T) {
	c := NewChain(3)
	if c.Height() != 0 {
		t.Fatalf("fresh chain height %d, want 0", c.Height())
	}
	if c.Head().Seq != 0 {
		t.Fatal("head of fresh chain is not genesis")
	}
	b := c.Append(1, types.ReplicaNode(3, 0), testBatch(1))
	if c.Height() != 1 || c.Head() != b {
		t.Fatal("append did not advance head")
	}
	if b.PrevHash != c.Block(0).Hash() {
		t.Fatal("block not chained to genesis")
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestGenesisDistinctPerShard(t *testing.T) {
	a, b := NewChain(0), NewChain(1)
	if a.Head().Digest == b.Head().Digest {
		t.Fatal("different shards share a genesis digest")
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	c := NewChain(0)
	for i := uint64(1); i <= 5; i++ {
		c.Append(types.SeqNum(i), types.ReplicaNode(0, 0), testBatch(i))
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	// Tamper with a middle block's batch: Verify must fail.
	c.Block(2).Batch.Txns[0].Delta = 999
	if err := c.Verify(); err == nil {
		t.Fatal("tampered chain verified (immutability broken)")
	}
}

func TestVerifyDetectsBrokenLink(t *testing.T) {
	c := NewChain(0)
	c.Append(1, types.ReplicaNode(0, 0), testBatch(1))
	c.Append(2, types.ReplicaNode(0, 0), testBatch(2))
	c.Block(2).PrevHash = types.Digest{0xde, 0xad}
	if err := c.Verify(); err == nil {
		t.Fatal("broken hash link verified")
	}
}

func TestBlockOutOfRange(t *testing.T) {
	c := NewChain(0)
	if c.Block(-1) != nil || c.Block(5) != nil {
		t.Fatal("out-of-range Block not nil")
	}
}

func TestCrossOrderFiltersSingleShard(t *testing.T) {
	c := NewChain(0)
	c.Append(1, types.ReplicaNode(0, 0), testBatch(1, 0))
	c.Append(2, types.ReplicaNode(0, 0), testBatch(2, 0, 1))
	c.Append(3, types.ReplicaNode(0, 0), testBatch(3, 0, 2))
	c.Append(4, types.ReplicaNode(0, 0), testBatch(4, 0))
	order := c.CrossOrder()
	if len(order) != 2 {
		t.Fatalf("CrossOrder has %d entries, want 2", len(order))
	}
	if order[0] != testBatch(2, 0, 1).Digest() || order[1] != testBatch(3, 0, 2).Digest() {
		t.Fatal("CrossOrder content or order wrong")
	}
}

// TestChainIntegrityProperty: any sequence of appended batches yields a
// verifiable chain whose height equals the number of appends, and Blocks
// returns them in order.
func TestChainIntegrityProperty(t *testing.T) {
	f := func(seeds []uint16) bool {
		c := NewChain(1)
		for i, s := range seeds {
			c.Append(types.SeqNum(i+1), types.ReplicaNode(1, 0), testBatch(uint64(s), 1))
		}
		if c.Height() != len(seeds) {
			return false
		}
		if err := c.Verify(); err != nil {
			return false
		}
		blocks := c.Blocks()
		for i := 1; i < len(blocks); i++ {
			if blocks[i].PrevHash != blocks[i-1].Hash() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPruneBoundsMemory: after a checkpoint prunes the chain, the dropped
// blocks — and crucially their batches, the bulk of the memory — are no
// longer referenced, heights and absolute indexing are preserved, and the
// retained suffix still verifies against the pruned boundary block.
func TestPruneBoundsMemory(t *testing.T) {
	c := NewChain(0)
	for i := uint64(1); i <= 10; i++ {
		c.Append(types.SeqNum(i), types.ReplicaNode(0, 0), testBatch(i))
	}
	dropped := c.Prune(8)
	if dropped != 7 {
		t.Fatalf("pruned %d blocks, want 7 (seqs 1-7)", dropped)
	}
	if c.Height() != 10 {
		t.Fatalf("height changed by pruning: %d, want 10", c.Height())
	}
	// Pruned blocks are gone from memory; the base holds no batch.
	for i := 1; i <= 6; i++ {
		if c.Block(i) != nil {
			t.Fatalf("pruned block %d still reachable", i)
		}
	}
	base, baseIdx := c.Base()
	if base.Seq != 7 || baseIdx != 7 {
		t.Fatalf("base = seq %d at index %d, want seq 7 at 7", base.Seq, baseIdx)
	}
	if base.Batch != nil {
		t.Fatal("pruned boundary block retains its batch (memory not freed)")
	}
	// Retained blocks keep absolute indexing and batches.
	for i := 8; i <= 10; i++ {
		b := c.Block(i)
		if b == nil || b.Seq != types.SeqNum(i) || b.Batch == nil {
			t.Fatalf("retained block %d damaged: %+v", i, b)
		}
	}
	if err := c.Verify(); err != nil {
		t.Fatalf("pruned chain no longer verifies: %v", err)
	}
	// Appending continues normally after pruning.
	c.Append(11, types.ReplicaNode(0, 0), testBatch(11))
	if c.Height() != 11 || c.Head().Seq != 11 {
		t.Fatal("append after prune broken")
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	// Idempotent: nothing below the boundary remains to prune.
	if again := c.Prune(8); again != 0 {
		t.Fatalf("second Prune(8) dropped %d blocks", again)
	}
}

// TestPruneStopsAtOutOfOrderBlock: cross-shard blocks can sit in the chain
// slightly out of sequence order; Prune must stop at the first retained
// block >= belowSeq rather than skip over it.
func TestPruneStopsAtOutOfOrderBlock(t *testing.T) {
	c := NewChain(0)
	c.Append(1, types.ReplicaNode(0, 0), testBatch(1))
	c.Append(3, types.ReplicaNode(0, 0), testBatch(3)) // executed early
	c.Append(2, types.ReplicaNode(0, 0), testBatch(2)) // late cross-shard
	if got := c.Prune(3); got != 1 {
		t.Fatalf("pruned %d, want 1 (stop at seq 3 even though seq 2 follows)", got)
	}
	if b := c.Block(2); b == nil || b.Seq != 3 {
		t.Fatal("block after boundary lost")
	}
}

func TestRebuildMatchesOriginal(t *testing.T) {
	c := NewChain(2)
	for i := uint64(1); i <= 6; i++ {
		c.Append(types.SeqNum(i), types.ReplicaNode(2, 0), testBatch(i, 2))
	}
	c.Prune(4)
	base, baseIdx := c.Base()
	rb := Rebuild(2, base, baseIdx, c.Blocks()[1:])
	if rb.Height() != c.Height() {
		t.Fatalf("rebuilt height %d, want %d", rb.Height(), c.Height())
	}
	if rb.Head().Hash() != c.Head().Hash() {
		t.Fatal("rebuilt head diverges")
	}
	if err := rb.Verify(); err != nil {
		t.Fatalf("rebuilt chain does not verify: %v", err)
	}
}

func TestHashCoversFields(t *testing.T) {
	b1 := &Block{Seq: 1, Digest: types.Digest{1}, TxnCount: 5}
	b2 := &Block{Seq: 1, Digest: types.Digest{1}, TxnCount: 6}
	if b1.Hash() == b2.Hash() {
		t.Fatal("hash insensitive to TxnCount")
	}
	b3 := &Block{Seq: 2, Digest: types.Digest{1}, TxnCount: 5}
	if b1.Hash() == b3.Hash() {
		t.Fatal("hash insensitive to Seq")
	}
}
