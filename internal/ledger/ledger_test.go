package ledger

import (
	"testing"
	"testing/quick"

	"ringbft/internal/types"
)

func testBatch(seed uint64, shards ...types.ShardID) *types.Batch {
	if len(shards) == 0 {
		shards = []types.ShardID{0}
	}
	return &types.Batch{
		Txns: []types.Txn{{
			ID:     types.TxnID{Client: 1, Seq: seed},
			Reads:  []types.Key{types.Key(seed)},
			Writes: []types.Key{types.Key(seed)},
			Delta:  types.Value(seed),
		}},
		Involved: shards,
	}
}

func TestGenesisAndAppend(t *testing.T) {
	c := NewChain(3)
	if c.Height() != 0 {
		t.Fatalf("fresh chain height %d, want 0", c.Height())
	}
	if c.Head().Seq != 0 {
		t.Fatal("head of fresh chain is not genesis")
	}
	b := c.Append(1, types.ReplicaNode(3, 0), testBatch(1))
	if c.Height() != 1 || c.Head() != b {
		t.Fatal("append did not advance head")
	}
	if b.PrevHash != c.Block(0).Hash() {
		t.Fatal("block not chained to genesis")
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestGenesisDistinctPerShard(t *testing.T) {
	a, b := NewChain(0), NewChain(1)
	if a.Head().Digest == b.Head().Digest {
		t.Fatal("different shards share a genesis digest")
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	c := NewChain(0)
	for i := uint64(1); i <= 5; i++ {
		c.Append(types.SeqNum(i), types.ReplicaNode(0, 0), testBatch(i))
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	// Tamper with a middle block's batch: Verify must fail.
	c.Block(2).Batch.Txns[0].Delta = 999
	if err := c.Verify(); err == nil {
		t.Fatal("tampered chain verified (immutability broken)")
	}
}

func TestVerifyDetectsBrokenLink(t *testing.T) {
	c := NewChain(0)
	c.Append(1, types.ReplicaNode(0, 0), testBatch(1))
	c.Append(2, types.ReplicaNode(0, 0), testBatch(2))
	c.Block(2).PrevHash = types.Digest{0xde, 0xad}
	if err := c.Verify(); err == nil {
		t.Fatal("broken hash link verified")
	}
}

func TestBlockOutOfRange(t *testing.T) {
	c := NewChain(0)
	if c.Block(-1) != nil || c.Block(5) != nil {
		t.Fatal("out-of-range Block not nil")
	}
}

func TestCrossOrderFiltersSingleShard(t *testing.T) {
	c := NewChain(0)
	c.Append(1, types.ReplicaNode(0, 0), testBatch(1, 0))
	c.Append(2, types.ReplicaNode(0, 0), testBatch(2, 0, 1))
	c.Append(3, types.ReplicaNode(0, 0), testBatch(3, 0, 2))
	c.Append(4, types.ReplicaNode(0, 0), testBatch(4, 0))
	order := c.CrossOrder()
	if len(order) != 2 {
		t.Fatalf("CrossOrder has %d entries, want 2", len(order))
	}
	if order[0] != testBatch(2, 0, 1).Digest() || order[1] != testBatch(3, 0, 2).Digest() {
		t.Fatal("CrossOrder content or order wrong")
	}
}

// TestChainIntegrityProperty: any sequence of appended batches yields a
// verifiable chain whose height equals the number of appends, and Blocks
// returns them in order.
func TestChainIntegrityProperty(t *testing.T) {
	f := func(seeds []uint16) bool {
		c := NewChain(1)
		for i, s := range seeds {
			c.Append(types.SeqNum(i+1), types.ReplicaNode(1, 0), testBatch(uint64(s), 1))
		}
		if c.Height() != len(seeds) {
			return false
		}
		if err := c.Verify(); err != nil {
			return false
		}
		blocks := c.Blocks()
		for i := 1; i < len(blocks); i++ {
			if blocks[i].PrevHash != blocks[i-1].Hash() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHashCoversFields(t *testing.T) {
	b1 := &Block{Seq: 1, Digest: types.Digest{1}, TxnCount: 5}
	b2 := &Block{Seq: 1, Digest: types.Digest{1}, TxnCount: 6}
	if b1.Hash() == b2.Hash() {
		t.Fatal("hash insensitive to TxnCount")
	}
	b3 := &Block{Seq: 2, Digest: types.Digest{1}, TxnCount: 5}
	if b1.Hash() == b3.Hash() {
		t.Fatal("hash insensitive to Seq")
	}
}
