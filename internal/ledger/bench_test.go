package ledger

import (
	"testing"

	"ringbft/internal/types"
)

func BenchmarkAppend100TxnBlock(b *testing.B) {
	c := NewChain(0)
	batch := &types.Batch{Involved: []types.ShardID{0}}
	for i := 0; i < 100; i++ {
		batch.Txns = append(batch.Txns, types.Txn{ID: types.TxnID{Client: 1, Seq: uint64(i)}})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Append(types.SeqNum(i+1), types.ReplicaNode(0, 0), batch)
	}
}

func BenchmarkVerifyChain1000(b *testing.B) {
	c := NewChain(0)
	for i := 0; i < 1000; i++ {
		c.Append(types.SeqNum(i+1), types.ReplicaNode(0, 0), testBatch(uint64(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}
