// Package ahl implements the AHL baseline (Dang et al., SIGMOD 2019;
// Section 2 "Designated Committee"): a reference committee — its own PBFT
// group, hosted in a single region — globally orders every cross-shard
// transaction, then drives a two-phase commit against the involved shards:
//
//  1. committee consensus orders the cst and broadcasts AHLPrepare to every
//     replica of every involved shard (committee×shard all-to-all);
//  2. each shard locally replicates the cst with PBFT (agreeing on its
//     vote) and every replica sends AHLVote back to every committee member;
//  3. the committee runs a second PBFT consensus on the decision and
//     broadcasts AHLDecision to every replica of every involved shard;
//  4. shards execute and the initiator shard's replicas answer the client.
//
// This centralizes WAN traffic at the committee's region and pays three
// PBFT consensuses plus two all-to-all exchanges per cst — the cost profile
// the paper's evaluation attributes AHL's 18× deficit to. Single-shard
// transactions run plain PBFT inside their shard, identically to RingBFT.
//
// Simplification (DESIGN.md §3): shards always vote commit — conflicting
// transactions serialize through each shard's local log instead of aborting
// — and execution uses locally available reads (AHL does not ship remote
// read values; Section 8.8).
package ahl

import (
	"bytes"
	"context"
	"encoding/binary"
	"sort"
	"time"

	"ringbft/internal/crypto"
	"ringbft/internal/metrics"
	"ringbft/internal/pbft"
	"ringbft/internal/trace"
	"ringbft/internal/types"
)

// Sender abstracts the network.
type Sender func(to types.NodeID, m *types.Message)

// decisionClient marks synthetic committee decision batches (never a real
// client identifier).
const decisionClient types.ClientID = -9

// decisionBatch encodes "the committee decided `commit` for cst d" as a
// batch the committee's PBFT engine can order: the 32-byte digest rides in
// four write keys, the verdict in Delta.
func decisionBatch(d types.Digest, commit bool) *types.Batch {
	t := types.Txn{ID: types.TxnID{Client: decisionClient, Seq: binary.BigEndian.Uint64(d[:8])}}
	for i := 0; i < 4; i++ {
		t.Writes = append(t.Writes, types.Key(binary.BigEndian.Uint64(d[i*8:])))
	}
	if commit {
		t.Delta = 1
	}
	return &types.Batch{Txns: []types.Txn{t}, Involved: []types.ShardID{types.CommitteeShard}}
}

// parseDecision reverses decisionBatch.
func parseDecision(b *types.Batch) (d types.Digest, commit bool, ok bool) {
	if len(b.Txns) != 1 || b.Txns[0].ID.Client != decisionClient || len(b.Txns[0].Writes) != 4 {
		return d, false, false
	}
	for i, k := range b.Txns[0].Writes {
		binary.BigEndian.PutUint64(d[i*8:], uint64(k))
	}
	return d, b.Txns[0].Delta == 1, true
}

// CommitteeOptions configures a reference-committee member.
type CommitteeOptions struct {
	Config     types.Config
	Self       types.NodeID
	Peers      []types.NodeID // committee members; Peers[i].Index == i
	ShardPeers [][]types.NodeID
	Auth       crypto.Authenticator
	Send       Sender
	Clock      func() time.Time

	// Metrics/Tracer enable live observability (see the equivalent fields
	// on ringbft.Options). Both optional; pure side effects.
	Metrics *metrics.Registry
	Tracer  *trace.Tracer
}

// Committee is one member of AHL's reference committee.
type Committee struct {
	cfg        types.Config
	self       types.NodeID
	peers      []types.NodeID
	shardPeers [][]types.NodeID
	auth       crypto.Authenticator
	verifier   *crypto.Verifier
	send       Sender
	clock      func() time.Time

	engine  *pbft.Engine
	tracker *pbft.CheckpointTracker

	// csts tracks cross-shard transactions through the 2PC.
	csts map[types.Digest]*committeeCst

	awaiting map[types.Digest]*pending
	proposed map[types.Digest]struct{}
	queue    []*types.Batch

	viewChanges int64

	obs *hostObs
}

type committeeCst struct {
	batch    *types.Batch
	gseq     types.SeqNum
	cert     []types.Signed
	ordered  bool
	votes    map[types.ShardID]map[types.NodeID]struct{}
	decided  bool // decision proposed/committed
	notified bool // AHLDecision broadcast
	// pendingNotify holds the decision verdict when the decision consensus
	// committed before the original batch's ordering did (see onCommitted).
	pendingNotify bool
	// lastNudge paces the retransmission of an undecided cst's AHLPrepare
	// (the one-shot broadcast is lossy; without re-solicitation a vote
	// quorum starved by the network never forms).
	lastNudge time.Time
}

type pending struct {
	batch *types.Batch
	since time.Time
}

// NewCommittee creates a committee member.
func NewCommittee(opts CommitteeOptions) *Committee {
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	verifier := crypto.NewVerifier(opts.Auth, opts.Config.VerifyWorkers)
	c := &Committee{
		cfg:        opts.Config,
		self:       opts.Self,
		peers:      opts.Peers,
		shardPeers: opts.ShardPeers,
		auth:       opts.Auth,
		verifier:   verifier,
		send:       opts.Send,
		clock:      opts.Clock,
		csts:       make(map[types.Digest]*committeeCst),
		awaiting:   make(map[types.Digest]*pending),
		proposed:   make(map[types.Digest]struct{}),
		tracker:    pbft.NewCheckpointTracker(opts.Config.CheckpointInterval),
	}
	c.obs = newHostObs(opts.Metrics, opts.Tracer, types.CommitteeShard, opts.Self)
	c.engine = pbft.New(types.CommitteeShard, opts.Self, opts.Peers, opts.Auth, pbft.Callbacks{
		Send:      func(to types.NodeID, m *types.Message) { c.send(to, m) },
		Committed: c.onCommitted,
		ViewChanged: func(types.View) {
			c.viewChanges++
			c.obs.incViewChanges()
			c.repropose()
		},
	}, pbft.Options{Clock: opts.Clock, ViewTimeout: opts.Config.LocalTimeout, Verifier: verifier, OnPhase: c.obs.phase(types.CommitteeShard)})
	return c
}

// ViewChangeCount reports committee view changes (read after Run returns).
func (c *Committee) ViewChangeCount() int64 { return c.viewChanges }

// RetransmitCount reports retransmissions (none at the committee).
func (c *Committee) RetransmitCount() int64 { return 0 }

// Run drives the member until ctx is cancelled.
func (c *Committee) Run(ctx context.Context, inbox <-chan *types.Message) {
	tickEvery := c.cfg.LocalTimeout / 4
	if tickEvery <= 0 {
		tickEvery = 25 * time.Millisecond
	}
	ticker := time.NewTicker(tickEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case m, ok := <-inbox:
			if !ok {
				return
			}
			c.HandleMessage(m)
		case <-ticker.C:
			c.HandleTick(c.clock())
		}
	}
}

// HandleMessage dispatches one inbound message.
func (c *Committee) HandleMessage(m *types.Message) {
	if m == nil {
		return
	}
	switch m.Type {
	case types.MsgClientRequest:
		c.onClientRequest(m)
	case types.MsgAHLVote:
		c.onVote(m)
	default:
		c.engine.OnMessage(m)
		c.tryProposeQueued()
	}
}

// HandleTick drives the committee watchdog.
func (c *Committee) HandleTick(now time.Time) {
	c.engine.Tick(now)
	c.tryProposeQueued()
	c.obs.sample(len(c.queue), 0)
	if c.engine.InViewChange() {
		return
	}
	expired := false
	// Sorted-digest order: the re-proposal below assigns sequence numbers,
	// which must not depend on map iteration order.
	for _, d := range types.SortedDigestKeys(c.awaiting) {
		p := c.awaiting[d]
		if now.Sub(p.since) > c.cfg.LocalTimeout {
			p.since = now
			expired = true
			if c.engine.IsPrimary() {
				// An awaiting entry that expired on the primary was lost in
				// flight. Decision batches have no client to retry them, so
				// the proposed latch — set when a PRIOR primacy of this
				// member proposed it into a view that died — would dedupe
				// the re-proposal forever: every member latches after
				// enough view changes and the cst wedges with no recovery
				// path (found by internal/chaos, loss-storm schedules).
				// Clear the latch and propose again; a double commit is
				// absorbed by the ordered/notified latches in onCommitted.
				delete(c.proposed, d)
				c.propose(p.batch, d)
			}
		}
	}
	if expired && !c.engine.IsPrimary() {
		c.engine.StartViewChange(c.engine.View() + 1)
		return
	}
	if oldest, ok := c.engine.OldestUncommitted(); ok && now.Sub(oldest) > c.cfg.LocalTimeout {
		c.engine.StartViewChange(c.engine.View() + 1)
	}
	// Retransmit AHLPrepare for ordered-but-undecided csts: the phase-1
	// broadcast is one-shot, so on a lossy network a vote quorum may never
	// form without re-solicitation (found by internal/chaos, loss-storm
	// schedules — AHL executes strictly in order, so one starved cst
	// wedges every shard it involves).
	for _, d := range types.SortedDigestKeys(c.csts) {
		cst := c.csts[d]
		if cst.ordered && !cst.decided && now.Sub(cst.lastNudge) > c.cfg.RemoteTimeout {
			cst.lastNudge = now
			c.broadcastToShards(cst.batch, &types.Message{
				Type: types.MsgAHLPrepare, From: c.self, Shard: types.CommitteeShard,
				Seq: cst.gseq, Digest: cst.batch.Digest(), Batch: cst.batch, Cert: cst.cert,
			})
		}
	}
}

func (c *Committee) onClientRequest(m *types.Message) {
	b := m.Batch
	if b == nil || len(b.Txns) == 0 || !b.IsCrossShard() {
		return
	}
	d := b.Digest()
	cst, ok := c.csts[d]
	if ok && cst.notified {
		// Already decided; re-broadcast the decision in case it was lost
		// (shards answer the client once they execute).
		c.broadcastToShards(cst.batch, &types.Message{
			Type: types.MsgAHLDecision, From: c.self, Shard: types.CommitteeShard,
			Seq: cst.gseq, Digest: d, Decision: true,
		})
		return
	}
	if ok && cst.ordered {
		// Ordered but votes/decision still in flight: re-broadcast the
		// prepare so shards resend votes.
		c.broadcastToShards(cst.batch, &types.Message{
			Type: types.MsgAHLPrepare, From: c.self, Shard: types.CommitteeShard,
			Seq: cst.gseq, Digest: d, Batch: cst.batch, Cert: cst.cert,
		})
		return
	}
	c.enqueue(b, d)
}

func (c *Committee) enqueue(b *types.Batch, d types.Digest) {
	if _, done := c.proposed[d]; done {
		return
	}
	if _, ok := c.awaiting[d]; !ok {
		c.awaiting[d] = &pending{batch: b, since: c.clock()}
	}
	if c.engine.IsPrimary() && !c.engine.InViewChange() {
		c.propose(b, d)
	}
}

func (c *Committee) propose(b *types.Batch, d types.Digest) {
	if _, done := c.proposed[d]; done {
		return
	}
	// Pipelined consensus: the same drain discipline as internal/ringbft —
	// the primary keeps at most PipelineDepth proposals in flight and
	// parks the rest for tryProposeQueued (0 = engine window only).
	if c.cfg.PipelineDepth > 0 && c.engine.InFlight() >= c.cfg.PipelineDepth {
		c.queue = append(c.queue, b)
		return
	}
	if _, err := c.engine.Propose(b); err != nil {
		c.queue = append(c.queue, b)
		return
	}
	c.proposed[d] = struct{}{}
}

func (c *Committee) tryProposeQueued() {
	if !c.engine.IsPrimary() || c.engine.InViewChange() {
		return
	}
	for len(c.queue) > 0 {
		if c.cfg.PipelineDepth > 0 && c.engine.InFlight() >= c.cfg.PipelineDepth {
			return // pipeline window full: a commit frees the next slot
		}
		b := c.queue[0]
		d := b.Digest()
		if _, done := c.proposed[d]; done {
			c.queue = c.queue[1:]
			continue
		}
		if _, err := c.engine.Propose(b); err != nil {
			return
		}
		c.proposed[d] = struct{}{}
		c.queue = c.queue[1:]
	}
}

func (c *Committee) repropose() {
	if !c.engine.IsPrimary() {
		return
	}
	// Sorted-digest order: sequence assignment must not depend on map
	// iteration order, or identically seeded runs diverge.
	ds := make([]types.Digest, 0, len(c.awaiting))
	for d := range c.awaiting {
		ds = append(ds, d)
	}
	sort.Slice(ds, func(i, j int) bool { return bytes.Compare(ds[i][:], ds[j][:]) < 0 })
	for _, d := range ds {
		if _, done := c.proposed[d]; !done {
			c.propose(c.awaiting[d].batch, d)
		}
	}
	c.tryProposeQueued()
}

// onCommitted handles both committee consensus outcomes: a freshly ordered
// cst (phase 1: broadcast AHLPrepare) and a committed decision batch
// (phase 3: broadcast AHLDecision).
func (c *Committee) onCommitted(seq types.SeqNum, batch *types.Batch, cert []types.Signed) {
	c.tracker.Committed(c.engine, seq, batch)
	if d, commit, ok := parseDecision(batch); ok {
		cst, ok := c.csts[d]
		if !ok || cst.notified {
			return
		}
		cst.decided = true
		delete(c.awaiting, batch.Digest())
		if !cst.ordered {
			// Consensus results can commit out of order: the decision may
			// land before this member processes the original batch's
			// ordering, in which case the batch content (and its involved
			// shards) is not known yet. Defer the broadcast until it is.
			cst.pendingNotify = commit
			return
		}
		cst.notified = true
		c.broadcastToShards(cst.batch, &types.Message{
			Type: types.MsgAHLDecision, From: c.self, Shard: types.CommitteeShard,
			Seq: cst.gseq, Digest: d, Decision: commit,
		})
		return
	}
	if len(batch.Txns) == 0 {
		return
	}
	d := batch.Digest()
	delete(c.awaiting, d)
	c.proposed[d] = struct{}{}
	cst, ok := c.csts[d]
	if !ok {
		cst = &committeeCst{votes: make(map[types.ShardID]map[types.NodeID]struct{})}
		c.csts[d] = cst
	}
	cst.batch = batch
	cst.gseq = seq
	cst.cert = cert
	cst.ordered = true
	cst.lastNudge = c.clock() // the ordering broadcast below counts as attempt one
	// Phase 1 of 2PC: prepare at every replica of every involved shard. The
	// commit certificate makes the order transferable.
	c.broadcastToShards(batch, &types.Message{
		Type: types.MsgAHLPrepare, From: c.self, Shard: types.CommitteeShard,
		Seq: seq, Digest: d, Batch: batch, Cert: cert,
	})
	if cst.decided && !cst.notified {
		// The decision committed before the ordering did (deferred above).
		cst.notified = true
		c.broadcastToShards(cst.batch, &types.Message{
			Type: types.MsgAHLDecision, From: c.self, Shard: types.CommitteeShard,
			Seq: cst.gseq, Digest: d, Decision: cst.pendingNotify,
		})
		return
	}
	c.maybeDecide(cst)
}

// broadcastToShards signs m and sends it to every replica of every shard
// involved in b.
func (c *Committee) broadcastToShards(b *types.Batch, m *types.Message) {
	m.Sig = crypto.SignMessage(c.auth, m)
	for _, s := range b.Involved {
		if int(s) < 0 || int(s) >= len(c.shardPeers) {
			continue
		}
		for _, to := range c.shardPeers[s] {
			c.send(to, m)
		}
	}
}

// onVote records one shard replica's 2PC vote.
func (c *Committee) onVote(m *types.Message) {
	if m.From.Kind != types.KindReplica {
		return
	}
	if crypto.VerifyMessageSig(c.auth, m) != nil {
		return
	}
	cst, ok := c.csts[m.Digest]
	if !ok {
		cst = &committeeCst{votes: make(map[types.ShardID]map[types.NodeID]struct{})}
		c.csts[m.Digest] = cst
	}
	if cst.notified {
		// The voter missed the decision broadcast (its shard's execution
		// pipeline is blocked on this cst); answer it directly.
		reply := &types.Message{
			Type: types.MsgAHLDecision, From: c.self, Shard: types.CommitteeShard,
			Seq: cst.gseq, Digest: m.Digest, Decision: true,
		}
		reply.Sig = crypto.SignMessage(c.auth, reply)
		c.send(m.From, reply)
		return
	}
	if !m.Decision {
		return // commit-only simplification; see package comment
	}
	sv, ok := cst.votes[m.From.Shard]
	if !ok {
		sv = make(map[types.NodeID]struct{})
		cst.votes[m.From.Shard] = sv
	}
	sv[m.From] = struct{}{}
	c.maybeDecide(cst)
}

// maybeDecide starts the decision consensus once f+1 replicas of every
// involved shard voted commit.
func (c *Committee) maybeDecide(cst *committeeCst) {
	if !cst.ordered || cst.decided {
		return
	}
	for _, s := range cst.batch.Involved {
		if len(cst.votes[s]) < c.cfg.F()+1 {
			return
		}
	}
	cst.decided = true
	db := decisionBatch(cst.batch.Digest(), true)
	c.enqueue(db, db.Digest())
}

func clientOf(b *types.Batch) types.NodeID {
	return types.ClientNode(b.Txns[0].ID.Client)
}
