package ahl

import (
	"testing"
	"testing/quick"
	"time"

	"ringbft/internal/crypto"
	"ringbft/internal/types"
)

func TestDecisionBatchRoundTrip(t *testing.T) {
	f := func(raw [32]byte, commit bool) bool {
		d := types.Digest(raw)
		b := decisionBatch(d, commit)
		got, gotCommit, ok := parseDecision(b)
		return ok && got == d && gotCommit == commit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseDecisionRejectsOrdinaryBatches(t *testing.T) {
	b := &types.Batch{Txns: []types.Txn{{ID: types.TxnID{Client: 1, Seq: 1}, Writes: []types.Key{1, 2, 3, 4}}}}
	if _, _, ok := parseDecision(b); ok {
		t.Fatal("ordinary batch parsed as decision")
	}
	empty := &types.Batch{}
	if _, _, ok := parseDecision(empty); ok {
		t.Fatal("empty batch parsed as decision")
	}
}

func TestDecisionBatchDigestsDistinct(t *testing.T) {
	d1, d2 := types.Digest{1}, types.Digest{2}
	if decisionBatch(d1, true).Digest() == decisionBatch(d2, true).Digest() {
		t.Fatal("decision batches for different csts collide")
	}
	if decisionBatch(d1, true).Digest() == decisionBatch(d1, false).Digest() {
		t.Fatal("commit and abort decisions collide")
	}
}

// deterministic 2-shard + committee cluster wired through a pump queue.
type ahlCluster struct {
	t       *testing.T
	cfg     types.Config
	members map[types.NodeID]interface {
		HandleMessage(*types.Message)
		HandleTick(time.Time)
	}
	queue  []routedMsg
	client map[types.NodeID][]*types.Message
	now    time.Time
}

type routedMsg struct {
	to types.NodeID
	m  *types.Message
}

func newAHLCluster(t *testing.T, z, n int) *ahlCluster {
	t.Helper()
	cfg := types.DefaultConfig(z, n)
	c := &ahlCluster{
		t: t, cfg: cfg, now: time.Unix(0, 0),
		members: make(map[types.NodeID]interface {
			HandleMessage(*types.Message)
			HandleTick(time.Time)
		}),
		client: make(map[types.NodeID][]*types.Message),
	}
	kg := crypto.NewKeygen(9)
	committee := make([]types.NodeID, n)
	for i := range committee {
		committee[i] = types.CommitteeNode(i)
		kg.Register(committee[i])
	}
	shardPeers := make([][]types.NodeID, z)
	for s := 0; s < z; s++ {
		shardPeers[s] = make([]types.NodeID, n)
		for i := 0; i < n; i++ {
			shardPeers[s][i] = types.ReplicaNode(types.ShardID(s), i)
			kg.Register(shardPeers[s][i])
		}
	}
	send := func() Sender {
		return func(to types.NodeID, m *types.Message) {
			c.queue = append(c.queue, routedMsg{to, m})
		}
	}
	clock := func() time.Time { return c.now }
	for i, id := range committee {
		ring, _ := kg.Ring(id)
		c.members[id] = NewCommittee(CommitteeOptions{
			Config: cfg, Self: id, Peers: committee, ShardPeers: shardPeers,
			Auth: ring, Send: send(), Clock: clock,
		})
		_ = i
	}
	for s := 0; s < z; s++ {
		for i := 0; i < n; i++ {
			id := shardPeers[s][i]
			ring, _ := kg.Ring(id)
			r := NewReplica(ReplicaOptions{
				Config: cfg, Shard: types.ShardID(s), Self: id,
				Peers: shardPeers[s], Committee: committee,
				Auth: ring, Send: send(), Clock: clock,
			})
			r.Preload(64)
			c.members[id] = r
		}
	}
	return c
}

func (c *ahlCluster) pump() {
	for guard := 0; len(c.queue) > 0; guard++ {
		if guard > 100000 {
			c.t.Fatal("pump did not quiesce")
		}
		q := c.queue
		c.queue = nil
		for _, r := range q {
			if r.to.Kind == types.KindClient {
				c.client[r.to] = append(c.client[r.to], r.m)
				continue
			}
			if m, ok := c.members[r.to]; ok {
				m.HandleMessage(r.m)
			}
		}
	}
}

func (c *ahlCluster) responses(client types.ClientID, d types.Digest) int {
	n := 0
	for _, m := range c.client[types.ClientNode(client)] {
		if m.Type == types.MsgResponse && m.Digest == d {
			n++
		}
	}
	return n
}

func mkBatch(client types.ClientID, z int, shards []types.ShardID, keyIdx uint64) *types.Batch {
	var tx types.Txn
	tx.ID = types.TxnID{Client: client, Seq: 1}
	tx.Delta = 3
	for _, s := range shards {
		k := types.Key(uint64(s) + keyIdx*uint64(z))
		tx.Reads = append(tx.Reads, k)
		tx.Writes = append(tx.Writes, k)
	}
	return &types.Batch{Txns: []types.Txn{tx}, Involved: shards}
}

func TestAHLSingleShard(t *testing.T) {
	c := newAHLCluster(t, 2, 4)
	b := mkBatch(1, 2, []types.ShardID{1}, 2)
	c.queue = append(c.queue, routedMsg{types.ReplicaNode(1, 0), &types.Message{
		Type: types.MsgClientRequest, From: types.ClientNode(1), Batch: b, Digest: b.Digest(),
	}})
	c.pump()
	if got := c.responses(1, b.Digest()); got < c.cfg.F()+1 {
		t.Fatalf("client got %d responses, want >= %d", got, c.cfg.F()+1)
	}
}

// TestAHLCrossShard2PC: a cst goes committee-order -> shard vote -> decision
// -> execution, and the initiator shard answers the client.
func TestAHLCrossShard2PC(t *testing.T) {
	c := newAHLCluster(t, 3, 4)
	b := mkBatch(1, 3, []types.ShardID{0, 2}, 3)
	c.queue = append(c.queue, routedMsg{types.CommitteeNode(0), &types.Message{
		Type: types.MsgClientRequest, From: types.ClientNode(1), Batch: b, Digest: b.Digest(),
	}})
	c.pump()
	if got := c.responses(1, b.Digest()); got < c.cfg.F()+1 {
		t.Fatalf("client got %d responses, want >= %d", got, c.cfg.F()+1)
	}
	// Both involved shards appended the block; the uninvolved one did not.
	for id, m := range c.members {
		r, ok := m.(*Replica)
		if !ok {
			continue
		}
		want := 0
		if id.Shard == 0 || id.Shard == 2 {
			want = 1
		}
		if got := r.Chain().Height(); got != want {
			t.Fatalf("replica %v height %d, want %d", id, got, want)
		}
	}
}

func TestAHLDuplicateClientRequestReDelivers(t *testing.T) {
	c := newAHLCluster(t, 2, 4)
	b := mkBatch(1, 2, []types.ShardID{0, 1}, 4)
	req := &types.Message{Type: types.MsgClientRequest, From: types.ClientNode(1), Batch: b, Digest: b.Digest()}
	c.queue = append(c.queue, routedMsg{types.CommitteeNode(0), req})
	c.pump()
	first := c.responses(1, b.Digest())
	if first == 0 {
		t.Fatal("initial 2PC failed")
	}
	// Retransmission must re-broadcast the decision; shards answer from the
	// executed cache rather than re-executing.
	h := heightOf(t, c, types.ReplicaNode(0, 1))
	c.queue = append(c.queue, routedMsg{types.CommitteeNode(0), req})
	c.pump()
	if heightOf(t, c, types.ReplicaNode(0, 1)) != h {
		t.Fatal("duplicate request re-executed")
	}
}

func heightOf(t *testing.T, c *ahlCluster, id types.NodeID) int {
	t.Helper()
	r, ok := c.members[id].(*Replica)
	if !ok {
		t.Fatalf("%v is not a replica", id)
	}
	return r.Chain().Height()
}
