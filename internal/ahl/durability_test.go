package ahl

import (
	"testing"

	"ringbft/internal/crypto"
	"ringbft/internal/types"
	"ringbft/internal/wal"
)

// newDurableReplica builds one AHL shard replica backed by fs, recovering
// whatever is already there.
func newDurableReplica(t *testing.T, fs *wal.MemFS) *Replica {
	t.Helper()
	cfg := types.DefaultConfig(1, 4)
	cfg.CheckpointInterval = 4
	cfg.SnapshotInterval = 4
	self := types.ReplicaNode(0, 0)
	peers := make([]types.NodeID, 4)
	kg := crypto.NewKeygen(5)
	for i := range peers {
		peers[i] = types.ReplicaNode(0, i)
		kg.Register(peers[i])
	}
	ring, err := kg.Ring(self)
	if err != nil {
		t.Fatal(err)
	}
	m, rec, err := wal.OpenManager(wal.ManagerOptions{FS: fs, Dir: "ahl-r0"})
	if err != nil {
		t.Fatal(err)
	}
	r := NewReplica(ReplicaOptions{
		Config: cfg, Shard: 0, Self: self, Peers: peers,
		Auth: ring, Send: func(types.NodeID, *types.Message) {},
		Durability: m, Recovered: rec,
	})
	r.Preload(64)
	return r
}

// TestCrashRestartRecoversExecution: an AHL replica killed after executing
// a run of batches rebuilds the identical store, ledger, and execution
// watermark from its WAL + snapshot, and does not re-execute recovered
// batches when their commits are replayed.
func TestCrashRestartRecoversExecution(t *testing.T) {
	fs := wal.NewMemFS()
	r := newDurableReplica(t, fs)
	batches := make([]*types.Batch, 0, 10)
	for i := 0; i < 10; i++ {
		b := &types.Batch{
			Txns: []types.Txn{{
				ID:     types.TxnID{Client: types.ClientID(i + 1), Seq: 1},
				Reads:  []types.Key{types.Key(i % 4)},
				Writes: []types.Key{types.Key(i % 4)},
				Delta:  7,
			}},
			Involved: []types.ShardID{0},
		}
		batches = append(batches, b)
		r.onCommitted(types.SeqNum(i+1), b, nil)
	}
	wantDigest := r.Store().Digest()
	wantHeight := r.Chain().Height()
	if r.execNext != 10 {
		t.Fatalf("execNext = %d, want 10", r.execNext)
	}
	// Snapshots must have pruned the chain below the last boundary.
	if _, baseIdx := r.Chain().Base(); baseIdx == 0 {
		t.Fatal("chain never pruned despite snapshots")
	}

	// Crash (abandon without Close) and restart from the same filesystem.
	r2 := newDurableReplica(t, fs)
	if r2.Store().Digest() != wantDigest {
		t.Fatal("recovered store diverges")
	}
	if r2.Chain().Height() != wantHeight {
		t.Fatalf("recovered height %d, want %d", r2.Chain().Height(), wantHeight)
	}
	if err := r2.Chain().Verify(); err != nil {
		t.Fatalf("recovered chain does not verify: %v", err)
	}
	if r2.execNext != 10 {
		t.Fatalf("recovered execNext = %d, want 10", r2.execNext)
	}
	// Batches above the prune boundary keep their ordered/executed marks,
	// so replayed commits cannot re-execute them (older batches were
	// pruned with their checkpoint — their clients were answered long ago).
	_, baseIdx := r2.Chain().Base()
	for i, b := range batches {
		if i+1 <= baseIdx {
			continue
		}
		if _, ok := r2.proposed[b.Digest()]; !ok {
			t.Fatalf("retained batch %d not marked proposed after recovery", i)
		}
		if _, ok := r2.executed[b.Digest()]; !ok {
			t.Fatalf("retained batch %d results lost in recovery", i)
		}
	}
	// Execution continues past the recovered watermark.
	b := &types.Batch{
		Txns:     []types.Txn{{ID: types.TxnID{Client: 99, Seq: 1}, Reads: []types.Key{1}, Writes: []types.Key{1}, Delta: 3}},
		Involved: []types.ShardID{0},
	}
	r2.onCommitted(11, b, nil)
	if r2.execNext != 11 {
		t.Fatalf("post-recovery execution stalled: execNext = %d", r2.execNext)
	}
}
