package ahl

import (
	"bytes"
	"context"
	"sort"
	"time"

	"ringbft/internal/crypto"
	"ringbft/internal/evidence"
	"ringbft/internal/ledger"
	"ringbft/internal/metrics"
	"ringbft/internal/pbft"
	"ringbft/internal/sched"
	"ringbft/internal/store"
	"ringbft/internal/trace"
	"ringbft/internal/types"
	"ringbft/internal/wal"
)

// ReplicaOptions configures an AHL shard replica.
type ReplicaOptions struct {
	Config    types.Config
	Shard     types.ShardID
	Self      types.NodeID
	Peers     []types.NodeID
	Committee []types.NodeID
	Auth      crypto.Authenticator
	Send      Sender
	Clock     func() time.Time

	// Durability/Recovered come from wal.OpenManager: executed blocks are
	// WAL-logged, snapshots cut every SnapshotInterval executed sequences,
	// and a restarted replica resumes from the recovered state. AHL has no
	// peer state transfer — a gap replica stays behind, like the paper's
	// baseline — so durability here covers crash-restart only.
	Durability *wal.Manager
	Recovered  *wal.Recovered

	// Evidence is the misbehavior evidence log (nil = fresh in-memory log).
	Evidence *evidence.Log

	// Metrics/Tracer enable live observability (see the equivalent fields
	// on ringbft.Options). Both optional; pure side effects.
	Metrics *metrics.Registry
	Tracer  *trace.Tracer
}

// Replica is one AHL shard replica: plain PBFT for single-shard
// transactions; for cross-shard transactions it replicates the
// committee-ordered batch locally (the vote consensus), votes back to the
// committee, and executes once the committee's decision arrives.
type Replica struct {
	cfg       types.Config
	shard     types.ShardID
	self      types.NodeID
	peers     []types.NodeID
	committee []types.NodeID
	auth      crypto.Authenticator
	verifier  *crypto.Verifier
	send      Sender
	clock     func() time.Time

	engine  *pbft.Engine
	tracker *pbft.CheckpointTracker
	kv      *store.KV
	chain   *ledger.Chain
	exec    *sched.Executor

	execNext types.SeqNum
	entries  map[types.SeqNum]*entry

	// cross-shard 2PC state by digest.
	csts     map[types.Digest]*replicaCst
	executed map[types.Digest][]types.Value

	awaiting map[types.Digest]*pending
	proposed map[types.Digest]struct{}
	queue    []*types.Batch

	dur       *wal.Manager
	rec       *wal.Recovered
	snapEvery types.SeqNum
	lastSnap  types.SeqNum

	// lastVC paces the awaiting-proposal watchdog: each installed view
	// gets a full LocalTimeout before the next view-change demand (see the
	// equivalent note in internal/ringbft).
	lastVC time.Time

	// ev is the misbehavior evidence log (always non-nil; see
	// internal/evidence).
	ev *evidence.Log

	viewChanges int64

	obs *hostObs
}

type entry struct {
	seq   types.SeqNum
	batch *types.Batch
}

type replicaCst struct {
	batch     *types.Batch
	prepares  map[types.NodeID]struct{} // committee members whose AHLPrepare we saw
	accepted  bool
	voted     bool
	decisions map[types.NodeID]struct{}
	decided   bool
	// cert is the committee's commit certificate from the first verified
	// AHLPrepare: the justification for replicating this cross-shard batch
	// locally, carried into view-change P-set proofs so a NewView can prove
	// it to replicas the prepare broadcast never reached.
	cert []types.Signed
	// lastNudge paces head-of-line vote retransmission (see HandleTick).
	lastNudge time.Time
}

// NewReplica creates an AHL shard replica.
func NewReplica(opts ReplicaOptions) *Replica {
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	verifier := crypto.NewVerifier(opts.Auth, opts.Config.VerifyWorkers)
	ev := opts.Evidence
	if ev == nil {
		ev = evidence.NewMemory()
	}
	r := &Replica{
		cfg:       opts.Config,
		shard:     opts.Shard,
		self:      opts.Self,
		peers:     opts.Peers,
		committee: opts.Committee,
		auth:      opts.Auth,
		verifier:  verifier,
		send:      opts.Send,
		clock:     opts.Clock,
		kv:        store.NewKV(),
		chain:     ledger.NewChain(opts.Shard),
		exec:      sched.New(opts.Config.ExecWorkers),
		entries:   make(map[types.SeqNum]*entry),
		csts:      make(map[types.Digest]*replicaCst),
		executed:  make(map[types.Digest][]types.Value),
		awaiting:  make(map[types.Digest]*pending),
		proposed:  make(map[types.Digest]struct{}),
		tracker:   pbft.NewCheckpointTracker(opts.Config.CheckpointInterval),
		dur:       opts.Durability,
		rec:       opts.Recovered,
		snapEvery: opts.Config.SnapshotInterval,
		ev:        ev,
	}
	if r.snapEvery <= 0 {
		r.snapEvery = opts.Config.CheckpointInterval
	}
	r.obs = newHostObs(opts.Metrics, opts.Tracer, opts.Shard, opts.Self)
	r.engine = pbft.New(opts.Shard, opts.Self, opts.Peers, opts.Auth, pbft.Callbacks{
		Send:      func(to types.NodeID, m *types.Message) { r.send(to, m) },
		Committed: r.onCommitted,
		ViewChanged: func(types.View) {
			r.viewChanges++
			r.obs.incViewChanges()
			r.lastVC = r.clock()
			r.repropose()
		},
		// AHL's analogue of RingBFT's Forward gate: a cross-shard batch may
		// be replicated locally only once the committee's AHLPrepare
		// certificate vouches for it. Without this a Byzantine shard primary
		// commits a cst the committee never ordered — it blocks drainExec
		// forever (no decision will ever arrive for it).
		Justify: func(b *types.Batch) bool { return r.justified(b) },
		Justification: func(b *types.Batch) []types.Signed {
			if b == nil || !b.IsCrossShard() {
				return nil
			}
			if cs, ok := r.csts[b.Digest()]; ok {
				return cs.cert
			}
			return nil
		},
		VerifyJustification: func(b *types.Batch, just []types.Signed) bool {
			if b == nil || !b.IsCrossShard() || len(just) == 0 {
				return false
			}
			return pbft.VerifyCert(r.verifier, types.CommitteeShard, b.Digest(), just, r.cfg.NF()) == nil
		},
		Equivocation: func(first, second *types.Message) {
			r.ev.Add(evidence.Record{
				Kind: evidence.KindEquivocation, Accused: first.From,
				Shard: r.shard, View: first.View, Seq: first.Seq,
				First: evidence.MsgOf(first), Second: evidence.MsgOf(second),
			})
		},
		UnjustifiedNewView: func(m *types.Message, p types.PreparedProof) {
			r.ev.Add(evidence.Record{
				Kind: evidence.KindUnjustifiedNewView, Accused: m.From,
				Shard: r.shard, View: m.View, Seq: p.Seq,
				First: evidence.MsgOf(m),
				Second: evidence.Msg{
					From: m.From, Type: types.MsgPrePrepare, Shard: r.shard,
					View: p.View, Seq: p.Seq, Digest: p.Digest,
				},
				Transferable: true,
			})
		},
	}, pbft.Options{Clock: opts.Clock, ViewTimeout: opts.Config.LocalTimeout, Verifier: verifier, OnPhase: r.obs.phase(opts.Shard)})
	return r
}

// justified reports whether batch b may enter local consensus: cross-shard
// batches need the committee's AHLPrepare acceptance (f+1 members, verified
// certificate — see onPrepare). Single-shard batches always pass.
func (r *Replica) justified(b *types.Batch) bool {
	if b == nil || !b.IsCrossShard() {
		return true
	}
	cs, ok := r.csts[b.Digest()]
	return ok && cs.accepted
}

// Evidence returns the replica's misbehavior evidence log.
func (r *Replica) Evidence() *evidence.Log { return r.ev }

// Preload installs this shard's store partition, then applies any state
// recovered from disk (durable replicas).
func (r *Replica) Preload(records int) {
	r.kv.Preload(r.shard, r.cfg.Shards, records)
	if r.dur != nil && r.rec != nil && !r.rec.Empty() {
		r.applyRecovered(r.rec)
	}
	r.rec = nil
}

// applyRecovered restores the store, ledger, and execution watermark from
// a snapshot plus the WAL tail (wal.ApplySequential — AHL executes
// strictly in sequence order).
func (r *Replica) applyRecovered(rec *wal.Recovered) {
	st := rec.ApplySequential(r.kv, r.chain, r.shard, r.cfg.Shards, func(d types.Digest, res []types.Value) {
		r.executed[d] = res
		r.proposed[d] = struct{}{}
	})
	r.chain = st.Chain
	r.execNext = st.ExecNext
	r.lastSnap = st.LastSnap
	if st.View > 0 {
		r.engine.ForceView(st.View)
	}
	r.engine.ResumeAt(r.execNext, r.execNext+1)
}

// logExecuted durably records an executed block and cuts a snapshot every
// SnapshotInterval executed sequences, pruning the in-memory chain and
// garbage-collecting covered WAL segments.
func (r *Replica) logExecuted(seq types.SeqNum, primary types.NodeID, batch *types.Batch, results []types.Value) {
	if r.dur == nil {
		return
	}
	_ = r.dur.LogBlock(seq, primary, batch, results)
	if r.snapEvery > 0 && seq >= r.lastSnap+r.snapEvery {
		r.chain.Prune(seq)
		snap := wal.SequentialSnapshot(r.shard, seq, r.engine.View(), r.kv, r.chain,
			func(d types.Digest) []types.Value { return r.executed[d] })
		if r.dur.SaveSnapshot(snap) == nil {
			r.lastSnap = seq
		}
	}
}

// Chain returns the replica's ledger.
func (r *Replica) Chain() *ledger.Chain { return r.chain }

// ExecutedThrough returns the executed-prefix watermark (AHL executes
// strictly in local sequence order). Call only after Run returns.
func (r *Replica) ExecutedThrough() types.SeqNum { return r.execNext }

// ExecutedResults returns a deterministic hash of the cached execution
// results per executed batch digest, for cross-replica chaos checkers. Call
// only after Run returns.
func (r *Replica) ExecutedResults() map[types.Digest]uint64 {
	out := make(map[types.Digest]uint64, len(r.executed))
	for d, vals := range r.executed {
		out[d] = types.HashValues(vals)
	}
	return out
}

// Store returns the replica's key-value partition.
func (r *Replica) Store() *store.KV { return r.kv }

// ViewChangeCount reports installed view changes (read after Run returns).
func (r *Replica) ViewChangeCount() int64 { return r.viewChanges }

// RetransmitCount reports retransmissions (none at AHL replicas).
func (r *Replica) RetransmitCount() int64 { return 0 }

// Run drives the replica until ctx is cancelled.
func (r *Replica) Run(ctx context.Context, inbox <-chan *types.Message) {
	tickEvery := r.cfg.LocalTimeout / 4
	if tickEvery <= 0 {
		tickEvery = 25 * time.Millisecond
	}
	ticker := time.NewTicker(tickEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case m, ok := <-inbox:
			if !ok {
				return
			}
			r.HandleMessage(m)
		case <-ticker.C:
			r.HandleTick(r.clock())
		}
	}
}

// HandleMessage dispatches one inbound message.
func (r *Replica) HandleMessage(m *types.Message) {
	if m == nil {
		return
	}
	switch m.Type {
	case types.MsgClientRequest:
		r.onClientRequest(m)
	case types.MsgAHLPrepare:
		r.onPrepare(m)
	case types.MsgAHLDecision:
		r.onDecision(m)
	default:
		r.engine.OnMessage(m)
		r.tryProposeQueued()
	}
}

// HandleTick drives the watchdog.
func (r *Replica) HandleTick(now time.Time) {
	r.engine.Tick(now)
	r.tryProposeQueued()
	r.obs.sample(len(r.queue), r.ev.Len())
	if r.engine.InViewChange() {
		return
	}
	if now.Sub(r.lastVC) > r.cfg.LocalTimeout {
		expired := false
		// Sorted-digest order: the re-proposal below assigns sequence
		// numbers, which must not depend on map iteration order.
		for _, d := range types.SortedDigestKeys(r.awaiting) {
			p := r.awaiting[d]
			if now.Sub(p.since) > r.cfg.LocalTimeout {
				p.since = now
				// Unjustified entries (committee certificate still in
				// flight) re-arm without escalating: no primary can propose
				// them yet, so view-changing cannot help.
				if !r.justified(p.batch) {
					continue
				}
				expired = true
				if r.engine.IsPrimary() {
					// The proposed latch may date from a previous primacy
					// whose proposal died with its view; after enough view
					// changes every member is latched and the batch can
					// never be proposed again (found by internal/chaos,
					// loss-storm schedules). Clear it and re-propose.
					delete(r.proposed, d)
					r.propose(p.batch, d)
				}
			}
		}
		if expired && !r.engine.IsPrimary() {
			r.engine.StartViewChange(r.engine.View() + 1)
			return
		}
	}
	if oldest, ok := r.engine.OldestUncommitted(); ok && now.Sub(oldest) > r.cfg.LocalTimeout {
		r.engine.StartViewChange(r.engine.View() + 1)
	}
	// Head-of-line nudge: AHL executes strictly in sequence order, so a
	// cross-shard entry whose AHLDecision was lost blocks the whole shard.
	// Re-send the vote — the committee answers a vote for an already-
	// decided cst with the decision directly.
	if e, ok := r.entries[r.execNext+1]; ok && e.batch != nil && e.batch.IsCrossShard() {
		d := e.batch.Digest()
		if cs, ok := r.csts[d]; ok && cs.voted && !cs.decided &&
			now.Sub(cs.lastNudge) > r.cfg.LocalTimeout {
			cs.lastNudge = now
			r.resendVote(cs, d)
		}
	}
}

// onClientRequest handles single-shard requests (cross-shard ones go to the
// committee; if one lands here, it is routed there).
func (r *Replica) onClientRequest(m *types.Message) {
	b := m.Batch
	if b == nil || len(b.Txns) == 0 {
		return
	}
	d := b.Digest()
	if res, ok := r.executed[d]; ok {
		r.respond(clientOf(b), d, res)
		return
	}
	if b.IsCrossShard() {
		fwd := *m
		fwd.From = r.self
		r.send(r.committee[0], &fwd)
		return
	}
	if !b.Involves(r.shard) {
		fwd := *m
		fwd.From = r.self
		r.send(types.ReplicaNode(b.Initiator(), 0), &fwd)
		return
	}
	r.enqueue(b, d)
}

func (r *Replica) enqueue(b *types.Batch, d types.Digest) {
	if _, done := r.proposed[d]; done {
		return
	}
	if _, ok := r.awaiting[d]; !ok {
		r.awaiting[d] = &pending{batch: b, since: r.clock()}
	}
	if r.engine.IsPrimary() && !r.engine.InViewChange() {
		r.propose(b, d)
	}
}

func (r *Replica) propose(b *types.Batch, d types.Digest) {
	if _, done := r.proposed[d]; done {
		return
	}
	if !r.justified(b) {
		// Keep the proposed flag unburnt: the batch stays in awaiting and
		// onPrepare re-enqueues it once the committee certificate arrives
		// (same middle-shard-wedge reasoning as internal/ringbft propose).
		return
	}
	// Pipelined consensus: the same drain discipline as internal/ringbft —
	// at most PipelineDepth proposals in flight, the rest parked for
	// tryProposeQueued (0 = engine window only).
	if r.cfg.PipelineDepth > 0 && r.engine.InFlight() >= r.cfg.PipelineDepth {
		r.queue = append(r.queue, b)
		return
	}
	if _, err := r.engine.Propose(b); err != nil {
		r.queue = append(r.queue, b)
		return
	}
	r.proposed[d] = struct{}{}
}

func (r *Replica) tryProposeQueued() {
	if !r.engine.IsPrimary() || r.engine.InViewChange() {
		return
	}
	for len(r.queue) > 0 {
		if r.cfg.PipelineDepth > 0 && r.engine.InFlight() >= r.cfg.PipelineDepth {
			return // pipeline window full: a commit frees the next slot
		}
		b := r.queue[0]
		d := b.Digest()
		if _, done := r.proposed[d]; done {
			r.queue = r.queue[1:]
			continue
		}
		if _, err := r.engine.Propose(b); err != nil {
			return
		}
		r.proposed[d] = struct{}{}
		r.queue = r.queue[1:]
	}
}

func (r *Replica) repropose() {
	if !r.engine.IsPrimary() {
		return
	}
	// Sorted-digest order: sequence assignment must not depend on map
	// iteration order, or identically seeded runs diverge.
	ds := make([]types.Digest, 0, len(r.awaiting))
	for d := range r.awaiting {
		ds = append(ds, d)
	}
	sort.Slice(ds, func(i, j int) bool { return bytes.Compare(ds[i][:], ds[j][:]) < 0 })
	for _, d := range ds {
		if _, done := r.proposed[d]; !done {
			r.propose(r.awaiting[d].batch, d)
		}
	}
	r.tryProposeQueued()
}

func (r *Replica) cst(d types.Digest) *replicaCst {
	cs, ok := r.csts[d]
	if !ok {
		cs = &replicaCst{
			prepares:  make(map[types.NodeID]struct{}),
			decisions: make(map[types.NodeID]struct{}),
		}
		r.csts[d] = cs
	}
	return cs
}

// onPrepare handles 2PC phase 1 from the committee: once f+1 members send a
// matching AHLPrepare whose certificate proves committee ordering, the shard
// replicates the batch locally to agree on its vote.
func (r *Replica) onPrepare(m *types.Message) {
	b := m.Batch
	if b == nil || len(b.Txns) == 0 || !b.Involves(r.shard) {
		return
	}
	d := b.Digest()
	if d != m.Digest || m.From.Kind != types.KindCommittee {
		return
	}
	if crypto.VerifyMessageSig(r.auth, m) != nil {
		return
	}
	if err := pbft.VerifyCert(r.verifier, types.CommitteeShard, d, m.Cert, r.cfg.NF()); err != nil {
		return
	}
	cs := r.cst(d)
	if cs.batch == nil {
		cs.batch = b
	}
	if cs.cert == nil {
		// One verified copy suffices: the certificate is self-certifying
		// (nf committee commit signatures) and justifies view-change
		// re-proposals of this batch (Justification callback).
		cs.cert = m.Cert
	}
	cs.prepares[m.From] = struct{}{}
	if cs.accepted {
		if cs.voted && !cs.decided {
			// The committee is re-broadcasting its prepare: our earlier
			// vote may have been lost. Resend it.
			r.resendVote(cs, d)
		}
		return
	}
	if len(cs.prepares) <= r.cfg.F() {
		return
	}
	cs.accepted = true
	// The acceptance is the justification the PBFT engine gates cross-shard
	// proposals on; re-feed any PrePrepare that arrived ahead of it.
	r.engine.ReplayParked()
	r.enqueue(b, d)
}

// resendVote retransmits this replica's 2PC commit vote.
func (r *Replica) resendVote(cs *replicaCst, d types.Digest) {
	vote := &types.Message{
		Type: types.MsgAHLVote, From: r.self, Shard: r.shard,
		Digest: d, Decision: true,
	}
	vote.Sig = crypto.SignMessage(r.auth, vote)
	for _, to := range r.committee {
		r.send(to, vote)
	}
}

// onCommitted: local replication done. Single-shard batches execute in
// order; cross-shard batches emit the vote (2PC phase 2) and block the
// execution pipeline until the decision lands.
func (r *Replica) onCommitted(seq types.SeqNum, batch *types.Batch, _ []types.Signed) {
	d := batch.Digest()
	delete(r.awaiting, d)
	r.proposed[d] = struct{}{}
	r.entries[seq] = &entry{seq: seq, batch: batch}
	r.tracker.Committed(r.engine, seq, batch)
	if batch.IsCrossShard() {
		cs := r.cst(d)
		if cs.batch == nil {
			cs.batch = batch
		}
		if !cs.voted {
			cs.voted = true
			cs.lastNudge = r.clock() // this vote counts as attempt one
			vote := &types.Message{
				Type: types.MsgAHLVote, From: r.self, Shard: r.shard,
				Digest: d, Decision: true,
			}
			vote.Sig = crypto.SignMessage(r.auth, vote)
			for _, to := range r.committee {
				r.send(to, vote)
			}
		}
	}
	r.drainExec()
}

// onDecision handles 2PC phase 3: f+1 matching committee decisions commit
// the transaction; the execution pipeline unblocks.
func (r *Replica) onDecision(m *types.Message) {
	if m.From.Kind != types.KindCommittee {
		return
	}
	if crypto.VerifyMessageSig(r.auth, m) != nil {
		return
	}
	cs := r.cst(m.Digest)
	cs.decisions[m.From] = struct{}{}
	if cs.decided || len(cs.decisions) <= r.cfg.F() {
		return
	}
	cs.decided = true
	r.drainExec()
}

// drainExec executes committed entries strictly in local sequence order; a
// cross-shard entry waits for its committee decision, stalling the pipeline
// exactly where AHL's 2PC round-trips bite.
func (r *Replica) drainExec() {
	for {
		e, ok := r.entries[r.execNext+1]
		if !ok {
			return
		}
		b := e.batch
		if len(b.Txns) > 0 && b.IsCrossShard() {
			cs := r.csts[b.Digest()]
			if cs == nil || !cs.decided {
				return
			}
		}
		delete(r.entries, r.execNext+1)
		r.execNext++
		if len(b.Txns) == 0 {
			r.logExecuted(e.seq, r.engine.Primary(r.engine.View()), b, nil)
			continue
		}
		d := b.Digest()
		results, _ := r.exec.ExecuteBatch(b.Txns, r.shard, r.cfg.Shards, func(i int) (types.Value, error) {
			return r.kv.ExecuteTxnPartial(&b.Txns[i], r.shard, r.cfg.Shards), nil
		})
		r.executed[d] = results
		r.obs.addExecuted(len(b.Txns))
		r.obs.observe(r.clock(), r.shard, uint64(e.seq), trace.PhaseExecute)
		primary := r.engine.Primary(r.engine.View())
		r.chain.Append(e.seq, primary, b)
		r.logExecuted(e.seq, primary, b, results)
		if b.Initiator() == r.shard {
			r.respond(clientOf(b), d, results)
			r.obs.observe(r.clock(), r.shard, uint64(e.seq), trace.PhaseReply)
		}
	}
}

func (r *Replica) respond(client types.NodeID, d types.Digest, results []types.Value) {
	m := &types.Message{
		Type: types.MsgResponse, From: r.self, Shard: r.shard,
		View: r.engine.View(), Digest: d, Results: results,
	}
	m.MAC = crypto.MACMessage(r.auth, client, m)
	r.send(client, m)
}

// Engine exposes the intra-shard PBFT engine (tests and chaos debugging).
func (r *Replica) Engine() *pbft.Engine { return r.engine }
