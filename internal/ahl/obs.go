package ahl

import (
	"strconv"
	"time"

	"ringbft/internal/metrics"
	"ringbft/internal/trace"
	"ringbft/internal/types"
)

// hostObs bundles the optional observability wiring of an AHL node
// (committee member or shard replica): the lifecycle tracer plus registry
// handles. Nil when neither a registry nor a tracer was supplied; every
// method tolerates a nil receiver so call sites stay unconditional.
type hostObs struct {
	tr          *trace.Tracer
	phases      [16]*metrics.Counter
	viewChanges *metrics.Counter
	executed    *metrics.Counter
	queueDepth  *metrics.Gauge
	evRecords   *metrics.Gauge
}

func newHostObs(reg *metrics.Registry, tr *trace.Tracer, shard types.ShardID, self types.NodeID) *hostObs {
	if reg == nil && tr == nil {
		return nil
	}
	o := &hostObs{tr: tr}
	if reg == nil {
		return o
	}
	s := strconv.Itoa(int(shard))
	i := strconv.Itoa(self.Index)
	lbl := []string{"shard", s, "replica", i}
	o.viewChanges = reg.Counter("ahl_view_changes_total", lbl...)
	o.executed = reg.Counter("ahl_executed_txns_total", lbl...)
	o.queueDepth = reg.Gauge("ahl_queue_depth", lbl...)
	o.evRecords = reg.Gauge("ahl_evidence_records", lbl...)
	for _, p := range []trace.Phase{
		trace.PhasePrePrepare, trace.PhasePrepare, trace.PhaseCommit,
		trace.PhaseExecute, trace.PhaseReply, trace.PhaseViewChange,
	} {
		o.phases[p] = reg.Counter("pbft_phase_transitions_total",
			"shard", s, "replica", i, "phase", p.String())
	}
	return o
}

// phase is the pbft OnPhase sink; shard is fixed per node at wiring time.
func (o *hostObs) phase(shard types.ShardID) func(types.SeqNum, trace.Phase, time.Time) {
	if o == nil {
		return nil
	}
	return func(seq types.SeqNum, ph trace.Phase, at time.Time) {
		o.observe(at, shard, uint64(seq), ph)
	}
}

func (o *hostObs) observe(at time.Time, shard types.ShardID, seq uint64, ph trace.Phase) {
	if o == nil {
		return
	}
	if o.tr != nil {
		o.tr.Record(at, int(shard), seq, ph)
	}
	if int(ph) < len(o.phases) && o.phases[ph] != nil {
		o.phases[ph].Inc()
	}
}

func (o *hostObs) addExecuted(n int) {
	if o != nil && o.executed != nil {
		o.executed.Add(int64(n))
	}
}

func (o *hostObs) incViewChanges() {
	if o != nil && o.viewChanges != nil {
		o.viewChanges.Inc()
	}
}

func (o *hostObs) sample(queue, evidence int) {
	if o == nil || o.queueDepth == nil {
		return
	}
	o.queueDepth.Set(int64(queue))
	o.evRecords.Set(int64(evidence))
}
