package ringbft

import (
	"testing"

	"ringbft/internal/types"
)

// runVerifyWorkload drives one deterministic mixed workload (single-shard
// and cross-shard batches over overlapping keys) through a cluster built
// with the given VerifyWorkers setting, and returns per-replica (block
// digest sequence, store digest) observations.
func runVerifyWorkload(t *testing.T, verifyWorkers int) (map[types.NodeID][]types.Digest, map[types.NodeID]types.Digest) {
	t.Helper()
	const z, n = 3, 4
	c := newClusterWith(t, z, n, func(cfg *types.Config) { cfg.VerifyWorkers = verifyWorkers })
	var batches []*types.Batch
	for i := uint64(1); i <= 10; i++ {
		shards := []types.ShardID{types.ShardID(i % z)}
		switch i % 3 {
		case 0:
			shards = []types.ShardID{0, 1, 2}
		case 1:
			shards = []types.ShardID{types.ShardID(i % z), types.ShardID((i + 1) % z)}
			if shards[0] > shards[1] {
				shards[0], shards[1] = shards[1], shards[0]
			}
		}
		b := mkBatch(types.ClientID(i), i, z, shards, i%4)
		batches = append(batches, b)
		c.submit(types.ClientID(i), b)
	}
	for _, b := range batches {
		cid := types.ClientID(b.Txns[0].ID.Client)
		if got := c.responses(cid, b.Digest()); got < c.cfg.F()+1 {
			t.Fatalf("verifyWorkers=%d: batch of client %d got %d responses", verifyWorkers, cid, got)
		}
	}
	chains := make(map[types.NodeID][]types.Digest)
	stores := make(map[types.NodeID]types.Digest)
	for id, r := range c.replicas {
		for _, blk := range r.Chain().Blocks() {
			chains[id] = append(chains[id], blk.Digest)
		}
		stores[id] = r.Store().Digest()
	}
	return chains, stores
}

// TestPropertyVerifyFastPathEquivalence (acceptance bar of the crypto fast
// path): a run whose replicas verify certificates on the batched/cached
// fast path commits exactly the same block sequences and reaches exactly
// the same state digests as a run with serial verification — byte-identical
// protocol behavior, only the CPU cost differs.
func TestPropertyVerifyFastPathEquivalence(t *testing.T) {
	serialChains, serialStores := runVerifyWorkload(t, 0)
	for _, workers := range []int{2, 4, 8} {
		fastChains, fastStores := runVerifyWorkload(t, workers)
		if len(fastChains) != len(serialChains) {
			t.Fatalf("workers=%d: replica count mismatch", workers)
		}
		for id, want := range serialChains {
			got := fastChains[id]
			if len(got) != len(want) {
				t.Fatalf("workers=%d replica %v: %d blocks, serial run had %d", workers, id, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d replica %v: block %d digest diverges from serial run", workers, id, i)
				}
			}
			if fastStores[id] != serialStores[id] {
				t.Fatalf("workers=%d replica %v: state digest diverges from serial run", workers, id)
			}
		}
	}
}
