package ringbft

import (
	"testing"

	"ringbft/internal/types"
)

// enqueueRequest stages a client request without pumping, so a burst of
// requests reaches the primary back-to-back — the arrival pattern that
// fills the pipeline window and gives the adaptive batcher visible work.
func (c *cluster) enqueueRequest(client types.ClientID, b *types.Batch) {
	from := types.ClientNode(client)
	m := &types.Message{
		Type: types.MsgClientRequest, From: from,
		Batch: b, Digest: b.Digest(),
	}
	c.queue = append(c.queue, routed{from, types.ReplicaNode(b.Initiator(), 0), m})
}

// pipelineWorkload is a fixed burst: ten single-shard batches alternating
// between the two shards plus one cross-shard batch, every batch exactly
// BatchSize transactions so the adaptive batcher has nothing to merge and
// proposal content is depth-independent.
func pipelineWorkload(z int) []*types.Batch {
	var out []*types.Batch
	for i := 0; i < 10; i++ {
		s := types.ShardID(i % z)
		out = append(out, mkBatch(types.ClientID(i%3+1), uint64(i+1), z, []types.ShardID{s}, uint64(2+i)))
	}
	all := make([]types.ShardID, z)
	for s := range all {
		all[s] = types.ShardID(s)
	}
	out = append(out, mkBatch(4, 1, z, all, 13))
	return out
}

// runPipelineBurst drives the fixed burst through a fresh cluster at the
// given pipeline depth and returns each shard's block-hash sequence and
// each replica-0 state digest.
func runPipelineBurst(t *testing.T, depth int) (blocks map[types.ShardID][]types.Digest, states map[types.ShardID]types.Digest) {
	t.Helper()
	const z = 2
	c := newClusterWith(t, z, 4, func(cfg *types.Config) {
		cfg.BatchSize = 1
		cfg.PipelineDepth = depth
	})
	for _, b := range pipelineWorkload(z) {
		c.enqueueRequest(b.Txns[0].ID.Client, b)
	}
	c.pump()
	c.assertNoExecErrors()

	blocks = make(map[types.ShardID][]types.Digest)
	states = make(map[types.ShardID]types.Digest)
	for s := 0; s < z; s++ {
		r := c.replicas[types.ReplicaNode(types.ShardID(s), 0)]
		for _, blk := range r.Chain().Blocks() {
			blocks[types.ShardID(s)] = append(blocks[types.ShardID(s)], blk.Hash())
		}
		states[types.ShardID(s)] = r.Store().Digest()
	}
	return blocks, states
}

// TestPipelineDeterminism is the pipelined-consensus safety property: for
// the same request arrival order, every pipeline depth — legacy unbounded
// (0), lockstep (1), and deep windows — yields byte-identical block-hash
// sequences and state digests. Overlapping PRE-PREPARE/PREPARE/COMMIT
// across sequence numbers changes when proposals happen, never what
// commits or in which order.
func TestPipelineDeterminism(t *testing.T) {
	refBlocks, refStates := runPipelineBurst(t, 1)
	for s, seq := range refBlocks {
		if len(seq) < 2 {
			t.Fatalf("shard %d committed only %d blocks at depth 1", s, len(seq))
		}
	}
	for _, depth := range []int{0, 2, 8} {
		blocks, states := runPipelineBurst(t, depth)
		for s, want := range refBlocks {
			got := blocks[s]
			if len(got) != len(want) {
				t.Fatalf("depth %d: shard %d has %d blocks, depth 1 has %d", depth, s, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("depth %d: shard %d block %d hash differs from depth 1", depth, s, i)
				}
			}
		}
		for s, want := range refStates {
			if states[s] != want {
				t.Fatalf("depth %d: shard %d state digest differs from depth 1", depth, s)
			}
		}
	}
}

// TestPipelineAdaptiveBatching: a burst of small single-shard requests
// arriving while the window is full is coalesced into one proposal, and
// every client is still answered under its original request digest.
func TestPipelineAdaptiveBatching(t *testing.T) {
	c := newClusterWith(t, 2, 4, func(cfg *types.Config) {
		cfg.BatchSize = 4
		cfg.PipelineDepth = 1
	})
	var batches []*types.Batch
	for i := 0; i < 4; i++ {
		batches = append(batches, mkBatch(types.ClientID(i+1), 1, 2, []types.ShardID{0}, uint64(2+i)))
	}
	for i, b := range batches {
		c.enqueueRequest(types.ClientID(i+1), b)
	}
	c.pump()
	c.assertNoExecErrors()

	// Request 1 proposes immediately (the window is empty when it lands);
	// requests 2-4 queue behind the lockstep window and merge into one
	// proposal when the commit frees the slot: two blocks, not four.
	primary := c.replicas[types.ReplicaNode(0, 0)]
	if h := primary.Chain().Height(); h != 2 {
		t.Fatalf("shard 0 ledger height = %d, want 2 (one solo + one coalesced block)", h)
	}
	merged := primary.Chain().Block(2).Batch
	if len(merged.Reqs) != 3 || len(merged.Txns) != 3 {
		t.Fatalf("coalesced block has Reqs=%v txns=%d, want 3 requests / 3 txns", merged.Reqs, len(merged.Txns))
	}
	if n := primary.Stats().CoalescedReqs; n != 2 {
		t.Fatalf("primary coalesced %d requests, want 2", n)
	}
	for i, b := range batches {
		d := b.Digest()
		if got := c.responses(types.ClientID(i+1), d); got < c.cfg.F()+1 {
			t.Fatalf("client %d got %d responses under its own digest, want >= %d", i+1, got, c.cfg.F()+1)
		}
	}

	// A retransmission of a coalesced request must be answered from the
	// executed cache — never re-proposed, never re-executed.
	c.submit(3, batches[2])
	if h := primary.Chain().Height(); h != 2 {
		t.Fatalf("retransmission re-executed: ledger height %d, want 2", h)
	}
	if got := c.responses(3, batches[2].Digest()); got < c.cfg.F()+2 {
		t.Fatalf("retransmission not answered from executed cache (got %d responses)", got)
	}
}

// TestPipelineFillDiscipline: the minimum proposal size ramps with window
// occupancy — an empty window proposes a lone request immediately, while
// each deeper slot demands a fuller merge, so a stream of small requests
// cannot occupy the whole window as tiny proposals.
func TestPipelineFillDiscipline(t *testing.T) {
	const depth = 4
	c := newClusterWith(t, 2, 4, func(cfg *types.Config) {
		cfg.BatchSize = 4
		cfg.PipelineDepth = depth
	})
	// Drop every PREPARE so nothing commits: in-flight counts only grow.
	c.drop = func(_, _ types.NodeID, m *types.Message) bool {
		return m.Type == types.MsgPrepare
	}
	primary := c.replicas[types.ReplicaNode(0, 0)]
	for i := 0; i < 7; i++ {
		c.enqueueRequest(types.ClientID(i+1), mkBatch(types.ClientID(i+1), 1, 2, []types.ShardID{0}, uint64(2+i)))
		c.pump()
	}
	// The ramp demands BatchSize×inFlight/depth = inFlight queued txns per
	// slot here: request 1 proposes alone (empty window), request 2 alone
	// (1 queued ≥ 1), 3 waits for 4 (2 queued ≥ 2 → a 2-request merge),
	// 5-6 wait for 7 (3 queued ≥ 3 → a 3-request merge): four proposals,
	// the full window, with merges growing as the window deepens.
	if got := primary.Engine().InFlight(); got != depth {
		t.Fatalf("primary has %d proposals in flight, want %d", got, depth)
	}
	if n := primary.Stats().CoalescedReqs; n != 3 {
		t.Fatalf("primary coalesced %d requests, want 3 (one 2-request and one 3-request merge)", n)
	}
}

// TestPipelineWindowBound: the engine never holds more uncommitted
// proposals than the configured depth. Observed through the InFlight
// accounting the drain discipline itself uses, with commits suppressed so
// the window genuinely fills.
func TestPipelineWindowBound(t *testing.T) {
	const depth = 3
	c := newClusterWith(t, 2, 4, func(cfg *types.Config) {
		cfg.BatchSize = 1
		cfg.PipelineDepth = depth
	})
	// Drop every PREPARE so nothing commits and the window stays full.
	c.drop = func(_, _ types.NodeID, m *types.Message) bool {
		return m.Type == types.MsgPrepare
	}
	for i := 0; i < 8; i++ {
		c.enqueueRequest(types.ClientID(i+1), mkBatch(types.ClientID(i+1), 1, 2, []types.ShardID{0}, uint64(2+i)))
	}
	c.pump()
	primary := c.replicas[types.ReplicaNode(0, 0)]
	if got := primary.Engine().InFlight(); got != depth {
		t.Fatalf("primary has %d proposals in flight, want the window bound %d", got, depth)
	}
}
