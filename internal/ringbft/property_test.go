package ringbft

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"ringbft/internal/types"
)

// TestPropertyConflictingWorkloadConverges (Theorems 6.2 + 6.3): for random
// workloads of overlapping cross-shard and single-shard batches, every batch
// completes (no deadlock), locks drain to zero, ledgers verify, and all
// replicas of every shard converge to identical stores.
func TestPropertyConflictingWorkloadConverges(t *testing.T) {
	f := func(seed int64, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		rng := rand.New(rand.NewSource(seed))
		const z, n = 3, 4
		c := newCluster(t, z, n)

		// Build batches over a tiny key space (8 records per shard) so
		// conflicts are the norm, with random involved sets.
		var batches []*types.Batch
		for i, r := range raw {
			count := int(r%3) + 1 // 1..3 involved shards
			start := int(r) % z
			var shards []types.ShardID
			for k := 0; k < count; k++ {
				shards = append(shards, types.ShardID((start+k)%z))
			}
			// sort into ring order
			for a := 1; a < len(shards); a++ {
				for b := a; b > 0 && shards[b] < shards[b-1]; b-- {
					shards[b], shards[b-1] = shards[b-1], shards[b]
				}
			}
			// dedup
			uniq := shards[:1]
			for _, s := range shards[1:] {
				if s != uniq[len(uniq)-1] {
					uniq = append(uniq, s)
				}
			}
			b := mkBatch(types.ClientID(i+1), uint64(i+1), z, uniq, uint64(rng.Intn(8)))
			batches = append(batches, b)
		}
		// Inject all at once so consensus interleaves.
		for _, b := range batches {
			m := &types.Message{
				Type: types.MsgClientRequest, From: clientOf(b),
				Batch: b, Digest: b.Digest(),
			}
			c.queue = append(c.queue, routed{clientOf(b), types.ReplicaNode(b.Initiator(), 0), m})
		}
		c.pump()
		// A conflicting batch may be parked behind a lock holder whose
		// Execute rotation has completed within the same pump; tick a few
		// times to flush retransmissions if any message raced.
		for i := 0; i < 3; i++ {
			c.tick(c.cfg.TransmitTimeout + time.Millisecond)
		}

		// Every batch answered with f+1 responses.
		for _, b := range batches {
			cid := types.ClientID(b.Txns[0].ID.Client)
			if c.responses(cid, b.Digest()) < c.cfg.F()+1 {
				return false
			}
		}
		// No leaked locks, verified ledgers, convergent stores.
		for s := 0; s < z; s++ {
			var ref *Replica
			for i := 0; i < n; i++ {
				r := c.replicas[types.ReplicaNode(types.ShardID(s), i)]
				if r.Stats().LockedKeys != 0 {
					return false
				}
				if err := r.Chain().Verify(); err != nil {
					return false
				}
				if ref == nil {
					ref = r
					continue
				}
				if r.Store().Digest() != ref.Store().Digest() {
					return false
				}
			}
		}
		// Conflicting cross-shard blocks ordered identically everywhere.
		var refOrder []types.Digest
		for s := 0; s < z; s++ {
			for i := 0; i < n; i++ {
				order := c.replicas[types.ReplicaNode(types.ShardID(s), i)].Chain().CrossOrder()
				filtered := order // all csts here touch overlapping keys often; compare common subsequence
				if refOrder == nil {
					refOrder = filtered
					continue
				}
				// Check pairwise order consistency on shared digests.
				pos := make(map[types.Digest]int, len(refOrder))
				for p, d := range refOrder {
					pos[d] = p
				}
				last := -1
				for _, d := range filtered {
					if p, ok := pos[d]; ok {
						if p < last {
							return false
						}
						last = p
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLockQueueSequenceOrder: the π/k_max mechanism acquires locks
// strictly in sequence order regardless of commit arrival order (Example
// 4.4). Simulated directly against a replica's lock queue.
func TestPropertyLockQueueSequenceOrder(t *testing.T) {
	f := func(perm []uint8) bool {
		if len(perm) == 0 || len(perm) > 16 {
			return true
		}
		c := newCluster(t, 1, 4)
		r := c.replicas[types.ReplicaNode(0, 0)]
		k := len(perm)
		// Build k single-shard batches with disjoint keys and deliver
		// their commits in the permuted order.
		order := make([]int, k)
		for i := range order {
			order[i] = i
		}
		for i, p := range perm {
			j := int(p) % k
			order[i%k], order[j] = order[j], order[i%k]
		}
		batches := make([]*types.Batch, k)
		for i := 0; i < k; i++ {
			batches[i] = mkBatch(1, uint64(i+1), 1, []types.ShardID{0}, uint64(i))
		}
		for _, idx := range order {
			r.onCommitted(types.SeqNum(idx+1), batches[idx], nil)
		}
		// Everything must have executed exactly once, k_max = k.
		return r.Stats().KMax == types.SeqNum(k) && r.Stats().LedgerHeight == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointsGarbageCollectDuringRingOperation: a long run of
// transactions advances the stable checkpoint and bounds the engine log.
func TestCheckpointsGarbageCollectDuringRingOperation(t *testing.T) {
	c := newCluster(t, 2, 4)
	c.cfg.CheckpointInterval = 8
	for _, r := range c.replicas {
		r.cfg.CheckpointInterval = 8
	}
	for i := uint64(1); i <= 40; i++ {
		shards := []types.ShardID{types.ShardID(i % 2)}
		if i%4 == 0 {
			shards = []types.ShardID{0, 1}
		}
		b := mkBatch(types.ClientID(i), i, 2, shards, i)
		c.submit(types.ClientID(i), b)
	}
	for id, r := range c.replicas {
		if got := r.Engine().StableSeq(); got == 0 {
			t.Fatalf("replica %v never checkpointed", id)
		}
		if got := r.Engine().LogSize(); got > 64 {
			t.Fatalf("replica %v log grew to %d entries (GC broken)", id, got)
		}
	}
}

// TestAllToAllAblationStillCorrect: the quadratic-forwarding ablation mode
// must preserve correctness (it only changes who sends to whom).
func TestAllToAllAblationStillCorrect(t *testing.T) {
	c := newCluster(t, 3, 4)
	for _, r := range c.replicas {
		r.allToAll = true
	}
	b := mkBatch(1, 1, 3, []types.ShardID{0, 1, 2}, 2)
	c.submit(1, b)
	if got := c.responses(1, b.Digest()); got < c.cfg.F()+1 {
		t.Fatalf("all-to-all mode broke consensus: %d responses", got)
	}
	for id, r := range c.replicas {
		if n := r.Stats().LockedKeys; n != 0 {
			t.Fatalf("replica %v leaked %d locks", id, n)
		}
	}
}

// TestLossyLinksEventuallyCommit (safety under asynchrony + liveness under
// eventual delivery): with 20% random message loss between shards, timers
// recover every transaction.
func TestLossyLinksEventuallyCommit(t *testing.T) {
	c := newCluster(t, 2, 4)
	rng := rand.New(rand.NewSource(99))
	c.drop = func(from, to types.NodeID, m *types.Message) bool {
		if from.Kind == types.KindReplica && to.Kind == types.KindReplica && from.Shard != to.Shard {
			return rng.Float64() < 0.2
		}
		return false
	}
	var batches []*types.Batch
	for i := uint64(1); i <= 5; i++ {
		b := mkBatch(types.ClientID(i), i, 2, []types.ShardID{0, 1}, 10+i)
		batches = append(batches, b)
		c.submit(types.ClientID(i), b)
	}
	// Drive timers until everything lands (bounded rounds).
	for round := 0; round < 20; round++ {
		done := true
		for _, b := range batches {
			if c.responses(types.ClientID(b.Txns[0].ID.Client), b.Digest()) < c.cfg.F()+1 {
				done = false
			}
		}
		if done {
			break
		}
		c.tick(c.cfg.TransmitTimeout + time.Millisecond)
	}
	for _, b := range batches {
		cid := types.ClientID(b.Txns[0].ID.Client)
		if got := c.responses(cid, b.Digest()); got < c.cfg.F()+1 {
			t.Fatalf("batch of client %d never recovered under loss: %d responses", cid, got)
		}
	}
}

// TestByzantineForwardRejected: a Forward with a forged certificate must not
// start consensus at the next shard.
func TestByzantineForwardRejected(t *testing.T) {
	c := newCluster(t, 2, 4)
	b := mkBatch(1, 1, 2, []types.ShardID{0, 1}, 3)
	d := b.Digest()
	// Forge a Forward from shard 0 replica 0 with an empty certificate.
	forged := &types.Message{
		Type: types.MsgForward, From: types.ReplicaNode(0, 0), Shard: 0,
		Seq: 1, Digest: d, Batch: b,
	}
	for i := 0; i < 4; i++ {
		c.queue = append(c.queue, routed{types.ReplicaNode(0, 0), types.ReplicaNode(1, i), forged})
	}
	c.pump()
	for i := 0; i < 4; i++ {
		r := c.replicas[types.ReplicaNode(1, i)]
		if r.Chain().Height() != 0 {
			t.Fatalf("replica s1/r%d executed a forged Forward", i)
		}
		if _, proposed := r.proposed[d]; proposed {
			t.Fatalf("replica s1/r%d proposed from a forged Forward", i)
		}
	}
}
