package ringbft

import (
	"strconv"
	"time"

	"ringbft/internal/metrics"
	"ringbft/internal/sched"
	"ringbft/internal/trace"
	"ringbft/internal/types"
	"ringbft/internal/wal"
)

// replicaMetrics is one replica's handle set on the process registry. The
// handles are resolved once at construction so hot paths pay a single
// atomic add. The plain Stats counters are kept unchanged — they are the
// post-run snapshot contract the harness and chaos checkers read — while
// these registry series are what live HTTP scrapes see.
type replicaMetrics struct {
	executedTxns   *metrics.Counter
	executedCross  *metrics.Counter
	execErrors     *metrics.Counter
	viewChanges    *metrics.Counter
	retransmits    *metrics.Counter
	remoteViews    *metrics.Counter
	stateTransfers *metrics.Counter
	durErrors      *metrics.Counter
	certVerifies   *metrics.Counter
	walGC          *metrics.Counter

	// Pipelined-consensus telemetry: coalescedReqs counts client requests
	// the adaptive batcher merged into larger proposals, pipelineClamped
	// counts propose passes where transport backpressure shrank the window
	// to one slot, and inflight samples the engine's pre-prepared-but-
	// uncommitted sequence count each tick.
	coalescedReqs   *metrics.Counter
	pipelineClamped *metrics.Counter
	inflight        *metrics.Gauge

	queueDepth *metrics.Gauge
	awaiting   *metrics.Gauge
	lockKeys   *metrics.Gauge
	evRecords  *metrics.Gauge

	forwardQuorum *metrics.Histogram
	walFsync      *metrics.Histogram

	schedParallel   *metrics.Counter
	schedSequential *metrics.Counter
	schedLayerWidth *metrics.Histogram

	// phases[p] counts pbft/ring lifecycle transitions of phase p.
	phases [16]*metrics.Counter
}

// tracedPhases are the lifecycle phases a replica host can emit; used to
// register the per-phase counters eagerly so /metrics shows the full
// family from startup.
var tracedPhases = []trace.Phase{
	trace.PhasePrePrepare, trace.PhasePrepare, trace.PhaseCommit,
	trace.PhaseForward, trace.PhaseExecute, trace.PhaseReply,
	trace.PhaseViewChange, trace.PhaseStateTransfer,
}

func newReplicaMetrics(reg *metrics.Registry, shard types.ShardID, self types.NodeID) *replicaMetrics {
	s := strconv.Itoa(int(shard))
	i := strconv.Itoa(self.Index)
	lbl := []string{"shard", s, "replica", i}
	m := &replicaMetrics{
		executedTxns:   reg.Counter("ringbft_executed_txns_total", lbl...),
		executedCross:  reg.Counter("ringbft_executed_cross_txns_total", lbl...),
		execErrors:     reg.Counter("ringbft_exec_errors_total", lbl...),
		viewChanges:    reg.Counter("ringbft_view_changes_total", lbl...),
		retransmits:    reg.Counter("ringbft_forward_retransmits_total", lbl...),
		remoteViews:    reg.Counter("ringbft_remote_views_total", lbl...),
		stateTransfers: reg.Counter("ringbft_state_transfers_total", lbl...),
		durErrors:      reg.Counter("ringbft_durability_errors_total", lbl...),
		certVerifies:   reg.Counter("ringbft_cert_verifications_total", lbl...),
		walGC:          reg.Counter("wal_segments_gced_total", lbl...),

		coalescedReqs:   reg.Counter("ringbft_coalesced_requests_total", lbl...),
		pipelineClamped: reg.Counter("ringbft_pipeline_clamped_total", lbl...),
		inflight:        reg.Gauge("ringbft_inflight_proposals", lbl...),

		queueDepth: reg.Gauge("ringbft_propose_queue_depth", lbl...),
		awaiting:   reg.Gauge("ringbft_awaiting_proposals", lbl...),
		lockKeys:   reg.Gauge("ringbft_lock_table_keys", lbl...),
		evRecords:  reg.Gauge("ringbft_evidence_records", lbl...),

		forwardQuorum: reg.Histogram("ringbft_forward_quorum_seconds", lbl...),
		walFsync:      reg.Histogram("wal_fsync_seconds", lbl...),

		schedParallel:   reg.Counter("sched_parallel_batches_total", lbl...),
		schedSequential: reg.Counter("sched_sequential_batches_total", lbl...),
		schedLayerWidth: reg.Histogram("sched_layer_width", lbl...),
	}
	for _, p := range tracedPhases {
		m.phases[p] = reg.Counter("pbft_phase_transitions_total",
			"shard", s, "replica", i, "phase", p.String())
	}
	return m
}

// phase counts one lifecycle transition.
func (m *replicaMetrics) phase(p trace.Phase) {
	if m == nil {
		return
	}
	if int(p) < len(m.phases) && m.phases[p] != nil {
		m.phases[p].Inc()
	}
}

// walObserver adapts the handle set to the WAL telemetry hooks.
func (m *replicaMetrics) walObserver() wal.Observer {
	return wal.Observer{
		Fsync: m.walFsync.Observe,
		GC:    func(removed int) { m.walGC.Add(int64(removed)) },
	}
}

// schedObserver adapts the handle set to the scheduler telemetry hooks.
// sched_layer_width abuses the duration histogram's 1-unit-per-µs buckets
// to bucket integer widths; quantiles read back in "µs" units equal widths.
func (m *replicaMetrics) schedObserver() sched.Observer {
	return sched.Observer{
		Batch: func(parallel bool, txns, layers int) {
			if parallel {
				m.schedParallel.Inc()
			} else {
				m.schedSequential.Inc()
			}
		},
		Layer: func(width int) {
			m.schedLayerWidth.Observe(time.Duration(width) * time.Microsecond)
		},
	}
}
