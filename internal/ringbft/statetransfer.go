package ringbft

import (
	"time"

	"ringbft/internal/crypto"
	"ringbft/internal/ledger"
	"ringbft/internal/store"
	"ringbft/internal/trace"
	"ringbft/internal/types"
)

// Peer state transfer: a replica that falls a full checkpoint interval
// behind a stable checkpoint — restarted with a gap, kept in the dark by a
// faulty primary (attack A3), or rejoining with a wiped data directory —
// fetches the shard's canonical state from a peer instead of stalling
// forever on sequences it can never replay.
//
// Validation is certificate-anchored, not trust-based: the requester only
// installs a payload whose (seq, H(prefixDigest || stateDigest)) matches a
// checkpoint it itself observed stabilize — i.e. nf signed Checkpoint
// messages it verified — and whose Pairs hash to stateDigest. A Byzantine
// peer would need a SHA-256 collision to substitute state. A single honest
// response therefore suffices; requests go to every shard peer and the
// remote timer re-broadcasts until one lands.

// transferState tracks one in-flight state-transfer request.
type transferState struct {
	target types.SeqNum // stable checkpoint that revealed the gap
	since  time.Time
	// pending buffers responses whose checkpoint we have not yet observed
	// stabilize ourselves; they are re-evaluated on every stabilization.
	pending map[types.NodeID]*types.StatePayload
}

// requestStateTransfer broadcasts a MsgStateRequest to the shard peers.
func (r *Replica) requestStateTransfer(target types.SeqNum) {
	if r.transfer != nil && r.transfer.target >= target {
		return
	}
	if r.transfer == nil {
		r.transfer = &transferState{pending: make(map[types.NodeID]*types.StatePayload)}
	}
	r.transfer.target = target
	r.transfer.since = r.clock()
	r.broadcastStateRequest()
}

func (r *Replica) broadcastStateRequest() {
	m := &types.Message{
		Type: types.MsgStateRequest, From: r.self, Shard: r.shard,
		Seq: r.transfer.target,
	}
	for _, p := range r.peers {
		if p == r.self {
			continue
		}
		cp := *m
		cp.MAC = crypto.MACMessage(r.auth, p, &cp)
		r.send(p, &cp)
	}
}

// onStateRequest serves a peer's catch-up request from this replica's
// latest stable checkpoint, provided local execution has covered it (the
// canonical state at S is only computable once every block <= S executed).
func (r *Replica) onStateRequest(m *types.Message) {
	if m.From.Kind != types.KindReplica || m.From.Shard != r.shard || m.From == r.self {
		return
	}
	if crypto.VerifyMessageMAC(r.auth, m) != nil {
		return
	}
	stable := r.engine.StableSeq()
	meta, ok := r.cpMeta[stable]
	if !ok || stable < m.Seq || r.execSeq < stable {
		return // nothing (yet) that would cover the requester's gap
	}
	payload := &types.StatePayload{
		Seq:          stable,
		PrefixDigest: meta.prefix,
		StateDigest:  meta.state,
		Pairs:        r.canonicalPairsCached(stable),
	}
	resp := &types.Message{
		Type: types.MsgStateSnapshot, From: r.self, Shard: r.shard,
		Seq: stable, Digest: compositeCpDigest(meta.prefix, meta.state),
		State: payload,
	}
	resp.MAC = crypto.MACMessage(r.auth, m.From, resp)
	r.send(m.From, resp)
}

// onStateSnapshot buffers a peer's state payload and tries to install it.
func (r *Replica) onStateSnapshot(m *types.Message) {
	if r.transfer == nil || m.State == nil {
		return
	}
	if m.From.Kind != types.KindReplica || m.From.Shard != r.shard || m.From == r.self {
		return
	}
	if crypto.VerifyMessageMAC(r.auth, m) != nil {
		return
	}
	if m.State.Seq != m.Seq || m.State.Seq <= r.kmax {
		return
	}
	r.transfer.pending[m.From] = m.State
	r.evaluateTransfer()
}

// evaluateTransfer installs the first buffered payload that validates
// against a locally observed checkpoint quorum.
func (r *Replica) evaluateTransfer() {
	if r.transfer == nil {
		return
	}
	// Canonical donor order: "first payload that validates" must mean the
	// same payload on every replay, not whichever one map iteration reached
	// first.
	for _, from := range types.SortedNodeKeys(r.transfer.pending) {
		p := r.transfer.pending[from]
		if p.Seq <= r.kmax {
			delete(r.transfer.pending, from)
			continue
		}
		certified, ok := r.stabilized[p.Seq]
		if !ok {
			continue // wait until we observe this checkpoint stabilize
		}
		if compositeCpDigest(p.PrefixDigest, p.StateDigest) != certified {
			delete(r.transfer.pending, from) // forged or damaged payload
			continue
		}
		if stateDigestOf(p.Pairs) != p.StateDigest {
			delete(r.transfer.pending, from)
			continue
		}
		r.installState(p, certified)
		return
	}
}

// installState adopts a validated canonical state at p.Seq: the store and
// ledger restart from the checkpoint, consensus resumes past it, and every
// in-flight structure below it is dropped (those transactions completed
// without us; the canonical state already includes their effects).
func (r *Replica) installState(p *types.StatePayload, certified types.Digest) {
	r.kv.Restore(p.Pairs)

	// The ledger restarts on a synthetic base block deterministically
	// derived from the certified checkpoint. Hash-linking from a transfer
	// boundary mirrors what pruning does at a snapshot boundary: Verify
	// covers the retained suffix. The base index is the certified sequence
	// itself — never a responder-supplied count, which the certificate
	// would not cover. (Height then counts sequences rather than blocks
	// below the boundary; the two differ only by view-change no-op
	// fillers.)
	base := &ledger.Block{Seq: p.Seq, Digest: certified, MerkleRoot: p.StateDigest}
	r.chain = ledger.Rebuild(r.shard, base, int(p.Seq), nil)

	r.kmax = p.Seq
	r.execSeq = p.Seq
	r.prefixDigest = p.PrefixDigest
	r.lastCheckpoint = p.Seq
	r.execDone = make(map[types.SeqNum]struct{})
	r.pendingCps = nil
	r.canonCache = canonCache{}
	r.locks = store.NewLockTable()
	r.csts = make(map[types.Digest]*cstState)
	for seq := range r.lockQueue {
		if seq <= p.Seq {
			delete(r.lockQueue, seq)
		}
	}
	r.engine.ResumeAt(p.Seq, p.Seq+1)
	r.stateTransfers++
	if r.met != nil {
		r.met.stateTransfers.Inc()
	}
	r.observe(p.Seq, trace.PhaseStateTransfer)
	r.transfer = nil

	if r.dur != nil {
		snap := r.buildSnapshot(p.Seq, certified)
		if err := r.dur.Reset(snap); err != nil {
			r.durErrors++
			if r.met != nil {
				r.met.durErrors.Inc()
			}
		}
		r.lastSnapshot = p.Seq
	}
	// Sequences queued past the checkpoint can lock now.
	r.drainLockQueue()
}

// retryTransfer re-broadcasts a starved state request (driven by
// HandleTick on the remote-timeout cadence).
func (r *Replica) retryTransfer(now time.Time) {
	if r.transfer == nil {
		return
	}
	if now.Sub(r.transfer.since) > r.cfg.RemoteTimeout {
		r.transfer.since = now
		r.broadcastStateRequest()
	}
}
