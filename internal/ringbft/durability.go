package ringbft

import (
	"crypto/sha256"

	"ringbft/internal/store"
	"ringbft/internal/types"
	"ringbft/internal/wal"
)

// This file wires the durability subsystem (internal/wal) into the replica:
//
//   - every lock-order advance appends a progress record and every executed
//     block a block record to the segmented WAL (group-committed fsync);
//   - stable PBFT checkpoints cut a snapshot of the store + ledger, after
//     which old WAL segments and in-memory blocks below the checkpoint are
//     garbage-collected;
//   - a restarted replica loads the latest snapshot, replays the WAL tail,
//     and resumes consensus at the recovered sequence.
//
// Checkpoint digests are composite — H(prefixDigest || stateDigest) — where
// stateDigest is the SHA-256 of the *canonical state at the checkpoint*:
// the key-value table obtained by executing exactly the blocks with
// sequence <= S. Every honest replica agrees on that state even though
// their live stores interleave later writes differently, so the nf signed
// Checkpoint messages double as a certificate over the state itself — the
// foundation of peer state transfer (statetransfer.go). Because execution
// is additive (data[k] += combined), the canonical state is reconstructed
// from the live store by subtracting the writes of executed blocks beyond
// the checkpoint.

// cpPoint is a checkpoint scheduled at lock time (k_max crossing an
// interval boundary) and emitted once execution catches up to it.
type cpPoint struct {
	seq    types.SeqNum
	prefix types.Digest
}

// cpMeta retains the digest components of an emitted checkpoint so the
// replica can later serve state transfer at it.
type cpMeta struct {
	prefix types.Digest
	state  types.Digest
}

// cpMetaKeep bounds the retained checkpoint metadata and stabilized-digest
// maps (Byzantine checkpoint floods must not balloon memory).
const cpMetaKeep = 16

// canonCache is the single-slot cache of the newest checkpoint's canonical
// pairs: computed once at emission, reused for the state digest and for
// every state-transfer request served at that checkpoint.
type canonCache struct {
	seq   types.SeqNum
	pairs []store.Pair
}

// markExecuted advances the contiguous executed-prefix watermark and emits
// any checkpoint whose sequence the watermark has now covered.
func (r *Replica) markExecuted(seq types.SeqNum) {
	if seq <= r.execSeq {
		return
	}
	r.execDone[seq] = struct{}{}
	for {
		if _, ok := r.execDone[r.execSeq+1]; !ok {
			break
		}
		delete(r.execDone, r.execSeq+1)
		r.execSeq++
	}
	r.maybeEmitCheckpoints()
}

// maybeEmitCheckpoints broadcasts scheduled checkpoints whose canonical
// state is now computable (every block at or below the checkpoint has
// executed locally). The pairs computed for the digest are cached (one
// slot, newest checkpoint) so serving state-transfer requests for the
// current stable checkpoint does not re-dump the store per request.
func (r *Replica) maybeEmitCheckpoints() {
	for len(r.pendingCps) > 0 && r.pendingCps[0].seq <= r.execSeq {
		cp := r.pendingCps[0]
		r.pendingCps = r.pendingCps[1:]
		pairs := r.canonicalPairsAt(cp.seq)
		state := stateDigestOf(pairs)
		digest := compositeCpDigest(cp.prefix, state)
		r.rememberCpMeta(cp.seq, cpMeta{prefix: cp.prefix, state: state})
		r.canonCache = canonCache{seq: cp.seq, pairs: pairs}
		r.engine.MakeCheckpoint(cp.seq, digest)
	}
}

// canonicalPairsCached returns the canonical pairs at s, reusing the
// emission-time computation when s is the cached checkpoint.
func (r *Replica) canonicalPairsCached(s types.SeqNum) []store.Pair {
	if r.canonCache.seq == s && r.canonCache.pairs != nil {
		return r.canonCache.pairs
	}
	pairs := r.canonicalPairsAt(s)
	r.canonCache = canonCache{seq: s, pairs: pairs}
	return pairs
}

// canonicalPairsAt reconstructs the canonical key-value state at stable
// checkpoint S from the live store: execution is additive, so subtracting
// the combined operand of every write of executed blocks with Seq > S
// rewinds exactly those blocks. All such blocks are retained in the chain
// (pruning only drops blocks below the stable watermark) with their results
// cached in r.executed.
func (r *Replica) canonicalPairsAt(s types.SeqNum) []store.Pair {
	pairs := r.kv.Pairs()
	var adj map[types.Key]types.Value
	for _, b := range r.chain.Blocks()[1:] {
		if b.Seq <= s || b.Batch == nil {
			continue
		}
		res := r.executed[b.Digest]
		for i := range b.Batch.Txns {
			if i >= len(res) {
				break
			}
			t := &b.Batch.Txns[i]
			for _, k := range t.WritesAt(r.shard, r.cfg.Shards) {
				if adj == nil {
					adj = make(map[types.Key]types.Value)
				}
				adj[k] += res[i]
			}
		}
	}
	if adj != nil {
		for i := range pairs {
			if d, ok := adj[pairs[i].K]; ok {
				pairs[i].V -= d
			}
		}
	}
	return pairs
}

// stateDigestOf hashes pairs (already in ascending key order) into the
// collision-resistant state digest checkpoints certify.
func stateDigestOf(pairs []store.Pair) types.Digest {
	h := sha256.New()
	var buf [16]byte
	for _, p := range pairs {
		putU64 := func(off int, v uint64) {
			for j := 0; j < 8; j++ {
				buf[off+j] = byte(v >> (8 * (7 - j)))
			}
		}
		putU64(0, uint64(p.K))
		putU64(8, uint64(p.V))
		h.Write(buf[:])
	}
	var d types.Digest
	copy(d[:], h.Sum(nil))
	return d
}

// compositeCpDigest binds the ledger-order digest and the canonical state
// digest into the single digest Checkpoint messages carry.
func compositeCpDigest(prefix, state types.Digest) types.Digest {
	var buf [64]byte
	copy(buf[:32], prefix[:])
	copy(buf[32:], state[:])
	return sha256Sum(buf[:])
}

func (r *Replica) rememberCpMeta(seq types.SeqNum, m cpMeta) {
	r.cpMeta[seq] = m
	if len(r.cpMeta) > cpMetaKeep {
		oldest := seq
		for s := range r.cpMeta {
			if s < oldest {
				oldest = s
			}
		}
		delete(r.cpMeta, oldest)
	}
}

func (r *Replica) rememberStabilized(seq types.SeqNum, digest types.Digest) {
	r.stabilized[seq] = digest
	if len(r.stabilized) > cpMetaKeep {
		oldest := seq
		for s := range r.stabilized {
			if s < oldest {
				oldest = s
			}
		}
		delete(r.stabilized, oldest)
	}
}

// onStabilized is the engine's stable-checkpoint hook: nf replicas signed
// identical digests at seq. Snapshot-and-GC when our own state covers the
// checkpoint; request state transfer when the checkpoint proves the shard
// ran at least a full checkpoint interval ahead of us (a restarted replica
// with a gap, a replica kept in the dark, or a wiped rejoiner).
func (r *Replica) onStabilized(seq types.SeqNum, digest types.Digest) {
	r.rememberStabilized(seq, digest)
	if interval := r.cfg.CheckpointInterval; interval > 0 && seq >= r.kmax+interval {
		r.requestStateTransfer(seq)
		r.evaluateTransfer()
		return
	}
	r.evaluateTransfer()
	// Snapshot only once local execution covers the checkpoint: a cut
	// whose WAL is then garbage-collected must not be missing the batches
	// of committed-but-unexecuted cross-shard blocks below it (they exist
	// nowhere else on disk).
	if r.execSeq >= seq {
		r.maybeSnapshot(seq, digest)
	}
}

// maybeSnapshot cuts a durable snapshot at stable checkpoint seq (rate-
// limited by SnapshotInterval), prunes the in-memory chain and the
// executed-results cache below it, and garbage-collects the WAL segments
// the snapshot covers.
func (r *Replica) maybeSnapshot(seq types.SeqNum, digest types.Digest) {
	if r.dur == nil || seq < r.lastSnapshot+r.snapEvery {
		return
	}
	r.pruneBelow(seq)
	if err := r.dur.SaveSnapshot(r.buildSnapshot(seq, digest)); err != nil {
		r.durErrors++
		if r.met != nil {
			r.met.durErrors.Inc()
		}
		return
	}
	r.lastSnapshot = seq
}

// pruneBelow garbage-collects in-memory history below a stable checkpoint:
// the ledger blocks and their cached execution results. The `proposed` set
// is kept — at ~48 bytes per digest it is cheap, and it is what stops a
// replayed client request from re-ordering an ancient batch (attack A1).
func (r *Replica) pruneBelow(seq types.SeqNum) {
	// Stop at the first retained block >= seq, mirroring Chain.Prune's cut
	// exactly — an out-of-order block behind the boundary stays in the
	// chain and must keep its cached results.
	for _, b := range r.chain.Blocks()[1:] {
		if b.Seq >= seq {
			break
		}
		delete(r.executed, b.Digest)
	}
	r.chain.Prune(seq)
}

// buildSnapshot captures the replica's current durable cut, anchored at
// stable checkpoint (seq, digest).
func (r *Replica) buildSnapshot(seq types.SeqNum, digest types.Digest) *wal.Snapshot {
	snap := &wal.Snapshot{
		Shard:            r.shard,
		StableSeq:        seq,
		CheckpointDigest: digest,
		KMax:             r.kmax,
		ExecSeq:          r.execSeq,
		View:             r.engine.View(),
		PrefixDigest:     r.prefixDigest,
		LastCheckpoint:   r.lastCheckpoint,
		Pairs:            r.kv.Pairs(),
	}
	snap.CaptureChain(r.chain, func(d types.Digest) []types.Value { return r.executed[d] })
	return snap
}

// logProgress durably records a k_max advance (see wal.ProgressRecord).
func (r *Replica) logProgress(batchDigest types.Digest) {
	if r.dur == nil {
		return
	}
	if err := r.dur.LogProgress(r.kmax, r.prefixDigest, r.lastCheckpoint, batchDigest, r.engine.View()); err != nil {
		r.durErrors++
		if r.met != nil {
			r.met.durErrors.Inc()
		}
	}
}

// logBlock durably records an executed block (empty batches — view-change
// no-op fillers — are logged too, so recovery can advance the executed
// watermark across them).
func (r *Replica) logBlock(seq types.SeqNum, primary types.NodeID, batch *types.Batch, results []types.Value) {
	if r.dur == nil {
		return
	}
	if err := r.dur.LogBlock(seq, primary, batch, results); err != nil {
		r.durErrors++
		if r.met != nil {
			r.met.durErrors.Inc()
		}
	}
}

// recoverExecuted repopulates the executed/proposed caches for one
// recovered block. A coalesced block (adaptive batching, Batch.Reqs) is
// additionally split back into its original client requests so a client
// retransmitting after the restart is answered under the digest it is
// waiting on, exactly as the live respondBatch path would have.
func (r *Replica) recoverExecuted(b *types.Batch, results []types.Value) {
	d := b.Digest()
	r.executed[d] = results
	r.proposed[d] = struct{}{}
	if len(b.Reqs) < 2 || len(results) < len(b.Txns) {
		return
	}
	lo := 0
	for _, sb := range b.SubBatches() {
		sd := sb.Digest()
		r.executed[sd] = results[lo : lo+len(sb.Txns)]
		r.proposed[sd] = struct{}{}
		lo += len(sb.Txns)
	}
}

// applyRecovered rebuilds replica state from a snapshot plus the WAL tail.
// Called from Preload, after the base table is installed and before any
// message is handled.
func (r *Replica) applyRecovered(rec *wal.Recovered) {
	var view types.View
	if snap := rec.Snap; snap != nil {
		view = snap.View
		r.kv.Restore(snap.Pairs)
		r.chain = snap.RebuildChain(func(sb *wal.SnapBlock) {
			r.recoverExecuted(sb.Batch, sb.Results)
			r.execDone[sb.Seq] = struct{}{}
		})
		r.kmax = snap.KMax
		r.execSeq = snap.ExecSeq
		r.prefixDigest = snap.PrefixDigest
		r.lastCheckpoint = snap.LastCheckpoint
		r.lastSnapshot = snap.StableSeq
		r.rememberStabilized(snap.StableSeq, snap.CheckpointDigest)
	}
	for i := range rec.Tail {
		t := &rec.Tail[i]
		switch t.Kind {
		case wal.KindProgress:
			r.kmax = t.Seq
			r.prefixDigest = t.PrefixDigest
			r.lastCheckpoint = t.LastCheckpoint
			r.proposed[t.BatchDigest] = struct{}{}
			if t.View > view {
				view = t.View
			}
		case wal.KindBlock:
			if len(t.Batch.Txns) == 0 {
				r.execDone[t.Seq] = struct{}{}
				continue
			}
			for j := range t.Batch.Txns {
				if j >= len(t.Results) {
					break
				}
				r.kv.ApplyTxnWrites(&t.Batch.Txns[j], r.shard, r.cfg.Shards, t.Results[j])
			}
			r.recoverExecuted(t.Batch, t.Results)
			r.chain.Append(t.Seq, t.Primary, t.Batch)
			r.execDone[t.Seq] = struct{}{}
		default:
			// Evidence records live in the evidence log's own WAL, not the
			// replica's; any other kind in the tail is not replica state.
		}
	}
	// Settle the executed watermark over everything recovered.
	for {
		if _, ok := r.execDone[r.execSeq+1]; !ok {
			break
		}
		delete(r.execDone, r.execSeq+1)
		r.execSeq++
	}
	for seq := range r.execDone {
		if seq <= r.execSeq {
			delete(r.execDone, seq)
		}
	}
	stable := types.SeqNum(0)
	if rec.Snap != nil {
		stable = rec.Snap.StableSeq
	}
	// Rejoin the view the shard was in when we last made progress; without
	// this, a replica restarted after a view change would stash every
	// current-view message as "future" and never catch up.
	if view > 0 {
		r.engine.ForceView(view)
	}
	r.engine.ResumeAt(stable, r.kmax+1)
	r.recovered = true
}
