package ringbft

import (
	"fmt"
	"testing"
	"time"

	"ringbft/internal/crypto"
	"ringbft/internal/types"
	"ringbft/internal/wal"
)

// cluster is a deterministic in-memory test harness: z shards × n replicas
// wired through a message queue pumped to quiescence, with an injectable
// clock and a drop filter for fault injection. A cluster built by
// newDurableCluster backs every replica with the wal subsystem on a shared
// MemFS, enabling kill / restart / wipe fault injection.
type cluster struct {
	t        *testing.T
	cfg      types.Config
	replicas map[types.NodeID]*Replica
	queue    []routed
	drop     func(from, to types.NodeID, m *types.Message) bool
	client   map[types.NodeID][]*types.Message // responses per client
	now      time.Time

	kg      *crypto.Keygen
	n       int
	records int
	fs      *wal.MemFS // nil = in-memory-only replicas
}

type routed struct {
	from, to types.NodeID
	m        *types.Message
}

func newCluster(t *testing.T, z, n int) *cluster { return newClusterExec(t, z, n, 0) }

// newClusterExec builds a cluster whose replicas run the dependency-aware
// parallel executor with the given worker count (0 = sequential).
func newClusterExec(t *testing.T, z, n, execWorkers int) *cluster {
	return newClusterWith(t, z, n, func(cfg *types.Config) { cfg.ExecWorkers = execWorkers })
}

// newClusterWith builds a cluster with a config mutator applied before the
// replicas are constructed.
func newClusterWith(t *testing.T, z, n int, mutate func(*types.Config)) *cluster {
	return newClusterFS(t, z, n, mutate, nil)
}

// newDurableCluster builds a cluster whose replicas run the durability
// subsystem against a shared in-memory filesystem, so tests can kill,
// restart, and wipe replicas.
func newDurableCluster(t *testing.T, z, n int, mutate func(*types.Config)) *cluster {
	return newClusterFS(t, z, n, mutate, wal.NewMemFS())
}

func newClusterFS(t *testing.T, z, n int, mutate func(*types.Config), fs *wal.MemFS) *cluster {
	t.Helper()
	cfg := types.DefaultConfig(z, n)
	cfg.BatchSize = 2
	if fs != nil {
		cfg.DataDir = "data"
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c := &cluster{
		t: t, cfg: cfg,
		replicas: make(map[types.NodeID]*Replica),
		client:   make(map[types.NodeID][]*types.Message),
		now:      time.Unix(0, 0),
		kg:       crypto.NewKeygen(7),
		n:        n,
		records:  64,
		fs:       fs,
	}
	for s := 0; s < z; s++ {
		for i := 0; i < n; i++ {
			c.kg.Register(types.ReplicaNode(types.ShardID(s), i))
		}
	}
	for s := 0; s < z; s++ {
		for i := 0; i < n; i++ {
			c.spawn(types.ReplicaNode(types.ShardID(s), i))
		}
	}
	return c
}

// spawn builds (or rebuilds, after kill) the replica id, recovering from
// the shared filesystem when the cluster is durable.
func (c *cluster) spawn(id types.NodeID) *Replica {
	c.t.Helper()
	peers := make([]types.NodeID, c.n)
	for i := 0; i < c.n; i++ {
		peers[i] = types.ReplicaNode(id.Shard, i)
	}
	ring, err := c.kg.Ring(id)
	if err != nil {
		c.t.Fatal(err)
	}
	opts := Options{
		Config: c.cfg, Shard: id.Shard, Self: id, Peers: peers,
		Auth: ring,
		Send: func(from types.NodeID) Sender {
			return func(to types.NodeID, m *types.Message) {
				c.queue = append(c.queue, routed{from, to, m})
			}
		}(id),
		Clock: func() time.Time { return c.now },
	}
	if c.fs != nil {
		m, rec, err := OpenDurability(c.cfg, id, c.fs)
		if err != nil {
			c.t.Fatalf("open durability for %v: %v", id, err)
		}
		opts.Durability = m
		opts.Recovered = rec
	}
	r := New(opts)
	r.Preload(c.records)
	c.replicas[id] = r
	return r
}

// kill crashes replica id: it stops receiving and sending. Its durability
// manager is abandoned without Close, exactly like a process crash.
func (c *cluster) kill(id types.NodeID) { delete(c.replicas, id) }

// restart rebuilds replica id from whatever survives on the shared
// filesystem and rejoins it to the cluster.
func (c *cluster) restart(id types.NodeID) *Replica { return c.spawn(id) }

// wipe deletes replica id's data directory (the wiped-rejoin fault).
func (c *cluster) wipe(id types.NodeID) {
	c.fs.RemoveAll(wal.Join(c.cfg.DataDir, fmt.Sprintf("s%d-r%d", id.Shard, id.Index)))
}

// pump delivers queued messages until quiescence.
func (c *cluster) pump() {
	for guard := 0; len(c.queue) > 0; guard++ {
		if guard > 100000 {
			c.t.Fatal("message storm: pump did not quiesce")
		}
		q := c.queue
		c.queue = nil
		for _, r := range q {
			if c.drop != nil && c.drop(r.from, r.to, r.m) {
				continue
			}
			if r.to.Kind == types.KindClient {
				c.client[r.to] = append(c.client[r.to], r.m)
				continue
			}
			if rep, ok := c.replicas[r.to]; ok {
				rep.HandleMessage(r.m)
			}
		}
	}
}

// tick advances the virtual clock by d and fires every replica's timers.
func (c *cluster) tick(d time.Duration) {
	c.now = c.now.Add(d)
	for _, r := range c.replicas {
		r.HandleTick(c.now)
	}
	c.pump()
}

// submit injects a client request at the initiator shard's replica 0 (the
// view-0 primary) and pumps to quiescence.
func (c *cluster) submit(client types.ClientID, b *types.Batch) {
	m := &types.Message{
		Type: types.MsgClientRequest, From: types.ClientNode(client),
		Batch: b, Digest: b.Digest(),
	}
	c.queue = append(c.queue, routed{types.ClientNode(client), types.ReplicaNode(b.Initiator(), 0), m})
	c.pump()
}

// assertNoExecErrors fails the test when any replica mapped an execution
// error to the sentinel result 0 — on the happy path that means Σ
// accumulation silently broke.
func (c *cluster) assertNoExecErrors() {
	c.t.Helper()
	for id, r := range c.replicas {
		if n := r.Stats().ExecErrors; n != 0 {
			c.t.Fatalf("replica %v recorded %d exec errors (broken Σ accumulation)", id, n)
		}
	}
}

// responses counts matching client responses for a digest.
func (c *cluster) responses(client types.ClientID, d types.Digest) int {
	n := 0
	for _, m := range c.client[types.ClientNode(client)] {
		if m.Type == types.MsgResponse && m.Digest == d {
			n++
		}
	}
	return n
}

// mkBatch builds a cross-shard batch touching one key per shard in shards.
func mkBatch(client types.ClientID, seq uint64, z int, shards []types.ShardID, keyIdx uint64) *types.Batch {
	var t types.Txn
	t.ID = types.TxnID{Client: client, Seq: seq}
	t.Delta = 5
	for _, s := range shards {
		k := types.Key(uint64(s) + keyIdx*uint64(z))
		t.Reads = append(t.Reads, k)
		t.Writes = append(t.Writes, k)
	}
	return &types.Batch{Txns: []types.Txn{t}, Involved: shards}
}

func TestSingleShardExecution(t *testing.T) {
	c := newCluster(t, 3, 4)
	b := mkBatch(1, 1, 3, []types.ShardID{1}, 2)
	c.submit(1, b)
	d := b.Digest()
	if got := c.responses(1, d); got < c.cfg.F()+1 {
		t.Fatalf("client got %d responses, want >= %d", got, c.cfg.F()+1)
	}
	// Every replica of shard 1 executed; other shards untouched.
	k := b.Txns[0].Writes[0]
	for id, r := range c.replicas {
		if id.Shard == 1 {
			want := types.Value(k) + (types.Value(k) + 5)
			if got := r.Store().Get(k); got != want {
				t.Fatalf("replica %v value = %d, want %d", id, got, want)
			}
			if r.Chain().Height() != 1 {
				t.Fatalf("replica %v ledger height = %d, want 1", id, r.Chain().Height())
			}
		} else if r.Chain().Height() != 0 {
			t.Fatalf("replica %v (uninvolved) ledger height = %d, want 0", id, r.Chain().Height())
		}
	}
	c.assertNoExecErrors()
}

func TestCrossShardTwoShards(t *testing.T) {
	c := newCluster(t, 3, 4)
	b := mkBatch(1, 1, 3, []types.ShardID{0, 2}, 3)
	c.submit(1, b)
	d := b.Digest()
	if got := c.responses(1, d); got < c.cfg.F()+1 {
		t.Fatalf("client got %d responses, want >= %d", got, c.cfg.F()+1)
	}
	// combined = Δ + v(k0) + v(k2); each write key += combined on its shard.
	k0, k2 := b.Txns[0].Writes[0], b.Txns[0].Writes[1]
	combined := types.Value(5) + types.Value(k0) + types.Value(k2)
	for id, r := range c.replicas {
		switch id.Shard {
		case 0:
			if got := r.Store().Get(k0); got != types.Value(k0)+combined {
				t.Fatalf("replica %v k0 = %d, want %d", id, got, types.Value(k0)+combined)
			}
		case 2:
			if got := r.Store().Get(k2); got != types.Value(k2)+combined {
				t.Fatalf("replica %v k2 = %d, want %d", id, got, types.Value(k2)+combined)
			}
		}
	}
	// Locks fully released everywhere.
	for id, r := range c.replicas {
		if n := r.Stats().LockedKeys; n != 0 {
			t.Fatalf("replica %v still holds %d locks", id, n)
		}
	}
	c.assertNoExecErrors()
}

func TestCrossShardAllShards(t *testing.T) {
	c := newCluster(t, 4, 4)
	b := mkBatch(2, 1, 4, []types.ShardID{0, 1, 2, 3}, 1)
	c.submit(2, b)
	if got := c.responses(2, b.Digest()); got < c.cfg.F()+1 {
		t.Fatalf("client got %d responses, want >= %d", got, c.cfg.F()+1)
	}
	for id, r := range c.replicas {
		if r.Chain().Height() != 1 {
			t.Fatalf("replica %v height %d, want 1 (all shards involved)", id, r.Chain().Height())
		}
	}
	c.assertNoExecErrors()
}

// TestComplexCSTRemoteReads: a transaction whose write on shard 0 depends on
// reads owned by shards 1 and 2 (complex cst, Section 8.8). The Σ
// accumulation in Forward/Execute messages must deliver those values.
func TestComplexCSTRemoteReads(t *testing.T) {
	z := 3
	c := newCluster(t, z, 4)
	k0 := types.Key(0 + 4*uint64(z)) // shard 0
	k1 := types.Key(1 + 5*uint64(z)) // shard 1
	k2 := types.Key(2 + 6*uint64(z)) // shard 2
	txn := types.Txn{
		ID:     types.TxnID{Client: 3, Seq: 1},
		Reads:  []types.Key{k0, k1, k2},
		Writes: []types.Key{k0},
		Delta:  7,
	}
	b := &types.Batch{Txns: []types.Txn{txn}, Involved: []types.ShardID{0, 1, 2}}
	c.submit(3, b)
	if got := c.responses(3, b.Digest()); got < c.cfg.F()+1 {
		t.Fatalf("client got %d responses, want >= %d", got, c.cfg.F()+1)
	}
	combined := types.Value(7) + types.Value(k0) + types.Value(k1) + types.Value(k2)
	for id, r := range c.replicas {
		if id.Shard != 0 {
			continue
		}
		if got := r.Store().Get(k0); got != types.Value(k0)+combined {
			t.Fatalf("replica %v k0 = %d, want %d (remote reads lost)", id, got, types.Value(k0)+combined)
		}
	}
	c.assertNoExecErrors()
}

// TestConflictingCSTsSameOrder (Theorem 6.2/6.3): two conflicting
// cross-shard batches must execute in the same order at every replica of
// every involved shard, and both must complete (no deadlock).
func TestConflictingCSTsSameOrder(t *testing.T) {
	c := newCluster(t, 3, 4)
	shards := []types.ShardID{0, 1, 2}
	b1 := mkBatch(1, 1, 3, shards, 9)
	b2 := mkBatch(2, 1, 3, shards, 9) // same keys -> conflict
	m1 := &types.Message{Type: types.MsgClientRequest, From: types.ClientNode(1), Batch: b1, Digest: b1.Digest()}
	m2 := &types.Message{Type: types.MsgClientRequest, From: types.ClientNode(2), Batch: b2, Digest: b2.Digest()}
	// Inject both before pumping so they interleave through consensus.
	c.queue = append(c.queue,
		routed{types.ClientNode(1), types.ReplicaNode(0, 0), m1},
		routed{types.ClientNode(2), types.ReplicaNode(0, 0), m2},
	)
	c.pump()
	if got := c.responses(1, b1.Digest()); got < c.cfg.F()+1 {
		t.Fatalf("client 1 got %d responses", got)
	}
	if got := c.responses(2, b2.Digest()); got < c.cfg.F()+1 {
		t.Fatalf("client 2 got %d responses", got)
	}
	// Identical cross-shard block order across all replicas of all shards.
	var ref []types.Digest
	for id, r := range c.replicas {
		order := r.Chain().CrossOrder()
		if len(order) != 2 {
			t.Fatalf("replica %v ordered %d cross-shard blocks, want 2", id, len(order))
		}
		if ref == nil {
			ref = order
			continue
		}
		for i := range ref {
			if order[i] != ref[i] {
				t.Fatalf("replica %v conflicting-cst order diverges (Consistence violated)", id)
			}
		}
	}
	// Final value reflects both executions at every replica.
	for id, r := range c.replicas {
		if n := r.Stats().LockedKeys; n != 0 {
			t.Fatalf("replica %v leaked %d locks", id, n)
		}
	}
	c.assertNoExecErrors()
}

// TestParallelExecutionMatchesSequentialCluster drives the same workload —
// conflicting cross-shard batches plus complex remote-read transactions —
// through a sequential cluster and one running the dependency-aware
// executor with 4 workers, and requires identical client results and
// identical store digests at every replica (the determinism bar of
// internal/sched, proven end-to-end through consensus).
func TestParallelExecutionMatchesSequentialCluster(t *testing.T) {
	const z, n = 3, 4
	run := func(workers int) (map[types.NodeID]types.Digest, map[types.Digest][]types.Value) {
		c := newClusterExec(t, z, n, workers)
		shards := []types.ShardID{0, 1, 2}
		var digests []types.Digest
		for i := uint64(0); i < 4; i++ {
			b := mkBatch(types.ClientID(i+1), 1, z, shards, 2+i%2) // overlapping keys conflict
			digests = append(digests, b.Digest())
			c.submit(types.ClientID(i+1), b)
		}
		cx := types.Txn{
			ID:     types.TxnID{Client: 9, Seq: 1},
			Reads:  []types.Key{types.Key(0 + 7*z), types.Key(1 + 7*z), types.Key(2 + 7*z)},
			Writes: []types.Key{types.Key(0 + 7*z)},
			Delta:  11,
		}
		bx := &types.Batch{Txns: []types.Txn{cx}, Involved: shards}
		digests = append(digests, bx.Digest())
		c.submit(9, bx)

		c.assertNoExecErrors()
		states := make(map[types.NodeID]types.Digest)
		results := make(map[types.Digest][]types.Value)
		for id, r := range c.replicas {
			states[id] = r.Store().Digest()
			for _, d := range digests {
				if res, ok := r.executed[d]; ok {
					results[d] = res
				}
			}
		}
		return states, results
	}
	seqStates, seqResults := run(0)
	parStates, parResults := run(4)
	for id, want := range seqStates {
		if parStates[id] != want {
			t.Fatalf("replica %v: parallel store digest diverged from sequential", id)
		}
	}
	for d, want := range seqResults {
		got, ok := parResults[d]
		if !ok {
			t.Fatalf("batch %x executed sequentially but not in parallel cluster", d[:4])
		}
		if len(got) != len(want) {
			t.Fatalf("batch %x: %d results vs %d", d[:4], len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch %x result[%d] = %d, want %d", d[:4], i, got[i], want[i])
			}
		}
	}
}

// TestForwardRetransmission (attack C1): all Forward messages between shard
// 0 and shard 1 are dropped initially; the transmit timer must recover the
// transaction once the link heals.
func TestForwardRetransmission(t *testing.T) {
	c := newCluster(t, 2, 4)
	blocked := true
	c.drop = func(from, to types.NodeID, m *types.Message) bool {
		return blocked && m.Type == types.MsgForward &&
			from.Kind == types.KindReplica && from.Shard == 0 && to.Shard == 1
	}
	b := mkBatch(1, 1, 2, []types.ShardID{0, 1}, 2)
	c.submit(1, b)
	if got := c.responses(1, b.Digest()); got != 0 {
		t.Fatalf("client answered despite severed link (%d responses)", got)
	}
	// Heal and let the transmit timer fire.
	blocked = false
	c.tick(c.cfg.TransmitTimeout + time.Millisecond)
	if got := c.responses(1, b.Digest()); got < c.cfg.F()+1 {
		t.Fatalf("retransmission did not recover: %d responses", got)
	}
	retr := int64(0)
	for id, r := range c.replicas {
		if id.Shard == 0 {
			retr += r.Stats().Retransmits
		}
	}
	if retr == 0 {
		t.Fatal("no retransmissions recorded")
	}
}

// TestPrimaryFailureViewChange (attack A2 / Fig 9): the primary of shard 0
// crashes; backups must view-change and execute the pending request under
// the new primary.
func TestPrimaryFailureViewChange(t *testing.T) {
	c := newCluster(t, 1, 4)
	dead := types.ReplicaNode(0, 0)
	c.drop = func(from, to types.NodeID, m *types.Message) bool {
		return from == dead || to == dead
	}
	b := mkBatch(1, 1, 1, []types.ShardID{0}, 3)
	// Client times out on the primary and broadcasts to all replicas (A1).
	m := &types.Message{Type: types.MsgClientRequest, From: types.ClientNode(1), Batch: b, Digest: b.Digest()}
	for i := 0; i < 4; i++ {
		c.queue = append(c.queue, routed{types.ClientNode(1), types.ReplicaNode(0, i), m})
	}
	c.pump()
	if got := c.responses(1, b.Digest()); got != 0 {
		t.Fatalf("executed with crashed primary before view change: %d", got)
	}
	// Local timers expire; replicas view-change to replica 1 and commit.
	for i := 0; i < 4; i++ {
		c.tick(c.cfg.LocalTimeout + time.Millisecond)
	}
	if got := c.responses(1, b.Digest()); got < c.cfg.F()+1 {
		t.Fatalf("view change did not recover the request: %d responses", got)
	}
	for id, r := range c.replicas {
		if id == dead {
			continue
		}
		if v := r.Engine().View(); v == 0 {
			t.Fatalf("replica %v still in view 0", id)
		}
	}
}

// TestRemoteViewChange (attack C2): shard 0's primary replicates a cst but
// Forwards from all of shard 0 reach only one replica of shard 1 — fewer
// than f+1 — so shard 1 starves. Its remote timer must fire, complain to
// shard 0, and shard 0's retransmission (all its replicas re-Forward) must
// unblock shard 1.
func TestRemoteViewChange(t *testing.T) {
	c := newCluster(t, 2, 4)
	partial := true
	c.drop = func(from, to types.NodeID, m *types.Message) bool {
		if !partial {
			return false
		}
		// Only the index-0 Forward gets through; peers' relays of it are
		// also suppressed so shard 1 cannot reach f+1 = 2 copies.
		if m.Type == types.MsgForward && from.Shard == 0 && to.Shard == 1 {
			return from.Index != 0
		}
		if m.Type == types.MsgForward && from.Shard == 1 && to.Shard == 1 {
			return true // suppress local re-sharing of the single copy
		}
		return false
	}
	b := mkBatch(1, 1, 2, []types.ShardID{0, 1}, 4)
	c.submit(1, b)
	if got := c.responses(1, b.Digest()); got != 0 {
		t.Fatal("completed despite partial communication")
	}
	// Remote timer fires at shard 1 -> RemoteView -> shard 0 retransmits.
	c.tick(c.cfg.RemoteTimeout + time.Millisecond)
	partial = false
	c.tick(c.cfg.TransmitTimeout + time.Millisecond)
	if got := c.responses(1, b.Digest()); got < c.cfg.F()+1 {
		t.Fatalf("remote view change did not recover: %d responses", got)
	}
	complaints := int64(0)
	for id, r := range c.replicas {
		if id.Shard == 1 {
			complaints += r.Stats().RemoteViews
		}
	}
	if complaints == 0 {
		t.Fatal("no RemoteView complaints recorded")
	}
}

// TestDuplicateClientRequestAnsweredFromCache (attack A1): a Byzantine
// client re-sending an executed request gets the stored response and cannot
// trigger re-execution.
func TestDuplicateClientRequestAnsweredFromCache(t *testing.T) {
	c := newCluster(t, 2, 4)
	b := mkBatch(1, 1, 2, []types.ShardID{0}, 5)
	c.submit(1, b)
	first := c.responses(1, b.Digest())
	if first < c.cfg.F()+1 {
		t.Fatalf("initial execution failed: %d", first)
	}
	h := c.replicas[types.ReplicaNode(0, 1)].Chain().Height()
	c.submit(1, b) // duplicate
	if got := c.responses(1, b.Digest()); got <= first {
		t.Fatalf("duplicate not answered from cache: %d then %d", first, got)
	}
	if c.replicas[types.ReplicaNode(0, 1)].Chain().Height() != h {
		t.Fatal("duplicate request re-executed")
	}
}

// TestWrongInitiatorRouted: a request sent to a non-initiator shard is
// routed to the initiator's primary (Fig 5 line 9).
func TestWrongInitiatorRouted(t *testing.T) {
	c := newCluster(t, 3, 4)
	b := mkBatch(1, 1, 3, []types.ShardID{0, 1}, 6)
	m := &types.Message{Type: types.MsgClientRequest, From: types.ClientNode(1), Batch: b, Digest: b.Digest()}
	// Delivered to shard 2 (not involved at all).
	c.queue = append(c.queue, routed{types.ClientNode(1), types.ReplicaNode(2, 0), m})
	c.pump()
	if got := c.responses(1, b.Digest()); got < c.cfg.F()+1 {
		t.Fatalf("misrouted request not recovered: %d responses", got)
	}
}

// TestLedgerChainsVerify: after a mixed workload, every replica's ledger
// hash chain and Merkle roots verify.
func TestLedgerChainsVerify(t *testing.T) {
	c := newCluster(t, 3, 4)
	for i := uint64(1); i <= 5; i++ {
		var shards []types.ShardID
		if i%2 == 0 {
			shards = []types.ShardID{0, 1, 2}
		} else {
			shards = []types.ShardID{types.ShardID(i % 3)}
		}
		b := mkBatch(types.ClientID(i), i, 3, shards, 10+i)
		c.submit(types.ClientID(i), b)
	}
	for id, r := range c.replicas {
		if err := r.Chain().Verify(); err != nil {
			t.Fatalf("replica %v ledger verification failed: %v", id, err)
		}
	}
}

// TestNonConflictingCSTsDoNotBlock: csts on disjoint keys ordered at the
// same shard proceed without waiting on each other's remote rotations.
func TestNonConflictingCSTsDoNotBlock(t *testing.T) {
	c := newCluster(t, 3, 4)
	b1 := mkBatch(1, 1, 3, []types.ShardID{0, 1}, 11)
	b2 := mkBatch(2, 1, 3, []types.ShardID{0, 2}, 12)
	m1 := &types.Message{Type: types.MsgClientRequest, From: types.ClientNode(1), Batch: b1, Digest: b1.Digest()}
	m2 := &types.Message{Type: types.MsgClientRequest, From: types.ClientNode(2), Batch: b2, Digest: b2.Digest()}
	c.queue = append(c.queue,
		routed{types.ClientNode(1), types.ReplicaNode(0, 0), m1},
		routed{types.ClientNode(2), types.ReplicaNode(0, 0), m2},
	)
	c.pump()
	if got := c.responses(1, b1.Digest()); got < c.cfg.F()+1 {
		t.Fatalf("b1 incomplete: %d", got)
	}
	if got := c.responses(2, b2.Digest()); got < c.cfg.F()+1 {
		t.Fatalf("b2 incomplete: %d", got)
	}
}
