package ringbft

import (
	"time"

	"ringbft/internal/crypto"
	"ringbft/internal/types"
)

// HandleTick drives the three timers of Section 5 ("Triggering of Timers"),
// ordered local < remote < transmit:
//
//   - local timer: a request the primary failed to propose, or a proposal
//     that failed to commit, within LocalTimeout triggers a PBFT view
//     change (attacks A1/A2);
//   - remote timer: a Forward seen from fewer than f+1 previous-shard
//     replicas within RemoteTimeout triggers a RemoteView complaint to the
//     previous shard (partial communication attack C2, Fig 6);
//   - transmit timer: a successfully replicated cst whose onward progress
//     is unobserved within TransmitTimeout has its Forward retransmitted
//     (no-communication attack C1, Section 5.1.1).
func (r *Replica) HandleTick(now time.Time) {
	r.engine.Tick(now)
	r.tryProposeQueued()
	if r.dur != nil {
		// Group commit: the batched fsync of WAL appends since the last one.
		if err := r.dur.MaybeSync(now); err != nil {
			r.durErrors++
			if r.met != nil {
				r.met.durErrors.Inc()
			}
		}
	}
	r.retryTransfer(now)
	if r.met != nil {
		// Occupancy gauges, sampled once per tick: cheap atomic stores, and
		// a scrape between ticks sees a consistent recent view.
		r.met.queueDepth.Set(int64(len(r.proposeQueue)))
		r.met.inflight.Set(int64(r.engine.InFlight()))
		r.met.awaiting.Set(int64(len(r.awaitingProposal)))
		r.met.lockKeys.Set(int64(r.locks.Count()))
		r.met.evRecords.Set(int64(r.ev.Len()))
	}

	// Local timer, case 1: the primary is sitting on a request. Escalation
	// is paced against the last view install too — every view gets a full
	// LocalTimeout before the next demand, no matter how many stuck
	// proposals are waiting. Every expired entry is re-armed in the same
	// pass (stopping at the first would leave re-arming to map iteration
	// order, making timer traffic nondeterministic across runs).
	if !r.engine.InViewChange() && now.Sub(r.lastVC) > r.cfg.LocalTimeout {
		expired := false
		for _, p := range r.awaitingProposal {
			if now.Sub(p.since) > r.cfg.LocalTimeout {
				p.since = now // re-arm so escalation is paced
				// An unjustified entry — a cross-shard batch whose Forward
				// quorum is still in flight — re-arms without escalating:
				// no primary of this shard can propose it yet, so a view
				// change cannot help; the remote timer (below) complains
				// upstream instead.
				if r.justified(p.batch) {
					expired = true
				}
			}
		}
		if expired && !r.engine.IsPrimary() {
			r.engine.StartViewChange(r.engine.View() + 1)
		}
	}
	// Local timer, case 2: a proposal is stuck mid-consensus.
	if !r.engine.InViewChange() {
		if oldest, ok := r.engine.OldestUncommitted(); ok && now.Sub(oldest) > r.cfg.LocalTimeout {
			r.engine.StartViewChange(r.engine.View() + 1)
		}
	}

	// Canonical cst order: this pass emits RemoteView complaints and Forward
	// retransmits, so traffic order must not follow map iteration order.
	for _, d := range types.SortedDigestKeys(r.csts) {
		cs := r.csts[d]
		// Remote timer (Fig 6), two starvation modes: (a) first rotation —
		// we saw at least one Forward copy but fewer than f+1 within the
		// timeout; (b) second rotation — consensus and locks are done but
		// the Execute carrying Σ from the previous shard never arrived
		// (the previous shard's replicas answer the complaint with their
		// Execute directly; see onRemoteView).
		starving := (!cs.fwdAccepted && !cs.fwdFirst.IsZero()) ||
			(cs.fwdAccepted && cs.locked && !cs.executed)
		if starving && !cs.fwdFirst.IsZero() && now.Sub(cs.fwdFirst) > r.cfg.RemoteTimeout {
			cs.fwdFirst = now // re-arm
			if cs.batch != nil {
				r.sendRemoteView(cs)
			}
		}
		// Transmit timer: retransmit the Forward until the ring shows
		// progress (this replica executing proves the rotation completed).
		if cs.locked && !cs.executed && cs.forwardMsg != nil &&
			now.Sub(cs.forwardSentAt) > r.cfg.TransmitTimeout {
			cs.forwardSentAt = now
			r.retransmits++
			if r.met != nil {
				r.met.retransmits.Inc()
			}
			next, _ := cs.batch.NextInRing(r.shard)
			r.send(types.ReplicaNode(next, r.self.Index), cs.forwardMsg)
		}
	}
}

// sendRemoteView complains to the same-index replica of the previous shard
// that this replica is starved of Forward messages (Fig 6 lines 1-2).
func (r *Replica) sendRemoteView(cs *cstState) {
	prev := cs.batch.PrevInRing(r.shard)
	m := &types.Message{
		Type: types.MsgRemoteView, From: r.self, Shard: r.shard,
		Digest: cs.digest, Batch: cs.batch,
	}
	m.Sig = crypto.SignMessage(r.auth, m)
	r.remoteViews++
	if r.met != nil {
		r.met.remoteViews.Inc()
	}
	r.send(types.ReplicaNode(prev, r.self.Index), m)
}
