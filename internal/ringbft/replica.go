// Package ringbft implements the paper's primary contribution: the RingBFT
// meta-protocol for sharded-replicated permissioned blockchains (Section 4).
//
// Each shard runs an intra-shard PBFT engine (package pbft) unchanged; this
// package adds the cross-shard machinery on top:
//
//   - ring order: cross-shard transactions visit their involved shards in
//     ascending shard-identifier order, initiated by the lowest;
//   - sequence-ordered data locking with the π pending list and k_max
//     watermark (Fig 5 lines 14-28, Example 4.4), which yields deadlock
//     freedom (Theorem 6.2);
//   - the linear communication primitive: replica i of a shard talks only
//     to replica i of the next shard, and receivers locally re-share and
//     accept on f+1 matching copies (Section 4.3.6);
//   - process–forward–retransmit: Forward messages carry the batch, the nf
//     signed Commit certificate, and the accumulated read sets; Execute
//     messages drive the second rotation carrying Σ (Section 4.3.7);
//   - recovery: local timers (PBFT view change), remote view change
//     (Fig 6), and Forward retransmission (Section 5.1.1).
package ringbft

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"ringbft/internal/crypto"
	"ringbft/internal/evidence"
	"ringbft/internal/ledger"
	"ringbft/internal/metrics"
	"ringbft/internal/pbft"
	"ringbft/internal/sched"
	"ringbft/internal/store"
	"ringbft/internal/trace"
	"ringbft/internal/types"
	"ringbft/internal/wal"
)

// Sender abstracts the network so replicas run over simnet or tcpnet.
type Sender func(to types.NodeID, m *types.Message)

// Replica is one RingBFT replica: a PBFT participant of its shard plus the
// ring layer. Drive it with Run, or feed it directly with HandleMessage and
// HandleTick from a deterministic test harness.
type Replica struct {
	cfg      types.Config
	shard    types.ShardID
	self     types.NodeID
	peers    []types.NodeID
	auth     crypto.Authenticator
	verifier *crypto.Verifier
	send     Sender
	clock    func() time.Time
	allToAll bool

	engine *pbft.Engine
	kv     *store.KV
	locks  *store.LockTable
	chain  *ledger.Chain
	exec   *sched.Executor

	// Lock-order state (Fig 5): lockQueue holds committed entries awaiting
	// lock acquisition strictly in sequence order; kmax is the highest
	// sequence that acquired locks.
	kmax      types.SeqNum
	lockQueue map[types.SeqNum]*logEntry

	// csts tracks every cross-shard transaction this replica has seen, by
	// batch digest.
	csts map[types.Digest]*cstState

	// ev is the misbehavior evidence log: verifiable conflicting message
	// pairs (equivocating pre-prepares, conflicting Forwards, unjustified
	// NewView re-proposals, conflicting client requests). Always non-nil.
	ev *evidence.Log

	// clientSeen remembers the first batch digest observed per client
	// transaction id: a client re-submitting the same payload is a legal
	// retransmission (attack A1, answered from the executed cache), but two
	// different payloads under one id is client equivocation and gets an
	// evidence record. Bounded; tracking stops at the cap.
	clientSeen map[types.TxnID]types.Digest

	// fwdSeen remembers the first signed Forward per (sender, sequence): an
	// honest previous-shard replica signs exactly one Forward digest per
	// committed sequence, so a second digest under the same key indicts the
	// sender with a transferable signature pair. Bounded like clientSeen.
	fwdSeen map[fwdKey]evidence.Msg

	// executed caches results of executed batches so retransmitted client
	// requests are answered from the log (attack A1).
	executed map[types.Digest][]types.Value

	// awaitingProposal maps digests the primary must propose (client
	// requests and accepted Forwards). The watchdog view-changes if the
	// primary sits on them; a new primary proposes them on promotion.
	awaitingProposal map[types.Digest]*pendingProposal
	proposed         map[types.Digest]struct{}
	proposeQueue     []*types.Batch // FIFO; overflow + pipelined-mode staging

	// Pipelined consensus (cfg.PipelineDepth >= 1): backpressure polls the
	// transport's outbound backlog, bpLimit is the clamp threshold (half
	// the outbox depth), and mergedReqs counts client requests the
	// adaptive batcher coalesced into larger proposals.
	backpressure func() int
	bpLimit      int
	mergedReqs   int64

	// Rolling digest over the contiguous committed prefix (deterministic
	// across replicas even when non-conflicting executions interleave
	// differently; Section 7). Combined with the canonical state digest it
	// forms the checkpoint digest (see durability.go).
	prefixDigest   types.Digest
	lastCheckpoint types.SeqNum

	// Executed-prefix watermark: execSeq is the highest sequence such that
	// every block at or below it has executed locally; execDone holds
	// out-of-order completions above it. Checkpoints are scheduled at lock
	// time (pendingCps) and emitted once execSeq covers them, because the
	// canonical state digest needs every covered block applied.
	execSeq    types.SeqNum
	execDone   map[types.SeqNum]struct{}
	pendingCps []cpPoint
	cpMeta     map[types.SeqNum]cpMeta
	// stabilized records checkpoints this replica observed reach an nf
	// quorum, keyed by sequence — the anchors state transfer validates
	// against.
	stabilized map[types.SeqNum]types.Digest
	transfer   *transferState
	canonCache canonCache

	// Durability (nil = in-memory replica, the pre-WAL behaviour).
	dur          *wal.Manager
	rec          *wal.Recovered
	records      int
	snapEvery    types.SeqNum
	lastSnapshot types.SeqNum
	recovered    bool

	// lastVC is when the latest view installed; the awaiting-proposal
	// watchdog demands a new view change at most once per LocalTimeout
	// after it, so each view gets a full timeout to land the proposals
	// (several staggered stuck proposals would otherwise escalate views
	// faster than any view can commit — view-change livelock, found by
	// internal/chaos loss-storm schedules).
	lastVC time.Time

	// Live observability (nil when not requested): met holds registry
	// handles, tr the lifecycle tracer. Both are pure side effects.
	met *replicaMetrics
	tr  *trace.Tracer

	// Metrics (read via Stats after the run).
	executedTxns   int64
	executedCross  int64
	execErrors     int64
	viewChanges    int64
	retransmits    int64
	remoteViews    int64
	stateTransfers int64
	durErrors      int64
}

type logEntry struct {
	seq   types.SeqNum
	batch *types.Batch
	cert  []types.Signed
}

type pendingProposal struct {
	batch *types.Batch
	since time.Time
}

// fwdKey identifies one sender's Forward claim for one sequence.
type fwdKey struct {
	from types.NodeID
	seq  types.SeqNum
}

// Tracking caps for the misbehavior-detection maps: past these the replica
// stops learning new ids/lanes (existing entries still detect conflicts).
// Both bound memory against a flooding adversary, not honest load.
const (
	clientSeenCap = 1 << 16
	fwdSeenCap    = 1 << 16
)

// cstState is the per-replica lifecycle of one cross-shard batch.
type cstState struct {
	digest types.Digest
	batch  *types.Batch
	seq    types.SeqNum
	cert   []types.Signed

	// fwdCert is the PREVIOUS shard's commit certificate, taken from the
	// first verified inbound Forward. cert above is this shard's own — the
	// two differ, and it is fwdCert that justifies proposing the batch here
	// (pbft.Callbacks.Justification attaches it to view-change P-set proofs
	// so a NewView can prove justification to replicas whose own Forward
	// quorum never completed). Nil at the initiator and for single-shard
	// batches.
	fwdCert []types.Signed

	locked   bool
	executed bool
	released bool
	replied  bool

	// Linear-communication accounting for inbound Forward / Execute.
	fwdFrom     map[types.NodeID]struct{}
	fwdRelayed  bool
	fwdAccepted bool
	fwdFirst    time.Time // remote timer anchor (Fig 6)
	remoteSent  bool

	execFrom     map[types.NodeID]struct{}
	execRelayed  bool
	execAccepted bool

	remoteComplaints map[types.NodeID]struct{} // RemoteView senders (Fig 6)
	remoteRelayed    bool
	remoteHandled    bool

	carried []types.WriteSet // accumulated read/write sets (Σ)
	results []types.Value

	// plan is the conflict schedule precomputed while the Forward rotates
	// (sched.BuildPlan depends only on batch content), so commit-time
	// execution pays only the parallel run. Nil when ExecWorkers <= 1.
	plan *sched.Plan

	forwardSentAt time.Time // transmit timer anchor (Section 5.1.1)
	forwardMsg    *types.Message
	nextProgress  bool // evidence the next shard progressed; stops retransmission
}

// Options configures a Replica.
type Options struct {
	Config types.Config
	Shard  types.ShardID
	Self   types.NodeID
	Peers  []types.NodeID // replicas of Shard; Peers[i].Index == i
	Auth   crypto.Authenticator
	Send   Sender
	Clock  func() time.Time
	Window types.SeqNum // pbft log window override (0 = default)
	// AllToAllForward disables the linear communication primitive for
	// ablation benchmarks: Forward/Execute go to every replica of the next
	// shard instead of only the same-index one (quadratic cross-shard
	// traffic, the pattern Section 4.3.6 is designed to avoid).
	AllToAllForward bool

	// Durability and Recovered come from wal.OpenManager (see
	// OpenDurability): non-nil Durability makes the replica log executed
	// blocks and watermarks to the WAL and snapshot at stable checkpoints;
	// Recovered state is applied during Preload, before any traffic.
	Durability *wal.Manager
	Recovered  *wal.Recovered

	// Evidence is the misbehavior evidence log (nil = fresh in-memory log).
	// Pass an evidence.Open'd log to persist records across restarts.
	Evidence *evidence.Log

	// Metrics, when non-nil, registers this replica's series (consensus
	// counters, queue/lock gauges, WAL and scheduler telemetry) on the
	// given registry, labelled by shard and replica index. Pure side
	// effect: no protocol behaviour changes.
	Metrics *metrics.Registry
	// Tracer, when non-nil, receives per-sequence lifecycle events
	// (pre-prepare through reply, plus view-change and state-transfer
	// spans) stamped with the replica clock.
	Tracer *trace.Tracer

	// Backpressure, when non-nil, reports the transport's current queued
	// outbound backlog (tcpnet: the sum of per-peer outbox occupancy).
	// Under pipelined consensus (Config.PipelineDepth > 1) a backlog past
	// half the configured OutboxDepth clamps the pipeline to one slot —
	// pushing more proposals at a transport that is already queuing only
	// converts bounded outbox memory into counted drops. Nil (simnet, the
	// deterministic chaos cluster) means no backpressure signal.
	Backpressure func() int
}

// OpenDurability opens the durability manager for replica self under
// cfg.DataDir (per-replica subdirectory), returning it together with the
// recovered state to pass into Options. fs nil selects the real disk.
func OpenDurability(cfg types.Config, self types.NodeID, fs wal.FS) (*wal.Manager, *wal.Recovered, error) {
	dir := wal.Join(cfg.DataDir, fmt.Sprintf("s%d-r%d", self.Shard, self.Index))
	return wal.OpenManager(wal.ManagerOptions{
		FS: fs, Dir: dir, FsyncInterval: cfg.FsyncInterval,
	})
}

// New creates a RingBFT replica with a preloaded store partition.
func New(opts Options) *Replica {
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	verifier := crypto.NewVerifier(opts.Auth, opts.Config.VerifyWorkers)
	snapEvery := opts.Config.SnapshotInterval
	if snapEvery <= 0 {
		snapEvery = opts.Config.CheckpointInterval
	}
	ev := opts.Evidence
	if ev == nil {
		ev = evidence.NewMemory()
	}
	r := &Replica{
		cfg:              opts.Config,
		shard:            opts.Shard,
		self:             opts.Self,
		peers:            opts.Peers,
		auth:             opts.Auth,
		verifier:         verifier,
		send:             opts.Send,
		clock:            opts.Clock,
		kv:               store.NewKV(),
		locks:            store.NewLockTable(),
		exec:             sched.New(opts.Config.ExecWorkers),
		chain:            ledger.NewChain(opts.Shard),
		lockQueue:        make(map[types.SeqNum]*logEntry),
		csts:             make(map[types.Digest]*cstState),
		executed:         make(map[types.Digest][]types.Value),
		awaitingProposal: make(map[types.Digest]*pendingProposal),
		proposed:         make(map[types.Digest]struct{}),
		allToAll:         opts.AllToAllForward,
		execDone:         make(map[types.SeqNum]struct{}),
		cpMeta:           make(map[types.SeqNum]cpMeta),
		stabilized:       make(map[types.SeqNum]types.Digest),
		dur:              opts.Durability,
		rec:              opts.Recovered,
		snapEvery:        snapEvery,
		ev:               ev,
		clientSeen:       make(map[types.TxnID]types.Digest),
		fwdSeen:          make(map[fwdKey]evidence.Msg),
		backpressure:     opts.Backpressure,
	}
	bpDepth := opts.Config.OutboxDepth
	if bpDepth <= 0 {
		bpDepth = 4096 // the tcpnet default
	}
	r.bpLimit = bpDepth / 2
	r.tr = opts.Tracer
	if opts.Metrics != nil {
		r.met = newReplicaMetrics(opts.Metrics, opts.Shard, opts.Self)
		if r.dur != nil {
			r.dur.SetObserver(r.met.walObserver())
		}
		r.exec.SetObserver(r.met.schedObserver())
	}
	var onPhase func(seq types.SeqNum, ph trace.Phase, at time.Time)
	if r.tr != nil || r.met != nil {
		onPhase = r.observePhase
	}
	r.engine = pbft.New(opts.Shard, opts.Self, opts.Peers, opts.Auth, pbft.Callbacks{
		Send:        func(to types.NodeID, m *types.Message) { r.send(to, m) },
		Committed:   r.onCommitted,
		ViewChanged: r.onViewChanged,
		Stabilized:  r.onStabilized,
		Justify:     func(b *types.Batch) bool { return r.justified(b) },
		// NewView re-proposals must prove justification to replicas whose
		// own Forward quorum never completed: the attached certificate is
		// the previous shard's nf-signed commit cert, self-certifying under
		// the same check onForward applies to inbound Forwards.
		Justification: func(b *types.Batch) []types.Signed {
			if b == nil || !b.IsCrossShard() || b.Initiator() == r.shard {
				return nil
			}
			if cs, ok := r.csts[b.Digest()]; ok {
				return cs.fwdCert
			}
			return nil
		},
		VerifyJustification: func(b *types.Batch, just []types.Signed) bool {
			if b == nil || !b.IsCrossShard() || b.Initiator() == r.shard ||
				!b.Involves(r.shard) || len(just) == 0 {
				return false
			}
			if r.met != nil {
				r.met.certVerifies.Inc()
			}
			return pbft.VerifyCert(r.verifier, b.PrevInRing(r.shard), b.Digest(), just, r.cfg.NF()) == nil
		},
		Equivocation: func(first, second *types.Message) {
			// first is the accepted PrePrepare; the accusation targets its
			// sender (the primary of that view). MAC-authenticated halves:
			// recorder-verifiable, not transferable.
			r.ev.Add(evidence.Record{
				Kind: evidence.KindEquivocation, Accused: first.From,
				Shard: r.shard, View: first.View, Seq: first.Seq,
				First: evidence.MsgOf(first), Second: evidence.MsgOf(second),
			})
		},
		UnjustifiedNewView: func(m *types.Message, p types.PreparedProof) {
			// The NewView signature covers only the canonical tuple, not the
			// re-proposal bodies, so this record transfers the signed claim
			// that m.From led view m.View — the offending proof itself is
			// recorder-attested only (see the evidence package doc).
			r.ev.Add(evidence.Record{
				Kind: evidence.KindUnjustifiedNewView, Accused: m.From,
				Shard: r.shard, View: m.View, Seq: p.Seq,
				First: evidence.MsgOf(m),
				Second: evidence.Msg{
					From: m.From, Type: types.MsgPrePrepare, Shard: r.shard,
					View: p.View, Seq: p.Seq, Digest: p.Digest,
				},
				Transferable: true,
			})
		},
	}, pbft.Options{Clock: opts.Clock, ViewTimeout: opts.Config.LocalTimeout, Window: opts.Window, Verifier: verifier, OnPhase: onPhase})
	return r
}

// observePhase fans a lifecycle transition out to the tracer and the
// per-phase counters. It is the pbft engine's OnPhase callback and the
// funnel for ring-layer phases (forward, execute, reply, state transfer).
func (r *Replica) observePhase(seq types.SeqNum, ph trace.Phase, at time.Time) {
	if r.tr != nil {
		r.tr.Record(at, int(r.shard), uint64(seq), ph)
	}
	r.met.phase(ph)
}

// observe records a ring-layer lifecycle event stamped with the replica
// clock. No-op unless observability was requested.
func (r *Replica) observe(seq types.SeqNum, ph trace.Phase) {
	if r.tr == nil && r.met == nil {
		return
	}
	r.observePhase(seq, ph, r.clock())
}

// Preload installs n records of this shard's partition (see
// store.KV.Preload), then — for a durable replica — applies the state
// recovered from disk on top: the latest snapshot's table and ledger, plus
// the WAL tail replay. Call before the first message is handled.
func (r *Replica) Preload(records int) {
	r.records = records
	r.kv.Preload(r.shard, r.cfg.Shards, records)
	if r.dur != nil && r.rec != nil && !r.rec.Empty() {
		r.applyRecovered(r.rec)
	}
	r.rec = nil
}

// Recovered reports whether this replica resumed from durable state.
func (r *Replica) Recovered() bool { return r.recovered }

// ExecutedThrough returns the executed-prefix watermark: every sequence at
// or below it has executed locally (blocks above it may also have executed
// out of order and sit in the retained chain). The chaos checkers use it to
// reconstruct the exact executed set. Call only after Run returns.
func (r *Replica) ExecutedThrough() types.SeqNum { return r.execSeq }

// ExecutedResults returns a deterministic hash of the cached execution
// results per executed batch digest — the cross-replica agreement surface
// the chaos checkers compare ("executed-result caches agree on batches both
// replicas executed"). Call only after Run returns.
func (r *Replica) ExecutedResults() map[types.Digest]uint64 {
	out := make(map[types.Digest]uint64, len(r.executed))
	for d, vals := range r.executed {
		out[d] = types.HashValues(vals)
	}
	return out
}

// Store returns the replica's key-value partition (for inspection).
func (r *Replica) Store() *store.KV { return r.kv }

// Chain returns the replica's ledger.
func (r *Replica) Chain() *ledger.Chain { return r.chain }

// Engine exposes the intra-shard PBFT engine (for tests and fault drivers).
func (r *Replica) Engine() *pbft.Engine { return r.engine }

// Evidence returns the replica's misbehavior evidence log.
func (r *Replica) Evidence() *evidence.Log { return r.ev }

// Shard returns the replica's shard.
func (r *Replica) Shard() types.ShardID { return r.shard }

// ID returns the replica's node id.
func (r *Replica) ID() types.NodeID { return r.self }

// Stats is a snapshot of replica counters.
type Stats struct {
	ExecutedTxns  int64
	ExecutedCross int64
	// ExecErrors counts transactions whose execution failed (missing remote
	// read in Σ) and fell back to the deterministic sentinel result 0. Any
	// non-zero value means Σ accumulation is broken; happy-path tests assert
	// it stays 0.
	ExecErrors  int64
	ViewChanges int64
	Retransmits int64
	RemoteViews int64
	// StateTransfers counts canonical states installed from peers (crash
	// recovery with a gap, dark replicas, wiped rejoins).
	StateTransfers int64
	// DurErrors counts durability-layer write failures (0 on any healthy
	// filesystem; recovery degrades gracefully but tests assert 0).
	DurErrors int64
	// CoalescedReqs counts client requests the adaptive batcher merged
	// into larger proposals (primary-side only; 0 with PipelineDepth 0).
	CoalescedReqs int64
	LockedKeys    int
	LedgerHeight  int
	KMax          types.SeqNum
	ExecSeq       types.SeqNum
}

// Stats returns a snapshot of the replica's counters. Call only from the
// replica's own goroutine or after Run returns.
func (r *Replica) Stats() Stats {
	return Stats{
		ExecutedTxns:   r.executedTxns,
		ExecutedCross:  r.executedCross,
		ExecErrors:     r.execErrors,
		ViewChanges:    r.viewChanges,
		Retransmits:    r.retransmits,
		RemoteViews:    r.remoteViews,
		StateTransfers: r.stateTransfers,
		DurErrors:      r.durErrors,
		CoalescedReqs:  r.mergedReqs,
		LockedKeys:     r.locks.Count(),
		LedgerHeight:   r.chain.Height(),
		KMax:           r.kmax,
		ExecSeq:        r.execSeq,
	}
}

// Run drives the replica's event loop until ctx is cancelled: inbox
// messages, plus a periodic tick for the three timers (local, remote,
// transmit; Section 5).
func (r *Replica) Run(ctx context.Context, inbox <-chan *types.Message) {
	tickEvery := r.cfg.LocalTimeout / 4
	if tickEvery <= 0 {
		tickEvery = 25 * time.Millisecond
	}
	ticker := time.NewTicker(tickEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case m, ok := <-inbox:
			if !ok {
				return
			}
			r.HandleMessage(m)
		case <-ticker.C:
			r.HandleTick(r.clock())
		}
	}
}

// HandleMessage dispatches one inbound message. Exported so deterministic
// test harnesses can drive replicas without goroutines.
func (r *Replica) HandleMessage(m *types.Message) {
	if m == nil {
		return
	}
	switch m.Type {
	case types.MsgClientRequest:
		r.onClientRequest(m)
	case types.MsgPrePrepare, types.MsgPrepare, types.MsgCommit,
		types.MsgCheckpoint, types.MsgViewChange, types.MsgNewView:
		r.engine.OnMessage(m)
		r.tryProposeQueued()
	case types.MsgForward:
		r.onForward(m)
	case types.MsgExecute:
		r.onExecute(m)
	case types.MsgRemoteView:
		r.onRemoteView(m)
	case types.MsgStateRequest:
		r.onStateRequest(m)
	case types.MsgStateSnapshot:
		r.onStateSnapshot(m)
	default:
		// Protocol-comparison message types (HotStuff, PoE, SBFT, Zyzzyva)
		// never reach a RingBFT replica; an unknown type is a malformed or
		// misrouted frame and is dropped, never guessed at.
	}
}

// onClientRequest implements Fig 5 lines 4-9 plus the attack-A1 rules: a
// non-primary forwards to its primary and arms the watchdog; an executed
// request is answered from the cache; a request whose initiator is another
// shard is routed to that shard's primary.
func (r *Replica) onClientRequest(m *types.Message) {
	if m.Batch == nil || len(m.Batch.Txns) == 0 {
		return
	}
	d := m.Batch.Digest()
	if m.Digest != (types.Digest{}) && m.Digest != d {
		return // malformed: digest does not match content
	}
	r.noteClientConflicts(m.Batch, d)
	if res, ok := r.executed[d]; ok {
		r.respond(clientOf(m.Batch), d, res)
		return
	}
	if !m.Batch.Involves(r.shard) || m.Batch.Initiator() != r.shard {
		// Route to the primary of the first shard in ring order.
		init := m.Batch.Initiator()
		fwd := *m
		fwd.From = r.self
		r.send(types.ReplicaNode(init, 0), &fwd)
		return
	}
	r.enqueueProposal(m.Batch, d)
}

// noteClientConflicts records client-equivocation evidence: two different
// payloads submitted under one transaction id. Re-submitting the same
// payload is a legal retransmission (attack A1, answered from the executed
// cache); only a digest mismatch under the same id is misbehavior. The
// batch is NOT dropped — ordering runs under consensus keyed by digest, so
// both variants committing is safe; the log just names who tried. Client
// requests carry no authenticator (see onClientRequest), so the record is
// advisory: every honest replica the client contacted observes the same
// pair, but it cannot convince a third party (Transferable=false).
func (r *Replica) noteClientConflicts(b *types.Batch, d types.Digest) {
	for i := range b.Txns {
		id := b.Txns[i].ID
		prev, ok := r.clientSeen[id]
		if !ok {
			if len(r.clientSeen) < clientSeenCap {
				r.clientSeen[id] = d
			}
			continue
		}
		if prev == d {
			continue
		}
		client := types.ClientNode(id.Client)
		r.ev.Add(evidence.Record{
			Kind: evidence.KindConflictingClient, Accused: client,
			Shard: r.shard, Seq: types.SeqNum(id.Seq),
			First:  evidence.Msg{From: client, Type: types.MsgClientRequest, Shard: r.shard, Digest: prev},
			Second: evidence.Msg{From: client, Type: types.MsgClientRequest, Shard: r.shard, Digest: d},
		})
		return // one record per conflicting batch pair is plenty
	}
}

// enqueueProposal registers a batch the current primary must order. The
// primary proposes immediately (window permitting); backups arm the local
// timer so a primary that sits on the request is replaced (attack A1/A2).
func (r *Replica) enqueueProposal(b *types.Batch, d types.Digest) {
	if _, done := r.proposed[d]; done {
		return
	}
	if _, ok := r.awaitingProposal[d]; !ok {
		r.awaitingProposal[d] = &pendingProposal{batch: b, since: r.clock()}
	}
	if r.engine.IsPrimary() && !r.engine.InViewChange() {
		r.propose(b, d)
	}
}

// justified reports whether batch b may enter local consensus. A
// cross-shard batch at a non-initiator shard must be vouched for by an
// accepted Forward (f+1 copies carrying the previous shard's commit
// certificate). Without this gate a Byzantine primary commits a fabricated
// batch variant — its own implicit prepare plus f honest backups is a
// quorum — whose locks nothing can ever release: no other shard committed
// it, so its ring rotation never completes and every conflicting
// transaction queues behind it forever. Every proposal path shares this
// gate: the engine's Justify callback (parking inbound PrePrepares until
// onForward's ReplayParked), propose/tryProposeQueued (so the primary never
// burns the proposed flag on a batch it cannot justify yet), the
// awaiting-proposal watchdog (HandleTick), and NewView adoption (which
// additionally accepts a carried certificate; see pbft justifiedProof).
func (r *Replica) justified(b *types.Batch) bool {
	if b == nil || !b.IsCrossShard() || b.Initiator() == r.shard {
		return true
	}
	cs, ok := r.csts[b.Digest()]
	return ok && cs.fwdAccepted
}

func (r *Replica) propose(b *types.Batch, d types.Digest) {
	if _, done := r.proposed[d]; done {
		return
	}
	if !r.justified(b) {
		// Do not burn the proposed flag: the batch stays in
		// awaitingProposal and re-enters through onForward's
		// enqueueProposal once the Forward quorum lands. Proposing it now
		// would only park on every backup; worse, cycling primaries would
		// each mark it proposed and the eventual certificate arrival would
		// find nobody left willing to propose (middle-shard wedge, rings of
		// three or more shards, found by internal/chaos).
		return
	}
	if r.cfg.PipelineDepth > 0 {
		// Pipelined mode: every proposal goes through the FIFO queue so
		// fresh arrivals cannot jump requests already waiting for a slot,
		// and the drain below applies the depth bound and the adaptive
		// batcher uniformly.
		r.proposeQueue = append(r.proposeQueue, b)
		r.tryProposeQueued()
		return
	}
	if _, err := r.engine.Propose(b); err != nil {
		// Window full or view change: park it for the tick to retry.
		r.proposeQueue = append(r.proposeQueue, b)
		return
	}
	r.proposed[d] = struct{}{}
}

// pipelineSlots returns how many additional proposals the primary may put
// in flight right now under cfg.PipelineDepth, after subtracting the
// engine's current in-flight count and applying the backpressure clamp.
// Call only with PipelineDepth >= 1.
func (r *Replica) pipelineSlots() int {
	depth := r.cfg.PipelineDepth
	if depth > 1 && r.backpressure != nil && r.backpressure() > r.bpLimit {
		// The transport is already queuing: stop widening the window and
		// let the in-flight tail drain. One slot keeps liveness (the
		// engine's view-change timers assume a primary that proposes).
		depth = 1
		if r.met != nil {
			r.met.pipelineClamped.Inc()
		}
	}
	return depth - r.engine.InFlight()
}

func (r *Replica) tryProposeQueued() {
	if !r.engine.IsPrimary() || r.engine.InViewChange() {
		return
	}
	for len(r.proposeQueue) > 0 {
		b := r.proposeQueue[0]
		d := b.Digest()
		if _, done := r.proposed[d]; done {
			r.proposeQueue = r.proposeQueue[1:]
			continue
		}
		if !r.justified(b) {
			// Unreachable today (propose gates before queueing and
			// justification latches), but the gate stays uniform across
			// proposal paths: drop from the retry queue, keep in
			// awaitingProposal for onForward to revive.
			r.proposeQueue = r.proposeQueue[1:]
			continue
		}
		if r.cfg.PipelineDepth > 0 {
			if r.pipelineSlots() <= 0 {
				return // window full: wait for a commit to free a slot
			}
			if r.holdForFill(b) {
				return // deep slot, partial batch: wait for fill or drain
			}
			b = r.coalesceHead()
			d = b.Digest()
		}
		if _, err := r.engine.Propose(b); err != nil {
			return // still blocked
		}
		r.proposed[d] = struct{}{}
		for _, sb := range b.SubBatches() {
			// Latch the original request digests too, so a client
			// retransmission of a coalesced request cannot be proposed a
			// second time (its transactions would execute twice).
			r.proposed[sb.Digest()] = struct{}{}
		}
		r.proposeQueue = r.proposeQueue[1:]
	}
}

// holdForFill reports whether the primary should keep the queue's head
// waiting for more arrivals instead of proposing it into a free slot.
// The minimum proposal size ramps with window occupancy —
// BatchSize × inFlight / PipelineDepth — so an empty window proposes
// immediately (latency mode) while each deeper slot demands a fuller
// merge (throughput mode). The ramp keeps the window's total transaction
// carry at saturation at least a full batch per round trip — what
// lockstep-with-merging achieves — instead of letting a burst of small
// proposals occupy every slot and multiply per-proposal consensus cost
// (messages, signatures, quorum waits) exactly when the system is
// closest to its knee. Holding is always safe: every commit shrinks the
// in-flight count, lowering the bar and re-draining, so with no further
// arrivals the held head is proposed — no timer, no livelock.
func (r *Replica) holdForFill(head *types.Batch) bool {
	if head.IsCrossShard() {
		return false // ring hops never wait: the whole ring is behind them
	}
	need := r.cfg.BatchSize * r.engine.InFlight() / r.cfg.PipelineDepth
	if need <= 0 {
		return false // shallow window: propose immediately
	}
	queued := 0
	for _, b := range r.proposeQueue {
		if b.IsCrossShard() || !sameInvolved(head.Involved, b.Involved) {
			break // coalesceHead's merge run stops here too
		}
		queued += len(b.Txns)
		if queued >= need {
			return false // enough mergeable backlog for this slot — send it
		}
	}
	return true
}

// coalesceHead is the adaptive batcher: it takes the request at the head of
// the proposal queue and, under backlog, merges the immediately following
// queued requests into it — growing the proposal toward cfg.BatchSize —
// leaving the merged followers out of the queue. Under light load the head
// is proposed alone, immediately, with its digest (and therefore the wire
// encoding every waiting client matches on) unchanged. Only consecutive
// single-shard requests with the identical involved set merge: cross-shard
// batches are pinned to their digest by the ring rotation (Forward
// certificates, Σ accumulation, and lock release are all keyed by it).
// The caller still holds the head at queue position 0; merged followers are
// removed here.
func (r *Replica) coalesceHead() *types.Batch {
	head := r.proposeQueue[0]
	if head.IsCrossShard() || len(head.Reqs) > 0 ||
		len(head.Txns) >= r.cfg.BatchSize || len(r.proposeQueue) < 2 {
		return head
	}
	txns := head.Txns
	reqs := []uint32{uint32(len(head.Txns))}
	rest := r.proposeQueue[1:]
	taken := 0
	for _, nb := range rest {
		if nb.IsCrossShard() || len(nb.Reqs) > 0 ||
			!sameInvolved(head.Involved, nb.Involved) ||
			len(txns)+len(nb.Txns) > r.cfg.BatchSize {
			break
		}
		if _, done := r.proposed[nb.Digest()]; done {
			break // keep FIFO semantics: the dedup shift handles it later
		}
		txns = append(txns[:len(txns):len(txns)], nb.Txns...)
		reqs = append(reqs, uint32(len(nb.Txns)))
		taken++
	}
	if taken == 0 {
		return head
	}
	// Compact the queue: position 0 keeps the head (the caller shifts it),
	// the merged followers disappear.
	r.proposeQueue = append(r.proposeQueue[:1], rest[taken:]...)
	r.mergedReqs += int64(taken)
	if r.met != nil {
		r.met.coalescedReqs.Add(int64(taken))
	}
	return &types.Batch{Txns: txns, Involved: head.Involved, Reqs: reqs}
}

// sameInvolved reports whether two involved sets are identical (both are
// canonically sorted by construction).
func sameInvolved(a, b []types.ShardID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// onCommitted is the engine's commit callback (may fire out of sequence
// order): enqueue for in-order locking and drain (Fig 5 lines 14-28).
func (r *Replica) onCommitted(seq types.SeqNum, batch *types.Batch, cert []types.Signed) {
	d := batch.Digest()
	delete(r.awaitingProposal, d)
	r.proposed[d] = struct{}{}
	if len(batch.Reqs) > 1 {
		// A coalesced proposal commits every client request inside it:
		// disarm the per-request watchdog entries (or every backup would
		// keep demanding a view change for requests already decided) and
		// latch their digests against re-proposal.
		for _, sb := range batch.SubBatches() {
			sd := sb.Digest()
			delete(r.awaitingProposal, sd)
			r.proposed[sd] = struct{}{}
		}
	}
	r.lockQueue[seq] = &logEntry{seq: seq, batch: batch, cert: cert}
	r.drainLockQueue()
}

// drainLockQueue acquires locks strictly in sequence order. The entry at
// k_max+1 blocks the queue while its data is locked by an earlier
// transaction (head-of-line, Example 4.4) — the ring order makes this
// deadlock-free (Theorem 6.2).
func (r *Replica) drainLockQueue() {
	for {
		ent, ok := r.lockQueue[r.kmax+1]
		if !ok {
			return
		}
		keys := r.localKeys(ent.batch)
		owner := lockOwner(ent.batch)
		if !r.locks.TryLock(keys, owner) {
			return
		}
		delete(r.lockQueue, r.kmax+1)
		r.kmax++
		r.advancePrefix(ent.batch)
		r.afterLocked(ent)
	}
}

// advancePrefix folds the committed batch digest into the rolling prefix
// digest, durably records the watermark advance, and schedules a
// checkpoint every CheckpointInterval sequences. The checkpoint is emitted
// by maybeEmitCheckpoints once local execution covers it, because its
// digest certifies the canonical state at that sequence (durability.go).
func (r *Replica) advancePrefix(b *types.Batch) {
	d := b.Digest()
	var buf [72]byte
	copy(buf[:32], r.prefixDigest[:])
	copy(buf[32:64], d[:])
	binary.BigEndian.PutUint64(buf[64:], uint64(r.kmax))
	r.prefixDigest = sha256Sum(buf[:])
	interval := r.cfg.CheckpointInterval
	if interval > 0 && r.kmax >= r.lastCheckpoint+interval {
		r.lastCheckpoint = r.kmax
		r.pendingCps = append(r.pendingCps, cpPoint{seq: r.kmax, prefix: r.prefixDigest})
	}
	r.logProgress(d)
	r.maybeEmitCheckpoints()
}

// afterLocked runs once a committed batch holds its locks: single-shard
// batches execute and answer the client; cross-shard batches read their
// local fragment and forward along the ring.
func (r *Replica) afterLocked(ent *logEntry) {
	b := ent.batch
	if len(b.Txns) == 0 { // no-op filler from a view change
		r.locks.Unlock(r.localKeys(b), lockOwner(b))
		r.logBlock(ent.seq, r.engine.Primary(r.engine.View()), b, nil)
		r.markExecuted(ent.seq)
		return
	}
	d := b.Digest()
	if !b.IsCrossShard() {
		results := r.executeBatch(b, nil, nil)
		r.observe(ent.seq, trace.PhaseExecute)
		r.locks.Unlock(r.localKeys(b), lockOwner(b))
		r.executed[d] = results
		primary := r.engine.Primary(r.engine.View())
		r.chain.Append(ent.seq, primary, b)
		r.logBlock(ent.seq, primary, b, results)
		r.markExecuted(ent.seq)
		r.respondBatch(b, d, results)
		r.observe(ent.seq, trace.PhaseReply)
		r.drainLockQueue()
		return
	}

	cs := r.cst(d)
	cs.batch = b
	cs.seq = ent.seq
	cs.cert = ent.cert
	cs.locked = true
	if r.exec.Workers() > 1 && cs.plan == nil {
		// Schedule now, while the Forward/Execute rotations hide the cost.
		cs.plan = sched.BuildPlan(b.Txns, r.shard, r.cfg.Shards)
	}

	// Accumulate this shard's read fragment into the carried Σ so that by
	// the end of rotation 1 the initiator holds every read value the
	// transaction needs (complex cst, Section 8.8).
	cs.mergeCarried([]types.WriteSet{r.localReadSet(b)})
	r.sendForward(cs)

	// The rotation may already have completed while this cst sat in the
	// lock queue: under backlog the wrap Forwards (initiator) or the
	// Execute quorum (other shards) accept before the locks acquire, and
	// the onForward/onExecute execution triggers have already passed.
	// Execute now — the merged Σ carries everything those copies brought
	// (found by internal/chaos, loss-storm schedules).
	if (cs.fwdAccepted && r.shard == b.Initiator()) || cs.execAccepted {
		r.executeCst(cs)
	}
}

// executeBatch applies every transaction's local fragment through the
// dependency-aware executor (sequential when ExecWorkers <= 1). remote
// supplies cross-shard read values (nil for single-shard batches); plan is
// an optional precomputed schedule (nil = plan inline). A failing
// transaction (missing dependency = broken Σ accumulation) executes
// deterministically to the sentinel 0 so replicas stay aligned, and is
// counted in Stats.ExecErrors.
func (r *Replica) executeBatch(b *types.Batch, remote map[types.Key]types.Value, plan *sched.Plan) []types.Value {
	apply := func(i int) (types.Value, error) {
		return r.kv.ExecuteTxn(&b.Txns[i], r.shard, r.cfg.Shards, remote)
	}
	var results []types.Value
	var errs int64
	if plan != nil {
		results, errs = r.exec.ExecutePlan(plan, apply)
	} else {
		results, errs = r.exec.ExecuteBatch(b.Txns, r.shard, r.cfg.Shards, apply)
	}
	r.execErrors += errs
	r.executedTxns += int64(len(b.Txns))
	if b.IsCrossShard() {
		r.executedCross += int64(len(b.Txns))
	}
	if r.met != nil {
		r.met.execErrors.Add(errs)
		r.met.executedTxns.Add(int64(len(b.Txns)))
		if b.IsCrossShard() {
			r.met.executedCross.Add(int64(len(b.Txns)))
		}
	}
	return results
}

// localReadSet snapshots this shard's read fragment of the batch.
func (r *Replica) localReadSet(b *types.Batch) types.WriteSet {
	ws := types.WriteSet{Shard: r.shard}
	for i := range b.Txns {
		ks, vs := r.kv.ReadLocal(&b.Txns[i], r.shard, r.cfg.Shards)
		ws.ReadKeys = append(ws.ReadKeys, ks...)
		ws.ReadValues = append(ws.ReadValues, vs...)
	}
	return ws
}

// localKeys returns every key of the batch owned by this shard (read and
// write sets both lock; Fig 5 line 18 locks the data-fragment).
func (r *Replica) localKeys(b *types.Batch) []types.Key {
	var keys []types.Key
	for i := range b.Txns {
		t := &b.Txns[i]
		keys = append(keys, t.ReadsAt(r.shard, r.cfg.Shards)...)
		keys = append(keys, t.WritesAt(r.shard, r.cfg.Shards)...)
	}
	return keys
}

// respondBatch answers the clients behind an executed single-shard batch.
// A plain batch answers its issuer under the batch digest; a coalesced
// batch is split back into the original client requests, each answered —
// and cached for retransmissions — under the digest that client computed
// when it submitted (a client knows nothing about the primary's batching).
func (r *Replica) respondBatch(b *types.Batch, d types.Digest, results []types.Value) {
	if len(b.Reqs) < 2 {
		r.respond(clientOf(b), d, results)
		return
	}
	lo := 0
	for _, sb := range b.SubBatches() {
		sd := sb.Digest()
		res := results[lo : lo+len(sb.Txns)]
		lo += len(sb.Txns)
		r.executed[sd] = res
		r.respond(clientOf(&sb), sd, res)
	}
}

func (r *Replica) respond(client types.NodeID, d types.Digest, results []types.Value) {
	// View rides along so clients can re-target the current primary after a
	// view change (standard PBFT client behaviour).
	m := &types.Message{
		Type: types.MsgResponse, From: r.self, Shard: r.shard,
		View: r.engine.View(), Digest: d, Results: results,
	}
	m.MAC = crypto.MACMessage(r.auth, client, m)
	r.send(client, m)
}

func (r *Replica) cst(d types.Digest) *cstState {
	cs, ok := r.csts[d]
	if !ok {
		cs = &cstState{
			digest:   d,
			fwdFrom:  make(map[types.NodeID]struct{}),
			execFrom: make(map[types.NodeID]struct{}),
		}
		r.csts[d] = cs
	}
	return cs
}

// onViewChanged: a newly promoted primary proposes everything still waiting
// (client requests and accepted Forwards whose proposal the old primary
// suppressed).
func (r *Replica) onViewChanged(types.View) {
	r.viewChanges++
	if r.met != nil {
		r.met.viewChanges.Inc()
	}
	r.lastVC = r.clock()
	if !r.engine.IsPrimary() {
		return
	}
	// Propose in sorted-digest order: sequence assignment must not depend
	// on map iteration order, or identically seeded runs diverge.
	for _, d := range sortedAwaiting(r.awaitingProposal) {
		if _, done := r.proposed[d]; !done {
			r.propose(r.awaitingProposal[d].batch, d)
		}
	}
	r.tryProposeQueued()
}

// sortedAwaiting returns the awaiting-proposal digests in byte order.
func sortedAwaiting(m map[types.Digest]*pendingProposal) []types.Digest {
	out := make([]types.Digest, 0, len(m))
	for d := range m {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i][:], out[j][:]) < 0 })
	return out
}

// clientOf returns the client every replica answers for a batch: the issuer
// recorded in the transactions themselves, so backups can respond without
// having seen the original client message (the PrePrepare carries the batch).
func clientOf(b *types.Batch) types.NodeID {
	return types.ClientNode(b.Txns[0].ID.Client)
}

// lockOwner derives the lock-owner token from the batch digest.
func lockOwner(b *types.Batch) uint64 {
	d := b.Digest()
	return binary.BigEndian.Uint64(d[:8])
}

// ViewChangeCount returns the number of view changes this replica installed.
// Safe to call only after Run has returned (or from the replica goroutine).
func (r *Replica) ViewChangeCount() int64 { return r.viewChanges }

// RetransmitCount returns the number of Forward retransmissions performed.
// Safe to call only after Run has returned (or from the replica goroutine).
func (r *Replica) RetransmitCount() int64 { return r.retransmits }

// StateTransferCount returns the number of peer state transfers installed.
// Safe to call only after Run has returned (or from the replica goroutine).
func (r *Replica) StateTransferCount() int64 { return r.stateTransfers }
