package ringbft

import (
	"crypto/sha256"

	"ringbft/internal/crypto"
	"ringbft/internal/pbft"
	"ringbft/internal/types"
)

func sha256Sum(b []byte) types.Digest { return types.Digest(sha256.Sum256(b)) }

// sendForward implements Fig 5 line 19: after locking, replica r sends a
// signed Forward — the batch, the nf-signature commit certificate A, and the
// accumulated read sets — to the single replica of the next involved shard
// with the same index (the linear communication primitive).
func (r *Replica) sendForward(cs *cstState) {
	next, _ := cs.batch.NextInRing(r.shard)
	m := &types.Message{
		Type: types.MsgForward, From: r.self, Shard: r.shard,
		Seq: cs.seq, Digest: cs.digest,
		Batch: cs.batch, Cert: cs.cert, WriteSets: cs.carried,
	}
	m.Sig = crypto.SignMessage(r.auth, m)
	cs.forwardMsg = m
	cs.forwardSentAt = r.clock()
	r.sendRing(next, m)
}

// sendRing delivers a cross-shard message under the configured
// communication primitive: one same-index replica (linear, the default) or
// every replica of the next shard (all-to-all ablation).
func (r *Replica) sendRing(next types.ShardID, m *types.Message) {
	if !r.allToAll {
		r.send(types.ReplicaNode(next, r.self.Index), m)
		return
	}
	for i := 0; i < r.cfg.ReplicasPerShard; i++ {
		r.send(types.ReplicaNode(next, i), m)
	}
}

// onForward handles a Forward from the previous shard in ring order
// (Fig 5 lines 29-39). The first same-index copy is re-shared locally
// (line 30); the message is accepted once f+1 distinct previous-shard
// replicas vouch for it (line 31), which by the linear communication
// primitive guarantees at least one copy originated at a non-faulty sender.
func (r *Replica) onForward(m *types.Message) {
	b := m.Batch
	if b == nil || len(b.Txns) == 0 || !b.IsCrossShard() {
		return
	}
	d := b.Digest()
	if d != m.Digest || !b.Involves(r.shard) {
		return
	}
	if m.From.Kind != types.KindReplica || m.From.Shard != b.PrevInRing(r.shard) || m.Shard != m.From.Shard {
		return
	}
	if crypto.VerifyMessageSig(r.auth, m) != nil {
		return
	}
	// The Forward must prove the previous shard replicated the batch:
	// nf valid commit signatures from that shard (checked once per sender).
	if err := pbft.VerifyCert(r.verifier, m.From.Shard, d, m.Cert, r.cfg.NF()); err != nil {
		return
	}

	cs := r.cst(d)
	if cs.batch == nil {
		// Adopt the batch as soon as one valid Forward is seen: the remote
		// timer needs it to complain (Fig 6) even before f+1 copies arrive.
		cs.batch = b
	}
	if _, dup := cs.fwdFrom[m.From]; dup {
		// Retransmission of an already-counted copy: the previous shard is
		// still waiting for evidence of progress. If we already executed,
		// the lost message is our Execute — resend it down the ring.
		if cs.executed {
			r.sendExecute(cs)
		}
		return
	}
	cs.fwdFrom[m.From] = struct{}{}
	if cs.fwdFirst.IsZero() {
		cs.fwdFirst = r.clock() // arm the remote timer (Fig 6)
	}
	if m.From.Index == r.self.Index && !cs.fwdRelayed {
		cs.fwdRelayed = true
		for _, p := range r.peers {
			if p != r.self {
				r.send(p, m)
			}
		}
	}
	if cs.fwdAccepted || len(cs.fwdFrom) <= r.cfg.F() {
		return
	}
	cs.fwdAccepted = true
	cs.fwdFirst = r.clock() // re-anchor the remote timer for rotation 2
	if cs.batch == nil {
		cs.batch = b
	}

	if cs.locked {
		// Second rotation (Fig 5 line 32): we are the first shard in ring
		// order, our locks are held, and the Forward has travelled the full
		// ring — every involved shard holds its locks. Execute. Copy the
		// carried sets: executeCst appends this shard's fragment, and the
		// in-process transports share slices between sender and receiver.
		cs.carried = append([]types.WriteSet(nil), m.WriteSets...)
		r.executeCst(cs)
		return
	}
	// First rotation at a non-initiator shard: adopt the accumulated read
	// sets and replicate the batch locally (Fig 5 lines 38-39).
	cs.carried = append([]types.WriteSet(nil), m.WriteSets...)
	r.enqueueProposal(b, d)
}

// executeCst executes this shard's fragment with every dependency resolved
// from the carried Σ, appends the block, releases locks, and passes the
// Execute message down the ring (Fig 5 lines 33-37).
func (r *Replica) executeCst(cs *cstState) {
	if cs.executed || cs.batch == nil || !cs.locked {
		return
	}
	remote := make(map[types.Key]types.Value)
	for _, ws := range cs.carried {
		for i, k := range ws.ReadKeys {
			remote[k] = ws.ReadValues[i]
		}
	}
	cs.results = r.executeBatch(cs.batch, remote, cs.plan)
	cs.executed = true
	r.executed[cs.digest] = cs.results
	primary := r.engine.Primary(r.engine.View())
	r.chain.Append(cs.seq, primary, cs.batch)
	r.logBlock(cs.seq, primary, cs.batch, cs.results)
	r.markExecuted(cs.seq)

	// Push this shard's updated write fragment into Σ (Fig 5 line 34).
	out := types.WriteSet{Shard: r.shard}
	for i := range cs.batch.Txns {
		t := &cs.batch.Txns[i]
		for _, k := range t.WritesAt(r.shard, r.cfg.Shards) {
			out.Keys = append(out.Keys, k)
			out.Values = append(out.Values, r.kv.Get(k))
		}
	}
	cs.carried = append(cs.carried, out)

	r.locks.Unlock(r.localKeys(cs.batch), lockOwner(cs.batch))
	cs.released = true

	r.sendExecute(cs)
	r.drainLockQueue()
}

// sendExecute sends ⟨Execute(Δ, Σℑ)⟩ to the same-index replica of the next
// involved shard (Fig 5 line 37).
func (r *Replica) sendExecute(cs *cstState) {
	next, _ := cs.batch.NextInRing(r.shard)
	m := &types.Message{
		Type: types.MsgExecute, From: r.self, Shard: r.shard,
		Seq: cs.seq, Digest: cs.digest, WriteSets: cs.carried,
	}
	m.Sig = crypto.SignMessage(r.auth, m)
	r.sendRing(next, m)
}

// onExecute handles the second-rotation Execute message (Fig 5 lines 40-44):
// a shard that has not executed yet does so now (the carried Σ resolves its
// dependencies); the initiator — which executed at the start of rotation 2 —
// replies to the client instead.
func (r *Replica) onExecute(m *types.Message) {
	cs, ok := r.csts[m.Digest]
	if !ok || cs.batch == nil {
		// Either an unknown digest or this replica was kept in dark during
		// local replication; it cannot execute and relies on checkpoints.
		return
	}
	if m.From.Kind != types.KindReplica || m.From.Shard != cs.batch.PrevInRing(r.shard) {
		return
	}
	if crypto.VerifyMessageSig(r.auth, m) != nil {
		return
	}
	if _, dup := cs.execFrom[m.From]; dup {
		return
	}
	cs.execFrom[m.From] = struct{}{}
	if m.From.Index == r.self.Index && !cs.execRelayed {
		cs.execRelayed = true
		for _, p := range r.peers {
			if p != r.self {
				r.send(p, m)
			}
		}
	}
	if cs.execAccepted || len(cs.execFrom) <= r.cfg.F() {
		return
	}
	cs.execAccepted = true

	if cs.executed {
		if r.shard == cs.batch.Initiator() {
			// Execution completed across all shards; answer the client
			// (Section 4.3.7).
			if !cs.replied {
				cs.replied = true
				r.respond(clientOf(cs.batch), cs.digest, cs.results)
			}
			return
		}
		// Already executed but not the initiator (fast-path shard):
		// keep the rotation moving.
		r.sendExecute(cs)
		return
	}
	// Copy before adopting: executeCst appends to carried, and the message
	// slice is shared with the sender over the in-process transports.
	cs.carried = append([]types.WriteSet(nil), m.WriteSets...)
	if cs.locked {
		r.executeCst(cs)
	}
}

// onRemoteView handles the remote view-change protocol of Fig 6: replicas of
// the next shard, starved of Forward messages, ask this shard to replace its
// primary. f+1 distinct complainants trigger a local view change.
func (r *Replica) onRemoteView(m *types.Message) {
	b := m.Batch
	if b == nil || !b.Involves(r.shard) {
		return
	}
	d := b.Digest()
	if d != m.Digest {
		return
	}
	next, _ := b.NextInRing(r.shard)
	if m.From.Kind != types.KindReplica || m.From.Shard != next {
		return
	}
	if crypto.VerifyMessageSig(r.auth, m) != nil {
		return
	}
	cs := r.cst(d)
	if cs.remoteComplaints == nil {
		cs.remoteComplaints = make(map[types.NodeID]struct{})
	}
	if _, dup := cs.remoteComplaints[m.From]; dup {
		return
	}
	cs.remoteComplaints[m.From] = struct{}{}
	if m.From.Index == r.self.Index && !cs.remoteRelayed {
		cs.remoteRelayed = true
		for _, p := range r.peers {
			if p != r.self {
				r.send(p, m)
			}
		}
	}
	if len(cs.remoteComplaints) <= r.cfg.F() || cs.remoteHandled {
		return
	}
	cs.remoteHandled = true
	r.remoteViews++
	// Make sure the (possibly new) primary has the batch to propose, then
	// support the view change (Fig 6 lines 5-6).
	if cs.batch == nil {
		cs.batch = b
	}
	if _, done := r.proposed[d]; !done {
		if _, ok := r.awaitingProposal[d]; !ok {
			r.awaitingProposal[d] = &pendingProposal{batch: b, since: r.clock()}
		}
	}
	if cs.executed || cs.locked {
		// We already replicated it; the complaint is about lost messages,
		// not a faulty primary. Retransmit instead of view-changing: the
		// Forward (first rotation) and, if we already executed, the Execute
		// carrying Σ (second rotation).
		if cs.forwardMsg != nil {
			r.retransmits++
			r.send(types.ReplicaNode(next, r.self.Index), cs.forwardMsg)
		}
		if cs.executed {
			r.retransmits++
			r.sendExecute(cs)
		}
		return
	}
	r.engine.StartViewChange(r.engine.View() + 1)
}
