package ringbft

import (
	"crypto/sha256"

	"ringbft/internal/crypto"
	"ringbft/internal/evidence"
	"ringbft/internal/pbft"
	"ringbft/internal/trace"
	"ringbft/internal/types"
)

func sha256Sum(b []byte) types.Digest { return types.Digest(sha256.Sum256(b)) }

// mergeCarried folds the Σ fragments of one Forward/Execute copy into the
// cst's accumulated Σ, one fragment per (shard, kind) slot — kind being the
// read fragment collected at lock time or the write fragment appended at
// execution. Honest fragments for the same slot are identical (their values
// are read under sequence-ordered locks), so the first copy wins.
//
// Merging — rather than adopting the payload of whichever copy tips the f+1
// threshold — is load-bearing: copies from different senders legitimately
// carry different Σ. A replica that learned the batch through local PBFT
// replication because its own first-rotation Forward copy was lost (crash
// and partition windows make this routine) locks and forwards a Σ holding
// only its own read fragment; executing from that copy alone diverges from
// the replicas that executed with the full Σ (found by internal/chaos,
// crash-restart and wipe-rejoin schedules).
func (cs *cstState) mergeCarried(sets []types.WriteSet) {
	for _, ws := range sets {
		read := len(ws.ReadKeys) > 0
		write := len(ws.Keys) > 0
		if !read && !write {
			continue
		}
		dup := false
		for i := range cs.carried {
			have := &cs.carried[i]
			if have.Shard == ws.Shard &&
				(len(have.ReadKeys) > 0) == read && (len(have.Keys) > 0) == write {
				dup = true
				break
			}
		}
		if !dup {
			cs.carried = append(cs.carried, ws)
		}
	}
}

// sendForward implements Fig 5 line 19: after locking, replica r sends a
// signed Forward — the batch, the nf-signature commit certificate A, and the
// accumulated read sets — to the single replica of the next involved shard
// with the same index (the linear communication primitive).
func (r *Replica) sendForward(cs *cstState) {
	next, _ := cs.batch.NextInRing(r.shard)
	m := &types.Message{
		Type: types.MsgForward, From: r.self, Shard: r.shard,
		Seq: cs.seq, Digest: cs.digest,
		Batch: cs.batch, Cert: cs.cert, WriteSets: cs.carried,
	}
	m.Sig = crypto.SignMessage(r.auth, m)
	cs.forwardMsg = m
	cs.forwardSentAt = r.clock()
	r.observe(cs.seq, trace.PhaseForward)
	r.sendRing(next, m)
}

// sendRing delivers a cross-shard message under the configured
// communication primitive: one same-index replica (linear, the default) or
// every replica of the next shard (all-to-all ablation).
func (r *Replica) sendRing(next types.ShardID, m *types.Message) {
	if !r.allToAll {
		r.send(types.ReplicaNode(next, r.self.Index), m)
		return
	}
	for i := 0; i < r.cfg.ReplicasPerShard; i++ {
		r.send(types.ReplicaNode(next, i), m)
	}
}

// onForward handles a Forward from the previous shard in ring order
// (Fig 5 lines 29-39). The first same-index copy is re-shared locally
// (line 30); the message is accepted once f+1 distinct previous-shard
// replicas vouch for it (line 31), which by the linear communication
// primitive guarantees at least one copy originated at a non-faulty sender.
func (r *Replica) onForward(m *types.Message) {
	b := m.Batch
	if b == nil || len(b.Txns) == 0 || !b.IsCrossShard() {
		return
	}
	d := b.Digest()
	if d != m.Digest || !b.Involves(r.shard) {
		return
	}
	if m.From.Kind != types.KindReplica || m.From.Shard != b.PrevInRing(r.shard) || m.Shard != m.From.Shard {
		return
	}
	if crypto.VerifyMessageSig(r.auth, m) != nil {
		return
	}
	// Detection before the certificate check: the Forward signature alone
	// binds the sender to (seq, digest), and a conflicting claim whose
	// certificate is garbage is exactly as indicting as one whose
	// certificate verifies.
	r.noteForward(m)
	// The Forward must prove the previous shard replicated the batch:
	// nf valid commit signatures from that shard (checked once per sender).
	if err := pbft.VerifyCert(r.verifier, m.From.Shard, d, m.Cert, r.cfg.NF()); err != nil {
		return
	}

	cs := r.cst(d)
	if cs.batch == nil {
		// Adopt the batch as soon as one valid Forward is seen: the remote
		// timer needs it to complain (Fig 6) even before f+1 copies arrive.
		cs.batch = b
	}
	if cs.fwdCert == nil {
		// One verified copy suffices to hold the justification certificate:
		// it is self-certifying (nf signed commits), independent of the f+1
		// copy count that gates acceptance below.
		cs.fwdCert = m.Cert
	}
	if _, dup := cs.fwdFrom[m.From]; dup {
		// Retransmission of an already-counted copy: the rotation is
		// starving somewhere. Re-share the same-index copy — the one-shot
		// relay happened while peers' copies may have been lost, and a
		// peer short of f+1 senders has no other way to complete its
		// quorum (re-sends are paced by the sender's transmit timer, and
		// only the lane owner re-relays, so there is no amplification).
		// If we already executed, the lost message is our Execute —
		// resend it down the ring.
		if m.From.Index == r.self.Index {
			for _, p := range r.peers {
				if p != r.self {
					r.send(p, m)
				}
			}
		}
		if cs.executed {
			r.sendExecute(cs)
		}
		return
	}
	cs.fwdFrom[m.From] = struct{}{}
	cs.mergeCarried(m.WriteSets)
	if cs.fwdFirst.IsZero() {
		cs.fwdFirst = r.clock() // arm the remote timer (Fig 6)
	}
	if m.From.Index == r.self.Index && !cs.fwdRelayed {
		cs.fwdRelayed = true
		for _, p := range r.peers {
			if p != r.self {
				r.send(p, m)
			}
		}
	}
	if cs.fwdAccepted || len(cs.fwdFrom) <= r.cfg.F() {
		return
	}
	cs.fwdAccepted = true
	if r.met != nil {
		// Ring-hop latency: first same-lane copy to f+1 acceptance.
		r.met.forwardQuorum.Observe(r.clock().Sub(cs.fwdFirst))
	}
	cs.fwdFirst = r.clock() // re-anchor the remote timer for rotation 2
	if cs.batch == nil {
		cs.batch = b
	}
	// The Forward quorum is the justification evidence the PBFT engine
	// gates cross-shard proposals on; re-feed any that arrived early.
	r.engine.ReplayParked()

	if cs.locked && r.shard == b.Initiator() {
		// Second rotation (Fig 5 line 32): we are the first shard in ring
		// order, our locks are held, and the Forward has travelled the full
		// ring — every involved shard holds its locks. Execute with the Σ
		// merged from every copy (see mergeCarried). The initiator check is
		// load-bearing: only there does an inbound Forward prove a full
		// rotation. A non-initiator shard can also be locked when the f+1-th
		// Forward copy arrives (commit raced ahead of retransmitted Forwards
		// across a fault window), but its Forwards are first-rotation —
		// executing on one would use a Σ missing every upstream shard's
		// fragments and diverge from the replicas that execute on the
		// second-rotation Execute message (found by internal/chaos,
		// wipe-rejoin schedules).
		r.executeCst(cs)
		return
	}
	// First rotation at a non-initiator shard: the accumulated read sets
	// are already merged into Σ; replicate the batch locally (Fig 5 lines
	// 38-39). If we are already locked, execution still waits for the
	// Execute message carrying the full Σ.
	r.enqueueProposal(b, d)
}

// noteForward records conflicting-Forward evidence: the same previous-shard
// replica signing two Forwards for one sequence with different digests. An
// honest sender cannot — its shard committed exactly one batch at that
// sequence — so the signature pair indicts the sender directly and is
// transferable (both halves are Ed25519-signed over the canonical tuple).
// Call only after the message signature verified.
func (r *Replica) noteForward(m *types.Message) {
	key := fwdKey{from: m.From, seq: m.Seq}
	prev, ok := r.fwdSeen[key]
	if !ok {
		if len(r.fwdSeen) < fwdSeenCap {
			r.fwdSeen[key] = evidence.MsgOf(m)
		}
		return
	}
	if prev.Digest == m.Digest {
		return
	}
	r.ev.Add(evidence.Record{
		Kind: evidence.KindConflictingForward, Accused: m.From,
		Shard: r.shard, Seq: m.Seq,
		First: prev, Second: evidence.MsgOf(m),
		Transferable: true,
	})
}

// executeCst executes this shard's fragment with every dependency resolved
// from the carried Σ, appends the block, releases locks, and passes the
// Execute message down the ring (Fig 5 lines 33-37).
func (r *Replica) executeCst(cs *cstState) {
	if cs.executed || cs.batch == nil || !cs.locked {
		return
	}
	remote := make(map[types.Key]types.Value)
	for _, ws := range cs.carried {
		for i, k := range ws.ReadKeys {
			remote[k] = ws.ReadValues[i]
		}
	}
	cs.results = r.executeBatch(cs.batch, remote, cs.plan)
	cs.executed = true
	r.observe(cs.seq, trace.PhaseExecute)
	r.executed[cs.digest] = cs.results
	primary := r.engine.Primary(r.engine.View())
	r.chain.Append(cs.seq, primary, cs.batch)
	r.logBlock(cs.seq, primary, cs.batch, cs.results)
	r.markExecuted(cs.seq)

	// Push this shard's updated write fragment into Σ (Fig 5 line 34).
	out := types.WriteSet{Shard: r.shard}
	for i := range cs.batch.Txns {
		t := &cs.batch.Txns[i]
		for _, k := range t.WritesAt(r.shard, r.cfg.Shards) {
			out.Keys = append(out.Keys, k)
			out.Values = append(out.Values, r.kv.Get(k))
		}
	}
	cs.mergeCarried([]types.WriteSet{out})

	r.locks.Unlock(r.localKeys(cs.batch), lockOwner(cs.batch))
	cs.released = true

	r.sendExecute(cs)
	r.drainLockQueue()
}

// executeMessage builds this replica's signed ⟨Execute(Δ, Σℑ)⟩.
func (r *Replica) executeMessage(cs *cstState) *types.Message {
	m := &types.Message{
		Type: types.MsgExecute, From: r.self, Shard: r.shard,
		Seq: cs.seq, Digest: cs.digest, WriteSets: cs.carried,
	}
	m.Sig = crypto.SignMessage(r.auth, m)
	return m
}

// sendExecute sends ⟨Execute(Δ, Σℑ)⟩ to the same-index replica of the next
// involved shard (Fig 5 line 37).
func (r *Replica) sendExecute(cs *cstState) {
	next, _ := cs.batch.NextInRing(r.shard)
	r.sendRing(next, r.executeMessage(cs))
}

// onExecute handles the second-rotation Execute message (Fig 5 lines 40-44):
// a shard that has not executed yet does so now (the carried Σ resolves its
// dependencies); the initiator — which executed at the start of rotation 2 —
// replies to the client instead.
func (r *Replica) onExecute(m *types.Message) {
	cs, ok := r.csts[m.Digest]
	if !ok || cs.batch == nil {
		// Either an unknown digest or this replica was kept in dark during
		// local replication; it cannot execute and relies on checkpoints.
		return
	}
	if m.From.Kind != types.KindReplica || m.From.Shard != cs.batch.PrevInRing(r.shard) {
		return
	}
	if crypto.VerifyMessageSig(r.auth, m) != nil {
		return
	}
	if _, dup := cs.execFrom[m.From]; dup {
		// Mirror of the Forward dup path: a retransmitted Execute copy
		// means someone in this shard is still short of the f+1 Execute
		// quorum; re-share the lane copy.
		if m.From.Index == r.self.Index {
			for _, p := range r.peers {
				if p != r.self {
					r.send(p, m)
				}
			}
		}
		return
	}
	cs.execFrom[m.From] = struct{}{}
	cs.mergeCarried(m.WriteSets)
	if m.From.Index == r.self.Index && !cs.execRelayed {
		cs.execRelayed = true
		for _, p := range r.peers {
			if p != r.self {
				r.send(p, m)
			}
		}
	}
	if cs.execAccepted || len(cs.execFrom) <= r.cfg.F() {
		return
	}
	cs.execAccepted = true

	if cs.executed {
		if r.shard == cs.batch.Initiator() {
			// Execution completed across all shards; answer the client
			// (Section 4.3.7).
			if !cs.replied {
				cs.replied = true
				r.respond(clientOf(cs.batch), cs.digest, cs.results)
				r.observe(cs.seq, trace.PhaseReply)
			}
			return
		}
		// Already executed but not the initiator (fast-path shard):
		// keep the rotation moving.
		r.sendExecute(cs)
		return
	}
	if cs.locked {
		r.executeCst(cs)
	}
}

// onRemoteView handles the remote view-change protocol of Fig 6: replicas of
// the next shard, starved of Forward messages, ask this shard to replace its
// primary. f+1 distinct complainants trigger a local view change.
func (r *Replica) onRemoteView(m *types.Message) {
	b := m.Batch
	if b == nil || !b.Involves(r.shard) {
		return
	}
	d := b.Digest()
	if d != m.Digest {
		return
	}
	next, _ := b.NextInRing(r.shard)
	if m.From.Kind != types.KindReplica || m.From.Shard != next {
		return
	}
	if crypto.VerifyMessageSig(r.auth, m) != nil {
		return
	}
	cs := r.cst(d)
	if cs.executed {
		// Direct catch-up, before any dedup: a single starving replica of
		// the next shard can never assemble f+1 distinct Execute senders
		// through its own ring lane alone (each retransmission reaches it
		// from the same sender), so every executed replica that hears a
		// complaint — the relay spreads it shard-wide — answers the
		// complainant with its Execute. Re-sent complaints re-trigger this,
		// paced by the complainant's remote timer (found by internal/chaos,
		// loss-storm schedules: two Execute-starved replicas also starve
		// the checkpoint quorum, blocking state transfer).
		r.send(m.From, r.executeMessage(cs))
	}
	if cs.remoteComplaints == nil {
		cs.remoteComplaints = make(map[types.NodeID]struct{})
	}
	if _, dup := cs.remoteComplaints[m.From]; dup {
		return
	}
	cs.remoteComplaints[m.From] = struct{}{}
	if m.From.Index == r.self.Index && !cs.remoteRelayed {
		cs.remoteRelayed = true
		for _, p := range r.peers {
			if p != r.self {
				r.send(p, m)
			}
		}
	}
	if len(cs.remoteComplaints) <= r.cfg.F() || cs.remoteHandled {
		return
	}
	cs.remoteHandled = true
	r.remoteViews++
	if r.met != nil {
		r.met.remoteViews.Inc()
	}
	// Make sure the (possibly new) primary has the batch to propose, then
	// support the view change (Fig 6 lines 5-6).
	if cs.batch == nil {
		cs.batch = b
	}
	if !cs.fwdAccepted && cs.fwdFirst.IsZero() {
		// Middle shard of a ring of three or more: the complaint reveals a
		// batch this shard never saw a Forward copy for. Arm the remote
		// timer so this shard complains upstream in turn — until the
		// previous shard's certificate arrives no primary here can justify
		// proposing it, so upstream pressure is the only recovery path.
		cs.fwdFirst = r.clock()
	}
	if _, done := r.proposed[d]; !done {
		if _, ok := r.awaitingProposal[d]; !ok {
			r.awaitingProposal[d] = &pendingProposal{batch: b, since: r.clock()}
		}
	}
	if cs.executed || cs.locked {
		// We already replicated it; the complaint is about lost messages,
		// not a faulty primary. Retransmit instead of view-changing: the
		// Forward (first rotation) and, if we already executed, the Execute
		// carrying Σ (second rotation).
		if cs.forwardMsg != nil {
			r.retransmits++
			if r.met != nil {
				r.met.retransmits.Inc()
			}
			r.send(types.ReplicaNode(next, r.self.Index), cs.forwardMsg)
		}
		if cs.executed {
			r.retransmits++
			if r.met != nil {
				r.met.retransmits.Inc()
			}
			r.sendExecute(cs)
		}
		return
	}
	if r.justified(b) {
		// Only view-change when a primary of this shard could actually
		// propose the batch: without the Forward quorum every view burns a
		// timeout parking the same unjustifiable proposal, while the armed
		// remote timer above already drives recovery upstream.
		r.engine.StartViewChange(r.engine.View() + 1)
	}
}
