package ringbft

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"ringbft/internal/types"
	"ringbft/internal/wal"
)

// These are the acceptance tests of the durability subsystem: a replica is
// killed mid-run at an arbitrary sequence (including right at snapshot
// boundaries), restarted from whatever survives on disk — or from nothing,
// after a wipe — and must converge to the identical canonical state an
// undisturbed cluster reaches, through WAL replay, snapshot recovery, and
// checkpoint-certified peer state transfer.

const (
	recShards   = 2
	recReplicas = 4
	recInterval = 4 // checkpoint + snapshot interval for fast stabilization
)

func durableCfg(cfg *types.Config) {
	cfg.CheckpointInterval = recInterval
	cfg.SnapshotInterval = recInterval
}

// recBatchAt builds the i-th workload batch: an alternating mix of
// single-shard and cross-shard transactions over a small key space so the
// workload exercises conflicts, Σ accumulation, and both execution paths.
func recBatchAt(i int) *types.Batch {
	shards := []types.ShardID{types.ShardID(i % recShards)}
	if i%3 == 0 {
		shards = []types.ShardID{0, 1}
	}
	return mkBatch(types.ClientID(i+1), uint64(i+1), recShards, shards, uint64(2+i%5))
}

// runRecoveryWorkload drives total batches through a durable cluster,
// killing victim after batch kill and restarting it after batch restart
// (kill == restart restarts it immediately, with nothing missed). wipe
// erases the victim's data dir while it is down; corruptSnap damages its
// newest snapshot file instead (a torn snapshot write). A negative kill
// runs undisturbed.
func runRecoveryWorkload(t *testing.T, total, kill, restart int, wipe, corruptSnap bool) *cluster {
	t.Helper()
	c := newDurableCluster(t, recShards, recReplicas, durableCfg)
	victim := types.ReplicaNode(0, recReplicas-1) // a backup: no view change needed
	for i := 0; i < total; i++ {
		if kill >= 0 && i == kill {
			c.kill(victim)
			if wipe {
				c.wipe(victim)
			}
			if corruptSnap {
				c.corruptNewestSnapshot(victim)
			}
		}
		if kill >= 0 && i == restart {
			c.restart(victim)
		}
		c.submit(types.ClientID(i+1), recBatchAt(i))
	}
	if kill >= 0 && restart >= total {
		c.restart(victim)
	}
	// Flush retransmissions, state-transfer retries, and stragglers.
	for i := 0; i < 4; i++ {
		c.tick(c.cfg.TransmitTimeout + time.Millisecond)
	}
	return c
}

// corruptNewestSnapshot flips bytes in the victim's newest snapshot file,
// simulating a crash that tore the snapshot mid-write.
func (c *cluster) corruptNewestSnapshot(id types.NodeID) {
	c.t.Helper()
	dir := wal.Join(c.cfg.DataDir, nodeDirName(id), "snap")
	names, err := c.fs.ReadDir(dir)
	if err != nil || len(names) == 0 {
		return // no snapshot yet — nothing to tear
	}
	name := wal.Join(dir, names[len(names)-1])
	data, ok := c.fs.ReadFile(name)
	if !ok || len(data) < 8 {
		return
	}
	data[len(data)/2] ^= 0xFF
	c.fs.WriteFile(name, data)
}

func nodeDirName(id types.NodeID) string {
	return fmt.Sprintf("s%d-r%d", id.Shard, id.Index)
}

// digestsOf snapshots every replica's store digest keyed by node.
func digestsOf(c *cluster) map[types.NodeID]types.Digest {
	out := make(map[types.NodeID]types.Digest, len(c.replicas))
	for id, r := range c.replicas {
		out[id] = r.Store().Digest()
	}
	return out
}

// assertRecovered checks the convergence contract of a disturbed run
// against its undisturbed reference.
func assertRecovered(t *testing.T, c *cluster, ref map[types.NodeID]types.Digest, total int) {
	t.Helper()
	victim := types.ReplicaNode(0, recReplicas-1)
	// Liveness: every batch completed despite the fault.
	for i := 0; i < total; i++ {
		if got := c.responses(types.ClientID(i+1), recBatchAt(i).Digest()); got < c.cfg.F()+1 {
			t.Fatalf("batch %d got %d responses, want >= %d", i, got, c.cfg.F()+1)
		}
	}
	// Safety: every replica — including the restarted victim — holds the
	// identical state the undisturbed run reaches.
	for id, r := range c.replicas {
		if got, want := r.Store().Digest(), ref[id]; got != want {
			t.Fatalf("replica %v state digest diverges from undisturbed run", id)
		}
		if err := r.Chain().Verify(); err != nil {
			t.Fatalf("replica %v chain does not verify: %v", id, err)
		}
		if n := r.Stats().DurErrors; n != 0 {
			t.Fatalf("replica %v recorded %d durability errors", id, n)
		}
		if n := r.Stats().LockedKeys; n != 0 {
			t.Fatalf("replica %v leaked %d locks", id, n)
		}
	}
	if _, alive := c.replicas[victim]; !alive {
		t.Fatal("victim not restarted")
	}
}

// TestCrashRestartImmediateWALRecovery: a replica killed and immediately
// restarted (nothing missed) must rebuild its exact pre-crash state from
// snapshot + WAL replay alone — identical ledger blocks, store, and
// watermarks — and then commit the identical remaining block sequence,
// with no state transfer involved.
func TestCrashRestartImmediateWALRecovery(t *testing.T) {
	const total, kill = 20, 9
	ref := runRecoveryWorkload(t, total, -1, -1, false, false)
	refDigests := digestsOf(ref)
	refVictim := ref.replicas[types.ReplicaNode(0, recReplicas-1)]

	c := runRecoveryWorkload(t, total, kill, kill, false, false)
	assertRecovered(t, c, refDigests, total)
	victim := c.replicas[types.ReplicaNode(0, recReplicas-1)]
	if !victim.Recovered() {
		t.Fatal("victim did not recover from disk")
	}
	if n := victim.Stats().StateTransfers; n != 0 {
		t.Fatalf("immediate restart needed %d state transfers (WAL replay insufficient)", n)
	}
	// The committed block sequence is identical to the undisturbed run's:
	// same height, same per-sequence batch digests.
	if victim.Chain().Height() != refVictim.Chain().Height() {
		t.Fatalf("victim height %d, undisturbed %d", victim.Chain().Height(), refVictim.Chain().Height())
	}
	refBySeq := make(map[types.SeqNum]types.Digest)
	for _, b := range refVictim.Chain().Blocks()[1:] {
		refBySeq[b.Seq] = b.Digest
	}
	for _, b := range victim.Chain().Blocks()[1:] {
		if want, ok := refBySeq[b.Seq]; ok && b.Digest != want {
			t.Fatalf("victim block at seq %d differs from undisturbed run", b.Seq)
		}
	}
	if victim.Stats().KMax != refVictim.Stats().KMax {
		t.Fatalf("victim kmax %d, undisturbed %d", victim.Stats().KMax, refVictim.Stats().KMax)
	}
}

// TestPropertyCrashRestartConvergence is the crash-recovery property test:
// for random kill and restart sequences — including kills landing exactly
// on snapshot boundaries and restarts after long dark periods — the
// restarted replica converges to the undisturbed run's state, via WAL
// replay when nothing was missed and checkpoint-certified state transfer
// when the gap exceeds a checkpoint interval.
func TestPropertyCrashRestartConvergence(t *testing.T) {
	const total = 24
	ref := runRecoveryWorkload(t, total, -1, -1, false, false)
	refDigests := digestsOf(ref)

	f := func(killRaw, gapRaw uint8) bool {
		kill := 2 + int(killRaw)%10 // batches 2..11, covers snapshot boundaries
		gap := int(gapRaw) % 8      // 0 = immediate restart (pure WAL recovery)
		restart := kill + gap       // batches missed while dead
		c := runRecoveryWorkload(t, total, kill, restart, false, false)
		assertRecovered(t, c, refDigests, total)
		victim := c.replicas[types.ReplicaNode(0, recReplicas-1)]
		if gap == 0 && victim.Stats().StateTransfers != 0 {
			t.Logf("kill=%d gap=0: unexpected state transfer", kill)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyWipeRejoinStateTransfer is the second acceptance variant: the
// victim's data directory is wiped while it is down, so it rejoins with
// nothing and must recover the full canonical state through peer state
// transfer, validated against a checkpoint certificate it verified itself.
func TestPropertyWipeRejoinStateTransfer(t *testing.T) {
	const total = 24
	ref := runRecoveryWorkload(t, total, -1, -1, false, false)
	refDigests := digestsOf(ref)

	f := func(killRaw uint8) bool {
		kill := 2 + int(killRaw)%8
		restart := kill + 2
		c := runRecoveryWorkload(t, total, kill, restart, true, false)
		assertRecovered(t, c, refDigests, total)
		victim := c.replicas[types.ReplicaNode(0, recReplicas-1)]
		if victim.Stats().StateTransfers == 0 {
			t.Logf("kill=%d: wiped replica converged without a state transfer", kill)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// TestCrashTornSnapshotFallsBack: the newest snapshot is torn by the crash;
// recovery must fall back (older snapshot or WAL-only, and state transfer
// for whatever the fallback cannot cover) and still converge.
func TestCrashTornSnapshotFallsBack(t *testing.T) {
	const total, kill = 24, 10
	ref := runRecoveryWorkload(t, total, -1, -1, false, false)
	refDigests := digestsOf(ref)
	c := runRecoveryWorkload(t, total, kill, kill+3, false, true)
	assertRecovered(t, c, refDigests, total)
}

// TestWALBoundsLedgerMemory: with durability enabled, stable checkpoints
// prune the in-memory chain — the unbounded-growth fix of the durability
// subsystem, proven through the full consensus stack.
func TestWALBoundsLedgerMemory(t *testing.T) {
	c := newDurableCluster(t, recShards, recReplicas, durableCfg)
	const total = 40
	for i := 0; i < total; i++ {
		c.submit(types.ClientID(i+1), recBatchAt(i))
	}
	for id, r := range c.replicas {
		h := r.Chain().Height()
		retained := len(r.Chain().Blocks()) - 1
		if h < 2*recInterval {
			t.Fatalf("replica %v only reached height %d", id, h)
		}
		if retained >= h {
			t.Fatalf("replica %v retains all %d blocks (pruning never ran)", id, retained)
		}
		_, baseIdx := r.Chain().Base()
		if baseIdx == 0 {
			t.Fatalf("replica %v chain base never advanced", id)
		}
		if err := r.Chain().Verify(); err != nil {
			t.Fatalf("replica %v pruned chain does not verify: %v", id, err)
		}
		if n := r.Stats().DurErrors; n != 0 {
			t.Fatalf("replica %v durability errors: %d", id, n)
		}
	}
}
