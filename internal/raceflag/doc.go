// Package raceflag exposes whether the binary was built with the race
// detector, so timing-sensitive tests can scale their wall-clock budgets
// instead of flaking under the detector's 5-20x slowdown (mirrors the
// stdlib's internal/race pattern).
//
// The package is two build-tagged files declaring the one constant,
// Enabled; this untagged file carries the documentation so godoc renders
// it regardless of build mode. The invariant is that Enabled is a
// compile-time constant — callers multiply timeouts by it in const
// expressions and the compiler deletes the dead branch — so it must never
// become a variable or an init-time probe.
//
// Protecting gates: CI's race-all job runs the full suite under -race;
// any budget that was not scaled through this flag tends to surface there
// as a timeout flake.
package raceflag
