//go:build race

// Package raceflag exposes whether the binary was built with the race
// detector, so timing-sensitive tests can scale their wall-clock budgets
// instead of flaking under the detector's 5–20x slowdown (mirrors the
// stdlib's internal/race pattern).
package raceflag

// Enabled is true when the binary was built with -race.
const Enabled = true
