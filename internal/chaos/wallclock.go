package chaos

import (
	"context"
	"fmt"
	"time"

	"ringbft/internal/harness"
	"ringbft/internal/types"
)

// Wall-clock mode drives the SAME nemesis schedules through the real
// harness: goroutine event loops, the simulated WAN, real timers. It trades
// the deterministic engine's exact replayability for coverage of the
// concurrent implementation — the mode the nightly soak workflow runs.

// WallClockResult is one wall-clock chaos run.
type WallClockResult struct {
	Scenario   Scenario
	Result     harness.Result
	Violations []Violation
}

// Failed reports whether any invariant was violated.
func (r *WallClockResult) Failed() bool { return len(r.Violations) > 0 }

// FailureReport renders the violations with the scenario identity.
func (r *WallClockResult) FailureReport() string {
	if !r.Failed() {
		return ""
	}
	s := fmt.Sprintf("wall-clock scenario %s violated %d invariant(s):\n", r.Scenario.Name(), len(r.Violations))
	for _, v := range r.Violations {
		s += "  - " + v.String() + "\n"
	}
	s += fmt.Sprintf("seeded schedule: chaos seed %d (deterministic replay: %s)",
		r.Scenario.Seed, r.Scenario.ReproCmd())
	return s
}

// nemesisFromSchedule translates the deterministic schedule into a
// harness.Nemesis: event ticks map proportionally onto the measurement
// window, and ops drive the harness Controller.
//
//ringbft:ignore wallclock the wall-clock bridge is the one sanctioned exit from seeded time: the schedule is fully built (seed-deterministically) before this runs, and only its pacing maps onto real time here
func nemesisFromSchedule(sc Scenario, sched Schedule, window time.Duration) harness.Nemesis {
	return func(ctx context.Context, ctl *harness.Controller) {
		start := time.Now()
		for _, e := range sched.Events {
			at := time.Duration(float64(e.At) / float64(sched.Horizon) * float64(window))
			select {
			case <-time.After(time.Until(start.Add(at))):
			case <-ctx.Done():
				return
			}
			applyWallClock(ctl, e)
		}
	}
}

// applyWallClock executes one schedule event against the harness controller.
func applyWallClock(ctl *harness.Controller, e Event) {
	inIsland := func(id types.NodeID, s types.ShardID) bool {
		return id.Kind == types.KindReplica && id.Shard == s
	}
	switch e.Op {
	case OpPartitionShard:
		s := e.Shard
		ctl.SetPartition(func(from, to types.NodeID) bool {
			if from.Kind == types.KindClient || to.Kind == types.KindClient {
				return false
			}
			return inIsland(from, s) != inIsland(to, s)
		})
	case OpPartitionAsym:
		a, b := e.Shard, e.Shard2
		ctl.SetPartition(func(from, to types.NodeID) bool {
			return inIsland(from, a) && inIsland(to, b)
		})
	case OpPartitionLane:
		i1, i2 := e.Index, e.Index2
		ctl.SetPartition(func(from, to types.NodeID) bool {
			if from.Kind != types.KindReplica || to.Kind != types.KindReplica ||
				from.Shard == to.Shard {
				return false
			}
			return from.Index == i1 || to.Index == i1 ||
				(i2 >= 0 && (from.Index == i2 || to.Index == i2))
		})
	case OpLoss:
		p := e.P
		ctl.SetLossFilter(func(from, to types.NodeID) float64 {
			if from.Kind == types.KindClient || to.Kind == types.KindClient {
				return 0
			}
			return p
		})
	case OpDelay:
		d := time.Duration(e.Ticks) * 10 * time.Millisecond
		ctl.SetDelayFilter(func(from, to types.NodeID) time.Duration {
			if from.Kind == types.KindReplica && to.Kind == types.KindReplica &&
				from.Shard != to.Shard {
				return d
			}
			return 0
		})
	case OpCrash:
		ctl.Crash(types.ReplicaNode(e.Shard, e.Index))
	case OpRestart:
		ctl.Restart(types.ReplicaNode(e.Shard, e.Index), e.Wipe)
	case OpByzSilent:
		ctl.SetByzantine(types.ReplicaNode(e.Shard, e.Index), harness.ByzSilent)
	case OpByzEquivocate:
		ctl.SetByzantine(types.ReplicaNode(e.Shard, e.Index), harness.ByzEquivocate)
	case OpByzNewView:
		ctl.SetByzantine(types.ReplicaNode(e.Shard, e.Index), harness.ByzNewView)
	case OpClientDuplicate, OpClientConflict:
		// Client faults are deterministic-engine behaviours: the wall-clock
		// harness drives its own closed-loop clients, which these ops cannot
		// reach. Documented no-ops.
	case OpHeal:
		ctl.HealAll()
	}
}

// RunWallClock executes one scenario's schedule against the real harness
// for the given measurement window and runs the safety checkers over the
// captured replica states plus a timeline liveness check. Convergence is
// not demanded: event loops stop mid-flight, so replicas legitimately halt
// at slightly different points.
func RunWallClock(sc Scenario, window time.Duration) (*WallClockResult, error) {
	sc = sc.Normalize()
	sched := BuildSchedule(sc)
	cfg := harness.Config{
		Protocol:           sc.Protocol,
		Shards:             sc.Shards,
		ReplicasPerShard:   sc.ReplicasPerShard,
		BatchSize:          sc.BatchSize,
		PipelineDepth:      sc.PipelineDepth,
		CrossShardPct:      sc.CrossShardPct,
		Records:            sc.Records,
		Clients:            sc.Clients,
		ClientWindow:       1,
		Duration:           window,
		Warmup:             window / 8,
		LatencyScale:       0.02,
		Seed:               sc.Seed,
		CheckpointInterval: 8,
		Durable:            sc.Protocol == harness.ProtoRingBFT,
		Nemesis:            nemesisFromSchedule(sc, sched, window),
		CollectState:       true,
		Instrument:         sc.Instrument,
	}
	res, err := harness.Run(cfg)
	if err != nil {
		return nil, err
	}
	out := &WallClockResult{Scenario: sc, Result: res}
	out.Violations = CheckStates(res.Replicas)
	// Liveness: commits must continue after the last heal (plus a grace
	// bucket for the recovery machinery to engage).
	if sc.Fault != FaultNone && res.NemesisLastHeal > 0 {
		healBucket := int(res.NemesisLastHeal/(100*time.Millisecond)) + 1
		var after int64
		for i, v := range res.Timeline {
			if i > healBucket {
				after += v
			}
		}
		if healBucket < len(res.Timeline)-2 && after == 0 {
			out.Violations = append(out.Violations, Violation{"liveness",
				fmt.Sprintf("no commits after the last heal (bucket %d of %d)",
					healBucket, len(res.Timeline))})
		}
	}
	return out, nil
}
