package chaos

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"ringbft/internal/ahl"
	"ringbft/internal/crypto"
	"ringbft/internal/harness"
	"ringbft/internal/metrics"
	"ringbft/internal/ringbft"
	"ringbft/internal/sharper"
	"ringbft/internal/trace"
	"ringbft/internal/types"
	"ringbft/internal/wal"
	"ringbft/internal/workload"
)

// tickStep is the logical duration of one engine tick. Protocol timers (the
// types.DefaultConfig timeouts) are expressed in this time base: the default
// 250ms local timeout is 10 ticks.
const tickStep = 25 * time.Millisecond

// node is the common deterministic surface of every protocol participant.
type node interface {
	HandleMessage(m *types.Message)
	HandleTick(now time.Time)
}

// env is one in-flight message.
type env struct {
	seq      int // enqueue order; final sort tiebreak only
	at       int // delivery tick
	from, to types.NodeID
	m        *types.Message
}

// Cluster is the deterministic logical-time chaos engine: replicas of one
// protocol wired through a canonically ordered message queue, a virtual
// clock driving their timers, seeded clients, and nemesis state (partitions,
// loss, delay, crashes, Byzantine modes) applied at scheduled ticks. Every
// run of the same scenario executes identically: delivery order is sorted by
// message identity, and loss/jitter coins are content-addressed hashes of
// (seed, message identity, tick) rather than draws from a shared RNG stream.
type Cluster struct {
	sc  Scenario
	cfg types.Config

	kg    *crypto.Keygen
	fs    *wal.MemFS
	auths map[types.NodeID]crypto.Authenticator

	nodes      map[types.NodeID]node
	order      []types.NodeID // deterministic iteration order
	shardPeers [][]types.NodeID
	committee  []types.NodeID

	// staged holds sends that have not been assigned a delivery tick yet;
	// assignment happens in canonical order at pump boundaries (see
	// commitStaged) so that per-link FIFO clamping cannot depend on the
	// enqueue order, which Go map iteration makes unstable.
	staged  []env
	queue   []env
	nextSeq int
	tick    int
	// lastAt tracks the latest assigned delivery tick per (from,to) link:
	// delivery is per-link FIFO, like simnet's linkQueue and a real TCP
	// stream — jitter may stretch a link but never reorder it.
	lastAt map[[2]types.NodeID]int

	// Nemesis state.
	down       map[types.NodeID]bool
	byzSilent  map[types.NodeID]bool
	byzEquiv   map[types.NodeID]bool
	byzNewView map[types.NodeID]bool
	partition  func(from, to types.NodeID) bool
	lossP      float64
	delayX     int // extra ticks on cross-shard links
	// Client faults flip the adversarial client's (advClientID) behaviour:
	// duplicate storms fan identical requests everywhere, conflict storms
	// pair every fresh request with a same-TxnID variant (see stepClient).
	clientDup      bool
	clientConflict bool

	clients        []*dclient
	lastCommitTick int
	committed      int

	// Observability (Scenario.Instrument). Timestamps come from the virtual
	// clock, so the instrumented run is as deterministic as the bare one.
	// Tracers are keyed by node slot and survive spawn() rebuilds: a
	// crash/restart keeps one contiguous span log per replica.
	reg     *metrics.Registry
	tracers map[types.NodeID]*trace.Tracer
}

// advClientID names the client the client-fault classes corrupt; the
// accountability expectation (checkers.go) must point at the same one.
const advClientID types.ClientID = 1

// dclient is one deterministic closed-loop client.
type dclient struct {
	id       types.ClientID
	gen      *workload.Generator
	window   int
	inflight map[types.Digest]*dflight
	inbox    []*types.Message
	viewHint map[types.ShardID]types.View
	// committed is the client's completion order — part of the
	// determinism fingerprint.
	committed []types.Digest
	paused    bool // probe phase: stop launching fresh batches
}

type dflight struct {
	batch    *types.Batch
	digest   types.Digest
	sentTick int
	votes    map[types.NodeID]struct{}
}

// NewCluster builds the deterministic cluster for a scenario.
func NewCluster(sc Scenario) *Cluster {
	sc = sc.Normalize()
	cfg := types.DefaultConfig(sc.Shards, sc.ReplicasPerShard)
	cfg.BatchSize = sc.BatchSize
	cfg.PipelineDepth = sc.PipelineDepth
	cfg.CheckpointInterval = 8 // short cadence so recovery paths engage in-window
	cfg.DataDir = "data"

	c := &Cluster{
		sc:         sc,
		cfg:        cfg,
		kg:         crypto.NewKeygen(sc.Seed),
		fs:         wal.NewMemFS(),
		auths:      make(map[types.NodeID]crypto.Authenticator),
		nodes:      make(map[types.NodeID]node),
		lastAt:     make(map[[2]types.NodeID]int),
		down:       make(map[types.NodeID]bool),
		byzSilent:  make(map[types.NodeID]bool),
		byzEquiv:   make(map[types.NodeID]bool),
		byzNewView: make(map[types.NodeID]bool),
		tracers:    make(map[types.NodeID]*trace.Tracer),
	}
	if sc.Instrument {
		c.reg = metrics.NewRegistry()
	}
	c.shardPeers = make([][]types.NodeID, sc.Shards)
	var all []types.NodeID
	for s := 0; s < sc.Shards; s++ {
		peers := make([]types.NodeID, sc.ReplicasPerShard)
		for i := range peers {
			peers[i] = types.ReplicaNode(types.ShardID(s), i)
			all = append(all, peers[i])
		}
		c.shardPeers[s] = peers
	}
	if sc.Protocol == harness.ProtoAHL {
		for i := 0; i < sc.ReplicasPerShard; i++ {
			id := types.CommitteeNode(i)
			c.committee = append(c.committee, id)
			all = append(all, id)
		}
	}
	for _, id := range all {
		c.kg.Register(id)
	}
	for _, id := range all {
		ring, err := c.kg.Ring(id)
		if err != nil {
			panic(fmt.Sprintf("chaos: keyring for %v: %v", id, err))
		}
		c.auths[id] = ring
	}
	for _, id := range all {
		c.spawn(id)
		c.order = append(c.order, id)
	}

	for i := 0; i < sc.Clients; i++ {
		cid := types.ClientID(i + 1)
		c.clients = append(c.clients, &dclient{
			id: cid,
			gen: workload.New(workload.Config{
				Shards:        sc.Shards,
				ActiveRecords: sc.Records,
				CrossShardPct: sc.CrossShardPct,
				BatchSize:     sc.BatchSize,
				Clients:       sc.Clients,
				Seed:          sc.Seed + int64(cid)*7919,
			}),
			window:   1,
			inflight: make(map[types.Digest]*dflight),
			viewHint: make(map[types.ShardID]types.View),
		})
	}
	return c
}

// clock returns the virtual time of the current tick.
func (c *Cluster) clock() time.Time {
	return time.Unix(0, 0).Add(time.Duration(c.tick) * tickStep)
}

// tracer returns node id's lifecycle tracer (nil when the scenario is not
// instrumented), creating it on first use and reusing it on respawn.
func (c *Cluster) tracer(id types.NodeID) *trace.Tracer {
	if !c.sc.Instrument {
		return nil
	}
	t, ok := c.tracers[id]
	if !ok {
		t = trace.New(0)
		c.tracers[id] = t
	}
	return t
}

// spawn builds (or rebuilds, after a crash) node id, recovering whatever
// survives on the shared in-memory filesystem.
func (c *Cluster) spawn(id types.NodeID) {
	send := c.sender(id)
	clock := c.clock
	switch {
	case id.Kind == types.KindCommittee:
		c.nodes[id] = ahl.NewCommittee(ahl.CommitteeOptions{
			Config: c.cfg, Self: id, Peers: c.committee,
			Auth: c.auths[id], Send: ahl.Sender(send), Clock: clock,
			ShardPeers: c.shardPeers,
			Metrics:    c.reg, Tracer: c.tracer(id),
		})
		return
	case c.sc.Protocol == harness.ProtoRingBFT:
		m, rec, err := ringbft.OpenDurability(c.cfg, id, c.fs)
		if err != nil {
			panic(fmt.Sprintf("chaos: open durability for %v: %v", id, err))
		}
		r := ringbft.New(ringbft.Options{
			Config: c.cfg, Shard: id.Shard, Self: id,
			Peers: c.shardPeers[id.Shard], Auth: c.auths[id],
			Send: ringbft.Sender(send), Clock: clock,
			Durability: m, Recovered: rec,
			Metrics: c.reg, Tracer: c.tracer(id),
		})
		r.Preload(c.sc.Records)
		c.nodes[id] = r
	case c.sc.Protocol == harness.ProtoAHL:
		m, rec := c.openDur(id)
		r := ahl.NewReplica(ahl.ReplicaOptions{
			Config: c.cfg, Shard: id.Shard, Self: id,
			Peers: c.shardPeers[id.Shard], Committee: c.committee,
			Auth: c.auths[id], Send: ahl.Sender(send), Clock: clock,
			Durability: m, Recovered: rec,
			Metrics: c.reg, Tracer: c.tracer(id),
		})
		r.Preload(c.sc.Records)
		c.nodes[id] = r
	case c.sc.Protocol == harness.ProtoSharper:
		m, rec := c.openDur(id)
		r := sharper.New(sharper.Options{
			Config: c.cfg, Shard: id.Shard, Self: id,
			Peers: c.shardPeers[id.Shard], Auth: c.auths[id],
			Send: sharper.Sender(send), Clock: clock,
			Durability: m, Recovered: rec,
			Metrics: c.reg, Tracer: c.tracer(id),
		})
		r.Preload(c.sc.Records)
		c.nodes[id] = r
	default:
		panic(fmt.Sprintf("chaos: unsupported protocol %q", c.sc.Protocol))
	}
}

// openDur opens the per-replica durability manager (ahl/sharper use the same
// s<shard>-r<index> directory convention ringbft.OpenDurability applies).
func (c *Cluster) openDur(id types.NodeID) (*wal.Manager, *wal.Recovered) {
	m, rec, err := wal.OpenManager(wal.ManagerOptions{
		FS: c.fs, Dir: wal.Join(c.cfg.DataDir, fmt.Sprintf("s%d-r%d", id.Shard, id.Index)),
	})
	if err != nil {
		panic(fmt.Sprintf("chaos: open durability for %v: %v", id, err))
	}
	return m, rec
}

// sender returns node id's outbound hook: Byzantine interception, then
// enqueue with content-addressed delivery jitter.
func (c *Cluster) sender(id types.NodeID) func(to types.NodeID, m *types.Message) {
	return func(to types.NodeID, m *types.Message) {
		if c.byzSilent[id] {
			return
		}
		if c.byzEquiv[id] && m.Type == types.MsgPrePrepare && m.Batch != nil &&
			len(m.Batch.Txns) > 0 && to.Kind == types.KindReplica && to.Index%2 == 1 {
			cp := *m
			cp.Batch = harness.EquivocateBatch(m.Batch)
			cp.Digest = cp.Batch.Digest()
			var buf [types.SigBytesLen]byte
			cp.MAC = c.auths[id].MAC(to, cp.AppendSigBytes(buf[:0]))
			m = &cp
		}
		if c.byzNewView[id] && m.Type == types.MsgNewView {
			// The NewView signature covers only the canonical tuple, so the
			// forged re-proposal needs no re-signing (the gap the receiver's
			// justification gate must close).
			m = harness.ForgeUnjustifiedProof(id, m)
		}
		c.enqueue(id, to, m)
	}
}

func (c *Cluster) enqueue(from, to types.NodeID, m *types.Message) {
	c.staged = append(c.staged, env{seq: c.nextSeq, from: from, to: to, m: m})
	c.nextSeq++
}

// commitStaged assigns delivery ticks to staged sends: canonical order
// first, then per-message content-addressed jitter clamped to per-link FIFO.
// Doing this in canonical order is what keeps the engine deterministic —
// sends generated while iterating Go maps arrive here in unstable order,
// and the FIFO clamp would otherwise make delivery times depend on it.
func (c *Cluster) commitStaged() {
	if len(c.staged) == 0 {
		return
	}
	batch := c.staged
	c.staged = nil
	sort.Slice(batch, func(i, j int) bool { return batch[i].less(batch[j]) })
	for _, e := range batch {
		delay := int(c.coin(e.from, e.to, e.m, 0x0ddba11) % 3) // 0..2 ticks of jitter
		if c.delayX > 0 && e.from.Kind == types.KindReplica && e.to.Kind == types.KindReplica &&
			e.from.Shard != e.to.Shard {
			delay += c.delayX
		}
		e.at = c.tick + delay
		link := [2]types.NodeID{e.from, e.to}
		if last, ok := c.lastAt[link]; ok && last > e.at {
			e.at = last // FIFO: never overtake an earlier message on this link
		}
		c.lastAt[link] = e.at
		c.queue = append(c.queue, e)
	}
}

// coin derives a deterministic 64-bit value from the message's identity and
// the current tick: fault decisions (loss, jitter) must not depend on
// enqueue order, which Go map iteration makes unstable.
func (c *Cluster) coin(from, to types.NodeID, m *types.Message, salt uint64) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037) ^ uint64(c.sc.Seed) ^ salt
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * prime64
			v >>= 8
		}
	}
	mix(uint64(from.Kind)<<32 | uint64(uint16(from.Shard))<<16 | uint64(uint16(from.Index)))
	mix(uint64(to.Kind)<<32 | uint64(uint16(to.Shard))<<16 | uint64(uint16(to.Index)))
	mix(uint64(m.Type)<<48 | uint64(uint16(m.Shard))<<32 | uint64(uint32(c.tick)))
	mix(uint64(m.View))
	mix(uint64(m.Seq))
	for i := 0; i < 8; i++ {
		h = (h ^ uint64(m.Digest[i])) * prime64
	}
	return h
}

// less orders two envelopes canonically by message identity; enqueue order
// is only the final tiebreak (it can differ between runs for messages
// generated while iterating Go maps, but only for identical identities,
// where order cannot affect the outcome).
func (a env) less(b env) bool {
	ka, kb := a.key(), b.key()
	if d := bytes.Compare(ka, kb); d != 0 {
		return d < 0
	}
	return a.seq < b.seq
}

func (a env) key() []byte {
	var buf [8 + 8 + 4 + 8 + 8 + 32]byte
	put := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			buf[off+i] = byte(v >> (56 - 8*i))
		}
	}
	put(0, uint64(a.from.Kind)<<40|uint64(uint16(a.from.Shard))<<24|uint64(uint16(a.from.Index)))
	put(8, uint64(a.to.Kind)<<40|uint64(uint16(a.to.Shard))<<24|uint64(uint16(a.to.Index)))
	buf[16] = byte(a.m.Type)
	buf[17] = byte(uint8(a.m.Shard))
	put(20, uint64(a.m.View))
	put(28, uint64(a.m.Seq))
	copy(buf[36:], a.m.Digest[:])
	return buf[:]
}

// pump delivers every due message, sorted canonically, looping until the
// current tick generates nothing more that is immediately deliverable.
func (c *Cluster) pump() error {
	for guard := 0; ; guard++ {
		if guard > 2000 {
			return fmt.Errorf("chaos: message storm at tick %d (%d queued)", c.tick, len(c.queue))
		}
		c.commitStaged()
		var due, future []env
		for _, e := range c.queue {
			if e.at <= c.tick {
				due = append(due, e)
			} else {
				future = append(future, e)
			}
		}
		if len(due) == 0 {
			return nil
		}
		c.queue = future
		sort.Slice(due, func(i, j int) bool { return due[i].less(due[j]) })
		for _, e := range due {
			if c.dropAtDelivery(e) {
				continue
			}
			if e.to.Kind == types.KindClient {
				for _, cl := range c.clients {
					if types.ClientNode(cl.id) == e.to {
						cl.inbox = append(cl.inbox, e.m)
					}
				}
				continue
			}
			if n, ok := c.nodes[e.to]; ok && !c.down[e.to] {
				n.HandleMessage(e.m)
			}
		}
	}
}

// dropAtDelivery applies crash, partition, and loss state at delivery time.
func (c *Cluster) dropAtDelivery(e env) bool {
	if c.down[e.from] || c.down[e.to] {
		return true
	}
	if c.partition != nil && c.partition(e.from, e.to) {
		return true
	}
	if c.lossP > 0 && e.from.Kind != types.KindClient && e.to.Kind != types.KindClient {
		if float64(c.coin(e.from, e.to, e.m, 0x10551055)%(1<<32))/float64(1<<32) < c.lossP {
			return true
		}
	}
	return false
}

// apply executes one nemesis event.
func (c *Cluster) apply(e Event) {
	inIsland := func(id types.NodeID, s types.ShardID) bool {
		return id.Kind == types.KindReplica && id.Shard == s
	}
	switch e.Op {
	case OpPartitionShard:
		s := e.Shard
		c.partition = func(from, to types.NodeID) bool {
			if from.Kind == types.KindClient || to.Kind == types.KindClient {
				return false
			}
			return inIsland(from, s) != inIsland(to, s)
		}
	case OpPartitionAsym:
		a, b := e.Shard, e.Shard2
		c.partition = func(from, to types.NodeID) bool {
			return inIsland(from, a) && inIsland(to, b)
		}
	case OpPartitionLane:
		i1, i2 := e.Index, e.Index2
		c.partition = func(from, to types.NodeID) bool {
			if from.Kind != types.KindReplica || to.Kind != types.KindReplica ||
				from.Shard == to.Shard {
				return false
			}
			return from.Index == i1 || to.Index == i1 ||
				(i2 >= 0 && (from.Index == i2 || to.Index == i2))
		}
	case OpLoss:
		c.lossP = e.P
	case OpDelay:
		c.delayX = e.Ticks
	case OpCrash:
		c.down[types.ReplicaNode(e.Shard, e.Index)] = true
	case OpRestart:
		id := types.ReplicaNode(e.Shard, e.Index)
		if e.Wipe {
			c.fs.RemoveAll(wal.Join(c.cfg.DataDir, fmt.Sprintf("s%d-r%d", id.Shard, id.Index)))
		}
		c.spawn(id) // rebuild from surviving durable state
		delete(c.down, id)
	case OpByzSilent:
		c.byzSilent[types.ReplicaNode(e.Shard, e.Index)] = true
	case OpByzEquivocate:
		c.byzEquiv[types.ReplicaNode(e.Shard, e.Index)] = true
	case OpByzNewView:
		c.byzNewView[types.ReplicaNode(e.Shard, e.Index)] = true
	case OpClientDuplicate:
		c.clientDup = true
	case OpClientConflict:
		c.clientConflict = true
	case OpHeal:
		c.partition = nil
		c.lossP = 0
		c.delayX = 0
		c.byzSilent = make(map[types.NodeID]bool)
		c.byzEquiv = make(map[types.NodeID]bool)
		c.byzNewView = make(map[types.NodeID]bool)
		c.clientDup = false
		c.clientConflict = false
	}
}

// step advances one tick: nemesis events due now, timer ticks for every
// alive node (deterministic order), message deliveries, then client logic.
func (c *Cluster) step(events []Event) error {
	for _, e := range events {
		if e.At == c.tick {
			c.apply(e)
		}
	}
	now := c.clock()
	for _, id := range c.order {
		if !c.down[id] {
			c.nodes[id].HandleTick(now)
		}
	}
	if err := c.pump(); err != nil {
		return err
	}
	for _, cl := range c.clients {
		c.stepClient(cl)
	}
	// Client sends may be deliverable this tick (zero jitter): drain them
	// so responses are not systematically one tick late.
	if err := c.pump(); err != nil {
		return err
	}
	c.tick++
	return nil
}

// clientTimeout is the retransmission threshold in ticks (mirrors the
// harness client's 2×LocalTimeout rule).
func (c *Cluster) clientTimeout() int {
	return int(2 * c.cfg.LocalTimeout / tickStep)
}

// route picks the node a fresh batch is addressed to, honouring the view
// hint learned from responses (so post-view-change primaries are targeted).
func (c *Cluster) route(cl *dclient, b *types.Batch) types.NodeID {
	if c.sc.Protocol == harness.ProtoAHL && b.IsCrossShard() {
		return c.committee[0]
	}
	s := b.Initiator()
	idx := int(uint64(cl.viewHint[s]) % uint64(c.sc.ReplicasPerShard))
	return types.ReplicaNode(s, idx)
}

// fanout lists the nodes a timed-out batch is rebroadcast to (attack A1).
func (c *Cluster) fanout(b *types.Batch) []types.NodeID {
	if c.sc.Protocol == harness.ProtoAHL && b.IsCrossShard() {
		return c.committee
	}
	return c.shardPeers[b.Initiator()]
}

func (c *Cluster) stepClient(cl *dclient) {
	// Count votes from this tick's responses.
	for _, m := range cl.inbox {
		if m.Type != types.MsgResponse {
			continue
		}
		if m.From.Kind == types.KindReplica && m.View > cl.viewHint[m.From.Shard] {
			cl.viewHint[m.From.Shard] = m.View
		}
		fl, ok := cl.inflight[m.Digest]
		if !ok {
			continue
		}
		fl.votes[m.From] = struct{}{}
	}
	cl.inbox = nil
	need := c.cfg.F() + 1
	var doneNow []types.Digest
	for d, fl := range cl.inflight {
		if len(fl.votes) >= need {
			doneNow = append(doneNow, d)
		}
	}
	// Sort completions: map iteration order must not leak into the
	// committed sequence (part of the determinism fingerprint).
	sort.Slice(doneNow, func(i, j int) bool {
		return bytes.Compare(doneNow[i][:], doneNow[j][:]) < 0
	})
	for _, d := range doneNow {
		delete(cl.inflight, d)
		cl.committed = append(cl.committed, d)
		c.committed++
		c.lastCommitTick = c.tick
	}
	// Retransmit what timed out.
	var late []*dflight
	for _, fl := range cl.inflight {
		if c.tick-fl.sentTick > c.clientTimeout() {
			late = append(late, fl)
		}
	}
	sort.Slice(late, func(i, j int) bool {
		return bytes.Compare(late[i].digest[:], late[j].digest[:]) < 0
	})
	from := types.ClientNode(cl.id)
	for _, fl := range late {
		fl.sentTick = c.tick
		m := &types.Message{
			Type: types.MsgClientRequest, From: from,
			Batch: fl.batch, Digest: fl.digest,
		}
		for _, to := range c.fanout(fl.batch) {
			c.enqueue(from, to, m)
		}
	}
	// Keep the window full.
	for !cl.paused && len(cl.inflight) < cl.window {
		b := cl.gen.NextBatch(cl.id)
		d := b.Digest()
		cl.inflight[d] = &dflight{
			batch: b, digest: d, sentTick: c.tick,
			votes: make(map[types.NodeID]struct{}),
		}
		m := &types.Message{
			Type: types.MsgClientRequest, From: from, Batch: b, Digest: d,
		}
		if c.clientDup && cl.id == advClientID {
			// Duplicate storm: fan the identical request out to the whole
			// shard — exactly what honest retransmission does, so this is
			// legal traffic the protocol must dedupe without accusing anyone.
			for _, to := range c.fanout(b) {
				c.enqueue(from, to, m)
			}
			continue
		}
		c.enqueue(from, c.route(cl, b), m)
		if c.clientConflict && cl.id == advClientID {
			// Conflict storm: a second batch carrying the same transaction
			// IDs under a different digest, blasted at the whole shard.
			// Replicas commit both digests as distinct batches (consensus
			// is keyed by digest, so safety holds) and record
			// client-conflict evidence naming this client. The client never
			// tracks the variant — any votes for it are ignored above.
			evil := harness.EquivocateBatch(b)
			em := &types.Message{
				Type: types.MsgClientRequest, From: from,
				Batch: evil, Digest: evil.Digest(),
			}
			for _, to := range c.fanout(b) {
				c.enqueue(from, to, em)
			}
		}
	}
}

// Observability returns the merged lifecycle events (in canonical node
// order, so the result is as deterministic as the run) and the metrics
// snapshot of an instrumented cluster; nil and "" otherwise.
func (c *Cluster) Observability() ([]trace.Event, string) {
	if c.reg == nil {
		return nil, ""
	}
	batches := make([][]trace.Event, 0, len(c.order))
	for _, id := range c.order {
		if t, ok := c.tracers[id]; ok {
			batches = append(batches, t.Events())
		}
	}
	return trace.Merge(batches...), c.reg.Snapshot()
}

// Capture snapshots every replica's commit state (crashed nodes included —
// a dead replica's prefix still must not conflict).
func (c *Cluster) Capture() []harness.ReplicaState {
	var out []harness.ReplicaState
	for _, id := range c.order {
		if st, ok := harness.CaptureReplica(id, c.nodes[id]); ok {
			out = append(out, st)
		}
	}
	return out
}
