package chaos

import (
	"flag"
	"testing"

	"ringbft/internal/harness"
)

// Replay flags: any matrix failure prints the exact command that re-runs
// just that scenario (see Scenario.ReproCmd).
var (
	flagSeed   = flag.Int64("chaos.seed", 0, "replay the scenario with this seed (TestReplaySeed)")
	flagProto  = flag.String("chaos.proto", "ringbft", "protocol for TestReplaySeed")
	flagFault  = flag.String("chaos.fault", "partition-shard", "fault class for TestReplaySeed")
	flagShards = flag.Int("chaos.shards", 0, "shard count for TestReplaySeed (0 = default)")
	flagDepth  = flag.Int("chaos.depth", 0, "pipeline depth for TestReplaySeed (0 = legacy unbounded drain)")
)

// TestChaosMatrix runs the full scenario matrix: every fault class against
// RingBFT plus the baseline subset, each seeded and fully deterministic.
// Every scenario must commit work, stay safe across all replicas, and
// recover liveness after its last heal.
func TestChaosMatrix(t *testing.T) {
	matrix := Matrix()
	if len(matrix) < 20 {
		t.Fatalf("matrix has %d scenarios, want >= 20", len(matrix))
	}
	for _, sc := range matrix {
		sc := sc
		// The whole matrix runs instrumented: phase tracing and metrics are
		// pure side effects, so every invariant must hold with them on, and
		// each scenario gains a per-phase stall attribution in its log line.
		sc.Instrument = true
		t.Run(sc.Name(), func(t *testing.T) {
			res, err := RunScenario(sc)
			if err != nil {
				t.Fatalf("%v\nreproduce with: %s", err, sc.ReproCmd())
			}
			if res.Failed() {
				t.Fatal(res.FailureReport())
			}
			if res.Committed == 0 {
				t.Fatalf("scenario %s committed nothing\nreproduce with: %s",
					sc.Name(), sc.ReproCmd())
			}
			if res.MetricsText == "" {
				t.Fatal("instrumented run produced no metrics snapshot")
			}
			t.Logf("committed=%d ticks=%d probeTicks=%d replicas=%d %s",
				res.Committed, res.Ticks, res.ProbeTicks, len(res.States),
				res.StallReport())
		})
	}
}

// TestReplaySeed replays a single scenario from its printed seed — the
// reproduction entry point every failure message references.
func TestReplaySeed(t *testing.T) {
	if *flagSeed == 0 {
		t.Skip("pass -chaos.seed=N (with -chaos.proto / -chaos.fault) to replay a scenario")
	}
	sc := Scenario{
		Protocol:      harness.Protocol(*flagProto),
		Fault:         Fault(*flagFault),
		Seed:          *flagSeed,
		Shards:        *flagShards,
		PipelineDepth: *flagDepth,
	}
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("schedule: %v", res.Schedule.Events)
	t.Logf("fingerprint: %s", res.Fingerprint())
	if res.Failed() {
		t.Fatal(res.FailureReport())
	}
}

// TestSeedDeterminism: the same seed + schedule must yield identical
// committed block sequences, state digests, client commit orders, and
// counters across two runs — the property that makes `-chaos.seed=N`
// reproduce any failure exactly.
func TestSeedDeterminism(t *testing.T) {
	cases := []Scenario{
		{Protocol: harness.ProtoRingBFT, Fault: FaultPartitionShard, Seed: 11},
		{Protocol: harness.ProtoRingBFT, Fault: FaultLossStorm, Seed: 12},
		{Protocol: harness.ProtoRingBFT, Fault: FaultByzEquivocate, Seed: 13},
		{Protocol: harness.ProtoRingBFT, Fault: FaultWipeRejoin, Seed: 14},
		{Protocol: harness.ProtoAHL, Fault: FaultCrashRestart, Seed: 15},
		{Protocol: harness.ProtoSharper, Fault: FaultDelaySkew, Seed: 16},
		{Protocol: harness.ProtoRingBFT, Fault: FaultByzNewView, Seed: 17, Shards: 3},
		{Protocol: harness.ProtoRingBFT, Fault: FaultClientConflict, Seed: 18, Shards: 3},
	}
	for _, sc := range cases {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			a, err := RunScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			if fa, fb := a.Fingerprint(), b.Fingerprint(); fa != fb {
				t.Fatalf("two runs of %s diverged:\n  run1 %s\n  run2 %s",
					sc.Name(), fa, fb)
			}
			if a.Committed != b.Committed || a.LastCommitTick != b.LastCommitTick {
				t.Fatalf("counters diverged: committed %d vs %d, lastCommit %d vs %d",
					a.Committed, b.Committed, a.LastCommitTick, b.LastCommitTick)
			}
			// Third run with instrumentation on: tracing and metrics must be
			// pure side effects — the fingerprint stays byte-identical.
			ic := sc
			ic.Instrument = true
			i, err := RunScenario(ic)
			if err != nil {
				t.Fatal(err)
			}
			if fa, fi := a.Fingerprint(), i.Fingerprint(); fa != fi {
				t.Fatalf("instrumented run of %s diverged from bare run:\n  bare         %s\n  instrumented %s",
					sc.Name(), fa, fi)
			}
			if i.MetricsText == "" {
				t.Fatal("instrumented run produced no metrics snapshot")
			}
		})
	}
}

// TestScheduleDeterminism: schedules are pure functions of the scenario.
func TestScheduleDeterminism(t *testing.T) {
	for _, f := range Faults() {
		sc := Scenario{Protocol: harness.ProtoRingBFT, Fault: f, Seed: 42}
		a, b := BuildSchedule(sc), BuildSchedule(sc)
		if len(a.Events) != len(b.Events) || a.LastHeal != b.LastHeal {
			t.Fatalf("fault %s: schedule not deterministic", f)
		}
		for i := range a.Events {
			if a.Events[i] != b.Events[i] {
				t.Fatalf("fault %s event %d: %v vs %v", f, i, a.Events[i], b.Events[i])
			}
		}
		if f != FaultNone && a.LastHeal <= 0 {
			t.Fatalf("fault %s: schedule never heals", f)
		}
	}
}
