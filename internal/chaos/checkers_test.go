package chaos

import (
	"strings"
	"testing"

	"ringbft/internal/evidence"
	"ringbft/internal/harness"
	"ringbft/internal/types"
)

// Synthetic-state tests: every checker must actually detect the violation
// class it exists for — a checker that cannot fail is not a checker.

func replica(shard types.ShardID, idx int, blocks []harness.BlockRecord,
	state byte, execThrough types.SeqNum) harness.ReplicaState {
	var sd types.Digest
	sd[0] = state
	return harness.ReplicaState{
		ID:              types.ReplicaNode(shard, idx),
		Blocks:          blocks,
		Height:          len(blocks),
		ChainOK:         true,
		StateDigest:     sd,
		ExecutedThrough: execThrough,
	}
}

func rec(seq types.SeqNum, d byte) harness.BlockRecord {
	var dig types.Digest
	dig[0] = d
	return harness.BlockRecord{Seq: seq, Digest: dig}
}

func hasViolation(t *testing.T, vs []Violation, check string) {
	t.Helper()
	for _, v := range vs {
		if v.Check == check {
			return
		}
	}
	t.Fatalf("expected a %q violation, got %v", check, vs)
}

func TestCheckerDetectsFork(t *testing.T) {
	a := replica(0, 0, []harness.BlockRecord{rec(1, 0xaa), rec(2, 0xbb)}, 1, 2)
	b := replica(0, 1, []harness.BlockRecord{rec(1, 0xaa), rec(2, 0xcc)}, 1, 2)
	hasViolation(t, CheckStates([]harness.ReplicaState{a, b}), "seq-digest-agreement")
}

func TestCheckerDetectsStateDivergence(t *testing.T) {
	blocks := []harness.BlockRecord{rec(1, 0xaa), rec(2, 0xbb)}
	a := replica(0, 0, blocks, 1, 2)
	b := replica(0, 1, blocks, 2, 2) // same executed set, different state
	hasViolation(t, CheckStates([]harness.ReplicaState{a, b}), "state-agreement")
}

func TestCheckerDetectsExecutedDivergence(t *testing.T) {
	blocks := []harness.BlockRecord{rec(1, 0xaa)}
	a := replica(0, 0, blocks, 1, 1)
	b := replica(0, 1, blocks, 1, 1)
	var d types.Digest
	d[0] = 0xaa
	a.Executed = map[types.Digest]uint64{d: 7}
	b.Executed = map[types.Digest]uint64{d: 8}
	hasViolation(t, CheckStates([]harness.ReplicaState{a, b}), "executed-agreement")
}

func TestCheckerDetectsBrokenChain(t *testing.T) {
	a := replica(0, 0, []harness.BlockRecord{rec(1, 0xaa)}, 1, 1)
	a.ChainOK = false
	hasViolation(t, CheckStates([]harness.ReplicaState{a}), "chain-verify")
}

func TestCheckerToleratesLaggingReplica(t *testing.T) {
	// A behind replica (shorter executed prefix) is not a safety violation.
	a := replica(0, 0, []harness.BlockRecord{rec(1, 0xaa), rec(2, 0xbb)}, 1, 2)
	b := replica(0, 1, []harness.BlockRecord{rec(1, 0xaa)}, 2, 1)
	if vs := CheckStates([]harness.ReplicaState{a, b}); len(vs) != 0 {
		t.Fatalf("lagging replica flagged as violation: %v", vs)
	}
}

func TestCheckerToleratesPruningSkew(t *testing.T) {
	// Same executed set, one replica pruned earlier: must group together.
	a := replica(0, 0, []harness.BlockRecord{rec(3, 0xcc), rec(4, 0xdd)}, 1, 4)
	b := replica(0, 1, []harness.BlockRecord{rec(2, 0xbb), rec(3, 0xcc), rec(4, 0xdd)}, 1, 4)
	if vs := CheckStates([]harness.ReplicaState{a, b}); len(vs) != 0 {
		t.Fatalf("pruning skew flagged as violation: %v", vs)
	}
	if vs := CheckConvergence([]harness.ReplicaState{a, b}, 2); len(vs) != 0 {
		t.Fatalf("pruning skew broke convergence: %v", vs)
	}
}

func TestCheckerDetectsMissedConvergence(t *testing.T) {
	a := replica(0, 0, []harness.BlockRecord{rec(1, 0xaa), rec(2, 0xbb)}, 1, 2)
	b := replica(0, 1, []harness.BlockRecord{rec(1, 0xaa)}, 2, 1)
	vs := CheckConvergence([]harness.ReplicaState{a, b}, 2)
	hasViolation(t, vs, "convergence")
	if !strings.Contains(vs[0].Detail, "shard 0") {
		t.Fatalf("violation does not name the shard: %v", vs[0])
	}
}

func TestCheckerDetectsFalseAccusation(t *testing.T) {
	// Evidence naming a node the schedule never corrupted is itself a bug:
	// the soundness half of the accountability contract.
	a := replica(0, 0, nil, 1, 0)
	a.Evidence = []evidence.Record{{
		Kind: evidence.KindEquivocation, Accused: types.ReplicaNode(1, 0), Shard: 1,
	}}
	vs := CheckAccountability([]harness.ReplicaState{a},
		Expectation{Culprits: map[types.NodeID]bool{}})
	hasViolation(t, vs, "accountability")
	if !strings.Contains(vs[0].Detail, "honest") {
		t.Fatalf("violation does not flag the accusation as false: %v", vs[0])
	}
}

func TestCheckerDetectsMissedAccusation(t *testing.T) {
	// A provably faulty node no replica accused: the completeness half.
	culprit := types.ReplicaNode(1, 0)
	a := replica(0, 0, nil, 1, 0) // holds no evidence
	exp := Expectation{
		Culprits: map[types.NodeID]bool{culprit: true},
		Required: []types.NodeID{culprit},
	}
	hasViolation(t, CheckAccountability([]harness.ReplicaState{a}, exp), "accountability")
}

func TestCheckerAcceptsExactAccountability(t *testing.T) {
	// One replica accusing exactly the required culprit satisfies both
	// halves; an unprovably faulty culprit (silent) needs no accuser.
	culprit := types.ReplicaNode(1, 0)
	silent := types.ReplicaNode(0, 2)
	a := replica(0, 0, nil, 1, 0)
	a.Evidence = []evidence.Record{{
		Kind: evidence.KindUnjustifiedNewView, Accused: culprit, Shard: 1,
	}}
	b := replica(0, 1, nil, 1, 0)
	exp := Expectation{
		Culprits: map[types.NodeID]bool{culprit: true, silent: true},
		Required: []types.NodeID{culprit},
	}
	if vs := CheckAccountability([]harness.ReplicaState{a, b}, exp); len(vs) != 0 {
		t.Fatalf("exact accountability flagged as violation: %v", vs)
	}
}

func TestExpectedCulpritsFromSchedule(t *testing.T) {
	sched := Schedule{Events: []Event{
		{At: 10, Op: OpByzSilent, Shard: 1, Index: 0},
		{At: 10, Op: OpByzNewView, Shard: 1, Index: 1},
		{At: 12, Op: OpClientConflict},
		{At: 20, Op: OpClientDuplicate}, // legal traffic: never a culprit
		{At: 90, Op: OpHeal},
	}}
	exp := ExpectedCulprits(sched)
	if !exp.Culprits[types.ReplicaNode(1, 0)] || !exp.Culprits[types.ReplicaNode(1, 1)] ||
		!exp.Culprits[types.ClientNode(advClientID)] {
		t.Fatalf("culprits incomplete: %v", exp.Culprits)
	}
	if len(exp.Culprits) != 3 {
		t.Fatalf("unexpected extra culprits: %v", exp.Culprits)
	}
	if len(exp.Required) != 2 { // the silent node is faulty but unprovable
		t.Fatalf("want 2 required accusations (forger + client), got %v", exp.Required)
	}
	for _, id := range exp.Required {
		if id == types.ReplicaNode(1, 0) {
			t.Fatalf("silent node must not require accusation: %v", exp.Required)
		}
	}
}

func TestCheckerOutOfOrderSuffixComparable(t *testing.T) {
	// Blocks above the watermark executed out of order still compare as a
	// set: both replicas executed {1,2,4} with 3 pending.
	a := replica(0, 0, []harness.BlockRecord{rec(1, 0xaa), rec(2, 0xbb), rec(4, 0xdd)}, 1, 2)
	b := replica(0, 1, []harness.BlockRecord{rec(1, 0xaa), rec(4, 0xdd), rec(2, 0xbb)}, 1, 2)
	if vs := CheckStates([]harness.ReplicaState{a, b}); len(vs) != 0 {
		t.Fatalf("out-of-order suffix flagged: %v", vs)
	}
	// But a replica that additionally executed 3 must NOT group with them.
	c := replica(0, 2, []harness.BlockRecord{rec(1, 0xaa), rec(2, 0xbb), rec(3, 0xcc), rec(4, 0xdd)}, 3, 4)
	if vs := CheckStates([]harness.ReplicaState{a, b, c}); len(vs) != 0 {
		t.Fatalf("different executed sets falsely compared: %v", vs)
	}
}
