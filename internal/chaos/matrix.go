package chaos

import (
	"fmt"
	"sort"
	"strings"

	"ringbft/internal/harness"
	"ringbft/internal/trace"
	"ringbft/internal/types"
)

// RunResult is one deterministic scenario run.
type RunResult struct {
	Scenario Scenario
	Schedule Schedule

	States     []harness.ReplicaState
	Violations []Violation

	// Committed counts client-confirmed batches (probes included);
	// PerClient holds each client's completion order.
	Committed int
	PerClient [][]types.Digest

	// LastCommitTick is the tick of the final client confirmation;
	// ProbeTicks is how long the post-heal liveness probe took (-1 when it
	// never completed inside the budget).
	LastCommitTick int
	ProbeTicks     int
	Ticks          int

	// Instrumented runs only (Scenario.Instrument): Stalls attributes every
	// consensus span that never reached execution to the last phase it did
	// reach — the nemesis's footprint, phase by phase — and MetricsText is
	// the cluster-wide registry snapshot. Both are diagnostics, deliberately
	// excluded from Fingerprint.
	Stalls      map[trace.Phase]int
	MetricsText string
}

// StallReport renders the per-phase stall attribution, worst phase first.
func (r *RunResult) StallReport() string {
	if len(r.Stalls) == 0 {
		return "stalls: none"
	}
	type row struct {
		ph trace.Phase
		n  int
	}
	rows := make([]row, 0, len(r.Stalls))
	for ph, n := range r.Stalls {
		rows = append(rows, row{ph, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].ph < rows[j].ph
	})
	parts := make([]string, len(rows))
	for i, rw := range rows {
		parts[i] = fmt.Sprintf("%s=%d", rw.ph, rw.n)
	}
	return "stalls: " + strings.Join(parts, " ")
}

// Fingerprint summarizes the run's observable outcome (committed block
// sets, state digests, per-client commit orders, counters); identical
// seeds must yield identical fingerprints.
func (r *RunResult) Fingerprint() string {
	return fmt.Sprintf("%s/committed=%d", fingerprintStates(r.States, r.PerClient), r.Committed)
}

// Failed reports whether any invariant was violated.
func (r *RunResult) Failed() bool { return len(r.Violations) > 0 }

// FailureReport renders the violations with the reproduction command.
func (r *RunResult) FailureReport() string {
	if !r.Failed() {
		return ""
	}
	s := fmt.Sprintf("scenario %s violated %d invariant(s):\n", r.Scenario.Name(), len(r.Violations))
	for _, v := range r.Violations {
		s += "  - " + v.String() + "\n"
	}
	s += fmt.Sprintf("reproduce with: %s (chaos seed %d)", r.Scenario.ReproCmd(), r.Scenario.Seed)
	return s
}

// RunScenario executes one scenario deterministically: build the cluster,
// drive workload + nemesis schedule over the horizon, probe liveness after
// the last heal, quiesce, capture, check.
func RunScenario(sc Scenario) (*RunResult, error) {
	sc = sc.Normalize()
	sched := BuildSchedule(sc)
	c := NewCluster(sc)
	res := &RunResult{Scenario: sc, Schedule: sched, ProbeTicks: -1}

	for c.tick < sched.Horizon {
		if err := c.step(sched.Events); err != nil {
			return nil, fmt.Errorf("%s: %w", sc.Name(), err)
		}
	}

	probeTicks, probeOK, err := c.probe(sc.ProbeBudget)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", sc.Name(), err)
	}
	if probeOK {
		res.ProbeTicks = probeTicks
		// Quiesce: tick until trailing Executes, checkpoints, and state
		// transfers land and the shards converge (bounded budget — a real
		// convergence failure is then reported by the checkers below).
		quorum := convergenceQuorum(sc)
		for i := 0; i < 30; i++ {
			for j := 0; j < 8; j++ {
				if err := c.step(nil); err != nil {
					return nil, fmt.Errorf("%s: %w", sc.Name(), err)
				}
			}
			if len(c.queue) == 0 && len(CheckConvergence(c.Capture(), quorum)) == 0 {
				break
			}
		}
	}

	res.Ticks = c.tick
	res.LastCommitTick = c.lastCommitTick
	res.Committed = c.committed
	for _, cl := range c.clients {
		res.PerClient = append(res.PerClient, cl.committed)
	}
	res.States = c.Capture()
	if events, snapshot := c.Observability(); snapshot != "" {
		res.Stalls = trace.Stalled(events)
		res.MetricsText = snapshot
	}

	res.Violations = CheckStates(res.States)
	if !probeOK {
		res.Violations = append(res.Violations, Violation{"liveness",
			fmt.Sprintf("probe batches did not all commit within %d ticks after the last heal (tick %d)",
				sc.ProbeBudget, sched.LastHeal)})
	}
	res.Violations = append(res.Violations,
		CheckConvergence(res.States, convergenceQuorum(sc))...)
	res.Violations = append(res.Violations,
		CheckAccountability(res.States, ExpectedCulprits(sched))...)
	return res, nil
}

// convergenceQuorum is how many fully agreeing replicas each shard must
// end with: n-f — every correct replica that stayed up, leaving room for
// the one the schedule crashed, wiped, or left dark.
func convergenceQuorum(sc Scenario) int {
	f := (sc.ReplicasPerShard - 1) / 3
	return sc.ReplicasPerShard - f
}

// probe injects fresh batches (one single-shard batch per shard plus one
// all-shard batch) from a dedicated probe client and ticks until they all
// confirm — the liveness invariant: a healed cluster commits new work
// within a bounded number of ticks.
func (c *Cluster) probe(budget int) (ticks int, ok bool, err error) {
	for _, cl := range c.clients {
		cl.paused = true
	}
	pc := &dclient{
		id:       types.ClientID(c.sc.Clients + 1),
		window:   0,
		paused:   true,
		inflight: make(map[types.Digest]*dflight),
		viewHint: make(map[types.ShardID]types.View),
	}
	c.clients = append(c.clients, pc)

	from := types.ClientNode(pc.id)
	probes := c.probeBatches(pc.id)
	for _, b := range probes {
		d := b.Digest()
		pc.inflight[d] = &dflight{
			batch: b, digest: d, sentTick: c.tick,
			votes: make(map[types.NodeID]struct{}),
		}
		c.enqueue(from, c.route(pc, b), &types.Message{
			Type: types.MsgClientRequest, From: from, Batch: b, Digest: d,
		})
	}

	start := c.tick
	for c.tick-start < budget {
		if len(pc.committed) >= len(probes) {
			return c.tick - start, true, nil
		}
		if err := c.step(nil); err != nil {
			return c.tick - start, false, err
		}
	}
	return c.tick - start, len(pc.committed) >= len(probes), nil
}

// probeBatches crafts deterministic probe transactions: key j*z+s belongs
// to shard s, so each batch touches exactly its target shards.
func (c *Cluster) probeBatches(cid types.ClientID) []*types.Batch {
	z := c.sc.Shards
	var out []*types.Batch
	mk := func(seq uint64, shards []types.ShardID) *types.Batch {
		var t types.Txn
		t.ID = types.TxnID{Client: cid, Seq: seq}
		t.Delta = 3
		for _, s := range shards {
			k := types.Key(uint64(s) + 11*uint64(z))
			t.Reads = append(t.Reads, k)
			t.Writes = append(t.Writes, k)
		}
		return &types.Batch{Txns: []types.Txn{t}, Involved: shards}
	}
	for s := 0; s < z; s++ {
		out = append(out, mk(uint64(s+1), []types.ShardID{types.ShardID(s)}))
	}
	if z > 1 {
		all := make([]types.ShardID, z)
		for s := range all {
			all[s] = types.ShardID(s)
		}
		out = append(out, mk(uint64(z+1), all))
	}
	return out
}

// Matrix generates the scenario matrix: every fault class against RingBFT
// (the system under test; its Forward-certificate justification, Σ merging,
// straggler commit replies, and checkpoint state transfer recover from all
// of them), a 3-shard RingBFT frontier, plus the classes the AHL and
// Sharper baselines' recovery machinery supports.
//
// The 3-shard rows exist because a two-shard ring has no middle: with three
// shards a batch can involve a shard that is neither initiator nor terminal,
// which is exactly where justification hand-off (the Forward certificate a
// middle shard must hold before its primary may propose), remote-view
// complaints against the previous shard, and the accountability checker earn
// their keep.
//
// Loss storms are now included for both baselines: their head-of-line
// renudges (AHL re-votes the oldest undecided cst, Sharper re-sends the
// oldest uncommitted global round's prepare) un-wedge the strictly-in-order
// execution pipelines that used to starve behind a single lost 2PC/global
// round. Still deliberately excluded (documented in EXPERIMENTS.md): an
// equivocating primary wedges both baselines (they carry no justification
// evidence — nothing like RingBFT's Forward certificate — to gate
// cross-shard proposals on), byz-newview and the client-fault classes need
// the justification gate and client-conflict detection only RingBFT
// implements, and Sharper's global all-to-all rounds do not recover from
// asymmetric partitions or a silent primary on every seed. Seeds vary per
// protocol so the schedules decorrelate.
func Matrix() []Scenario {
	var out []Scenario
	for _, f := range Faults() {
		out = append(out, Scenario{Protocol: harness.ProtoRingBFT, Fault: f, Seed: 1})
	}
	for _, f := range []Fault{
		FaultNone, FaultPartitionLane, FaultLossStorm, FaultCrashRestart,
		FaultByzEquivocate, FaultByzNewView, FaultClientDuplicate, FaultClientConflict,
		FaultPipelineViewChange,
	} {
		out = append(out, Scenario{Protocol: harness.ProtoRingBFT, Fault: f, Seed: 5, Shards: 3})
	}
	// Pipelined frontier: the deep-window rows run the whole workload with
	// a bounded in-flight window and adaptive batching armed, under faults
	// that deliberately hit mid-window (a dark primary, a crash-restart).
	out = append(out,
		Scenario{Protocol: harness.ProtoRingBFT, Fault: FaultCrashRestart, Seed: 6, PipelineDepth: 4},
		Scenario{Protocol: harness.ProtoRingBFT, Fault: FaultLossStorm, Seed: 7, PipelineDepth: 2},
	)
	for _, f := range []Fault{
		FaultNone, FaultPartitionShard, FaultPartitionAsym, FaultPartitionLane,
		FaultLossStorm, FaultDelaySkew, FaultCrashRestart, FaultWipeRejoin,
		FaultByzSilent,
	} {
		out = append(out, Scenario{Protocol: harness.ProtoAHL, Fault: f, Seed: 3})
	}
	for _, f := range []Fault{
		FaultNone, FaultPartitionShard, FaultPartitionLane, FaultLossStorm,
		FaultDelaySkew, FaultCrashRestart, FaultWipeRejoin,
	} {
		out = append(out, Scenario{Protocol: harness.ProtoSharper, Fault: f, Seed: 4})
	}
	return out
}
